package slicer_test

import (
	"fmt"
	"sync"
	"testing"

	slicer "dynslice"
	"dynslice/internal/slicing/plan"
	"dynslice/internal/telemetry/querylog"
	"dynslice/internal/telemetry/stats"
)

// plannedRecording builds an engineSrc recording wired for planned
// dispatch: query log + workload stats attached, graphs deferred so the
// planner has a genuinely cold start to work with.
func plannedRecording(t *testing.T) (*slicer.Recording, *querylog.Log, *stats.Recorder) {
	t.Helper()
	p, err := slicer.Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	qlog := querylog.New(4096)
	qstats := stats.New()
	rec, err := p.Record(slicer.RunOptions{
		QueryLog:    qlog,
		QueryStats:  qstats,
		DeferGraphs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rec.Close)
	return rec, qlog, qstats
}

// TestPlannedEngineMatchesFixed: whatever backend the planner picks,
// answers must be identical to a fixed backend's — the planner changes
// latency, never slices. The cache is disabled so every query really
// goes through plan.Decide.
func TestPlannedEngineMatchesFixed(t *testing.T) {
	rec, _, _ := plannedRecording(t)
	addrs := engineAddrs(t, rec)

	// Baseline from the demand-driven backend: it does not warm any
	// graph, so the planner's availability picture stays untouched.
	lp := rec.LP()
	want := make(map[int64]*slicer.Slice, len(addrs))
	for _, a := range addrs {
		sl, err := lp.SliceAddr(a)
		if err != nil {
			t.Fatal(err)
		}
		want[a] = sl
	}

	e := rec.Engine(slicer.EngineOptions{CacheSize: -1})
	for _, a := range addrs {
		sl, err := e.SliceAddr(a)
		if err != nil {
			t.Fatalf("planned SliceAddr(%d): %v", a, err)
		}
		if !sl.Raw().Equal(want[a].Raw()) {
			t.Fatalf("planned slice for %d diverges from LP baseline", a)
		}
	}
	batched, err := e.SliceAddrs(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		if !batched[i].Raw().Equal(want[a].Raw()) {
			t.Fatalf("planned batch slice for %d diverges from LP baseline", a)
		}
	}
	ex, err := e.Explain(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Slice.Raw().Equal(want[addrs[0]].Raw()) {
		t.Fatal("planned explain slice diverges from LP baseline")
	}
}

// TestPlannedEngineAttribution: planned queries carry the planner's
// choice and rationale in their audit records, and with no backend
// faults the plan and the answering backend agree.
func TestPlannedEngineAttribution(t *testing.T) {
	rec, qlog, qstats := plannedRecording(t)
	addrs := engineAddrs(t, rec)

	d := rec.PlanFor(plan.Shape{Kind: plan.KindSlice, Batch: 1})
	if d.Backend == "" || d.Reason == "" {
		t.Fatalf("empty plan for a fresh recording: %+v", d)
	}

	e := rec.Engine(slicer.EngineOptions{CacheSize: 4})
	if _, err := e.SliceAddr(addrs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SliceAddr(addrs[0]); err != nil { // cache hit
		t.Fatal(err)
	}
	if _, err := e.SliceAddrs(addrs[:4]); err != nil {
		t.Fatal(err)
	}

	var misses, hits int
	for _, r := range qlog.Recent(0) {
		if r.CacheHit {
			hits++
			continue
		}
		misses++
		if r.Plan == "" || r.PlanReason == "" {
			t.Fatalf("planned query %d missing attribution: %+v", r.ID, r)
		}
		if r.Plan != r.Backend {
			t.Fatalf("query %d: plan %q but backend %q with no fault in play (%s)",
				r.ID, r.Plan, r.Backend, r.PlanReason)
		}
	}
	if misses == 0 || hits == 0 {
		t.Fatalf("expected both misses and cache hits, got %d/%d", misses, hits)
	}
	snap := qstats.Snapshot()
	if bs, ok := snap.Backends[d.Backend]; !ok || bs.Queries == 0 {
		t.Fatalf("planned backend %q absent from workload stats: %+v", d.Backend, snap.Backends)
	}
}

// TestEnginePlannerConcurrentHammer drives 16 goroutines through a
// planned engine while the workload EWMAs the planner reads are updated
// by the same queries, and deferred graph builds race with dispatch.
// Run under -race; every answer must match the sequential baseline.
func TestEnginePlannerConcurrentHammer(t *testing.T) {
	rec, _, _ := plannedRecording(t)
	addrs := engineAddrs(t, rec)

	lp := rec.LP()
	want := make(map[int64]*slicer.Slice, len(addrs))
	for _, a := range addrs {
		sl, err := lp.SliceAddr(a)
		if err != nil {
			t.Fatal(err)
		}
		want[a] = sl
	}

	e := rec.Engine(slicer.EngineOptions{Workers: 4, CacheSize: 8})
	const goroutines = 16
	const rounds = 3
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch g % 3 {
				case 0: // singles
					for _, a := range addrs {
						sl, err := e.SliceAddr(a)
						if err != nil {
							errc <- fmt.Errorf("g%d SliceAddr(%d): %v", g, a, err)
							return
						}
						if !sl.Raw().Equal(want[a].Raw()) {
							errc <- fmt.Errorf("g%d: slice for %d diverges", g, a)
							return
						}
					}
				case 1: // batches, rotated so chunks differ per goroutine
					rot := append(append([]int64{}, addrs[g%len(addrs):]...), addrs[:g%len(addrs)]...)
					slices, err := e.SliceAddrs(rot)
					if err != nil {
						errc <- fmt.Errorf("g%d SliceAddrs: %v", g, err)
						return
					}
					for i, a := range rot {
						if !slices[i].Raw().Equal(want[a].Raw()) {
							errc <- fmt.Errorf("g%d: batch slice for %d diverges", g, a)
							return
						}
					}
				case 2: // observed queries
					a := addrs[(g+r)%len(addrs)]
					ex, err := e.Explain(a)
					if err != nil {
						errc <- fmt.Errorf("g%d Explain(%d): %v", g, a, err)
						return
					}
					if !ex.Slice.Raw().Equal(want[a].Raw()) {
						errc <- fmt.Errorf("g%d: explain slice for %d diverges", g, a)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
