package ir

// Logical blocks. The lowerer terminates physical basic blocks at call
// statements so that trace records stay positionally decodable, but the
// paper's model (Trimaran) keeps calls in the middle of blocks. A
// *logical block* recovers that view: a chain
//
//	head -> continuation -> continuation -> ...
//
// where every link is a call-terminated block followed by its unique
// continuation. The OPT graph assigns one node (and one timestamp per
// execution) to each logical block, exactly as the paper assigns one
// timestamp per basic-block execution.

// IsCallBlock reports whether b's terminator is a call.
func (b *Block) IsCallBlock() bool {
	t := b.Terminator()
	return t != nil && t.Op == OpCall
}

// IsContinuation reports whether b is the continuation of a call: its only
// predecessor ends in a call. Continuations never execute standalone.
func (b *Block) IsContinuation() bool {
	return len(b.Preds) == 1 && b.Preds[0].IsCallBlock()
}

// LogicalChain returns the logical block starting at head: head followed
// by its continuation chain. head must not itself be a continuation.
func LogicalChain(head *Block) []*Block {
	chain := []*Block{head}
	for chain[len(chain)-1].IsCallBlock() {
		next := chain[len(chain)-1].Succs[0]
		chain = append(chain, next)
	}
	return chain
}

// UseIdxScalar returns the scalar object serving as the index operand of
// the array load feeding use slot k, when that operand is a direct scalar
// load (the common case after three-address lowering with CSE). It is used
// by the OPT-3 generalization that shares labels between paired array
// accesses.
func (s *Stmt) UseIdxScalar(slot int) (ObjID, bool) {
	var out ObjID = NoObj
	found := false
	visit := func(e Expr) {
		WalkExpr(e, func(x Expr) {
			li, ok := x.(*ELoadIdx)
			if !ok || li.Slot != slot {
				return
			}
			if ld, ok := li.Idx.(*ELoad); ok {
				out = ld.Obj
				found = true
			}
		})
	}
	switch s.Op {
	case OpAssign:
		visit(s.Rhs)
		if s.Lhs == LIndex {
			visit(s.LhsIdx)
		}
		if s.Lhs == LDeref {
			visit(s.LhsAddr)
		}
	case OpCond, OpPrint, OpReturn:
		visit(s.Rhs)
	case OpCall:
		for _, a := range s.Args {
			visit(a)
		}
	}
	return out, found
}

// DefIdxScalar returns the scalar object serving as the index operand of
// an array store (Lhs == LIndex), when it is a direct scalar load.
func (s *Stmt) DefIdxScalar() (ObjID, bool) {
	if s.Op != OpAssign || s.Lhs != LIndex {
		return NoObj, false
	}
	if ld, ok := s.LhsIdx.(*ELoad); ok {
		return ld.Obj, true
	}
	return NoObj, false
}
