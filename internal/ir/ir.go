// Package ir defines the intermediate representation the slicing algorithms
// operate on: programs of functions, functions of basic blocks, blocks of
// straight-line statements. Every statement carries a statically known,
// ordered list of "use slots" (memory read sites) and "def slots" (memory
// write sites); at run time the interpreter emits one address per slot, so
// static analyses and the execution trace line up slot by slot.
//
// Design notes relevant to slicing:
//
//   - Call statements terminate basic blocks. This keeps the global
//     timestamp order of the trace monotone (callee blocks execute between
//     the call block and the continuation block).
//   - Expressions contain no calls (lowering hoists them) and evaluate
//     without internal control flow (&& and || do not short-circuit;
//     division by zero yields zero), so the number and order of loads per
//     statement is fixed.
//   - Each function has a synthetic return-value object ($ret). A callee's
//     return statement writes the *caller's* $ret slot; the continuation
//     block reads it. Data dependences therefore flow through calls purely
//     via addresses.
package ir

import (
	"fmt"
	"strings"

	"dynslice/internal/lang"
)

// ObjID identifies an abstract memory object (a scalar variable, an array,
// or a synthetic object such as a function's return slot).
type ObjID int32

// NoObj marks the absence of an object.
const NoObj ObjID = -1

// StmtID identifies a statement program-wide.
type StmtID int32

// BlockID identifies a basic block program-wide.
type BlockID int32

// Object is an abstract memory object. Scalars occupy one word; arrays
// occupy Size words. Objects are allocated at a fixed offset within their
// function's frame (locals) or within the global segment (globals).
type Object struct {
	ID        ObjID
	Name      string
	Fn        *Func // nil for globals
	Size      int64 // 1 for scalars, >=1 for arrays
	IsArray   bool
	AddrTaken bool  // appears in an address-of expression
	Off       int64 // offset within frame or global segment
	IsRet     bool  // the synthetic $ret object of Fn
}

// String returns a debug name such as "g" or "f.x".
func (o *Object) String() string {
	if o.Fn != nil {
		return o.Fn.Name + "." + o.Name
	}
	return o.Name
}

// Op is a statement opcode.
type Op int

// Statement opcodes.
const (
	OpAssign  Op = iota // Lhs <- Rhs
	OpDeclArr           // array declaration: zero-defines the whole object
	OpCond              // conditional branch on Cond (block terminator, 2 succs)
	OpCall              // call Callee(Args...) (block terminator, 1 succ)
	OpReturn            // return [Rhs] (block terminator, succ = exit)
	OpPrint             // print(Rhs)
)

var opNames = [...]string{"assign", "declarr", "cond", "call", "return", "print"}

// String returns the opcode mnemonic.
func (op Op) String() string { return opNames[op] }

// LhsKind distinguishes assignment target forms.
type LhsKind int

// Assignment target forms.
const (
	LNone  LhsKind = iota
	LVar           // scalar variable
	LIndex         // array element a[i]
	LDeref         // through pointer *e
)

// UseSlot describes one memory read site of a statement. Slots are ordered
// by evaluation order; the interpreter emits exactly one address per slot
// per execution.
type UseSlot struct {
	Obj    ObjID   // the scalar or array object read, or NoObj for *e reads
	MayPts []ObjID // for *e reads: may points-to set of the address (filled by alias analysis)
	IsPtr  bool    // true if this slot is a load through a pointer (*e)
	IsIdx  bool    // true if this slot is an array element load (a[i])
}

// Scalar reports whether the slot reads a named scalar object, the only
// case in which block-local static def-use inference is sound.
func (u *UseSlot) Scalar() bool { return !u.IsPtr && !u.IsIdx && u.Obj != NoObj }

// Stmt is a single IR statement.
type Stmt struct {
	ID    StmtID
	Block *Block
	Idx   int // index within Block.Stmts
	Op    Op
	Pos   lang.Pos

	// Assignment target (OpAssign only).
	Lhs     LhsKind
	LhsObj  ObjID // LVar: the scalar; LIndex: the array
	LhsIdx  Expr  // LIndex: index expression
	LhsAddr Expr  // LDeref: pointer expression

	Rhs    Expr       // OpAssign, OpPrint, OpReturn (nil for bare return), OpCond
	Callee *Func      // OpCall
	Args   []Expr     // OpCall
	Obj    ObjID      // OpDeclArr: the array object
	Uses   []*UseSlot // ordered memory read sites (filled by finalize)

	// Static def summary (filled by finalize + alias analysis):
	MustDef ObjID   // scalar object definitely written, or NoObj
	MayDefs []ObjID // objects possibly written (arrays, pts targets, callee effects)
	NumDefs int     // number of runtime def addresses emitted (fixed per stmt)
}

// String renders the statement for debugging.
func (s *Stmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "s%d:%s", s.ID, s.Op)
	return b.String()
}

// Block is a basic block: straight-line statements, with control transfer
// only at the end. Possible terminators: OpCond (two successors: true then
// false), OpCall (one successor: the continuation), OpReturn (successor is
// the function exit), or fall-through (one successor).
type Block struct {
	ID    BlockID
	Fn    *Func
	Index int // index within Fn.Blocks
	Stmts []*Stmt
	Succs []*Block
	Preds []*Block

	// Control dependence (filled by analysis in package dataflow, stored
	// here for convenient access by builders): the set of blocks this block
	// is control dependent on.
	CDAncestors []*Block
}

// Terminator returns the final statement if it is a control-transfer
// statement, else nil.
func (b *Block) Terminator() *Stmt {
	if len(b.Stmts) == 0 {
		return nil
	}
	last := b.Stmts[len(b.Stmts)-1]
	switch last.Op {
	case OpCond, OpCall, OpReturn:
		return last
	}
	return nil
}

// String returns a short block label such as "f#3".
func (b *Block) String() string { return fmt.Sprintf("%s#%d", b.Fn.Name, b.Index) }

// Func is a function: a CFG of basic blocks with a single entry and a
// single synthetic exit block.
type Func struct {
	ID        int
	Name      string
	Params    []*Object
	Ret       *Object // synthetic $ret object
	Locals    []*Object
	Blocks    []*Block // Blocks[0] is the entry
	Exit      *Block   // synthetic, empty
	FrameSize int64

	// MOD is the set of objects this function (transitively) may write,
	// restricted to globals and address-taken objects. Filled by alias
	// analysis; consulted when deciding whether a call kills a value.
	MOD map[ObjID]bool
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Program is a lowered program.
type Program struct {
	Funcs      []*Func
	Main       *Func
	Globals    []*Object
	Objects    []*Object // all objects, indexed by ObjID
	Stmts      []*Stmt   // all statements, indexed by StmtID
	Blocks     []*Block  // all blocks, indexed by BlockID
	GlobalSize int64     // words occupied by the global segment
	Source     string    // original source text (for diagnostics)
}

// Obj returns the object with the given ID.
func (p *Program) Obj(id ObjID) *Object { return p.Objects[id] }

// Stmt returns the statement with the given ID.
func (p *Program) Stmt(id StmtID) *Stmt { return p.Stmts[id] }

// Block returns the block with the given ID.
func (p *Program) Block(id BlockID) *Block { return p.Blocks[id] }

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ---- IR expressions ----

// Expr is an IR expression. IR expressions contain no calls and no control
// flow; they evaluate to an int64.
type Expr interface{ irExpr() }

// EConst is an integer constant.
type EConst struct{ Val int64 }

// ELoad reads a scalar object.
type ELoad struct {
	Obj  ObjID
	Slot int // index into the statement's Uses
}

// ELoadIdx reads an array element.
type ELoadIdx struct {
	Obj  ObjID
	Idx  Expr
	Slot int
}

// ELoadPtr reads through a pointer-valued expression.
type ELoadPtr struct {
	Addr Expr
	Slot int
}

// EAddr computes the address of a scalar (Idx nil) or array element.
type EAddr struct {
	Obj ObjID
	Idx Expr // nil for scalars
}

// EUnary is -x or !x.
type EUnary struct {
	Op lang.Kind
	X  Expr
}

// EBinary is a binary operation (no short-circuiting; x/0 == x%0 == 0).
type EBinary struct {
	Op   lang.Kind
	X, Y Expr
}

// EInput reads the next program input value (no memory use).
type EInput struct{}

func (*EConst) irExpr()   {}
func (*ELoad) irExpr()    {}
func (*ELoadIdx) irExpr() {}
func (*ELoadPtr) irExpr() {}
func (*EAddr) irExpr()    {}
func (*EUnary) irExpr()   {}
func (*EBinary) irExpr()  {}
func (*EInput) irExpr()   {}

// WalkExpr visits e and all subexpressions in evaluation order.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *EConst, *EInput:
	case *ELoad:
	case *ELoadIdx:
		WalkExpr(x.Idx, fn)
	case *ELoadPtr:
		WalkExpr(x.Addr, fn)
	case *EAddr:
		WalkExpr(x.Idx, fn)
	case *EUnary:
		WalkExpr(x.X, fn)
	case *EBinary:
		WalkExpr(x.X, fn)
		WalkExpr(x.Y, fn)
	}
	fn(e)
}

// Dump renders the whole program as text, one block per paragraph. Intended
// for debugging and golden tests.
func (p *Program) Dump() string {
	var b strings.Builder
	for _, f := range p.Funcs {
		fmt.Fprintf(&b, "func %s(", f.Name)
		for i, prm := range f.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(prm.Name)
		}
		b.WriteString(")\n")
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "  block %d (B%d)", blk.Index, blk.ID)
			if len(blk.Succs) > 0 {
				b.WriteString(" ->")
				for _, s := range blk.Succs {
					fmt.Fprintf(&b, " %d", s.Index)
				}
			}
			b.WriteString("\n")
			for _, s := range blk.Stmts {
				fmt.Fprintf(&b, "    s%-4d %s  uses=%d defs=%d", s.ID, describeStmt(p, s), len(s.Uses), s.NumDefs)
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}

func describeStmt(p *Program, s *Stmt) string {
	switch s.Op {
	case OpAssign:
		switch s.Lhs {
		case LVar:
			return fmt.Sprintf("%s = %s", p.Obj(s.LhsObj).Name, exprString(p, s.Rhs))
		case LIndex:
			return fmt.Sprintf("%s[%s] = %s", p.Obj(s.LhsObj).Name, exprString(p, s.LhsIdx), exprString(p, s.Rhs))
		case LDeref:
			return fmt.Sprintf("*(%s) = %s", exprString(p, s.LhsAddr), exprString(p, s.Rhs))
		}
	case OpDeclArr:
		return fmt.Sprintf("declare %s[%d]", p.Obj(s.Obj).Name, p.Obj(s.Obj).Size)
	case OpCond:
		return fmt.Sprintf("if %s", exprString(p, s.Rhs))
	case OpCall:
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			args[i] = exprString(p, a)
		}
		return fmt.Sprintf("call %s(%s)", s.Callee.Name, strings.Join(args, ", "))
	case OpReturn:
		if s.Rhs == nil {
			return "return"
		}
		return fmt.Sprintf("return %s", exprString(p, s.Rhs))
	case OpPrint:
		return fmt.Sprintf("print %s", exprString(p, s.Rhs))
	}
	return "?"
}

func exprString(p *Program, e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *EConst:
		return fmt.Sprintf("%d", x.Val)
	case *ELoad:
		return p.Obj(x.Obj).Name
	case *ELoadIdx:
		return fmt.Sprintf("%s[%s]", p.Obj(x.Obj).Name, exprString(p, x.Idx))
	case *ELoadPtr:
		return fmt.Sprintf("*(%s)", exprString(p, x.Addr))
	case *EAddr:
		if x.Idx == nil {
			return "&" + p.Obj(x.Obj).Name
		}
		return fmt.Sprintf("&%s[%s]", p.Obj(x.Obj).Name, exprString(p, x.Idx))
	case *EUnary:
		return fmt.Sprintf("%s(%s)", x.Op, exprString(p, x.X))
	case *EBinary:
		return fmt.Sprintf("(%s %s %s)", exprString(p, x.X), x.Op, exprString(p, x.Y))
	case *EInput:
		return "input()"
	}
	return "?"
}
