package ir

import (
	"fmt"

	"dynslice/internal/lang"
)

// Lower translates a checked AST into IR. Lowering:
//
//   - hoists calls out of expressions (each call becomes an OpCall block
//     terminator followed by `tmp = $ret` in the continuation block),
//   - materializes global initialization as statements at main's entry,
//   - inserts an implicit `return 0` on every path that falls off the end
//     of a function,
//   - builds the CFG with call statements terminating blocks, and
//   - removes unreachable blocks and numbers statements and blocks
//     program-wide.
func Lower(ast *lang.Program) (*Program, error) {
	lw := &lowerer{
		prog: &Program{Source: ""},
		ast:  ast,
	}
	return lw.run()
}

type lowerer struct {
	prog *Program
	ast  *lang.Program

	fn     *Func
	blk    *Block // current block being filled (nil after a terminator)
	scopes []map[string]*Object
	loops  []loopCtx
	tmpSeq int

	// cse memoizes pure computations (binary/unary/address ops over leaf
	// operands) hoisted into temporaries within the current block, so
	// repeated subexpressions (typically index arithmetic) share one
	// temporary — standard block-local common-subexpression elimination,
	// mirroring what the paper's Trimaran substrate performs.
	cse map[cseKey]*Object
}

// cseKey identifies a pure single-operation computation over leaves.
type cseKey struct {
	op       lang.Kind
	kind     uint8 // 1: binary, 2: unary, 3: addr, 4: addr+index
	aIsConst bool
	aVal     int64 // constant value or ObjID
	bIsConst bool
	bVal     int64
}

func leafKey(e Expr) (isConst bool, val int64, ok bool) {
	switch x := e.(type) {
	case *EConst:
		return true, x.Val, true
	case *ELoad:
		return false, int64(x.Obj), true
	}
	return false, 0, false
}

// cseLookup returns a memoized temporary for the simplified expression, if
// the computation is pure and already available in this block.
func (lw *lowerer) cseLookup(e Expr) (*Object, cseKey, bool, bool) {
	var k cseKey
	switch x := e.(type) {
	case *EBinary:
		ac, av, ok1 := leafKey(x.X)
		bc, bv, ok2 := leafKey(x.Y)
		if !ok1 || !ok2 {
			return nil, k, false, false
		}
		k = cseKey{op: x.Op, kind: 1, aIsConst: ac, aVal: av, bIsConst: bc, bVal: bv}
	case *EUnary:
		ac, av, ok1 := leafKey(x.X)
		if !ok1 {
			return nil, k, false, false
		}
		k = cseKey{op: x.Op, kind: 2, aIsConst: ac, aVal: av}
	case *EAddr:
		if x.Idx == nil {
			k = cseKey{kind: 3, aVal: int64(x.Obj)}
		} else {
			bc, bv, ok1 := leafKey(x.Idx)
			if !ok1 {
				return nil, k, false, false
			}
			k = cseKey{kind: 4, aVal: int64(x.Obj), bIsConst: bc, bVal: bv}
		}
	default:
		return nil, k, false, false
	}
	if lw.cse == nil {
		return nil, k, false, true
	}
	t, hit := lw.cse[k]
	return t, k, hit, true
}

// cseInvalidate drops memo entries that read the (re)defined scalar.
func (lw *lowerer) cseInvalidate(obj ObjID) {
	for k := range lw.cse {
		if (!k.aIsConst && k.aVal == int64(obj) && k.kind != 3 && k.kind != 4) ||
			(!k.bIsConst && k.bVal == int64(obj) && (k.kind == 1 || k.kind == 4)) {
			delete(lw.cse, k)
		}
	}
}

type loopCtx struct {
	continueTo *Block
	breakTo    *Block
}

func (lw *lowerer) run() (*Program, error) {
	p := lw.prog
	// Create function shells first so calls can be resolved.
	fnByName := map[string]*Func{}
	for i, fd := range lw.ast.Funcs {
		f := &Func{ID: i, Name: fd.Name}
		p.Funcs = append(p.Funcs, f)
		fnByName[fd.Name] = f
	}
	p.Main = fnByName["main"]

	// Globals.
	var goff int64
	for _, g := range lw.ast.Globals {
		o := lw.newObject(g.Name, nil, g.Size)
		o.Off = goff
		goff += o.Size
		p.Globals = append(p.Globals, o)
	}
	p.GlobalSize = goff

	// Lower each function.
	for i, fd := range lw.ast.Funcs {
		if err := lw.lowerFunc(p.Funcs[i], fd, fnByName); err != nil {
			return nil, err
		}
	}

	// Program-wide numbering.
	lw.number()
	return p, nil
}

func (lw *lowerer) newObject(name string, fn *Func, arrSize int64) *Object {
	o := &Object{
		ID:      ObjID(len(lw.prog.Objects)),
		Name:    name,
		Fn:      fn,
		Size:    1,
		IsArray: arrSize > 0,
	}
	if arrSize > 0 {
		o.Size = arrSize
	}
	lw.prog.Objects = append(lw.prog.Objects, o)
	return o
}

func (lw *lowerer) globalScope() map[string]*Object {
	m := map[string]*Object{}
	for _, o := range lw.prog.Globals {
		m[o.Name] = o
	}
	return m
}

func (lw *lowerer) lookup(name string) *Object {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if o, ok := lw.scopes[i][name]; ok {
			return o
		}
	}
	return nil
}

func (lw *lowerer) declare(name string, arrSize int64) *Object {
	o := lw.newObject(name, lw.fn, arrSize)
	lw.fn.Locals = append(lw.fn.Locals, o)
	lw.scopes[len(lw.scopes)-1][name] = o
	return o
}

func (lw *lowerer) newTemp() *Object {
	lw.tmpSeq++
	o := lw.newObject(fmt.Sprintf("$t%d", lw.tmpSeq), lw.fn, 0)
	lw.fn.Locals = append(lw.fn.Locals, o)
	return o
}

func (lw *lowerer) newBlock() *Block {
	b := &Block{Fn: lw.fn, Index: len(lw.fn.Blocks)}
	lw.fn.Blocks = append(lw.fn.Blocks, b)
	return b
}

// setBlock makes b the current insertion block and resets the CSE memo
// (memoized temporaries are only valid within one block).
func (lw *lowerer) setBlock(b *Block) {
	lw.blk = b
	lw.cse = map[cseKey]*Object{}
}

// emit appends a statement to the current block, maintaining the CSE memo.
func (lw *lowerer) emit(s *Stmt) *Stmt {
	s.Block = lw.blk
	s.Idx = len(lw.blk.Stmts)
	lw.blk.Stmts = append(lw.blk.Stmts, s)
	if s.Op == OpAssign {
		switch s.Lhs {
		case LVar:
			lw.cseInvalidate(s.LhsObj)
		case LDeref:
			// AddrTaken flags are not final during lowering, so be fully
			// conservative about what a pointer store may overwrite.
			lw.cse = map[cseKey]*Object{}
		}
	}
	return s
}

// link adds a CFG edge a -> b.
func link(a, b *Block) { a.Succs = append(a.Succs, b) }

func (lw *lowerer) lowerFunc(f *Func, fd *lang.FuncDecl, fnByName map[string]*Func) error {
	lw.fn = f
	lw.tmpSeq = 0
	lw.scopes = []map[string]*Object{lw.globalScope(), {}}
	lw.loops = nil

	for _, pname := range fd.Params {
		o := lw.newObject(pname, f, 0)
		f.Params = append(f.Params, o)
		f.Locals = append(f.Locals, o)
		lw.scopes[1][pname] = o
	}
	f.Ret = lw.newObject("$ret", f, 0)
	f.Ret.IsRet = true
	f.Locals = append(f.Locals, f.Ret)

	entry := lw.newBlock()
	lw.setBlock(entry)

	// Global initialization runs at the start of main.
	if f == lw.prog.Main {
		for i, g := range lw.ast.Globals {
			o := lw.prog.Globals[i]
			if o.IsArray {
				lw.emit(&Stmt{Op: OpDeclArr, Obj: o.ID, Pos: g.Pos_})
				continue
			}
			rhs := Expr(&EConst{Val: 0})
			if g.Init != nil {
				var err error
				rhs, err = lw.lowerExpr(g.Init)
				if err != nil {
					return err
				}
			}
			rhs = lw.simplify(rhs, g.Pos_)
			lw.emit(&Stmt{Op: OpAssign, Lhs: LVar, LhsObj: o.ID, Rhs: rhs, Pos: g.Pos_})
		}
	}

	if err := lw.lowerBlockStmt(fd.Body); err != nil {
		return err
	}

	// Implicit `return 0` for paths that fall off the end.
	if lw.blk != nil {
		lw.emit(&Stmt{Op: OpReturn, Rhs: &EConst{Val: 0}, Pos: fd.Pos_})
		lw.blk = nil
	}
	exit := lw.newBlock()
	f.Exit = exit
	// Wire every return block to the exit.
	for _, b := range f.Blocks {
		if b == exit {
			continue
		}
		if t := b.Terminator(); t != nil && t.Op == OpReturn {
			link(b, exit)
		}
	}

	lw.cleanup(f)

	// Assign frame offsets.
	var off int64
	for _, o := range f.Locals {
		o.Off = off
		off += o.Size
	}
	f.FrameSize = off
	lw.resolveCalls(f, fnByName)
	return nil
}

// resolveCalls is a no-op placeholder kept for symmetry; callees are
// resolved during lowering via fnByName captured in lowerExpr closures.
func (lw *lowerer) resolveCalls(*Func, map[string]*Func) {}

func (lw *lowerer) lowerBlockStmt(b *lang.BlockStmt) error {
	lw.scopes = append(lw.scopes, map[string]*Object{})
	defer func() { lw.scopes = lw.scopes[:len(lw.scopes)-1] }()
	for _, s := range b.Stmts {
		if lw.blk == nil {
			// Unreachable code after break/continue/return: skip it.
			return nil
		}
		if err := lw.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) lowerStmt(s lang.Stmt) error {
	switch st := s.(type) {
	case *lang.VarDecl:
		o := lw.declare(st.Name, st.Size)
		if o.IsArray {
			lw.emit(&Stmt{Op: OpDeclArr, Obj: o.ID, Pos: st.Pos_})
			return nil
		}
		rhs := Expr(&EConst{Val: 0})
		if st.Init != nil {
			var err error
			rhs, err = lw.lowerExpr(st.Init)
			if err != nil {
				return err
			}
		}
		rhs = lw.simplify(rhs, st.Pos_)
		lw.emit(&Stmt{Op: OpAssign, Lhs: LVar, LhsObj: o.ID, Rhs: rhs, Pos: st.Pos_})
		return nil

	case *lang.AssignStmt:
		if st.Deref {
			addr, err := lw.lowerExpr(st.Addr)
			if err != nil {
				return err
			}
			rhs, err := lw.lowerExpr(st.Rhs)
			if err != nil {
				return err
			}
			addr = lw.atom(addr, st.Pos_)
			rhs = lw.atom(rhs, st.Pos_)
			lw.emit(&Stmt{Op: OpAssign, Lhs: LDeref, LhsAddr: addr, Rhs: rhs, Pos: st.Pos_})
			return nil
		}
		o := lw.lookup(st.Name)
		if st.Index != nil {
			idx, err := lw.lowerExpr(st.Index)
			if err != nil {
				return err
			}
			rhs, err := lw.lowerExpr(st.Rhs)
			if err != nil {
				return err
			}
			idx = lw.atom(idx, st.Pos_)
			rhs = lw.atom(rhs, st.Pos_)
			lw.emit(&Stmt{Op: OpAssign, Lhs: LIndex, LhsObj: o.ID, LhsIdx: idx, Rhs: rhs, Pos: st.Pos_})
			return nil
		}
		rhs, err := lw.lowerExpr(st.Rhs)
		if err != nil {
			return err
		}
		rhs = lw.simplify(rhs, st.Pos_)
		lw.emit(&Stmt{Op: OpAssign, Lhs: LVar, LhsObj: o.ID, Rhs: rhs, Pos: st.Pos_})
		return nil

	case *lang.IfStmt:
		cond, err := lw.lowerExpr(st.Cond)
		if err != nil {
			return err
		}
		cond = lw.simplify(cond, st.Pos_)
		condBlk := lw.blk
		lw.emit(&Stmt{Op: OpCond, Rhs: cond, Pos: st.Pos_})
		thenBlk := lw.newBlock()
		link(condBlk, thenBlk)
		lw.setBlock(thenBlk)
		if err := lw.lowerBlockStmt(st.Then); err != nil {
			return err
		}
		thenEnd := lw.blk

		var elseEnd *Block
		if st.Else != nil {
			elseBlk := lw.newBlock()
			link(condBlk, elseBlk)
			lw.setBlock(elseBlk)
			if err := lw.lowerStmt(st.Else); err != nil {
				return err
			}
			elseEnd = lw.blk
		}

		if st.Else == nil {
			merge := lw.newBlock()
			link(condBlk, merge) // false edge
			if thenEnd != nil {
				link(thenEnd, merge)
			}
			lw.setBlock(merge)
			return nil
		}
		if thenEnd == nil && elseEnd == nil {
			lw.blk = nil
			return nil
		}
		merge := lw.newBlock()
		if thenEnd != nil {
			link(thenEnd, merge)
		}
		if elseEnd != nil {
			link(elseEnd, merge)
		}
		lw.setBlock(merge)
		return nil

	case *lang.WhileStmt:
		header := lw.newBlock()
		link(lw.blk, header)
		lw.setBlock(header)
		cond, err := lw.lowerExpr(st.Cond)
		if err != nil {
			return err
		}
		cond = lw.simplify(cond, st.Pos_)
		// The condition may have hoisted calls or temporaries, splitting
		// blocks; the block holding the OpCond is the current one, which
		// may differ from header. Back edges target header (re-evaluating
		// the calls and temporaries).
		condBlk := lw.blk
		lw.emit(&Stmt{Op: OpCond, Rhs: cond, Pos: st.Pos_})
		body := lw.newBlock()
		after := lw.newBlock()
		link(condBlk, body)
		link(condBlk, after)
		lw.loops = append(lw.loops, loopCtx{continueTo: header, breakTo: after})
		lw.setBlock(body)
		if err := lw.lowerBlockStmt(st.Body); err != nil {
			return err
		}
		if lw.blk != nil {
			link(lw.blk, header)
		}
		lw.loops = lw.loops[:len(lw.loops)-1]
		lw.setBlock(after)
		return nil

	case *lang.ForStmt:
		lw.scopes = append(lw.scopes, map[string]*Object{})
		defer func() { lw.scopes = lw.scopes[:len(lw.scopes)-1] }()
		if st.Init != nil {
			if err := lw.lowerStmt(st.Init); err != nil {
				return err
			}
		}
		header := lw.newBlock()
		link(lw.blk, header)
		lw.setBlock(header)
		cond := Expr(&EConst{Val: 1})
		if st.Cond != nil {
			var err error
			cond, err = lw.lowerExpr(st.Cond)
			if err != nil {
				return err
			}
		}
		cond = lw.simplify(cond, st.Pos_)
		condBlk := lw.blk
		lw.emit(&Stmt{Op: OpCond, Rhs: cond, Pos: st.Pos_})
		body := lw.newBlock()
		after := lw.newBlock()
		post := lw.newBlock()
		link(condBlk, body)
		link(condBlk, after)
		lw.loops = append(lw.loops, loopCtx{continueTo: post, breakTo: after})
		lw.setBlock(body)
		if err := lw.lowerBlockStmt(st.Body); err != nil {
			return err
		}
		if lw.blk != nil {
			link(lw.blk, post)
		}
		lw.loops = lw.loops[:len(lw.loops)-1]
		lw.setBlock(post)
		if st.Post != nil {
			if err := lw.lowerStmt(st.Post); err != nil {
				return err
			}
		}
		if lw.blk != nil {
			link(lw.blk, header)
		}
		lw.setBlock(after)
		return nil

	case *lang.ReturnStmt:
		rhs := Expr(&EConst{Val: 0})
		if st.Value != nil {
			var err error
			rhs, err = lw.lowerExpr(st.Value)
			if err != nil {
				return err
			}
		}
		rhs = lw.simplify(rhs, st.Pos_)
		lw.emit(&Stmt{Op: OpReturn, Rhs: rhs, Pos: st.Pos_})
		lw.blk = nil
		return nil

	case *lang.BreakStmt:
		lc := lw.loops[len(lw.loops)-1]
		link(lw.blk, lc.breakTo)
		lw.blk = nil
		return nil

	case *lang.ContinueStmt:
		lc := lw.loops[len(lw.loops)-1]
		link(lw.blk, lc.continueTo)
		lw.blk = nil
		return nil

	case *lang.PrintStmt:
		arg, err := lw.lowerExpr(st.Arg)
		if err != nil {
			return err
		}
		arg = lw.simplify(arg, st.Pos_)
		lw.emit(&Stmt{Op: OpPrint, Rhs: arg, Pos: st.Pos_})
		return nil

	case *lang.ExprStmt:
		// A call for effect: lower the call, discard $ret.
		_, err := lw.lowerCall(st.Call, false)
		return err

	case *lang.BlockStmt:
		return lw.lowerBlockStmt(st)
	}
	return fmt.Errorf("%s: internal: unhandled statement %T", s.Position(), s)
}

// lowerCall emits argument evaluation and the OpCall terminator, then opens
// the continuation block. If wantValue is true it returns an expression
// reading a fresh temporary that holds the return value.
func (lw *lowerer) lowerCall(c *lang.CallExpr, wantValue bool) (Expr, error) {
	callee := lw.calleeOf(c.Callee)
	args := make([]Expr, len(c.Args))
	for i, a := range c.Args {
		e, err := lw.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		args[i] = lw.atom(e, c.Pos_)
	}
	callBlk := lw.blk
	lw.emit(&Stmt{Op: OpCall, Callee: callee, Args: args, Pos: c.Pos_})
	cont := lw.newBlock()
	link(callBlk, cont)
	lw.setBlock(cont)
	if !wantValue {
		return nil, nil
	}
	tmp := lw.newTemp()
	lw.emit(&Stmt{
		Op: OpAssign, Lhs: LVar, LhsObj: tmp.ID,
		Rhs: &ELoad{Obj: lw.fn.Ret.ID}, Pos: c.Pos_,
	})
	return &ELoad{Obj: tmp.ID}, nil
}

func (lw *lowerer) calleeOf(name string) *Func {
	for _, f := range lw.prog.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil // unreachable: checker verified call targets
}

// lowerExpr lowers an AST expression, hoisting any contained calls before
// the current statement. Calls are evaluated left to right, before any
// other part of the containing statement.
func (lw *lowerer) lowerExpr(e lang.Expr) (Expr, error) {
	switch ex := e.(type) {
	case *lang.NumLit:
		return &EConst{Val: ex.Value}, nil
	case *lang.VarRef:
		return &ELoad{Obj: lw.lookup(ex.Name).ID}, nil
	case *lang.IndexExpr:
		idx, err := lw.lowerExpr(ex.Index)
		if err != nil {
			return nil, err
		}
		return &ELoadIdx{Obj: lw.lookup(ex.Array).ID, Idx: idx}, nil
	case *lang.DerefExpr:
		addr, err := lw.lowerExpr(ex.Addr)
		if err != nil {
			return nil, err
		}
		return &ELoadPtr{Addr: addr}, nil
	case *lang.AddrOfExpr:
		o := lw.lookup(ex.Name)
		o.AddrTaken = true
		if ex.Index == nil {
			return &EAddr{Obj: o.ID}, nil
		}
		idx, err := lw.lowerExpr(ex.Index)
		if err != nil {
			return nil, err
		}
		return &EAddr{Obj: o.ID, Idx: idx}, nil
	case *lang.UnaryExpr:
		x, err := lw.lowerExpr(ex.X)
		if err != nil {
			return nil, err
		}
		return &EUnary{Op: ex.Op, X: x}, nil
	case *lang.BinaryExpr:
		x, err := lw.lowerExpr(ex.X)
		if err != nil {
			return nil, err
		}
		y, err := lw.lowerExpr(ex.Y)
		if err != nil {
			return nil, err
		}
		return &EBinary{Op: ex.Op, X: x, Y: y}, nil
	case *lang.CallExpr:
		return lw.lowerCall(ex, true)
	case *lang.InputExpr:
		return &EInput{}, nil
	}
	return nil, fmt.Errorf("%s: internal: unhandled expression %T", e.Position(), e)
}

// cleanup removes unreachable blocks, computes predecessor lists, and
// renumbers block indices within the function.
func (lw *lowerer) cleanup(f *Func) {
	reach := map[*Block]bool{}
	var dfs func(*Block)
	dfs = func(b *Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
	}
	dfs(f.Blocks[0])
	reach[f.Exit] = true

	var kept []*Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	for i, b := range f.Blocks {
		b.Index = i
		b.Preds = nil
	}
	for _, b := range f.Blocks {
		var succs []*Block
		for _, s := range b.Succs {
			if reach[s] {
				succs = append(succs, s)
			}
		}
		b.Succs = succs
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// number assigns program-wide IDs to blocks and statements and fills the
// flat lookup slices.
func (lw *lowerer) number() {
	p := lw.prog
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			b.ID = BlockID(len(p.Blocks))
			p.Blocks = append(p.Blocks, b)
			for i, s := range b.Stmts {
				s.ID = StmtID(len(p.Stmts))
				s.Block = b
				s.Idx = i
				p.Stmts = append(p.Stmts, s)
			}
		}
	}
}

// ---- Three-address decomposition ----
//
// Expressions are flattened into temporaries so every statement performs
// at most one operation over leaf operands, mirroring the paper's
// Trimaran substrate. The resulting block-local temporary def-use chains
// are exactly the dependences OPT-1a infers without labels.

// atom reduces e to a leaf operand (constant, scalar load, or input),
// hoisting anything larger into a temporary in the current block. Pure
// computations reuse an existing temporary when the same computation is
// already available (block-local CSE).
func (lw *lowerer) atom(e Expr, pos lang.Pos) Expr {
	switch e.(type) {
	case *EConst, *ELoad, *EInput:
		return e
	}
	simple := lw.simplify(e, pos)
	if t, key, hit, pure := lw.cseLookup(simple); pure {
		if hit {
			return &ELoad{Obj: t.ID}
		}
		nt := lw.newTemp()
		lw.emit(&Stmt{Op: OpAssign, Lhs: LVar, LhsObj: nt.ID, Rhs: simple, Pos: pos})
		lw.cse[key] = nt
		return &ELoad{Obj: nt.ID}
	}
	t := lw.newTemp()
	lw.emit(&Stmt{Op: OpAssign, Lhs: LVar, LhsObj: t.ID, Rhs: simple, Pos: pos})
	return &ELoad{Obj: t.ID}
}

// simplify reduces e to a single operation whose operands are leaves,
// emitting temporaries for subexpressions in evaluation order.
func (lw *lowerer) simplify(e Expr, pos lang.Pos) Expr {
	switch x := e.(type) {
	case *EBinary:
		x.X = lw.atom(x.X, pos)
		x.Y = lw.atom(x.Y, pos)
		return x
	case *EUnary:
		x.X = lw.atom(x.X, pos)
		return x
	case *ELoadIdx:
		x.Idx = lw.atom(x.Idx, pos)
		return x
	case *ELoadPtr:
		x.Addr = lw.atom(x.Addr, pos)
		return x
	case *EAddr:
		if x.Idx != nil {
			x.Idx = lw.atom(x.Idx, pos)
		}
		return x
	}
	return e
}
