package ir

// Finalize assigns use slots (memory read sites, in evaluation order) and
// def counts to every statement. It must run once after Lower and before
// alias analysis (which fills the MayPts/MayDefs fields) and before any
// execution or graph construction.
//
// Evaluation order, which the interpreter reproduces exactly:
//
//	OpAssign: Rhs, then LhsIdx (a[i]=) or LhsAddr (*e=)
//	OpCond, OpReturn, OpPrint: Rhs
//	OpCall: Args left to right
//
// Within an expression, loads occur in post-order (operands before the
// load that consumes them), which is what WalkExpr yields.
func (p *Program) Finalize() {
	for _, s := range p.Stmts {
		s.Uses = nil
		s.MustDef = NoObj
		s.MayDefs = nil
		collect := func(e Expr) {
			WalkExpr(e, func(x Expr) {
				switch l := x.(type) {
				case *ELoad:
					l.Slot = len(s.Uses)
					s.Uses = append(s.Uses, &UseSlot{Obj: l.Obj})
				case *ELoadIdx:
					l.Slot = len(s.Uses)
					s.Uses = append(s.Uses, &UseSlot{Obj: l.Obj, IsIdx: true})
				case *ELoadPtr:
					l.Slot = len(s.Uses)
					s.Uses = append(s.Uses, &UseSlot{Obj: NoObj, IsPtr: true})
				}
			})
		}
		switch s.Op {
		case OpAssign:
			collect(s.Rhs)
			switch s.Lhs {
			case LVar:
				s.MustDef = s.LhsObj
				s.NumDefs = 1
			case LIndex:
				collect(s.LhsIdx)
				s.MayDefs = append(s.MayDefs, s.LhsObj)
				s.NumDefs = 1
			case LDeref:
				collect(s.LhsAddr)
				s.NumDefs = 1
				// MayDefs filled by alias analysis.
			}
		case OpDeclArr:
			s.MayDefs = append(s.MayDefs, s.Obj)
			s.NumDefs = 1 // a region def record
		case OpCond, OpPrint:
			collect(s.Rhs)
		case OpReturn:
			collect(s.Rhs)
			s.NumDefs = 1 // writes the caller's $ret slot
			// MayDefs ($ret objects of possible callers) filled later.
		case OpCall:
			for _, a := range s.Args {
				collect(a)
			}
			s.NumDefs = len(s.Callee.Params)
			for _, prm := range s.Callee.Params {
				s.MayDefs = append(s.MayDefs, prm.ID)
			}
		}
	}
}
