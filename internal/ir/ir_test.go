package ir_test

import (
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/ir"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCFGWellFormed checks structural invariants of the lowered CFG on a
// battery of shapes: terminators only at block ends, successor counts
// consistent with terminators, pred/succ symmetry, and statement/block
// numbering matching the flat indices.
func TestCFGWellFormed(t *testing.T) {
	sources := []string{
		`func main() {}`,
		`func main() { var x = 1; if (x > 0) { print(x); } }`,
		`func main() { var i = 0; while (i < 3) { i = i + 1; } print(i); }`,
		`func main() { for (var i = 0; i < 9; i = i + 1) { if (i == 4) { continue; } if (i == 7) { break; } } }`,
		`func f(a) { if (a > 0) { return a; } return 0 - a; } func main() { print(f(input())); }`,
		`func main() { var a[3]; var p = &a[0]; *p = 5; print(a[0] + *p); }`,
	}
	for _, src := range sources {
		p := lower(t, src)
		for i, b := range p.Blocks {
			if int(b.ID) != i {
				t.Fatalf("block id %d at index %d", b.ID, i)
			}
			for j, s := range b.Stmts {
				if s.Block != b || s.Idx != j {
					t.Fatalf("statement back-pointers broken at %s", b)
				}
				isTerm := s.Op == ir.OpCond || s.Op == ir.OpCall || s.Op == ir.OpReturn
				if isTerm && j != len(b.Stmts)-1 {
					t.Fatalf("terminator %v mid-block in %s", s.Op, b)
				}
			}
			switch term := b.Terminator(); {
			case term == nil:
				if b != b.Fn.Exit && len(b.Succs) != 1 {
					t.Fatalf("fallthrough block %s has %d successors", b, len(b.Succs))
				}
			case term.Op == ir.OpCond:
				if len(b.Succs) != 2 {
					t.Fatalf("cond block %s has %d successors", b, len(b.Succs))
				}
			case term.Op == ir.OpCall, term.Op == ir.OpReturn:
				if len(b.Succs) != 1 {
					t.Fatalf("%v block %s has %d successors", term.Op, b, len(b.Succs))
				}
			}
			for _, s := range b.Succs {
				found := false
				for _, pr := range s.Preds {
					if pr == b {
						found = true
					}
				}
				if !found {
					t.Fatalf("pred/succ asymmetry %s -> %s", b, s)
				}
			}
		}
		for i, s := range p.Stmts {
			if int(s.ID) != i {
				t.Fatalf("stmt id %d at index %d", s.ID, i)
			}
		}
	}
}

// TestThreeAddressForm verifies that lowering flattens expressions: every
// statement performs at most one operation over leaf operands.
func TestThreeAddressForm(t *testing.T) {
	p := lower(t, `
		var g = 0;
		func main() {
			var a[4];
			var i = 1;
			g = (i + 2) * (i - 3) + a[i * 2] / 5;
			print(g);
		}
	`)
	var checkLeaf func(e ir.Expr) bool
	checkLeaf = func(e ir.Expr) bool {
		switch e.(type) {
		case *ir.EConst, *ir.ELoad, *ir.EInput, nil:
			return true
		}
		return false
	}
	for _, s := range p.Stmts {
		exprs := []ir.Expr{}
		switch s.Op {
		case ir.OpAssign:
			exprs = append(exprs, s.Rhs)
			if s.Lhs == ir.LIndex {
				if !checkLeaf(s.LhsIdx) {
					t.Fatalf("s%d: store index is not a leaf", s.ID)
				}
			}
		case ir.OpCond, ir.OpPrint, ir.OpReturn:
			exprs = append(exprs, s.Rhs)
		case ir.OpCall:
			for _, a := range s.Args {
				if !checkLeaf(a) {
					t.Fatalf("s%d: call argument is not a leaf", s.ID)
				}
			}
		}
		for _, e := range exprs {
			switch x := e.(type) {
			case *ir.EBinary:
				if !checkLeaf(x.X) || !checkLeaf(x.Y) {
					t.Fatalf("s%d: binary operands not leaves", s.ID)
				}
			case *ir.EUnary:
				if !checkLeaf(x.X) {
					t.Fatalf("s%d: unary operand not a leaf", s.ID)
				}
			case *ir.ELoadIdx:
				if !checkLeaf(x.Idx) {
					t.Fatalf("s%d: load index not a leaf", s.ID)
				}
			case *ir.ELoadPtr:
				if !checkLeaf(x.Addr) {
					t.Fatalf("s%d: load address not a leaf", s.ID)
				}
			}
		}
	}
}

// TestCSESharesIndexTemps checks that repeated pure index computations in
// one block reuse a single temporary.
func TestCSESharesIndexTemps(t *testing.T) {
	p := lower(t, `
		func main() {
			var a[16];
			var b[16];
			var i = 3;
			a[i * 2 + 1] = 10;
			b[i * 2 + 1] = 20;
			print(a[i * 2 + 1] + b[i * 2 + 1]);
		}
	`)
	// Count statements computing i*2: with CSE there must be exactly one
	// multiplication by 2 in the whole program.
	muls := 0
	for _, s := range p.Stmts {
		if s.Op != ir.OpAssign {
			continue
		}
		if bin, ok := s.Rhs.(*ir.EBinary); ok {
			if c, ok := bin.Y.(*ir.EConst); ok && c.Val == 2 {
				muls++
			}
		}
	}
	if muls != 1 {
		t.Fatalf("i*2 computed %d times, want 1 (CSE)", muls)
	}
}

// TestUseSlotsMatchEvaluation verifies slot counts for representative
// statement forms.
func TestUseSlotsMatchEvaluation(t *testing.T) {
	p := lower(t, `
		var g = 5;
		func main() {
			var a[4];
			var i = 1;
			var x = a[i];      // uses: i, a[i]
			var p = &a[2];     // uses: none (address computation)
			var y = *p;        // uses: p, *p
			g = x + y;         // uses: x, y
			print(g);          // uses: g
		}
	`)
	counts := map[string]int{}
	for _, s := range p.Stmts {
		if s.Op == ir.OpAssign && s.Lhs == ir.LVar {
			counts[p.Obj(s.LhsObj).Name] = len(s.Uses)
		}
	}
	if counts["x"] != 2 {
		t.Errorf("x = a[i] has %d use slots, want 2", counts["x"])
	}
	if counts["p"] != 0 {
		t.Errorf("p = &a[2] has %d use slots, want 0", counts["p"])
	}
	if counts["y"] != 2 {
		t.Errorf("y = *p has %d use slots, want 2", counts["y"])
	}
	if counts["g"] != 2 {
		t.Errorf("g = x + y has %d use slots, want 2", counts["g"])
	}
}

// TestLogicalChains checks superblock chain construction.
func TestLogicalChains(t *testing.T) {
	p := lower(t, `
		func f(x) { return x + 1; }
		func main() {
			var a = f(1) + f(2);
			print(a);
		}
	`)
	heads := 0
	for _, b := range p.Main.Blocks {
		if b.IsContinuation() {
			if len(b.Preds) != 1 || !b.Preds[0].IsCallBlock() {
				t.Fatalf("bad continuation %s", b)
			}
			continue
		}
		chain := ir.LogicalChain(b)
		heads++
		for i, cb := range chain {
			if i > 0 && !cb.IsContinuation() {
				t.Fatalf("chain of %s contains non-continuation %s", b, cb)
			}
		}
		// The entry's chain must cover both calls.
		if b == p.Main.Entry() && len(chain) < 3 {
			t.Fatalf("entry chain has %d blocks, want >= 3 (two calls)", len(chain))
		}
	}
	if heads == 0 {
		t.Fatal("no chain heads found")
	}
}

// TestAliasAnnotations checks that points-to results land on the IR.
func TestAliasAnnotations(t *testing.T) {
	p := lower(t, `
		var x = 1;
		var y = 2;
		func main() {
			var p = &x;
			if (input() > 0) { p = &y; }
			*p = 7;
			print(*p);
		}
	`)
	var store *ir.Stmt
	for _, s := range p.Stmts {
		if s.Op == ir.OpAssign && s.Lhs == ir.LDeref {
			store = s
		}
	}
	if store == nil {
		t.Fatal("no deref store found")
	}
	hasX, hasY := false, false
	for _, o := range store.MayDefs {
		switch p.Obj(o).Name {
		case "x":
			hasX = true
		case "y":
			hasY = true
		}
	}
	if !hasX || !hasY {
		t.Fatalf("deref store may-defs = %v, want x and y", store.MayDefs)
	}
	if !p.Obj(findObj(p, "x")).AddrTaken || !p.Obj(findObj(p, "y")).AddrTaken {
		t.Error("address-taken flags not set")
	}
}

func findObj(p *ir.Program, name string) ir.ObjID {
	for _, o := range p.Objects {
		if o.Name == name {
			return o.ID
		}
	}
	return ir.NoObj
}

// TestMODSummaries checks transitive side-effect summaries.
func TestMODSummaries(t *testing.T) {
	p := lower(t, `
		var g = 0;
		func deep() { g = g + 1; return g; }
		func mid() { return deep(); }
		func main() { mid(); print(g); }
	`)
	gid := findObj(p, "g")
	for _, name := range []string{"deep", "mid"} {
		f := p.Func(name)
		if !f.MOD[gid] {
			t.Errorf("MOD(%s) should contain g", name)
		}
	}
	// Call statements to mid must may-def g.
	for _, s := range p.Stmts {
		if s.Op == ir.OpCall && s.Callee.Name == "mid" {
			found := false
			for _, o := range s.MayDefs {
				if o == gid {
					found = true
				}
			}
			if !found {
				t.Error("call to mid should may-def g")
			}
		}
	}
}
