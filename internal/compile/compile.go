// Package compile wires the front-end pipeline together: parse, lower,
// finalize slots, alias analysis, and the static control-dependence
// computation every slicing algorithm relies on.
package compile

import (
	"dynslice/internal/alias"
	"dynslice/internal/dataflow"
	"dynslice/internal/ir"
	"dynslice/internal/lang"
)

// Source compiles MiniC source text into fully analyzed IR.
func Source(src string) (*ir.Program, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	p, err := ir.Lower(ast)
	if err != nil {
		return nil, err
	}
	p.Source = src
	p.Finalize()
	alias.Run(p)
	for _, f := range p.Funcs {
		pd := dataflow.PostDominators(f)
		dataflow.ControlDeps(f, pd)
	}
	return p, nil
}
