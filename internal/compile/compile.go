// Package compile wires the front-end pipeline together: parse, lower,
// finalize slots, alias analysis, and the static control-dependence
// computation every slicing algorithm relies on.
package compile

import (
	"dynslice/internal/alias"
	"dynslice/internal/dataflow"
	"dynslice/internal/ir"
	"dynslice/internal/lang"
	"dynslice/internal/telemetry"
)

// Source compiles MiniC source text into fully analyzed IR.
func Source(src string) (*ir.Program, error) {
	return SourceWith(src, nil)
}

// SourceWith is Source with per-phase telemetry: spans compile/parse,
// compile/lower, and compile/analyze, plus program-shape gauges. A nil
// registry behaves exactly like Source.
func SourceWith(src string, reg *telemetry.Registry) (*ir.Program, error) {
	root := reg.StartSpan("compile")
	defer root.End()

	sp := root.Child("parse")
	ast, err := lang.Parse(src)
	sp.End()
	if err != nil {
		return nil, err
	}

	sp = root.Child("lower")
	p, err := ir.Lower(ast)
	if err != nil {
		sp.End()
		return nil, err
	}
	p.Source = src
	p.Finalize()
	sp.End()

	sp = root.Child("analyze")
	alias.Run(p)
	for _, f := range p.Funcs {
		pd := dataflow.PostDominators(f)
		dataflow.ControlDeps(f, pd)
	}
	sp.End()

	if reg != nil {
		reg.Gauge("compile.funcs").Set(int64(len(p.Funcs)))
		reg.Gauge("compile.blocks").Set(int64(len(p.Blocks)))
		reg.Gauge("compile.stmts").Set(int64(len(p.Stmts)))
	}
	return p, nil
}
