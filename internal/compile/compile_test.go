package compile_test

import (
	"strings"
	"testing"

	"dynslice/internal/compile"
)

func TestSourcePipeline(t *testing.T) {
	p, err := compile.Source(`
	var g = 1;
	func main() {
		var i = 0;
		while (i < 3) { g = g * 2; i = i + 1; }
		print(g);
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Main == nil || len(p.Stmts) == 0 || len(p.Blocks) == 0 {
		t.Fatal("pipeline produced an empty program")
	}
	// Control dependence must be filled for loop bodies.
	withCD := 0
	for _, b := range p.Main.Blocks {
		if len(b.CDAncestors) > 0 {
			withCD++
		}
	}
	if withCD == 0 {
		t.Error("no control-dependence ancestors computed")
	}
	// Alias/finalize must have run: every statement has its slot summary.
	for _, s := range p.Stmts {
		if s.NumDefs < 0 {
			t.Fatal("finalize did not run")
		}
	}
}

func TestSourceErrors(t *testing.T) {
	cases := map[string]string{
		"lex":   `func main() { @ }`,
		"parse": `func main() { var = ; }`,
		"check": `func main() { undeclared = 1; }`,
	}
	for phase, src := range cases {
		_, err := compile.Source(src)
		if err == nil {
			t.Errorf("%s: expected an error", phase)
			continue
		}
		if !strings.Contains(err.Error(), ":") {
			t.Errorf("%s: error %q lacks a source position", phase, err)
		}
	}
}
