package fuzzgen

import (
	"errors"
	"time"

	"dynslice/internal/slicing"
	"dynslice/internal/slicing/plan"
	"dynslice/internal/telemetry/querylog"
	"dynslice/internal/telemetry/stats"
)

// errPlanExhausted reports that the plan variant ran out of ladder rungs
// without an answer (only reachable when every backend faults).
var errPlanExhausted = errors.New("fuzzgen: plan variant exhausted its fallback ladder")

// planVariant is the differential matrix's cost-based planner entry:
// each criterion is dispatched to whichever backend plan.Decide picks,
// and every query's observed latency is fed back into a live workload
// recorder, so decisions evolve over the criterion set exactly as they
// do behind the façade's planned engine. The correctness claim under
// test: whatever mix of backends the planner routes through, every
// answer still equals the oracle slice.
type planVariant struct {
	feats    plan.Features
	av       plan.Availability
	backends map[string]slicing.Slicer
	stats    *stats.Recorder
}

func (pv *planVariant) Slice(c slicing.Criterion) (*slicing.Slice, *slicing.Stats, error) {
	d := plan.Decide(pv.feats, plan.Shape{Kind: plan.KindSlice, Batch: 1}, pv.av, pv.stats.Snapshot())
	lastErr := errPlanExhausted
	for _, name := range append([]string{d.Backend}, d.Fallback...) {
		s := pv.backends[name]
		if s == nil {
			continue
		}
		t0 := time.Now()
		sl, st, err := s.Slice(c)
		pv.stats.ObserveQuery(name, time.Since(t0), 0, false, err != nil)
		if err == nil {
			return sl, st, nil
		}
		if querylog.Classify(err) == "bad_criterion" {
			return nil, nil, err
		}
		lastErr = err
	}
	return nil, nil, lastErr
}
