// Package fuzzgen is the differential fuzzing harness for the slicing
// stack: a seeded, deterministic random MiniC program generator, a
// config-matrix differential driver that checks every slicer variant
// against the brute-force oracle, and a shrinker that minimizes failing
// programs into standalone repros.
//
// The generator is biased toward the shapes that stress the paper's
// optimizations: counted loops with branchy bodies (OPT-2c path
// specialization, OPT-4/5 control inference), pointer stores through
// may-alias pointers (OPT-1b partial edges), repeated non-local uses
// (OPT-2b use-use edges), multi-variable assignments fed from one block
// (OPT-3/6 label sharing), and call chains with bounded recursion
// (superblock suspension, the hybrid flusher's straggler path).
//
// Every generated program terminates: while loops use a dedicated
// counter that the body never reassigns (and which continue cannot
// skip — continue is only emitted inside for loops, whose post statement
// always runs), and recursive calls decrement a guard parameter checked
// on entry. Array indices are reduced modulo the array length with a
// non-negativity correction, and pointers only ever hold addresses taken
// with &, so generated programs are free of runtime faults by
// construction. A statement-budget backstop in the driver catches any
// violation of these invariants as a harness failure rather than a hang.
package fuzzgen

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// Prog is one generated program plus the input vector to run it with.
type Prog struct {
	Seed  uint64
	Src   string
	Input []int64
}

// GenOptions bounds the generator. The zero value selects defaults.
type GenOptions struct {
	// MaxStmts caps the number of generated executable statements
	// (default 48). The rendered program may be slightly larger because
	// loop scaffolding (counter declaration and increment) is not
	// counted against the budget.
	MaxStmts int
}

func (o GenOptions) maxStmts() int {
	if o.MaxStmts <= 0 {
		return 48
	}
	return o.MaxStmts
}

// Variable kinds tracked by the generator's scopes.
const (
	kScalar  = iota // ordinary integer scalar (assignable)
	kArray          // fixed-size array
	kPtr            // scalar that only ever holds &x / &a[i] addresses
	kCounter        // loop counter: readable, never reassigned, non-negative
	kParam          // function parameter: readable scalar
	kGuard          // recursion guard parameter: readable, never reassigned,
	//                 but may be negative (self-calls pass guard-k)
)

type genVar struct {
	name string
	kind int
	size int64 // array length for kArray
}

type genFunc struct {
	name      string
	arity     int
	recursive bool // first argument is a decreasing termination guard
}

// loop kinds for the break/continue legality stack.
const (
	loopWhile = iota // continue is illegal (would skip the counter step)
	loopFor          // continue is legal (the post statement still runs)
)

type generator struct {
	r      *rand.Rand
	b      strings.Builder
	indent int
	budget int

	nextID    int
	globals   []genVar
	scopes    [][]genVar // current function's scope stack (innermost last)
	funcs     []genFunc
	curFn     *genFunc
	selfCalls int   // self-recursive call sites emitted in curFn
	loops     []int // stack of loop kinds
	inputs    int   // number of input() sites emitted
}

// Generate produces the program for a seed. The same seed always yields
// byte-identical source and input (rand/v2's PCG is a fixed algorithm,
// stable across Go releases and platforms).
func Generate(seed uint64) *Prog { return GenerateWith(seed, GenOptions{}) }

// GenerateWith is Generate with explicit bounds.
func GenerateWith(seed uint64, o GenOptions) *Prog {
	g := &generator{
		r:      rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
		budget: o.maxStmts(),
	}
	g.program()
	in := g.input()
	return &Prog{Seed: seed, Src: g.b.String(), Input: in}
}

func (g *generator) n(max int) int { return g.r.IntN(max) }
func (g *generator) chance(p float64) bool {
	return g.r.Float64() < p
}

func (g *generator) name(prefix string) string {
	g.nextID++
	return fmt.Sprintf("%s%d", prefix, g.nextID)
}

func (g *generator) line(format string, args ...any) {
	g.b.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// ---- scopes ----

func (g *generator) pushScope() { g.scopes = append(g.scopes, nil) }
func (g *generator) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }
func (g *generator) declare(v genVar) {
	g.scopes[len(g.scopes)-1] = append(g.scopes[len(g.scopes)-1], v)
}

// visible returns every variable of the given kinds reachable from the
// current scope: the globals plus the current function's scope stack.
func (g *generator) visible(kinds ...int) []genVar {
	var out []genVar
	match := func(v genVar) {
		for _, k := range kinds {
			if v.kind == k {
				out = append(out, v)
			}
		}
	}
	for _, v := range g.globals {
		match(v)
	}
	for _, sc := range g.scopes {
		for _, v := range sc {
			match(v)
		}
	}
	return out
}

func (g *generator) pick(vs []genVar) genVar { return vs[g.n(len(vs))] }

// ---- program structure ----

func (g *generator) program() {
	// Globals: 1-3 scalars, 0-2 arrays. Global pointers are not generated;
	// pointers are locals so their targets are always initialized first.
	for i, n := 0, 1+g.n(3); i < n; i++ {
		v := genVar{name: g.name("g"), kind: kScalar}
		g.globals = append(g.globals, v)
		g.line("var %s = %d;", v.name, g.n(19)-9)
	}
	for i, n := 0, g.n(3); i < n; i++ {
		v := genVar{name: g.name("arr"), kind: kArray, size: int64(2 + g.n(7))}
		g.globals = append(g.globals, v)
		g.line("var %s[%d];", v.name, v.size)
	}
	g.b.WriteByte('\n')

	// Helper functions, callable by later functions and main.
	for i, n := 0, g.n(4); i < n; i++ {
		g.function()
		g.b.WriteByte('\n')
	}

	// main — guarantee it a reasonable share of the statement budget even
	// when the helpers were greedy.
	if g.budget < 16 {
		g.budget = 16
	}
	g.line("func main() {")
	g.indent++
	g.pushScope()
	g.block(2 + g.n(3))
	// Print every global scalar so the trace always has criteria rooted
	// in long dependence chains.
	for _, v := range g.globals {
		if v.kind == kScalar {
			g.line("print(%s);", v.name)
		}
	}
	g.popScope()
	g.indent--
	g.line("}")
}

func (g *generator) function() {
	fn := genFunc{name: g.name("f"), arity: 1 + g.n(3), recursive: g.chance(0.35)}
	params := make([]string, fn.arity)
	for i := range params {
		params[i] = g.name("p")
	}
	g.line("func %s(%s) {", fn.name, strings.Join(params, ", "))
	g.indent++
	g.pushScope()
	for i, p := range params {
		kind := kParam
		if i == 0 && fn.recursive {
			kind = kGuard // never reassigned, but not provably non-negative
		}
		g.declare(genVar{name: p, kind: kind})
	}
	if fn.recursive {
		// Termination guard first, then the function becomes visible to
		// its own body so expressions can self-recurse on params[0]-k.
		g.line("if (%s < 1) { return %s; }", params[0], g.leafExpr())
		g.funcs = append(g.funcs, fn)
	}
	g.curFn = &fn
	g.selfCalls = 0
	g.block(1 + g.n(3))
	g.line("return %s;", g.expr(1+g.n(2)))
	g.curFn = nil
	g.popScope()
	g.indent--
	g.line("}")
	if !fn.recursive {
		g.funcs = append(g.funcs, fn)
	}
}

// input returns the generated input vector (non-empty iff the program
// contains input() sites, plus slack so late reads see real values).
func (g *generator) input() []int64 {
	if g.inputs == 0 {
		return nil
	}
	n := g.inputs + g.n(4)
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(g.n(41) - 20)
	}
	return in
}

// ---- statements ----

// block emits 1..max statements (budget permitting).
func (g *generator) block(max int) {
	n := 1 + g.n(max)
	for i := 0; i < n; i++ {
		if g.budget <= 0 {
			return
		}
		g.stmt()
	}
}

func (g *generator) stmt() {
	g.budget--
	type cand struct {
		w  int
		fn func()
	}
	var cs []cand
	add := func(w int, fn func()) { cs = append(cs, cand{w, fn}) }

	scalars := g.visible(kScalar)
	arrays := g.visible(kArray)
	ptrs := g.visible(kPtr)
	inLoop := len(g.loops) > 0
	deep := g.loopDepth() >= 2 || g.indent >= 5

	add(6, g.declScalar)
	if len(scalars) > 0 {
		add(18, g.assignScalar)
	}
	if len(arrays) > 0 {
		add(8, g.assignArray)
	}
	if len(scalars) > 0 || len(arrays) > 0 {
		add(5, g.declPtr)
	}
	if len(ptrs) > 0 {
		add(7, g.assignDeref)
		add(3, g.assignPtr)
	}
	if !deep {
		add(9, g.ifStmt)
		add(6, g.whileStmt)
		add(6, g.forStmt)
	}
	if len(g.funcs) > 0 {
		add(5, g.callStmt)
	}
	add(3, func() { g.line("print(%s);", g.expr(1)) })
	if g.chance(0.2) {
		add(2, g.declArray)
	}
	if inLoop {
		add(2, func() { g.line("if (%s) { break; }", g.cond()) })
		if g.loops[len(g.loops)-1] == loopFor {
			add(2, func() { g.line("if (%s) { continue; }", g.cond()) })
		}
	}
	if g.curFn != nil && g.chance(0.3) {
		add(1, func() { g.line("if (%s) { return %s; }", g.cond(), g.expr(1)) })
	}

	total := 0
	for _, c := range cs {
		total += c.w
	}
	pickAt := g.n(total)
	for _, c := range cs {
		if pickAt < c.w {
			c.fn()
			return
		}
		pickAt -= c.w
	}
}

func (g *generator) loopDepth() int { return len(g.loops) }

func (g *generator) declScalar() {
	v := genVar{name: g.name("x"), kind: kScalar}
	g.line("var %s = %s;", v.name, g.expr(1+g.n(2)))
	g.declare(v)
}

// declArray declares a fresh array in the current scope; inside a loop
// body this re-executes the RegionDef every iteration.
func (g *generator) declArray() {
	v := genVar{name: g.name("arr"), kind: kArray, size: int64(2 + g.n(5))}
	g.line("var %s[%d];", v.name, v.size)
	g.declare(v)
}

func (g *generator) assignScalar() {
	v := g.pick(g.visible(kScalar))
	g.line("%s = %s;", v.name, g.expr(1+g.n(3)))
}

func (g *generator) assignArray() {
	a := g.pick(g.visible(kArray))
	g.line("%s[%s] = %s;", a.name, g.index(a), g.expr(1+g.n(2)))
}

func (g *generator) declPtr() {
	v := genVar{name: g.name("ptr"), kind: kPtr}
	g.line("var %s = %s;", v.name, g.address())
	g.declare(v)
}

func (g *generator) assignPtr() {
	p := g.pick(g.visible(kPtr))
	// Occasionally copy another pointer instead of taking a fresh address
	// (keeps the may-alias sets overlapping).
	if ptrs := g.visible(kPtr); len(ptrs) > 1 && g.chance(0.3) {
		q := g.pick(ptrs)
		g.line("%s = %s;", p.name, q.name)
		return
	}
	g.line("%s = %s;", p.name, g.address())
}

func (g *generator) assignDeref() {
	p := g.pick(g.visible(kPtr))
	g.line("*%s = %s;", p.name, g.expr(1+g.n(2)))
}

func (g *generator) callStmt() {
	if f, ok := g.pickCallee(); ok {
		g.line("%s;", g.call(f, 1))
	}
}

// pickCallee chooses a callable function. Self-recursive calls are only
// legal outside loops and at most twice per function body: recursion
// depth is bounded by the guard, so the cost of a recursive function is
// (self call sites)^depth — loop-hosted or plentiful self-calls would
// make that exponential in the trace.
func (g *generator) pickCallee() (genFunc, bool) {
	f := g.funcs[g.n(len(g.funcs))]
	if g.curFn != nil && f.name == g.curFn.name {
		if len(g.loops) > 0 || g.selfCalls >= 2 {
			return genFunc{}, false
		}
		g.selfCalls++
	}
	return f, true
}

func (g *generator) ifStmt() {
	g.line("if (%s) {", g.cond())
	g.indent++
	g.pushScope()
	g.block(2)
	g.popScope()
	g.indent--
	if g.chance(0.5) {
		g.line("} else {")
		g.indent++
		g.pushScope()
		g.block(2)
		g.popScope()
		g.indent--
	}
	g.line("}")
}

// whileStmt emits the counted-loop pattern: the counter is declared just
// before the loop, bodies never reassign counters (kCounter is excluded
// from assignment targets), and continue is never emitted inside a while,
// so the increment always runs.
func (g *generator) whileStmt() {
	c := genVar{name: g.name("i"), kind: kCounter}
	bound := 1 + g.n(8)
	g.line("var %s = 0;", c.name)
	g.line("while (%s < %d) {", c.name, bound)
	g.indent++
	g.pushScope()
	g.declare(c)
	g.loops = append(g.loops, loopWhile)
	g.block(3)
	g.loops = g.loops[:len(g.loops)-1]
	g.line("%s = %s + 1;", c.name, c.name)
	g.popScope()
	g.indent--
	g.line("}")
}

func (g *generator) forStmt() {
	c := genVar{name: g.name("i"), kind: kCounter}
	bound := 1 + g.n(8)
	step := 1 + g.n(2)
	g.line("for (var %s = 0; %s < %d; %s = %s + %d) {", c.name, c.name, bound, c.name, c.name, step)
	g.indent++
	g.pushScope()
	g.declare(c)
	g.loops = append(g.loops, loopFor)
	g.block(3)
	g.loops = g.loops[:len(g.loops)-1]
	g.popScope()
	g.indent--
	g.line("}")
}

// ---- expressions ----

var binops = []string{"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}

// expr renders an expression of bounded depth.
func (g *generator) expr(depth int) string {
	if depth <= 0 {
		return g.leafExpr()
	}
	switch {
	case g.chance(0.62):
		op := binops[g.n(len(binops))]
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	case g.chance(0.18):
		if g.chance(0.5) {
			return fmt.Sprintf("(-%s)", g.expr(depth-1))
		}
		return fmt.Sprintf("(!%s)", g.expr(depth-1))
	case len(g.funcs) > 0 && g.chance(0.4):
		if f, ok := g.pickCallee(); ok {
			return g.call(f, depth-1)
		}
		return g.leafExpr()
	default:
		return g.leafExpr()
	}
}

// cond is a comparison-shaped expression for branch conditions.
func (g *generator) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %s", g.expr(1), ops[g.n(len(ops))], g.expr(1))
}

// leafExpr renders an atom. Reads are weighted toward scalar variables
// and loop counters so dependence chains stay long.
func (g *generator) leafExpr() string {
	readable := g.visible(kScalar, kCounter, kParam, kGuard)
	arrays := g.visible(kArray)
	ptrs := g.visible(kPtr)
	type cand struct {
		w int
		s func() string
	}
	cs := []cand{
		{7, func() string { return fmt.Sprintf("%d", g.n(19)-9) }},
	}
	if len(readable) > 0 {
		cs = append(cs, cand{14, func() string { return g.pick(readable).name }})
	}
	if len(arrays) > 0 {
		cs = append(cs, cand{5, func() string {
			a := g.pick(arrays)
			return fmt.Sprintf("%s[%s]", a.name, g.index(a))
		}})
	}
	if len(ptrs) > 0 {
		cs = append(cs, cand{4, func() string { return "*" + g.pick(ptrs).name }})
		cs = append(cs, cand{1, func() string { return g.pick(ptrs).name }})
	}
	cs = append(cs, cand{1, func() string { g.inputs++; return "input()" }})
	total := 0
	for _, c := range cs {
		total += c.w
	}
	pickAt := g.n(total)
	for _, c := range cs {
		if pickAt < c.w {
			return c.s()
		}
		pickAt -= c.w
	}
	return "0"
}

// index renders a provably in-range index for array a: either a loop
// counter reduced modulo the length (counters are non-negative) or an
// arbitrary expression with the full sign-correcting reduction.
func (g *generator) index(a genVar) string {
	if counters := g.visible(kCounter); len(counters) > 0 && g.chance(0.6) {
		return fmt.Sprintf("%s %% %d", g.pick(counters).name, a.size)
	}
	return fmt.Sprintf("((%s %% %d + %d) %% %d)", g.expr(1), a.size, a.size, a.size)
}

// address renders an address-of expression over a visible scalar or
// array element.
func (g *generator) address() string {
	scalars := g.visible(kScalar)
	arrays := g.visible(kArray)
	if len(arrays) > 0 && (len(scalars) == 0 || g.chance(0.4)) {
		a := g.pick(arrays)
		return fmt.Sprintf("&%s[%s]", a.name, g.index(a))
	}
	return "&" + g.pick(scalars).name
}

// call renders a call to f. For recursive callees the first argument is
// always a small bounded value (or guard-1 when self-recursing), so
// recursion depth is bounded by a constant.
func (g *generator) call(f genFunc, depth int) string {
	args := make([]string, f.arity)
	for i := range args {
		if i == 0 && f.recursive {
			args[i] = g.boundedGuard(f)
			continue
		}
		args[i] = g.expr(depth)
	}
	return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
}

func (g *generator) boundedGuard(f genFunc) string {
	// Self-recursion: strictly decrease the incoming guard.
	if g.curFn != nil && g.curFn.name == f.name {
		guard := g.scopes[0][0].name // params live in the function's first scope
		return fmt.Sprintf("%s - %d", guard, 1+g.n(2))
	}
	switch g.n(3) {
	case 0:
		return fmt.Sprintf("%d", g.n(7))
	case 1:
		if counters := g.visible(kCounter); len(counters) > 0 {
			return g.pick(counters).name
		}
		return fmt.Sprintf("%d", g.n(7))
	default:
		if scalars := g.visible(kScalar); len(scalars) > 0 {
			return fmt.Sprintf("(%s %% 6)", g.pick(scalars).name)
		}
		return fmt.Sprintf("%d", g.n(7))
	}
}
