package fuzzgen

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/lang"
	"dynslice/internal/slicing"
)

// TestGenerateDeterministic checks the replayability contract: a seed
// fully determines the program and its input vector.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a := Generate(seed)
		b := Generate(seed)
		if a.Src != b.Src {
			t.Fatalf("seed %d: source differs between generations", seed)
		}
		if len(a.Input) != len(b.Input) {
			t.Fatalf("seed %d: input differs between generations", seed)
		}
		for i := range a.Input {
			if a.Input[i] != b.Input[i] {
				t.Fatalf("seed %d: input differs at %d", seed, i)
			}
		}
	}
	if Generate(1).Src == Generate(2).Src {
		t.Fatal("distinct seeds produced identical programs")
	}
}

// TestGeneratedProgramsValid checks the generator's fault-freedom
// invariant over a seed range: every program compiles, and no program
// hits a runtime fault (bad index, bad address). Step-limit exhaustion
// is tolerated in a small fraction of seeds — call chains through
// helpers with loops can multiply — but anything more means the
// termination patterns regressed.
func TestGeneratedProgramsValid(t *testing.T) {
	const seeds = 150
	limited := 0
	for seed := uint64(1); seed <= seeds; seed++ {
		pr := Generate(seed)
		p, err := compile.Source(pr.Src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v\n%s", seed, err, pr.Src)
		}
		if _, err := interp.Run(p, interp.Options{Input: pr.Input, MaxSteps: 2_000_000}); err != nil {
			if strings.Contains(err.Error(), "step limit") {
				limited++
				continue
			}
			t.Fatalf("seed %d: generated program faulted: %v\n%s", seed, err, pr.Src)
		}
	}
	if limited*20 > seeds { // >5%
		t.Errorf("%d/%d seeds exhausted the step budget", limited, seeds)
	}
}

// TestRenderRoundTrip checks the shrinker's foundation: rendering a
// parsed program yields a program that parses, compiles, and re-renders
// to the same text (fixpoint after one normalization).
func TestRenderRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		pr := Generate(seed)
		ast, err := lang.Parse(pr.Src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		once := Render(ast)
		if _, err := compile.Source(once); err != nil {
			t.Fatalf("seed %d: rendered program does not compile: %v\n%s", seed, err, once)
		}
		ast2, err := lang.Parse(once)
		if err != nil {
			t.Fatalf("seed %d: rendered program does not re-parse: %v", seed, err)
		}
		if twice := Render(ast2); twice != once {
			t.Fatalf("seed %d: render not a fixpoint\n--- once ---\n%s\n--- twice ---\n%s", seed, once, twice)
		}
	}
}

// TestCheckCleanOnGenerated is the in-process miniature of the smoke
// gate: a band of generated programs through the full matrix with zero
// divergences.
func TestCheckCleanOnGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix differential sweep")
	}
	for seed := uint64(1); seed <= 25; seed++ {
		pr := Generate(seed)
		res, err := Check(pr.Src, pr.Input, Options{})
		if err != nil {
			if IsSubjectError(err) {
				t.Fatalf("seed %d: generated program rejected by the harness: %v\n%s", seed, err, pr.Src)
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range res.Divergences {
			t.Errorf("seed %d: %s\nprogram:\n%s", seed, d, pr.Src)
		}
	}
}

// TestShrinkPlantedBug plants a divergence — a tampering hook that
// deletes one statement from every OPT answer once slices are
// non-trivial — and requires the shrinker to minimize a generated
// program to a repro under 30 statements that still exhibits it.
func TestShrinkPlantedBug(t *testing.T) {
	tamper := func(variant string, s *slicing.Slice) {
		if !strings.HasPrefix(variant, "OPT") || s.Len() < 3 {
			return
		}
		// Drop the highest statement: a wrong-answer bug the differential
		// driver must catch on any criterion with a non-trivial slice.
		ids := s.Stmts()
		*s = *slicing.NewSlice()
		for _, id := range ids[:len(ids)-1] {
			s.Add(id)
		}
	}
	failing := func(src string, input []int64) bool {
		res, err := Check(src, input, Options{
			Variants: []Variant{{Alg: "OPT"}},
			Criteria: 6,
			Tamper:   tamper,
		})
		return err == nil && len(res.Divergences) > 0
	}

	// Find a generated program the planted bug fires on.
	var pr *Prog
	for seed := uint64(1); seed <= 50; seed++ {
		cand := Generate(seed)
		if failing(cand.Src, cand.Input) {
			pr = cand
			break
		}
	}
	if pr == nil {
		t.Fatal("no generated program triggered the planted bug")
	}

	src, input := Shrink(pr.Src, pr.Input, failing)
	if !failing(src, input) {
		t.Fatal("shrunk program no longer reproduces the planted bug")
	}
	n := CountStmts(src)
	if n < 0 {
		t.Fatalf("shrunk program does not parse:\n%s", src)
	}
	if n >= 30 {
		t.Errorf("shrunk repro still has %d statements (want < 30):\n%s", n, src)
	}
	if before := CountStmts(pr.Src); n >= before {
		t.Errorf("shrinker made no progress: %d -> %d statements", before, n)
	}
}

// TestNewVariantsAreLive plants a wrong-answer bug in the reexec and
// plan matrix entries and requires the differential driver to flag it —
// proof the new variants are genuinely compared against the oracle, not
// just constructed.
func TestNewVariantsAreLive(t *testing.T) {
	for _, target := range []string{"reexec", "plan"} {
		t.Run(target, func(t *testing.T) {
			tamper := func(variant string, s *slicing.Slice) {
				if !strings.HasPrefix(variant, target) || s.Len() < 2 {
					return
				}
				ids := s.Stmts()
				*s = *slicing.NewSlice()
				for _, id := range ids[:len(ids)-1] {
					s.Add(id)
				}
			}
			found := false
			for seed := uint64(1); seed <= 20 && !found; seed++ {
				pr := Generate(seed)
				res, err := Check(pr.Src, pr.Input, Options{
					Variants: []Variant{{Alg: target}},
					Criteria: 6,
					Tamper:   tamper,
				})
				if err != nil {
					if IsSubjectError(err) {
						continue
					}
					t.Fatal(err)
				}
				found = len(res.Divergences) > 0
			}
			if !found {
				t.Fatalf("tampered %s answers never diverged — variant not live", target)
			}
		})
	}
}

// TestShrinkStructural exercises the structural edits in isolation with
// a cheap predicate: minimize while preserving "compiles and still
// contains a while loop".
func TestShrinkStructural(t *testing.T) {
	pr := Generate(7)
	if !strings.Contains(pr.Src, "while") {
		t.Skip("seed 7 generated no while loop")
	}
	keep := func(src string, _ []int64) bool {
		if _, err := compile.Source(src); err != nil {
			return false
		}
		return strings.Contains(src, "while")
	}
	src, _ := Shrink(pr.Src, pr.Input, keep)
	if !keep(src, nil) {
		t.Fatal("shrunk program lost the predicate")
	}
	if n, before := CountStmts(src), CountStmts(pr.Src); n >= before {
		t.Errorf("no structural progress: %d -> %d statements", before, n)
	}
}

// readRepro loads a checked-in .minic repro. A leading "// input: 1 2 3"
// comment line supplies the input vector.
func readRepro(t *testing.T, path string) (string, []int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	var input []int64
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "// input:") {
			continue
		}
		for _, f := range strings.Fields(strings.TrimPrefix(line, "// input:")) {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				t.Fatalf("%s: bad input vector element %q", path, f)
			}
			input = append(input, v)
		}
		break
	}
	return src, input
}

// TestRegressionsReplayGreen replays every checked-in minimized repro
// through the full configuration matrix: all of them must slice
// identically to the oracle now that their bugs are fixed.
func TestRegressionsReplayGreen(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "regressions", "*.minic"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no regression repros checked in")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, input := readRepro(t, path)
			res, err := Check(src, input, Options{Criteria: 16})
			if err != nil {
				t.Fatalf("%v\n%s", err, src)
			}
			for _, d := range res.Divergences {
				t.Errorf("%s", d)
			}
		})
	}
}

// TestCorpusClean replays every corpus seed program through the full
// matrix; the native fuzz target seeds from the same files.
func TestCorpusClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.minic"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no corpus programs checked in")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, input := readRepro(t, path)
			if input == nil {
				input = []int64{6, 3, -2, 9, 4, 9, 1}
			}
			res, err := Check(src, input, Options{Criteria: 12})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range res.Divergences {
				t.Errorf("%s", d)
			}
		})
	}
}
