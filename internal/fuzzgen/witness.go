package fuzzgen

import (
	"fmt"

	"dynslice/internal/ir"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/explain"
	"dynslice/internal/slicing/oracle"
)

// Witness validation: beyond comparing slice *sets* against the oracle,
// rerun observed queries on the OPT variants and check the dependence
// *paths* they report. Every slice member must have a complete witness
// chain back to the criterion, and every hop of every chain must
// correspond to a dependence the oracle saw actually exercised — data,
// control, or use-to-use at the statement level, or (for shortcut hops,
// which collapse a chain into one step) transitive reachability over
// their union. A wrong inferred edge that happens to land inside the
// correct slice set is invisible to set comparison; it is exactly what
// this check catches.

// witnessTarget reports whether variant v participates in witness
// validation: the OPT configurations whose graph answers observed
// queries directly (resident and hybrid; the pipelined and plain-label
// builds share the same traversal code, so re-checking them buys
// nothing per subject).
func witnessTarget(v Variant) bool {
	return v.Alg == "OPT" && !v.Plain && !v.Pipelined
}

// justified reports whether one witness hop names a dependence the
// oracle observed.
func justified(d *oracle.Deps, h explain.Hop) bool {
	switch {
	case h.Kind == explain.KindShortcut:
		return d.Reachable(h.FromStmt, h.ToStmt)
	case h.Kind == explain.KindInferredOPT2:
		return d.UseUse(h.FromStmt, h.ToStmt)
	case h.CD:
		return d.Control(h.FromStmt, h.ToStmt)
	default:
		return d.Data(h.FromStmt, h.ToStmt)
	}
}

// checkWitnesses runs one observed query on ex and validates the result:
// the slice must equal the oracle's, every member must produce a
// complete witness, and every hop must be justified. Failures come back
// as Divergences under the variant name suffixed "/witness".
func checkWitnesses(p *ir.Program, deps *oracle.Deps, want *slicing.Slice, ex slicing.Explainer, c slicing.Criterion, variant string) []Divergence {
	name := variant + "/witness"
	rec := explain.NewRecorder()
	got, _, err := ex.SliceObserved(c, rec)
	if err != nil {
		return []Divergence{{Variant: name, Addr: c.Addr, Err: err.Error()}}
	}
	if !want.Equal(got) {
		return []Divergence{{
			Variant: name, Addr: c.Addr,
			Want: Describe(p, want), Got: Describe(p, got),
		}}
	}
	var out []Divergence
	for _, id := range got.Stmts() {
		w, ok := rec.Witness(id)
		if !ok || !w.Complete {
			out = append(out, Divergence{
				Variant: name, Addr: c.Addr,
				Err: fmt.Sprintf("no complete witness for slice member s%d@%s", id, p.Stmt(id).Pos),
			})
			continue
		}
		for _, h := range w.Hops {
			if justified(deps, h) {
				continue
			}
			out = append(out, Divergence{
				Variant: name, Addr: c.Addr,
				Err: fmt.Sprintf("unjustified %s hop s%d -> s%d (cd=%v) in witness for s%d",
					h.Kind, h.FromStmt, h.ToStmt, h.CD, id),
			})
		}
	}
	return out
}
