package fuzzgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzSlicerEquivalence feeds arbitrary MiniC source text (corpus-seeded
// from testdata/corpus, which mirrors the examples and differential
// suites) through the differential driver: anything that compiles and
// runs must slice identically to the brute-force oracle under every
// matrix variant. Inputs that fail the front end or fault at runtime are
// uninteresting, not failures — the interesting property is that no
// input can make the slicers disagree (or panic).
func FuzzSlicerEquivalence(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.minic"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data), []byte{6, 3, 9, 4, 1})
	}
	// A couple of generated programs widen the seed corpus beyond the
	// hand-written shapes.
	for seed := uint64(1); seed <= 4; seed++ {
		f.Add(Generate(seed).Src, []byte{2, 5})
	}
	f.Fuzz(func(t *testing.T, src string, inputRaw []byte) {
		if len(src) > 8<<10 || len(inputRaw) > 32 {
			t.Skip("oversized input")
		}
		input := make([]int64, len(inputRaw))
		for i, b := range inputRaw {
			input[i] = int64(int8(b))
		}
		res, err := Check(src, input, Options{
			Variants: QuickMatrix(),
			Criteria: 4,
			MaxSteps: 150_000,
		})
		if err != nil {
			if IsSubjectError(err) {
				t.Skip()
			}
			t.Fatalf("harness failure: %v\nprogram:\n%s", err, src)
		}
		for _, d := range res.Divergences {
			t.Errorf("%s\nprogram:\n%s", d, src)
		}
	})
}

// FuzzGeneratedEquivalence drives the structured generator from a fuzzed
// seed: every generated program must compile, terminate, and slice
// identically to the oracle. Unlike FuzzSlicerEquivalence, a compile or
// runtime error here is a generator bug and fails the target — except
// step-budget exhaustion, which deep call chains can legitimately hit.
func FuzzGeneratedEquivalence(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		pr := Generate(seed)
		res, err := Check(pr.Src, pr.Input, Options{
			Variants: QuickMatrix(),
			Criteria: 4,
		})
		if err != nil {
			if strings.Contains(err.Error(), "step limit") {
				t.Skip("step budget exhausted")
			}
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, pr.Src)
		}
		for _, d := range res.Divergences {
			t.Errorf("seed %d: %s\nprogram:\n%s", seed, d, pr.Src)
		}
	})
}
