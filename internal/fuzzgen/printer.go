package fuzzgen

import (
	"fmt"
	"strings"

	"dynslice/internal/lang"
)

// Render prints a parsed MiniC program back to source text. The output
// re-parses to a structurally identical tree (expressions are emitted
// fully parenthesized, so operator precedence never shifts), which is
// what lets the shrinker edit the AST and re-validate each candidate.
func Render(p *lang.Program) string {
	var b strings.Builder
	for _, g := range p.Globals {
		renderVarDecl(&b, 0, g)
	}
	for _, f := range p.Funcs {
		b.WriteByte('\n')
		fmt.Fprintf(&b, "func %s(%s) ", f.Name, strings.Join(f.Params, ", "))
		renderBlock(&b, 0, f.Body)
		b.WriteByte('\n')
	}
	return b.String()
}

func ind(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteByte('\t')
	}
}

func renderVarDecl(b *strings.Builder, depth int, d *lang.VarDecl) {
	ind(b, depth)
	if d.Size > 0 {
		fmt.Fprintf(b, "var %s[%d];\n", d.Name, d.Size)
		return
	}
	if d.Init != nil {
		fmt.Fprintf(b, "var %s = %s;\n", d.Name, renderExpr(d.Init))
		return
	}
	fmt.Fprintf(b, "var %s;\n", d.Name)
}

func renderBlock(b *strings.Builder, depth int, blk *lang.BlockStmt) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		renderStmt(b, depth+1, s)
	}
	ind(b, depth)
	b.WriteString("}")
}

func renderStmt(b *strings.Builder, depth int, s lang.Stmt) {
	switch s := s.(type) {
	case *lang.VarDecl:
		renderVarDecl(b, depth, s)
	case *lang.AssignStmt:
		ind(b, depth)
		b.WriteString(renderSimple(s))
		b.WriteString(";\n")
	case *lang.IfStmt:
		ind(b, depth)
		renderIf(b, depth, s)
		b.WriteByte('\n')
	case *lang.WhileStmt:
		ind(b, depth)
		fmt.Fprintf(b, "while (%s) ", renderExpr(s.Cond))
		renderBlock(b, depth, s.Body)
		b.WriteByte('\n')
	case *lang.ForStmt:
		ind(b, depth)
		b.WriteString("for (")
		if s.Init != nil {
			b.WriteString(renderForSimple(s.Init))
		}
		b.WriteString("; ")
		if s.Cond != nil {
			b.WriteString(renderExpr(s.Cond))
		}
		b.WriteString("; ")
		if s.Post != nil {
			b.WriteString(renderForSimple(s.Post))
		}
		b.WriteString(") ")
		renderBlock(b, depth, s.Body)
		b.WriteByte('\n')
	case *lang.ReturnStmt:
		ind(b, depth)
		if s.Value != nil {
			fmt.Fprintf(b, "return %s;\n", renderExpr(s.Value))
		} else {
			b.WriteString("return;\n")
		}
	case *lang.BreakStmt:
		ind(b, depth)
		b.WriteString("break;\n")
	case *lang.ContinueStmt:
		ind(b, depth)
		b.WriteString("continue;\n")
	case *lang.PrintStmt:
		ind(b, depth)
		fmt.Fprintf(b, "print(%s);\n", renderExpr(s.Arg))
	case *lang.ExprStmt:
		ind(b, depth)
		fmt.Fprintf(b, "%s;\n", renderExpr(s.Call))
	case *lang.BlockStmt:
		ind(b, depth)
		renderBlock(b, depth, s)
		b.WriteByte('\n')
	default:
		panic(fmt.Sprintf("fuzzgen: render: unknown statement %T", s))
	}
}

func renderIf(b *strings.Builder, depth int, s *lang.IfStmt) {
	fmt.Fprintf(b, "if (%s) ", renderExpr(s.Cond))
	renderBlock(b, depth, s.Then)
	switch e := s.Else.(type) {
	case nil:
	case *lang.BlockStmt:
		b.WriteString(" else ")
		renderBlock(b, depth, e)
	case *lang.IfStmt:
		b.WriteString(" else ")
		renderIf(b, depth, e)
	default:
		panic(fmt.Sprintf("fuzzgen: render: unknown else arm %T", e))
	}
}

// renderSimple prints an assignment without trailing punctuation.
func renderSimple(s *lang.AssignStmt) string {
	switch {
	case s.Deref:
		return fmt.Sprintf("*%s = %s", renderExpr(s.Addr), renderExpr(s.Rhs))
	case s.Index != nil:
		return fmt.Sprintf("%s[%s] = %s", s.Name, renderExpr(s.Index), renderExpr(s.Rhs))
	default:
		return fmt.Sprintf("%s = %s", s.Name, renderExpr(s.Rhs))
	}
}

// renderForSimple prints a for-clause simple statement (init or post):
// either a declaration or an assignment, with no trailing semicolon.
func renderForSimple(s lang.Stmt) string {
	switch s := s.(type) {
	case *lang.VarDecl:
		if s.Init != nil {
			return fmt.Sprintf("var %s = %s", s.Name, renderExpr(s.Init))
		}
		return fmt.Sprintf("var %s", s.Name)
	case *lang.AssignStmt:
		return renderSimple(s)
	default:
		panic(fmt.Sprintf("fuzzgen: render: unknown for-clause %T", s))
	}
}

func renderExpr(e lang.Expr) string {
	switch e := e.(type) {
	case *lang.NumLit:
		return fmt.Sprintf("%d", e.Value)
	case *lang.VarRef:
		return e.Name
	case *lang.IndexExpr:
		return fmt.Sprintf("%s[%s]", e.Array, renderExpr(e.Index))
	case *lang.DerefExpr:
		return fmt.Sprintf("(*%s)", renderExpr(e.Addr))
	case *lang.AddrOfExpr:
		if e.Index != nil {
			return fmt.Sprintf("(&%s[%s])", e.Name, renderExpr(e.Index))
		}
		return fmt.Sprintf("(&%s)", e.Name)
	case *lang.UnaryExpr:
		return fmt.Sprintf("(%s%s)", e.Op, renderExpr(e.X))
	case *lang.BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", renderExpr(e.X), e.Op, renderExpr(e.Y))
	case *lang.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = renderExpr(a)
		}
		return fmt.Sprintf("%s(%s)", e.Callee, strings.Join(args, ", "))
	case *lang.InputExpr:
		return "input()"
	default:
		panic(fmt.Sprintf("fuzzgen: render: unknown expression %T", e))
	}
}
