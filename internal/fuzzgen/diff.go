package fuzzgen

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/profile"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/forward"
	"dynslice/internal/slicing/fp"
	"dynslice/internal/slicing/lp"
	"dynslice/internal/slicing/opt"
	"dynslice/internal/slicing/oracle"
	"dynslice/internal/slicing/plan"
	"dynslice/internal/slicing/reexec"
	"dynslice/internal/slicing/snapshot"
	"dynslice/internal/telemetry/stats"
	"dynslice/internal/trace"
)

// Variant is one slicer configuration in the differential matrix.
type Variant struct {
	Alg       string // "FP", "OPT", "LP", "forward", "reexec", "plan"
	Plain     bool   // flat label storage (-compact=false)
	Pipelined bool   // build via trace.Async on a worker goroutine
	Hybrid    bool   // OPT only: disk-epoch mode with an aggressive budget
	// Snapshot (FP/OPT) answers criteria from a graph that was serialized
	// into an on-disk snapshot image and loaded back (the persistent dyDG
	// cache round trip), instead of the resident graph the run built.
	Snapshot bool
	// Batch > 0 answers every criterion through one batched SliceAll with
	// a worker pool of that size (the work-stealing scheduler for FP/OPT,
	// the shared backward scan for LP) instead of per-criterion Slice
	// calls — the batch results must still match the oracle slice for
	// slice.
	Batch int
}

// Name renders the variant as a stable, human-readable tuple.
func (v Variant) Name() string {
	s := v.Alg
	switch v.Alg {
	case "FP", "OPT":
		if v.Plain {
			s += "/plain"
		} else {
			s += "/compact"
		}
		if v.Pipelined {
			s += "/pipe"
		} else {
			s += "/seq"
		}
		if v.Hybrid {
			s += "/hybrid"
		}
		if v.Snapshot {
			s += "/snap"
		}
	}
	if v.Batch > 0 {
		s += fmt.Sprintf("/batch%d", v.Batch)
	}
	return s
}

// FullMatrix is the complete configuration matrix the tentpole checks:
// FP x {compact,plain} x {seq,pipe}, OPT additionally x {hybrid,resident},
// plus LP, the forward slicer, the checkpoint re-execution backend
// (single and batched), and the cost-based planner dispatching over all
// of them, plus batched work-stealing SliceAll variants (multi-worker
// FP/OPT, hybrid OPT, and the LP shared scan). Every variant is
// compared against the brute-force oracle.
func FullMatrix() []Variant {
	var vs []Variant
	for _, plain := range []bool{false, true} {
		for _, pipe := range []bool{false, true} {
			vs = append(vs, Variant{Alg: "FP", Plain: plain, Pipelined: pipe})
		}
	}
	for _, plain := range []bool{false, true} {
		for _, pipe := range []bool{false, true} {
			for _, hyb := range []bool{false, true} {
				vs = append(vs, Variant{Alg: "OPT", Plain: plain, Pipelined: pipe, Hybrid: hyb})
			}
		}
	}
	vs = append(vs,
		Variant{Alg: "FP", Batch: 8},
		Variant{Alg: "OPT", Batch: 8},
		Variant{Alg: "OPT", Hybrid: true, Batch: 8},
		Variant{Alg: "LP", Batch: 1},
	)
	vs = append(vs,
		Variant{Alg: "FP", Snapshot: true},
		Variant{Alg: "OPT", Snapshot: true},
		Variant{Alg: "FP", Snapshot: true, Batch: 8},
		Variant{Alg: "OPT", Snapshot: true, Batch: 8},
	)
	vs = append(vs, Variant{Alg: "LP"}, Variant{Alg: "forward"})
	vs = append(vs,
		Variant{Alg: "reexec"},
		Variant{Alg: "reexec", Batch: 8},
		Variant{Alg: "plan"},
	)
	return vs
}

// QuickMatrix is a reduced matrix for per-exec fuzz targets: one FP, the
// three interesting OPT corners plus the batched scheduler, LP, and
// forward.
func QuickMatrix() []Variant {
	return []Variant{
		{Alg: "FP"},
		{Alg: "FP", Plain: true},
		{Alg: "OPT"},
		{Alg: "OPT", Plain: true, Pipelined: true},
		{Alg: "OPT", Hybrid: true},
		{Alg: "OPT", Batch: 8},
		{Alg: "FP", Snapshot: true},
		{Alg: "OPT", Snapshot: true},
		{Alg: "LP"},
		{Alg: "forward"},
		{Alg: "reexec"},
		{Alg: "plan"},
	}
}

// Options configures Check. The zero value selects the full matrix.
type Options struct {
	// Criteria caps the number of sampled address criteria (default 8).
	Criteria int
	// MaxSteps bounds each interpreter run (default 2,000,000); exceeding
	// it classifies as a RunError, which drivers treat as a skip.
	MaxSteps int64
	// HybridBudget is the resident-pair budget for hybrid variants
	// (default 1: flush at every opportunity).
	HybridBudget int64
	// Variants selects the matrix (default FullMatrix()).
	Variants []Variant
	// Witness additionally reruns each criterion as an observed query on
	// the OPT resident/hybrid variants and validates every hop of every
	// slice member's dependence-path witness against the oracle's
	// exercised dependence pairs (see witness.go).
	Witness bool
	// Tamper, when non-nil, mutates a variant's computed slice before
	// comparison. It exists so tests can plant a divergence and watch the
	// harness catch and minimize it; it is never set in production runs.
	Tamper func(variant string, s *slicing.Slice)
}

func (o Options) criteria() int {
	if o.Criteria <= 0 {
		return 8
	}
	return o.Criteria
}

func (o Options) maxSteps() int64 {
	if o.MaxSteps <= 0 {
		return 2_000_000
	}
	return o.MaxSteps
}

func (o Options) hybridBudget() int64 {
	if o.HybridBudget <= 0 {
		return 1
	}
	return o.HybridBudget
}

func (o Options) variants() []Variant {
	if len(o.Variants) == 0 {
		return FullMatrix()
	}
	return o.Variants
}

// CompileError reports that the subject program failed the front end —
// for generated programs this is a generator bug; for fuzzed source text
// it is an uninteresting input.
type CompileError struct{ Err error }

func (e *CompileError) Error() string { return "fuzzgen: compile: " + e.Err.Error() }
func (e *CompileError) Unwrap() error { return e.Err }

// RunError reports that the subject program faulted or exhausted its step
// budget at runtime. Drivers treat it as a skip: the program is not a
// valid differential subject, but nothing about the slicers is wrong.
type RunError struct{ Err error }

func (e *RunError) Error() string { return "fuzzgen: run: " + e.Err.Error() }
func (e *RunError) Unwrap() error { return e.Err }

// Divergence is one observed disagreement between a variant and the
// oracle on one criterion.
type Divergence struct {
	Variant string
	Addr    int64
	Want    string // oracle slice, rendered
	Got     string // variant slice, rendered
	Err     string // non-empty when the variant errored instead
}

func (d Divergence) String() string {
	if d.Err != "" {
		return fmt.Sprintf("%s @addr %d: error: %s", d.Variant, d.Addr, d.Err)
	}
	return fmt.Sprintf("%s @addr %d:\n  oracle: %s\n  got:    %s", d.Variant, d.Addr, d.Want, d.Got)
}

// Result is the outcome of one differential check.
type Result struct {
	Stmts       int // executed statements of the subject run
	Criteria    int // criteria actually checked
	Variants    int // variants compared per criterion
	Divergences []Divergence
}

// sampler collects every address defined during a run so the driver can
// pick slicing criteria covering the whole store.
type sampler struct {
	defined map[int64]bool
}

func newSampler() *sampler         { return &sampler{defined: map[int64]bool{}} }
func (a *sampler) Block(*ir.Block) {}
func (a *sampler) End()            {}
func (a *sampler) Stmt(_ *ir.Stmt, _, defs []int64) {
	for _, d := range defs {
		a.defined[d] = true
	}
}
func (a *sampler) RegionDef(_ *ir.Stmt, start, length int64) {
	for x := start; x < start+length; x++ {
		a.defined[x] = true
	}
}

// sample returns up to n defined addresses, deterministically spread over
// the address space.
func (a *sampler) sample(n int) []int64 {
	all := make([]int64, 0, len(a.defined))
	for x := range a.defined {
		all = append(all, x)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) <= n {
		return all
	}
	out := make([]int64, 0, n)
	step := len(all) / n
	for i := 0; i < n; i++ {
		out = append(out, all[i*step])
	}
	return out
}

// Describe renders a slice as statement ids with positions, for messages.
func Describe(p *ir.Program, s *slicing.Slice) string {
	ids := s.Stmts()
	var out string
	for _, id := range ids {
		st := p.Stmt(id)
		out += fmt.Sprintf("s%d@%s(%s) ", id, st.Pos, st.Op)
	}
	return out
}

// variantSlicer pairs a built variant with its queryable slicer.
type variantSlicer struct {
	v Variant
	s slicing.Slicer
}

// Check compiles and runs src once under instrumentation, builds every
// variant's graph from that single execution, then slices every sampled
// criterion through the whole matrix and compares each answer against
// the brute-force oracle. It returns the observed divergences (empty
// means the PLDI'04 equivalence claim held on this program) or a
// CompileError / RunError when the subject itself is invalid.
func Check(src string, input []int64, o Options) (*Result, error) {
	p, err := compile.Source(src)
	if err != nil {
		return nil, &CompileError{Err: err}
	}

	// Profiling run: Ball-Larus path profile for OPT's specialization,
	// exactly as the paper's protocol prescribes.
	col := profile.NewCollector(p)
	res, err := interp.Run(p, interp.Options{Input: input, MaxSteps: o.maxSteps(), Sink: col})
	if err != nil {
		return nil, &RunError{Err: err}
	}
	hot := col.HotPaths(1, 0)
	cuts := col.Cuts()

	dir, err := os.MkdirTemp("", "fuzzgen")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Reference slicers and the criterion sampler.
	ora := oracle.New(p)
	fwd := forward.New(p)
	smp := newSampler()
	sinks := trace.Multi{ora, fwd, smp}

	// The LP slicer's trace, with small segments to exercise skipping.
	tf, err := os.Create(filepath.Join(dir, "run.trace"))
	if err != nil {
		return nil, err
	}
	tw := trace.NewWriter(p, tf, 64)
	sinks = append(sinks, tw)

	// Snapshot variants answer from graphs that round-tripped through the
	// on-disk image: one dedicated FP+OPT builder pair feeds the image,
	// which is written and re-read after the run.
	needSnap := false
	for _, v := range o.variants() {
		if v.Snapshot {
			needSnap = true
		}
	}
	var fpSnap *fp.Graph
	var optSnap *opt.Graph
	if needSnap {
		fpSnap = fp.NewGraph(p)
		optSnap = opt.NewGraph(p, opt.Full(), hot, cuts)
		sinks = append(sinks, fpSnap, optSnap)
	}

	// Matrix variants. Pipelined ones are wrapped in trace.Async so the
	// events arrive batched on a worker goroutine, as in production.
	var variants []variantSlicer
	var asyncs []*trace.Async
	// planFP/planOPT are resident graphs the plan variant reuses as its
	// warm graph backends (the first plain-free, unpipelined instance of
	// each — any instance computes identical slices).
	var planFP, planOPT slicing.Slicer
	needRx := false
	for _, v := range o.variants() {
		if v.Alg == "reexec" || v.Alg == "plan" {
			needRx = true
		}
	}
	hybrids := 0
	for _, v := range o.variants() {
		if v.Snapshot {
			continue // built from the image after the run
		}
		var sink trace.Sink
		var sl slicing.Slicer
		switch v.Alg {
		case "FP":
			g := fp.NewGraph(p)
			g.SetPlainLabels(v.Plain)
			if planFP == nil && !v.Plain && !v.Pipelined {
				planFP = g
			}
			sink, sl = g, g
		case "OPT":
			cfg := opt.Full()
			cfg.PlainLabels = v.Plain
			g := opt.NewGraph(p, cfg, hot, cuts)
			if planOPT == nil && !v.Plain && !v.Pipelined && !v.Hybrid {
				planOPT = g
			}
			if v.Hybrid {
				hd := filepath.Join(dir, fmt.Sprintf("hybrid%d", hybrids))
				hybrids++
				if err := g.EnableHybrid(hd, o.hybridBudget()); err != nil {
					return nil, err
				}
			}
			sink, sl = g, g
		case "LP", "forward", "reexec", "plan":
			// LP and reexec are built from the trace writer's segment index
			// after the run; forward is registered once below (it is its own
			// sink); plan dispatches over the others.
			continue
		default:
			return nil, fmt.Errorf("fuzzgen: unknown variant algorithm %q", v.Alg)
		}
		if v.Pipelined {
			a := trace.NewAsync(sink, trace.PipelineConfig{})
			asyncs = append(asyncs, a)
			sink = a
		}
		sinks = append(sinks, sink)
		variants = append(variants, variantSlicer{v: v, s: sl})
	}

	// The single instrumented execution feeding every variant. When the
	// matrix includes re-execution, the run also captures checkpoints at
	// a small interval so resumes exercise the windowed suffix path.
	ckEvery := int64(0)
	if needRx {
		ckEvery = 64
	}
	res2, err := interp.Run(p, interp.Options{
		Input: input, MaxSteps: o.maxSteps(), Sink: sinks, CheckpointEvery: ckEvery,
	})
	if err != nil {
		for _, a := range asyncs {
			a.Close()
		}
		tf.Close()
		return nil, &RunError{Err: err}
	}
	if err := tf.Close(); err != nil {
		return nil, err
	}
	if tw.Err() != nil {
		return nil, fmt.Errorf("fuzzgen: trace write: %w", tw.Err())
	}

	var img *snapshot.Image
	if needSnap {
		snapPath := filepath.Join(dir, "run.dysnap")
		var key snapshot.Key // content addressing is the cache's concern, not the codec's
		if _, err := snapshot.Write(snapPath, key, &snapshot.Image{
			Output: res.Output, Steps: res.Steps, Return: res.ReturnValue,
			Segs: tw.Segments(), FP: fpSnap, OPT: optSnap,
		}); err != nil {
			return nil, fmt.Errorf("fuzzgen: snapshot write: %w", err)
		}
		if img, err = snapshot.Read(snapPath, p, key); err != nil {
			return nil, fmt.Errorf("fuzzgen: snapshot read: %w", err)
		}
	}

	// One shared re-execution slicer serves the reexec variants and the
	// plan variant's reexec backend: queries are sequential here, and
	// every Slice call opens its own resume cursor.
	var rxS *reexec.Slicer
	mkRx := func() *reexec.Slicer {
		if rxS == nil {
			rxS = reexec.New(p, tw.Segments(), reexec.Options{
				Input:       input,
				MaxSteps:    o.maxSteps(),
				TotalBlocks: res2.BlockExecs,
				Checkpoints: res2.Checkpoints,
			})
		}
		return rxS
	}
	for _, v := range o.variants() {
		if v.Snapshot {
			switch v.Alg {
			case "FP":
				variants = append(variants, variantSlicer{v: v, s: img.FP})
			case "OPT":
				variants = append(variants, variantSlicer{v: v, s: img.OPT})
			default:
				return nil, fmt.Errorf("fuzzgen: variant %s: snapshot applies to FP/OPT only", v.Name())
			}
			continue
		}
		switch v.Alg {
		case "LP":
			lps := lp.New(p, filepath.Join(dir, "run.trace"), tw.Segments())
			variants = append(variants, variantSlicer{v: v, s: lps})
		case "forward":
			variants = append(variants, variantSlicer{v: v, s: fwd})
		case "reexec":
			variants = append(variants, variantSlicer{v: v, s: mkRx()})
		case "plan":
			pv := &planVariant{
				feats: plan.Features{
					TraceBlocks: res2.BlockExecs,
					TraceSteps:  res2.Steps,
					Segments:    len(tw.Segments()),
					IRStmts:     len(p.Stmts),
				},
				av: plan.Availability{
					FP: planFP != nil, FPWarm: planFP != nil,
					OPT: planOPT != nil, OPTWarm: planOPT != nil,
					LP: true, Reexec: true, Forward: true,
				},
				backends: map[string]slicing.Slicer{
					plan.FP:      planFP,
					plan.OPT:     planOPT,
					plan.LP:      lp.New(p, filepath.Join(dir, "run.trace"), tw.Segments()),
					plan.Reexec:  mkRx(),
					plan.Forward: fwd,
				},
				stats: stats.New(),
			}
			variants = append(variants, variantSlicer{v: v, s: pv})
		}
	}

	addrs := smp.sample(o.criteria())
	out := &Result{Stmts: int(res.Steps), Criteria: len(addrs), Variants: len(variants)}

	// Batched variants answer the whole criterion set through one
	// SliceAll pass on the work-stealing scheduler; the per-criterion
	// loop below then compares each precomputed answer slice for slice.
	batched := make(map[int][]*slicing.Slice)
	if cs := make([]slicing.Criterion, len(addrs)); len(cs) > 0 {
		for i, a := range addrs {
			cs[i] = slicing.AddrCriterion(a)
		}
		for vi, vs := range variants {
			if vs.v.Batch <= 0 {
				continue
			}
			ms, ok := vs.s.(slicing.MultiSlicer)
			if !ok {
				return nil, fmt.Errorf("fuzzgen: variant %s has no batched SliceAll", vs.v.Name())
			}
			if sw, ok := vs.s.(interface{ SetWorkers(int) }); ok {
				sw.SetWorkers(vs.v.Batch)
			}
			outs, _, err := ms.SliceAll(cs)
			if err != nil {
				for _, a := range addrs {
					out.Divergences = append(out.Divergences, Divergence{
						Variant: vs.v.Name(), Addr: a, Err: err.Error(),
					})
				}
				continue
			}
			batched[vi] = outs
		}
	}

	var deps *oracle.Deps
	if o.Witness {
		deps = ora.Deps()
	}
	for ci, a := range addrs {
		c := slicing.AddrCriterion(a)
		want, _, err := ora.Slice(c)
		if err != nil {
			return nil, fmt.Errorf("fuzzgen: oracle slice addr %d: %w", a, err)
		}
		for vi, vs := range variants {
			var got *slicing.Slice
			if vs.v.Batch > 0 {
				outs, ok := batched[vi]
				if !ok {
					continue // SliceAll errored; divergences already recorded
				}
				got = outs[ci]
			} else if got, _, err = vs.s.Slice(c); err != nil {
				out.Divergences = append(out.Divergences, Divergence{
					Variant: vs.v.Name(), Addr: a, Err: err.Error(),
				})
				continue
			}
			if o.Tamper != nil {
				o.Tamper(vs.v.Name(), got)
			}
			if !want.Equal(got) {
				out.Divergences = append(out.Divergences, Divergence{
					Variant: vs.v.Name(), Addr: a,
					Want: Describe(p, want), Got: Describe(p, got),
				})
			}
			if o.Witness && witnessTarget(vs.v) {
				if ex, ok := vs.s.(slicing.Explainer); ok {
					out.Divergences = append(out.Divergences,
						checkWitnesses(p, deps, want, ex, c, vs.v.Name())...)
				}
			}
		}
	}
	return out, nil
}

// IsSubjectError reports whether err stems from the subject program
// (compile failure or runtime fault) rather than the harness.
func IsSubjectError(err error) bool {
	var ce *CompileError
	var re *RunError
	return errors.As(err, &ce) || errors.As(err, &re)
}
