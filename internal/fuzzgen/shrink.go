package fuzzgen

import (
	"dynslice/internal/lang"
)

// Predicate reports whether a candidate program still reproduces the
// failure being minimized. Candidates that fail to compile or run simply
// make the predicate return false; the shrinker treats them as invalid
// edits and moves on.
type Predicate func(src string, input []int64) bool

// Shrink greedily minimizes a failing program: it repeatedly tries
// statement deletions, control-structure unwrapping, constant reduction
// (loop bounds included), global/function deletion, and input-vector
// element drops, re-validating every candidate with keep and accepting
// any edit that preserves the failure. The returned program still
// satisfies keep (or equals the input if the original never did).
//
// The candidate space is enumerated from a fresh parse for every edit,
// so the walk order is deterministic and an accepted edit restarts
// enumeration on the smaller program — the classic greedy ddmin loop.
func Shrink(src string, input []int64, keep Predicate) (string, []int64) {
	cur := src
	curIn := append([]int64(nil), input...)
	if !keep(cur, curIn) {
		return cur, curIn
	}
	// Normalize through the printer once so rendered candidates differ
	// from cur only by the applied edit.
	if p, err := lang.Parse(cur); err == nil {
		if norm := Render(p); keep(norm, curIn) {
			cur = norm
		}
	}
	const maxRounds = 400
	for round := 0; round < maxRounds; round++ {
		progress := false
		for i := 0; i < len(curIn); i++ {
			cand := make([]int64, 0, len(curIn)-1)
			cand = append(cand, curIn[:i]...)
			cand = append(cand, curIn[i+1:]...)
			if keep(cur, cand) {
				curIn = cand
				progress = true
				i--
			}
		}
		n := countEdits(cur)
		for k := 0; k < n; k++ {
			cand, ok := applyEdit(cur, k)
			if !ok || cand == cur {
				continue
			}
			if keep(cand, curIn) {
				cur = cand
				progress = true
				break
			}
		}
		if !progress {
			break
		}
	}
	return cur, curIn
}

// CountStmts returns the number of executable statements in the program
// (declarations, assignments, control headers, calls, prints, jumps —
// everything except the block braces themselves). Used to judge repro
// size.
func CountStmts(src string) int {
	p, err := lang.Parse(src)
	if err != nil {
		return -1
	}
	n := len(p.Globals)
	var walk func(list []lang.Stmt)
	count := func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.BlockStmt:
			// braces only
		case *lang.IfStmt:
			n++
		case *lang.WhileStmt:
			n++
		case *lang.ForStmt:
			n++
			if s.Init != nil {
				n++
			}
			if s.Post != nil {
				n++
			}
		default:
			n++
		}
	}
	walk = func(list []lang.Stmt) {
		for _, s := range list {
			count(s)
			switch s := s.(type) {
			case *lang.BlockStmt:
				walk(s.Stmts)
			case *lang.IfStmt:
				walk(s.Then.Stmts)
				for el := s.Else; el != nil; {
					switch e := el.(type) {
					case *lang.BlockStmt:
						walk(e.Stmts)
						el = nil
					case *lang.IfStmt:
						n++
						walk(e.Then.Stmts)
						el = e.Else
					default:
						el = nil
					}
				}
			case *lang.WhileStmt:
				walk(s.Body.Stmts)
			case *lang.ForStmt:
				walk(s.Body.Stmts)
			}
		}
	}
	for _, f := range p.Funcs {
		walk(f.Body.Stmts)
	}
	return n
}

// editor walks a parsed program enumerating edit points. The k-th call
// to hit() (counting from 0) returns true exactly when k == target, and
// at most one edit is ever applied per walk. Counting mode uses
// target = -1.
type editor struct {
	target  int
	count   int
	applied bool
}

func (e *editor) hit() bool {
	if e.applied {
		e.count++
		return false
	}
	h := e.count == e.target
	e.count++
	if h {
		e.applied = true
	}
	return h
}

func countEdits(src string) int {
	p, err := lang.Parse(src)
	if err != nil {
		return 0
	}
	e := &editor{target: -1}
	e.program(p)
	return e.count
}

func applyEdit(src string, k int) (string, bool) {
	p, err := lang.Parse(src)
	if err != nil {
		return "", false
	}
	e := &editor{target: k}
	e.program(p)
	if !e.applied {
		return "", false
	}
	return Render(p), true
}

func (e *editor) program(p *lang.Program) {
	for i := 0; i < len(p.Globals); i++ {
		if e.hit() {
			p.Globals = append(p.Globals[:i:i], p.Globals[i+1:]...)
			i--
			continue
		}
		if p.Globals[i].Init != nil {
			e.expr(p.Globals[i].Init)
		}
	}
	for i := 0; i < len(p.Funcs); i++ {
		f := p.Funcs[i]
		if f.Name != "main" && e.hit() {
			p.Funcs = append(p.Funcs[:i:i], p.Funcs[i+1:]...)
			i--
			continue
		}
		f.Body.Stmts = e.stmts(f.Body.Stmts)
	}
}

// splice replaces list[i] with the given replacement statements.
func splice(list []lang.Stmt, i int, repl []lang.Stmt) []lang.Stmt {
	out := make([]lang.Stmt, 0, len(list)-1+len(repl))
	out = append(out, list[:i]...)
	out = append(out, repl...)
	out = append(out, list[i+1:]...)
	return out
}

func (e *editor) stmts(list []lang.Stmt) []lang.Stmt {
	out := list
	for i := 0; i < len(out); i++ {
		if e.hit() { // delete the statement outright
			out = append(out[:i:i], out[i+1:]...)
			i--
			continue
		}
		switch s := out[i].(type) {
		case *lang.VarDecl:
			if s.Init != nil {
				e.expr(s.Init)
			}
		case *lang.AssignStmt:
			if s.Index != nil {
				e.expr(s.Index)
			}
			if s.Addr != nil {
				e.expr(s.Addr)
			}
			e.expr(s.Rhs)
		case *lang.IfStmt:
			if e.hit() { // unwrap: replace the if by its then-contents
				out = splice(out, i, s.Then.Stmts)
				i--
				continue
			}
			if blk, ok := s.Else.(*lang.BlockStmt); ok && e.hit() {
				// unwrap to the else-contents instead
				out = splice(out, i, blk.Stmts)
				i--
				continue
			}
			if s.Else != nil && e.hit() { // drop the else arm
				s.Else = nil
			}
			e.ifChain(s)
		case *lang.WhileStmt:
			if e.hit() { // unwrap: hoist the body out of the loop
				out = splice(out, i, s.Body.Stmts)
				i--
				continue
			}
			e.expr(s.Cond)
			s.Body.Stmts = e.stmts(s.Body.Stmts)
		case *lang.ForStmt:
			if e.hit() {
				out = splice(out, i, s.Body.Stmts)
				i--
				continue
			}
			if s.Cond != nil {
				e.expr(s.Cond)
			}
			s.Body.Stmts = e.stmts(s.Body.Stmts)
		case *lang.ReturnStmt:
			if s.Value != nil {
				e.expr(s.Value)
			}
		case *lang.PrintStmt:
			e.expr(s.Arg)
		case *lang.ExprStmt:
			e.expr(s.Call)
		case *lang.BlockStmt:
			s.Stmts = e.stmts(s.Stmts)
		}
	}
	return out
}

// ifChain walks the condition, arms, and any else-if chain of an if.
func (e *editor) ifChain(s *lang.IfStmt) {
	e.expr(s.Cond)
	s.Then.Stmts = e.stmts(s.Then.Stmts)
	switch el := s.Else.(type) {
	case *lang.BlockStmt:
		el.Stmts = e.stmts(el.Stmts)
	case *lang.IfStmt:
		e.ifChain(el)
	}
}

func (e *editor) expr(x lang.Expr) {
	switch x := x.(type) {
	case *lang.NumLit:
		if x.Value != 0 {
			if e.hit() {
				x.Value = 0
				return
			}
		}
		if x.Value > 1 || x.Value < -1 {
			if e.hit() {
				x.Value /= 2
				return
			}
		}
	case *lang.IndexExpr:
		e.expr(x.Index)
	case *lang.DerefExpr:
		e.expr(x.Addr)
	case *lang.AddrOfExpr:
		if x.Index != nil {
			e.expr(x.Index)
		}
	case *lang.UnaryExpr:
		e.expr(x.X)
	case *lang.BinaryExpr:
		e.expr(x.X)
		e.expr(x.Y)
	case *lang.CallExpr:
		for _, a := range x.Args {
			e.expr(a)
		}
	}
}
