package profile

import (
	"sort"

	"dynslice/internal/dataflow"
	"dynslice/internal/ir"
)

// Cuts answers whether consecutive block executions belong to different
// Ball-Larus paths. The OPT graph builder and the profile collector share
// this definition, so paths observed while profiling are exactly the
// sequences the builder will see between cuts.
type Cuts struct {
	back map[[2]*ir.Block]bool
}

// NewCuts precomputes back edges for every function of p.
func NewCuts(p *ir.Program) *Cuts {
	c := &Cuts{back: map[[2]*ir.Block]bool{}}
	for _, f := range p.Funcs {
		for e := range dataflow.BackEdges(f) {
			c.back[e] = true
		}
	}
	return c
}

// Between reports whether a path cut occurs between the executions of prev
// and next: function change (call or return), an explicit call or return
// terminator, a taken back edge, or a logical-block boundary (call blocks
// and their continuations form superblock nodes of their own and never
// join specialized paths).
func (c *Cuts) Between(prev, next *ir.Block) bool {
	if prev.Fn != next.Fn {
		return true
	}
	if t := prev.Terminator(); t != nil && (t.Op == ir.OpCall || t.Op == ir.OpReturn) {
		return true
	}
	if next.IsCallBlock() || next.IsContinuation() || prev.IsContinuation() {
		return true
	}
	return c.back[[2]*ir.Block{prev, next}]
}

// PathProfile is one executed Ball-Larus path and its frequency.
type PathProfile struct {
	Fn    *ir.Func
	Seq   []*ir.Block
	Count int64
	ID    int64 // Ball-Larus path id (cross-check of the sequence key)
	Key   string
}

// Collector is a trace sink that counts executed Ball-Larus paths.
type Collector struct {
	p      *ir.Program
	cuts   *Cuts
	nums   map[*ir.Func]*Numbering
	cur    []*ir.Block
	counts map[string]*PathProfile
}

// NewCollector returns a collector for p.
func NewCollector(p *ir.Program) *Collector {
	c := &Collector{
		p:      p,
		cuts:   NewCuts(p),
		nums:   map[*ir.Func]*Numbering{},
		counts: map[string]*PathProfile{},
	}
	for _, f := range p.Funcs {
		c.nums[f] = Number(f)
	}
	return c
}

// Cuts exposes the shared cut predicate.
func (c *Collector) Cuts() *Cuts { return c.cuts }

// Numbering returns the Ball-Larus numbering of f.
func (c *Collector) Numbering(f *ir.Func) *Numbering { return c.nums[f] }

// Block implements trace.Sink.
func (c *Collector) Block(b *ir.Block) {
	if len(c.cur) > 0 && c.cuts.Between(c.cur[len(c.cur)-1], b) {
		c.flush()
	}
	c.cur = append(c.cur, b)
}

// Stmt implements trace.Sink.
func (c *Collector) Stmt(*ir.Stmt, []int64, []int64) {}

// RegionDef implements trace.Sink.
func (c *Collector) RegionDef(*ir.Stmt, int64, int64) {}

// End implements trace.Sink.
func (c *Collector) End() { c.flush() }

func (c *Collector) flush() {
	if len(c.cur) == 0 {
		return
	}
	key := SeqKey(c.cur)
	pp := c.counts[key]
	if pp == nil {
		seq := make([]*ir.Block, len(c.cur))
		copy(seq, c.cur)
		id, err := c.nums[seq[0].Fn].PathID(seq)
		if err != nil {
			id = -1 // not a pure DAG path (should not happen with shared cuts)
		}
		pp = &PathProfile{Fn: seq[0].Fn, Seq: seq, ID: id, Key: key}
		c.counts[key] = pp
	}
	pp.Count++
	c.cur = c.cur[:0]
}

// Paths returns all executed paths, most frequent first (ties broken by
// key for determinism).
func (c *Collector) Paths() []*PathProfile {
	out := make([]*PathProfile, 0, len(c.counts))
	for _, pp := range c.counts {
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// HotPaths returns the executed paths with frequency >= minFreq and length
// >= 2 blocks (specializing single-block paths buys nothing), capped at
// maxPerFunc per function (0 = unlimited).
func (c *Collector) HotPaths(minFreq int64, maxPerFunc int) []*PathProfile {
	perFn := map[*ir.Func]int{}
	var out []*PathProfile
	for _, pp := range c.Paths() {
		if pp.Count < minFreq || len(pp.Seq) < 2 {
			continue
		}
		if maxPerFunc > 0 && perFn[pp.Fn] >= maxPerFunc {
			continue
		}
		perFn[pp.Fn]++
		out = append(out, pp)
	}
	return out
}
