// Package profile implements Ball-Larus acyclic path profiling, the
// profile that drives the OPT representation's path specialization
// (paper §3.4: "We specialized all Ball Larus paths that were found to
// have a non-zero frequency during a profiling run").
//
// Paths are intraprocedural acyclic block sequences delimited by *cuts*:
// a path ends when execution takes a back edge, performs a call, returns,
// or the function changes. (Call and return cuts are an adaptation to this
// IR, where call statements terminate blocks and callee blocks interleave
// in the trace; excluding call edges keeps every path's block records
// contiguous in the trace.)
//
// The package provides both the classic Ball-Larus edge-increment
// numbering (NumPaths/Increments/Decode) and a trace-driven Collector that
// counts executed paths by their block sequence. The two views agree; the
// tests cross-check them.
package profile

import (
	"encoding/binary"
	"fmt"

	"dynslice/internal/dataflow"
	"dynslice/internal/ir"
)

// Numbering is the Ball-Larus path numbering of one function's acyclic
// path DAG.
type Numbering struct {
	Fn *ir.Func
	// NumPaths[b] is the number of distinct acyclic paths starting at b
	// (val(b) in Ball-Larus terms).
	NumPaths map[*ir.Block]int64
	// Inc[edge] is the path-id increment assigned to a DAG edge.
	Inc map[[2]*ir.Block]int64
	// DAGSuccs[b] lists b's successors along non-cut edges, in CFG order.
	DAGSuccs map[*ir.Block][]*ir.Block
	// Terminates[b] reports whether a path may end at b (back edge out,
	// call, return, or no DAG successors).
	Terminates map[*ir.Block]bool
	// Starts is the set of blocks at which paths may begin: the entry,
	// back-edge targets, and call continuations.
	Starts map[*ir.Block]bool
	back   map[[2]*ir.Block]bool
}

// Number computes the Ball-Larus numbering for f.
func Number(f *ir.Func) *Numbering {
	n := &Numbering{
		Fn:         f,
		NumPaths:   map[*ir.Block]int64{},
		Inc:        map[[2]*ir.Block]int64{},
		DAGSuccs:   map[*ir.Block][]*ir.Block{},
		Terminates: map[*ir.Block]bool{},
		Starts:     map[*ir.Block]bool{},
		back:       dataflow.BackEdges(f),
	}
	n.Starts[f.Entry()] = true
	for _, b := range f.Blocks {
		isCall := false
		if t := b.Terminator(); t != nil && t.Op == ir.OpCall {
			isCall = true
		}
		terminates := isCall
		if t := b.Terminator(); t != nil && t.Op == ir.OpReturn {
			terminates = true
		}
		for _, s := range b.Succs {
			switch {
			case n.back[[2]*ir.Block{b, s}]:
				terminates = true
				n.Starts[s] = true
			case isCall:
				n.Starts[s] = true // continuation block
			case s == f.Exit:
				terminates = true
			default:
				n.DAGSuccs[b] = append(n.DAGSuccs[b], s)
			}
		}
		if len(n.DAGSuccs[b]) == 0 {
			terminates = true
		}
		n.Terminates[b] = terminates
	}

	// val(b) = numTerm(b) + sum over DAG successors, computed by memoized
	// recursion (the cut-free subgraph is acyclic).
	var val func(b *ir.Block) int64
	val = func(b *ir.Block) int64 {
		if v, ok := n.NumPaths[b]; ok {
			return v
		}
		n.NumPaths[b] = 0 // placeholder; DAG has no cycles so never read
		var v int64
		if n.Terminates[b] {
			v = 1
		}
		for _, s := range n.DAGSuccs[b] {
			v += val(s)
		}
		n.NumPaths[b] = v
		return v
	}
	for _, b := range f.Blocks {
		val(b)
	}

	// Edge increments: inc(b -> s_i) = numTerm(b) + sum_{j<i} val(s_j).
	for _, b := range f.Blocks {
		var acc int64
		if n.Terminates[b] {
			acc = 1
		}
		for _, s := range n.DAGSuccs[b] {
			n.Inc[[2]*ir.Block{b, s}] = acc
			acc += n.NumPaths[s]
		}
	}
	return n
}

// IsBackEdge reports whether u->v is a back edge of the function.
func (n *Numbering) IsBackEdge(u, v *ir.Block) bool { return n.back[[2]*ir.Block{u, v}] }

// PathID computes the Ball-Larus id of a path given as a block sequence
// (which must follow DAG edges from a start block).
func (n *Numbering) PathID(seq []*ir.Block) (int64, error) {
	if len(seq) == 0 {
		return 0, fmt.Errorf("profile: empty path")
	}
	if !n.Starts[seq[0]] {
		return 0, fmt.Errorf("profile: %v is not a path start", seq[0])
	}
	var id int64
	for i := 0; i+1 < len(seq); i++ {
		inc, ok := n.Inc[[2]*ir.Block{seq[i], seq[i+1]}]
		if !ok {
			return 0, fmt.Errorf("profile: %v -> %v is not a DAG edge", seq[i], seq[i+1])
		}
		id += inc
	}
	return id, nil
}

// Decode reconstructs the block sequence of the path with the given id
// starting at start. It is the inverse of PathID.
func (n *Numbering) Decode(start *ir.Block, id int64) ([]*ir.Block, error) {
	if !n.Starts[start] {
		return nil, fmt.Errorf("profile: %v is not a path start", start)
	}
	if id < 0 || id >= n.NumPaths[start] {
		return nil, fmt.Errorf("profile: path id %d out of range [0,%d) at %v", id, n.NumPaths[start], start)
	}
	seq := []*ir.Block{start}
	b := start
	for {
		if n.Terminates[b] {
			if id == 0 {
				return seq, nil
			}
			id--
		}
		found := false
		for _, s := range n.DAGSuccs[b] {
			if id < n.NumPaths[s] {
				seq = append(seq, s)
				b = s
				found = true
				break
			}
			id -= n.NumPaths[s]
		}
		if !found {
			return nil, fmt.Errorf("profile: corrupt decode state at %v (id %d)", b, id)
		}
	}
}

// SeqKey returns a compact hashable key for a block sequence.
func SeqKey(seq []*ir.Block) string {
	buf := make([]byte, 0, len(seq)*3)
	var tmp [binary.MaxVarintLen64]byte
	for _, b := range seq {
		k := binary.PutUvarint(tmp[:], uint64(b.ID))
		buf = append(buf, tmp[:k]...)
	}
	return string(buf)
}
