package profile_test

import (
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/profile"
)

func prog(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const branchy = `
func main() {
	var n = input();
	var acc = 0;
	var i = 0;
	while (i < n) {
		if (i % 2 == 0) {
			acc = acc + i;
		} else {
			acc = acc - 1;
		}
		if (i % 3 == 0) {
			acc = acc * 2;
		}
		i = i + 1;
	}
	print(acc);
}`

// TestNumberingBijective checks that PathID and Decode are inverses for
// every path of every function.
func TestNumberingBijective(t *testing.T) {
	p := prog(t, branchy)
	for _, f := range p.Funcs {
		n := profile.Number(f)
		for start := range n.Starts {
			total := n.NumPaths[start]
			if total == 0 {
				continue
			}
			seen := map[string]bool{}
			for id := int64(0); id < total; id++ {
				seq, err := n.Decode(start, id)
				if err != nil {
					t.Fatalf("Decode(%v, %d): %v", start, id, err)
				}
				back, err := n.PathID(seq)
				if err != nil {
					t.Fatalf("PathID(%v): %v", seq, err)
				}
				if back != id {
					t.Fatalf("roundtrip %d -> %v -> %d", id, seq, back)
				}
				key := profile.SeqKey(seq)
				if seen[key] {
					t.Fatalf("duplicate sequence for id %d", id)
				}
				seen[key] = true
			}
		}
	}
}

// TestCollectorMatchesNumbering runs the program and checks that every
// collected path has a valid Ball-Larus id (the sequence and arithmetic
// views agree) and that counts sum to the number of cuts.
func TestCollectorMatchesNumbering(t *testing.T) {
	p := prog(t, branchy)
	col := profile.NewCollector(p)
	if _, err := interp.Run(p, interp.Options{Input: []int64{30}, Sink: col}); err != nil {
		t.Fatal(err)
	}
	paths := col.Paths()
	if len(paths) == 0 {
		t.Fatal("no paths collected")
	}
	for _, pp := range paths {
		if pp.ID < 0 {
			t.Errorf("path %v has no valid Ball-Larus id", pp.Seq)
		}
		num := col.Numbering(pp.Fn)
		seq, err := num.Decode(pp.Seq[0], pp.ID)
		if err != nil {
			t.Fatalf("decode collected path: %v", err)
		}
		if profile.SeqKey(seq) != pp.Key {
			t.Errorf("arithmetic and sequence views disagree for %v", pp.Seq)
		}
	}
	// The loop runs 30 times; the loop-body paths must dominate counts.
	var loopCount int64
	for _, pp := range paths {
		if len(pp.Seq) >= 2 {
			loopCount += pp.Count
		}
	}
	if loopCount < 30 {
		t.Errorf("loop paths executed %d times, want >= 30", loopCount)
	}
}

// TestCutsSeparatePathUnits verifies the cut predicate's rules.
func TestCutsSeparatePathUnits(t *testing.T) {
	p := prog(t, `
	func g(v) { return v + 1; }
	func main() {
		var x = 0;
		var i = 0;
		while (i < 3) {
			x = g(x);
			i = i + 1;
		}
		print(x);
	}`)
	cuts := profile.NewCuts(p)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Succs {
				if b.Fn != s.Fn {
					continue
				}
				if b.IsCallBlock() && !cuts.Between(b, s) {
					t.Errorf("call block %s -> %s must cut", b, s)
				}
				if s.IsContinuation() && !cuts.Between(b, s) {
					t.Errorf("edge into continuation %s must cut", s)
				}
			}
		}
	}
}

// TestHotPathsFiltering checks frequency and length filters.
func TestHotPathsFiltering(t *testing.T) {
	p := prog(t, branchy)
	col := profile.NewCollector(p)
	if _, err := interp.Run(p, interp.Options{Input: []int64{50}, Sink: col}); err != nil {
		t.Fatal(err)
	}
	for _, pp := range col.HotPaths(5, 0) {
		if pp.Count < 5 {
			t.Errorf("hot path with count %d < threshold", pp.Count)
		}
		if len(pp.Seq) < 2 {
			t.Errorf("singleton path %v should be filtered", pp.Seq)
		}
	}
	capped := col.HotPaths(1, 2)
	perFn := map[string]int{}
	for _, pp := range capped {
		perFn[pp.Fn.Name]++
	}
	for fn, n := range perFn {
		if n > 2 {
			t.Errorf("%s has %d paths, cap was 2", fn, n)
		}
	}
}
