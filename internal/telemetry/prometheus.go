package telemetry

// Prometheus text-format exposition (version 0.0.4), hand-rolled so the
// module stays dependency-free. WritePrometheus renders every registered
// instrument:
//
//   - counters  -> TYPE counter
//   - gauges    -> TYPE gauge
//   - histograms-> TYPE histogram with cumulative le="..." buckets from
//     the power-of-two layout, plus _sum/_count and derived _p50/_p90/
//     _p99 gauge series (bucket-interpolated, see Pow2Quantile)
//   - spans     -> two counter families with a span="path" label:
//     <ns>_span_count and <ns>_span_seconds_total
//
// Instrument names are sanitized into the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*) by mapping '.', '-', '/' and any other
// illegal byte to '_'. Output is deterministic: families and series are
// emitted in sorted order, so the format is locked by a golden test.

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// PromContentType is the Content-Type HTTP header value for the text
// exposition format served at /metrics.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in Prometheus text format under
// the given namespace prefix (e.g. "dynslice"). Safe on a nil registry
// (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	if r == nil {
		return nil
	}
	ew := &errWriter{w: w}

	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	type histState struct {
		count, sum int64
		buckets    [histBuckets]int64
	}
	hists := make(map[string]*histState, len(r.hists))
	for name, h := range r.hists {
		st := &histState{count: h.count.Load(), sum: h.sum.Load()}
		for i := range h.buckets {
			st.buckets[i] = h.buckets[i].Load()
		}
		hists[name] = st
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		fam := PromName(namespace, name)
		fmt.Fprintf(ew, "# HELP %s Cumulative counter %q.\n", fam, name)
		fmt.Fprintf(ew, "# TYPE %s counter\n", fam)
		fmt.Fprintf(ew, "%s %d\n", fam, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		fam := PromName(namespace, name)
		fmt.Fprintf(ew, "# HELP %s Gauge %q.\n", fam, name)
		fmt.Fprintf(ew, "# TYPE %s gauge\n", fam)
		fmt.Fprintf(ew, "%s %d\n", fam, gauges[name])
	}
	for _, name := range sortedKeys(hists) {
		st := hists[name]
		fam := PromName(namespace, name)
		fmt.Fprintf(ew, "# HELP %s Power-of-two histogram %q.\n", fam, name)
		fmt.Fprintf(ew, "# TYPE %s histogram\n", fam)
		var cum int64
		for i, n := range st.buckets {
			if n == 0 {
				continue
			}
			cum += n
			fmt.Fprintf(ew, "%s_bucket{le=\"%s\"} %d\n", fam, pow2UpperBound(i), cum)
		}
		fmt.Fprintf(ew, "%s_bucket{le=\"+Inf\"} %d\n", fam, st.count)
		fmt.Fprintf(ew, "%s_sum %d\n", fam, st.sum)
		fmt.Fprintf(ew, "%s_count %d\n", fam, st.count)
		for _, q := range [...]struct {
			suffix string
			q      float64
		}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
			fmt.Fprintf(ew, "# TYPE %s_%s gauge\n", fam, q.suffix)
			fmt.Fprintf(ew, "%s_%s %s\n", fam, q.suffix, promFloat(Pow2Quantile(st.buckets[:], q.q)))
		}
	}

	r.spanMu.Lock()
	spans := make(map[string]spanStats, len(r.spans))
	for path, st := range r.spans {
		spans[path] = *st
	}
	r.spanMu.Unlock()
	if len(spans) > 0 {
		paths := sortedKeys(spans)
		countFam := PromName(namespace, "span.count")
		fmt.Fprintf(ew, "# HELP %s Completed span occurrences by path.\n", countFam)
		fmt.Fprintf(ew, "# TYPE %s counter\n", countFam)
		for _, p := range paths {
			fmt.Fprintf(ew, "%s{span=%q} %d\n", countFam, p, spans[p].count)
		}
		secsFam := PromName(namespace, "span.seconds.total")
		fmt.Fprintf(ew, "# HELP %s Cumulative span wall time by path.\n", secsFam)
		fmt.Fprintf(ew, "# TYPE %s counter\n", secsFam)
		for _, p := range paths {
			fmt.Fprintf(ew, "%s{span=%q} %s\n", secsFam, p, promFloat(float64(spans[p].nanos)/1e9))
		}
	}
	return ew.err
}

// PromName joins a namespace and an instrument name into a legal
// Prometheus metric name.
func PromName(namespace, name string) string {
	out := make([]byte, 0, len(namespace)+1+len(name))
	appendSanitized := func(s string) {
		for i := 0; i < len(s); i++ {
			c := s[i]
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
				out = append(out, c)
			case c >= '0' && c <= '9':
				if len(out) == 0 {
					out = append(out, '_')
				}
				out = append(out, c)
			default:
				out = append(out, '_')
			}
		}
	}
	appendSanitized(namespace)
	if namespace != "" && name != "" {
		out = append(out, '_')
	}
	appendSanitized(name)
	return string(out)
}

// pow2UpperBound renders the inclusive upper bound of power-of-two
// bucket i (2^i - 1; bucket 0 holds exactly 0).
func pow2UpperBound(i int) string {
	if i == 0 {
		return "0"
	}
	if i >= 63 {
		// 2^63 - 1 does not fit the int64 math below cleanly; render the
		// exact value via float (bucket 63 is the open-ended top bucket).
		return promFloat(math.Ldexp(1, i) - 1)
	}
	return formatUint(uint64(1)<<uint(i) - 1)
}

// promFloat renders a float sample value ('%g' keeps integers exact and
// avoids trailing zeros).
func promFloat(v float64) string { return fmt.Sprintf("%g", v) }

// errWriter latches the first write error so exposition code can ignore
// per-line errors.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, nil
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
