// Package stats maintains per-recording rolling workload statistics
// over the query stream: per-backend latency distributions (power-of-two
// microsecond buckets with p50/p90/p99 estimates), an exponentially
// weighted moving average of latency, the batch-size distribution,
// cache hit rate, and the explicit-vs-inferred edge-resolution ratio of
// observed queries.
//
// Snapshot is the feedback input for the ROADMAP's cost-based query
// planner: given a recording's BackendStats — how fast each of FP, OPT,
// and LP has actually answered on THIS workload, how much of OPT's
// resolution was inferred, how batchy the query stream is, and how
// often the cache already answers — a planner can pick the cheapest
// backend for the next query instead of assuming the paper's static
// cost model. Until the planner lands, the same numbers feed the
// Prometheus exposition (`/metrics` on cmd/slicer's -pprof server) and
// BENCH_queries.json (`cmd/experiments -exp queries`).
//
// All methods are safe for concurrent use and on a nil *Recorder
// (recording disabled), mirroring internal/telemetry.
package stats

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"time"

	"dynslice/internal/telemetry"
	"dynslice/internal/telemetry/qtrace"
)

// EWMAAlpha is the smoothing factor of the per-backend latency EWMA:
// each new query contributes 20%, so the average tracks roughly the
// last ~10 queries — recent enough for a planner to notice a backend
// going cold (e.g. hybrid epochs evicted) without flapping on one
// outlier.
const EWMAAlpha = 0.2

const latBuckets = 64

// backend accumulates one algorithm's query stream.
type backend struct {
	queries  int64
	errors   int64
	cacheHit int64
	latSumNS int64
	ewmaMS   float64
	lat      [latBuckets]int64    // pow2 buckets of latency in microseconds
	exemplar [latBuckets]Exemplar // most recent retained trace per bucket
	observed int64                // explain queries folded in
	explicit int64
	inferred int64
	shortcut int64
}

// Exemplar links one latency bucket to a recent retained qtrace trace
// that landed in it, so a p99 spike in /metrics points at a concrete
// span tree (/debug/qtrace/<trace_id>).
type Exemplar struct {
	TraceID qtrace.TraceID `json:"trace_id"`
	Seconds float64        `json:"seconds"` // the exemplar query's latency
}

// Recorder collects the statistics for one recording.
type Recorder struct {
	mu       sync.Mutex
	backends map[string]*backend
	batch    [latBuckets]int64 // pow2 buckets of per-query batch sizes
	batches  int64             // queries that arrived as part of a batch
	batchMax int64
	hits     int64
	misses   int64
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{backends: map[string]*backend{}}
}

func (r *Recorder) backendLocked(name string) *backend {
	b, ok := r.backends[name]
	if !ok {
		b = &backend{}
		r.backends[name] = b
	}
	return b
}

// ObserveQuery folds one answered query into the rolling statistics.
// batch is the enclosing batch size (0 for single queries); cacheHit
// marks engine LRU hits; errored queries count toward Errors but not
// the latency distribution.
func (r *Recorder) ObserveQuery(backendName string, d time.Duration, batch int, cacheHit, errored bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.backendLocked(backendName)
	b.queries++
	if cacheHit {
		b.cacheHit++
		r.hits++
	} else {
		r.misses++
	}
	if errored {
		b.errors++
		return
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b.latSumNS += d.Nanoseconds()
	b.lat[bits.Len64(uint64(us))]++
	ms := float64(d.Nanoseconds()) / 1e6
	if b.queries == 1 {
		b.ewmaMS = ms
	} else {
		b.ewmaMS = EWMAAlpha*ms + (1-EWMAAlpha)*b.ewmaMS
	}
	if batch > 1 {
		r.batch[bits.Len64(uint64(batch))]++
		r.batches++
		if int64(batch) > r.batchMax {
			r.batchMax = int64(batch)
		}
	}
}

// ObserveExemplar records a retained trace as the exemplar of the
// latency bucket its query landed in, overwriting any earlier exemplar
// there — "a recent interesting query this slow". Callers only pass
// retained traces, so every exposed exemplar resolves at /debug/qtrace.
func (r *Recorder) ObserveExemplar(backendName string, d time.Duration, id qtrace.TraceID) {
	if r == nil || id == 0 {
		return
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	r.mu.Lock()
	b := r.backendLocked(backendName)
	b.exemplar[bits.Len64(uint64(us))] = Exemplar{TraceID: id, Seconds: d.Seconds()}
	r.mu.Unlock()
}

// ObserveEdges folds one observed query's edge-resolution attribution
// (explain.Profile) into the backend's totals.
func (r *Recorder) ObserveEdges(backendName string, explicit, inferred, shortcut int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.backendLocked(backendName)
	b.observed++
	b.explicit += explicit
	b.inferred += inferred
	b.shortcut += shortcut
}

// BackendStats is the exported view of one backend's query stream.
type BackendStats struct {
	Queries  int64   `json:"queries"`
	Errors   int64   `json:"errors,omitempty"`
	CacheHit int64   `json:"cache_hits"`
	MeanMs   float64 `json:"mean_ms"`
	EWMAMs   float64 `json:"ewma_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// Observed queries and their edge attribution (zero unless explain
	// queries ran on this backend).
	Observed      int64   `json:"observed,omitempty"`
	ExplicitEdges int64   `json:"explicit_edges,omitempty"`
	InferredEdges int64   `json:"inferred_edges,omitempty"`
	ShortcutEdges int64   `json:"shortcut_edges,omitempty"`
	InferredRatio float64 `json:"inferred_ratio,omitempty"`
	// Exemplars maps a latency bucket's upper bound in seconds (the
	// same %g rendering as the Prometheus le label) to the most recent
	// retained trace that landed in it.
	Exemplars map[string]Exemplar `json:"exemplars,omitempty"`

	latencyUS  [latBuckets]int64
	exemplarUS [latBuckets]Exemplar
	latSumNS   int64
}

// LatencyBucketsUS exposes the raw power-of-two microsecond bucket
// counts (for exposition formats that need the full distribution).
func (b *BackendStats) LatencyBucketsUS() []int64 { return b.latencyUS[:] }

// LatencySumNS exposes the exact latency sum in nanoseconds.
func (b *BackendStats) LatencySumNS() int64 { return b.latSumNS }

// LatencyExemplars exposes the per-bucket exemplars positionally
// aligned with LatencyBucketsUS (zero TraceID means no exemplar).
func (b *BackendStats) LatencyExemplars() []Exemplar { return b.exemplarUS[:] }

// Snapshot is a point-in-time view of a recording's workload
// statistics — the planner feedback record (see the package comment).
type Snapshot struct {
	Backends map[string]BackendStats `json:"backends"`
	// Queries counts every query across backends; CacheHitRate is
	// hits/(hits+misses) over the engine's LRU.
	Queries      int64   `json:"queries"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Batch-size distribution over queries that arrived in a batch of
	// size > 1 (each such query contributes its batch's size once).
	Batches  int64   `json:"batched_queries,omitempty"`
	BatchP50 float64 `json:"batch_p50,omitempty"`
	BatchP90 float64 `json:"batch_p90,omitempty"`
	BatchMax int64   `json:"batch_max,omitempty"`
}

// Snapshot captures the current statistics. Safe on nil (returns an
// empty snapshot).
func (r *Recorder) Snapshot() *Snapshot {
	s := &Snapshot{Backends: map[string]BackendStats{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, b := range r.backends {
		bs := BackendStats{
			Queries:       b.queries,
			Errors:        b.errors,
			CacheHit:      b.cacheHit,
			EWMAMs:        b.ewmaMS,
			Observed:      b.observed,
			ExplicitEdges: b.explicit,
			InferredEdges: b.inferred,
			ShortcutEdges: b.shortcut,
			latencyUS:     b.lat,
			exemplarUS:    b.exemplar,
			latSumNS:      b.latSumNS,
		}
		for i, ex := range b.exemplar {
			if ex.TraceID == 0 {
				continue
			}
			if bs.Exemplars == nil {
				bs.Exemplars = map[string]Exemplar{}
			}
			bs.Exemplars[fmt.Sprintf("%g", pow2USUpperSeconds(i))] = ex
		}
		if n := b.queries - b.errors; n > 0 {
			bs.MeanMs = float64(b.latSumNS) / 1e6 / float64(n)
		}
		bs.P50Ms = usToMS(telemetry.Pow2Quantile(b.lat[:], 0.50))
		bs.P90Ms = usToMS(telemetry.Pow2Quantile(b.lat[:], 0.90))
		bs.P99Ms = usToMS(telemetry.Pow2Quantile(b.lat[:], 0.99))
		if n := b.explicit + b.inferred; n > 0 {
			bs.InferredRatio = float64(b.inferred) / float64(n)
		}
		s.Backends[name] = bs
		s.Queries += b.queries
	}
	s.CacheHits = r.hits
	s.CacheMisses = r.misses
	if n := r.hits + r.misses; n > 0 {
		s.CacheHitRate = float64(r.hits) / float64(n)
	}
	s.Batches = r.batches
	s.BatchMax = r.batchMax
	if r.batches > 0 {
		s.BatchP50 = telemetry.Pow2Quantile(r.batch[:], 0.50)
		s.BatchP90 = telemetry.Pow2Quantile(r.batch[:], 0.90)
	}
	return s
}

func usToMS(us float64) float64 { return us / 1000 }

// WritePrometheus renders the snapshot's querylog-derived series in
// Prometheus text format under the namespace prefix: per-backend query
// counters, latency histograms (cumulative buckets in seconds), EWMA
// and inferred-ratio gauges, and the cache/batch series.
func (s *Snapshot) WritePrometheus(w io.Writer, namespace string) error {
	names := make([]string, 0, len(s.Backends))
	for name := range s.Backends {
		names = append(names, name)
	}
	sort.Strings(names)

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	fam := func(suffix string) string { return telemetry.PromName(namespace, suffix) }

	p("# HELP %s Queries answered, by backend.\n", fam("queries.total"))
	p("# TYPE %s counter\n", fam("queries.total"))
	for _, n := range names {
		p("%s{backend=%q} %d\n", fam("queries.total"), n, s.Backends[n].Queries)
	}
	p("# HELP %s Failed queries, by backend.\n", fam("query.errors.total"))
	p("# TYPE %s counter\n", fam("query.errors.total"))
	for _, n := range names {
		p("%s{backend=%q} %d\n", fam("query.errors.total"), n, s.Backends[n].Errors)
	}
	p("# HELP %s Query wall latency, by backend.\n", fam("query.latency.seconds"))
	p("# TYPE %s histogram\n", fam("query.latency.seconds"))
	for _, n := range names {
		b := s.Backends[n]
		exemplars := b.LatencyExemplars()
		var cum int64
		for i, c := range b.LatencyBucketsUS() {
			// An exemplar's bucket comes from its trace's wall time, which
			// includes hops outside the recorded query latency — it can
			// land in a bucket no latency observation has, so an exemplar
			// alone keeps the (cumulative, hence still correct) line.
			ex := exemplars[i]
			if c == 0 && ex.TraceID == 0 {
				continue
			}
			cum += c
			p("%s_bucket{backend=%q,le=\"%g\"} %d",
				fam("query.latency.seconds"), n, pow2USUpperSeconds(i), cum)
			// OpenMetrics-style exemplar: the bucket carries the trace ID
			// of a recent retained query this slow, so a latency spike in
			// /metrics points straight at /debug/qtrace/<id>.
			if ex.TraceID != 0 {
				p(" # {trace_id=%q} %g", ex.TraceID.String(), ex.Seconds)
			}
			p("\n")
		}
		p("%s_bucket{backend=%q,le=\"+Inf\"} %d\n", fam("query.latency.seconds"), n, cum)
		p("%s_sum{backend=%q} %g\n", fam("query.latency.seconds"), n, float64(b.LatencySumNS())/1e9)
		p("%s_count{backend=%q} %d\n", fam("query.latency.seconds"), n, cum)
	}
	p("# HELP %s EWMA query latency in milliseconds (alpha=%g), by backend.\n",
		fam("query.latency.ewma.ms"), EWMAAlpha)
	p("# TYPE %s gauge\n", fam("query.latency.ewma.ms"))
	for _, n := range names {
		p("%s{backend=%q} %g\n", fam("query.latency.ewma.ms"), n, s.Backends[n].EWMAMs)
	}
	p("# HELP %s Inferred share of edge resolutions in observed queries, by backend.\n",
		fam("query.inferred.ratio"))
	p("# TYPE %s gauge\n", fam("query.inferred.ratio"))
	for _, n := range names {
		p("%s{backend=%q} %g\n", fam("query.inferred.ratio"), n, s.Backends[n].InferredRatio)
	}
	p("# HELP %s Engine LRU cache hits.\n", fam("query.cache.hits.total"))
	p("# TYPE %s counter\n", fam("query.cache.hits.total"))
	p("%s %d\n", fam("query.cache.hits.total"), s.CacheHits)
	p("# HELP %s Engine LRU cache misses.\n", fam("query.cache.misses.total"))
	p("# TYPE %s counter\n", fam("query.cache.misses.total"))
	p("%s %d\n", fam("query.cache.misses.total"), s.CacheMisses)
	p("# HELP %s Queries that arrived in a batch of size > 1.\n", fam("query.batched.total"))
	p("# TYPE %s counter\n", fam("query.batched.total"))
	p("%s %d\n", fam("query.batched.total"), s.Batches)
	p("# HELP %s Largest batch observed.\n", fam("query.batch.max"))
	p("# TYPE %s gauge\n", fam("query.batch.max"))
	p("%s %d\n", fam("query.batch.max"), s.BatchMax)
	return err
}

// pow2USUpperSeconds converts power-of-two microsecond bucket i's
// inclusive upper bound to seconds.
func pow2USUpperSeconds(i int) float64 {
	if i == 0 {
		return 0
	}
	return (math.Ldexp(1, i) - 1) / 1e6
}
