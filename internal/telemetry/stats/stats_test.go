package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"dynslice/internal/telemetry/qtrace"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.ObserveQuery("OPT", time.Millisecond, 0, false, false)
	r.ObserveEdges("OPT", 1, 2, 3)
	s := r.Snapshot()
	if s == nil || len(s.Backends) != 0 || s.Queries != 0 {
		t.Errorf("nil recorder snapshot = %+v", s)
	}
}

func TestObserveQueryAggregates(t *testing.T) {
	r := New()
	// Four OPT queries: 1ms, 2ms, 3ms, and a 10ms cache hit.
	r.ObserveQuery("OPT", 1*time.Millisecond, 0, false, false)
	r.ObserveQuery("OPT", 2*time.Millisecond, 0, false, false)
	r.ObserveQuery("OPT", 3*time.Millisecond, 0, false, false)
	r.ObserveQuery("OPT", 10*time.Millisecond, 0, true, false)
	// One errored FP query: no latency contribution.
	r.ObserveQuery("FP", time.Hour, 0, false, true)

	s := r.Snapshot()
	opt := s.Backends["OPT"]
	if opt.Queries != 4 || opt.CacheHit != 1 {
		t.Errorf("OPT queries/hits = %d/%d", opt.Queries, opt.CacheHit)
	}
	if want := (1.0 + 2 + 3 + 10) / 4; math.Abs(opt.MeanMs-want) > 1e-9 {
		t.Errorf("OPT MeanMs = %v, want %v", opt.MeanMs, want)
	}
	if opt.EWMAMs <= 0 {
		t.Errorf("OPT EWMAMs = %v", opt.EWMAMs)
	}
	// Quantiles in milliseconds must stay within the observed range
	// (bucket blur allows up to 2x the max).
	if opt.P50Ms <= 0 || opt.P99Ms < opt.P50Ms || opt.P99Ms > 20 {
		t.Errorf("OPT quantiles p50=%v p99=%v", opt.P50Ms, opt.P99Ms)
	}
	fp := s.Backends["FP"]
	if fp.Queries != 1 || fp.Errors != 1 {
		t.Errorf("FP queries/errors = %d/%d", fp.Queries, fp.Errors)
	}
	if fp.MeanMs != 0 {
		t.Errorf("errored query leaked into FP latency: mean %v", fp.MeanMs)
	}
	if s.Queries != 5 {
		t.Errorf("total queries = %d", s.Queries)
	}
	if want := 1.0 / 5; math.Abs(s.CacheHitRate-want) > 1e-9 {
		t.Errorf("CacheHitRate = %v, want %v", s.CacheHitRate, want)
	}
}

func TestEWMASeedAndDecay(t *testing.T) {
	r := New()
	r.ObserveQuery("LP", 100*time.Millisecond, 0, false, false)
	if got := r.Snapshot().Backends["LP"].EWMAMs; got != 100 {
		t.Fatalf("EWMA seed = %v, want 100", got)
	}
	r.ObserveQuery("LP", 0, 0, false, false)
	if got, want := r.Snapshot().Backends["LP"].EWMAMs, (1-EWMAAlpha)*100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("EWMA after decay = %v, want %v", got, want)
	}
}

func TestBatchDistribution(t *testing.T) {
	r := New()
	for i := 0; i < 10; i++ {
		r.ObserveQuery("OPT", time.Millisecond, 25, false, false)
	}
	r.ObserveQuery("OPT", time.Millisecond, 0, false, false) // single: not batched
	r.ObserveQuery("OPT", time.Millisecond, 1, false, false) // batch of 1: not batched
	s := r.Snapshot()
	if s.Batches != 10 {
		t.Errorf("Batches = %d, want 10", s.Batches)
	}
	if s.BatchMax != 25 {
		t.Errorf("BatchMax = %d, want 25", s.BatchMax)
	}
	// 25 lives in bucket [16,31].
	if s.BatchP50 < 16 || s.BatchP50 > 31 {
		t.Errorf("BatchP50 = %v, want within [16,31]", s.BatchP50)
	}
}

func TestInferredRatio(t *testing.T) {
	r := New()
	r.ObserveEdges("OPT", 75, 25, 40)
	s := r.Snapshot().Backends["OPT"]
	if s.Observed != 1 || s.ExplicitEdges != 75 || s.InferredEdges != 25 || s.ShortcutEdges != 40 {
		t.Errorf("edge totals = %+v", s)
	}
	if want := 0.25; math.Abs(s.InferredRatio-want) > 1e-9 {
		t.Errorf("InferredRatio = %v, want %v", s.InferredRatio, want)
	}
}

func TestExemplars(t *testing.T) {
	var nr *Recorder
	nr.ObserveExemplar("OPT", time.Millisecond, 1) // nil-safe

	r := New()
	r.ObserveQuery("OPT", 3*time.Millisecond, 0, false, false)
	r.ObserveExemplar("OPT", 3*time.Millisecond, 0) // zero ID is dropped
	if ex := r.Snapshot().Backends["OPT"].Exemplars; len(ex) != 0 {
		t.Fatalf("zero trace ID stored: %+v", ex)
	}
	r.ObserveExemplar("OPT", 3*time.Millisecond, 0xbeef)
	r.ObserveExemplar("OPT", 3200*time.Microsecond, 0xcafe) // same bucket: overwrites
	r.ObserveExemplar("OPT", 40*time.Millisecond, 0xf00d)
	s := r.Snapshot()
	ex := s.Backends["OPT"].Exemplars
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v, want 2 buckets", ex)
	}
	found := map[qtrace.TraceID]bool{}
	for _, e := range ex {
		found[e.TraceID] = true
	}
	if !found[0xcafe] || !found[0xf00d] || found[0xbeef] {
		t.Fatalf("exemplar overwrite wrong: %+v", ex)
	}

	var b strings.Builder
	if err := s.WritePrometheus(&b, "dynslice"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# {trace_id="000000000000cafe"} 0.0032`) {
		t.Errorf("bucket exemplar missing from exposition:\n%s", out)
	}
	// The 40ms exemplar's bucket has no latency observation (a trace's
	// wall time spans more than the recorded query latency): the bucket
	// line must still be emitted so the exemplar is not silently lost.
	if !strings.Contains(out, `# {trace_id="000000000000f00d"} 0.04`) {
		t.Errorf("exemplar on count-zero bucket missing from exposition:\n%s", out)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.ObserveQuery("OPT", 3*time.Millisecond, 25, false, false)
	r.ObserveQuery("OPT", 5*time.Millisecond, 0, true, false)
	r.ObserveQuery("FP", 40*time.Millisecond, 0, false, false)
	r.ObserveEdges("OPT", 60, 40, 10)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b, "dynslice"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`dynslice_queries_total{backend="FP"} 1`,
		`dynslice_queries_total{backend="OPT"} 2`,
		`dynslice_query_latency_seconds_count{backend="OPT"} 2`,
		`dynslice_query_latency_seconds_bucket{backend="OPT",le="+Inf"} 2`,
		`dynslice_query_inferred_ratio{backend="OPT"} 0.4`,
		`dynslice_query_cache_hits_total 1`,
		`dynslice_query_cache_misses_total 2`,
		`dynslice_query_batched_total 1`,
		`dynslice_query_batch_max 25`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentObservers(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.ObserveQuery("OPT", time.Duration(i)*time.Microsecond, i%30, i%5 == 0, false)
				if i%50 == 0 {
					r.ObserveEdges("OPT", 10, 3, 1)
				}
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Queries != workers*per {
		t.Errorf("Queries = %d, want %d", s.Queries, workers*per)
	}
	if s.CacheHits+s.CacheMisses != workers*per {
		t.Errorf("hits+misses = %d", s.CacheHits+s.CacheMisses)
	}
}
