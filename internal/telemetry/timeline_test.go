package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.Event("x", "span", 0, time.Now(), time.Millisecond)
	if tl.Len() != 0 || tl.Events() != nil {
		t.Error("nil timeline recorded events")
	}
	var r *Registry
	r.AttachTimeline(NewTimeline())
	if r.Timeline() != nil {
		t.Error("nil registry returned a timeline")
	}
}

func TestTimelineWriteJSONShape(t *testing.T) {
	tl := NewTimeline()
	start := time.Now()
	tl.Event("compile", "span", 0, start, 2*time.Millisecond)
	tl.Event("fp-build", "pipeline", 3, start.Add(time.Millisecond), 500*time.Microsecond)

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The export must be loadable as the Trace Event Format object form.
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid trace-event JSON: %v\n%s", err, buf.String())
	}
	if f.Unit != "ms" || len(f.TraceEvents) != 2 {
		t.Fatalf("unit=%q events=%d", f.Unit, len(f.TraceEvents))
	}
	for _, ev := range f.TraceEvents {
		for _, key := range []string{"name", "cat", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event missing %q: %v", key, ev)
			}
		}
		if ev["ph"] != "X" {
			t.Errorf("ph = %v, want X", ev["ph"])
		}
	}
	if f.TraceEvents[1]["name"] != "fp-build" || f.TraceEvents[1]["tid"] != float64(3) {
		t.Errorf("second event = %v", f.TraceEvents[1])
	}
}

func TestTimelineEmptyExportIsValid(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTimeline().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents": []`) {
		t.Errorf("empty timeline must serialize an empty array, got %s", buf.String())
	}
}

func TestSpanEmitsTimelineEvent(t *testing.T) {
	r := New()
	tl := NewTimeline()
	r.AttachTimeline(tl)

	sp := r.StartSpan("build")
	sp.Child("opt").End()
	sp.End()
	r.ObserveSpan("slice/opt", 3*time.Millisecond)

	evs := tl.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3 (%v)", len(evs), evs)
	}
	names := map[string]bool{}
	for _, ev := range evs {
		names[ev.Name] = true
		if ev.Cat != "span" {
			t.Errorf("cat = %q, want span", ev.Cat)
		}
	}
	for _, want := range []string{"build", "build/opt", "slice/opt"} {
		if !names[want] {
			t.Errorf("missing span event %q in %v", want, names)
		}
	}

	// Detaching stops emission without touching span aggregation.
	r.AttachTimeline(nil)
	r.ObserveSpan("slice/opt", time.Millisecond)
	if tl.Len() != 3 {
		t.Errorf("detached timeline still receiving events")
	}
	if r.SpanCount("slice/opt") != 2 {
		t.Errorf("span aggregation lost: %d", r.SpanCount("slice/opt"))
	}
}

func TestTimelineWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tl.json")
	tl := NewTimeline()
	tl.Event("a", "span", 0, time.Now(), time.Millisecond)
	if err := tl.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite must go through a temp file + rename: afterwards only the
	// target exists, with valid content.
	tl.Event("b", "span", 0, time.Now(), time.Millisecond)
	if err := tl.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "tl.json" {
		t.Fatalf("directory contents = %v, want only tl.json", ents)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []TimelineEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != 2 {
		t.Errorf("events = %d, want 2", len(f.TraceEvents))
	}
}

func TestRegistryWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	r := New()
	r.Counter("x").Inc()
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	r.Counter("x").Inc()
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("leftover temp files: %v", ents)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot not valid JSON after rewrite: %v", err)
	}

	// Write into a missing directory: the target must not be created and
	// no temp file may survive anywhere.
	if err := r.WriteFile(filepath.Join(dir, "missing", "m.json")); err == nil {
		t.Error("write into missing directory succeeded")
	}
	ents, _ = os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("failure left artifacts: %v", ents)
	}
}
