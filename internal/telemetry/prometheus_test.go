package telemetry

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusGolden locks the exposition format: family order,
// HELP/TYPE lines, cumulative buckets, quantile gauges, span series.
// The histogram observations are chosen so every quantile lands in the
// [1,1] bucket and interpolates to exactly 1 (no float noise).
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("slice.queries").Add(42)
	r.Gauge("pipeline.workers").Set(4)
	h := r.Histogram("slice.size")
	h.Observe(0)
	h.Observe(0)
	for i := 0; i < 8; i++ {
		h.Observe(1)
	}
	r.ObserveSpan("build/fp", 1500*time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b, "t"); err != nil {
		t.Fatal(err)
	}
	want := `# HELP t_slice_queries Cumulative counter "slice.queries".
# TYPE t_slice_queries counter
t_slice_queries 42
# HELP t_pipeline_workers Gauge "pipeline.workers".
# TYPE t_pipeline_workers gauge
t_pipeline_workers 4
# HELP t_slice_size Power-of-two histogram "slice.size".
# TYPE t_slice_size histogram
t_slice_size_bucket{le="0"} 2
t_slice_size_bucket{le="1"} 10
t_slice_size_bucket{le="+Inf"} 10
t_slice_size_sum 8
t_slice_size_count 10
# TYPE t_slice_size_p50 gauge
t_slice_size_p50 1
# TYPE t_slice_size_p90 gauge
t_slice_size_p90 1
# TYPE t_slice_size_p99 gauge
t_slice_size_p99 1
# HELP t_span_count Completed span occurrences by path.
# TYPE t_span_count counter
t_span_count{span="build/fp"} 1
# HELP t_span_seconds_total Cumulative span wall time by path.
# TYPE t_span_seconds_total counter
t_span_seconds_total{span="build/fp"} 1.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// TestWritePrometheusValid checks structural invariants on a richer
// registry: legal metric names, every sample preceded by a TYPE line,
// and monotonically non-decreasing cumulative buckets.
func TestWritePrometheusValid(t *testing.T) {
	r := New()
	r.Counter("trace.write.bytes").Add(1 << 20)
	r.Counter("engine.cache.hits").Add(3)
	r.Gauge("pipeline.queue-depth").Set(7)
	h := r.Histogram("slice.size")
	for _, v := range []int64{0, 1, 2, 3, 100, 5000, 5000, 1 << 40} {
		h.Observe(v)
	}
	r.ObserveSpan("build/opt", 20*time.Millisecond)
	r.ObserveSpan("slice/OPT", 3*time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b, "dynslice"); err != nil {
		t.Fatal(err)
	}
	typed := map[string]bool{}
	var lastCum int64
	var lastHist string
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if !promNameRE.MatchString(f[2]) {
				t.Errorf("illegal family name %q", f[2])
			}
			typed[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !promNameRE.MatchString(name) {
			t.Errorf("illegal metric name %q in line %q", name, line)
		}
		// Every sample must belong to a family announced by a TYPE line
		// (histogram samples use the family's _bucket/_sum/_count suffixes).
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok && typed[base] {
				fam = base
				break
			}
		}
		if !typed[fam] {
			t.Errorf("sample %q has no TYPE line", line)
		}
		// Cumulative bucket monotonicity per histogram.
		if strings.Contains(line, "_bucket{le=") {
			hist := name
			val, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket sample %q: %v", line, err)
			}
			if hist != lastHist {
				lastHist, lastCum = hist, 0
			}
			if val < lastCum {
				t.Errorf("bucket counts not cumulative: %q after %d", line, lastCum)
			}
			lastCum = val
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b, "x"); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil registry wrote %q", b.String())
	}
}

func TestPromName(t *testing.T) {
	tests := []struct{ ns, name, want string }{
		{"dynslice", "slice.queries", "dynslice_slice_queries"},
		{"dynslice", "engine.cache-hits", "dynslice_engine_cache_hits"},
		{"", "9lives", "_9lives"},
		{"", "a/b c", "a_b_c"},
		{"ns", "", "ns"},
	}
	for _, tc := range tests {
		if got := PromName(tc.ns, tc.name); got != tc.want {
			t.Errorf("PromName(%q, %q) = %q, want %q", tc.ns, tc.name, got, tc.want)
		}
		if got := PromName(tc.ns, tc.name); !promNameRE.MatchString(got) {
			t.Errorf("PromName(%q, %q) = %q: illegal", tc.ns, tc.name, got)
		}
	}
}
