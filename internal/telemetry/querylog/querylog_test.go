package querylog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilLogIsInert(t *testing.T) {
	var l *Log
	if id := l.NextID(); id != 0 {
		t.Errorf("nil NextID = %d, want 0", id)
	}
	l.Add(Record{ID: 1})
	l.SetSink(&bytes.Buffer{})
	l.SetSlowQuery(time.Millisecond, slog.Default())
	if l.Total() != 0 || l.Capacity() != 0 || l.SlowQueries() != 0 {
		t.Error("nil log reported state")
	}
	if l.Recent(5) != nil {
		t.Error("nil Recent != nil")
	}
	if err := l.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
	if err := l.SinkErr(); err != nil {
		t.Error(err)
	}
	rr := httptest.NewRecorder()
	l.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/queries", nil))
	if rr.Code != 404 {
		t.Errorf("nil ServeHTTP status = %d, want 404", rr.Code)
	}
}

func TestNextIDMonotonic(t *testing.T) {
	l := New(4)
	for want := uint64(1); want <= 10; want++ {
		if id := l.NextID(); id != want {
			t.Fatalf("NextID = %d, want %d", id, want)
		}
	}
}

func TestRingEvictsOldest(t *testing.T) {
	l := New(3)
	for i := 1; i <= 5; i++ {
		l.Add(Record{ID: uint64(i)})
	}
	if l.Total() != 5 {
		t.Errorf("Total = %d, want 5", l.Total())
	}
	recs := l.Recent(0)
	if len(recs) != 3 {
		t.Fatalf("retained %d records, want 3", len(recs))
	}
	// Most recent first: 5, 4, 3.
	for i, want := range []uint64{5, 4, 3} {
		if recs[i].ID != want {
			t.Errorf("Recent[%d].ID = %d, want %d", i, recs[i].ID, want)
		}
	}
	if got := l.Recent(1); len(got) != 1 || got[0].ID != 5 {
		t.Errorf("Recent(1) = %v", got)
	}
}

func TestWriteJSONLOldestFirst(t *testing.T) {
	l := New(8)
	for i := 1; i <= 4; i++ {
		l.Add(Record{ID: uint64(i), Backend: "OPT", Kind: KindSlice, Addr: int64(100 + i)})
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var ids []uint64
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		ids = append(ids, r.ID)
	}
	if len(ids) != 4 {
		t.Fatalf("got %d lines, want 4", len(ids))
	}
	for i, id := range ids {
		if id != uint64(i+1) {
			t.Errorf("line %d has ID %d, want %d (oldest first)", i, id, i+1)
		}
	}
}

func TestStreamingSink(t *testing.T) {
	l := New(2) // smaller than the record count: sink must still see all
	var buf bytes.Buffer
	l.SetSink(&buf)
	for i := 1; i <= 5; i++ {
		l.Add(Record{ID: uint64(i), Backend: "FP", Kind: KindSlice})
	}
	if err := l.SinkErr(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 5 {
		t.Errorf("sink received %d lines, want 5", lines)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestSinkErrorLatches(t *testing.T) {
	l := New(8)
	l.SetSink(&failWriter{n: 2})
	for i := 0; i < 5; i++ {
		l.Add(Record{ID: uint64(i + 1)})
	}
	if err := l.SinkErr(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("SinkErr = %v, want disk full", err)
	}
	// The ring keeps recording past the sink failure.
	if l.Total() != 5 {
		t.Errorf("Total = %d, want 5", l.Total())
	}
}

func TestSlowQueryLogging(t *testing.T) {
	l := New(8)
	var buf bytes.Buffer
	l.SetSlowQuery(10*time.Millisecond, slog.New(slog.NewTextHandler(&buf, nil)))
	l.Add(Record{ID: 1, Backend: "OPT", Kind: KindSlice, Latency: 2 * time.Millisecond})
	l.Add(Record{
		ID: 2, Backend: "LP", Kind: KindSlice, Addr: 77,
		Latency: 25 * time.Millisecond, Stmts: 9,
		Plan: "reexec", PlanReason: "fallback from reexec: desync",
		Source: "build", TraceID: 0xab,
	})
	if l.SlowQueries() != 1 {
		t.Fatalf("SlowQueries = %d, want 1", l.SlowQueries())
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "id=2") ||
		!strings.Contains(out, "backend=LP") || !strings.Contains(out, "latency_ms=25") {
		t.Errorf("slow log missing fields: %q", out)
	}
	// One line explains the fallback: plan, reason, source, trace link.
	if !strings.Contains(out, "plan=reexec") ||
		!strings.Contains(out, `plan_reason="fallback from reexec: desync"`) ||
		!strings.Contains(out, "source=build") ||
		!strings.Contains(out, "trace_id=00000000000000ab") {
		t.Errorf("slow log missing fallback fields: %q", out)
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{errors.New(`no global "x"`), "bad_criterion"},
		{errors.New("address 7 never defined"), "bad_criterion"},
		{errors.New("no definition of address 9"), "bad_criterion"},
		{errors.New("segment decode failed"), "internal"},
	}
	for _, tc := range tests {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

func TestServeHTTP(t *testing.T) {
	l := New(16)
	for i := 1; i <= 6; i++ {
		l.Add(Record{ID: uint64(i), Backend: "OPT", Kind: KindBatch, Batch: 6})
	}
	rr := httptest.NewRecorder()
	l.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/queries?n=2", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var resp struct {
		Total    uint64   `json:"total"`
		Capacity int      `json:"capacity"`
		Records  []Record `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 6 || resp.Capacity != 16 {
		t.Errorf("total/capacity = %d/%d", resp.Total, resp.Capacity)
	}
	if len(resp.Records) != 2 || resp.Records[0].ID != 6 {
		t.Errorf("records = %+v", resp.Records)
	}

	rr = httptest.NewRecorder()
	l.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/queries?n=bogus", nil))
	if rr.Code != 400 {
		t.Errorf("bad n status = %d, want 400", rr.Code)
	}
}

func TestWriteFileAtomicSnapshot(t *testing.T) {
	l := New(8)
	l.Add(Record{ID: 1, Backend: "FP", Kind: KindSlice})
	path := filepath.Join(t.TempDir(), "q.jsonl")
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r Record
	if err := json.Unmarshal(bytes.TrimSpace(data), &r); err != nil || r.ID != 1 {
		t.Fatalf("snapshot content %q: %v", data, err)
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp file left behind: %v", ents)
	}
}

// TestHammer exercises every concurrent surface at once under -race:
// writers adding records, readers walking the ring, JSONL exports, and
// /debug/queries requests.
func TestHammer(t *testing.T) {
	l := New(64)
	var buf bytes.Buffer
	var bufMu sync.Mutex
	l.SetSink(lockedWriter{&bufMu, &buf})
	l.SetSlowQuery(time.Nanosecond, slog.New(slog.NewTextHandler(discard{}, nil)))

	const writers, perWriter, readers = 8, 200, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Add(Record{
					ID:      l.NextID(),
					Backend: "OPT",
					Kind:    KindSlice,
					Addr:    int64(w*1000 + i),
					Latency: time.Duration(i) * time.Microsecond,
					Stmts:   i,
				})
			}
		}(w)
	}
	done := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				recs := l.Recent(10)
				for i := 1; i < len(recs); i++ {
					if recs[i].ID == 0 {
						t.Error("read a zero record")
						return
					}
				}
				var sink bytes.Buffer
				if err := l.WriteJSONL(&sink); err != nil {
					t.Error(err)
					return
				}
				rr := httptest.NewRecorder()
				l.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/queries?n=5", nil))
				if rr.Code != 200 {
					t.Errorf("status %d", rr.Code)
					return
				}
			}
		}()
	}
	// Writers finish, then release the readers.
	go func() {
		defer close(done)
		for l.Total() < writers*perWriter {
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	if l.Total() != writers*perWriter {
		t.Errorf("Total = %d, want %d", l.Total(), writers*perWriter)
	}
	if got := len(l.Recent(0)); got != 64 {
		t.Errorf("retained %d records, want capacity 64", got)
	}
	bufMu.Lock()
	lines := strings.Count(buf.String(), "\n")
	bufMu.Unlock()
	if lines != writers*perWriter {
		t.Errorf("sink saw %d lines, want %d", lines, writers*perWriter)
	}
	if l.SlowQueries() == 0 {
		t.Error("no slow queries recorded despite 1ns threshold")
	}
}

// lockedWriter guards the hammer test's shared buffer; the Log already
// serializes sink writes, but the test's final read needs the same lock.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestNewClampsCapacity(t *testing.T) {
	if got := New(0).Capacity(); got != DefaultCapacity {
		t.Errorf("New(0).Capacity = %d, want %d", got, DefaultCapacity)
	}
	if got := New(-3).Capacity(); got != DefaultCapacity {
		t.Errorf("New(-3).Capacity = %d, want %d", got, DefaultCapacity)
	}
}
