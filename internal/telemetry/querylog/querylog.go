// Package querylog is the query flight recorder: a fixed-capacity,
// race-free ring buffer of per-query audit records for the slicing
// engine. Every query answered through the root façade or the
// QueryEngine — single, batched, cached, or observed (explain) —
// appends one Record carrying a monotonic query ID, the criterion, the
// backend that answered it, wall latency, cache attribution, result
// size, and (for observed queries) the traversal's explicit-vs-inferred
// edge attribution folded in from the explain Recorder.
//
// The ring retains the most recent Capacity records for the
// /debug/queries endpoint and post-hoc JSONL export; an optional
// streaming sink (SetSink) additionally receives every record as one
// JSONL line the moment it is recorded, which is what
// `cmd/slicer -querylog out.jsonl` wires up. Queries slower than a
// configurable threshold are also logged structurally through
// log/slog (SetSlowQuery).
//
// The package follows the internal/telemetry discipline: every method
// is safe on a nil *Log and returns immediately, so the query path is
// instrumented unconditionally and pays only branch-predictable nil
// checks when no recorder is attached (the root TestOverhead guard
// covers this path).
package querylog

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynslice/internal/telemetry"
	"dynslice/internal/telemetry/qtrace"
)

// Query kinds.
const (
	KindSlice   = "slice"   // single-criterion query
	KindBatch   = "batch"   // one criterion of a batched SliceAddrs call
	KindExplain = "explain" // observed query with provenance recording
)

// Record is one query's audit entry.
type Record struct {
	// ID is the monotonic per-recording query ID (1-based; 0 means no
	// query log was attached when the ID was minted).
	ID uint64 `json:"id"`
	// Start is the wall-clock time the query began.
	Start time.Time `json:"start"`
	// Backend is the algorithm that answered: "FP", "OPT", "LP",
	// "reexec", or "forward".
	Backend string `json:"backend"`
	// Kind is the query shape: slice, batch, or explain.
	Kind string `json:"kind"`
	// Addr is the criterion address.
	Addr int64 `json:"addr"`
	// Batch is the size of the enclosing batch (0 for single queries).
	Batch int `json:"batch,omitempty"`
	// Latency is the query's wall time. Criteria of one batched call
	// share the batch's wall time evenly.
	Latency time.Duration `json:"latency_ns"`
	// CacheHit marks queries answered from the QueryEngine's LRU cache.
	CacheHit bool `json:"cache_hit"`
	// Stmts and Lines are the result size.
	Stmts int `json:"stmts"`
	Lines int `json:"lines"`
	// Instances and LabelProbes are traversal effort (slicing.Stats);
	// for batched calls they aggregate the whole batch and are reported
	// on its first record only.
	Instances   int64 `json:"instances,omitempty"`
	LabelProbes int64 `json:"label_probes,omitempty"`
	// Explicit/Inferred/Shortcut are the edge-resolution attribution of
	// an observed query (explain.Profile); zero for plain queries.
	Explicit int64 `json:"explicit_edges,omitempty"`
	Inferred int64 `json:"inferred_edges,omitempty"`
	Shortcut int64 `json:"shortcut_edges,omitempty"`
	// Err classifies a failed query ("" on success; see Classify).
	Err string `json:"err,omitempty"`
	// Plan is the backend the cost-based planner originally chose for
	// this query ("" when the query was dispatched directly rather than
	// through a planned engine). Plan != Backend means the planned
	// backend failed and the fallback ladder promoted another.
	Plan string `json:"plan,omitempty"`
	// PlanReason is the planner's cost rationale (or the fallback cause
	// when a ladder rung other than the first answered).
	PlanReason string `json:"plan_reason,omitempty"`
	// Source reports where the answering recording's graphs came from:
	// "build" (fresh instrumented execution) or "snapshot" (loaded from
	// the persistent graph cache).
	Source string `json:"source,omitempty"`
	// TraceID links the record to the query's causal trace (qtrace):
	// when the trace was retained, /debug/qtrace/<id> renders the span
	// tree behind this record. 0 when no tracer was attached.
	TraceID qtrace.TraceID `json:"trace_id,omitempty"`
}

// Classify maps a query error to its audit class: "" for nil,
// "bad_criterion" for unknown addresses/globals, "internal" otherwise.
func Classify(err error) string {
	if err == nil {
		return ""
	}
	msg := err.Error()
	if strings.Contains(msg, "no global") || strings.Contains(msg, "never defined") ||
		strings.Contains(msg, "no definition") {
		return "bad_criterion"
	}
	return "internal"
}

// Log is the fixed-capacity ring of recent query records. All methods
// are safe for concurrent use and on a nil receiver.
type Log struct {
	nextID atomic.Uint64

	mu      sync.Mutex
	ring    []Record // ring[i] valid for i < min(total, len(ring))
	next    int      // next write position
	total   uint64   // records ever added
	sink    io.Writer
	sinkErr error

	slow     time.Duration
	slowLog  *slog.Logger
	slowSeen atomic.Int64
}

// DefaultCapacity is the ring size used when New is given n <= 0.
const DefaultCapacity = 256

// New returns a Log retaining the most recent capacity records.
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{ring: make([]Record, 0, capacity)}
}

// NextID mints the next monotonic query ID (1-based). A nil log returns
// 0 for every query, marking records as unattributed.
func (l *Log) NextID() uint64 {
	if l == nil {
		return 0
	}
	return l.nextID.Add(1)
}

// Capacity returns the ring capacity (0 on nil).
func (l *Log) Capacity() int {
	if l == nil {
		return 0
	}
	// The capacity itself never changes, but reading the slice header
	// races with Add's append while the ring is still filling.
	l.mu.Lock()
	defer l.mu.Unlock()
	return cap(l.ring)
}

// SetSink attaches a streaming writer that receives every subsequent
// record as one JSONL line. Writes happen under the log's lock so lines
// never interleave; the first write error latches (SinkErr) and stops
// further streaming.
func (l *Log) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = w
	l.sinkErr = nil
	l.mu.Unlock()
}

// SinkErr returns the latched streaming-sink write error, if any.
func (l *Log) SinkErr() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}

// SetSlowQuery arranges for queries with Latency >= threshold to be
// logged through lg (slog) as structured warnings. A zero threshold or
// nil logger disables the slow log.
func (l *Log) SetSlowQuery(threshold time.Duration, lg *slog.Logger) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.slow = threshold
	l.slowLog = lg
	l.mu.Unlock()
}

// SlowQueries reports how many records crossed the slow threshold.
func (l *Log) SlowQueries() int64 {
	if l == nil {
		return 0
	}
	return l.slowSeen.Load()
}

// Add appends one record to the ring (and the streaming sink, when
// attached). Safe on nil.
func (l *Log) Add(r Record) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, r)
	} else {
		l.ring[l.next] = r
	}
	l.next++
	if l.next == cap(l.ring) {
		l.next = 0
	}
	l.total++
	if l.sink != nil && l.sinkErr == nil {
		if data, err := json.Marshal(r); err != nil {
			l.sinkErr = err
		} else if _, err := l.sink.Write(append(data, '\n')); err != nil {
			l.sinkErr = err
		}
	}
	slow, lg := l.slow, l.slowLog
	l.mu.Unlock()
	if slow > 0 && lg != nil && r.Latency >= slow {
		l.slowSeen.Add(1)
		// One line must explain a fallback: the plan, why it was chosen
		// (or why the ladder demoted), where the graphs came from, and
		// the causal trace to drill into.
		lg.Warn("slow query",
			"id", r.ID,
			"backend", r.Backend,
			"kind", r.Kind,
			"addr", r.Addr,
			"latency_ms", float64(r.Latency.Microseconds())/1000,
			"cache_hit", r.CacheHit,
			"stmts", r.Stmts,
			"err", r.Err,
			"plan", r.Plan,
			"plan_reason", r.PlanReason,
			"source", r.Source,
			"trace_id", r.TraceID.String())
	}
}

// Total returns the number of records ever added (including those the
// ring has since evicted).
func (l *Log) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Recent returns up to n retained records, most recent first. n <= 0
// means all retained records.
func (l *Log) Recent(n int) []Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	have := len(l.ring)
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Record, 0, n)
	// Newest is at next-1, wrapping backwards.
	for i := 0; i < n; i++ {
		idx := l.next - 1 - i
		if idx < 0 {
			idx += have
		}
		out = append(out, l.ring[idx])
	}
	return out
}

// WriteJSONL dumps the retained records, oldest first, one JSON object
// per line.
func (l *Log) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	recs := l.Recent(0)
	enc := json.NewEncoder(w)
	for i := len(recs) - 1; i >= 0; i-- {
		if err := enc.Encode(recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile snapshots the retained records to a JSONL file atomically
// (temp file + rename, like telemetry snapshots).
func (l *Log) WriteFile(path string) error {
	if l == nil {
		return nil
	}
	return telemetry.WriteFileAtomic(path, l.WriteJSONL)
}

// snapshotJSON is the /debug/queries response shape.
type snapshotJSON struct {
	Total    uint64   `json:"total"`
	Capacity int      `json:"capacity"`
	Slow     int64    `json:"slow_queries"`
	Records  []Record `json:"records"` // most recent first
}

// ServeHTTP serves the recent-query ring as JSON (most recent first) —
// the /debug/queries endpoint. ?n=K limits the response to the K most
// recent records.
func (l *Log) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if l == nil {
		http.Error(w, "query log not enabled", http.StatusNotFound)
		return
	}
	n := 0
	if s := req.URL.Query().Get("n"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
	}
	recs := l.Recent(n)
	if recs == nil {
		recs = []Record{}
	}
	resp := snapshotJSON{
		Total:    l.Total(),
		Capacity: l.Capacity(),
		Slow:     l.SlowQueries(),
		Records:  recs,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp) //nolint:errcheck // client disconnects are not actionable
}
