package telemetry

import (
	"math"
	"testing"
)

// bucketize builds a power-of-two counts slice from raw observations,
// mirroring Histogram.Observe's bucket choice.
func bucketize(values ...int64) []int64 {
	counts := make([]int64, histBuckets)
	for _, v := range values {
		if v < 0 {
			v = 0
		}
		i := 0
		for vv := uint64(v); vv > 0; vv >>= 1 {
			i++
		}
		counts[i]++
	}
	return counts
}

func TestPow2QuantileKnownDistributions(t *testing.T) {
	tests := []struct {
		name   string
		counts []int64
		q      float64
		want   float64
		tol    float64
	}{
		{name: "empty", counts: make([]int64, histBuckets), q: 0.5, want: 0},
		{name: "all zeros", counts: bucketize(0, 0, 0, 0), q: 0.99, want: 0},
		{name: "all ones p50", counts: bucketize(1, 1, 1, 1), q: 0.50, want: 1},
		{name: "all ones p99", counts: bucketize(1, 1, 1, 1), q: 0.99, want: 1},
		// Nine zeros and one 1000: the p50 is a zero, the p99 lands in
		// 1000's bucket [512, 1023].
		{name: "zero heavy p50", counts: bucketize(0, 0, 0, 0, 0, 0, 0, 0, 0, 1000), q: 0.50, want: 0},
		{name: "zero heavy p99", counts: bucketize(0, 0, 0, 0, 0, 0, 0, 0, 0, 1000), q: 0.99, want: 512, tol: 512},
		// Uniform 1..8: exact values are bucket-blurred, but each
		// quantile must land inside the right bucket (factor-2 error).
		{name: "uniform p50", counts: bucketize(1, 2, 3, 4, 5, 6, 7, 8), q: 0.50, want: 3.5, tol: 3.5},
		{name: "uniform p90", counts: bucketize(1, 2, 3, 4, 5, 6, 7, 8), q: 0.90, want: 11, tol: 4.1},
	}
	for _, tc := range tests {
		got := Pow2Quantile(tc.counts, tc.q)
		if tc.tol == 0 {
			if got != tc.want {
				t.Errorf("%s: Pow2Quantile(q=%v) = %v, want %v", tc.name, tc.q, got, tc.want)
			}
		} else if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%s: Pow2Quantile(q=%v) = %v, want %v +/- %v", tc.name, tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestPow2QuantileMonotoneInQ(t *testing.T) {
	counts := bucketize(0, 1, 2, 5, 9, 17, 100, 1000, 1000, 4096)
	prev := -1.0
	for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99} {
		got := Pow2Quantile(counts, q)
		if got < prev {
			t.Errorf("quantile not monotone: q=%v gives %v < previous %v", q, got, prev)
		}
		prev = got
	}
}

func TestPow2QuantileBoundedByBucket(t *testing.T) {
	// Whatever the interpolation does, a quantile of observations all
	// equal to v must stay within v's bucket bounds.
	for _, v := range []int64{1, 2, 7, 63, 64, 1 << 20} {
		counts := bucketize(v, v, v)
		lo := math.Ldexp(1, len64(v)-1)
		hi := math.Ldexp(1, len64(v)) - 1
		for _, q := range []float64{0.50, 0.90, 0.99} {
			got := Pow2Quantile(counts, q)
			if got < lo || got > hi {
				t.Errorf("v=%d q=%v: quantile %v outside bucket [%v, %v]", v, q, got, lo, hi)
			}
		}
	}
}

func len64(v int64) int {
	n := 0
	for vv := uint64(v); vv > 0; vv >>= 1 {
		n++
	}
	return n
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	// 90 observations of 1 and 10 of 1000: p50/p90 sit in bucket [1,1],
	// p99 in 1000's bucket [512,1023].
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 100 || s.Sum != 90+10*1000 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if s.P50 != 1 {
		t.Errorf("P50 = %v, want 1", s.P50)
	}
	if s.P90 != 1 {
		t.Errorf("P90 = %v, want 1", s.P90)
	}
	if s.P99 < 512 || s.P99 > 1023 {
		t.Errorf("P99 = %v, want within [512, 1023]", s.P99)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Errorf("quantiles not ordered: %v %v %v", s.P50, s.P90, s.P99)
	}
}
