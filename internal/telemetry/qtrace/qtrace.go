// Package qtrace is per-query causal tracing for the slicing engine: a
// span tree per query, threaded through the planner decision, each rung
// of the fallback ladder, backend execution, lazy graph builds, and
// snapshot load, so one slow or demoted query renders as a single tree
// with per-hop durations, byte/probe annotations, and the error class
// behind every demotion.
//
// The discipline is tail-based sampling (the low-overhead-monitoring
// lineage in PAPERS.md): every query gets a cheap monotonic trace ID
// and its spans are captured in memory, but a finished trace is
// *retained* — admitted to the fixed-capacity ring, streamed to the
// JSONL sink, linked as a histogram exemplar — only when the outcome
// was interesting: slow (latency >= Policy.Slow), errored, cache-missed,
// plan != backend (a fallback demotion), or picked by a deterministic
// 1-in-N sample of trace IDs. Everything else is dropped at Finish, so
// steady-state cost is one small allocation and a few clock reads per
// query.
//
// Like internal/telemetry and querylog, every method is safe on a nil
// receiver (nil *Tracer, nil *Trace, zero SpanRef): the query path is
// instrumented unconditionally and pays only branch-predictable nil
// checks when tracing is off — the root TestOverhead guard covers that
// path. The ring follows querylog.Log's race discipline: one mutex, a
// wrapping cursor, a streaming sink whose first write error latches.
package qtrace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one query's trace. IDs are minted monotonically
// per Tracer (1-based); 0 means "no tracer attached".
type TraceID uint64

// String renders the ID as 16 hex digits ("" for the zero ID).
func (id TraceID) String() string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(id))
}

// MarshalJSON renders the ID as a quoted hex string.
func (id TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON parses the quoted hex form ("" decodes to 0).
func (id *TraceID) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return err
	}
	v, err := ParseTraceID(s)
	if err != nil {
		return err
	}
	*id = v
	return nil
}

// ParseTraceID parses the hex form produced by String ("" parses to 0).
func ParseTraceID(s string) (TraceID, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("qtrace: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// SpanID identifies a span within its trace (1-based; the root span is
// always 1; 0 is "no parent" / "no span").
type SpanID int32

// Attr is one span annotation: either an integer (probe counts, bytes,
// result sizes) or a string (backend names, reasons, error classes).
type Attr struct {
	Key string `json:"key"`
	Int int64  `json:"int,omitempty"`
	Str string `json:"str,omitempty"`
}

// span is the internal span record; exported views are built on demand.
type span struct {
	id     SpanID
	parent SpanID
	name   string
	start  time.Duration // offset from the trace's start
	dur    time.Duration
	ended  bool
	attrs  []Attr
	err    string
}

// Retention reasons, in decision priority order.
const (
	ReasonError       = "error"
	ReasonSlow        = "slow"
	ReasonPlanDiverge = "plan_divergence"
	ReasonCacheMiss   = "cache_miss"
	ReasonSample      = "sample"
)

// Trace is one query's span tree plus its outcome. Span capture is safe
// for concurrent use (fallback rungs never overlap, but batched
// backends may annotate from worker goroutines); outcome setters and
// accessors are safe on a nil *Trace.
type Trace struct {
	tracer *Tracer
	id     TraceID
	kind   string
	addr   int64
	batch  int
	start  time.Time

	mu        sync.Mutex
	spans     []span
	queryID   uint64
	backend   string
	plan      string
	errClass  string
	cacheHit  bool
	cacheMiss bool
	dur       time.Duration
	finished  bool
	retained  bool
	reason    string
}

// ID returns the trace ID (0 on nil).
func (t *Trace) ID() TraceID {
	if t == nil {
		return 0
	}
	return t.id
}

// Kind returns the query kind the trace was started with.
func (t *Trace) Kind() string {
	if t == nil {
		return ""
	}
	return t.kind
}

// Backend returns the backend that answered ("" until SetBackend).
func (t *Trace) Backend() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.backend
}

// Duration returns the trace's wall time (0 until Finish).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dur
}

// Retained reports whether Finish admitted the trace to the ring.
func (t *Trace) Retained() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.retained
}

// Reason returns why the trace was retained ("" when dropped).
func (t *Trace) Reason() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reason
}

// SetQueryID links the trace to its flight-recorder record.
func (t *Trace) SetQueryID(id uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.queryID = id
	t.mu.Unlock()
}

// SetBackend records the backend that answered the query.
func (t *Trace) SetBackend(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.backend = name
	t.mu.Unlock()
}

// SetPlan records the backend the planner originally chose. When Finish
// sees plan != backend the trace is a demotion and retained under
// Policy.OnPlanDiverge.
func (t *Trace) SetPlan(backend string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.plan = backend
	t.mu.Unlock()
}

// SetError records the query's terminal error class (querylog.Classify).
func (t *Trace) SetError(class string) {
	if t == nil || class == "" {
		return
	}
	t.mu.Lock()
	t.errClass = class
	t.mu.Unlock()
}

// SetCacheHit marks the query as answered from the engine LRU.
func (t *Trace) SetCacheHit() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cacheHit = true
	t.mu.Unlock()
}

// SetCacheMiss marks the query as an engine LRU (or snapshot cache)
// miss — a retention trigger under Policy.OnCacheMiss.
func (t *Trace) SetCacheMiss() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cacheMiss = true
	t.mu.Unlock()
}

// Root returns a handle on the root span (zero SpanRef on nil).
func (t *Trace) Root() SpanRef {
	if t == nil {
		return SpanRef{}
	}
	return SpanRef{t: t, id: 1}
}

// newSpan appends a span under parent and returns its handle.
func (t *Trace) newSpan(parent SpanID, name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	t.mu.Lock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, span{
		id: id, parent: parent, name: name, start: time.Since(t.start),
	})
	t.mu.Unlock()
	return SpanRef{t: t, id: id}
}

// SpanRef is a cheap handle on one span of a trace. The zero SpanRef
// (and any SpanRef on a nil trace) is inert: every method no-ops, so
// call sites thread spans unconditionally.
type SpanRef struct {
	t  *Trace
	id SpanID
}

// Trace returns the owning trace (nil for an inert handle).
func (s SpanRef) Trace() *Trace { return s.t }

// Child starts a new span under this one.
func (s SpanRef) Child(name string) SpanRef {
	if s.t == nil {
		return SpanRef{}
	}
	return s.t.newSpan(s.id, name)
}

// Int annotates the span with an integer attribute.
func (s SpanRef) Int(key string, v int64) SpanRef {
	if s.t == nil {
		return s
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.id-1]
	sp.attrs = append(sp.attrs, Attr{Key: key, Int: v})
	s.t.mu.Unlock()
	return s
}

// Str annotates the span with a string attribute.
func (s SpanRef) Str(key, v string) SpanRef {
	if s.t == nil {
		return s
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.id-1]
	sp.attrs = append(sp.attrs, Attr{Key: key, Str: v})
	s.t.mu.Unlock()
	return s
}

// End closes the span, fixing its duration. Ending twice keeps the
// first duration.
func (s SpanRef) End() { s.end("") }

// EndErr closes the span and tags it with the error class that made
// this hop fail (the demotion cause on fallback-ladder rungs).
func (s SpanRef) EndErr(class string) { s.end(class) }

func (s SpanRef) end(class string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.id-1]
	if !sp.ended {
		sp.ended = true
		sp.dur = time.Since(s.t.start) - sp.start
		sp.err = class
	}
	s.t.mu.Unlock()
}

// Policy is the tail-based retention policy: which finished traces are
// kept. The zero Policy retains nothing (every trace still gets an ID).
type Policy struct {
	// Slow retains traces with wall time >= Slow (0 disables).
	Slow time.Duration `json:"slow_ns"`
	// SampleN retains a deterministic 1-in-N sample of trace IDs
	// (0 disables). The choice depends only on (Seed, TraceID), so the
	// same ID stream always samples the same traces.
	SampleN int `json:"sample_n"`
	// Seed perturbs the sampler so co-deployed tracers don't sample in
	// lockstep.
	Seed uint64 `json:"seed"`
	// OnError retains traces whose query failed.
	OnError bool `json:"on_error"`
	// OnCacheMiss retains traces of cache-missed queries.
	OnCacheMiss bool `json:"on_cache_miss"`
	// OnPlanDiverge retains traces where the answering backend differs
	// from the planned one — every fallback demotion.
	OnPlanDiverge bool `json:"on_plan_diverge"`
}

// DefaultPolicy retains errors, demotions, cache misses, queries slower
// than 25ms, and a 1-in-128 sample.
func DefaultPolicy() Policy {
	return Policy{
		Slow:          25 * time.Millisecond,
		SampleN:       128,
		OnError:       true,
		OnCacheMiss:   true,
		OnPlanDiverge: true,
	}
}

// DefaultCapacity is the ring size used when New is given n <= 0.
const DefaultCapacity = 256

// Stats counts capture activity since the tracer was created. Retention
// reasons are attributed by priority (error > slow > plan_divergence >
// cache_miss > sample): a trace that is both errored and slow counts
// once, under error.
type Stats struct {
	Started       uint64 `json:"started"`
	Retained      uint64 `json:"retained"`
	ByError       uint64 `json:"by_error,omitempty"`
	BySlow        uint64 `json:"by_slow,omitempty"`
	ByPlanDiverge uint64 `json:"by_plan_divergence,omitempty"`
	ByCacheMiss   uint64 `json:"by_cache_miss,omitempty"`
	BySample      uint64 `json:"by_sample,omitempty"`
}

// Tracer mints trace IDs, applies the retention policy, and retains
// interesting traces in a fixed-capacity ring. All methods are safe for
// concurrent use and on a nil receiver.
type Tracer struct {
	pol    Policy
	nextID atomic.Uint64

	mu      sync.Mutex
	ring    []*Trace
	next    int
	sink    io.Writer
	sinkErr error

	started       atomic.Uint64
	retainedN     atomic.Uint64
	byError       atomic.Uint64
	bySlow        atomic.Uint64
	byPlanDiverge atomic.Uint64
	byCacheMiss   atomic.Uint64
	bySample      atomic.Uint64
}

// New returns a Tracer retaining up to capacity traces under pol.
func New(capacity int, pol Policy) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{pol: pol, ring: make([]*Trace, 0, capacity)}
}

// Policy returns the tracer's retention policy.
func (tr *Tracer) Policy() Policy {
	if tr == nil {
		return Policy{}
	}
	return tr.pol
}

// Capacity returns the ring capacity (0 on nil).
func (tr *Tracer) Capacity() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return cap(tr.ring)
}

// SetSink attaches a streaming writer that receives every retained
// trace as one JSONL line at Finish. Writes happen under the tracer's
// lock so lines never interleave; the first error latches (SinkErr).
func (tr *Tracer) SetSink(w io.Writer) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.sink = w
	tr.sinkErr = nil
	tr.mu.Unlock()
}

// SinkErr returns the latched streaming-sink write error, if any.
func (tr *Tracer) SinkErr() error {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.sinkErr
}

// StartQuery mints a trace for one query and opens its root span
// ("query/<kind>"). A nil tracer returns a nil trace, which every
// downstream call accepts.
func (tr *Tracer) StartQuery(kind string, addr int64, batch int) *Trace {
	if tr == nil {
		return nil
	}
	tr.started.Add(1)
	t := &Trace{
		tracer: tr,
		id:     TraceID(tr.nextID.Add(1)),
		kind:   kind,
		addr:   addr,
		batch:  batch,
		start:  time.Now(),
	}
	t.newSpan(0, "query/"+kind)
	return t
}

// Finish closes the trace (ending any still-open spans at the trace's
// end), decides retention, and — for retained traces — admits it to the
// ring and the streaming sink. Finishing twice is a no-op.
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.dur = time.Since(t.start)
	for i := range t.spans {
		if !t.spans[i].ended {
			t.spans[i].ended = true
			t.spans[i].dur = t.dur - t.spans[i].start
		}
	}
	t.reason = tr.retainReason(t)
	t.retained = t.reason != ""
	retained := t.retained
	t.mu.Unlock()
	if !retained {
		return
	}
	tr.retainedN.Add(1)
	switch t.reason {
	case ReasonError:
		tr.byError.Add(1)
	case ReasonSlow:
		tr.bySlow.Add(1)
	case ReasonPlanDiverge:
		tr.byPlanDiverge.Add(1)
	case ReasonCacheMiss:
		tr.byCacheMiss.Add(1)
	case ReasonSample:
		tr.bySample.Add(1)
	}
	tr.mu.Lock()
	if len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, t)
	} else {
		tr.ring[tr.next] = t
	}
	tr.next++
	if tr.next == cap(tr.ring) {
		tr.next = 0
	}
	if tr.sink != nil && tr.sinkErr == nil {
		if data, err := json.Marshal(t.Export()); err != nil {
			tr.sinkErr = err
		} else if _, err := tr.sink.Write(append(data, '\n')); err != nil {
			tr.sinkErr = err
		}
	}
	tr.mu.Unlock()
}

// retainReason applies the policy; called with t.mu held.
func (tr *Tracer) retainReason(t *Trace) string {
	pol := tr.pol
	switch {
	case pol.OnError && t.errClass != "":
		return ReasonError
	case pol.Slow > 0 && t.dur >= pol.Slow:
		return ReasonSlow
	case pol.OnPlanDiverge && t.plan != "" && t.backend != "" && t.plan != t.backend:
		return ReasonPlanDiverge
	case pol.OnCacheMiss && t.cacheMiss:
		return ReasonCacheMiss
	case Sampled(pol.Seed, t.id, pol.SampleN):
		return ReasonSample
	}
	return ""
}

// Sampled reports whether the deterministic 1-in-n sampler picks id
// under seed. The decision is a pure function of its arguments.
func Sampled(seed uint64, id TraceID, n int) bool {
	if n <= 0 {
		return false
	}
	return splitmix64(seed^uint64(id))%uint64(n) == 0
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-distributed
// bijection, so sampling 1-in-N of hashed IDs is unbiased even though
// the raw IDs are sequential.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Stats returns capture counters since the tracer was created.
func (tr *Tracer) Stats() Stats {
	if tr == nil {
		return Stats{}
	}
	return Stats{
		Started:       tr.started.Load(),
		Retained:      tr.retainedN.Load(),
		ByError:       tr.byError.Load(),
		BySlow:        tr.bySlow.Load(),
		ByPlanDiverge: tr.byPlanDiverge.Load(),
		ByCacheMiss:   tr.byCacheMiss.Load(),
		BySample:      tr.bySample.Load(),
	}
}

// Recent returns up to n retained traces, most recent first (n <= 0
// means all).
func (tr *Tracer) Recent(n int) []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	have := len(tr.ring)
	if n <= 0 || n > have {
		n = have
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := tr.next - 1 - i
		if idx < 0 {
			idx += have
		}
		out = append(out, tr.ring[idx])
	}
	return out
}

// Get returns the retained trace with the given ID (nil when evicted or
// never retained). The ring is small, so a linear scan suffices.
func (tr *Tracer) Get(id TraceID) *Trace {
	if tr == nil || id == 0 {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, t := range tr.ring {
		if t.id == id {
			return t
		}
	}
	return nil
}

// ctxKey carries a *Trace through a context.Context.
type ctxKey struct{}

// NewContext returns ctx carrying the trace — the propagation seam for
// servers (the ROADMAP's slicing daemon) whose request handlers cross
// API boundaries the stamped-slicer threading cannot reach.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext extracts the trace carried by ctx (nil when absent).
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
