package qtrace

// Trace export: JSON/JSONL snapshots, Chrome trace-event rendering via
// the shared telemetry.Timeline writer, and the /debug/qtrace HTTP
// endpoints.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path"
	"time"

	"dynslice/internal/telemetry"
)

// SpanExport is one span's exported view. Times are microseconds
// relative to the trace's start.
type SpanExport struct {
	ID      SpanID         `json:"id"`
	Parent  SpanID         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS float64        `json:"start_us"`
	DurUS   float64        `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Err     string         `json:"err,omitempty"`
}

// Export is a trace's exported view — the JSONL line shape and the
// /debug/qtrace/<id> response.
type Export struct {
	TraceID TraceID      `json:"trace_id"`
	QueryID uint64       `json:"query_id,omitempty"`
	Kind    string       `json:"kind"`
	Addr    int64        `json:"addr,omitempty"`
	Batch   int          `json:"batch,omitempty"`
	Start   time.Time    `json:"start"`
	DurUS   float64      `json:"dur_us"`
	Backend string       `json:"backend,omitempty"`
	Plan    string       `json:"plan,omitempty"`
	Err     string       `json:"err,omitempty"`
	Hit     bool         `json:"cache_hit,omitempty"`
	Reason  string       `json:"retain_reason,omitempty"`
	Spans   []SpanExport `json:"spans,omitempty"`
}

// Export snapshots the trace (nil-safe: returns a zero Export).
func (t *Trace) Export() Export {
	if t == nil {
		return Export{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Export{
		TraceID: t.id,
		QueryID: t.queryID,
		Kind:    t.kind,
		Addr:    t.addr,
		Batch:   t.batch,
		Start:   t.start,
		DurUS:   us(t.dur),
		Backend: t.backend,
		Plan:    t.plan,
		Err:     t.errClass,
		Hit:     t.cacheHit,
		Reason:  t.reason,
		Spans:   make([]SpanExport, 0, len(t.spans)),
	}
	for i := range t.spans {
		sp := &t.spans[i]
		se := SpanExport{
			ID: sp.id, Parent: sp.parent, Name: sp.name,
			StartUS: us(sp.start), DurUS: us(sp.dur), Err: sp.err,
		}
		if len(sp.attrs) > 0 {
			se.Attrs = make(map[string]any, len(sp.attrs))
			for _, a := range sp.attrs {
				if a.Str != "" {
					se.Attrs[a.Key] = a.Str
				} else {
					se.Attrs[a.Key] = a.Int
				}
			}
		}
		e.Spans = append(e.Spans, se)
	}
	return e
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteJSONL dumps the retained traces, oldest first, one JSON object
// per line.
func (tr *Tracer) WriteJSONL(w io.Writer) error {
	if tr == nil {
		return nil
	}
	ts := tr.Recent(0)
	enc := json.NewEncoder(w)
	for i := len(ts) - 1; i >= 0; i-- {
		if err := enc.Encode(ts[i].Export()); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile snapshots the retained traces to a JSONL file atomically
// (temp file + rename, like telemetry snapshots).
func (tr *Tracer) WriteFile(p string) error {
	if tr == nil {
		return nil
	}
	return telemetry.WriteFileAtomic(p, tr.WriteJSONL)
}

// WriteTimeline renders one trace's span tree onto a Chrome trace-event
// timeline: one complete event per span, all on the row named by the
// trace ID (tid), so each query renders as its own stacked tree in
// chrome://tracing or Perfetto. Safe on nil trace or timeline.
func (t *Trace) WriteTimeline(tl *telemetry.Timeline) {
	if t == nil || tl == nil {
		return
	}
	e := t.Export()
	tid := int(uint64(e.TraceID) & 0x7fffffff)
	for _, sp := range e.Spans {
		args := map[string]any{"trace_id": e.TraceID.String()}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		if sp.Err != "" {
			args["err"] = sp.Err
		}
		start := e.Start.Add(time.Duration(sp.StartUS * 1e3))
		tl.EventArgs(sp.Name, "qtrace", tid, start, time.Duration(sp.DurUS*1e3), args)
	}
}

// WriteTimeline renders every retained trace, oldest first.
func (tr *Tracer) WriteTimeline(tl *telemetry.Timeline) {
	if tr == nil || tl == nil {
		return
	}
	ts := tr.Recent(0)
	for i := len(ts) - 1; i >= 0; i-- {
		ts[i].WriteTimeline(tl)
	}
}

// listJSON is the /debug/qtrace response shape.
type listJSON struct {
	Capacity int      `json:"capacity"`
	Policy   Policy   `json:"policy"`
	Stats    Stats    `json:"stats"`
	Traces   []Export `json:"traces"` // most recent first, spans elided
}

// ServeHTTP serves the retained-trace ring. Mounted at /debug/qtrace it
// lists trace summaries (spans elided; ?n=K limits the count);
// /debug/qtrace/<id> returns one trace's full span tree.
func (tr *Tracer) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if tr == nil {
		http.Error(w, "query tracing not enabled", http.StatusNotFound)
		return
	}
	if base := path.Base(req.URL.Path); base != "qtrace" && base != "/" && base != "." {
		id, err := ParseTraceID(base)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		t := tr.Get(id)
		if t == nil {
			http.Error(w, "trace not retained (dropped, evicted, or never started)", http.StatusNotFound)
			return
		}
		writeJSON(w, t.Export())
		return
	}
	n := 0
	if s := req.URL.Query().Get("n"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
	}
	resp := listJSON{
		Capacity: tr.Capacity(),
		Policy:   tr.Policy(),
		Stats:    tr.Stats(),
		Traces:   []Export{},
	}
	for _, t := range tr.Recent(n) {
		e := t.Export()
		e.Spans = nil
		resp.Traces = append(resp.Traces, e)
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client disconnects are not actionable
}
