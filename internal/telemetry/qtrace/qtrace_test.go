package qtrace

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynslice/internal/telemetry"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	qt := tr.StartQuery("slice", 1, 0)
	if qt != nil {
		t.Fatalf("nil tracer minted a trace")
	}
	if qt.ID() != 0 || qt.Backend() != "" || qt.Retained() || qt.Reason() != "" {
		t.Fatalf("nil trace accessors not zero")
	}
	qt.SetBackend("FP")
	qt.SetPlan("OPT")
	qt.SetError("internal")
	qt.SetCacheHit()
	qt.SetCacheMiss()
	qt.SetQueryID(7)
	sp := qt.Root().Child("plan").Int("x", 1).Str("y", "z")
	sp.End()
	sp.EndErr("internal")
	tr.Finish(qt)
	if got := tr.Recent(0); got != nil {
		t.Fatalf("nil tracer Recent = %v", got)
	}
	if tr.Get(1) != nil || tr.Capacity() != 0 || tr.SinkErr() != nil {
		t.Fatalf("nil tracer accessors not zero")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
	tr.WriteTimeline(telemetry.NewTimeline())
	var nt *Trace
	nt.WriteTimeline(telemetry.NewTimeline())
	if e := nt.Export(); e.TraceID != 0 {
		t.Fatalf("nil Export = %+v", e)
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	for _, id := range []TraceID{0, 1, 0xdeadbeef, 1 << 63} {
		got, err := ParseTraceID(id.String())
		if err != nil {
			t.Fatalf("ParseTraceID(%q): %v", id.String(), err)
		}
		if got != id {
			t.Fatalf("round trip %v -> %q -> %v", id, id.String(), got)
		}
		data, err := json.Marshal(id)
		if err != nil {
			t.Fatal(err)
		}
		var back TraceID
		if err := json.Unmarshal(data, &back); err != nil || back != id {
			t.Fatalf("json round trip %v -> %s -> %v (%v)", id, data, back, err)
		}
	}
	if _, err := ParseTraceID("xyz"); err == nil {
		t.Fatalf("ParseTraceID accepted garbage")
	}
}

func TestSpanTreeCapture(t *testing.T) {
	tr := New(4, Policy{OnError: true})
	qt := tr.StartQuery("slice", 42, 0)
	if qt.ID() == 0 {
		t.Fatalf("no trace ID minted")
	}
	plan := qt.Root().Child("plan").Str("backend", "reexec")
	plan.End()
	att := qt.Root().Child("attempt/reexec")
	att.Child("acquire").End()
	att.EndErr("internal")
	att2 := qt.Root().Child("attempt/LP")
	att2.Child("exec/LP").Int("seg_scans", 3).End()
	att2.End()
	qt.SetPlan("reexec")
	qt.SetBackend("LP")
	qt.SetError("internal")
	tr.Finish(qt)

	if !qt.Retained() || qt.Reason() != ReasonError {
		t.Fatalf("retained=%v reason=%q, want error retention", qt.Retained(), qt.Reason())
	}
	e := qt.Export()
	if len(e.Spans) != 6 {
		t.Fatalf("got %d spans, want 6: %+v", len(e.Spans), e.Spans)
	}
	if e.Spans[0].Name != "query/slice" || e.Spans[0].Parent != 0 {
		t.Fatalf("bad root span: %+v", e.Spans[0])
	}
	byName := map[string]SpanExport{}
	for _, sp := range e.Spans {
		byName[sp.Name] = sp
	}
	if byName["attempt/reexec"].Err != "internal" {
		t.Fatalf("attempt/reexec missing error class: %+v", byName["attempt/reexec"])
	}
	if byName["acquire"].Parent != byName["attempt/reexec"].ID {
		t.Fatalf("acquire not under attempt/reexec")
	}
	if got := byName["exec/LP"].Attrs["seg_scans"]; got != float64(3) && got != int64(3) {
		t.Fatalf("exec/LP seg_scans = %v", got)
	}
	if e.Plan != "reexec" || e.Backend != "LP" || e.Err != "internal" {
		t.Fatalf("outcome: %+v", e)
	}
	// Finishing twice keeps one ring entry.
	tr.Finish(qt)
	if got := len(tr.Recent(0)); got != 1 {
		t.Fatalf("double Finish retained %d traces", got)
	}
}

func TestRetentionPolicy(t *testing.T) {
	finish := func(pol Policy, mut func(*Trace)) *Trace {
		tr := New(4, pol)
		qt := tr.StartQuery("slice", 1, 0)
		mut(qt)
		tr.Finish(qt)
		return qt
	}
	qt := finish(Policy{}, func(t *Trace) { t.SetError("internal"); t.SetCacheMiss() })
	if qt.Retained() {
		t.Fatalf("zero policy retained a trace (reason %q)", qt.Reason())
	}
	qt = finish(Policy{OnError: true}, func(t *Trace) { t.SetError("bad_criterion") })
	if qt.Reason() != ReasonError {
		t.Fatalf("reason = %q, want error", qt.Reason())
	}
	qt = finish(Policy{Slow: time.Nanosecond}, func(t *Trace) {})
	if qt.Reason() != ReasonSlow {
		t.Fatalf("reason = %q, want slow", qt.Reason())
	}
	qt = finish(Policy{OnPlanDiverge: true}, func(t *Trace) { t.SetPlan("reexec"); t.SetBackend("LP") })
	if qt.Reason() != ReasonPlanDiverge {
		t.Fatalf("reason = %q, want plan_divergence", qt.Reason())
	}
	qt = finish(Policy{OnPlanDiverge: true}, func(t *Trace) { t.SetPlan("LP"); t.SetBackend("LP") })
	if qt.Retained() {
		t.Fatalf("plan==backend retained as divergence")
	}
	qt = finish(Policy{OnCacheMiss: true}, func(t *Trace) { t.SetCacheMiss() })
	if qt.Reason() != ReasonCacheMiss {
		t.Fatalf("reason = %q, want cache_miss", qt.Reason())
	}
	// Priority: an errored slow trace counts once, under error.
	qt = finish(Policy{OnError: true, Slow: time.Nanosecond}, func(t *Trace) { t.SetError("internal") })
	if qt.Reason() != ReasonError {
		t.Fatalf("reason = %q, want error to win priority", qt.Reason())
	}
}

// TestSamplerDeterminism pins the satellite requirement: for a fixed
// seed, the 1-in-N sampler picks the same trace IDs on every run of the
// same ID stream — replaying a workload replays its sampled traces.
func TestSamplerDeterminism(t *testing.T) {
	const n = 16
	const stream = 4096
	pick := func(seed uint64) []TraceID {
		tr := New(stream, Policy{SampleN: n, Seed: seed})
		var got []TraceID
		for i := 0; i < stream; i++ {
			qt := tr.StartQuery("slice", int64(i), 0)
			tr.Finish(qt)
			if qt.Retained() {
				if qt.Reason() != ReasonSample {
					t.Fatalf("reason = %q, want sample", qt.Reason())
				}
				got = append(got, qt.ID())
			}
		}
		return got
	}
	a, b := pick(7), pick(7)
	if len(a) == 0 {
		t.Fatalf("sampler picked nothing over %d traces at 1-in-%d", stream, n)
	}
	if len(a) != len(b) {
		t.Fatalf("two runs sampled %d vs %d traces", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Rate sanity: 1-in-16 over 4096 hashed IDs should land near 256.
	if len(a) < stream/n/2 || len(a) > stream/n*2 {
		t.Fatalf("sample rate off: %d of %d at 1-in-%d", len(a), stream, n)
	}
	// A different seed samples a different set.
	c := pick(8)
	same := 0
	for _, id := range a {
		for _, od := range c {
			if id == od {
				same++
			}
		}
	}
	if same == len(a) && len(a) == len(c) {
		t.Fatalf("seed change did not move the sample")
	}
}

func TestRingEvictionAndGet(t *testing.T) {
	tr := New(4, Policy{SampleN: 1})
	var ids []TraceID
	for i := 0; i < 10; i++ {
		qt := tr.StartQuery("slice", int64(i), 0)
		tr.Finish(qt)
		ids = append(ids, qt.ID())
	}
	st := tr.Stats()
	if st.Started != 10 || st.Retained != 10 || st.BySample != 10 {
		t.Fatalf("stats = %+v", st)
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	if recent[0].ID() != ids[9] || recent[3].ID() != ids[6] {
		t.Fatalf("recent order wrong: %v .. %v", recent[0].ID(), recent[3].ID())
	}
	if tr.Get(ids[9]) == nil {
		t.Fatalf("newest trace not found")
	}
	if tr.Get(ids[0]) != nil {
		t.Fatalf("evicted trace still found")
	}
	if got := len(tr.Recent(2)); got != 2 {
		t.Fatalf("Recent(2) returned %d", got)
	}
}

func TestJSONLAndSink(t *testing.T) {
	var sink bytes.Buffer
	tr := New(8, Policy{SampleN: 1})
	tr.SetSink(&sink)
	for i := 0; i < 3; i++ {
		qt := tr.StartQuery("batch", int64(i), 5)
		qt.Root().Child("exec/FP").End()
		qt.SetBackend("FP")
		tr.Finish(qt)
	}
	if err := tr.SinkErr(); err != nil {
		t.Fatalf("sink err: %v", err)
	}
	if got := strings.Count(sink.String(), "\n"); got != 3 {
		t.Fatalf("sink got %d lines, want 3", got)
	}
	var dump bytes.Buffer
	if err := tr.WriteJSONL(&dump); err != nil {
		t.Fatal(err)
	}
	var first Export
	if err := json.Unmarshal([]byte(strings.SplitN(dump.String(), "\n", 2)[0]), &first); err != nil {
		t.Fatalf("bad JSONL line: %v", err)
	}
	if first.Kind != "batch" || first.Batch != 5 || first.Backend != "FP" || len(first.Spans) != 2 {
		t.Fatalf("first export: %+v", first)
	}
}

func TestTimelineExport(t *testing.T) {
	tr := New(8, Policy{SampleN: 1})
	qt := tr.StartQuery("slice", 1, 0)
	qt.Root().Child("exec/OPT").Int("stmts", 9).End()
	tr.Finish(qt)
	tl := telemetry.NewTimeline()
	tr.WriteTimeline(tl)
	evs := tl.Events()
	if len(evs) != 2 {
		t.Fatalf("timeline got %d events, want 2", len(evs))
	}
	found := false
	for _, ev := range evs {
		if ev.Cat != "qtrace" || ev.Args["trace_id"] != qt.ID().String() {
			t.Fatalf("event missing qtrace args: %+v", ev)
		}
		if ev.Name == "exec/OPT" {
			found = true
		}
	}
	if !found {
		t.Fatalf("exec span missing from timeline: %+v", evs)
	}
}

func TestServeHTTP(t *testing.T) {
	tr := New(8, Policy{SampleN: 1})
	qt := tr.StartQuery("slice", 42, 0)
	qt.Root().Child("plan").End()
	qt.SetBackend("OPT")
	tr.Finish(qt)

	rr := httptest.NewRecorder()
	tr.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/qtrace", nil))
	var list listJSON
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatalf("list response: %v\n%s", err, rr.Body.String())
	}
	if len(list.Traces) != 1 || list.Traces[0].TraceID != qt.ID() || list.Traces[0].Spans != nil {
		t.Fatalf("list = %+v", list)
	}
	if list.Stats.Retained != 1 {
		t.Fatalf("list stats = %+v", list.Stats)
	}

	rr = httptest.NewRecorder()
	tr.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/qtrace/"+qt.ID().String(), nil))
	var full Export
	if err := json.Unmarshal(rr.Body.Bytes(), &full); err != nil {
		t.Fatalf("full response: %v\n%s", err, rr.Body.String())
	}
	if full.TraceID != qt.ID() || len(full.Spans) != 2 {
		t.Fatalf("full = %+v", full)
	}

	rr = httptest.NewRecorder()
	tr.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/qtrace/ffffffffffffffff", nil))
	if rr.Code != 404 {
		t.Fatalf("missing trace -> %d, want 404", rr.Code)
	}
	rr = httptest.NewRecorder()
	tr.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/qtrace/zz", nil))
	if rr.Code != 400 {
		t.Fatalf("bad id -> %d, want 400", rr.Code)
	}
	rr = httptest.NewRecorder()
	var none *Tracer
	none.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/qtrace", nil))
	if rr.Code != 404 {
		t.Fatalf("nil tracer -> %d, want 404", rr.Code)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New(4, Policy{})
	qt := tr.StartQuery("slice", 1, 0)
	ctx := NewContext(context.Background(), qt)
	if got := FromContext(ctx); got != qt {
		t.Fatalf("FromContext = %v, want %v", got, qt)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context yielded %v", got)
	}
	if ctx2 := NewContext(context.Background(), nil); FromContext(ctx2) != nil {
		t.Fatalf("nil trace stored in context")
	}
}
