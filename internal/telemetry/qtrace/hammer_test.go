package qtrace

import (
	"bytes"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
)

// lockedWriter makes a bytes.Buffer safe to share between the tracer's
// sink (written under the tracer lock) and the hammer's readers.
type lockedWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// TestHammer drives concurrent capture, snapshotting, and eviction
// through the ring under -race, mirroring the querylog ring hammer:
// 8 writers start/annotate/finish traces while 4 readers list, fetch,
// export, and serve them.
func TestHammer(t *testing.T) {
	tr := New(32, Policy{SampleN: 2, OnError: true, OnPlanDiverge: true})
	tr.SetSink(&lockedWriter{})

	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				qt := tr.StartQuery("slice", int64(i), 0)
				sp := qt.Root().Child("plan").Str("backend", "OPT")
				sp.End()
				att := qt.Root().Child("attempt/OPT")
				att.Child("exec/OPT").Int("stmts", int64(i)).End()
				switch i % 3 {
				case 0:
					att.EndErr("internal")
					qt.SetError("internal")
				case 1:
					qt.SetPlan("reexec")
					qt.SetBackend("LP")
					att.End()
				default:
					qt.SetBackend("OPT")
					att.End()
				}
				tr.Finish(qt)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, qt := range tr.Recent(8) {
					_ = qt.Export()
					_ = tr.Get(qt.ID())
				}
				_ = tr.WriteJSONL(io.Discard)
				rr := httptest.NewRecorder()
				tr.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/qtrace?n=4", nil))
				_ = tr.Stats()
			}
		}()
	}
	rg.Wait()

	st := tr.Stats()
	if st.Started != writers*perWriter {
		t.Fatalf("started = %d, want %d", st.Started, writers*perWriter)
	}
	// Every i%3==0 trace errors and every i%3==1 trace diverges, so at
	// least 2/3 of all traces retain.
	if st.Retained < writers*perWriter*2/3 {
		t.Fatalf("retained = %d of %d", st.Retained, st.Started)
	}
	if got := len(tr.Recent(0)); got != 32 {
		t.Fatalf("ring holds %d, want capacity 32", got)
	}
	if err := tr.SinkErr(); err != nil {
		t.Fatalf("sink err: %v", err)
	}
}
