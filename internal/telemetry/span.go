package telemetry

import (
	"runtime"
	"time"
)

// Spans form the pipeline's phase hierarchy (compile → lower → dataflow,
// record → interp → trace-write, graph-build → opt, slice → traversal).
// Each Start/End pair accumulates into the registry's aggregate for the
// span's slash-joined path: occurrence count, total wall time, and — when
// allocation tracking is on — the bytes allocated between Start and End.
//
// Allocation deltas come from runtime.ReadMemStats, which is too expensive
// for fine-grained spans; phases are coarse (a handful per run), so two
// reads per span are acceptable. ObserveSpan records duration-only
// occurrences for hot, repeated phases such as individual slice queries.

// spanStats is the registry-side aggregate of one span path.
type spanStats struct {
	count      int64
	nanos      int64
	allocBytes int64
}

// SpanSnapshot is the exported aggregate of one span path.
type SpanSnapshot struct {
	Count      int64   `json:"count"`
	TotalMs    float64 `json:"total_ms"`
	MeanMs     float64 `json:"mean_ms"`
	AllocBytes int64   `json:"alloc_bytes,omitempty"`
}

func (s *spanStats) snapshot() SpanSnapshot {
	snap := SpanSnapshot{
		Count:      s.count,
		TotalMs:    float64(s.nanos) / 1e6,
		AllocBytes: s.allocBytes,
	}
	if s.count > 0 {
		snap.MeanMs = snap.TotalMs / float64(s.count)
	}
	return snap
}

// Span is one in-flight phase. A nil span (from a nil or disabled
// registry) ignores every call.
type Span struct {
	r          *Registry
	path       string
	start      time.Time
	allocStart uint64
	trackAlloc bool
}

// StartSpan opens a root span. Returns nil (harmless) when the registry is
// nil or disabled.
func (r *Registry) StartSpan(name string) *Span { return r.startSpan(name, true) }

func (r *Registry) startSpan(path string, trackAlloc bool) *Span {
	if !r.Enabled() {
		return nil
	}
	sp := &Span{r: r, path: path, start: time.Now(), trackAlloc: trackAlloc}
	if trackAlloc {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		sp.allocStart = ms.TotalAlloc
	}
	return sp
}

// Child opens a sub-span beneath s (path "parent/child"). Safe on nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.r.startSpan(s.path+"/"+name, s.trackAlloc)
}

// End closes the span, folding its wall time and allocation delta into the
// registry aggregate for its path. Safe on nil; End twice double-counts,
// so don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	var alloc int64
	if s.trackAlloc {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		alloc = int64(ms.TotalAlloc - s.allocStart)
	}
	s.r.observe(s.path, 1, d.Nanoseconds(), alloc)
	s.r.Timeline().Event(s.path, "span", 0, s.start, d)
}

// ObserveSpan folds one duration-only occurrence into the aggregate for
// path — the cheap form for per-query phases where two ReadMemStats calls
// would dominate the measured work.
func (r *Registry) ObserveSpan(path string, d time.Duration) {
	if !r.Enabled() {
		return
	}
	r.observe(path, 1, d.Nanoseconds(), 0)
	if tl := r.Timeline(); tl != nil {
		tl.Event(path, "span", 0, time.Now().Add(-d), d)
	}
}

func (r *Registry) observe(path string, count, nanos, alloc int64) {
	r.spanMu.Lock()
	st, ok := r.spans[path]
	if !ok {
		st = &spanStats{}
		r.spans[path] = st
	}
	st.count += count
	st.nanos += nanos
	st.allocBytes += alloc
	r.spanMu.Unlock()
}

// SpanCount returns the occurrence count recorded for a span path (0 when
// absent or on a nil registry) — a test and assertion helper.
func (r *Registry) SpanCount(path string) int64 {
	if r == nil {
		return 0
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	if st, ok := r.spans[path]; ok {
		return st.count
	}
	return 0
}
