// Package telemetry is a zero-dependency, low-overhead metrics and span
// tracing subsystem for the slicing pipeline. It provides counters, gauges,
// and histograms with atomic hot-path increments, hierarchical spans with
// wall-time and allocation deltas, and a registry that snapshots to JSON
// and publishes through expvar.
//
// The defining constraint is that disabled telemetry must cost (almost)
// nothing: every instrument and every Registry method is safe on a nil
// receiver and returns immediately, so the pipeline is instrumented
// unconditionally and a nil *Registry — the default everywhere — turns the
// whole layer into branch-predictable nil checks. A non-nil registry can
// additionally be switched off at runtime; instruments then guard their
// atomic update with a single atomic flag load.
package telemetry

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry owns a namespace of instruments. The zero of *Registry (nil) is
// a fully functional disabled registry.
type Registry struct {
	enabled atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spanMu sync.Mutex
	spans  map[string]*spanStats

	// timeline, when attached, receives one trace event per completed
	// span (see timeline.go).
	timeline atomic.Pointer[Timeline]
}

// New returns an enabled registry.
func New() *Registry {
	r := &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*spanStats{},
	}
	r.enabled.Store(true)
	return r
}

// SetEnabled switches the registry (and every instrument minted from it)
// on or off at runtime.
func (r *Registry) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// Counter returns (minting on first use) the named counter. A nil registry
// returns a nil counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{on: &r.enabled}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (minting on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{on: &r.enabled}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (minting on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{on: &r.enabled}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter. The hot path is a
// nil check plus one atomic flag load plus one atomic add.
type Counter struct {
	v  atomic.Int64
	on *atomic.Bool
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable instantaneous value.
type Gauge struct {
	v  atomic.Int64
	on *atomic.Bool
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds v==0,
// bucket i holds 2^(i-1) <= v < 2^i.
const histBuckets = 64

// Histogram counts observations in power-of-two buckets, tracking count
// and sum exactly. All updates are atomic; concurrent observers race only
// benignly (per-bucket atomics).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
	on      *atomic.Bool
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil || !h.on.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// HistogramSnapshot is the exported state of one histogram. Buckets maps
// the inclusive upper bound of each non-empty power-of-two bucket
// (2^i - 1) to its count. P50/P90/P99 are quantile estimates derived
// from the bucket counts by linear interpolation inside the containing
// bucket, so their error is bounded by the bucket width (a factor of
// two); they are the same estimates the Prometheus exposition and the
// per-recording workload stats report.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Mean    float64          `json:"mean"`
	P50     float64          `json:"p50"`
	P90     float64          `json:"p90"`
	P99     float64          `json:"p99"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Buckets: map[string]int64{}}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	var counts [histBuckets]int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		counts[i] = n
		if n == 0 {
			continue
		}
		var hi uint64
		if i > 0 {
			hi = 1<<uint(i) - 1
		}
		s.Buckets[formatUint(hi)] = n
	}
	s.P50 = Pow2Quantile(counts[:], 0.50)
	s.P90 = Pow2Quantile(counts[:], 0.90)
	s.P99 = Pow2Quantile(counts[:], 0.99)
	return s
}

// Pow2Quantile estimates the q-quantile (0 < q < 1) of a power-of-two
// bucketed distribution: counts[i] holds the observations v with
// bits.Len64(v) == i, i.e. counts[0] is v == 0 and counts[i] covers
// [2^(i-1), 2^i - 1]. The estimate interpolates linearly inside the
// containing bucket. Returns 0 for an empty distribution.
func Pow2Quantile(counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := float64(cum)
		cum += c
		if float64(cum) >= rank {
			if i == 0 {
				return 0
			}
			lo := math.Ldexp(1, i-1)
			hi := math.Ldexp(1, i) - 1
			return lo + (rank-prev)/float64(c)*(hi-lo)
		}
	}
	return math.Ldexp(1, len(counts)-1) // unreachable: cum == total >= rank
}

// formatUint avoids strconv to keep the dependency footprint minimal in
// snapshots (this path is cold).
func formatUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Snapshot is a point-in-time JSON-serializable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      map[string]SpanSnapshot      `json:"spans,omitempty"`
}

// Snapshot captures every instrument's current value. Returns an empty
// snapshot on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string]SpanSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	r.mu.Unlock()
	r.spanMu.Lock()
	for path, st := range r.spans {
		s.Spans[path] = st.snapshot()
	}
	r.spanMu.Unlock()
	return s
}

// WriteJSON writes an indented JSON snapshot to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteFile snapshots the registry to a JSON file, atomically: the
// snapshot goes to a temp file in the same directory which is renamed
// over path, so a crash mid-export cannot leave a truncated file.
func (r *Registry) WriteFile(path string) error {
	return WriteFileAtomic(path, r.WriteJSON)
}

// WriteFileAtomic streams write into a temp file next to path and
// renames it into place (same-directory rename is atomic on POSIX).
// Exported for sibling observability packages (querylog snapshots use
// the same discipline).
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// CounterNames returns the registered counter names, sorted (test helper
// and expvar ordering).
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// published guards expvar.Publish, which panics on duplicate names.
var (
	publishMu sync.Mutex
	published = map[string]bool{}
)

// PublishExpvar exposes the registry's live snapshot as one expvar
// variable (visible at /debug/vars when an HTTP server runs). Publishing
// the same name twice (including across registries) is a no-op: expvar
// variables are process-global, so the first registry wins.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if published[name] {
		return
	}
	published[name] = true
	expvar.Publish(name, expvar.Func(func() interface{} { return r.Snapshot() }))
}
