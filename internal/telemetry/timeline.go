package telemetry

// Chrome trace-event export: a Timeline collects complete ("ph":"X")
// duration events and serializes them in the Trace Event JSON format
// that chrome://tracing and Perfetto load directly. Spans ending on a
// registry with an attached timeline emit one event each, and
// trace.PipelineConfig accepts a Timeline so the ParallelReplay workers
// emit one event per applied batch — together they make pipeline
// utilization and per-query cost visually inspectable (docs/EXPLAIN.md,
// "Timeline export").
//
// Like the rest of the package, every Timeline method is nil-safe, so
// call sites need no branching.

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TimelineEvent is one Trace Event Format record. Ts and Dur are in
// microseconds (the format's unit); Ts is relative to the timeline's
// creation so traces start near zero.
type TimelineEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level JSON object of a trace-event file.
type traceFile struct {
	TraceEvents     []TimelineEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// Timeline accumulates trace events. Safe for concurrent use; all
// methods are no-ops on a nil receiver.
type Timeline struct {
	mu     sync.Mutex
	t0     time.Time
	events []TimelineEvent
}

// NewTimeline returns an empty timeline whose time origin is now.
func NewTimeline() *Timeline { return &Timeline{t0: time.Now()} }

// Event records one complete duration event. tid selects the row the
// event renders on (0 for the main thread; pipeline workers use their
// own rows so per-stage activity interleaves visibly).
func (t *Timeline) Event(name, cat string, tid int, start time.Time, d time.Duration) {
	t.EventArgs(name, cat, tid, start, d, nil)
}

// EventArgs is Event with per-event args rendered in the viewer's
// detail pane — qtrace span trees attach trace IDs, probe counts, and
// error classes this way.
func (t *Timeline) EventArgs(name, cat string, tid int, start time.Time, d time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	ev := TimelineEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts:  float64(start.Sub(t.t0).Nanoseconds()) / 1e3,
		Dur: float64(d.Nanoseconds()) / 1e3,
		Pid: 1, Tid: tid,
		Args: args,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of recorded events (0 on nil).
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events.
func (t *Timeline) Events() []TimelineEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimelineEvent, len(t.events))
	copy(out, t.events)
	return out
}

// WriteJSON serializes the timeline as a Trace Event Format file
// (object form, so viewers tolerate the file even if fields are added).
func (t *Timeline) WriteJSON(w io.Writer) error {
	f := traceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	if f.TraceEvents == nil {
		f.TraceEvents = []TimelineEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteFile writes the timeline atomically (temp file + rename), so a
// crash mid-export cannot leave a truncated trace.
func (t *Timeline) WriteFile(path string) error {
	return WriteFileAtomic(path, t.WriteJSON)
}

// AttachTimeline directs span completions on r into tl (nil detaches).
// The timeline may be shared with other producers — e.g. the same one
// handed to trace.PipelineConfig — and written once at exit.
func (r *Registry) AttachTimeline(tl *Timeline) {
	if r == nil {
		return
	}
	r.timeline.Store(tl)
}

// Timeline returns the attached timeline (nil when none, or on a nil
// registry).
func (r *Registry) Timeline() *Timeline {
	if r == nil {
		return nil
	}
	return r.timeline.Load()
}
