package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.SetEnabled(true)
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	r.Histogram("h").Observe(3)
	sp := r.StartSpan("phase")
	sp.Child("sub").End()
	sp.End()
	r.ObserveSpan("q", time.Millisecond)
	if n := len(r.Snapshot().Counters); n != 0 {
		t.Fatalf("nil registry snapshot has %d counters", n)
	}
	r.PublishExpvar("never")
}

func TestCountersGaugesHistograms(t *testing.T) {
	r := New()
	c := r.Counter("trace.write.bytes")
	c.Add(100)
	c.Add(23)
	if c.Value() != 123 {
		t.Fatalf("counter = %d, want 123", c.Value())
	}
	if r.Counter("trace.write.bytes") != c {
		t.Fatal("counter not interned by name")
	}
	g := r.Gauge("heap")
	g.Set(50)
	g.Add(-20)
	if g.Value() != 30 {
		t.Fatalf("gauge = %d, want 30", g.Value())
	}
	h := r.Histogram("slice.size")
	for _, v := range []int64{0, 1, 2, 3, 1000, -4} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hs := snap.Histograms["slice.size"]
	if hs.Count != 6 || hs.Sum != 1006 {
		t.Fatalf("hist count/sum = %d/%d, want 6/1006", hs.Count, hs.Sum)
	}
	// v==0 (incl. clamped -4) land in bucket "0"; 1000 in "1023".
	if hs.Buckets["0"] != 2 || hs.Buckets["1023"] != 1 {
		t.Fatalf("unexpected buckets: %v", hs.Buckets)
	}
}

func TestDisableStopsCollection(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	r.SetEnabled(false)
	c.Inc()
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(9)
	if sp := r.StartSpan("p"); sp != nil {
		t.Fatal("disabled registry handed out a live span")
	}
	r.ObserveSpan("p", time.Second)
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 2 {
		t.Fatalf("counter = %d, want 2 (middle Inc suppressed)", c.Value())
	}
	if r.Gauge("g").Value() != 0 {
		t.Fatal("disabled gauge accepted a Set")
	}
	if r.SpanCount("p") != 0 {
		t.Fatal("disabled registry recorded a span")
	}
}

// allocSink keeps test allocations heap-visible.
var allocSink []byte

func TestSpanHierarchyAndSnapshot(t *testing.T) {
	r := New()
	root := r.StartSpan("record")
	child := root.Child("interp")
	// Allocate something heap-visible so the delta is nonzero.
	allocSink = make([]byte, 1<<16)
	child.End()
	root.End()
	r.ObserveSpan("slice/opt", 2*time.Millisecond)
	r.ObserveSpan("slice/opt", 4*time.Millisecond)

	snap := r.Snapshot()
	if snap.Spans["record"].Count != 1 || snap.Spans["record/interp"].Count != 1 {
		t.Fatalf("span counts wrong: %+v", snap.Spans)
	}
	q := snap.Spans["slice/opt"]
	if q.Count != 2 || q.TotalMs < 5.9 {
		t.Fatalf("slice/opt aggregate wrong: %+v", q)
	}
	if snap.Spans["record/interp"].AllocBytes <= 0 {
		t.Fatal("child span recorded no allocation delta")
	}

	var out bytes.Buffer
	if err := r.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if !strings.Contains(out.String(), "slice/opt") {
		t.Fatal("JSON snapshot missing span path")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				r.Histogram("h").Observe(int64(j))
				r.ObserveSpan("p", time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if r.SpanCount("p") != 8000 {
		t.Fatalf("span count = %d, want 8000", r.SpanCount("p"))
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := New()
	r.Counter("x").Inc()
	r.PublishExpvar("telemetry_test_var")
	r2 := New()
	r2.PublishExpvar("telemetry_test_var") // must not panic
}

// BenchmarkDisabledCounter measures the nil-registry hot path: the cost the
// whole pipeline pays when telemetry is off.
func BenchmarkDisabledCounter(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkSwitchedOffCounter measures a minted-but-disabled counter: one
// atomic flag load per call.
func BenchmarkSwitchedOffCounter(b *testing.B) {
	r := New()
	c := r.Counter("x")
	r.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkEnabledCounter measures the live atomic increment.
func BenchmarkEnabledCounter(b *testing.B) {
	r := New()
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
