// Package sequitur implements the SEQUITUR online grammar-inference
// algorithm (Nevill-Manning & Witten, DCC'97), which the paper uses as the
// compression baseline for dependence-graph labeling information (§4.1:
// SEQUITUR compressed their dyDGs 9.18x on average versus 23.4x for the
// OPT representation).
//
// SEQUITUR incrementally builds a context-free grammar for an input
// sequence while maintaining two invariants: digram uniqueness (no pair of
// adjacent symbols occurs more than once in the grammar) and rule utility
// (every rule is used more than once).
package sequitur

// Symbol values: terminals are the caller's non-negative int64 values;
// rule references are encoded internally.

type symbol struct {
	prev, next *symbol
	value      int64 // terminal value
	rule       *rule // non-nil for rule references and guards
	isGuard    bool
}

type rule struct {
	guard *symbol // sentinel of the circular symbol list
	uses  int
	id    int
}

// Grammar is the inferred grammar.
type Grammar struct {
	start   *rule
	rules   int
	digrams map[[2]int64]*symbol
	nextID  int
}

// New returns an empty grammar.
func New() *Grammar {
	g := &Grammar{digrams: map[[2]int64]*symbol{}}
	g.start = g.newRule()
	return g
}

func (g *Grammar) newRule() *rule {
	r := &rule{id: g.nextID}
	g.nextID++
	g.rules++
	guard := &symbol{rule: r, isGuard: true}
	guard.prev = guard
	guard.next = guard
	r.guard = guard
	return r
}

// key returns the digram key of s and s.next. Rule references are mapped
// to negative keys distinct from terminals.
func key(s *symbol) [2]int64 {
	return [2]int64{symKey(s), symKey(s.next)}
}

func symKey(s *symbol) int64 {
	if s.rule != nil && !s.isGuard {
		return -int64(s.rule.id) - 1
	}
	return s.value
}

func join(left, right *symbol) {
	left.next = right
	right.prev = left
}

// insertAfter places a fresh symbol after prev.
func insertAfter(prev *symbol, s *symbol) {
	join(s, prev.next)
	join(prev, s)
}

// Append adds the next terminal of the input sequence.
func (g *Grammar) Append(v int64) {
	s := &symbol{value: v}
	last := g.start.guard.prev
	insertAfter(last, s)
	if !last.isGuard {
		g.check(last)
	}
}

// check restores digram uniqueness for the digram starting at s. Returns
// true if the grammar changed.
func (g *Grammar) check(s *symbol) bool {
	if s.isGuard || s.next.isGuard {
		return false
	}
	k := key(s)
	match, ok := g.digrams[k]
	if !ok {
		g.digrams[k] = s
		return false
	}
	if match == s || match.next == s {
		// Overlapping occurrence (aaa): leave as is.
		return false
	}
	g.processMatch(s, match)
	return true
}

// processMatch handles a repeated digram: reuse an existing whole rule or
// create a new one.
func (g *Grammar) processMatch(s, match *symbol) {
	// If the match is the complete body of a rule, substitute that rule.
	if match.prev.isGuard && match.next.next.isGuard {
		r := match.prev.rule
		g.substitute(s, r)
		return
	}
	// Otherwise create a new rule for the digram.
	r := g.newRule()
	a := &symbol{value: s.value, rule: s.rule, isGuard: false}
	a.rule = s.rule
	a.value = s.value
	b := &symbol{value: s.next.value, rule: s.next.rule}
	insertAfter(r.guard, a)
	insertAfter(a, b)
	if a.rule != nil {
		a.rule.uses++
	}
	if b.rule != nil {
		b.rule.uses++
	}
	g.digrams[key(a)] = a

	// Replace both occurrences. Replace match first so stale digram index
	// entries are removed before s shifts.
	g.substitute(match, r)
	g.substitute(s, r)
	g.enforceUtility(r)
}

// substitute replaces the digram starting at s with a reference to r.
func (g *Grammar) substitute(s *symbol, r *rule) {
	prev := s.prev
	g.deleteDigram(prev)
	g.deleteDigram(s)
	g.deleteDigram(s.next)

	a := s
	b := s.next
	if a.rule != nil && !a.isGuard {
		a.rule.uses--
	}
	if b.rule != nil && !b.isGuard {
		b.rule.uses--
	}

	ref := &symbol{rule: r}
	r.uses++
	join(prev, ref)
	join(ref, b.next)

	if !g.check(prev) {
		g.check(ref)
	}
}

// deleteDigram removes the digram starting at s from the index if it is
// the indexed occurrence.
func (g *Grammar) deleteDigram(s *symbol) {
	if s.isGuard || s.next.isGuard {
		return
	}
	k := key(s)
	if g.digrams[k] == s {
		delete(g.digrams, k)
	}
}

// enforceUtility inlines r's referenced rules that dropped to a single use.
func (g *Grammar) enforceUtility(r *rule) {
	for s := r.guard.next; !s.isGuard; s = s.next {
		if s.rule != nil && s.rule.uses == 1 {
			g.inline(s)
			return
		}
	}
}

// inline expands the single remaining reference to a rule.
func (g *Grammar) inline(ref *symbol) {
	r := ref.rule
	prev := ref.prev
	next := ref.next
	g.deleteDigram(prev)
	g.deleteDigram(ref)

	first := r.guard.next
	last := r.guard.prev
	if first.isGuard {
		// Empty rule; just remove the reference.
		join(prev, next)
	} else {
		join(prev, first)
		join(last, next)
	}
	g.rules--
	g.check(prev)
	if !last.isGuard {
		g.check(last)
	}
}

// Size returns the grammar size: the total number of symbols on the right-
// hand sides of all rules (the standard SEQUITUR compression measure).
func (g *Grammar) Size() int {
	n := 0
	seen := map[*rule]bool{}
	var count func(r *rule)
	count = func(r *rule) {
		if seen[r] {
			return
		}
		seen[r] = true
		for s := r.guard.next; !s.isGuard; s = s.next {
			n++
			if s.rule != nil {
				count(s.rule)
			}
		}
	}
	count(g.start)
	return n
}

// Rules returns the number of rules, including the start rule.
func (g *Grammar) Rules() int {
	seen := map[*rule]bool{}
	var count func(r *rule)
	count = func(r *rule) {
		if seen[r] {
			return
		}
		seen[r] = true
		for s := r.guard.next; !s.isGuard; s = s.next {
			if s.rule != nil {
				count(s.rule)
			}
		}
	}
	count(g.start)
	return len(seen)
}

// Expand reconstructs the original sequence (for testing).
func (g *Grammar) Expand() []int64 {
	var out []int64
	var walk func(r *rule)
	walk = func(r *rule) {
		for s := r.guard.next; !s.isGuard; s = s.next {
			if s.rule != nil {
				walk(s.rule)
			} else {
				out = append(out, s.value)
			}
		}
	}
	walk(g.start)
	return out
}

// Compress is a convenience: infer a grammar for seq and report the input
// length, grammar size, and compression ratio.
func Compress(seq []int64) (in, out int, ratio float64) {
	g := New()
	for _, v := range seq {
		g.Append(v)
	}
	in = len(seq)
	out = g.Size()
	if out == 0 {
		return in, out, 1
	}
	return in, out, float64(in) / float64(out)
}
