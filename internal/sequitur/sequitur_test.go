package sequitur

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func expandEquals(t *testing.T, seq []int64) {
	t.Helper()
	g := New()
	for _, v := range seq {
		g.Append(v)
	}
	got := g.Expand()
	if len(got) != len(seq) {
		t.Fatalf("expand length = %d, want %d (seq %v, got %v)", len(got), len(seq), seq, got)
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("expand[%d] = %d, want %d (seq %v, got %v)", i, got[i], seq[i], seq, got)
		}
	}
}

func TestRoundTripClassicExamples(t *testing.T) {
	cases := [][]int64{
		{},
		{1},
		{1, 2},
		{1, 1},
		{1, 1, 1},
		{1, 1, 1, 1},
		{1, 2, 1, 2},             // abab
		{1, 2, 3, 1, 2, 3},       // abcabc
		{1, 2, 1, 2, 1, 2, 1, 2}, // abababab
		{1, 2, 2, 1, 2, 2},
		{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4},
		{1, 1, 2, 1, 1, 2, 1, 1, 2},
	}
	for _, seq := range cases {
		expandEquals(t, seq)
	}
}

func TestCompressionOnRepetitiveInput(t *testing.T) {
	var seq []int64
	for i := 0; i < 200; i++ {
		seq = append(seq, 5, 6, 7, 8)
	}
	in, out, ratio := Compress(seq)
	if in != 800 {
		t.Fatalf("in = %d", in)
	}
	if ratio < 10 {
		t.Fatalf("expected strong compression of a repeated phrase, got %d symbols (ratio %.1f)", out, ratio)
	}
	expandEquals(t, seq)
}

func TestNoCompressionOnUniqueInput(t *testing.T) {
	var seq []int64
	for i := 0; i < 300; i++ {
		seq = append(seq, int64(i))
	}
	_, out, _ := Compress(seq)
	if out != 300 {
		t.Fatalf("unique input must not compress: got %d symbols", out)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint8, alphabet uint8) bool {
		k := int64(alphabet%5) + 1
		seq := make([]int64, len(raw))
		for i, b := range raw {
			seq[i] = int64(b) % k
		}
		g := New()
		for _, v := range seq {
			g.Append(v)
		}
		got := g.Expand()
		if len(got) != len(seq) {
			return false
		}
		for i := range seq {
			if got[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomLongSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 500 + rng.Intn(1500)
		k := int64(2 + rng.Intn(6))
		seq := make([]int64, n)
		for i := range seq {
			seq[i] = rng.Int63n(k)
		}
		expandEquals(t, seq)
	}
}

func TestDigramUniquenessInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := New()
		for i := 0; i < 800; i++ {
			g.Append(rng.Int63n(4))
		}
		// Rebuild the digram set from the grammar and verify no duplicates.
		seen := map[[2]int64]int{}
		var walk func(r *rule)
		visited := map[*rule]bool{}
		walk = func(r *rule) {
			if visited[r] {
				return
			}
			visited[r] = true
			for s := r.guard.next; !s.isGuard; s = s.next {
				if s.rule != nil {
					walk(s.rule)
				}
				if !s.next.isGuard {
					k := key(s)
					if k[0] == k[1] {
						continue // overlapping digrams (aaa) are permitted
					}
					seen[k]++
				}
			}
		}
		walk(g.start)
		for k, n := range seen {
			if n > 1 {
				t.Fatalf("digram %v occurs %d times in the grammar", k, n)
			}
		}
	}
}
