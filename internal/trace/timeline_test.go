package trace_test

import (
	"bytes"
	"testing"

	"dynslice/internal/interp"
	"dynslice/internal/telemetry"
	"dynslice/internal/trace"
)

// TestParallelReplayTimeline checks that every pipeline worker emits at
// least one trace event on its own timeline row, labeled per
// TimelineNames (with the sink-index fallback).
func TestParallelReplayTimeline(t *testing.T) {
	p := prog(t, srcLoop)
	raw, _ := traceBytes(t)

	tl := telemetry.NewTimeline()
	cfg := trace.PipelineConfig{
		BatchBlocks:   2, // several batches -> several events per sink
		Timeline:      tl,
		TimelineNames: []string{"fp-build"}, // second sink falls back
	}
	if err := trace.ParallelReplay(p, bytes.NewReader(raw), cfg, &recorder{}, &recorder{}); err != nil {
		t.Fatal(err)
	}

	perName := map[string]map[int]int{}
	for _, ev := range tl.Events() {
		if ev.Cat != "pipeline" {
			t.Errorf("cat = %q, want pipeline", ev.Cat)
		}
		if perName[ev.Name] == nil {
			perName[ev.Name] = map[int]int{}
		}
		perName[ev.Name][ev.Tid]++
	}
	for _, name := range []string{"fp-build", "sink-1"} {
		rows := perName[name]
		if len(rows) != 1 {
			t.Fatalf("%s: events on %d rows, want exactly 1 (%v)", name, len(rows), perName)
		}
		for tid, n := range rows {
			if tid == 0 || n < 1 {
				t.Errorf("%s: tid=%d n=%d, want a dedicated nonzero row", name, tid, n)
			}
		}
	}
	// The two sinks must not share a row.
	for tid := range perName["fp-build"] {
		if _, shared := perName["sink-1"][tid]; shared {
			t.Errorf("sinks share timeline row %d", tid)
		}
	}
}

// TestAsyncTimeline checks the Async wrapper's per-batch emission and
// that an absent timeline costs no events (nil-safe path).
func TestAsyncTimeline(t *testing.T) {
	p := prog(t, srcLoop)

	tl := telemetry.NewTimeline()
	a := trace.NewAsync(&recorder{}, trace.PipelineConfig{
		BatchBlocks:   2,
		Timeline:      tl,
		TimelineNames: []string{"opt-build"},
	})
	if _, err := interp.Run(p, interp.Options{Sink: a}); err != nil {
		t.Fatal(err)
	}
	if tl.Len() < 1 {
		t.Fatal("async worker emitted no timeline events")
	}
	for _, ev := range tl.Events() {
		if ev.Name != "opt-build" || ev.Cat != "pipeline" || ev.Tid == 0 {
			t.Errorf("event = %+v, want opt-build/pipeline on a worker row", ev)
		}
	}

	// No timeline attached: same pipeline, zero emission, no panic.
	a2 := trace.NewAsync(&recorder{}, trace.PipelineConfig{BatchBlocks: 2})
	if _, err := interp.Run(p, interp.Options{Sink: a2}); err != nil {
		t.Fatal(err)
	}
}
