package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"dynslice/internal/interp"
	"dynslice/internal/telemetry"
	"dynslice/internal/trace"
)

// TestDecoderRejectsCorruptStreams feeds damaged encodings to the decoder
// and requires an error (never a panic or silent success).
func TestDecoderRejectsCorruptStreams(t *testing.T) {
	p := prog(t, `
	func main() {
		var i = 0;
		while (i < 5) { i = i + 1; }
		print(i);
	}`)
	var buf bytes.Buffer
	w := trace.NewWriter(p, &buf, 0)
	if _, err := interp.Run(p, interp.Options{Sink: w}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	replayOK := func(data []byte) error {
		return trace.Replay(p, bytes.NewReader(data), &recorder{})
	}
	if err := replayOK(good); err != nil {
		t.Fatalf("pristine stream must replay: %v", err)
	}

	// Truncations at every prefix length must error (or hit a clean End
	// marker, which only the full stream contains).
	for cut := 1; cut < len(good)-1; cut += 7 {
		if err := replayOK(good[:cut]); err == nil {
			t.Fatalf("truncation at %d silently succeeded", cut)
		}
	}

	// A bogus block id must be rejected (prepended before the header, the
	// stream also fails the magic check; see the metrics test below for the
	// post-header variant).
	bogus := append([]byte{0xFF, 0xFF, 0x7F}, good...)
	if err := replayOK(bogus); err == nil {
		t.Fatal("bogus block id silently accepted")
	}
}

// TestReaderErrorCounters verifies that each decoder error path fires its
// classification counter, and that clean replays count records read.
func TestReaderErrorCounters(t *testing.T) {
	p := prog(t, `
	func main() {
		var i = 0;
		while (i < 5) { i = i + 1; }
		print(i);
	}`)
	var buf bytes.Buffer
	w := trace.NewWriter(p, &buf, 0)
	if _, err := interp.Run(p, interp.Options{Sink: w}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	replay := func(data []byte) (*telemetry.Registry, error) {
		reg := telemetry.New()
		m := trace.NewMetrics(reg)
		err := trace.ReplayWith(p, bytes.NewReader(data), &recorder{}, m)
		return reg, err
	}
	count := func(reg *telemetry.Registry, name string) int64 {
		return reg.Counter(name).Value()
	}

	// Pristine stream: blocks/stmts read match what the writer recorded,
	// and no error counter fires.
	reg, err := replay(good)
	if err != nil {
		t.Fatalf("pristine stream: %v", err)
	}
	if got := count(reg, "trace.read.blocks"); got != w.BlockExecutions() {
		t.Fatalf("blocks read = %d, want %d", got, w.BlockExecutions())
	}
	if count(reg, "trace.read.stmts") == 0 {
		t.Fatal("no statement records counted on a clean replay")
	}
	for _, n := range []string{"trace.read.err.truncated", "trace.read.err.bad_magic", "trace.read.err.bad_block"} {
		if count(reg, n) != 0 {
			t.Fatalf("counter %s fired on a clean replay", n)
		}
	}

	// Header shorter than HeaderSize: truncation.
	reg, err = replay(good[:trace.HeaderSize-2])
	if err == nil || count(reg, "trace.read.err.truncated") != 1 {
		t.Fatalf("short header: err=%v truncated=%d", err, count(reg, "trace.read.err.truncated"))
	}

	// Corrupted magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	reg, err = replay(bad)
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("corrupt magic: err=%v", err)
	}
	if count(reg, "trace.read.err.bad_magic") != 1 {
		t.Fatal("bad_magic counter did not fire on corrupt magic")
	}

	// Unsupported version byte classifies as bad_magic too.
	bad = append([]byte(nil), good...)
	bad[len(trace.Magic)] = trace.Version + 1
	reg, err = replay(bad)
	if err == nil || count(reg, "trace.read.err.bad_magic") != 1 {
		t.Fatalf("bad version: err=%v bad_magic=%d", err, count(reg, "trace.read.err.bad_magic"))
	}

	// Out-of-range block id directly after the header.
	bad = append(append([]byte(nil), good[:trace.HeaderSize]...), 0xFF, 0xFF, 0x7F)
	reg, err = replay(bad)
	if err == nil || count(reg, "trace.read.err.bad_block") != 1 {
		t.Fatalf("bogus block id: err=%v bad_block=%d", err, count(reg, "trace.read.err.bad_block"))
	}

	// Overlong varint (10 continuation bytes) where a block record is
	// expected: malformed payload, classified as bad_record. Found by
	// FuzzTraceReader — the overflow error previously escaped the
	// counter taxonomy entirely.
	over := append([]byte(nil), good[:trace.HeaderSize]...)
	for i := 0; i < 10; i++ {
		over = append(over, 0x80)
	}
	over = append(over, 0x01)
	reg, err = replay(over)
	if err == nil || count(reg, "trace.read.err.bad_record") != 1 {
		t.Fatalf("varint overflow: err=%v bad_record=%d", err, count(reg, "trace.read.err.bad_record"))
	}

	// Truncation mid-record: every short prefix past the header must
	// classify as truncated (never silently succeed, never misclassify).
	for cut := trace.HeaderSize + 1; cut < len(good)-1; cut += 5 {
		reg, err = replay(good[:cut])
		if err == nil {
			t.Fatalf("truncation at %d silently succeeded", cut)
		}
		if count(reg, "trace.read.err.truncated") != 1 {
			t.Fatalf("truncation at %d not counted (err=%v)", cut, err)
		}
	}
}
