package trace_test

import (
	"bytes"
	"testing"

	"dynslice/internal/interp"
	"dynslice/internal/trace"
)

// TestDecoderRejectsCorruptStreams feeds damaged encodings to the decoder
// and requires an error (never a panic or silent success).
func TestDecoderRejectsCorruptStreams(t *testing.T) {
	p := prog(t, `
	func main() {
		var i = 0;
		while (i < 5) { i = i + 1; }
		print(i);
	}`)
	var buf bytes.Buffer
	w := trace.NewWriter(p, &buf, 0)
	if _, err := interp.Run(p, interp.Options{Sink: w}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	replayOK := func(data []byte) error {
		return trace.Replay(p, bytes.NewReader(data), &recorder{})
	}
	if err := replayOK(good); err != nil {
		t.Fatalf("pristine stream must replay: %v", err)
	}

	// Truncations at every prefix length must error (or hit a clean End
	// marker, which only the full stream contains).
	for cut := 1; cut < len(good)-1; cut += 7 {
		if err := replayOK(good[:cut]); err == nil {
			t.Fatalf("truncation at %d silently succeeded", cut)
		}
	}

	// A bogus block id must be rejected.
	bogus := append([]byte{0xFF, 0xFF, 0x7F}, good...)
	if err := replayOK(bogus); err == nil {
		t.Fatal("bogus block id silently accepted")
	}
}
