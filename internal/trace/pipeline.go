package trace

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"dynslice/internal/ir"
	"dynslice/internal/telemetry"
)

// Pipelined trace consumption. Two building blocks:
//
//   - ParallelReplay decodes a stream once on the calling goroutine and
//     fans pooled record batches out to one goroutine per sink over
//     bounded channels, so I/O + varint decode overlap with graph
//     construction and several builders share a single pass.
//   - Async wraps one Sink so that events arriving from a producer (the
//     interpreter, a decoder) are applied on a background goroutine,
//     letting the producer run ahead by a bounded number of batches.
//
// Both copy the per-event use/def address slices into a flat per-batch
// arena (the Sink contract only guarantees them during the call) and
// recycle batches through a sync.Pool, so steady-state operation
// allocates only when the pool is cold.

// PipelineConfig tunes the batching knobs shared by ParallelReplay and
// Async. The zero value selects the defaults, which are documented in
// docs/PERFORMANCE.md along with guidance for changing them.
type PipelineConfig struct {
	// BatchBlocks is the number of block records per batch (default 256).
	// Larger batches amortize channel hand-off; smaller ones reduce the
	// latency before consumers see the first events.
	BatchBlocks int
	// Depth is the per-consumer channel depth in batches (default 4): how
	// far the producer may run ahead of the slowest consumer.
	Depth int
	// Timeline, when non-nil, receives one Chrome trace event per applied
	// batch from each worker, so pipeline utilization (worker busy vs
	// idle) renders as per-stage rows in chrome://tracing / Perfetto.
	Timeline *telemetry.Timeline
	// TimelineNames labels the timeline row of each sink, in sink order
	// (ParallelReplay) or for the single wrapped sink (Async); sinks
	// without a name fall back to "sink-<i>".
	TimelineNames []string
}

const (
	defaultBatchBlocks = 256
	defaultDepth       = 4
)

func (c PipelineConfig) batchBlocks() int {
	if c.BatchBlocks <= 0 {
		return defaultBatchBlocks
	}
	return c.BatchBlocks
}

func (c PipelineConfig) depth() int {
	if c.Depth <= 0 {
		return defaultDepth
	}
	return c.Depth
}

func (c PipelineConfig) sinkName(i int) string {
	if i < len(c.TimelineNames) && c.TimelineNames[i] != "" {
		return c.TimelineNames[i]
	}
	return fmt.Sprintf("sink-%d", i)
}

// timelineTid hands each pipeline worker its own timeline row, so
// concurrent workers (several Asyncs, or ParallelReplay fan-out) never
// overlap events on one row.
var timelineTid atomic.Int32

// rec is one decoded event inside a batch. Use and def addresses live in
// the batch arena at [off, off+nUses) and [off+nUses, off+nUses+nDefs).
type rec struct {
	kind     EventKind
	block    *ir.Block
	stmt     *ir.Stmt
	ord      int64
	off      int32
	nUses    int32
	nDefs    int32
	regStart int64
	regLen   int64
}

// batch is a run of decoded events plus their flat address arena,
// refcounted across consumers and recycled through batchPool.
type batch struct {
	recs   []rec
	arena  []int64
	blocks int
	refs   atomic.Int32
}

var batchPool = sync.Pool{New: func() any { return new(batch) }}

func getBatch() *batch {
	b := batchPool.Get().(*batch)
	b.recs = b.recs[:0]
	b.arena = b.arena[:0]
	b.blocks = 0
	return b
}

// release returns the batch to the pool once every consumer is done.
func (b *batch) release() {
	if b.refs.Add(-1) == 0 {
		batchPool.Put(b)
	}
}

// addBlock appends a block record.
func (b *batch) addBlock(blk *ir.Block, ord int64) {
	b.recs = append(b.recs, rec{kind: EvBlock, block: blk, ord: ord})
	b.blocks++
}

// addStmt appends a statement record, copying addresses into the arena.
func (b *batch) addStmt(s *ir.Stmt, uses, defs []int64) {
	off := int32(len(b.arena))
	b.arena = append(b.arena, uses...)
	b.arena = append(b.arena, defs...)
	b.recs = append(b.recs, rec{
		kind: EvStmt, stmt: s,
		off: off, nUses: int32(len(uses)), nDefs: int32(len(defs)),
	})
}

// addRegion appends an array-declaration record.
func (b *batch) addRegion(s *ir.Stmt, start, length int64) {
	b.recs = append(b.recs, rec{kind: EvRegion, stmt: s, regStart: start, regLen: length})
}

// addEnd appends the end-of-trace marker.
func (b *batch) addEnd() {
	b.recs = append(b.recs, rec{kind: EvEnd})
}

// apply replays the batch into a sink, in order.
func (b *batch) apply(s Sink) {
	for i := range b.recs {
		r := &b.recs[i]
		switch r.kind {
		case EvBlock:
			s.Block(r.block)
		case EvStmt:
			u := b.arena[r.off : r.off+r.nUses]
			d := b.arena[r.off+r.nUses : r.off+r.nUses+r.nDefs]
			s.Stmt(r.stmt, u, d)
		case EvRegion:
			s.RegionDef(r.stmt, r.regStart, r.regLen)
		case EvEnd:
			s.End()
		}
	}
}

// ParallelReplay decodes the whole stream (header included) once and
// drives every sink on its own goroutine, connected by bounded channels
// of pooled record batches. Each sink observes exactly the event sequence
// Replay would deliver, in order; only the interleaving across sinks is
// concurrent. On a decode error the sinks stop without receiving End,
// exactly as Replay leaves them.
func ParallelReplay(p *ir.Program, r io.Reader, cfg PipelineConfig, sinks ...Sink) error {
	_, err := ParallelReplayTimed(p, r, cfg, nil, sinks...)
	return err
}

// ParallelReplayTimed is ParallelReplay with a metrics bundle and
// per-sink busy-time accounting: the i-th duration is the wall time sink
// i spent applying batches (its build cost net of pipeline idle time).
func ParallelReplayTimed(p *ir.Program, r io.Reader, cfg PipelineConfig, m *Metrics, sinks ...Sink) ([]time.Duration, error) {
	busy := make([]time.Duration, len(sinks))
	if len(sinks) == 0 {
		return busy, nil
	}
	chans := make([]chan *batch, len(sinks))
	var wg sync.WaitGroup
	for i := range sinks {
		chans[i] = make(chan *batch, cfg.depth())
		wg.Add(1)
		var tid int
		if cfg.Timeline != nil {
			tid = int(timelineTid.Add(1))
		}
		go func(ch chan *batch, s Sink, slot *time.Duration, name string, tid int) {
			defer wg.Done()
			for b := range ch {
				t0 := time.Now()
				b.apply(s)
				d := time.Since(t0)
				*slot += d
				cfg.Timeline.Event(name, "pipeline", tid, t0, d)
				b.release()
			}
		}(chans[i], sinks[i], &busy[i], cfg.sinkName(i), tid)
	}
	finish := func() {
		for _, ch := range chans {
			close(ch)
		}
		wg.Wait()
	}

	dispatch := func(b *batch) {
		b.refs.Store(int32(len(sinks)))
		for _, ch := range chans {
			ch <- b
		}
	}

	d := NewDecoder(p, r, 0)
	d.SetMetrics(m)
	if err := d.ReadHeader(); err != nil {
		finish()
		return busy, err
	}
	maxBlocks := cfg.batchBlocks()
	cur := getBatch()
	for {
		ev, err := d.Next()
		if err != nil {
			// Drop the partial batch (never dispatched, so never pooled).
			finish()
			return busy, err
		}
		switch ev.Kind {
		case EvBlock:
			if cur.blocks >= maxBlocks {
				dispatch(cur)
				cur = getBatch()
			}
			cur.addBlock(ev.Block, ev.Ord)
		case EvStmt:
			cur.addStmt(ev.Stmt, ev.Uses, ev.Defs)
		case EvRegion:
			cur.addRegion(ev.Stmt, ev.RegStart, ev.RegLen)
		case EvEnd:
			cur.addEnd()
			dispatch(cur)
			finish()
			return busy, nil
		}
	}
}

// Async wraps a Sink so events are applied on a background goroutine fed
// by bounded batches, overlapping event production (interpretation,
// decoding) with consumption (graph building). It implements Sink and is
// one-shot: End flushes, drains, and joins the worker, so when End
// returns the underlying sink is fully caught up. Producers that can
// fail before delivering End must call Close to reclaim the worker.
type Async struct {
	sink   Sink
	ch     chan *batch
	cur    *batch
	max    int
	wg     sync.WaitGroup
	closed bool
	busy   time.Duration
}

// NewAsync returns an Async applying events to sink on its own goroutine.
func NewAsync(sink Sink, cfg PipelineConfig) *Async {
	a := &Async{sink: sink, ch: make(chan *batch, cfg.depth()), max: cfg.batchBlocks(), cur: getBatch()}
	var tid int
	if cfg.Timeline != nil {
		tid = int(timelineTid.Add(1))
	}
	name := cfg.sinkName(0)
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		for b := range a.ch {
			t0 := time.Now()
			b.apply(sink)
			d := time.Since(t0)
			a.busy += d
			cfg.Timeline.Event(name, "pipeline", tid, t0, d)
			b.release()
		}
	}()
	return a
}

func (a *Async) flush() {
	if len(a.cur.recs) == 0 {
		return
	}
	b := a.cur
	b.refs.Store(1)
	a.cur = getBatch()
	a.ch <- b
}

// Block implements Sink.
func (a *Async) Block(b *ir.Block) {
	if a.cur.blocks >= a.max {
		a.flush()
	}
	a.cur.addBlock(b, 0)
}

// Stmt implements Sink.
func (a *Async) Stmt(s *ir.Stmt, uses, defs []int64) { a.cur.addStmt(s, uses, defs) }

// RegionDef implements Sink.
func (a *Async) RegionDef(s *ir.Stmt, start, length int64) { a.cur.addRegion(s, start, length) }

// End implements Sink: it forwards End and blocks until the underlying
// sink has consumed every event.
func (a *Async) End() {
	if a.closed {
		return
	}
	a.cur.addEnd()
	a.flush()
	a.join()
}

// Close drains and joins the worker without delivering End (no-op after
// End). It makes Async safe on error paths where the producer stops
// mid-trace.
func (a *Async) Close() {
	if a.closed {
		return
	}
	a.flush()
	a.join()
}

func (a *Async) join() {
	a.closed = true
	close(a.ch)
	a.wg.Wait()
}

// Busy reports the wall time the worker spent applying batches (valid
// after End or Close).
func (a *Async) Busy() time.Duration { return a.busy }
