package trace

import "dynslice/internal/telemetry"

// Metrics bundles the trace layer's counters. A nil *Metrics (the default
// on every Writer and Decoder) disables collection; individual nil
// counters are likewise inert, so partially populated bundles are fine.
type Metrics struct {
	// Writer side (flushed once at End).
	BlocksWritten   *telemetry.Counter // block records written
	StmtsWritten    *telemetry.Counter // statement/region records written
	BytesWritten    *telemetry.Counter // encoded bytes (post-buffer accounting)
	SegmentsWritten *telemetry.Counter // segment summaries created

	// Reader side (incremental).
	BlocksRead *telemetry.Counter // block records decoded
	StmtsRead  *telemetry.Counter // statement/region records decoded

	// Reader error paths, by class.
	ErrTruncated *telemetry.Counter // stream ended mid-record
	ErrBadMagic  *telemetry.Counter // header magic/version mismatch
	ErrBadBlock  *telemetry.Counter // block id out of range
	ErrBadRecord *telemetry.Counter // malformed record payload (e.g. varint overflow)
	ErrDesync    *telemetry.Counter // segment decoding desynchronized
}

// NewMetrics mints the trace counter bundle on a registry under the
// "trace." namespace. Returns nil (disabled) on a nil registry.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		BlocksWritten:   reg.Counter("trace.write.blocks"),
		StmtsWritten:    reg.Counter("trace.write.stmts"),
		BytesWritten:    reg.Counter("trace.write.bytes"),
		SegmentsWritten: reg.Counter("trace.write.segments"),
		BlocksRead:      reg.Counter("trace.read.blocks"),
		StmtsRead:       reg.Counter("trace.read.stmts"),
		ErrTruncated:    reg.Counter("trace.read.err.truncated"),
		ErrBadMagic:     reg.Counter("trace.read.err.bad_magic"),
		ErrBadBlock:     reg.Counter("trace.read.err.bad_block"),
		ErrBadRecord:    reg.Counter("trace.read.err.bad_record"),
		ErrDesync:       reg.Counter("trace.read.err.desync"),
	}
}
