package trace_test

import (
	"bytes"
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/telemetry"
	"dynslice/internal/trace"
)

// FuzzTraceReader feeds arbitrary byte streams — seeded from valid
// encodings and hand-damaged variants of them — to the trace decoder.
// The contract (see corrupt_test.go for the targeted cases): every
// stream either replays cleanly through the explicit End marker or
// returns a classified error. Never a panic, and never silent
// truncation — a nil error means the sink saw exactly one End event,
// as its final event.
func FuzzTraceReader(f *testing.F) {
	p, err := compile.Source(srcLoop)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	w := trace.NewWriter(p, &buf, 4)
	if _, err := interp.Run(p, interp.Options{Sink: w}); err != nil {
		f.Fatal(err)
	}
	if w.Err() != nil {
		f.Fatal(w.Err())
	}
	good := buf.Bytes()

	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:trace.HeaderSize])
	f.Add([]byte{})
	corrupt := append([]byte(nil), good...)
	corrupt[0] ^= 0xFF
	f.Add(corrupt)
	f.Add(append(append([]byte(nil), good[:trace.HeaderSize]...), 0xFF, 0xFF, 0x7F))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized stream")
		}
		reg := telemetry.New()
		m := trace.NewMetrics(reg)
		rec := &recorder{}
		err := trace.ReplayWith(p, bytes.NewReader(data), rec, m)

		ends := 0
		for _, ev := range rec.events {
			if ev == "E" {
				ends++
			}
		}
		if err == nil {
			if ends != 1 || rec.events[len(rec.events)-1] != "E" {
				t.Fatalf("clean replay without a single final End event: %d ends over %d events", ends, len(rec.events))
			}
			for _, n := range []string{"trace.read.err.truncated", "trace.read.err.bad_magic", "trace.read.err.bad_block", "trace.read.err.bad_record"} {
				if v := reg.Counter(n).Value(); v != 0 {
					t.Fatalf("counter %s = %d fired on a clean replay", n, v)
				}
			}
			return
		}
		if ends != 0 {
			t.Fatalf("failed replay (%v) still delivered %d End events", err, ends)
		}
		// Every error is classified by exactly one decoder counter.
		classified := int64(0)
		for _, n := range []string{"trace.read.err.truncated", "trace.read.err.bad_magic", "trace.read.err.bad_block", "trace.read.err.bad_record"} {
			classified += reg.Counter(n).Value()
		}
		if classified != 1 {
			t.Fatalf("error %q classified by %d counters, want 1", err, classified)
		}
	})
}
