package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dynslice/internal/ir"
)

// EventKind tags decoded events.
type EventKind int

// Decoded event kinds.
const (
	EvBlock EventKind = iota
	EvStmt
	EvRegion
	EvEnd
)

// Event is one decoded trace event. The Uses and Defs slices are reused
// between Next calls; callers must copy them to retain them.
type Event struct {
	Kind     EventKind
	Ord      int64 // block ordinal (valid for EvBlock)
	Block    *ir.Block
	Stmt     *ir.Stmt
	Uses     []int64
	Defs     []int64
	RegStart int64
	RegLen   int64
}

// Decoder decodes a binary trace stream for one program.
type Decoder struct {
	p       *ir.Program
	br      *bufio.Reader
	ord     int64 // ordinal to assign to the next block record
	blk     *ir.Block
	stmtIdx int
	uses    []int64
	defs    []int64
	met     *Metrics
	done    bool
}

// NewDecoder returns a decoder reading from r. startOrd is the ordinal of
// the first block record in the stream (0 for a whole trace; a segment's
// StartOrd when resuming mid-file). Decoders positioned at the start of a
// stream must call ReadHeader before Next; mid-file decoders (segment
// offsets point past the header) must not.
func NewDecoder(p *ir.Program, r io.Reader, startOrd int64) *Decoder {
	return &Decoder{p: p, br: bufio.NewReaderSize(r, 1<<16), ord: startOrd}
}

// SetMetrics attaches a telemetry bundle. Read counters are incremental
// (nil-safe, inert by default); error counters fire once per failed call.
func (d *Decoder) SetMetrics(m *Metrics) { d.met = m }

// ReadHeader consumes and validates the stream header (magic + version).
func (d *Decoder) ReadHeader() error {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(d.br, hdr[:]); err != nil {
		d.countErr(err)
		return fmt.Errorf("trace: header: %w", err)
	}
	if [4]byte(hdr[:4]) != Magic {
		if d.met != nil {
			d.met.ErrBadMagic.Inc()
		}
		return fmt.Errorf("trace: bad magic %q", hdr[:4])
	}
	if hdr[4] != Version {
		if d.met != nil {
			d.met.ErrBadMagic.Inc()
		}
		return fmt.Errorf("trace: unsupported format version %d (want %d)", hdr[4], Version)
	}
	return nil
}

// countErr classifies a decode error into the metrics bundle. EOF-family
// errors mean the stream ended mid-record (truncation); anything else is
// a malformed record payload (e.g. a varint overflowing 64 bits).
func (d *Decoder) countErr(err error) {
	if d.met == nil {
		return
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		d.met.ErrTruncated.Inc()
	} else {
		d.met.ErrBadRecord.Inc()
	}
}

func (d *Decoder) uvarint() (uint64, error) {
	return binary.ReadUvarint(d.br)
}

// Next decodes the next event. After EvEnd (or when a segment-bounded
// caller stops early), Next must not be called again.
func (d *Decoder) Next() (Event, error) {
	if d.done {
		return Event{Kind: EvEnd}, nil
	}
	// Inside a block: statement records until exhausted.
	if d.blk != nil && d.stmtIdx < len(d.blk.Stmts) {
		s := d.blk.Stmts[d.stmtIdx]
		d.stmtIdx++
		if s.Op == ir.OpDeclArr {
			start, err := d.uvarint()
			if err != nil {
				d.countErr(err)
				return Event{}, fmt.Errorf("trace: region record: %w", err)
			}
			length, err := d.uvarint()
			if err != nil {
				d.countErr(err)
				return Event{}, fmt.Errorf("trace: region record: %w", err)
			}
			if d.met != nil {
				d.met.StmtsRead.Inc()
			}
			return Event{Kind: EvRegion, Stmt: s, RegStart: int64(start), RegLen: int64(length)}, nil
		}
		d.uses = d.uses[:0]
		for i := 0; i < len(s.Uses); i++ {
			a, err := d.uvarint()
			if err != nil {
				d.countErr(err)
				return Event{}, fmt.Errorf("trace: use addr: %w", err)
			}
			d.uses = append(d.uses, int64(a))
		}
		d.defs = d.defs[:0]
		for i := 0; i < s.NumDefs; i++ {
			a, err := d.uvarint()
			if err != nil {
				d.countErr(err)
				return Event{}, fmt.Errorf("trace: def addr: %w", err)
			}
			d.defs = append(d.defs, int64(a))
		}
		if d.met != nil {
			d.met.StmtsRead.Inc()
		}
		return Event{Kind: EvStmt, Stmt: s, Uses: d.uses, Defs: d.defs}, nil
	}
	// Block boundary.
	v, err := d.uvarint()
	if err != nil {
		d.countErr(err)
		return Event{}, fmt.Errorf("trace: block record: %w", err)
	}
	if v == 0 {
		d.done = true
		return Event{Kind: EvEnd}, nil
	}
	id := int(v - 1)
	if id >= len(d.p.Blocks) {
		if d.met != nil {
			d.met.ErrBadBlock.Inc()
		}
		return Event{}, fmt.Errorf("trace: bad block id %d", id)
	}
	d.blk = d.p.Blocks[id]
	d.stmtIdx = 0
	if d.met != nil {
		d.met.BlocksRead.Inc()
	}
	ev := Event{Kind: EvBlock, Block: d.blk, Ord: d.ord}
	d.ord++
	return ev, nil
}

// Replay decodes the whole stream (header included) into a sink.
func Replay(p *ir.Program, r io.Reader, sink Sink) error {
	return ReplayWith(p, r, sink, nil)
}

// ReplayWith is Replay with a metrics bundle attached to the decoder.
func ReplayWith(p *ir.Program, r io.Reader, sink Sink, m *Metrics) error {
	d := NewDecoder(p, r, 0)
	d.SetMetrics(m)
	if err := d.ReadHeader(); err != nil {
		return err
	}
	for {
		ev, err := d.Next()
		if err != nil {
			return err
		}
		switch ev.Kind {
		case EvBlock:
			sink.Block(ev.Block)
		case EvStmt:
			sink.Stmt(ev.Stmt, ev.Uses, ev.Defs)
		case EvRegion:
			sink.RegionDef(ev.Stmt, ev.RegStart, ev.RegLen)
		case EvEnd:
			sink.End()
			return nil
		}
	}
}
