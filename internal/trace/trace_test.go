package trace_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/trace"
)

func prog(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// recorder captures all events for comparison.
type recorder struct {
	events []string
}

func (r *recorder) Block(b *ir.Block) {
	r.events = append(r.events, "B"+b.String())
}
func (r *recorder) Stmt(s *ir.Stmt, uses, defs []int64) {
	ev := "S"
	for _, u := range uses {
		ev += "u" + itoa(u)
	}
	for _, d := range defs {
		ev += "d" + itoa(d)
	}
	r.events = append(r.events, ev)
}
func (r *recorder) RegionDef(s *ir.Stmt, start, length int64) {
	r.events = append(r.events, "R"+itoa(start)+":"+itoa(length))
}
func (r *recorder) End() { r.events = append(r.events, "E") }

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [24]byte
	i := len(buf)
	u := v
	if neg {
		u = -u
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

const srcLoop = `
func f(k) { return k * 2; }
func main() {
	var a[8];
	var s = 0;
	var i = 0;
	while (i < 20) {
		a[i % 8] = f(i);
		s = s + a[i % 8];
		i = i + 1;
	}
	print(s);
}`

// TestRoundTrip checks that encoding a trace and replaying it reproduces
// the identical event stream.
func TestRoundTrip(t *testing.T) {
	p := prog(t, srcLoop)
	var buf bytes.Buffer
	w := trace.NewWriter(p, &buf, 7) // odd segment size on purpose
	direct := &recorder{}
	if _, err := interp.Run(p, interp.Options{Sink: trace.Multi{w, direct}}); err != nil {
		t.Fatal(err)
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	replayed := &recorder{}
	if err := trace.Replay(p, bytes.NewReader(buf.Bytes()), replayed); err != nil {
		t.Fatal(err)
	}
	if len(direct.events) != len(replayed.events) {
		t.Fatalf("event counts differ: %d vs %d", len(direct.events), len(replayed.events))
	}
	for i := range direct.events {
		if direct.events[i] != replayed.events[i] {
			t.Fatalf("event %d differs: %q vs %q", i, direct.events[i], replayed.events[i])
		}
	}
}

// TestSegments checks segment-index invariants: contiguous ordinal ranges,
// valid offsets, and sound summaries (every defined address inside a
// segment must pass its filter; every executed block must be in its set).
func TestSegments(t *testing.T) {
	p := prog(t, srcLoop)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(p, f, 5)
	if _, err := interp.Run(p, interp.Options{Sink: w}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	segs := w.Segments()
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	var prevEnd int64
	for i, seg := range segs {
		if seg.StartOrd != prevEnd {
			t.Fatalf("segment %d starts at %d, want %d", i, seg.StartOrd, prevEnd)
		}
		if seg.EndOrd <= seg.StartOrd {
			t.Fatalf("segment %d empty", i)
		}
		prevEnd = seg.EndOrd

		// Replay the segment and validate its summary.
		rf, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rf.Seek(seg.Off, 0); err != nil {
			t.Fatal(err)
		}
		d := trace.NewDecoder(p, rf, seg.StartOrd)
		blocks := seg.EndOrd - seg.StartOrd
		var seen int64
		for seen < blocks {
			ev, err := d.Next()
			if err != nil {
				t.Fatal(err)
			}
			switch ev.Kind {
			case trace.EvBlock:
				seen++
				if seen > blocks {
					break
				}
				if !seg.HasBlock(ev.Block.ID) {
					t.Fatalf("segment %d summary missing block %s", i, ev.Block)
				}
			case trace.EvStmt:
				for _, a := range ev.Defs {
					if !seg.MayDefine(a) {
						t.Fatalf("segment %d summary missing def addr %d", i, a)
					}
				}
			case trace.EvRegion:
				for a := ev.RegStart; a < ev.RegStart+ev.RegLen; a++ {
					if !seg.MayDefine(a) {
						t.Fatalf("segment %d summary missing region addr %d", i, a)
					}
				}
			case trace.EvEnd:
				seen = blocks
			}
		}
		rf.Close()
	}
}

// TestCountingSink checks USE and statement counting.
func TestCountingSink(t *testing.T) {
	p := prog(t, srcLoop)
	c := trace.NewCounting(p)
	res, err := interp.Run(p, interp.Options{Sink: c})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stmts != res.Steps {
		t.Errorf("counting sink saw %d statements, interpreter reports %d", c.Stmts, res.Steps)
	}
	if c.USE() == 0 || c.USE() > len(p.Stmts) {
		t.Errorf("USE = %d out of range (program has %d statements)", c.USE(), len(p.Stmts))
	}
	if c.Blocks != res.BlockExecs {
		t.Errorf("block counts differ: %d vs %d", c.Blocks, res.BlockExecs)
	}
}

// TestAddrFilterProperty: no false negatives ever; false positives stay
// below a loose bound on random workloads.
func TestAddrFilterProperty(t *testing.T) {
	f := func(adds []int64, probes []int64) bool {
		var seg trace.Segment
		in := map[int64]bool{}
		for _, a := range adds {
			if a < 0 {
				a = -a
			}
			seg.Defs.Add(a)
			in[a] = true
		}
		for a := range in {
			if !seg.MayDefine(a) {
				return false // false negative: never allowed
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	var seg trace.Segment
	for i := 0; i < 2000; i++ {
		seg.Defs.Add(rng.Int63n(1 << 30))
	}
	fp := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if seg.MayDefine(rng.Int63n(1<<30) + (1 << 31)) {
			fp++
		}
	}
	if rate := float64(fp) / trials; rate > 0.05 {
		t.Errorf("false positive rate %.3f too high for 2000 inserts", rate)
	}
}
