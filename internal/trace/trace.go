// Package trace defines the execution-trace event model shared by the
// interpreter (producer) and the dependence-graph builders (consumers),
// plus a compact binary encoding with per-segment summaries used by the
// demand-driven LP algorithm.
//
// A trace is a sequence of basic-block executions; each block execution
// carries one record per statement in the block, in order, holding the
// dynamic memory addresses of the statement's use slots and def slots.
// Because call statements terminate basic blocks, the records of one block
// execution are contiguous even across calls, and the ordinal number of a
// block record doubles as the full-graph timestamp of that execution.
package trace

import (
	"dynslice/internal/ir"
)

// Sink receives execution events. The interpreter drives a Sink directly;
// the binary Writer is a Sink; graph builders are Sinks; Multi fans out.
type Sink interface {
	// Block announces the execution of a basic block. The statements of
	// the block follow as Stmt/RegionDef calls, one per statement in order.
	Block(b *ir.Block)
	// Stmt reports one statement execution: uses holds one address per use
	// slot (evaluation order), defs one address per def slot. The slices
	// are only valid during the call.
	Stmt(s *ir.Stmt, uses, defs []int64)
	// RegionDef reports an array-declaration execution defining the
	// address range [start, start+length).
	RegionDef(s *ir.Stmt, start, length int64)
	// End marks the end of the trace.
	End()
}

// Multi fans events out to several sinks in order.
type Multi []Sink

// Block implements Sink.
func (m Multi) Block(b *ir.Block) {
	for _, s := range m {
		s.Block(b)
	}
}

// Stmt implements Sink.
func (m Multi) Stmt(s *ir.Stmt, uses, defs []int64) {
	for _, k := range m {
		k.Stmt(s, uses, defs)
	}
}

// RegionDef implements Sink.
func (m Multi) RegionDef(s *ir.Stmt, start, length int64) {
	for _, k := range m {
		k.RegionDef(s, start, length)
	}
}

// End implements Sink.
func (m Multi) End() {
	for _, s := range m {
		s.End()
	}
}

// Counting is a Sink that accumulates the aggregate statistics reported in
// the paper's Table 1: statements executed and unique statements executed
// (USE).
type Counting struct {
	Blocks     int64
	Stmts      int64
	ExecOnce   []bool // indexed by StmtID; allocated lazily
	numStmtIDs int
}

// NewCounting returns a counting sink for a program with the given number
// of statements.
func NewCounting(p *ir.Program) *Counting {
	return &Counting{ExecOnce: make([]bool, len(p.Stmts)), numStmtIDs: len(p.Stmts)}
}

// Block implements Sink.
func (c *Counting) Block(*ir.Block) { c.Blocks++ }

// Stmt implements Sink.
func (c *Counting) Stmt(s *ir.Stmt, _, _ []int64) {
	c.Stmts++
	c.ExecOnce[s.ID] = true
}

// RegionDef implements Sink.
func (c *Counting) RegionDef(s *ir.Stmt, _, _ int64) {
	c.Stmts++
	c.ExecOnce[s.ID] = true
}

// End implements Sink.
func (c *Counting) End() {}

// USE returns the number of unique statements executed at least once.
func (c *Counting) USE() int {
	n := 0
	for _, x := range c.ExecOnce {
		if x {
			n++
		}
	}
	return n
}
