package trace

import (
	"bufio"
	"encoding/binary"
	"io"

	"dynslice/internal/ir"
)

// Binary format. The stream is self-framing given the program: a block
// record is the varint (blockID+1); the value 0 is the end marker. A block
// record is followed by exactly one record per statement of the block, in
// order. A statement record is the statement's use addresses (one uvarint
// per use slot) followed by its def addresses (one uvarint per def slot).
// An array declaration (OpDeclArr) instead carries two uvarints: region
// start and region length.

// Segment summarizes a contiguous run of block executions for demand-driven
// (LP) traversal: its half-open ordinal range, its file offset, the set of
// blocks executed, and a filter over the addresses defined.
type Segment struct {
	StartOrd int64 // ordinal of first block execution in the segment
	EndOrd   int64 // one past the last ordinal
	Off      int64 // byte offset of the segment start in the stream
	Blocks   blockSet
	Defs     addrFilter
	DefsAll  bool // set when a huge region def made the filter pointless
}

// HasBlock reports whether the segment executed block id.
func (g *Segment) HasBlock(id ir.BlockID) bool { return g.Blocks.Has(int(id)) }

// MayDefine reports whether the segment may define address a.
func (g *Segment) MayDefine(a int64) bool { return g.DefsAll || g.Defs.MayContain(a) }

// regionFilterCap bounds how many addresses of a region definition are
// added to a segment filter before giving up and marking DefsAll.
const regionFilterCap = 1 << 14

// Magic is the four-byte stream header ("DYTR"), followed by one format
// version byte. Segment offsets point past the header, so mid-file seeks
// (LP) never re-read it; whole-stream decoders validate it first.
var Magic = [4]byte{'D', 'Y', 'T', 'R'}

// Version is the current trace format version.
const Version byte = 1

// HeaderSize is the encoded size of the stream header.
const HeaderSize = len(Magic) + 1

// Writer encodes a trace to an io.Writer, building segment summaries as it
// goes. It implements Sink.
type Writer struct {
	bw        *bufio.Writer
	segBlocks int64 // block executions per segment
	ord       int64 // next block ordinal
	stmts     int64 // statement/region records written
	written   int64 // bytes written (post-buffer accounting)
	segs      []*Segment
	cur       *Segment
	numBlocks int
	met       *Metrics
	scratch   [binary.MaxVarintLen64]byte
	err       error
}

// NewWriter returns a trace writer. segBlocks controls segment granularity
// (block executions per segment); 4096 is a reasonable default. The stream
// header is written immediately.
func NewWriter(p *ir.Program, w io.Writer, segBlocks int) *Writer {
	if segBlocks <= 0 {
		segBlocks = 4096
	}
	tw := &Writer{
		bw:        bufio.NewWriterSize(w, 1<<16),
		segBlocks: int64(segBlocks),
		numBlocks: len(p.Blocks),
	}
	if _, err := tw.bw.Write(Magic[:]); err != nil {
		tw.err = err
	}
	if err := tw.bw.WriteByte(Version); err != nil && tw.err == nil {
		tw.err = err
	}
	tw.written += int64(HeaderSize)
	return tw
}

// SetMetrics attaches a telemetry bundle; aggregate write counters are
// flushed once at End, so metrics cost nothing on the per-record path.
func (w *Writer) SetMetrics(m *Metrics) { w.met = m }

// Err returns the first write error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Segments returns the segment index. Valid after End.
func (w *Writer) Segments() []*Segment { return w.segs }

// BlockExecutions returns the number of block records written.
func (w *Writer) BlockExecutions() int64 { return w.ord }

func (w *Writer) putUvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.scratch[:], v)
	if _, err := w.bw.Write(w.scratch[:n]); err != nil {
		w.err = err
	}
	w.written += int64(n)
}

// Block implements Sink.
func (w *Writer) Block(b *ir.Block) {
	if w.cur == nil || w.ord-w.cur.StartOrd >= w.segBlocks {
		w.closeSegment()
		w.cur = &Segment{StartOrd: w.ord, Off: w.written, Blocks: newBlockSet(w.numBlocks)}
	}
	w.cur.Blocks.Add(int(b.ID))
	w.putUvarint(uint64(b.ID) + 1)
	w.ord++
}

func (w *Writer) closeSegment() {
	if w.cur != nil {
		w.cur.EndOrd = w.ord
		w.segs = append(w.segs, w.cur)
		w.cur = nil
	}
}

// Stmt implements Sink.
func (w *Writer) Stmt(s *ir.Stmt, uses, defs []int64) {
	w.stmts++
	for _, a := range uses {
		w.putUvarint(uint64(a))
	}
	for _, a := range defs {
		w.putUvarint(uint64(a))
		if w.cur != nil {
			w.cur.Defs.Add(a)
		}
	}
}

// RegionDef implements Sink.
func (w *Writer) RegionDef(s *ir.Stmt, start, length int64) {
	w.stmts++
	w.putUvarint(uint64(start))
	w.putUvarint(uint64(length))
	if w.cur == nil {
		return
	}
	if length > regionFilterCap {
		w.cur.DefsAll = true
		return
	}
	for a := start; a < start+length; a++ {
		w.cur.Defs.Add(a)
	}
}

// End implements Sink.
func (w *Writer) End() {
	w.putUvarint(0)
	w.closeSegment()
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if m := w.met; m != nil {
		m.BlocksWritten.Add(w.ord)
		m.StmtsWritten.Add(w.stmts)
		m.BytesWritten.Add(w.written)
		m.SegmentsWritten.Add(int64(len(w.segs)))
	}
}
