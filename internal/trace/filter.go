package trace

// addrFilter is a small fixed-size Bloom-style filter over addresses, used
// in segment summaries so the LP algorithm can skip trace segments that
// cannot contain a definition of a wanted address. Two hash probes over a
// 2^17-bit table give a low enough false-positive rate for segment sizes in
// the thousands of definitions while costing only 16 KiB per segment.
type addrFilter struct {
	bits [1 << 11]uint64 // 2^17 bits
}

const filterMask = 1<<17 - 1

func mix(a int64) (uint32, uint32) {
	x := uint64(a)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x) & filterMask, uint32(x>>32) & filterMask
}

// Add inserts an address.
func (f *addrFilter) Add(a int64) {
	h1, h2 := mix(a)
	f.bits[h1>>6] |= 1 << (h1 & 63)
	f.bits[h2>>6] |= 1 << (h2 & 63)
}

// MayContain reports whether the address may have been inserted.
func (f *addrFilter) MayContain(a int64) bool {
	h1, h2 := mix(a)
	return f.bits[h1>>6]&(1<<(h1&63)) != 0 && f.bits[h2>>6]&(1<<(h2&63)) != 0
}

// blockSet is a dense bitset over program block IDs.
type blockSet []uint64

func newBlockSet(n int) blockSet { return make(blockSet, (n+63)/64) }

// Add inserts a block ID.
func (s blockSet) Add(id int) { s[id>>6] |= 1 << (uint(id) & 63) }

// Has reports membership.
func (s blockSet) Has(id int) bool { return s[id>>6]&(1<<(uint(id)&63)) != 0 }
