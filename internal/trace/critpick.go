package trace

import (
	"sort"

	"dynslice/internal/ir"
)

// CritPicker is a Sink that selects slicing criteria the way the paper
// does: distinct memory addresses defined during execution, preferring
// the most recently defined (and distinct defining statements, for
// slice diversity). It is used by the bench harness and by the façade's
// RunOptions.TrackCriteria.
type CritPicker struct {
	lastOrd map[int64]int64
	defStmt map[int64]ir.StmtID
	ord     int64
}

// NewCritPicker returns an empty picker.
func NewCritPicker() *CritPicker {
	return &CritPicker{lastOrd: map[int64]int64{}, defStmt: map[int64]ir.StmtID{}}
}

// Block implements Sink.
func (c *CritPicker) Block(*ir.Block) { c.ord++ }

// Stmt implements Sink.
func (c *CritPicker) Stmt(s *ir.Stmt, _, defs []int64) {
	for _, a := range defs {
		c.lastOrd[a] = c.ord
		c.defStmt[a] = s.ID
	}
}

// RegionDef implements Sink.
func (c *CritPicker) RegionDef(s *ir.Stmt, start, length int64) {
	for a := start; a < start+length; a++ {
		c.lastOrd[a] = c.ord
		c.defStmt[a] = s.ID
	}
}

// End implements Sink.
func (c *CritPicker) End() {}

// Pick returns up to n addresses, most recently defined first,
// preferring distinct defining statements.
func (c *CritPicker) Pick(n int) []int64 {
	type ent struct {
		addr int64
		ord  int64
		stmt ir.StmtID
	}
	all := make([]ent, 0, len(c.lastOrd))
	for a, o := range c.lastOrd {
		all = append(all, ent{addr: a, ord: o, stmt: c.defStmt[a]})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ord != all[j].ord {
			return all[i].ord > all[j].ord
		}
		return all[i].addr < all[j].addr
	})
	var out []int64
	seenStmt := map[ir.StmtID]bool{}
	for _, e := range all {
		if len(out) >= n {
			return out
		}
		if seenStmt[e.stmt] {
			continue
		}
		seenStmt[e.stmt] = true
		out = append(out, e.addr)
	}
	// Not enough distinct defining statements: fill with remaining addrs.
	for _, e := range all {
		if len(out) >= n {
			break
		}
		dup := false
		for _, a := range out {
			if a == e.addr {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e.addr)
		}
	}
	return out
}
