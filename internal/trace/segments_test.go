package trace

import (
	"strings"
	"testing"
)

func seg(start, end int64) *Segment { return &Segment{StartOrd: start, EndOrd: end} }

func TestSegmentAt(t *testing.T) {
	segs := []*Segment{seg(0, 64), seg(64, 128), seg(128, 150)}
	cases := []struct {
		ord  int64
		want int
	}{
		{0, 0}, {63, 0}, {64, 1}, {127, 1}, {128, 2}, {149, 2},
		{150, -1}, {1 << 40, -1}, {-1, -1},
	}
	for _, c := range cases {
		if got := SegmentAt(segs, c.ord); got != c.want {
			t.Errorf("SegmentAt(%d) = %d, want %d", c.ord, got, c.want)
		}
	}
	if got := SegmentAt(nil, 0); got != -1 {
		t.Errorf("SegmentAt(nil, 0) = %d, want -1", got)
	}
}

func TestValidateSegments(t *testing.T) {
	cases := []struct {
		name  string
		segs  []*Segment
		total int64
		want  string // substring of the error; "" = healthy
	}{
		{"healthy", []*Segment{seg(0, 64), seg(64, 100)}, 100, ""},
		{"empty-ok", nil, 0, ""},
		{"empty-missing", nil, 10, "index empty"},
		{"head-gap", []*Segment{seg(64, 128)}, 128, "gap before segment 0"},
		{"mid-gap", []*Segment{seg(0, 64), seg(128, 150)}, 150, "gap before segment 1"},
		{"overlap", []*Segment{seg(0, 64), seg(32, 100)}, 100, "overlap at segment 1"},
		{"empty-seg", []*Segment{seg(0, 64), seg(64, 64)}, 64, "segment 1 is empty"},
		{"truncated", []*Segment{seg(0, 64)}, 150, "truncated"},
		{"overrun", []*Segment{seg(0, 64)}, 50, "overruns"},
	}
	for _, c := range cases {
		err := ValidateSegments(c.segs, c.total)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.want)
		}
	}
}
