package trace

import "fmt"

// SegmentAt returns the index in segs of the segment whose ordinal
// range contains block ordinal ord, or -1 when no segment covers it.
// segs must be ordered by StartOrd, as Writer.Segments produces them.
func SegmentAt(segs []*Segment, ord int64) int {
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if segs[mid].EndOrd <= ord {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(segs) && ord >= segs[lo].StartOrd {
		return lo
	}
	return -1
}

// ValidateSegments checks that a summary index is complete: the
// segments tile the ordinal range [0, totalBlocks) contiguously and in
// order. It returns nil for a healthy index and a descriptive error
// naming the first defect otherwise — the check consumers run before
// trusting summaries to skip (or regenerate) parts of the trace.
func ValidateSegments(segs []*Segment, totalBlocks int64) error {
	if len(segs) == 0 {
		if totalBlocks == 0 {
			return nil
		}
		return fmt.Errorf("trace: summary index empty, want coverage of %d block executions", totalBlocks)
	}
	want := int64(0)
	for i, s := range segs {
		if s.StartOrd > want {
			return fmt.Errorf("trace: summary gap before segment %d: starts at ordinal %d, want %d", i, s.StartOrd, want)
		}
		if s.StartOrd < want {
			return fmt.Errorf("trace: summary overlap at segment %d: starts at ordinal %d, want %d", i, s.StartOrd, want)
		}
		if s.EndOrd <= s.StartOrd {
			return fmt.Errorf("trace: summary segment %d is empty (ordinals [%d,%d))", i, s.StartOrd, s.EndOrd)
		}
		want = s.EndOrd
	}
	if want < totalBlocks {
		return fmt.Errorf("trace: summary truncated: segments cover ordinals [0,%d) of %d block executions", want, totalBlocks)
	}
	if want > totalBlocks {
		return fmt.Errorf("trace: summary overruns the trace: segments cover ordinals [0,%d), trace has %d block executions", want, totalBlocks)
	}
	return nil
}
