package trace_test

import (
	"bytes"
	"testing"

	"dynslice/internal/interp"
	"dynslice/internal/trace"
)

// traceBytes records srcLoop into an in-memory trace once per test.
func traceBytes(t *testing.T) ([]byte, *recorder) {
	t.Helper()
	p := prog(t, srcLoop)
	var buf bytes.Buffer
	w := trace.NewWriter(p, &buf, 7)
	direct := &recorder{}
	if _, err := interp.Run(p, interp.Options{Sink: trace.Multi{w, direct}}); err != nil {
		t.Fatal(err)
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	return buf.Bytes(), direct
}

func sameEvents(t *testing.T, name string, want, got *recorder) {
	t.Helper()
	if len(want.events) != len(got.events) {
		t.Fatalf("%s: event counts differ: %d vs %d", name, len(want.events), len(got.events))
	}
	for i := range want.events {
		if want.events[i] != got.events[i] {
			t.Fatalf("%s: event %d differs: %q vs %q", name, i, want.events[i], got.events[i])
		}
	}
}

// TestParallelReplay checks that every sink of a pipelined replay observes
// the exact event stream a sequential Replay delivers, across batch-size
// extremes (single-block batches force maximal hand-off).
func TestParallelReplay(t *testing.T) {
	p := prog(t, srcLoop)
	raw, direct := traceBytes(t)
	for _, cfg := range []trace.PipelineConfig{
		{},                               // defaults
		{BatchBlocks: 1, Depth: 1},       // worst-case hand-off
		{BatchBlocks: 3, Depth: 2},       // tiny batches
		{BatchBlocks: 1 << 20, Depth: 8}, // one giant batch
	} {
		sinks := []*recorder{{}, {}, {}}
		if err := trace.ParallelReplay(p, bytes.NewReader(raw), cfg,
			sinks[0], sinks[1], sinks[2]); err != nil {
			t.Fatal(err)
		}
		for i, s := range sinks {
			sameEvents(t, "sink", direct, s)
			_ = i
		}
	}
}

// TestParallelReplayTimed checks busy-time accounting and the no-sink and
// decode-error edge cases.
func TestParallelReplayTimed(t *testing.T) {
	p := prog(t, srcLoop)
	raw, _ := traceBytes(t)

	busy, err := trace.ParallelReplayTimed(p, bytes.NewReader(raw), trace.PipelineConfig{}, nil, &recorder{})
	if err != nil {
		t.Fatal(err)
	}
	if len(busy) != 1 {
		t.Fatalf("busy slice has %d entries, want 1", len(busy))
	}

	if _, err := trace.ParallelReplayTimed(p, bytes.NewReader(raw), trace.PipelineConfig{}, nil); err != nil {
		t.Fatal(err)
	}

	// Truncated stream: must return an error, not hang.
	if err := trace.ParallelReplay(p, bytes.NewReader(raw[:len(raw)/2]), trace.PipelineConfig{}, &recorder{}); err == nil {
		t.Fatal("truncated stream: expected error")
	}
}

// TestAsyncSink checks that driving a sink through Async delivers the same
// stream, End acts as the drain barrier, and Close is safe on error paths.
func TestAsyncSink(t *testing.T) {
	p := prog(t, srcLoop)
	direct := &recorder{}
	if _, err := interp.Run(p, interp.Options{Sink: direct}); err != nil {
		t.Fatal(err)
	}

	async := &recorder{}
	a := trace.NewAsync(async, trace.PipelineConfig{BatchBlocks: 2, Depth: 2})
	if _, err := interp.Run(p, interp.Options{Sink: a}); err != nil {
		t.Fatal(err)
	}
	// interp delivered End; the wrapper must have fully drained.
	sameEvents(t, "async", direct, async)
	a.Close() // idempotent after End
	a.End()   // and End after close is a no-op

	// Abort path: stop producing mid-trace, Close must drain what was sent.
	partial := &recorder{}
	a2 := trace.NewAsync(partial, trace.PipelineConfig{BatchBlocks: 1})
	a2.Block(p.Blocks[0])
	a2.Close()
	if len(partial.events) != 1 {
		t.Fatalf("abort drain: got %d events, want 1", len(partial.events))
	}
	a2.Close() // idempotent
}
