package trace

import (
	"encoding/binary"

	"dynslice/internal/slicing/labelblock"
)

// Segment-summary codec for the on-disk graph image
// (internal/slicing/snapshot): a snapshot-loaded recording has no trace
// file, but its segment summaries still describe the execution's shape —
// the input the planned re-execution backend (ROADMAP) needs to pick a
// restart point without the graph. Bitset words are stored sparse
// (index, word) pairs: block sets and address filters are mostly zeros
// for all but the hottest segments.

// AppendSegments serializes segment summaries.
func AppendSegments(dst []byte, segs []*Segment) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(segs)))
	for _, s := range segs {
		dst = binary.AppendUvarint(dst, uint64(s.StartOrd))
		dst = binary.AppendUvarint(dst, uint64(s.EndOrd))
		dst = binary.AppendUvarint(dst, uint64(s.Off))
		if s.DefsAll {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendSparseWords(dst, s.Blocks)
		dst = appendSparseWords(dst, s.Defs.bits[:])
	}
	return dst
}

func appendSparseWords(dst []byte, words []uint64) []byte {
	nz := 0
	for _, w := range words {
		if w != 0 {
			nz++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(words)))
	dst = binary.AppendUvarint(dst, uint64(nz))
	for i, w := range words {
		if w != 0 {
			dst = binary.AppendUvarint(dst, uint64(i))
			dst = binary.AppendUvarint(dst, w)
		}
	}
	return dst
}

// DecodeSegments parses an AppendSegments run, returning the segments
// and the unconsumed remainder. Errors are classified
// *labelblock.CorruptError values.
func DecodeSegments(data []byte) ([]*Segment, []byte, error) {
	count, data, err := labelblock.DecodeUvarint(data, "trace: segment count")
	if err != nil {
		return nil, nil, err
	}
	if count > 1<<28 {
		return nil, nil, labelblock.Corrupt(labelblock.ClassBadBlock, "trace: implausible segment count %d", count)
	}
	segs := make([]*Segment, 0, count)
	for i := uint64(0); i < count; i++ {
		s := &Segment{}
		var so, eo, off uint64
		if so, data, err = labelblock.DecodeUvarint(data, "trace: segment start"); err != nil {
			return nil, nil, err
		}
		if eo, data, err = labelblock.DecodeUvarint(data, "trace: segment end"); err != nil {
			return nil, nil, err
		}
		if off, data, err = labelblock.DecodeUvarint(data, "trace: segment offset"); err != nil {
			return nil, nil, err
		}
		if so > eo {
			return nil, nil, labelblock.Corrupt(labelblock.ClassBadBlock, "trace: segment range [%d, %d) inverted", so, eo)
		}
		s.StartOrd, s.EndOrd, s.Off = int64(so), int64(eo), int64(off)
		if len(data) == 0 {
			return nil, nil, labelblock.Corrupt(labelblock.ClassTruncated, "trace: data ends inside segment flags")
		}
		s.DefsAll = data[0] != 0
		data = data[1:]
		var words []uint64
		if words, data, err = decodeSparseWords(data, nil); err != nil {
			return nil, nil, err
		}
		s.Blocks = words
		if _, data, err = decodeSparseWords(data, s.Defs.bits[:]); err != nil {
			return nil, nil, err
		}
		segs = append(segs, s)
	}
	return segs, data, nil
}

// decodeSparseWords parses an appendSparseWords run into into (when
// non-nil, which also pins the expected length) or a fresh slice.
func decodeSparseWords(data []byte, into []uint64) ([]uint64, []byte, error) {
	n, data, err := labelblock.DecodeUvarint(data, "trace: bitset length")
	if err != nil {
		return nil, nil, err
	}
	if into != nil && n != uint64(len(into)) {
		return nil, nil, labelblock.Corrupt(labelblock.ClassBadBlock, "trace: bitset of %d words, want %d", n, len(into))
	}
	if n > 1<<26 {
		return nil, nil, labelblock.Corrupt(labelblock.ClassBadBlock, "trace: implausible bitset length %d", n)
	}
	nz, data, err := labelblock.DecodeUvarint(data, "trace: bitset population")
	if err != nil {
		return nil, nil, err
	}
	if nz > n {
		return nil, nil, labelblock.Corrupt(labelblock.ClassBadBlock, "trace: %d non-zero words in a %d-word bitset", nz, n)
	}
	words := into
	if words == nil {
		words = make([]uint64, n)
	}
	for i := uint64(0); i < nz; i++ {
		var idx, w uint64
		if idx, data, err = labelblock.DecodeUvarint(data, "trace: bitset word index"); err != nil {
			return nil, nil, err
		}
		if w, data, err = labelblock.DecodeUvarint(data, "trace: bitset word"); err != nil {
			return nil, nil, err
		}
		if idx >= n {
			return nil, nil, labelblock.Corrupt(labelblock.ClassBadBlock, "trace: bitset word index %d out of range", idx)
		}
		words[idx] = w
	}
	return words, data, nil
}
