package interp_test

import (
	"fmt"
	"testing"

	"dynslice/internal/interp"
	"dynslice/internal/ir"
)

// ckSrc exercises calls, recursion, arrays, input, and output so a
// checkpoint must capture every piece of machine state faithfully.
const ckSrc = `
var acc = 0;
var arr[16];

func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}

func main() {
	var i = 0;
	while (i < 16) {
		arr[i] = fib(i % 9) + input();
		acc = acc + arr[i];
		i = i + 1;
	}
	print(acc);
	print(arr[7]);
	return acc;
}`

// eventLog flattens the event stream into comparable strings.
type eventLog struct {
	events []string
	ord    int64
}

func (l *eventLog) Block(b *ir.Block) {
	l.events = append(l.events, fmt.Sprintf("B%d@%d", b.ID, l.ord))
	l.ord++
}
func (l *eventLog) Stmt(s *ir.Stmt, uses, defs []int64) {
	l.events = append(l.events, fmt.Sprintf("S%d u%v d%v", s.ID, uses, defs))
}
func (l *eventLog) RegionDef(s *ir.Stmt, start, length int64) {
	l.events = append(l.events, fmt.Sprintf("R%d %d+%d", s.ID, start, length))
}
func (l *eventLog) End() { l.events = append(l.events, "END") }

func runWithLog(t *testing.T, p *ir.Program, every int64, input ...int64) (*interp.Result, *eventLog) {
	t.Helper()
	log := &eventLog{}
	res, err := interp.Run(p, interp.Options{Input: input, Sink: log, CheckpointEvery: every})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, log
}

func TestCheckpointCapture(t *testing.T) {
	p := compile(t, ckSrc)
	input := []int64{3, 1, 4, 1, 5}
	res, _ := runWithLog(t, p, 8, input...)
	if len(res.Checkpoints) == 0 {
		t.Fatal("no checkpoints captured")
	}
	prev := int64(0)
	for _, cp := range res.Checkpoints {
		if cp.Ord <= prev && prev != 0 {
			t.Fatalf("checkpoint ordinals not increasing: %d after %d", cp.Ord, prev)
		}
		if cp.Ord >= res.BlockExecs {
			t.Fatalf("checkpoint ordinal %d past end %d", cp.Ord, res.BlockExecs)
		}
		prev = cp.Ord
	}
	// Disabled capture stays empty.
	res2, _ := runWithLog(t, p, 0, input...)
	if len(res2.Checkpoints) != 0 {
		t.Fatalf("checkpoints captured with CheckpointEvery=0: %d", len(res2.Checkpoints))
	}
}

// TestResumeRegeneratesSuffix replays every checkpoint to the end and
// checks the regenerated events are byte-identical to the recorded
// suffix of the original stream.
func TestResumeRegeneratesSuffix(t *testing.T) {
	p := compile(t, ckSrc)
	input := []int64{3, 1, 4, 1, 5}
	res, full := runWithLog(t, p, 8, input...)

	// Index of the first event of each block ordinal in the full log.
	blockAt := map[int64]int{}
	ord := int64(0)
	for i, e := range full.events {
		if e[0] == 'B' {
			blockAt[ord] = i
			ord++
		}
	}

	cps := append([]*interp.Checkpoint{nil}, res.Checkpoints...)
	for _, cp := range cps {
		start := int64(0)
		if cp != nil {
			start = cp.Ord
		}
		log := &eventLog{ord: start}
		rres, err := interp.Resume(p, cp, interp.ResumeOptions{
			Input: input, Sink: log, StartOrd: start,
		})
		if err != nil {
			t.Fatalf("resume @%d: %v", start, err)
		}
		if rres.Stopped {
			t.Fatalf("resume @%d: stopped before natural end", start)
		}
		want := full.events[blockAt[start]:]
		if len(log.events) != len(want) {
			t.Fatalf("resume @%d: %d events, want %d", start, len(log.events), len(want))
		}
		for i := range want {
			if log.events[i] != want[i] {
				t.Fatalf("resume @%d: event %d = %q, want %q", start, i, log.events[i], want[i])
			}
		}
		if rres.Steps != res.Steps || rres.BlockExecs != res.BlockExecs {
			t.Fatalf("resume @%d: counters steps=%d blocks=%d, want %d/%d",
				start, rres.Steps, rres.BlockExecs, res.Steps, res.BlockExecs)
		}
	}
}

// TestResumeWindow checks the [StartOrd, StopOrd) gating: only the
// window's events are delivered and the run halts at the stop ordinal.
func TestResumeWindow(t *testing.T) {
	p := compile(t, ckSrc)
	input := []int64{3, 1, 4, 1, 5}
	res, full := runWithLog(t, p, 8, input...)
	if res.BlockExecs < 30 {
		t.Fatalf("trace too short for a window test: %d blocks", res.BlockExecs)
	}

	var cp *interp.Checkpoint // nearest checkpoint at or before ord 10
	for _, c := range res.Checkpoints {
		if c.Ord <= 10 {
			cp = c
		}
	}
	log := &eventLog{ord: 10}
	rres, err := interp.Resume(p, cp, interp.ResumeOptions{
		Input: input, Sink: log, StartOrd: 10, StopOrd: 20,
	})
	if err != nil {
		t.Fatalf("resume window: %v", err)
	}
	if !rres.Stopped {
		t.Fatal("window resume did not report Stopped")
	}
	if rres.BlockExecs != 20 {
		t.Fatalf("window resume stopped at ordinal %d, want 20", rres.BlockExecs)
	}
	// Extract the window from the full stream: events from block 10's
	// Block record up to (excluding) block 20's.
	var want []string
	ord := int64(0)
	for _, e := range full.events {
		if e[0] == 'B' {
			ord++
		}
		// ord is now 1 + the ordinal of the block this event belongs to.
		if ord >= 11 && ord <= 20 {
			want = append(want, e)
		}
	}
	if len(log.events) != len(want) {
		t.Fatalf("window: %d events, want %d", len(log.events), len(want))
	}
	for i := range want {
		if log.events[i] != want[i] {
			t.Fatalf("window event %d = %q, want %q", i, log.events[i], want[i])
		}
	}
	// No End event inside a stopped window.
	for _, e := range log.events {
		if e == "END" {
			t.Fatal("window delivered End")
		}
	}
}

// TestCheckpointBudgetThins forces a tiny budget and checks capture
// degrades to sparser checkpoints instead of unbounded memory.
func TestCheckpointBudgetThins(t *testing.T) {
	p := compile(t, ckSrc)
	input := []int64{3, 1, 4, 1, 5}
	res, err := interp.Run(p, interp.Options{
		Input: input, CheckpointEvery: 2, CheckpointBudget: 1, // thin on every capture
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Checkpoints) != 1 {
		t.Fatalf("budget=1 retained %d checkpoints, want 1", len(res.Checkpoints))
	}
	// The survivor must still resume correctly.
	cp := res.Checkpoints[0]
	rres, err := interp.Resume(p, cp, interp.ResumeOptions{Input: input, StartOrd: cp.Ord})
	if err != nil {
		t.Fatalf("resume survivor: %v", err)
	}
	if rres.ReturnValue != res.ReturnValue || rres.Steps != res.Steps {
		t.Fatalf("survivor resume diverged: ret=%d steps=%d, want %d/%d",
			rres.ReturnValue, rres.Steps, res.ReturnValue, res.Steps)
	}
}

// TestResumeBeforeCheckpointRejected: a window starting before the
// checkpoint's ordinal cannot be served.
func TestResumeBeforeCheckpointRejected(t *testing.T) {
	p := compile(t, ckSrc)
	input := []int64{3}
	res, err := interp.Run(p, interp.Options{Input: input, CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) == 0 {
		t.Skip("no checkpoints")
	}
	cp := res.Checkpoints[len(res.Checkpoints)-1]
	if _, err := interp.Resume(p, cp, interp.ResumeOptions{Input: input, StartOrd: cp.Ord - 1}); err == nil {
		t.Fatal("resume before checkpoint ordinal succeeded")
	}
}
