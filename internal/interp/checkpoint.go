// Checkpoint capture and resumable re-execution. The interpreter is
// deterministic — same program, same input vector, same event stream —
// so a snapshot of the machine state at a block boundary is enough to
// regenerate any suffix of the trace on demand. The reexec slicing
// backend uses this to materialize trace segments without reading (or
// even keeping) the trace file: it resumes from the nearest checkpoint
// at or before the segment and collects the events of the segment's
// ordinal window.
package interp

import (
	"fmt"

	"dynslice/internal/ir"
	"dynslice/internal/trace"
)

// DefaultCheckpointBudget caps the total bytes retained across a run's
// checkpoints when Options.CheckpointBudget is 0. Exceeding the budget
// drops every other checkpoint and doubles the capture interval, so a
// long run degrades to sparser (never absent) resume points.
const DefaultCheckpointBudget int64 = 64 << 20

// Checkpoint is a resumable snapshot of the machine, taken immediately
// before a block execution. Ord is that block's execution ordinal (the
// same counting trace segment summaries use), so resuming from a
// checkpoint regenerates the event stream from ordinal Ord onward.
// A checkpoint holds deep copies of the mutable state and is safe to
// resume from concurrently; it is tied to the *ir.Program it was
// captured on.
type Checkpoint struct {
	Ord   int64 // block-execution ordinal about to run when captured
	Steps int64 // statement executions completed at capture

	block     *ir.Block
	mem       []int64
	watermark int64
	frames    []frame
	inPos     int
}

// memBytes approximates the checkpoint's retained size for budgeting.
func (cp *Checkpoint) memBytes() int64 {
	return int64(len(cp.mem))*8 + int64(len(cp.frames))*24 + 64
}

// ResumeOptions configures Resume.
type ResumeOptions struct {
	// Input must be the original run's input vector: determinism is what
	// makes the regenerated events identical to the recorded ones.
	Input []int64
	// MaxSteps is the absolute statement budget, counted from the start
	// of the original run (0 = DefaultMaxSteps). A checkpoint resumes
	// with its captured step count, so the same budget as the original
	// run can never fault where the original did not.
	MaxSteps int64
	// Sink receives the regenerated events. Delivery is gated at block
	// granularity: events of block ordinals < StartOrd are suppressed.
	Sink trace.Sink
	// StartOrd is the first block ordinal whose events are delivered.
	StartOrd int64
	// StopOrd halts execution before the block with this ordinal runs
	// (0 = run to the program's natural end). Result.Stopped reports
	// which way the run ended; Sink.End is only delivered on natural
	// termination.
	StopOrd int64
}

// Resume re-enters a deterministic execution from cp — or from the
// program's initial state when cp is nil — and delivers the trace
// events of block ordinals [StartOrd, StopOrd) to the sink. The
// returned Result carries absolute counters (Steps and BlockExecs
// include everything before the checkpoint); Output holds only values
// printed after the resume point.
func Resume(p *ir.Program, cp *Checkpoint, o ResumeOptions) (*Result, error) {
	m := &machine{
		p:        p,
		input:    o.Input,
		maxSteps: o.MaxSteps,
		stopOrd:  o.StopOrd,
	}
	if m.maxSteps == 0 {
		m.maxSteps = DefaultMaxSteps
	}
	sink := o.Sink
	if sink == nil {
		sink = nopSink{}
	}
	var b *ir.Block
	if cp == nil {
		m.watermark = GlobalBase + p.GlobalSize
		m.grow(m.watermark)
		mainBase := m.watermark
		m.watermark += p.Main.FrameSize
		m.grow(m.watermark)
		m.frames = append(m.frames, frame{fn: p.Main, base: mainBase})
		b = p.Main.Entry()
	} else {
		if o.StartOrd < cp.Ord {
			return nil, fmt.Errorf("interp: resume window starts at ordinal %d, before checkpoint ordinal %d", o.StartOrd, cp.Ord)
		}
		m.mem = append([]int64(nil), cp.mem...)
		m.watermark = cp.watermark
		m.frames = append([]frame(nil), cp.frames...)
		m.inPos = cp.inPos
		m.steps = cp.Steps
		m.blockEx = cp.Ord
		b = cp.block
	}
	m.emitFrom = o.StartOrd
	if m.blockEx >= m.emitFrom {
		m.sink = sink
	} else {
		m.sink = nopSink{}
		m.gated = sink
	}
	ret, err := m.run(b)
	if err != nil {
		return nil, err
	}
	if !m.stopped {
		m.sink.End()
	}
	return &Result{
		Output:      m.output,
		ReturnValue: ret,
		Steps:       m.steps,
		BlockExecs:  m.blockEx,
		Watermark:   m.watermark,
		Stopped:     m.stopped,
	}, nil
}

// capture appends a checkpoint for the block about to execute and
// enforces the byte budget by thinning: when over budget, every other
// checkpoint (counted from the newest, which is always kept) is
// dropped and the capture interval doubles.
func (m *machine) capture(b *ir.Block) {
	cp := &Checkpoint{
		Ord:       m.blockEx,
		Steps:     m.steps,
		block:     b,
		mem:       append([]int64(nil), m.mem[:m.watermark]...),
		watermark: m.watermark,
		frames:    append([]frame(nil), m.frames...),
		inPos:     m.inPos,
	}
	m.cks = append(m.cks, cp)
	m.ckBytes += cp.memBytes()
	for m.ckBudget > 0 && m.ckBytes > m.ckBudget && len(m.cks) > 1 {
		kept := m.cks[:0]
		var bytes int64
		last := len(m.cks) - 1
		for i, c := range m.cks {
			if (last-i)%2 == 0 { // keep the newest and every other before it
				kept = append(kept, c)
				bytes += c.memBytes()
			}
		}
		m.cks = kept
		m.ckBytes = bytes
		m.ckEvery *= 2
	}
}
