package interp_test

import (
	"testing"

	"dynslice/internal/alias"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/lang"
)

// compile builds the full front-end pipeline for a source string.
func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Lower(ast)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	p.Finalize()
	alias.Run(p)
	return p
}

func run(t *testing.T, src string, input ...int64) *interp.Result {
	t.Helper()
	p := compile(t, src)
	res, err := interp.Run(p, interp.Options{Input: input})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func wantOutput(t *testing.T, res *interp.Result, want ...int64) {
	t.Helper()
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output = %v, want %v", res.Output, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
		func main() {
			var x = 6;
			var y = 7;
			print(x * y);
			print(x + y * 2);
			print((x + y) * 2);
			print(100 / 7);
			print(100 % 7);
			print(-x);
			print(!x);
			print(!0);
		}
	`)
	wantOutput(t, res, 42, 20, 26, 14, 2, -6, 0, 1)
}

func TestDivByZeroIsZero(t *testing.T) {
	res := run(t, `
		func main() {
			var z = 0;
			print(5 / z);
			print(5 % z);
		}
	`)
	wantOutput(t, res, 0, 0)
}

func TestControlFlow(t *testing.T) {
	res := run(t, `
		func main() {
			var i = 0;
			var sum = 0;
			while (i < 10) {
				if (i % 2 == 0) {
					sum = sum + i;
				} else {
					sum = sum - 1;
				}
				i = i + 1;
			}
			print(sum);
			for (var j = 0; j < 5; j = j + 1) {
				if (j == 3) { continue; }
				if (j == 4) { break; }
				print(j);
			}
		}
	`)
	wantOutput(t, res, 15, 0, 1, 2)
}

func TestFunctionsAndRecursion(t *testing.T) {
	res := run(t, `
		func fib(n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		func main() {
			print(fib(10));
		}
	`)
	wantOutput(t, res, 55)
}

func TestArraysAndPointers(t *testing.T) {
	res := run(t, `
		var g;
		func bump(p, by) {
			*p = *p + by;
			return *p;
		}
		func main() {
			var a[5];
			var i = 0;
			while (i < 5) {
				a[i] = i * i;
				i = i + 1;
			}
			print(a[4]);
			var q = &a[2];
			*q = 100;
			print(a[2]);
			g = 5;
			print(bump(&g, 37));
			print(g);
			// Pointer arithmetic across array cells.
			var r = &a[0];
			r = r + 3;
			print(*r);
		}
	`)
	wantOutput(t, res, 16, 100, 42, 42, 9)
}

func TestInputAndGlobals(t *testing.T) {
	res := run(t, `
		var total = 0;
		func main() {
			var n = input();
			var i = 0;
			while (i < n) {
				total = total + input();
				i = i + 1;
			}
			print(total);
			print(input()); // exhausted -> 0
		}
	`, 3, 10, 20, 30)
	wantOutput(t, res, 60, 0)
}

func TestShortCircuitOperatorsEvaluateBothSides(t *testing.T) {
	// && and || are defined to evaluate both operands; division by zero
	// yields zero, so this is well defined.
	res := run(t, `
		func main() {
			var z = 0;
			if (z != 0 && 10 / z > 1) { print(1); } else { print(2); }
			if (z == 0 || 10 / z > 1) { print(3); } else { print(4); }
		}
	`)
	wantOutput(t, res, 2, 3)
}

func TestRuntimeErrors(t *testing.T) {
	p := compile(t, `
		func main() {
			var a[3];
			var i = 5;
			a[i] = 1;
		}
	`)
	if _, err := interp.Run(p, interp.Options{}); err == nil {
		t.Fatal("expected index-out-of-range error")
	}

	p2 := compile(t, `
		func main() {
			var p = 0;
			print(*p);
		}
	`)
	if _, err := interp.Run(p2, interp.Options{}); err == nil {
		t.Fatal("expected invalid-address error (null guard)")
	}

	p3 := compile(t, `
		func main() {
			var i = 0;
			while (1) { i = i + 1; }
		}
	`)
	if _, err := interp.Run(p3, interp.Options{MaxSteps: 1000}); err == nil {
		t.Fatal("expected step-limit error")
	}
}

func TestMainReturnValue(t *testing.T) {
	res := run(t, `
		func main() {
			return 7;
		}
	`)
	if res.ReturnValue != 7 {
		t.Fatalf("return value = %d, want 7", res.ReturnValue)
	}
}

func TestCallsAreHoistedLeftToRight(t *testing.T) {
	res := run(t, `
		var log = 0;
		func mark(k) {
			log = log * 10 + k;
			return k;
		}
		func main() {
			var x = mark(1) + mark(2) * mark(3);
			print(x);
			print(log);
		}
	`)
	wantOutput(t, res, 7, 123)
}

func TestEvaluationOrderLeftToRight(t *testing.T) {
	// Within an expression, loads happen left to right; the trace (and
	// therefore the dependence structure) relies on this order.
	res := run(t, `
		var log = 0;
		func main() {
			var a = 1;
			var b = 2;
			// a is read before b; verify via aliasing side channel.
			var p = &a;
			*p = 10;
			print(a + b);
		}
	`)
	wantOutput(t, res, 12)
}

func TestDeepRecursionFrames(t *testing.T) {
	res := run(t, `
		func down(n) {
			var local = n * 2;
			if (n == 0) { return 0; }
			return local + down(n - 1);
		}
		func main() {
			print(down(200));
		}
	`)
	// sum of 2k for k=1..200 = 200*201 = 40200.
	wantOutput(t, res, 40200)
	if res.Watermark < 200*3 {
		t.Errorf("fresh frames expected to grow the address space, watermark=%d", res.Watermark)
	}
}

func TestGlobalInitOrder(t *testing.T) {
	res := run(t, `
		var a = 5;
		var b = a + 1;   // initializers run in declaration order
		func main() {
			print(b);
		}
	`)
	wantOutput(t, res, 6)
}

func TestInputConsumptionOrder(t *testing.T) {
	res := run(t, `
		func main() {
			print(input() * 100 + input() * 10 + input());
		}
	`, 1, 2, 3)
	wantOutput(t, res, 123)
}

func TestArrayRedeclarationZeroes(t *testing.T) {
	res := run(t, `
		func main() {
			var i = 0;
			var total = 0;
			while (i < 3) {
				var a[2];
				total = total + a[0];  // always zero: decl re-zeroes
				a[0] = 99;
				i = i + 1;
			}
			print(total);
		}
	`)
	wantOutput(t, res, 0)
}

func TestDanglingFramePointerFaults(t *testing.T) {
	// A pointer into a dead frame points at a never-reused address; the
	// memory still exists (frames are never reused), so the read sees the
	// dead frame's value — documenting the fresh-frame model.
	res := run(t, `
		var keep = 0;
		func leak() {
			var local = 77;
			keep = &local;
			return 0;
		}
		func main() {
			leak();
			print(*keep);
		}
	`)
	wantOutput(t, res, 77)
}

func TestNegativeModuloSemantics(t *testing.T) {
	res := run(t, `
		func main() {
			print((0 - 7) % 3);
			print(7 % (0 - 3));
		}
	`)
	wantOutput(t, res, -1, 1)
}
