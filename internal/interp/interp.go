// Package interp executes IR programs while emitting an execution trace:
// one event per basic-block execution and one event per statement
// execution carrying the dynamic addresses of each use slot and def slot.
// It is the reproduction's substitute for the paper's Trimaran-based
// instrumentation.
//
// Memory model: a flat, growing address space of 64-bit words. Globals
// occupy a fixed segment starting at GlobalBase (addresses below GlobalBase
// act as a null-pointer guard). Every call allocates a fresh frame at the
// high-water mark; frames are never reused, so a stale address can never
// masquerade as a new variable's definition.
//
// Defined semantics chosen to keep expression evaluation control-flow free
// (which in turn keeps use-slot order static): && and || evaluate both
// operands; division or modulo by zero yields zero; input() past the end of
// the input vector yields zero.
package interp

import (
	"fmt"

	"dynslice/internal/ir"
	"dynslice/internal/lang"
	"dynslice/internal/telemetry"
	"dynslice/internal/trace"
)

// GlobalBase is the address of the first global; lower addresses are
// invalid so that zero-valued (uninitialized) pointers fault on use.
const GlobalBase int64 = 16

// DefaultMaxSteps bounds statement executions when Options.MaxSteps is 0.
const DefaultMaxSteps int64 = 200_000_000

// Options configures a run.
type Options struct {
	Input     []int64             // values consumed by input()
	MaxSteps  int64               // statement execution budget (0 = DefaultMaxSteps)
	Sink      trace.Sink          // optional trace consumer
	Telemetry *telemetry.Registry // optional metrics (nil = off, zero cost)
	// CheckpointEvery captures a resumable machine snapshot every N
	// block executions (0 = no checkpoints). Snapshots land in
	// Result.Checkpoints, ordered by ordinal, and feed Resume.
	CheckpointEvery int64
	// CheckpointBudget caps the bytes retained across checkpoints
	// (0 = DefaultCheckpointBudget); see Checkpoint.
	CheckpointBudget int64
}

// Result summarizes a completed run.
type Result struct {
	Output      []int64
	ReturnValue int64 // main's return value
	Steps       int64 // statement executions
	BlockExecs  int64 // basic-block executions (== full-graph timestamps)
	Watermark   int64 // final address-space size in words
	Checkpoints []*Checkpoint
	// Stopped marks a Resume run halted by StopOrd before natural
	// termination (always false for Run).
	Stopped bool
}

// RuntimeError is an execution fault with a source position.
type RuntimeError struct {
	Pos lang.Pos
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string { return fmt.Sprintf("runtime error at %s: %s", e.Pos, e.Msg) }

type frame struct {
	fn   *ir.Func
	base int64
	cont *ir.Block // caller block to resume after return
}

type machine struct {
	p         *ir.Program
	mem       []int64
	watermark int64
	frames    []frame
	sink      trace.Sink
	input     []int64
	inPos     int
	output    []int64
	steps     int64
	maxSteps  int64
	blockEx   int64
	stepAbort bool    // run ended by the step-limit fault
	uses      []int64 // per-statement scratch
	defs      [1]int64

	// Checkpoint capture (Run with Options.CheckpointEvery > 0).
	ckEvery  int64
	ckNext   int64
	ckBudget int64
	ckBytes  int64
	cks      []*Checkpoint

	// Windowed resume (Resume): suppress events before emitFrom, halt
	// before stopOrd.
	emitFrom int64
	gated    trace.Sink // real sink to swap in once blockEx reaches emitFrom
	stopOrd  int64
	stopped  bool
}

// Run executes the program's main function.
func Run(p *ir.Program, opts Options) (*Result, error) {
	m := &machine{
		p:        p,
		sink:     opts.Sink,
		input:    opts.Input,
		maxSteps: opts.MaxSteps,
	}
	if m.maxSteps == 0 {
		m.maxSteps = DefaultMaxSteps
	}
	if m.sink == nil {
		m.sink = nopSink{}
	}
	if opts.CheckpointEvery > 0 {
		m.ckEvery = opts.CheckpointEvery
		m.ckNext = opts.CheckpointEvery
		m.ckBudget = opts.CheckpointBudget
		if m.ckBudget == 0 {
			m.ckBudget = DefaultCheckpointBudget
		}
	}
	m.watermark = GlobalBase + p.GlobalSize
	m.grow(m.watermark)

	// Frame for main.
	mainBase := m.watermark
	m.watermark += p.Main.FrameSize
	m.grow(m.watermark)
	m.frames = append(m.frames, frame{fn: p.Main, base: mainBase})

	ret, err := m.run(p.Main.Entry())
	// Telemetry is flushed once from accumulated machine state, so the
	// per-statement execution loop carries no instrumentation at all.
	if reg := opts.Telemetry; reg != nil {
		reg.Counter("interp.runs").Inc()
		reg.Counter("interp.steps").Add(m.steps)
		reg.Counter("interp.blocks").Add(m.blockEx)
		reg.Counter("interp.input_reads").Add(int64(m.inPos))
		reg.Counter("interp.outputs").Add(int64(len(m.output)))
		if err != nil {
			if m.stepAbort {
				reg.Counter("interp.err.max_steps").Inc()
			} else {
				reg.Counter("interp.err.runtime_fault").Inc()
			}
		}
	}
	if err != nil {
		return nil, err
	}
	m.sink.End()
	return &Result{
		Output:      m.output,
		ReturnValue: ret,
		Steps:       m.steps,
		BlockExecs:  m.blockEx,
		Watermark:   m.watermark,
		Checkpoints: m.cks,
	}, nil
}

type nopSink struct{}

func (nopSink) Block(*ir.Block)                  {}
func (nopSink) Stmt(*ir.Stmt, []int64, []int64)  {}
func (nopSink) RegionDef(*ir.Stmt, int64, int64) {}
func (nopSink) End()                             {}

func (m *machine) grow(n int64) {
	for int64(len(m.mem)) < n {
		m.mem = append(m.mem, make([]int64, n-int64(len(m.mem)))...)
	}
}

func (m *machine) cur() *frame { return &m.frames[len(m.frames)-1] }

func (m *machine) addrOf(o *ir.Object) int64 {
	if o.Fn == nil {
		return GlobalBase + o.Off
	}
	return m.cur().base + o.Off
}

func (m *machine) fault(s *ir.Stmt, format string, args ...interface{}) error {
	return &RuntimeError{Pos: s.Pos, Msg: fmt.Sprintf(format, args...)}
}

func (m *machine) run(b *ir.Block) (int64, error) {
	for {
		if m.stopOrd > 0 && m.blockEx >= m.stopOrd {
			m.stopped = true
			return 0, nil
		}
		if m.gated != nil && m.blockEx >= m.emitFrom {
			m.sink = m.gated
			m.gated = nil
		}
		if m.ckEvery > 0 && m.blockEx == m.ckNext {
			m.capture(b)
			m.ckNext = m.blockEx + m.ckEvery
		}
		m.sink.Block(b)
		m.blockEx++
		next, ret, halted, err := m.execBlock(b)
		if err != nil {
			return 0, err
		}
		if halted {
			return ret, nil
		}
		b = next
	}
}

// execBlock executes all statements of b and returns the next block.
func (m *machine) execBlock(b *ir.Block) (next *ir.Block, ret int64, halted bool, err error) {
	for _, s := range b.Stmts {
		m.steps++
		if m.steps > m.maxSteps {
			m.stepAbort = true
			return nil, 0, false, m.fault(s, "step limit of %d exceeded", m.maxSteps)
		}
		m.uses = m.uses[:0]
		switch s.Op {
		case ir.OpAssign:
			v, err := m.eval(s, s.Rhs)
			if err != nil {
				return nil, 0, false, err
			}
			var addr int64
			switch s.Lhs {
			case ir.LVar:
				addr = m.addrOf(m.p.Obj(s.LhsObj))
			case ir.LIndex:
				idx, err := m.eval(s, s.LhsIdx)
				if err != nil {
					return nil, 0, false, err
				}
				o := m.p.Obj(s.LhsObj)
				if idx < 0 || idx >= o.Size {
					return nil, 0, false, m.fault(s, "index %d out of range for %s[%d]", idx, o.Name, o.Size)
				}
				addr = m.addrOf(o) + idx
			case ir.LDeref:
				a, err := m.eval(s, s.LhsAddr)
				if err != nil {
					return nil, 0, false, err
				}
				if a < GlobalBase || a >= m.watermark {
					return nil, 0, false, m.fault(s, "store through invalid address %d", a)
				}
				addr = a
			}
			m.mem[addr] = v
			m.defs[0] = addr
			m.sink.Stmt(s, m.uses, m.defs[:1])

		case ir.OpDeclArr:
			o := m.p.Obj(s.Obj)
			start := m.addrOf(o)
			for a := start; a < start+o.Size; a++ {
				m.mem[a] = 0
			}
			m.sink.RegionDef(s, start, o.Size)

		case ir.OpPrint:
			v, err := m.eval(s, s.Rhs)
			if err != nil {
				return nil, 0, false, err
			}
			m.output = append(m.output, v)
			m.sink.Stmt(s, m.uses, nil)

		case ir.OpCond:
			v, err := m.eval(s, s.Rhs)
			if err != nil {
				return nil, 0, false, err
			}
			m.sink.Stmt(s, m.uses, nil)
			if v != 0 {
				return b.Succs[0], 0, false, nil
			}
			return b.Succs[1], 0, false, nil

		case ir.OpCall:
			callee := s.Callee
			nArgs := len(s.Args)
			vals := make([]int64, nArgs)
			for i, a := range s.Args {
				v, err := m.eval(s, a)
				if err != nil {
					return nil, 0, false, err
				}
				vals[i] = v
			}
			base := m.watermark
			m.watermark += callee.FrameSize
			m.grow(m.watermark)
			defs := make([]int64, nArgs)
			for i, prm := range callee.Params {
				addr := base + prm.Off
				m.mem[addr] = vals[i]
				defs[i] = addr
			}
			m.sink.Stmt(s, m.uses, defs)
			m.frames = append(m.frames, frame{fn: callee, base: base, cont: b.Succs[0]})
			return callee.Entry(), 0, false, nil

		case ir.OpReturn:
			v, err := m.eval(s, s.Rhs)
			if err != nil {
				return nil, 0, false, err
			}
			var retAddr int64
			if len(m.frames) > 1 {
				caller := &m.frames[len(m.frames)-2]
				retAddr = caller.base + caller.fn.Ret.Off
			} else {
				retAddr = m.cur().base + m.cur().fn.Ret.Off
			}
			m.mem[retAddr] = v
			m.defs[0] = retAddr
			m.sink.Stmt(s, m.uses, m.defs[:1])
			popped := m.frames[len(m.frames)-1]
			m.frames = m.frames[:len(m.frames)-1]
			if len(m.frames) == 0 {
				return nil, v, true, nil
			}
			return popped.cont, 0, false, nil
		}
	}
	// Fall through: empty or unterminated block with a single successor.
	return b.Succs[0], 0, false, nil
}

// eval evaluates an expression, appending the address of every memory read
// to m.uses in evaluation order (matching the statement's use slots).
func (m *machine) eval(s *ir.Stmt, e ir.Expr) (int64, error) {
	switch x := e.(type) {
	case *ir.EConst:
		return x.Val, nil
	case *ir.ELoad:
		addr := m.addrOf(m.p.Obj(x.Obj))
		m.uses = append(m.uses, addr)
		return m.mem[addr], nil
	case *ir.ELoadIdx:
		idx, err := m.eval(s, x.Idx)
		if err != nil {
			return 0, err
		}
		o := m.p.Obj(x.Obj)
		if idx < 0 || idx >= o.Size {
			return 0, m.fault(s, "index %d out of range for %s[%d]", idx, o.Name, o.Size)
		}
		addr := m.addrOf(o) + idx
		m.uses = append(m.uses, addr)
		return m.mem[addr], nil
	case *ir.ELoadPtr:
		a, err := m.eval(s, x.Addr)
		if err != nil {
			return 0, err
		}
		if a < GlobalBase || a >= m.watermark {
			return 0, m.fault(s, "load through invalid address %d", a)
		}
		m.uses = append(m.uses, a)
		return m.mem[a], nil
	case *ir.EAddr:
		o := m.p.Obj(x.Obj)
		if x.Idx == nil {
			return m.addrOf(o), nil
		}
		idx, err := m.eval(s, x.Idx)
		if err != nil {
			return 0, err
		}
		if idx < 0 || idx >= o.Size {
			return 0, m.fault(s, "index %d out of range for &%s[%d]", idx, o.Name, o.Size)
		}
		return m.addrOf(o) + idx, nil
	case *ir.EUnary:
		v, err := m.eval(s, x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case lang.Minus:
			return -v, nil
		case lang.Not:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *ir.EBinary:
		a, err := m.eval(s, x.X)
		if err != nil {
			return 0, err
		}
		b, err := m.eval(s, x.Y)
		if err != nil {
			return 0, err
		}
		return applyBinary(x.Op, a, b), nil
	case *ir.EInput:
		if m.inPos < len(m.input) {
			v := m.input[m.inPos]
			m.inPos++
			return v, nil
		}
		return 0, nil
	}
	return 0, m.fault(s, "internal: bad expression %T", e)
}

func applyBinary(op lang.Kind, a, b int64) int64 {
	bool2int := func(c bool) int64 {
		if c {
			return 1
		}
		return 0
	}
	switch op {
	case lang.Plus:
		return a + b
	case lang.Minus:
		return a - b
	case lang.Star:
		return a * b
	case lang.Slash:
		if b == 0 {
			return 0
		}
		return a / b
	case lang.Percent:
		if b == 0 {
			return 0
		}
		return a % b
	case lang.Lt:
		return bool2int(a < b)
	case lang.Le:
		return bool2int(a <= b)
	case lang.Gt:
		return bool2int(a > b)
	case lang.Ge:
		return bool2int(a >= b)
	case lang.EqEq:
		return bool2int(a == b)
	case lang.NotEq:
		return bool2int(a != b)
	case lang.AndAnd:
		return bool2int(a != 0 && b != 0)
	case lang.OrOr:
		return bool2int(a != 0 || b != 0)
	}
	return 0
}
