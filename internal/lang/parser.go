package lang

import "strconv"

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete MiniC program.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	for !p.at(EOF) {
		switch {
		case p.at(KwVar):
			d, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, d)
		case p.at(KwFunc):
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, errf(p.cur().Pos, "expected 'var' or 'func' at top level, got %s", p.cur().Kind)
		}
	}
	if err := checkProgram(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *Parser) cur() Token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	last := Pos{Line: 1, Col: 1}
	if len(p.toks) > 0 {
		last = p.toks[len(p.toks)-1].Pos
	}
	return Token{Kind: EOF, Pos: last}
}

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *Parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, got %s", k, p.cur().Kind)
	}
	return p.next(), nil
}

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

// parseVarDecl parses: var x; | var x = expr; | var a[N];
func (p *Parser) parseVarDecl() (*VarDecl, error) {
	kw, err := p.expect(KwVar)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Pos_: kw.Pos, Name: name.Text}
	if p.accept(LBracket) {
		n, err := p.expect(NUMBER)
		if err != nil {
			return nil, err
		}
		size, perr := strconv.ParseInt(n.Text, 10, 64)
		if perr != nil || size <= 0 {
			return nil, errf(n.Pos, "invalid array size %q", n.Text)
		}
		d.Size = size
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
	} else if p.accept(Assign) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	kw, err := p.expect(KwFunc)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{Pos_: kw.Pos, Name: name.Text}
	if !p.at(RParen) {
		for {
			id, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, id.Text)
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos_: lb.Pos}
	for !p.at(RBrace) && !p.at(EOF) {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	if _, err := p.expect(RBrace); err != nil {
		return nil, err
	}
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case KwVar:
		return p.parseVarDecl()
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwFor:
		return p.parseFor()
	case KwReturn:
		kw := p.next()
		s := &ReturnStmt{Pos_: kw.Pos}
		if !p.at(Semicolon) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Value = e
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return s, nil
	case KwBreak:
		kw := p.next()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos_: kw.Pos}, nil
	case KwContinue:
		kw := p.next()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos_: kw.Pos}, nil
	case KwPrint:
		kw := p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &PrintStmt{Pos_: kw.Pos, Arg: e}, nil
	case LBrace:
		return p.parseBlock()
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSimpleStmt parses an assignment or a call statement without the
// trailing semicolon (shared between statement position and for-headers).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	switch p.cur().Kind {
	case Star:
		star := p.next()
		addr, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Assign); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos_: star.Pos, Deref: true, Addr: addr, Rhs: rhs}, nil
	case IDENT:
		id := p.next()
		switch p.cur().Kind {
		case LBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			if _, err := p.expect(Assign); err != nil {
				return nil, err
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Pos_: id.Pos, Name: id.Text, Index: idx, Rhs: rhs}, nil
		case Assign:
			p.next()
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Pos_: id.Pos, Name: id.Text, Rhs: rhs}, nil
		case LParen:
			call, err := p.parseCallAfterName(id)
			if err != nil {
				return nil, err
			}
			return &ExprStmt{Pos_: id.Pos, Call: call}, nil
		}
		return nil, errf(p.cur().Pos, "expected '=', '[', or '(' after identifier %q", id.Text)
	}
	return nil, errf(p.cur().Pos, "expected statement, got %s", p.cur().Kind)
}

func (p *Parser) parseIf() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos_: kw.Pos, Cond: cond, Then: then}
	if p.accept(KwElse) {
		if p.at(KwIf) {
			elseIf, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = elseIf
		} else {
			blk, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = blk
		}
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos_: kw.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos_: kw.Pos}
	if !p.at(Semicolon) {
		if p.at(KwVar) {
			d, err := p.parseVarDecl() // consumes the ';'
			if err != nil {
				return nil, err
			}
			s.Init = d
		} else {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
			if _, err := p.expect(Semicolon); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.at(Semicolon) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if !p.at(RParen) {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// ---- Expressions (precedence climbing) ----

var binPrec = map[Kind]int{
	OrOr:   1,
	AndAnd: 2,
	EqEq:   3, NotEq: 3,
	Lt: 4, Le: 4, Gt: 4, Ge: 4,
	Plus: 5, Minus: 5,
	Star: 6, Slash: 6, Percent: 6,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Pos_: opTok.Pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case Minus, Not:
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos_: op.Pos, Op: op.Kind, X: x}, nil
	case Star:
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &DerefExpr{Pos_: op.Pos, Addr: x}, nil
	case Amp:
		op := p.next()
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		a := &AddrOfExpr{Pos_: op.Pos, Name: id.Text}
		if p.accept(LBracket) {
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			a.Index = idx
		}
		return a, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case NUMBER:
		t := p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "invalid number %q", t.Text)
		}
		return &NumLit{Pos_: t.Pos, Value: v}, nil
	case KwInput:
		t := p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return &InputExpr{Pos_: t.Pos}, nil
	case IDENT:
		id := p.next()
		switch p.cur().Kind {
		case LBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos_: id.Pos, Array: id.Text, Index: idx}, nil
		case LParen:
			return p.parseCallAfterName(id)
		}
		return &VarRef{Pos_: id.Pos, Name: id.Text}, nil
	case LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(p.cur().Pos, "expected expression, got %s", p.cur().Kind)
}

func (p *Parser) parseCallAfterName(id Token) (*CallExpr, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	c := &CallExpr{Pos_: id.Pos, Callee: id.Text}
	if !p.at(RParen) {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, a)
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	return c, nil
}
