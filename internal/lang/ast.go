package lang

// This file defines the abstract syntax tree produced by the parser.
// The tree is deliberately small: expressions, statements, declarations.
// Lowering to the analyzable/executable IR happens in package ir.

// Node is implemented by all AST nodes and reports the source position.
type Node interface {
	Position() Pos
}

// ---- Expressions ----

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// NumLit is an integer literal.
type NumLit struct {
	Pos_  Pos
	Value int64
}

// VarRef is a reference to a named scalar or array variable.
type VarRef struct {
	Pos_ Pos
	Name string
}

// IndexExpr is a[i].
type IndexExpr struct {
	Pos_  Pos
	Array string
	Index Expr
}

// DerefExpr is *e: read from the address computed by e.
type DerefExpr struct {
	Pos_ Pos
	Addr Expr
}

// AddrOfExpr is &x or &a[i]: the address of a variable or array element.
type AddrOfExpr struct {
	Pos_  Pos
	Name  string
	Index Expr // nil for &x; non-nil for &a[i]
}

// UnaryExpr is -e or !e.
type UnaryExpr struct {
	Pos_ Pos
	Op   Kind // Minus or Not
	X    Expr
}

// BinaryExpr is a binary operation. && and || are short-circuiting.
type BinaryExpr struct {
	Pos_ Pos
	Op   Kind
	X, Y Expr
}

// CallExpr is f(args) used as a value.
type CallExpr struct {
	Pos_   Pos
	Callee string
	Args   []Expr
}

// InputExpr is input(): reads the next value from the program input vector.
type InputExpr struct {
	Pos_ Pos
}

func (e *NumLit) Position() Pos     { return e.Pos_ }
func (e *VarRef) Position() Pos     { return e.Pos_ }
func (e *IndexExpr) Position() Pos  { return e.Pos_ }
func (e *DerefExpr) Position() Pos  { return e.Pos_ }
func (e *AddrOfExpr) Position() Pos { return e.Pos_ }
func (e *UnaryExpr) Position() Pos  { return e.Pos_ }
func (e *BinaryExpr) Position() Pos { return e.Pos_ }
func (e *CallExpr) Position() Pos   { return e.Pos_ }
func (e *InputExpr) Position() Pos  { return e.Pos_ }

func (*NumLit) exprNode()     {}
func (*VarRef) exprNode()     {}
func (*IndexExpr) exprNode()  {}
func (*DerefExpr) exprNode()  {}
func (*AddrOfExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CallExpr) exprNode()   {}
func (*InputExpr) exprNode()  {}

// ---- Statements ----

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// VarDecl declares a scalar (Size == 0) or an array (Size > 0). A scalar may
// carry an initializer expression; arrays are zero-initialized. A VarDecl is
// executable: it defines the variable (scalars with the initializer or 0).
type VarDecl struct {
	Pos_ Pos
	Name string
	Size int64 // 0 for scalar, >0 for array length
	Init Expr  // optional, scalars only
}

// AssignStmt stores Rhs into a scalar (Index==nil, Deref==false), an array
// element (Index!=nil), or through a pointer (Deref==true, Target holds the
// pointer-valued expression's variable name is not enough: Addr holds it).
type AssignStmt struct {
	Pos_  Pos
	Name  string // target variable for x= / a[i]= forms
	Index Expr   // non-nil for a[i] = ...
	Deref bool   // true for *e = ...
	Addr  Expr   // pointer expression for *e = ...
	Rhs   Expr
}

// IfStmt is a two-way conditional; Else may be nil.
type IfStmt struct {
	Pos_ Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt or *IfStmt or nil
}

// WhileStmt is a pre-test loop.
type WhileStmt struct {
	Pos_ Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is for (init; cond; post) { body }. Init and Post are optional
// simple statements; Cond is optional (nil means true).
type ForStmt struct {
	Pos_ Pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body *BlockStmt
}

// ReturnStmt returns from the current function, with an optional value.
type ReturnStmt struct {
	Pos_  Pos
	Value Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos_ Pos }

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct{ Pos_ Pos }

// PrintStmt appends the value of its argument to the program output.
type PrintStmt struct {
	Pos_ Pos
	Arg  Expr
}

// ExprStmt is a call used for effect: f(args);
type ExprStmt struct {
	Pos_ Pos
	Call *CallExpr
}

// BlockStmt is a brace-delimited statement sequence.
type BlockStmt struct {
	Pos_  Pos
	Stmts []Stmt
}

func (s *VarDecl) Position() Pos      { return s.Pos_ }
func (s *AssignStmt) Position() Pos   { return s.Pos_ }
func (s *IfStmt) Position() Pos       { return s.Pos_ }
func (s *WhileStmt) Position() Pos    { return s.Pos_ }
func (s *ForStmt) Position() Pos      { return s.Pos_ }
func (s *ReturnStmt) Position() Pos   { return s.Pos_ }
func (s *BreakStmt) Position() Pos    { return s.Pos_ }
func (s *ContinueStmt) Position() Pos { return s.Pos_ }
func (s *PrintStmt) Position() Pos    { return s.Pos_ }
func (s *ExprStmt) Position() Pos     { return s.Pos_ }
func (s *BlockStmt) Position() Pos    { return s.Pos_ }

func (*VarDecl) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*PrintStmt) stmtNode()    {}
func (*ExprStmt) stmtNode()     {}
func (*BlockStmt) stmtNode()    {}

// ---- Top level ----

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos_   Pos
	Name   string
	Params []string
	Body   *BlockStmt
}

// Position reports the source position of the declaration.
func (f *FuncDecl) Position() Pos { return f.Pos_ }

// Program is a parsed compilation unit: globals and functions. Execution
// begins at the function named "main".
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}
