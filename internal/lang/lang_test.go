package lang

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize(`func main() { var x = 1 + 2; // comment
		print(x <= 3 && x != 4 || !0); }`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []Kind{
		KwFunc, IDENT, LParen, RParen, LBrace,
		KwVar, IDENT, Assign, NUMBER, Plus, NUMBER, Semicolon,
		KwPrint, LParen, IDENT, Le, NUMBER, AndAnd, IDENT, NotEq, NUMBER, OrOr, Not, NUMBER, RParen, Semicolon,
		RBrace,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("var x;\n  var y;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token at %v, want 1:1", toks[0].Pos)
	}
	if toks[3].Pos.Line != 2 || toks[3].Pos.Col != 3 {
		t.Errorf("second var at %v, want 2:3", toks[3].Pos)
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{"@", "var x | y;", "#"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParsePrecedence(t *testing.T) {
	p := mustParse(t, `func main() { var x = 1 + 2 * 3; print(x); }`)
	body := p.Func("main").Body.Stmts
	decl := body[0].(*VarDecl)
	bin := decl.Init.(*BinaryExpr)
	if bin.Op != Plus {
		t.Fatalf("top op = %v, want +", bin.Op)
	}
	if inner, ok := bin.Y.(*BinaryExpr); !ok || inner.Op != Star {
		t.Fatalf("rhs should be a multiplication, got %T", bin.Y)
	}
}

func TestParseElseIfChain(t *testing.T) {
	p := mustParse(t, `func main() {
		var x = 1;
		if (x == 1) { print(1); }
		else if (x == 2) { print(2); }
		else { print(3); }
	}`)
	ifs := p.Func("main").Body.Stmts[1].(*IfStmt)
	elseIf, ok := ifs.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else branch is %T, want *IfStmt", ifs.Else)
	}
	if _, ok := elseIf.Else.(*BlockStmt); !ok {
		t.Fatalf("final else is %T, want *BlockStmt", elseIf.Else)
	}
}

func TestParsePointersAndArrays(t *testing.T) {
	p := mustParse(t, `func main() {
		var a[4];
		var x = 0;
		var p = &x;
		var q = &a[2];
		*p = a[1] + *q;
		a[x] = *p;
	}`)
	stmts := p.Func("main").Body.Stmts
	if d := stmts[0].(*VarDecl); d.Size != 4 {
		t.Errorf("array size = %d, want 4", d.Size)
	}
	as := stmts[4].(*AssignStmt)
	if !as.Deref {
		t.Error("expected deref assignment")
	}
}

func TestParseForLoop(t *testing.T) {
	p := mustParse(t, `func main() {
		for (var i = 0; i < 3; i = i + 1) { print(i); }
		for (;;) { break; }
	}`)
	f1 := p.Func("main").Body.Stmts[0].(*ForStmt)
	if f1.Init == nil || f1.Cond == nil || f1.Post == nil {
		t.Error("full for-header parts missing")
	}
	f2 := p.Func("main").Body.Stmts[1].(*ForStmt)
	if f2.Init != nil || f2.Cond != nil || f2.Post != nil {
		t.Error("empty for-header parts should be nil")
	}
}

func TestCheckerErrors(t *testing.T) {
	cases := map[string]string{
		"no main":             `func f() {}`,
		"main with params":    `func main(x) {}`,
		"undeclared var":      `func main() { x = 1; }`,
		"undeclared use":      `func main() { var y = x; }`,
		"duplicate func":      `func f() {} func f() {} func main() {}`,
		"duplicate param":     `func f(a, a) {} func main() {}`,
		"duplicate local":     `func main() { var x; var x; }`,
		"array without index": `func main() { var a[3]; var y = a; }`,
		"scalar with index":   `func main() { var x; x[0] = 1; }`,
		"index non-array":     `func main() { var x; var y = x[0]; }`,
		"bad arity":           `func f(a) { return a; } func main() { f(1, 2); }`,
		"unknown callee":      `func main() { g(); }`,
		"break outside loop":  `func main() { break; }`,
		"continue outside":    `func main() { continue; }`,
		"addr of array":       `func main() { var a[3]; var p = &a; }`,
		"assign whole array":  `func main() { var a[3]; a = 1; }`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected a checker error", name)
		}
	}
}

func TestCheckerScoping(t *testing.T) {
	// Shadowing in nested blocks is legal; sibling blocks are independent.
	src := `
	var g = 1;
	func main() {
		var x = g;
		if (x == 1) { var y = 2; print(y); }
		if (x == 1) { var y = 3; print(y); }
		while (x < 2) { var g = 9; print(g); x = x + 1; }
	}`
	if _, err := Parse(src); err != nil {
		t.Fatalf("scoping should be accepted: %v", err)
	}
	// Use after a sibling block's declaration is invalid.
	bad := `func main() { if (1) { var y = 2; } print(y); }`
	if _, err := Parse(bad); err == nil {
		t.Fatal("expected out-of-scope error")
	}
}

// TestLexerNeverPanics fuzzes the lexer with arbitrary strings.
func TestLexerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Tokenize(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParserNeverPanics fuzzes the parser with token-ish soup.
func TestParserNeverPanics(t *testing.T) {
	frags := []string{"func", "main", "(", ")", "{", "}", "var", "x", "=",
		"1", ";", "if", "while", "+", "*", "&", "[", "]", "return", "input"}
	f := func(picks []uint8) bool {
		var sb strings.Builder
		for _, p := range picks {
			sb.WriteString(frags[int(p)%len(frags)])
			sb.WriteByte(' ')
		}
		_, _ = Parse(sb.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
