// Package lang implements the front end for MiniC, the small imperative
// language used as the subject language for dynamic slicing. MiniC has
// 64-bit integer scalars, fixed-size integer arrays, pointers obtained with
// the address-of operator, functions, and structured control flow. The
// deliberate inclusion of pointers and arrays is what exercises the
// aliasing-sensitive parts of the slicing optimizations (OPT-1b, OPT-2a in
// the paper's terminology).
package lang

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds. Single-character operators use their own kinds rather than
// the raw byte so the parser can switch exhaustively.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Keywords.
	KwVar
	KwFunc
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwPrint
	KwInput

	// Punctuation.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon

	// Operators.
	Assign // =
	Plus
	Minus
	Star
	Slash
	Percent
	Amp    // &
	Not    // !
	Lt     // <
	Le     // <=
	Gt     // >
	Ge     // >=
	EqEq   // ==
	NotEq  // !=
	AndAnd // &&
	OrOr   // ||
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number",
	KwVar: "var", KwFunc: "func", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwFor: "for", KwReturn: "return",
	KwBreak: "break", KwContinue: "continue", KwPrint: "print", KwInput: "input",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Comma: ",", Semicolon: ";",
	Assign: "=", Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Not: "!", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"var": KwVar, "func": KwFunc, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "return": KwReturn,
	"break": KwBreak, "continue": KwContinue, "print": KwPrint, "input": KwInput,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // raw text for IDENT and NUMBER
	Pos  Pos
}

// Error is a front-end error carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
