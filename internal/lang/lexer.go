package lang

import (
	"strings"
)

// Lexer converts MiniC source text into a token stream. Comments run from
// "//" to end of line. Whitespace is insignificant.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		var sb strings.Builder
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			sb.WriteByte(l.advance())
		}
		text := sb.String()
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: start}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: start}, nil
	case isDigit(c):
		var sb strings.Builder
		for l.off < len(l.src) && isDigit(l.peek()) {
			sb.WriteByte(l.advance())
		}
		return Token{Kind: NUMBER, Text: sb.String(), Pos: start}, nil
	}
	l.advance()
	two := func(next byte, withKind, soloKind Kind) (Token, error) {
		if l.peek() == next {
			l.advance()
			return Token{Kind: withKind, Pos: start}, nil
		}
		return Token{Kind: soloKind, Pos: start}, nil
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: start}, nil
	case ')':
		return Token{Kind: RParen, Pos: start}, nil
	case '{':
		return Token{Kind: LBrace, Pos: start}, nil
	case '}':
		return Token{Kind: RBrace, Pos: start}, nil
	case '[':
		return Token{Kind: LBracket, Pos: start}, nil
	case ']':
		return Token{Kind: RBracket, Pos: start}, nil
	case ',':
		return Token{Kind: Comma, Pos: start}, nil
	case ';':
		return Token{Kind: Semicolon, Pos: start}, nil
	case '+':
		return Token{Kind: Plus, Pos: start}, nil
	case '-':
		return Token{Kind: Minus, Pos: start}, nil
	case '*':
		return Token{Kind: Star, Pos: start}, nil
	case '/':
		return Token{Kind: Slash, Pos: start}, nil
	case '%':
		return Token{Kind: Percent, Pos: start}, nil
	case '=':
		return two('=', EqEq, Assign)
	case '<':
		return two('=', Le, Lt)
	case '>':
		return two('=', Ge, Gt)
	case '!':
		return two('=', NotEq, Not)
	case '&':
		return two('&', AndAnd, Amp)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: OrOr, Pos: start}, nil
		}
		return Token{}, errf(start, "unexpected character %q (did you mean \"||\"?)", c)
	}
	return Token{}, errf(start, "unexpected character %q", c)
}

// Tokenize lexes the whole input, returning all tokens except the final EOF.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
