package lang

// Semantic checking: name resolution, arity checking, array/scalar kind
// checking, and break/continue placement. Checking is lexically scoped;
// a declaration is visible from its point of declaration to the end of the
// enclosing block.

type symKind int

const (
	symScalar symKind = iota
	symArray
)

type scope struct {
	parent *scope
	syms   map[string]symKind
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, syms: map[string]symKind{}}
}

func (s *scope) lookup(name string) (symKind, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if k, ok := sc.syms[name]; ok {
			return k, true
		}
	}
	return 0, false
}

type checker struct {
	prog      *Program
	funcs     map[string]*FuncDecl
	loopDepth int
}

func checkProgram(prog *Program) error {
	c := &checker{prog: prog, funcs: map[string]*FuncDecl{}}
	for _, f := range prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return errf(f.Pos_, "duplicate function %q", f.Name)
		}
		c.funcs[f.Name] = f
	}
	if _, ok := c.funcs["main"]; !ok {
		return errf(Pos{Line: 1, Col: 1}, "program has no 'main' function")
	}
	if len(c.funcs["main"].Params) != 0 {
		return errf(c.funcs["main"].Pos_, "'main' must take no parameters")
	}

	globals := newScope(nil)
	for _, g := range prog.Globals {
		if _, dup := globals.syms[g.Name]; dup {
			return errf(g.Pos_, "duplicate global %q", g.Name)
		}
		if g.Init != nil {
			if err := c.checkExpr(g.Init, globals); err != nil {
				return err
			}
		}
		globals.syms[g.Name] = declKind(g)
	}

	for _, f := range prog.Funcs {
		fnScope := newScope(globals)
		for _, p := range f.Params {
			if _, dup := fnScope.syms[p]; dup {
				return errf(f.Pos_, "duplicate parameter %q in %q", p, f.Name)
			}
			fnScope.syms[p] = symScalar
		}
		c.loopDepth = 0
		if err := c.checkBlock(f.Body, fnScope); err != nil {
			return err
		}
	}
	return nil
}

func declKind(d *VarDecl) symKind {
	if d.Size > 0 {
		return symArray
	}
	return symScalar
}

func (c *checker) checkBlock(b *BlockStmt, parent *scope) error {
	sc := newScope(parent)
	for _, s := range b.Stmts {
		if err := c.checkStmt(s, sc); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt, sc *scope) error {
	switch st := s.(type) {
	case *VarDecl:
		if _, dup := sc.syms[st.Name]; dup {
			return errf(st.Pos_, "duplicate declaration of %q in this block", st.Name)
		}
		if st.Init != nil {
			if err := c.checkExpr(st.Init, sc); err != nil {
				return err
			}
		}
		sc.syms[st.Name] = declKind(st)
		return nil
	case *AssignStmt:
		if st.Deref {
			if err := c.checkExpr(st.Addr, sc); err != nil {
				return err
			}
		} else {
			k, ok := sc.lookup(st.Name)
			if !ok {
				return errf(st.Pos_, "assignment to undeclared variable %q", st.Name)
			}
			if st.Index != nil {
				if k != symArray {
					return errf(st.Pos_, "%q is not an array", st.Name)
				}
				if err := c.checkExpr(st.Index, sc); err != nil {
					return err
				}
			} else if k != symScalar {
				return errf(st.Pos_, "cannot assign to array %q without an index", st.Name)
			}
		}
		return c.checkExpr(st.Rhs, sc)
	case *IfStmt:
		if err := c.checkExpr(st.Cond, sc); err != nil {
			return err
		}
		if err := c.checkBlock(st.Then, sc); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else, sc)
		}
		return nil
	case *WhileStmt:
		if err := c.checkExpr(st.Cond, sc); err != nil {
			return err
		}
		c.loopDepth++
		err := c.checkBlock(st.Body, sc)
		c.loopDepth--
		return err
	case *ForStmt:
		inner := newScope(sc)
		if st.Init != nil {
			if err := c.checkStmt(st.Init, inner); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkExpr(st.Cond, inner); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post, inner); err != nil {
				return err
			}
		}
		c.loopDepth++
		err := c.checkBlock(st.Body, inner)
		c.loopDepth--
		return err
	case *ReturnStmt:
		if st.Value != nil {
			return c.checkExpr(st.Value, sc)
		}
		return nil
	case *BreakStmt:
		if c.loopDepth == 0 {
			return errf(st.Pos_, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(st.Pos_, "continue outside loop")
		}
		return nil
	case *PrintStmt:
		return c.checkExpr(st.Arg, sc)
	case *ExprStmt:
		return c.checkExpr(st.Call, sc)
	case *BlockStmt:
		return c.checkBlock(st, sc)
	}
	return errf(s.Position(), "internal: unknown statement type %T", s)
}

func (c *checker) checkExpr(e Expr, sc *scope) error {
	switch ex := e.(type) {
	case *NumLit, *InputExpr:
		return nil
	case *VarRef:
		k, ok := sc.lookup(ex.Name)
		if !ok {
			return errf(ex.Pos_, "use of undeclared variable %q", ex.Name)
		}
		if k != symScalar {
			return errf(ex.Pos_, "array %q used without an index", ex.Name)
		}
		return nil
	case *IndexExpr:
		k, ok := sc.lookup(ex.Array)
		if !ok {
			return errf(ex.Pos_, "use of undeclared array %q", ex.Array)
		}
		if k != symArray {
			return errf(ex.Pos_, "%q is not an array", ex.Array)
		}
		return c.checkExpr(ex.Index, sc)
	case *DerefExpr:
		return c.checkExpr(ex.Addr, sc)
	case *AddrOfExpr:
		k, ok := sc.lookup(ex.Name)
		if !ok {
			return errf(ex.Pos_, "address of undeclared variable %q", ex.Name)
		}
		if ex.Index != nil {
			if k != symArray {
				return errf(ex.Pos_, "%q is not an array", ex.Name)
			}
			return c.checkExpr(ex.Index, sc)
		}
		if k != symScalar {
			return errf(ex.Pos_, "cannot take address of array %q without index (use &%s[i])", ex.Name, ex.Name)
		}
		return nil
	case *UnaryExpr:
		return c.checkExpr(ex.X, sc)
	case *BinaryExpr:
		if err := c.checkExpr(ex.X, sc); err != nil {
			return err
		}
		return c.checkExpr(ex.Y, sc)
	case *CallExpr:
		f, ok := c.funcs[ex.Callee]
		if !ok {
			return errf(ex.Pos_, "call to undefined function %q", ex.Callee)
		}
		if len(ex.Args) != len(f.Params) {
			return errf(ex.Pos_, "%q takes %d argument(s), got %d", ex.Callee, len(f.Params), len(ex.Args))
		}
		for _, a := range ex.Args {
			if err := c.checkExpr(a, sc); err != nil {
				return err
			}
		}
		return nil
	}
	return errf(e.Position(), "internal: unknown expression type %T", e)
}
