package alias_test

import (
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/ir"
)

func prog(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func obj(p *ir.Program, name string) ir.ObjID {
	for _, o := range p.Objects {
		if o.String() == name || o.Name == name {
			return o.ID
		}
	}
	return ir.NoObj
}

// derefStoreTargets collects the may-def sets of all *p = ... statements.
func derefStoreTargets(p *ir.Program) []map[string]bool {
	var out []map[string]bool
	for _, s := range p.Stmts {
		if s.Op == ir.OpAssign && s.Lhs == ir.LDeref {
			m := map[string]bool{}
			for _, o := range s.MayDefs {
				m[p.Obj(o).Name] = true
			}
			out = append(out, m)
		}
	}
	return out
}

func TestDirectAddressFlow(t *testing.T) {
	p := prog(t, `
	var x = 0;
	func main() {
		var p = &x;
		*p = 1;
		print(x);
	}`)
	ts := derefStoreTargets(p)
	if len(ts) != 1 || !ts[0]["x"] {
		t.Fatalf("deref store targets = %v, want {x}", ts)
	}
}

func TestFlowThroughCopiesAndCalls(t *testing.T) {
	p := prog(t, `
	var a = 0;
	var b = 0;
	func choose(p, q, c) {
		if (c > 0) { return p; }
		return q;
	}
	func main() {
		var r = choose(&a, &b, input());
		*r = 5;
		print(a + b);
	}`)
	ts := derefStoreTargets(p)
	if len(ts) != 1 {
		t.Fatalf("expected one deref store, got %d", len(ts))
	}
	if !ts[0]["a"] || !ts[0]["b"] {
		t.Fatalf("pointer from call should may-point to a and b, got %v", ts[0])
	}
}

func TestFlowThroughArrayCells(t *testing.T) {
	p := prog(t, `
	var x = 0;
	var y = 0;
	func main() {
		var slots[4];
		slots[0] = &x;
		slots[1] = &y;
		var p = slots[input() % 2];
		*p = 3;
		print(x + y);
	}`)
	ts := derefStoreTargets(p)
	if len(ts) != 1 || !ts[0]["x"] || !ts[0]["y"] {
		t.Fatalf("array-carried pointers should reach x and y, got %v", ts)
	}
}

func TestFlowThroughHeapLikeIndirection(t *testing.T) {
	// Double indirection: a pointer stored through another pointer.
	p := prog(t, `
	var x = 0;
	var cell = 0;
	func main() {
		var pp = &cell;
		*pp = &x;      // cell now holds &x
		var q = cell;
		*q = 9;        // must may-define x
		print(x);
	}`)
	ts := derefStoreTargets(p)
	last := ts[len(ts)-1]
	if !last["x"] {
		t.Fatalf("second deref store should may-define x, got %v", last)
	}
}

func TestNoSpuriousPointsTo(t *testing.T) {
	p := prog(t, `
	var x = 0;
	var unrelated = 0;
	func main() {
		var p = &x;
		*p = 1;
		unrelated = 2;
		print(x + unrelated);
	}`)
	ts := derefStoreTargets(p)
	if ts[0]["unrelated"] {
		t.Fatal("unrelated (never address-taken) must not be a deref target")
	}
	if p.Obj(obj(p, "unrelated")).AddrTaken {
		t.Fatal("unrelated must not be marked address-taken")
	}
}

func TestPointerArithmeticPreservesTargets(t *testing.T) {
	p := prog(t, `
	func main() {
		var a[8];
		var p = &a[0];
		p = p + 3;
		*p = 7;
		print(a[3]);
	}`)
	ts := derefStoreTargets(p)
	if len(ts) != 1 || !ts[0]["a"] {
		t.Fatalf("pointer arithmetic should keep the array target, got %v", ts)
	}
}

func TestReturnValuePointerFlow(t *testing.T) {
	p := prog(t, `
	var g = 0;
	func mk() { return &g; }
	func main() {
		var p = mk();
		*p = 4;
		print(g);
	}`)
	ts := derefStoreTargets(p)
	if len(ts) != 1 || !ts[0]["g"] {
		t.Fatalf("returned pointer should target g, got %v", ts)
	}
}

func TestMayUseAnnotationOnLoads(t *testing.T) {
	p := prog(t, `
	var x = 1;
	var y = 2;
	func main() {
		var p = &x;
		if (input() > 0) { p = &y; }
		print(*p);
	}`)
	found := false
	for _, s := range p.Stmts {
		for _, u := range s.Uses {
			if u.IsPtr {
				found = true
				names := map[string]bool{}
				for _, o := range u.MayPts {
					names[p.Obj(o).Name] = true
				}
				if !names["x"] || !names["y"] {
					t.Fatalf("pointer load may-pts = %v, want x and y", names)
				}
			}
		}
	}
	if !found {
		t.Fatal("no pointer load slot found")
	}
}
