// Package alias implements a flow-insensitive, field-insensitive (arrays
// are collapsed to a single cell) Andersen-style points-to analysis for the
// IR, plus interprocedural side-effect (MOD) summaries.
//
// Results are written back into the IR:
//
//   - every *e load slot gets its may-points-to set (UseSlot.MayPts),
//   - every *e = ... statement gets its may-def set (Stmt.MayDefs),
//   - every return statement may-defs the $ret objects of its callers,
//   - every call statement may-defs the callee's transitive MOD set plus
//     the caller's own $ret slot, and
//   - every function gets its MOD summary (Func.MOD).
//
// The analysis is conservative: imprecision only reduces how many
// dependence labels the OPT representation can elide; it never affects
// slice correctness (the dynamic builder falls back to explicit labels).
package alias

import (
	"sort"

	"dynslice/internal/ir"
)

// node indexes the constraint graph: object nodes first (node i == ObjID i),
// then synthetic nodes for load/expression sites and per-function return
// values.
type node int

type analysis struct {
	prog     *ir.Program
	numNodes int
	pts      []map[ir.ObjID]bool // points-to set per node
	copyTo   [][]node            // copy edges: src -> dsts
	loadTo   [][]node            // load edges: *src -> dsts
	storeFm  [][]node            // store edges: srcs -> *dst (indexed by dst)
	retNode  []node              // per function: synthetic return-value node
	worklist []node
	inWL     []bool
}

// Run performs the analysis and annotates the program in place.
func Run(p *ir.Program) {
	a := &analysis{prog: p}
	a.numNodes = len(p.Objects)
	a.retNode = make([]node, len(p.Funcs))
	for i := range p.Funcs {
		a.retNode[i] = a.newNode()
	}
	a.generate()
	a.solve()
	a.annotate()
	a.computeMOD()
}

func (a *analysis) newNode() node {
	n := node(a.numNodes)
	a.numNodes++
	return n
}

func (a *analysis) grow() {
	for len(a.pts) < a.numNodes {
		a.pts = append(a.pts, nil)
		a.copyTo = append(a.copyTo, nil)
		a.loadTo = append(a.loadTo, nil)
		a.storeFm = append(a.storeFm, nil)
	}
}

func (a *analysis) addAddr(dst node, o ir.ObjID) {
	a.grow()
	if a.pts[dst] == nil {
		a.pts[dst] = map[ir.ObjID]bool{}
	}
	if !a.pts[dst][o] {
		a.pts[dst][o] = true
		a.push(dst)
	}
}

func (a *analysis) addCopy(src, dst node) {
	a.grow()
	a.copyTo[src] = append(a.copyTo[src], dst)
	a.push(src)
}

func (a *analysis) addLoad(src, dst node) {
	a.grow()
	a.loadTo[src] = append(a.loadTo[src], dst)
	a.push(src)
}

func (a *analysis) addStore(valSrc, addr node) {
	a.grow()
	a.storeFm[addr] = append(a.storeFm[addr], valSrc)
	a.push(addr)
	a.push(valSrc)
}

func (a *analysis) push(n node) {
	a.grow()
	for len(a.inWL) < a.numNodes {
		a.inWL = append(a.inWL, false)
	}
	if !a.inWL[n] {
		a.inWL[n] = true
		a.worklist = append(a.worklist, n)
	}
}

// exprNode returns a node whose points-to set over-approximates the pointer
// values the expression may evaluate to, generating constraints as needed.
// Synthetic nodes are memoized per expression site via the exprNodes map.
func (a *analysis) exprNode(e ir.Expr, fn *ir.Func) node {
	switch x := e.(type) {
	case *ir.EConst, *ir.EInput, nil:
		return a.emptyNode()
	case *ir.EAddr:
		n := a.newNode()
		a.grow()
		a.addAddr(n, x.Obj)
		if x.Idx != nil {
			// &a[i]: the index contributes no pointer value.
			_ = a.exprNode(x.Idx, fn)
		}
		return n
	case *ir.ELoad:
		return node(x.Obj)
	case *ir.ELoadIdx:
		_ = a.exprNode(x.Idx, fn)
		return node(x.Obj)
	case *ir.ELoadPtr:
		addr := a.exprNode(x.Addr, fn)
		n := a.newNode()
		a.grow()
		a.addLoad(addr, n)
		return n
	case *ir.EUnary:
		return a.exprNode(x.X, fn)
	case *ir.EBinary:
		nx := a.exprNode(x.X, fn)
		ny := a.exprNode(x.Y, fn)
		n := a.newNode()
		a.grow()
		a.addCopy(nx, n)
		a.addCopy(ny, n)
		return n
	}
	return a.emptyNode()
}

func (a *analysis) emptyNode() node {
	n := a.newNode()
	a.grow()
	return n
}

// callersOf maps each function to the call statements targeting it.
func callersOf(p *ir.Program) map[*ir.Func][]*ir.Stmt {
	m := map[*ir.Func][]*ir.Stmt{}
	for _, s := range p.Stmts {
		if s.Op == ir.OpCall {
			m[s.Callee] = append(m[s.Callee], s)
		}
	}
	return m
}

func (a *analysis) generate() {
	p := a.prog
	callers := callersOf(p)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				switch s.Op {
				case ir.OpAssign:
					val := a.exprNode(s.Rhs, f)
					switch s.Lhs {
					case ir.LVar:
						a.addCopy(val, node(s.LhsObj))
					case ir.LIndex:
						_ = a.exprNode(s.LhsIdx, f)
						a.addCopy(val, node(s.LhsObj))
					case ir.LDeref:
						addr := a.exprNode(s.LhsAddr, f)
						a.addStore(val, addr)
					}
				case ir.OpCall:
					for i, arg := range s.Args {
						val := a.exprNode(arg, f)
						a.addCopy(val, node(s.Callee.Params[i].ID))
					}
					// The continuation reads $ret(f), which receives the
					// callee's return value.
					a.addCopy(a.retNode[s.Callee.ID], node(f.Ret.ID))
				case ir.OpReturn:
					val := a.exprNode(s.Rhs, f)
					a.addCopy(val, a.retNode[f.ID])
				case ir.OpCond, ir.OpPrint:
					_ = a.exprNode(s.Rhs, f)
				}
			}
		}
	}
	_ = callers
}

func (a *analysis) solve() {
	a.grow()
	// seen dedupes dynamically added copy edges.
	seen := map[[2]node]bool{}
	addCopyOnce := func(src, dst node) {
		k := [2]node{src, dst}
		if seen[k] {
			return
		}
		seen[k] = true
		a.copyTo[src] = append(a.copyTo[src], dst)
		a.flow(src, dst)
	}
	for len(a.worklist) > 0 {
		n := a.worklist[len(a.worklist)-1]
		a.worklist = a.worklist[:len(a.worklist)-1]
		a.inWL[n] = false

		// Copy edges.
		for _, dst := range a.copyTo[n] {
			a.flow(n, dst)
		}
		// Load edges (*n -> dst) and store edges (valSrc -> *n) materialize
		// persistent copy edges for each current pointee, so later growth of
		// a pointee's set keeps propagating.
		for o := range a.pts[n] {
			for _, dst := range a.loadTo[n] {
				addCopyOnce(node(o), dst)
			}
			for _, valSrc := range a.storeFm[n] {
				addCopyOnce(valSrc, node(o))
			}
		}
	}
}

// flow copies pts(src) into pts(dst), pushing dst if it grew. It also
// re-pushes nodes with load/store edges whose base set changed, which is
// handled by pushing dst (its edges are scanned when popped).
func (a *analysis) flow(src, dst node) {
	if src == dst {
		return
	}
	sp := a.pts[src]
	if len(sp) == 0 {
		return
	}
	if a.pts[dst] == nil {
		a.pts[dst] = map[ir.ObjID]bool{}
	}
	grew := false
	for o := range sp {
		if !a.pts[dst][o] {
			a.pts[dst][o] = true
			grew = true
		}
	}
	if grew {
		a.push(dst)
	}
}

func (a *analysis) ptsOf(n node) []ir.ObjID {
	m := a.pts[n]
	out := make([]ir.ObjID, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// annotate writes MayPts/MayDefs back into the IR. It re-walks statements
// mirroring generate's traversal, so synthetic node creation must be kept
// deterministic; instead of replaying, we simply recompute expression nodes
// (the solved sets are monotone, so recomputation after solving reuses the
// same object nodes and creates fresh synthetic nodes that copy from solved
// ones — to keep this sound we resolve sets directly here).
func (a *analysis) annotate() {
	p := a.prog
	callers := callersOf(p)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				// Fill MayPts on pointer-load slots.
				fill := func(e ir.Expr) {
					ir.WalkExpr(e, func(x ir.Expr) {
						if lp, ok := x.(*ir.ELoadPtr); ok {
							s.Uses[lp.Slot].MayPts = a.resolve(lp.Addr)
						}
					})
				}
				switch s.Op {
				case ir.OpAssign:
					fill(s.Rhs)
					if s.Lhs == ir.LIndex {
						fill(s.LhsIdx)
					}
					if s.Lhs == ir.LDeref {
						fill(s.LhsAddr)
						s.MayDefs = append(s.MayDefs, a.resolve(s.LhsAddr)...)
					}
				case ir.OpCond, ir.OpPrint, ir.OpReturn:
					fill(s.Rhs)
					if s.Op == ir.OpReturn {
						for _, cs := range callers[f] {
							s.MayDefs = append(s.MayDefs, cs.Block.Fn.Ret.ID)
						}
					}
				case ir.OpCall:
					for _, arg := range s.Args {
						fill(arg)
					}
					// The call also clobbers the caller's $ret slot.
					s.MayDefs = append(s.MayDefs, f.Ret.ID)
				}
				s.MayDefs = dedupObjs(s.MayDefs)
			}
		}
	}
}

// resolve computes the solved may-point-to set of an address expression
// without generating new constraints (post-solve read-only evaluation).
func (a *analysis) resolve(e ir.Expr) []ir.ObjID {
	set := map[ir.ObjID]bool{}
	a.resolveInto(e, set)
	out := make([]ir.ObjID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (a *analysis) resolveInto(e ir.Expr, set map[ir.ObjID]bool) {
	switch x := e.(type) {
	case *ir.EAddr:
		set[x.Obj] = true
	case *ir.ELoad:
		for o := range a.pts[node(x.Obj)] {
			set[o] = true
		}
	case *ir.ELoadIdx:
		for o := range a.pts[node(x.Obj)] {
			set[o] = true
		}
	case *ir.ELoadPtr:
		inner := map[ir.ObjID]bool{}
		a.resolveInto(x.Addr, inner)
		for o := range inner {
			for o2 := range a.pts[node(o)] {
				set[o2] = true
			}
		}
	case *ir.EUnary:
		a.resolveInto(x.X, set)
	case *ir.EBinary:
		a.resolveInto(x.X, set)
		a.resolveInto(x.Y, set)
	}
}

func dedupObjs(in []ir.ObjID) []ir.ObjID {
	if len(in) <= 1 {
		return in
	}
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	out := in[:1]
	for _, o := range in[1:] {
		if o != out[len(out)-1] {
			out = append(out, o)
		}
	}
	return out
}

// computeMOD fills Func.MOD: the set of externally visible objects
// (globals, address-taken objects, and caller $ret slots) each function may
// write, transitively through calls. Call statements then also may-def
// their callee's MOD set.
func (a *analysis) computeMOD() {
	p := a.prog
	visible := func(o ir.ObjID) bool {
		obj := p.Obj(o)
		return obj.Fn == nil || obj.AddrTaken || obj.IsRet
	}
	for _, f := range p.Funcs {
		f.MOD = map[ir.ObjID]bool{}
	}
	// Base effects.
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				if s.MustDef != ir.NoObj && visible(s.MustDef) {
					f.MOD[s.MustDef] = true
				}
				for _, o := range s.MayDefs {
					if visible(o) {
						f.MOD[o] = true
					}
				}
			}
		}
	}
	// Transitive closure over the call graph.
	for changed := true; changed; {
		changed = false
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				for _, s := range b.Stmts {
					if s.Op != ir.OpCall {
						continue
					}
					for o := range s.Callee.MOD {
						if !f.MOD[o] {
							f.MOD[o] = true
							changed = true
						}
					}
				}
			}
		}
	}
	// Widen call statements' MayDefs with callee effects.
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				if s.Op != ir.OpCall {
					continue
				}
				for o := range s.Callee.MOD {
					s.MayDefs = append(s.MayDefs, o)
				}
				s.MayDefs = dedupObjs(s.MayDefs)
			}
		}
	}
}
