package bench

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandProgram generates a random, semantically valid MiniC program for
// differential fuzzing of the slicing algorithms. Generated programs
// always terminate (loops are bounded counters), never fault (indices are
// reduced modulo array sizes; pointers always hold valid addresses before
// use), and exercise the features the compaction optimizations care
// about: loops, branches, scalars, arrays, pointers with may-aliases,
// globals, calls, and recursion.
func RandProgram(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	g := &pgen{r: r}
	return g.program()
}

type pgen struct {
	r        *rand.Rand
	globals  []string
	arrays   []string // global arrays (fixed size pgArraySize)
	funcs    []string // helper function names (each takes 1 arg)
	buf      strings.Builder
	depth    int
	loops    int
	ptrs     []string        // in-scope pointer variables (always valid)
	scals    []string        // in-scope scalar variables
	protect  map[string]bool // loop induction variables: readable, never written
	inHelper bool            // inside a helper body: no helper calls (bounds recursion)
}

const pgArraySize = 8

func (g *pgen) program() string {
	nGlobals := 2 + g.r.Intn(3)
	for i := 0; i < nGlobals; i++ {
		g.globals = append(g.globals, fmt.Sprintf("g%d", i))
	}
	nArrays := 1 + g.r.Intn(2)
	for i := 0; i < nArrays; i++ {
		g.arrays = append(g.arrays, fmt.Sprintf("arr%d", i))
	}
	nFuncs := 1 + g.r.Intn(3)
	for i := 0; i < nFuncs; i++ {
		g.funcs = append(g.funcs, fmt.Sprintf("h%d", i))
	}

	for _, gv := range g.globals {
		fmt.Fprintf(&g.buf, "var %s = %d;\n", gv, g.r.Intn(20))
	}
	for _, av := range g.arrays {
		fmt.Fprintf(&g.buf, "var %s[%d];\n", av, pgArraySize)
	}

	// Helper functions: one parameter, compute over globals and arrays,
	// possibly recursive with a strictly decreasing argument.
	for i, fn := range g.funcs {
		fmt.Fprintf(&g.buf, "func %s(n) {\n", fn)
		saveS, saveP := g.scals, g.ptrs
		g.scals, g.ptrs = []string{"n"}, nil
		if g.protect == nil {
			g.protect = map[string]bool{}
		}
		g.protect["n"] = true // the recursion bound must strictly decrease
		g.inHelper = true
		g.depth = 1
		nStmts := 2 + g.r.Intn(4)
		for s := 0; s < nStmts; s++ {
			g.stmt()
		}
		if i == 0 && g.r.Intn(2) == 0 {
			// Bounded recursion through the first helper.
			g.line("if (n > 1) { %s = %s + %s(n - 1); }", g.pickGlobal(), g.pickGlobal(), fn)
		}
		g.line("return n + %s;", g.pickGlobal())
		g.buf.WriteString("}\n")
		g.scals, g.ptrs = saveS, saveP
		delete(g.protect, "n")
		g.inHelper = false
	}

	g.buf.WriteString("func main() {\n")
	g.depth = 1
	g.scals = nil
	g.ptrs = nil
	nLocals := 2 + g.r.Intn(3)
	for i := 0; i < nLocals; i++ {
		v := fmt.Sprintf("v%d", i)
		g.line("var %s = %d;", v, g.r.Intn(10))
		g.scals = append(g.scals, v)
	}
	// One pointer variable, always valid: seeded to a global's address.
	g.line("var p0 = &%s;", g.pickGlobal())
	g.ptrs = append(g.ptrs, "p0")

	nStmts := 5 + g.r.Intn(8)
	for s := 0; s < nStmts; s++ {
		g.stmt()
	}
	for _, gv := range g.globals {
		g.line("print(%s);", gv)
	}
	for _, v := range g.scals {
		g.line("print(%s);", v)
	}
	g.buf.WriteString("}\n")
	return g.buf.String()
}

func (g *pgen) line(format string, args ...interface{}) {
	g.buf.WriteString(strings.Repeat("\t", g.depth))
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteByte('\n')
}

func (g *pgen) pickGlobal() string { return g.globals[g.r.Intn(len(g.globals))] }

// index yields an always-in-range array index (values can be negative, and
// MiniC's % follows Go's sign, so fold into [0, size)).
func (g *pgen) index() string {
	return fmt.Sprintf("(%s %% %d + %d) %% %d", g.pickScalar(), pgArraySize, pgArraySize, pgArraySize)
}
func (g *pgen) pickArray() string { return g.arrays[g.r.Intn(len(g.arrays))] }

func (g *pgen) pickScalar() string {
	pool := append(append([]string{}, g.globals...), g.scals...)
	return pool[g.r.Intn(len(pool))]
}

// pickTarget picks an assignable scalar: induction variables are excluded
// so generated loops always terminate.
func (g *pgen) pickTarget() string {
	pool := append(append([]string{}, g.globals...), g.scals...)
	for tries := 0; tries < 8; tries++ {
		v := pool[g.r.Intn(len(pool))]
		if !g.protect[v] {
			return v
		}
	}
	return g.pickGlobal()
}

// expr produces a side-effect-free expression over in-scope values.
// Division is total in MiniC (x/0 == 0), so no guards are needed.
func (g *pgen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(30))
		case 1:
			return g.pickScalar()
		case 2:
			return fmt.Sprintf("%s[%s]", g.pickArray(), g.index())
		default:
			if len(g.ptrs) > 0 && g.r.Intn(2) == 0 {
				return "*" + g.ptrs[g.r.Intn(len(g.ptrs))]
			}
			return g.pickScalar()
		}
	}
	ops := []string{"+", "-", "*", "/", "%"}
	op := ops[g.r.Intn(len(ops))]
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
}

func (g *pgen) cond() string {
	rels := []string{"<", "<=", ">", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %s", g.expr(1), rels[g.r.Intn(len(rels))], g.expr(1))
}

func (g *pgen) stmt() {
	if g.depth > 3 {
		g.assign()
		return
	}
	switch g.r.Intn(10) {
	case 0, 1, 2, 3:
		g.assign()
	case 4, 5:
		g.ifStmt()
	case 6:
		if g.loops < 3 {
			g.loop()
		} else {
			g.assign()
		}
	case 7:
		if g.inHelper {
			// Helpers never call helpers: the only recursion is the
			// explicitly bounded self-call added after the body.
			g.assign()
			return
		}
		// Call a helper for effect or value.
		fn := g.funcs[g.r.Intn(len(g.funcs))]
		if g.r.Intn(2) == 0 {
			g.line("%s = %s(%s %% 5);", g.pickTarget(), fn, g.expr(1))
		} else {
			g.line("%s(%s %% 4);", fn, g.expr(1))
		}
	case 8:
		// Retarget or use the pointer (may-alias churn).
		if len(g.ptrs) > 0 {
			p := g.ptrs[g.r.Intn(len(g.ptrs))]
			switch g.r.Intn(3) {
			case 0:
				g.line("%s = &%s;", p, g.pickGlobal())
			case 1:
				g.line("%s = &%s[%s];", p, g.pickArray(), g.index())
			default:
				g.line("*%s = %s;", p, g.expr(2))
			}
		} else {
			g.assign()
		}
	default:
		g.line("%s[%s] = %s;", g.pickArray(), g.index(), g.expr(2))
	}
}

func (g *pgen) assign() {
	g.line("%s = %s;", g.pickTarget(), g.expr(2))
}

// blockStmts emits n statements as a nested block body: scalar
// declarations made inside (loop induction variables) go out of scope when
// the block closes.
func (g *pgen) blockStmts(n int) {
	save := len(g.scals)
	for i := 0; i < n; i++ {
		g.stmt()
	}
	g.scals = g.scals[:save]
}

func (g *pgen) ifStmt() {
	g.line("if (%s) {", g.cond())
	g.depth++
	g.blockStmts(1 + g.r.Intn(3))
	g.depth--
	if g.r.Intn(2) == 0 {
		g.line("} else {")
		g.depth++
		g.blockStmts(1 + g.r.Intn(2))
		g.depth--
	}
	g.line("}")
}

func (g *pgen) loop() {
	g.loops++
	iv := fmt.Sprintf("i%d", g.loops)
	bound := 3 + g.r.Intn(12)
	g.line("var %s = 0;", iv)
	g.line("while (%s < %d) {", iv, bound)
	g.depth++
	g.scals = append(g.scals, iv)
	if g.protect == nil {
		g.protect = map[string]bool{}
	}
	g.protect[iv] = true
	g.blockStmts(1 + g.r.Intn(4))
	g.line("%s = %s + 1;", iv, iv)
	g.depth--
	g.line("}")
	// The induction variable's declaration precedes the loop, so it stays
	// in scope afterwards — but nested generation may have shadowed scopes;
	// keep it readable but drop the protection.
	delete(g.protect, iv)
}
