package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	slicer "dynslice"
	"dynslice/internal/telemetry/qtrace"
	"dynslice/internal/telemetry/stats"
)

// QtraceBench is one workload's record in BENCH_qtrace.json: the
// per-query causal tracer's capture statistics over the interactive
// query pattern, plus the wall-time cost of running the same workload
// with the tracer attached versus without.
type QtraceBench struct {
	Name          string  `json:"name"`
	Queries       int     `json:"queries"` // traces started (record + every query)
	Retained      int     `json:"retained"`
	RetainedRate  float64 `json:"retained_rate"`
	SampleN       int     `json:"sample_n"`
	SpansRetained int     `json:"spans_retained"` // spans across all retained traces
	Exemplars     int     `json:"exemplars"`      // histogram buckets carrying a trace link
	PlainMs       float64 `json:"plain_ms"`
	TracedMs      float64 `json:"traced_ms"`
	OverheadRatio float64 `json:"traced_overhead_ratio"`
}

// qtraceSampleN is the bench's 1-in-N sampling rate. The policy uses
// ONLY the deterministic sampler (no slow threshold, no cache-miss or
// plan-divergence triggers) and pinned-backend engines, so the retained
// set is a pure function of the trace-ID stream — identical on every
// run and every machine, which is what lets bench-check gate
// retained_rate with zero noise allowance.
const qtraceSampleN = 4

// RunQtrace drives each workload through the per-query causal tracer:
// one pass without a tracer (the overhead baseline), one with tracing
// attached under a sampler-only retention policy. It verifies the
// tail-based sampler retained exactly the traces the deterministic
// 1-in-N predicts, that every retained span tree is well-formed, and
// writes per-workload capture/overhead records to outPath
// (cmd/experiments -exp qtrace -> BENCH_qtrace.json).
func RunQtrace(w io.Writer, workloads []Workload, outPath string) error {
	header(w, "Per-query causal tracing: tail-sampling determinism and overhead",
		fmt.Sprintf("%-12s %8s %9s %8s %8s %10s %10s %9s\n",
			"Program", "queries", "retained", "rate", "spans", "plain ms", "traced ms", "overhead"))
	var out []QtraceBench
	for _, wl := range workloads {
		qb, err := runQtraceOne(wl)
		if err != nil {
			return fmt.Errorf("qtrace %s: %w", wl.Name, err)
		}
		fmt.Fprintf(w, "%-12s %8d %9d %8.3f %8d %10.2f %10.2f %8.2fx\n",
			wl.Name, qb.Queries, qb.Retained, qb.RetainedRate, qb.SpansRetained,
			qb.PlainMs, qb.TracedMs, qb.OverheadRatio)
		out = append(out, *qb)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", outPath)
	}
	return nil
}

func runQtraceOne(wl Workload) (*QtraceBench, error) {
	plain, err := qtracePass(wl, nil, nil)
	if err != nil {
		return nil, err
	}
	pol := qtrace.Policy{SampleN: qtraceSampleN, Seed: 1, OnError: true}
	qtr := qtrace.New(1024, pol)
	qst := stats.New()
	traced, err := qtracePass(wl, qtr, qst)
	if err != nil {
		return nil, err
	}

	st := qtr.Stats()
	if st.Started == 0 {
		return nil, fmt.Errorf("no traces started")
	}
	if st.ByError != 0 {
		return nil, fmt.Errorf("%d queries errored (retained by OnError)", st.ByError)
	}
	// The retention decision must match the sampler's prediction exactly:
	// trace IDs are minted 1..Started and the policy has no other
	// trigger, so any divergence means tail sampling lost determinism.
	var want uint64
	for id := uint64(1); id <= st.Started; id++ {
		if qtrace.Sampled(pol.Seed, qtrace.TraceID(id), pol.SampleN) {
			want++
		}
	}
	if st.Retained != want {
		return nil, fmt.Errorf("sampler not deterministic: retained %d traces, 1-in-%d predicts %d",
			st.Retained, qtraceSampleN, want)
	}
	if want == 0 {
		return nil, fmt.Errorf("sampler retained nothing over %d queries — workload too small to gate", st.Started)
	}

	spans := 0
	for _, t := range qtr.Recent(0) {
		ex := t.Export()
		if t.Reason() != qtrace.ReasonSample {
			return nil, fmt.Errorf("trace %s retained for %q, want %q", ex.TraceID, t.Reason(), qtrace.ReasonSample)
		}
		if len(ex.Spans) == 0 || ex.Spans[0].Parent != 0 {
			return nil, fmt.Errorf("trace %s: malformed span tree", ex.TraceID)
		}
		for _, sp := range ex.Spans[1:] {
			if sp.Parent <= 0 || sp.Parent >= sp.ID {
				return nil, fmt.Errorf("trace %s: span %d has bad parent %d", ex.TraceID, sp.ID, sp.Parent)
			}
		}
		spans += len(ex.Spans)
	}
	exemplars := 0
	for _, bs := range qst.Snapshot().Backends {
		exemplars += len(bs.Exemplars)
	}

	qb := &QtraceBench{
		Name:          wl.Name,
		Queries:       int(st.Started),
		Retained:      int(st.Retained),
		RetainedRate:  float64(st.Retained) / float64(st.Started),
		SampleN:       qtraceSampleN,
		SpansRetained: spans,
		Exemplars:     exemplars,
		PlainMs:       ms(plain),
		TracedMs:      ms(traced),
	}
	if plain > 0 {
		qb.OverheadRatio = float64(traced) / float64(plain)
	}
	return qb, nil
}

// qtracePass replays the interactive query pattern (the same sequence
// runQueriesOne uses: per-backend batched query, repeat cached singles,
// observed queries on OPT) with the given tracer attached. Pinned
// backends keep plan == backend on every query, so the pass never
// triggers plan-divergence retention. Returns the wall time from
// Record through the last query.
func qtracePass(wl Workload, qtr *qtrace.Tracer, qst *stats.Recorder) (time.Duration, error) {
	prog, err := slicer.CompileWith(wl.Src, nil)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	rec, err := prog.Record(slicer.RunOptions{
		Input:         wl.Input,
		QueryTrace:    qtr,
		QueryStats:    qst,
		TrackCriteria: 25,
	})
	if err != nil {
		return 0, err
	}
	defer rec.Close()
	crit := rec.Criteria()
	if len(crit) == 0 {
		return 0, fmt.Errorf("no criteria tracked")
	}
	repeat := queriesRepeat
	if repeat > len(crit) {
		repeat = len(crit)
	}
	for _, s := range []*slicer.Slicer{rec.FP(), rec.OPT(), rec.LP()} {
		eng := s.Engine(slicer.EngineOptions{})
		if _, err := eng.SliceAddrs(crit); err != nil {
			return 0, fmt.Errorf("%s batch: %w", s.Name(), err)
		}
		for _, a := range crit[:repeat] {
			if _, err := eng.SliceAddr(a); err != nil {
				return 0, fmt.Errorf("%s requery: %w", s.Name(), err)
			}
		}
	}
	optS := rec.OPT()
	for _, a := range crit[:repeat] {
		if _, err := optS.ExplainAddr(a); err != nil {
			return 0, fmt.Errorf("OPT explain: %w", err)
		}
	}
	return time.Since(t0), nil
}
