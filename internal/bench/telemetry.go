package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dynslice/internal/telemetry"
)

// BenchTelemetry is one workload's observability record: graph shapes,
// per-optimization label-elimination tallies, per-algorithm query times,
// and the full metrics snapshot collected while building and slicing.
type BenchTelemetry struct {
	Name            string              `json:"name"`
	Steps           int64               `json:"steps"`
	FPSizeBytes     int64               `json:"fp_size_bytes"`
	OPTSizeBytes    int64               `json:"opt_size_bytes"`
	FPLabelPairs    int64               `json:"fp_label_pairs"`
	OPTLabelPairs   int64               `json:"opt_label_pairs"`
	PathNodes       int                 `json:"path_nodes"`
	StageLabelPairs map[string]int64    `json:"stage_label_pairs"`
	Elim            map[string]int64    `json:"elim"`
	SliceAvgMs      map[string]float64  `json:"slice_avg_ms"`
	Snapshot        *telemetry.Snapshot `json:"snapshot"`
}

// RunTelemetry builds every workload with a fresh registry, runs all
// three slicers over the standard criteria, and writes the per-benchmark
// records to outPath as JSON (cmd/experiments -exp telemetry).
func RunTelemetry(w io.Writer, workloads []Workload, outPath string) error {
	header(w, "Telemetry: per-benchmark pipeline metrics",
		fmt.Sprintf("%-12s %12s %12s %12s %10s\n",
			"Program", "FP labels", "OPT labels", "OPT elim", "written"))
	var out []BenchTelemetry
	for _, wl := range workloads {
		reg := telemetry.New()
		res, err := Build(wl, Options{
			WithFP: true, WithOPT: true, WithLP: true, WithStages: true,
			Telemetry: reg,
		})
		if err != nil {
			return err
		}
		bt := BenchTelemetry{
			Name:            wl.Name,
			Steps:           res.RunInfo.Steps,
			FPSizeBytes:     res.FP.SizeBytes(),
			OPTSizeBytes:    res.OPT.SizeBytes(),
			FPLabelPairs:    res.FP.LabelPairs(),
			OPTLabelPairs:   res.OPT.LabelPairs(),
			PathNodes:       res.OPT.PathNodes(),
			StageLabelPairs: map[string]int64{},
			SliceAvgMs:      map[string]float64{},
		}
		for i, g := range res.Stages {
			bt.StageLabelPairs[stageNames[i]] = g.LabelPairs()
		}
		e := res.OPT.Elim()
		bt.Elim = map[string]int64{
			"use_slots":     e.UseSlots,
			"opt1_du":       e.OPT1DU,
			"opt2_uu":       e.OPT2UU,
			"opt3_dedup":    e.OPT3Dedup,
			"opt4_delta":    e.OPT4Delta,
			"opt5_local":    e.OPT5Local,
			"opt5_same":     e.OPT5Same,
			"opt6_dedup":    e.OPT6Dedup,
			"adaptive_data": e.AdaptiveData,
			"adaptive_cd":   e.AdaptiveCD,
			"no_producer":   e.NoProducer,
			"no_ancestor":   e.NoAncestor,
			"data_labels":   e.DataLabels,
			"cd_labels":     e.CDLabels,
			"cd_execs":      e.CDExecs,
		}
		if t, _, _, err := SliceAll(res.FP, res.Crit); err == nil && len(res.Crit) > 0 {
			bt.SliceAvgMs["FP"] = ms(t) / float64(len(res.Crit))
		} else if err != nil {
			return err
		}
		if t, _, _, err := SliceAll(res.OPT, res.Crit); err == nil && len(res.Crit) > 0 {
			bt.SliceAvgMs["OPT"] = ms(t) / float64(len(res.Crit))
		} else if err != nil {
			return err
		}
		if t, _, _, err := SliceAll(res.LP, res.Crit); err == nil && len(res.Crit) > 0 {
			bt.SliceAvgMs["LP"] = ms(t) / float64(len(res.Crit))
		} else if err != nil {
			return err
		}
		bt.Snapshot = reg.Snapshot()
		elim := e.OPT1DU + e.OPT2UU + e.AdaptiveData
		written := bt.Snapshot.Counters["trace.write.bytes"]
		fmt.Fprintf(w, "%-12s %12d %12d %12d %10d\n",
			wl.Name, bt.FPLabelPairs, bt.OPTLabelPairs, elim, written)
		out = append(out, bt)
		res.Close()
	}
	if outPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", outPath)
	}
	return nil
}
