package bench

import (
	"os"
	"testing"

	"dynslice/internal/interp"
	"dynslice/internal/profile"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/opt"
	"dynslice/internal/trace"
)

// TestHybridModeDifferential exercises the §4.2 OPT+disk algorithm: with
// a tiny label budget the builder must flush many epochs, slicing must
// load them on demand, and every slice must still match FP exactly.
func TestHybridModeDifferential(t *testing.T) {
	w, _ := ByName("164.gzip")
	res, err := Build(w, Options{WithFP: true, NCriteria: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	col := profile.NewCollector(res.P)
	if _, err := interp.Run(res.P, interp.Options{Input: w.Input, Sink: col}); err != nil {
		t.Fatal(err)
	}
	g := opt.NewGraph(res.P, opt.Full(), col.HotPaths(1, 0), col.Cuts())
	if err := g.EnableHybrid(t.TempDir(), 20_000); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(res.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Replay(res.P, f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if g.HybridEpochs() < 2 {
		t.Fatalf("expected multiple flushed epochs, got %d", g.HybridEpochs())
	}
	if g.ResidentPairs() >= g.LabelPairs() {
		t.Fatalf("flushing did not reduce resident labels: %d resident of %d total",
			g.ResidentPairs(), g.LabelPairs())
	}
	for _, a := range res.Crit {
		c := slicing.AddrCriterion(a)
		want, _, err := res.FP.Slice(c)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := g.Slice(c)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got) {
			t.Fatalf("criterion %d: hybrid OPT slice differs from FP", a)
		}
	}
	if g.HybridLoads() == 0 {
		t.Fatal("slicing never loaded an epoch file; criteria did not exercise the disk path")
	}
	t.Logf("hybrid: %d epochs, %d loads, %d resident of %d total pairs",
		g.HybridEpochs(), g.HybridLoads(), g.ResidentPairs(), g.LabelPairs())
}

// TestHybridFuzz runs the random-program differential under hybrid mode.
func TestHybridFuzz(t *testing.T) {
	seeds := 15
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(100); seed < int64(100+seeds); seed++ {
		src := RandProgram(seed)
		w := Workload{Name: "fuzz-hybrid", Src: src}
		res, err := Build(w, Options{WithFP: true, NCriteria: 6})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		col := profile.NewCollector(res.P)
		if _, err := interp.Run(res.P, interp.Options{Sink: col}); err != nil {
			t.Fatal(err)
		}
		g := opt.NewGraph(res.P, opt.Full(), col.HotPaths(1, 0), col.Cuts())
		if err := g.EnableHybrid(t.TempDir(), 1); err != nil { // flush as often as possible
			t.Fatal(err)
		}
		f, err := os.Open(res.TracePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Replay(res.P, f, g); err != nil {
			t.Fatal(err)
		}
		f.Close()
		for _, a := range res.Crit {
			c := slicing.AddrCriterion(a)
			want, _, err := res.FP.Slice(c)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := g.Slice(c)
			if err != nil {
				t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
			}
			if !want.Equal(got) {
				t.Fatalf("seed %d criterion %d: hybrid != FP\nprogram:\n%s", seed, a, src)
			}
		}
		res.Close()
	}
}
