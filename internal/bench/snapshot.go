package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"dynslice/internal/slicing/snapshot"
)

// SnapshotBench is one workload's record in BENCH_snapshot.json: the cost
// of getting queryable FP+OPT graphs by trace-replay construction versus
// loading the persistent graph image, plus the image's footprint on disk
// against the graphs' resident bytes.
type SnapshotBench struct {
	Name      string `json:"name"`
	NCriteria int    `json:"n_criteria"`

	BuildMs float64 `json:"build_ms"` // trace replay -> FP+OPT graphs (best of reps)
	WriteMs float64 `json:"write_ms"` // serialize + atomic rename
	LoadMs  float64 `json:"load_ms"`  // single read -> queryable graphs (best of reps)
	// SnapshotLoadSpeedup is the headline: replay-build time over
	// snapshot-load time for the same pair of graphs.
	SnapshotLoadSpeedup float64 `json:"snapshot_load_speedup"`

	FileBytes     int64   `json:"file_bytes"`     // .dysnap size on disk
	ResidentBytes int64   `json:"resident_bytes"` // FP+OPT in-memory accounting
	BytesRatio    float64 `json:"bytes_ratio"`    // file / resident

	IdenticalSlices bool `json:"identical_slices"`
}

const snapshotReps = 3

// minLoadSpeedup is the gate RunSnapshot enforces per workload: loading
// the image must beat rebuilding from the trace by at least this factor,
// or the snapshot has stopped paying for its complexity.
const minLoadSpeedup = 5.0

// RunSnapshot measures the persistent-snapshot path on every workload and
// writes per-workload records to outPath (cmd/experiments -exp snapshot).
// It hard-fails if any loaded graph answers a criterion differently from
// the resident graph it was saved from, or if the load speedup falls
// below minLoadSpeedup.
func RunSnapshot(w io.Writer, workloads []Workload, outPath string) error {
	header(w, "Snapshot: single-read graph images vs trace-replay build",
		fmt.Sprintf("%-12s %10s %10s %10s %9s %11s %11s %7s\n",
			"Program", "build(ms)", "write(ms)", "load(ms)", "speedup", "file", "resident", "f/r"))
	var out []SnapshotBench
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, WithOPT: true})
		if err != nil {
			return err
		}
		sb, err := measureSnapshot(res)
		res.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %10.3f %10.3f %10.3f %8.1fx %10dB %10dB %6.2fx\n",
			wl.Name, sb.BuildMs, sb.WriteMs, sb.LoadMs, sb.SnapshotLoadSpeedup,
			sb.FileBytes, sb.ResidentBytes, sb.BytesRatio)
		if !sb.IdenticalSlices {
			return fmt.Errorf("snapshot %s: loaded graphs answered differently from the resident graphs", wl.Name)
		}
		if sb.SnapshotLoadSpeedup < minLoadSpeedup {
			return fmt.Errorf("snapshot %s: load speedup %.2fx below the %.0fx gate",
				wl.Name, sb.SnapshotLoadSpeedup, minLoadSpeedup)
		}
		out = append(out, sb)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", outPath)
	}
	return nil
}

func measureSnapshot(res *Result) (SnapshotBench, error) {
	sb := SnapshotBench{Name: res.W.Name, NCriteria: len(res.Crit)}

	hot, cuts, err := reprofile(res)
	if err != nil {
		return sb, err
	}

	// Cold build cost: trace replay into fresh FP+OPT graphs, best of
	// reps — the work a cache hit skips. The harness's own res.FP/res.OPT
	// stay the reference graphs for the identity check.
	buildTime := time.Duration(1 << 62)
	for rep := 0; rep < snapshotReps; rep++ {
		t0 := time.Now()
		g := NewFPGraph(res.P)
		if err := replayFile(res, g); err != nil {
			return sb, err
		}
		og := NewOPTGraph(res.P, hot, cuts)
		if err := replayFile(res, og); err != nil {
			return sb, err
		}
		buildTime = min(buildTime, time.Since(t0))
	}

	dir, err := os.MkdirTemp("", "dynslice-snap")
	if err != nil {
		return sb, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.dysnap")
	var key snapshot.Key
	img := &snapshot.Image{
		Output: res.RunInfo.Output, Steps: res.RunInfo.Steps, Return: res.RunInfo.ReturnValue,
		FP: res.FP, OPT: res.OPT,
	}
	t0 := time.Now()
	n, err := snapshot.Write(path, key, img)
	if err != nil {
		return sb, err
	}
	sb.WriteMs = ms(time.Since(t0))
	sb.FileBytes = n
	sb.ResidentBytes = res.FP.ResidentBytes() + res.OPT.ResidentBytes()
	if sb.ResidentBytes > 0 {
		sb.BytesRatio = float64(sb.FileBytes) / float64(sb.ResidentBytes)
	}

	// Warm load cost: one sequential read into queryable graphs.
	loadTime := time.Duration(1 << 62)
	var loaded *snapshot.Image
	for rep := 0; rep < snapshotReps; rep++ {
		t0 := time.Now()
		loaded, err = snapshot.Read(path, res.P, key)
		if err != nil {
			return sb, err
		}
		loadTime = min(loadTime, time.Since(t0))
	}
	sb.BuildMs = ms(buildTime)
	sb.LoadMs = ms(loadTime)
	if loadTime > 0 {
		sb.SnapshotLoadSpeedup = float64(buildTime) / float64(loadTime)
	}

	// Slice identity: every criterion, both backends, loaded vs resident.
	sb.IdenticalSlices = true
	wantFP, err := sliceLoop(res.FP, res.Crit)
	if err != nil {
		return sb, err
	}
	gotFP, err := sliceLoop(loaded.FP, res.Crit)
	if err != nil {
		return sb, err
	}
	wantOPT, err := sliceLoop(res.OPT, res.Crit)
	if err != nil {
		return sb, err
	}
	gotOPT, err := sliceLoop(loaded.OPT, res.Crit)
	if err != nil {
		return sb, err
	}
	for i := range res.Crit {
		if !wantFP[i].Equal(gotFP[i]) || !wantOPT[i].Equal(gotOPT[i]) {
			sb.IdenticalSlices = false
		}
	}
	return sb, nil
}
