package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"dynslice/internal/slicing"
	"dynslice/internal/slicing/fp"
	"dynslice/internal/slicing/opt"
	"dynslice/internal/trace"
)

// ParallelBench is one (workload, GOMAXPROCS) record of the parallel
// engine experiment: pipelined vs sequential graph construction, and the
// paper's 25-criteria experiment answered by the batched work-stealing
// SliceAll against a sequential per-criterion loop, on both the OPT graph
// and the demand-driven LP slicer.
//
// The sequential baselines (seq_build_ms, opt_seq_slice_ms,
// lp_seq_slice_ms) are always measured pinned to GOMAXPROCS=1 and are
// repeated verbatim on every row of a workload, so each row's speedups
// read directly as "parallel path at this GOMAXPROCS vs the sequential
// baseline". The parallel contenders (pipelined build with epoch-parallel
// label encoding, batched SliceAll on the work-stealing scheduler) run
// under the row's GOMAXPROCS, with the scheduler's worker pool set to
// match. Batching wins even at one worker — LP shares one backward scan,
// OPT shares the visited table and memoized expansions across criteria —
// and the per-setting rows show what the worker pool adds on top. See
// docs/PERFORMANCE.md ("Batch scheduling") for how to read these numbers.
type ParallelBench struct {
	Name       string `json:"name"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NCriteria  int    `json:"n_criteria"`

	SeqBuildMs   float64 `json:"seq_build_ms"`       // FP then OPT, one replay each, GOMAXPROCS=1
	PipeBuildMs  float64 `json:"pipelined_build_ms"` // both graphs, one shared pipelined pass
	BuildSpeedup float64 `json:"build_speedup"`

	OPTSeqMs      float64 `json:"opt_seq_slice_ms"`   // criterion loop under GOMAXPROCS=1
	OPTBatchMs    float64 `json:"opt_batch_slice_ms"` // one SliceAll call, workers = GOMAXPROCS
	OPTBatchSpeed float64 `json:"opt_batch_speedup"`  // opt seq / batch

	LPSeqMs      float64 `json:"lp_seq_slice_ms"`   // criterion loop under GOMAXPROCS=1
	LPBatchMs    float64 `json:"lp_batch_slice_ms"` // one SliceAll (one shared scan)
	LPBatchSpeed float64 `json:"lp_batch_speedup"`  // lp seq / batch

	// Speedup is the headline: the batched+parallel path against the
	// sequential baseline, taken where batching is load-bearing (LP).
	Speedup float64 `json:"speedup"`

	IdenticalSlices bool `json:"identical_slices"`
}

const parallelReps = 3

// procSweep returns the GOMAXPROCS settings to measure: 1, 4, and the
// machine's CPU count, deduplicated and ascending. GOMAXPROCS above
// NumCPU is still measured — it exercises the scheduler's worker pool
// and oversubscription behavior even when the hardware cannot run the
// workers simultaneously.
func procSweep() []int {
	set := map[int]bool{1: true, 4: true, runtime.NumCPU(): true}
	var ps []int
	for p := range set {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	return ps
}

// RunParallel measures the parallel slicing engine against its sequential
// baselines across a GOMAXPROCS sweep and writes one record per
// (workload, setting) to outPath (cmd/experiments -exp parallel).
func RunParallel(w io.Writer, workloads []Workload, outPath string) error {
	header(w, "Parallel engine: pipelined builds and batched slicing, GOMAXPROCS sweep",
		fmt.Sprintf("%-12s %5s %9s %9s %10s %10s %10s %10s %8s\n",
			"Program", "P", "build", "build|", "opt", "opt[]", "lp", "lp[]", "speedup"))
	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)
	var out []ParallelBench
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, WithOPT: true, WithLP: true, SegBlocks: 512})
		if err != nil {
			return err
		}
		rows, err := measureParallel(res)
		res.Close()
		if err != nil {
			return err
		}
		for _, pb := range rows {
			fmt.Fprintf(w, "%-12s %5d %7.0fms %7.0fms %8.1fms %8.1fms %8.1fms %8.1fms %7.2fx\n",
				wl.Name, pb.GOMAXPROCS, pb.SeqBuildMs, pb.PipeBuildMs,
				pb.OPTSeqMs, pb.OPTBatchMs,
				pb.LPSeqMs, pb.LPBatchMs, pb.Speedup)
			if !pb.IdenticalSlices {
				return fmt.Errorf("parallel %s (GOMAXPROCS=%d): batched slices diverge from sequential", wl.Name, pb.GOMAXPROCS)
			}
		}
		out = append(out, rows...)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", outPath)
	}
	return nil
}

// measureParallel produces one ParallelBench row per GOMAXPROCS setting.
// The sequential baselines are measured once, pinned to one proc, and
// shared by every row.
func measureParallel(res *Result) ([]ParallelBench, error) {
	hot, cuts, err := reprofile(res)
	if err != nil {
		return nil, err
	}

	// Sequential build baseline: two plain replays (FP then OPT), pinned.
	var seqBuild time.Duration
	{
		old := runtime.GOMAXPROCS(1)
		seqBuild = time.Duration(1 << 62)
		for rep := 0; rep < parallelReps; rep++ {
			t0 := time.Now()
			fpg := fp.NewGraph(res.P)
			if err := replayFile(res, fpg); err != nil {
				runtime.GOMAXPROCS(old)
				return nil, err
			}
			og := opt.NewGraph(res.P, opt.Full(), hot, cuts)
			if err := replayFile(res, og); err != nil {
				runtime.GOMAXPROCS(old)
				return nil, err
			}
			seqBuild = min(seqBuild, time.Since(t0))
		}
		runtime.GOMAXPROCS(old)
	}

	// Sequential slicing baselines. Warm up once so the lazily memoized
	// shortcut closures don't bias whichever contender runs first.
	crit := res.Crit
	want, err := sliceLoop(res.OPT, crit)
	if err != nil {
		return nil, err
	}
	optSeq, optSlices, err := timeSliceLoopPinned(res.OPT, crit, parallelReps)
	if err != nil {
		return nil, err
	}
	// The LP sequential loop re-scans the trace per criterion, so one
	// timed pass suffices (and keeps the experiment tractable).
	lpSeq, lpSlices, err := timeSliceLoopPinned(res.LP, crit, 1)
	if err != nil {
		return nil, err
	}

	var rows []ParallelBench
	for _, procs := range procSweep() {
		old := runtime.GOMAXPROCS(procs)
		pb := ParallelBench{Name: res.W.Name, GOMAXPROCS: procs, NCriteria: len(crit)}
		pb.SeqBuildMs = ms(seqBuild)
		pb.OPTSeqMs = ms(optSeq)
		pb.LPSeqMs = ms(lpSeq)

		// Pipelined construction: one shared decode pass fanning to both
		// builders, each sealing label epochs on encode workers.
		pipeBuild := time.Duration(1 << 62)
		for rep := 0; rep < parallelReps; rep++ {
			t0 := time.Now()
			fpg := fp.NewGraph(res.P)
			fpg.SetParallelEncode(procs)
			og := opt.NewGraph(res.P, opt.Full(), hot, cuts)
			og.SetParallelEncode(procs)
			f, err := os.Open(res.TracePath)
			if err != nil {
				runtime.GOMAXPROCS(old)
				return nil, err
			}
			err = trace.ParallelReplay(res.P, f, trace.PipelineConfig{}, fpg, og)
			f.Close()
			if err != nil {
				runtime.GOMAXPROCS(old)
				return nil, err
			}
			pipeBuild = min(pipeBuild, time.Since(t0))
		}
		pb.PipeBuildMs = ms(pipeBuild)
		pb.BuildSpeedup = ratio(seqBuild, pipeBuild)

		// Batched slicing with the scheduler's pool matched to the row.
		res.OPT.SetWorkers(procs)
		optBatch, optBatchSlices, err := timeSliceBatch(res.OPT, crit, parallelReps)
		if err != nil {
			runtime.GOMAXPROCS(old)
			return nil, err
		}
		pb.OPTBatchMs = ms(optBatch)
		pb.OPTBatchSpeed = ratio(optSeq, optBatch)

		lpBatch, lpBatchSlices, err := timeSliceBatch(res.LP, crit, parallelReps)
		if err != nil {
			runtime.GOMAXPROCS(old)
			return nil, err
		}
		pb.LPBatchMs = ms(lpBatch)
		pb.LPBatchSpeed = ratio(lpSeq, lpBatch)
		pb.Speedup = pb.LPBatchSpeed

		pb.IdenticalSlices = true
		for i := range want {
			for _, got := range [][]*slicing.Slice{optSlices, optBatchSlices, lpSlices, lpBatchSlices} {
				if !want[i].Equal(got[i]) {
					pb.IdenticalSlices = false
				}
			}
		}
		rows = append(rows, pb)
		runtime.GOMAXPROCS(old)
	}
	res.OPT.SetWorkers(0)
	return rows, nil
}

// replayFile replays the recorded trace into one sink.
func replayFile(res *Result, sink trace.Sink) error {
	f, err := os.Open(res.TracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.Replay(res.P, f, sink)
}

// sliceLoop is the sequential baseline: one Slice call per criterion.
func sliceLoop(s slicing.Slicer, crit []int64) ([]*slicing.Slice, error) {
	outs := make([]*slicing.Slice, len(crit))
	for i, a := range crit {
		sl, _, err := s.Slice(slicing.AddrCriterion(a))
		if err != nil {
			return nil, err
		}
		outs[i] = sl
	}
	return outs, nil
}

// timeSliceLoopPinned times the sequential loop under GOMAXPROCS=1,
// best of reps.
func timeSliceLoopPinned(s slicing.Slicer, crit []int64, reps int) (time.Duration, []*slicing.Slice, error) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	best := time.Duration(1 << 62)
	var outs []*slicing.Slice
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		o, err := sliceLoop(s, crit)
		if err != nil {
			return 0, nil, err
		}
		best = min(best, time.Since(t0))
		outs = o
	}
	return best, outs, nil
}

// timeSliceBatch times one batched SliceAll, best of reps.
func timeSliceBatch(s slicing.MultiSlicer, crit []int64, reps int) (time.Duration, []*slicing.Slice, error) {
	cs := make([]slicing.Criterion, len(crit))
	for i, a := range crit {
		cs[i] = slicing.AddrCriterion(a)
	}
	best := time.Duration(1 << 62)
	var outs []*slicing.Slice
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		o, _, err := s.SliceAll(cs)
		if err != nil {
			return 0, nil, err
		}
		best = min(best, time.Since(t0))
		outs = o
	}
	return best, outs, nil
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
