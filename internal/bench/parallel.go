package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dynslice/internal/slicing"
	"dynslice/internal/slicing/fp"
	"dynslice/internal/slicing/opt"
	"dynslice/internal/trace"
)

// ParallelBench is one workload's parallel-engine record: pipelined vs
// sequential graph construction, and the paper's 25-criteria experiment
// answered three ways — a sequential loop (the GOMAXPROCS=1 baseline),
// one batched SliceAll traversal, and a concurrent worker pool — on both
// the OPT graph and the demand-driven LP slicer. Batching is the
// designed win for LP (one shared backward trace scan instead of one per
// criterion); for OPT the sequential loop already shares the graph's
// memoized shortcut closures, so batch and loop run close. See
// docs/PERFORMANCE.md for how to read these numbers.
type ParallelBench struct {
	Name       string `json:"name"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NCriteria  int    `json:"n_criteria"`

	SeqBuildMs   float64 `json:"seq_build_ms"`       // FP then OPT, one trace replay each
	PipeBuildMs  float64 `json:"pipelined_build_ms"` // both graphs, one shared pipelined pass
	BuildSpeedup float64 `json:"build_speedup"`

	OPTSeqMs      float64 `json:"opt_seq_slice_ms"`   // criterion loop under GOMAXPROCS=1
	OPTBatchMs    float64 `json:"opt_batch_slice_ms"` // one SliceAll call
	OPTConcMs     float64 `json:"opt_conc_slice_ms"`  // worker-pool independent queries
	OPTBatchSpeed float64 `json:"opt_batch_speedup"`  // opt seq / batch
	OPTConcSpeed  float64 `json:"opt_conc_speedup"`   // opt seq / conc

	LPSeqMs      float64 `json:"lp_seq_slice_ms"`   // criterion loop under GOMAXPROCS=1
	LPBatchMs    float64 `json:"lp_batch_slice_ms"` // one SliceAll (one shared scan)
	LPBatchSpeed float64 `json:"lp_batch_speedup"`  // lp seq / batch

	// Speedup is the headline: the batched+parallel path against the
	// sequential baseline, taken where batching is load-bearing (LP).
	Speedup float64 `json:"speedup"`

	IdenticalSlices bool `json:"identical_slices"`
}

const parallelReps = 3

// RunParallel measures the parallel slicing engine against its sequential
// baselines and writes per-workload records to outPath
// (cmd/experiments -exp parallel).
func RunParallel(w io.Writer, workloads []Workload, outPath string) error {
	header(w, "Parallel engine: pipelined builds and batched/concurrent slicing",
		fmt.Sprintf("%-12s %9s %9s %10s %10s %10s %10s %10s %8s\n",
			"Program", "build", "build|", "opt", "opt[]", "opt||", "lp", "lp[]", "speedup"))
	procs := runtime.GOMAXPROCS(0)
	var out []ParallelBench
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, WithOPT: true, WithLP: true, SegBlocks: 512})
		if err != nil {
			return err
		}
		pb, err := measureParallel(res, procs)
		res.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %7.0fms %7.0fms %8.1fms %8.1fms %8.1fms %8.1fms %8.1fms %7.2fx\n",
			wl.Name, pb.SeqBuildMs, pb.PipeBuildMs,
			pb.OPTSeqMs, pb.OPTBatchMs, pb.OPTConcMs,
			pb.LPSeqMs, pb.LPBatchMs, pb.Speedup)
		if !pb.IdenticalSlices {
			return fmt.Errorf("parallel %s: batched/concurrent slices diverge from sequential", wl.Name)
		}
		out = append(out, pb)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", outPath)
	}
	return nil
}

func measureParallel(res *Result, procs int) (ParallelBench, error) {
	pb := ParallelBench{Name: res.W.Name, GOMAXPROCS: procs, NCriteria: len(res.Crit)}

	hot, cuts, err := reprofile(res)
	if err != nil {
		return pb, err
	}

	// Graph construction: two sequential replays (FP then OPT) vs one
	// shared pipelined pass. Best-of-N to damp scheduler noise.
	seqBuild, pipeBuild := time.Duration(1<<62), time.Duration(1<<62)
	for rep := 0; rep < parallelReps; rep++ {
		t0 := time.Now()
		fpg := fp.NewGraph(res.P)
		if err := replayFile(res, fpg); err != nil {
			return pb, err
		}
		og := opt.NewGraph(res.P, opt.Full(), hot, cuts)
		if err := replayFile(res, og); err != nil {
			return pb, err
		}
		seqBuild = min(seqBuild, time.Since(t0))

		t0 = time.Now()
		fpg = fp.NewGraph(res.P)
		og = opt.NewGraph(res.P, opt.Full(), hot, cuts)
		f, err := os.Open(res.TracePath)
		if err != nil {
			return pb, err
		}
		err = trace.ParallelReplay(res.P, f, trace.PipelineConfig{}, fpg, og)
		f.Close()
		if err != nil {
			return pb, err
		}
		pipeBuild = min(pipeBuild, time.Since(t0))
	}
	pb.SeqBuildMs, pb.PipeBuildMs = ms(seqBuild), ms(pipeBuild)
	pb.BuildSpeedup = ratio(seqBuild, pipeBuild)

	// OPT slicing. Warm up once so the lazily memoized shortcut closures
	// don't bias whichever contender runs first.
	crit := res.Crit
	want, err := sliceLoop(res.OPT, crit)
	if err != nil {
		return pb, err
	}
	optSeq, optSlices, err := timeSliceLoopPinned(res.OPT, crit, parallelReps)
	if err != nil {
		return pb, err
	}
	optBatch, optBatchSlices, err := timeSliceBatch(res.OPT, crit, parallelReps)
	if err != nil {
		return pb, err
	}
	optConc := time.Duration(1 << 62)
	var optConcSlices []*slicing.Slice
	for rep := 0; rep < parallelReps; rep++ {
		t0 := time.Now()
		outs, err := concurrentSlices(res.OPT, crit, procs)
		if err != nil {
			return pb, err
		}
		optConc = min(optConc, time.Since(t0))
		optConcSlices = outs
	}
	pb.OPTSeqMs, pb.OPTBatchMs, pb.OPTConcMs = ms(optSeq), ms(optBatch), ms(optConc)
	pb.OPTBatchSpeed = ratio(optSeq, optBatch)
	pb.OPTConcSpeed = ratio(optSeq, optConc)

	// LP slicing: the sequential loop re-scans the trace per criterion,
	// so one timed pass suffices (and keeps the experiment tractable);
	// the batch answers all criteria in one shared backward scan.
	lpSeq, lpSlices, err := timeSliceLoopPinned(res.LP, crit, 1)
	if err != nil {
		return pb, err
	}
	lpBatch, lpBatchSlices, err := timeSliceBatch(res.LP, crit, parallelReps)
	if err != nil {
		return pb, err
	}
	pb.LPSeqMs, pb.LPBatchMs = ms(lpSeq), ms(lpBatch)
	pb.LPBatchSpeed = ratio(lpSeq, lpBatch)
	pb.Speedup = pb.LPBatchSpeed

	pb.IdenticalSlices = true
	for i := range want {
		for _, got := range [][]*slicing.Slice{optSlices, optBatchSlices, optConcSlices, lpSlices, lpBatchSlices} {
			if !want[i].Equal(got[i]) {
				pb.IdenticalSlices = false
			}
		}
	}
	return pb, nil
}

// replayFile replays the recorded trace into one sink.
func replayFile(res *Result, sink trace.Sink) error {
	f, err := os.Open(res.TracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.Replay(res.P, f, sink)
}

// sliceLoop is the sequential baseline: one Slice call per criterion.
func sliceLoop(s slicing.Slicer, crit []int64) ([]*slicing.Slice, error) {
	outs := make([]*slicing.Slice, len(crit))
	for i, a := range crit {
		sl, _, err := s.Slice(slicing.AddrCriterion(a))
		if err != nil {
			return nil, err
		}
		outs[i] = sl
	}
	return outs, nil
}

// timeSliceLoopPinned times the sequential loop under GOMAXPROCS=1,
// best of reps.
func timeSliceLoopPinned(s slicing.Slicer, crit []int64, reps int) (time.Duration, []*slicing.Slice, error) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	best := time.Duration(1 << 62)
	var outs []*slicing.Slice
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		o, err := sliceLoop(s, crit)
		if err != nil {
			return 0, nil, err
		}
		best = min(best, time.Since(t0))
		outs = o
	}
	return best, outs, nil
}

// timeSliceBatch times one batched SliceAll, best of reps.
func timeSliceBatch(s slicing.MultiSlicer, crit []int64, reps int) (time.Duration, []*slicing.Slice, error) {
	cs := make([]slicing.Criterion, len(crit))
	for i, a := range crit {
		cs[i] = slicing.AddrCriterion(a)
	}
	best := time.Duration(1 << 62)
	var outs []*slicing.Slice
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		o, _, err := s.SliceAll(cs)
		if err != nil {
			return 0, nil, err
		}
		best = min(best, time.Since(t0))
		outs = o
	}
	return best, outs, nil
}

// concurrentSlices answers each criterion independently on a worker pool.
func concurrentSlices(s slicing.Slicer, crit []int64, workers int) ([]*slicing.Slice, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(crit) {
		workers = len(crit)
	}
	outs := make([]*slicing.Slice, len(crit))
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(crit)) {
					return
				}
				sl, _, err := s.Slice(slicing.AddrCriterion(crit[i]))
				if err != nil {
					errs[w] = err
					return
				}
				outs[i] = sl
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
