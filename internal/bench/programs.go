// Package bench provides the evaluation harness: the ten synthetic
// workloads standing in for the paper's SPECInt2000/95 benchmarks, the
// build pipeline that produces every slicer variant for a workload, and
// measurement helpers used by cmd/experiments and the benchmark suite.
//
// Each workload is a MiniC program whose dependence structure mirrors the
// character of its namesake (compressor, parser, interpreter, network
// simplex, annealer, database, ...): loop-dominated computation with a mix
// of scalars, arrays, pointers (for the aliasing-sensitive optimizations),
// globals, and function calls. Run lengths are scaled to ~10^5 executed
// statements by default (tunable via the first input value), versus the
// paper's 10^8 — the evaluation compares shapes, not absolute numbers.
package bench

// Workload is one benchmark program.
type Workload struct {
	Name  string
	Suite string
	Src   string
	Input []int64
}

// Workloads returns the ten workloads in the paper's Table 1 order.
func Workloads() []Workload {
	return []Workload{
		{Name: "300.twolf", Suite: "SPECInt2000", Src: srcTwolf},
		{Name: "256.bzip2", Suite: "SPECInt2000", Src: srcBzip2},
		{Name: "255.vortex", Suite: "SPECInt2000", Src: srcVortex},
		{Name: "197.parser", Suite: "SPECInt2000", Src: srcParser},
		{Name: "181.mcf", Suite: "SPECInt2000", Src: srcMcf},
		{Name: "164.gzip", Suite: "SPECInt2000", Src: srcGzip},
		{Name: "134.perl", Suite: "SPECInt95", Src: srcPerl},
		{Name: "130.li", Suite: "SPECInt95", Src: srcLi},
		{Name: "126.gcc", Suite: "SPECInt95", Src: srcGcc},
		{Name: "099.go", Suite: "SPECInt95", Src: srcGo},
	}
}

// ByName returns the workload with the given name (with or without the
// numeric prefix).
func ByName(name string) (Workload, bool) {
	for _, w := range Workloads() {
		if w.Name == name || stripPrefix(w.Name) == name {
			return w, true
		}
	}
	return Workload{}, false
}

func stripPrefix(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}

// srcGzip: LZ77-style compressor — sliding-window match search over a
// pseudo-random buffer, emitting literals and (offset, length) pairs.
const srcGzip = `
var buf[2048];
var out[4096];
var outn = 0;
var seed = 12345;

func rnd(m) {
	seed = (seed * 1103515245 + 12345) % 2147483648;
	return seed % m;
}

func emit(v) {
	out[outn % 4096] = v;
	outn = outn + 1;
	return outn;
}

func main() {
	var n = input();
	if (n == 0) { n = 900; }
	var i = 0;
	while (i < n) {
		buf[i % 2048] = rnd(14);
		i = i + 1;
	}
	var pos = 0;
	while (pos < n) {
		var bestlen = 0;
		var bestoff = 0;
		var w = pos - 48;
		if (w < 0) { w = 0; }
		var j = w;
		while (j < pos) {
			var l = 0;
			while (pos + l < n && l < 8 && buf[(j + l) % 2048] == buf[(pos + l) % 2048]) {
				l = l + 1;
			}
			if (l > bestlen) {
				bestlen = l;
				bestoff = pos - j;
			}
			j = j + 1;
		}
		if (bestlen > 2) {
			emit(1000 + bestoff * 16 + bestlen);
			pos = pos + bestlen;
		} else {
			emit(buf[pos % 2048]);
			pos = pos + 1;
		}
	}
	print(outn);
	print(out[(outn - 1) % 4096]);
}
`

// srcBzip2: run-length encoding plus move-to-front transform over a
// generated buffer with runs.
const srcBzip2 = `
var data[4096];
var mtf[64];
var out[8192];
var outn = 0;
var seed = 777;

func rnd(m) {
	seed = (seed * 1103515245 + 12345) % 2147483648;
	return seed % m;
}

func mtfEncode(sym) {
	var idx = 0;
	while (mtf[idx] != sym) {
		idx = idx + 1;
	}
	var j = idx;
	while (j > 0) {
		mtf[j] = mtf[j - 1];
		j = j - 1;
	}
	mtf[0] = sym;
	return idx;
}

func main() {
	var n = input();
	if (n == 0) { n = 2600; }
	var i = 0;
	var cur = rnd(48);
	var runleft = 1 + rnd(9);
	while (i < n) {
		data[i % 4096] = cur;
		runleft = runleft - 1;
		if (runleft == 0) {
			cur = rnd(48);
			runleft = 1 + rnd(9);
		}
		i = i + 1;
	}
	i = 0;
	while (i < 64) {
		mtf[i] = i;
		i = i + 1;
	}
	// RLE over the MTF stream.
	var prev = 0 - 1;
	var count = 0;
	i = 0;
	while (i < n) {
		var enc = mtfEncode(data[i % 4096]);
		if (enc == prev) {
			count = count + 1;
		} else {
			if (count > 0) {
				out[outn % 8192] = prev * 32 + count;
				outn = outn + 1;
			}
			prev = enc;
			count = 1;
		}
		i = i + 1;
	}
	out[outn % 8192] = prev * 32 + count;
	outn = outn + 1;
	print(outn);
}
`

// srcVortex: an in-memory object store — open-addressed hash table with
// inserts, lookups, updates through pointers, and tombstone deletes.
const srcVortex = `
var keys[1024];
var vals[1024];
var state[1024];
var seed = 4242;
var hits = 0;
var misses = 0;

func rnd(m) {
	seed = (seed * 1103515245 + 12345) % 2147483648;
	return seed % m;
}

func slot(k) {
	var h = (k * 2654435761) % 1024;
	if (h < 0) { h = 0 - h; }
	var probes = 0;
	while (probes < 1024) {
		if (state[h] == 0) { return h; }
		if (state[h] == 1 && keys[h] == k) { return h; }
		h = (h + 1) % 1024;
		probes = probes + 1;
	}
	return 0 - 1;
}

func insert(k, v) {
	var h = slot(k);
	if (h < 0) { return 0; }
	keys[h] = k;
	vals[h] = v;
	state[h] = 1;
	return 1;
}

func bump(k, by) {
	var h = slot(k);
	if (h < 0) { return 0; }
	if (state[h] != 1) { misses = misses + 1; return 0; }
	var p = &vals[h];
	*p = *p + by;
	hits = hits + 1;
	return *p;
}

func remove(k) {
	var h = slot(k);
	if (h >= 0 && state[h] == 1) {
		state[h] = 2;
		return 1;
	}
	return 0;
}

func main() {
	var rounds = input();
	if (rounds == 0) { rounds = 2200; }
	var i = 0;
	while (i < rounds) {
		var op = rnd(10);
		var k = rnd(500);
		if (op < 4) {
			insert(k, k * 3);
		} else {
			if (op < 8) {
				bump(k, 1);
			} else {
				remove(k);
			}
		}
		i = i + 1;
	}
	print(hits);
	print(misses);
}
`

// srcParser: generates parenthesized expression token streams and parses
// them with a recursive-descent evaluator.
const srcParser = `
var toks[8192];
var ntok = 0;
var pos = 0;
var seed = 99;
var total = 0;

func rnd(m) {
	seed = (seed * 1103515245 + 12345) % 2147483648;
	return seed % m;
}

func gen(depth) {
	if (depth <= 0 || rnd(10) < 4) {
		toks[ntok % 8192] = 100 + rnd(50);
		ntok = ntok + 1;
		return 0;
	}
	toks[ntok % 8192] = 1;
	ntok = ntok + 1;
	gen(depth - 1);
	toks[ntok % 8192] = 2 + rnd(4);
	ntok = ntok + 1;
	gen(depth - 1);
	toks[ntok % 8192] = 6;
	ntok = ntok + 1;
	return 0;
}

func parseExpr() {
	var t = toks[pos % 8192];
	if (t >= 100) {
		pos = pos + 1;
		return t - 100;
	}
	// '(' expr op expr ')'
	pos = pos + 1;
	var a = parseExpr();
	var op = toks[pos % 8192];
	pos = pos + 1;
	var b = parseExpr();
	pos = pos + 1;
	if (op == 2) { return a + b; }
	if (op == 3) { return a - b; }
	if (op == 4) { return a * b % 10007; }
	return a + b * 2;
}

func main() {
	var exprs = input();
	if (exprs == 0) { exprs = 260; }
	var e = 0;
	while (e < exprs) {
		ntok = 0;
		pos = 0;
		gen(5);
		total = (total + parseExpr()) % 1000003;
		e = e + 1;
	}
	print(total);
}
`

// srcMcf: network-flow flavored — Bellman-Ford relaxation over a random
// sparse graph held in edge arrays.
const srcMcf = `
var eu[4096];
var ev[4096];
var ew[4096];
var dist[256];
var seed = 31337;

func rnd(m) {
	seed = (seed * 1103515245 + 12345) % 2147483648;
	return seed % m;
}

func main() {
	var nodes = 180;
	var edges = input();
	if (edges == 0) { edges = 1400; }
	var i = 0;
	while (i < edges) {
		eu[i % 4096] = rnd(nodes);
		ev[i % 4096] = rnd(nodes);
		ew[i % 4096] = 1 + rnd(90);
		i = i + 1;
	}
	i = 0;
	while (i < nodes) {
		dist[i] = 1000000;
		i = i + 1;
	}
	dist[0] = 0;
	var round = 0;
	var changed = 1;
	while (changed == 1 && round < 24) {
		changed = 0;
		var j = 0;
		while (j < edges) {
			var du = dist[eu[j % 4096]];
			var cand = du + ew[j % 4096];
			if (du < 1000000 && cand < dist[ev[j % 4096]]) {
				dist[ev[j % 4096]] = cand;
				changed = 1;
			}
			j = j + 1;
		}
		round = round + 1;
	}
	var sum = 0;
	i = 0;
	while (i < nodes) {
		if (dist[i] < 1000000) { sum = sum + dist[i]; }
		i = i + 1;
	}
	print(sum);
	print(round);
}
`

// srcTwolf: placement by simulated annealing — random cell swaps with a
// wire-length objective over nets, accepting uphill moves with decaying
// probability.
const srcTwolf = `
var place[200];
var cellof[200];
var n1[512];
var n2[512];
var seed = 2718;
var best = 0;

func rnd(m) {
	seed = (seed * 1103515245 + 12345) % 2147483648;
	return seed % m;
}

func netcost(i) {
	var a = place[n1[i]];
	var b = place[n2[i]];
	var d = a - b;
	if (d < 0) { d = 0 - d; }
	return d;
}

func totalcost(nets) {
	var c = 0;
	var i = 0;
	while (i < nets) {
		c = c + netcost(i);
		i = i + 1;
	}
	return c;
}

func main() {
	var iters = input();
	if (iters == 0) { iters = 210; }
	var cells = 200;
	var nets = 512;
	var i = 0;
	while (i < cells) {
		place[i] = i;
		cellof[i] = i;
		i = i + 1;
	}
	i = 0;
	while (i < nets) {
		n1[i] = rnd(cells);
		n2[i] = rnd(cells);
		i = i + 1;
	}
	var cost = totalcost(nets);
	var temp = 120;
	var it = 0;
	while (it < iters) {
		var a = rnd(cells);
		var b = rnd(cells);
		var tmp = place[a];
		place[a] = place[b];
		place[b] = tmp;
		var ncost = totalcost(nets);
		var accept = 0;
		if (ncost <= cost) { accept = 1; }
		if (ncost > cost && rnd(120) < temp) { accept = 1; }
		if (accept == 1) {
			cost = ncost;
		} else {
			tmp = place[a];
			place[a] = place[b];
			place[b] = tmp;
		}
		if (it % 16 == 15 && temp > 2) { temp = temp - 2; }
		it = it + 1;
	}
	best = cost;
	print(best);
}
`

// srcPerl: text mangling — letter frequency counting, a Caesar rotation
// keyed off the histogram, and repeated passes with an associative lookup.
const srcPerl = `
var text[4096];
var freq[26];
var assoc_k[128];
var assoc_v[128];
var nassoc = 0;
var seed = 55;

func rnd(m) {
	seed = (seed * 1103515245 + 12345) % 2147483648;
	return seed % m;
}

func assocAdd(k, v) {
	var i = 0;
	while (i < nassoc) {
		if (assoc_k[i] == k) {
			var p = &assoc_v[i];
			*p = *p + v;
			return *p;
		}
		i = i + 1;
	}
	assoc_k[nassoc % 128] = k;
	assoc_v[nassoc % 128] = v;
	nassoc = nassoc + 1;
	return v;
}

func main() {
	var n = input();
	if (n == 0) { n = 1700; }
	var i = 0;
	while (i < n) {
		text[i % 4096] = rnd(26);
		i = i + 1;
	}
	var pass = 0;
	while (pass < 3) {
		i = 0;
		while (i < 26) {
			freq[i] = 0;
			i = i + 1;
		}
		i = 0;
		while (i < n) {
			freq[text[i % 4096]] = freq[text[i % 4096]] + 1;
			i = i + 1;
		}
		var top = 0;
		i = 1;
		while (i < 26) {
			if (freq[i] > freq[top]) { top = i; }
			i = i + 1;
		}
		assocAdd(top, freq[top]);
		i = 0;
		while (i < n) {
			text[i % 4096] = (text[i % 4096] + top) % 26;
			i = i + 1;
		}
		pass = pass + 1;
	}
	print(nassoc);
	print(assoc_v[0]);
}
`

// srcLi: a bytecode interpreter (the lisp interpreter stand-in): a small
// register/stack VM executing a hand-assembled program with loops.
const srcLi = `
var code[64];
var stk[64];
var sp = 0;
var cells[16];
var steps = 0;

func push(v) {
	stk[sp % 64] = v;
	sp = sp + 1;
	return sp;
}

func pop() {
	sp = sp - 1;
	return stk[sp % 64];
}

func main() {
	var outer = input();
	if (outer == 0) { outer = 55; }
	// Program: cells[0] = outer; loop: cells[1] += cells[0]*3; cells[0]--;
	// until cells[0] == 0; result in cells[1].
	code[0] = 1;  code[1] = 3;   // push 3
	code[2] = 4;  code[3] = 0;   // load cell 0
	code[4] = 2;                 // mul
	code[5] = 4;  code[6] = 1;   // load cell 1
	code[7] = 3;                 // add
	code[8] = 5;  code[9] = 1;   // store cell 1
	code[10] = 4; code[11] = 0;  // load cell 0
	code[12] = 1; code[13] = 1;  // push 1
	code[14] = 6;                // sub
	code[15] = 5; code[16] = 0;  // store cell 0
	code[17] = 4; code[18] = 0;  // load cell 0
	code[19] = 7; code[20] = 0;  // jnz 0
	code[21] = 8;                // halt
	var run = 0;
	var acc = 0;
	while (run < outer) {
		cells[0] = 40 + run % 7;
		cells[1] = 0;
		var pc = 0;
		var halted = 0;
		while (halted == 0) {
			var op = code[pc % 64];
			steps = steps + 1;
			if (op == 1) { push(code[(pc + 1) % 64]); pc = pc + 2; }
			else { if (op == 2) { var b = pop(); var a = pop(); push(a * b); pc = pc + 1; }
			else { if (op == 3) { var b2 = pop(); var a2 = pop(); push(a2 + b2); pc = pc + 1; }
			else { if (op == 4) { push(cells[code[(pc + 1) % 64] % 16]); pc = pc + 2; }
			else { if (op == 5) { cells[code[(pc + 1) % 64] % 16] = pop(); pc = pc + 2; }
			else { if (op == 6) { var b3 = pop(); var a3 = pop(); push(a3 - b3); pc = pc + 1; }
			else { if (op == 7) { var c = pop(); if (c != 0) { pc = code[(pc + 1) % 64]; } else { pc = pc + 2; } }
			else { halted = 1; } } } } } } }
		}
		acc = (acc + cells[1]) % 1000003;
		run = run + 1;
	}
	print(acc);
	print(steps);
}
`

// srcGcc: compiler flavored — iterative liveness dataflow over a random
// CFG, sets represented as per-variable flag arrays.
const srcGcc = `
var succ1[64];
var succ2[64];
var genv[2048];
var killv[2048];
var livein[2048];
var liveout[2048];
var seed = 1234;

func rnd(m) {
	seed = (seed * 1103515245 + 12345) % 2147483648;
	return seed % m;
}

func main() {
	var nb = 48;
	var nv = input();
	if (nv == 0) { nv = 30; }
	if (nv > 32) { nv = 32; }
	var b = 0;
	while (b < nb) {
		succ1[b] = (b + 1) % nb;
		succ2[b] = rnd(nb);
		var v = 0;
		while (v < nv) {
			genv[b * 32 + v] = 0;
			killv[b * 32 + v] = 0;
			if (rnd(10) < 2) { genv[b * 32 + v] = 1; }
			if (rnd(10) < 2) { killv[b * 32 + v] = 1; }
			livein[b * 32 + v] = 0;
			liveout[b * 32 + v] = 0;
			v = v + 1;
		}
		b = b + 1;
	}
	var changed = 1;
	var rounds = 0;
	while (changed == 1 && rounds < 40) {
		changed = 0;
		b = nb - 1;
		while (b >= 0) {
			var v = 0;
			while (v < nv) {
				var o = livein[succ1[b] * 32 + v];
				if (livein[succ2[b] * 32 + v] == 1) { o = 1; }
				if (o != liveout[b * 32 + v]) {
					liveout[b * 32 + v] = o;
					changed = 1;
				}
				var inn = genv[b * 32 + v];
				if (o == 1 && killv[b * 32 + v] == 0) { inn = 1; }
				if (inn != livein[b * 32 + v]) {
					livein[b * 32 + v] = inn;
					changed = 1;
				}
				v = v + 1;
			}
			b = b - 1;
		}
		rounds = rounds + 1;
	}
	var live = 0;
	b = 0;
	while (b < nb * 32) {
		live = live + livein[b];
		b = b + 1;
	}
	print(live);
	print(rounds);
}
`

// srcGo: board game flavored — random stone placement on a bordered board
// and liberty counting by flood fill with an explicit queue.
const srcGo = `
var board[169];
var mark[169];
var queue[169];
var seed = 606;
var libsum = 0;

func rnd(m) {
	seed = (seed * 1103515245 + 12345) % 2147483648;
	return seed % m;
}

func liberties(start) {
	var i = 0;
	while (i < 169) {
		mark[i] = 0;
		i = i + 1;
	}
	var color = board[start];
	var head = 0;
	var tail = 0;
	queue[tail % 169] = start;
	tail = tail + 1;
	mark[start] = 1;
	var libs = 0;
	while (head < tail) {
		var p = queue[head % 169];
		head = head + 1;
		var d = 0;
		while (d < 4) {
			var q = p;
			if (d == 0) { q = p - 13; }
			if (d == 1) { q = p + 13; }
			if (d == 2) { q = p - 1; }
			if (d == 3) { q = p + 1; }
			if (q >= 0 && q < 169 && mark[q] == 0) {
				if (board[q] == 0) {
					libs = libs + 1;
					mark[q] = 1;
				}
				if (board[q] == color) {
					mark[q] = 1;
					queue[tail % 169] = q;
					tail = tail + 1;
				}
			}
			d = d + 1;
		}
	}
	return libs;
}

func main() {
	var moves = input();
	if (moves == 0) { moves = 120; }
	var i = 0;
	while (i < 169) {
		board[i] = 3;
		i = i + 1;
	}
	var r = 1;
	while (r < 12) {
		var c = 1;
		while (c < 12) {
			board[r * 13 + c] = 0;
			c = c + 1;
		}
		r = r + 1;
	}
	var m = 0;
	var color = 1;
	while (m < moves) {
		var p = (1 + rnd(11)) * 13 + 1 + rnd(11);
		if (board[p] == 0) {
			board[p] = color;
			libsum = libsum + liberties(p);
			color = 3 - color;
		}
		m = m + 1;
	}
	print(libsum);
}
`
