package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dynslice/internal/slicing"
)

// TestPipelinedBuildMatchesSequential: graphs built from one shared
// pipelined trace pass must answer every criterion identically to graphs
// built by per-sink sequential replays.
func TestPipelinedBuildMatchesSequential(t *testing.T) {
	w, ok := ByName("181.mcf")
	if !ok {
		t.Fatal("workload 181.mcf missing")
	}
	seq, err := Build(w, Options{WithFP: true, WithOPT: true})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	pipe, err := Build(w, Options{WithFP: true, WithOPT: true, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	if pipe.FPBuild <= 0 || pipe.OPTBuild <= 0 {
		t.Errorf("pipelined build must report per-sink busy times, got fp=%v opt=%v",
			pipe.FPBuild, pipe.OPTBuild)
	}
	for _, a := range seq.Crit {
		c := slicing.AddrCriterion(a)
		want, _, err := seq.FP.Slice(c)
		if err != nil {
			t.Fatal(err)
		}
		gotFP, _, err := pipe.FP.Slice(c)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(gotFP) {
			t.Errorf("criterion %d: pipelined FP slice diverges", a)
		}
		gotOPT, _, err := pipe.OPT.Slice(c)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(gotOPT) {
			t.Errorf("criterion %d: pipelined OPT slice diverges", a)
		}
	}
}

// TestRunParallelSmoke runs the parallel experiment end to end on one
// workload and checks the JSON it emits.
func TestRunParallelSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel experiment is slow; run without -short")
	}
	w, ok := ByName("164.gzip")
	if !ok {
		t.Fatal("workload 164.gzip missing")
	}
	out := filepath.Join(t.TempDir(), "BENCH_parallel.json")
	var buf bytes.Buffer
	if err := RunParallel(&buf, []Workload{w}, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var recs []ParallelBench
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	if want := len(procSweep()); len(recs) != want {
		t.Fatalf("want one record per GOMAXPROCS setting (%d), got %d", want, len(recs))
	}
	seen := map[int]bool{}
	for _, r := range recs {
		if seen[r.GOMAXPROCS] {
			t.Errorf("duplicate GOMAXPROCS row %d", r.GOMAXPROCS)
		}
		seen[r.GOMAXPROCS] = true
		if !r.IdenticalSlices {
			t.Errorf("GOMAXPROCS=%d: batched slices diverged from sequential", r.GOMAXPROCS)
		}
		if r.NCriteria != 25 {
			t.Errorf("want 25 criteria, got %d", r.NCriteria)
		}
		if r.Speedup <= 0 || r.OPTBatchSpeed <= 0 || r.BuildSpeedup <= 0 {
			t.Errorf("speedups must be positive: %+v", r)
		}
		if r.Speedup < 1.5 {
			t.Errorf("GOMAXPROCS=%d: batched+parallel speedup = %.2fx, want >= 1.5x", r.GOMAXPROCS, r.Speedup)
		}
	}
	if !seen[1] || !seen[4] {
		t.Errorf("sweep must include GOMAXPROCS 1 and 4, got %v", seen)
	}
}
