package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"dynslice/internal/slicing"
	"dynslice/internal/slicing/fp"
	"dynslice/internal/slicing/opt"
)

// MemoryAlg is one algorithm's old-vs-new layout comparison: the same
// trace built twice, once with the flat pre-compaction label layout
// (-compact=false) and once with the delta-varint block layout, measuring
// what the labels actually occupy rather than the paper's 16-bytes/pair
// accounting model.
type MemoryAlg struct {
	LabelPairs int64 `json:"label_pairs"`

	PlainLabelBytes   int64   `json:"plain_label_bytes"`
	CompactLabelBytes int64   `json:"compact_label_bytes"`
	LabelRatio        float64 `json:"label_ratio"` // plain / compact, the headline

	PlainResidentBytes   int64   `json:"plain_resident_bytes"` // labels + edge/slot tables
	CompactResidentBytes int64   `json:"compact_resident_bytes"`
	PlainBytesPerDep     float64 `json:"plain_bytes_per_dep"`
	CompactBytesPerDep   float64 `json:"compact_bytes_per_dep"`

	PlainHeapMB   float64 `json:"plain_heap_mb"` // live heap after build, a peak-RSS proxy
	CompactHeapMB float64 `json:"compact_heap_mb"`

	PlainBuildMs   float64 `json:"plain_build_ms"`
	CompactBuildMs float64 `json:"compact_build_ms"`
	BuildOverhead  float64 `json:"build_overhead"` // compact / plain wall time

	IdenticalSlices bool `json:"identical_slices"`
}

// MemoryBench is one workload's record in BENCH_memory.json.
type MemoryBench struct {
	Name      string    `json:"name"`
	NCriteria int       `json:"n_criteria"`
	FP        MemoryAlg `json:"fp"`
	OPT       MemoryAlg `json:"opt"`
}

const memoryReps = 3

// RunMemory compares the compact dependence storage against the flat
// escape-hatch layout on every workload and writes per-workload records
// to outPath (cmd/experiments -exp memory). It fails if OPT's compact
// resident label bytes exceed half the uncompacted baseline, or if any
// slice differs between the two layouts.
func RunMemory(w io.Writer, workloads []Workload, outPath string) error {
	header(w, "Memory layout: delta-varint label blocks vs flat pairs",
		fmt.Sprintf("%-12s %12s %12s %7s %9s %9s %12s %12s %7s\n",
			"Program", "fp-plain", "fp-compact", "fp-x", "B/dep", "opt-B/dep", "opt-plain", "opt-compact", "opt-x"))
	var out []MemoryBench
	for _, wl := range workloads {
		res, err := Build(wl, Options{})
		if err != nil {
			return err
		}
		mb, err := measureMemory(res)
		res.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %11dB %11dB %6.2fx %8.2fB %8.2fB %11dB %11dB %6.2fx\n",
			wl.Name, mb.FP.PlainLabelBytes, mb.FP.CompactLabelBytes, mb.FP.LabelRatio,
			mb.FP.CompactBytesPerDep, mb.OPT.CompactBytesPerDep,
			mb.OPT.PlainLabelBytes, mb.OPT.CompactLabelBytes, mb.OPT.LabelRatio)
		for _, alg := range []struct {
			name string
			m    *MemoryAlg
		}{{"fp", &mb.FP}, {"opt", &mb.OPT}} {
			if !alg.m.IdenticalSlices {
				return fmt.Errorf("memory %s: %s slices diverge between -compact on and off", wl.Name, alg.name)
			}
		}
		if mb.OPT.LabelPairs > 0 && float64(mb.OPT.CompactLabelBytes) > 0.5*float64(mb.OPT.PlainLabelBytes) {
			return fmt.Errorf("memory %s: opt compact label bytes %d > 0.5x plain %d",
				wl.Name, mb.OPT.CompactLabelBytes, mb.OPT.PlainLabelBytes)
		}
		out = append(out, mb)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", outPath)
	}
	return nil
}

// graphStats is the accounting surface both graph types expose.
type graphStats interface {
	slicing.Slicer
	LabelPairs() int64
	LabelBytes() int64
	ResidentBytes() int64
}

func measureMemory(res *Result) (MemoryBench, error) {
	mb := MemoryBench{Name: res.W.Name, NCriteria: len(res.Crit)}

	hot, cuts, err := reprofile(res)
	if err != nil {
		return mb, err
	}

	buildFP := func(plain bool) (graphStats, time.Duration, error) {
		g := fp.NewGraph(res.P)
		g.SetPlainLabels(plain)
		t0 := time.Now()
		if err := replayFile(res, g); err != nil {
			return nil, 0, err
		}
		return g, time.Since(t0), nil
	}
	buildOPT := func(plain bool) (graphStats, time.Duration, error) {
		cfg := opt.Full()
		cfg.PlainLabels = plain
		g := opt.NewGraph(res.P, cfg, hot, cuts)
		t0 := time.Now()
		if err := replayFile(res, g); err != nil {
			return nil, 0, err
		}
		return g, time.Since(t0), nil
	}

	if mb.FP, err = compareLayouts(res, buildFP); err != nil {
		return mb, err
	}
	if mb.OPT, err = compareLayouts(res, buildOPT); err != nil {
		return mb, err
	}
	return mb, nil
}

// compareLayouts builds the plain and compact variants of one algorithm's
// graph and fills a MemoryAlg. Timing reps interleave the two layouts
// (best-of-memoryReps each, GC before every rep, no graph retained across
// a timed build) so clock drift and GC debt land on both sides equally;
// byte and heap figures then come from one untimed build per layout, the
// plain graph released before the compact one so the two heap readings
// are comparable.
func compareLayouts(res *Result, build func(plain bool) (graphStats, time.Duration, error)) (MemoryAlg, error) {
	var m MemoryAlg

	plainTime := time.Duration(1 << 62)
	compactTime := time.Duration(1 << 62)
	for rep := 0; rep < memoryReps; rep++ {
		for _, plainRep := range []bool{true, false} {
			runtime.GC()
			_, d, err := build(plainRep)
			if err != nil {
				return m, err
			}
			if plainRep {
				plainTime = min(plainTime, d)
			} else {
				compactTime = min(compactTime, d)
			}
		}
	}

	plain, _, err := build(true)
	if err != nil {
		return m, err
	}
	m.LabelPairs = plain.LabelPairs()
	m.PlainLabelBytes = plain.LabelBytes()
	m.PlainResidentBytes = plain.ResidentBytes()
	m.PlainBuildMs = ms(plainTime)
	m.PlainHeapMB = liveHeapMB()
	plainSlices, err := sliceLoop(plain, res.Crit)
	if err != nil {
		return m, err
	}
	plain = nil

	compact, _, err := build(false)
	if err != nil {
		return m, err
	}
	m.CompactLabelBytes = compact.LabelBytes()
	m.CompactResidentBytes = compact.ResidentBytes()
	m.CompactBuildMs = ms(compactTime)
	m.CompactHeapMB = liveHeapMB()
	compactSlices, err := sliceLoop(compact, res.Crit)
	if err != nil {
		return m, err
	}

	if m.CompactLabelBytes > 0 {
		m.LabelRatio = float64(m.PlainLabelBytes) / float64(m.CompactLabelBytes)
	}
	if m.LabelPairs > 0 {
		m.PlainBytesPerDep = float64(m.PlainResidentBytes) / float64(m.LabelPairs)
		m.CompactBytesPerDep = float64(m.CompactResidentBytes) / float64(m.LabelPairs)
	}
	if plainTime > 0 {
		m.BuildOverhead = float64(compactTime) / float64(plainTime)
	}
	m.IdenticalSlices = true
	for i := range plainSlices {
		if !plainSlices[i].Equal(compactSlices[i]) {
			m.IdenticalSlices = false
		}
	}
	return m, nil
}

// liveHeapMB forces a GC and returns the live heap in MiB — the closest
// portable stand-in for peak RSS attributable to the graph just built.
func liveHeapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}
