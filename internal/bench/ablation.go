package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"dynslice/internal/interp"
	"dynslice/internal/profile"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/forward"
	"dynslice/internal/slicing/opt"
	"dynslice/internal/trace"
)

// Ablations beyond the paper's own figures (announced in DESIGN.md):
//
//   - each optimization family applied *alone* (Fig. 15 shows them
//     cumulatively, which hides overlap),
//   - a sweep over the path-specialization frequency threshold,
//   - the §4.2 hybrid mode's memory/slicing-time trade-off.

// soloConfigs returns one configuration per optimization family, enabled
// in isolation (path specialization also needs UseUse/LocalDefUse off to
// be truly solo, which Config permits).
func soloConfigs() []struct {
	Name string
	Cfg  opt.Config
} {
	mk := func(name string, set func(*opt.Config)) struct {
		Name string
		Cfg  opt.Config
	} {
		c := opt.Config{MinPathFreq: 1}
		set(&c)
		return struct {
			Name string
			Cfg  opt.Config
		}{name, c}
	}
	return []struct {
		Name string
		Cfg  opt.Config
	}{
		mk("OPT-1 only", func(c *opt.Config) { c.LocalDefUse = true }),
		mk("OPT-2b only", func(c *opt.Config) { c.UseUse = true }),
		mk("OPT-2c only", func(c *opt.Config) { c.PathSpec = true }),
		mk("OPT-3 only", func(c *opt.Config) { c.ShareData = true }),
		mk("OPT-4 only", func(c *opt.Config) { c.InferCD = true }),
		mk("OPT-5 only", func(c *opt.Config) { c.SpecCD = true; c.PathSpec = true }),
		mk("OPT-6 only", func(c *opt.Config) { c.ShareCDData = true }),
		mk("adaptive only", func(c *opt.Config) { c.AdaptiveDeltas = true }),
	}
}

// RunAblationSolo reports the label reduction of each optimization family
// applied in isolation.
func RunAblationSolo(w io.Writer, workloads []Workload) error {
	header(w, "Ablation: each optimization family alone (% labels remaining)",
		fmt.Sprintf("%-12s", "Program"))
	cfgs := soloConfigs()
	fmt.Fprintf(w, "%-12s", "")
	for _, c := range cfgs {
		fmt.Fprintf(w, " %14s", c.Name)
	}
	fmt.Fprintln(w)
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, NCriteria: 1})
		if err != nil {
			return err
		}
		col := profile.NewCollector(res.P)
		if _, err := interp.Run(res.P, interp.Options{Input: wl.Input, Sink: col}); err != nil {
			return err
		}
		full := float64(res.FP.LabelPairs())
		fmt.Fprintf(w, "%-12s", wl.Name)
		for _, c := range cfgs {
			g := opt.NewGraph(res.P, c.Cfg, col.HotPaths(c.Cfg.MinPathFreq, 0), col.Cuts())
			f, err := os.Open(res.TracePath)
			if err != nil {
				return err
			}
			if err := trace.Replay(res.P, f, g); err != nil {
				return err
			}
			f.Close()
			fmt.Fprintf(w, " %13.1f%%", 100*float64(g.LabelPairs())/full)
		}
		fmt.Fprintln(w)
		res.Close()
	}
	return nil
}

// RunAblationPathThreshold sweeps the Ball-Larus specialization frequency
// threshold: specializing only hotter paths shrinks the static component
// (fewer nodes) at the cost of more labels.
func RunAblationPathThreshold(w io.Writer, workloads []Workload) error {
	thresholds := []int64{1, 4, 16, 64, 256}
	header(w, "Ablation: path-specialization frequency threshold",
		fmt.Sprintf("%-12s %s\n", "Program", "(threshold: paths, % labels) ..."))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, NCriteria: 1})
		if err != nil {
			return err
		}
		col := profile.NewCollector(res.P)
		if _, err := interp.Run(res.P, interp.Options{Input: wl.Input, Sink: col}); err != nil {
			return err
		}
		full := float64(res.FP.LabelPairs())
		fmt.Fprintf(w, "%-12s", wl.Name)
		for _, th := range thresholds {
			cfg := opt.Full()
			cfg.MinPathFreq = th
			g := opt.NewGraph(res.P, cfg, col.HotPaths(th, 0), col.Cuts())
			f, err := os.Open(res.TracePath)
			if err != nil {
				return err
			}
			if err := trace.Replay(res.P, f, g); err != nil {
				return err
			}
			f.Close()
			fmt.Fprintf(w, "  (>=%d: %d, %.1f%%)", th, g.PathNodes(), 100*float64(g.LabelPairs())/full)
		}
		fmt.Fprintln(w)
		res.Close()
	}
	return nil
}

// RunAblationHybrid measures the §4.2 hybrid's trade-off: resident memory
// versus slicing time, across label budgets.
func RunAblationHybrid(w io.Writer, workloads []Workload) error {
	budgets := []int64{1 << 14, 1 << 16, 1 << 18}
	header(w, "Ablation: §4.2 hybrid (disk epochs) — memory ceiling vs slicing time",
		fmt.Sprintf("%-12s %s\n", "Program", "(budget: epochs, resident%, avg slice ms) ... then in-memory baseline"))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithOPT: true, NCriteria: 10})
		if err != nil {
			return err
		}
		col := profile.NewCollector(res.P)
		if _, err := interp.Run(res.P, interp.Options{Input: wl.Input, Sink: col}); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s", wl.Name)
		for _, budget := range budgets {
			g := opt.NewGraph(res.P, opt.Full(), col.HotPaths(1, 0), col.Cuts())
			dir, err := os.MkdirTemp("", "hybrid")
			if err != nil {
				return err
			}
			if err := g.EnableHybrid(dir, budget); err != nil {
				return err
			}
			f, err := os.Open(res.TracePath)
			if err != nil {
				return err
			}
			if err := trace.Replay(res.P, f, g); err != nil {
				return err
			}
			f.Close()
			t0 := time.Now()
			if _, _, _, err := SliceAll(g, res.Crit); err != nil {
				return err
			}
			el := time.Since(t0)
			resident := 100 * float64(g.ResidentPairs()) / float64(g.LabelPairs())
			fmt.Fprintf(w, "  (%d: %d, %.0f%%, %.2f)", budget, g.HybridEpochs(), resident, ms(el)/float64(len(res.Crit)))
			os.RemoveAll(dir)
		}
		t0 := time.Now()
		if _, _, _, err := SliceAll(res.OPT, res.Crit); err != nil {
			return err
		}
		fmt.Fprintf(w, "   | in-mem %.2f ms\n", ms(time.Since(t0))/float64(len(res.Crit)))
		res.Close()
	}
	return nil
}

// RunForwardComparison contrasts forward-computation slicing (§5's
// contrast class) with the backward OPT algorithm: eager per-value slice
// sets versus on-demand traversal. Forward queries are table lookups, but
// the preprocessing materializes a large universe of distinct sets.
func RunForwardComparison(w io.Writer, workloads []Workload) error {
	header(w, "Forward computation vs OPT (§5 contrast class)",
		fmt.Sprintf("%-12s %14s %14s %14s %14s\n",
			"Program", "fwd pre(ms)", "fwd sets", "opt pre(ms)", "opt slice(ms)"))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithOPT: true, NCriteria: 25})
		if err != nil {
			return err
		}
		fwd := forward.New(res.P)
		f, err := os.Open(res.TracePath)
		if err != nil {
			return err
		}
		t0 := time.Now()
		if err := trace.Replay(res.P, f, fwd); err != nil {
			return err
		}
		fwdPre := time.Since(t0)
		f.Close()
		// Sanity: forward and OPT agree on the first criterion.
		a := res.Crit[0]
		sf, _, err := fwd.Slice(slicing.AddrCriterion(a))
		if err != nil {
			return err
		}
		so, _, err := res.OPT.Slice(slicing.AddrCriterion(a))
		if err != nil {
			return err
		}
		if !sf.Equal(so) {
			return fmt.Errorf("%s: forward and OPT disagree", wl.Name)
		}
		optSlice, _, _, err := SliceAll(res.OPT, res.Crit)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %14.1f %14d %14.1f %14.2f\n",
			wl.Name, ms(fwdPre), fwd.DistinctSets(), ms(res.OPTBuild),
			ms(optSlice)/float64(len(res.Crit)))
		res.Close()
	}
	return nil
}
