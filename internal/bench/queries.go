package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	slicer "dynslice"
	"dynslice/internal/telemetry/querylog"
	"dynslice/internal/telemetry/stats"
)

// QueriesBench is one workload's query-path observability record: the
// audit-log totals and the rolling workload statistics collected while
// replaying the paper's interactive usage pattern (batched criteria,
// repeat queries hitting the cache, observed queries on OPT) through
// the QueryEngine of every backend.
type QueriesBench struct {
	Name         string          `json:"name"`
	NCriteria    int             `json:"n_criteria"`
	Queries      int             `json:"queries"`
	CacheHitRate float64         `json:"cache_hit_rate"`
	SlowQueries  int64           `json:"slow_queries"`
	Stats        *stats.Snapshot `json:"stats"`
}

// queriesRepeat is how many criteria each backend re-queries
// individually after the batch (these hit the engine cache) and how
// many observed queries run on OPT.
const queriesRepeat = 5

// RunQueries drives each workload through the query flight recorder:
// one recording with a query log and stats recorder attached, then per
// backend one batched query over the tracked criteria plus repeat
// single-criterion queries (cache hits), plus observed queries on OPT
// for the explicit-vs-inferred attribution. It validates every audit
// record (this backs `make bench-queries`) and writes per-workload
// summaries to outPath as JSON (cmd/experiments -exp queries).
func RunQueries(w io.Writer, workloads []Workload, outPath string) error {
	header(w, "Queries: flight-recorder workload statistics",
		fmt.Sprintf("%-12s %8s %8s %10s %10s %10s\n",
			"Program", "queries", "hit rate", "OPT p50ms", "OPT p99ms", "inferred"))
	var out []QueriesBench
	for _, wl := range workloads {
		qb, err := runQueriesOne(wl)
		if err != nil {
			return fmt.Errorf("queries %s: %w", wl.Name, err)
		}
		opt := qb.Stats.Backends["OPT"]
		fmt.Fprintf(w, "%-12s %8d %8.2f %10.3f %10.3f %10.3f\n",
			wl.Name, qb.Queries, qb.CacheHitRate, opt.P50Ms, opt.P99Ms, opt.InferredRatio)
		out = append(out, *qb)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", outPath)
	}
	return nil
}

func runQueriesOne(wl Workload) (*QueriesBench, error) {
	qlog := querylog.New(4096)
	qst := stats.New()
	prog, err := slicer.CompileWith(wl.Src, nil)
	if err != nil {
		return nil, err
	}
	rec, err := prog.Record(slicer.RunOptions{
		Input:         wl.Input,
		QueryLog:      qlog,
		QueryStats:    qst,
		TrackCriteria: 25,
	})
	if err != nil {
		return nil, err
	}
	defer rec.Close()
	crit := rec.Criteria()
	if len(crit) == 0 {
		return nil, fmt.Errorf("no criteria tracked")
	}

	repeat := queriesRepeat
	if repeat > len(crit) {
		repeat = len(crit)
	}
	for _, s := range []*slicer.Slicer{rec.FP(), rec.OPT(), rec.LP()} {
		eng := s.Engine(slicer.EngineOptions{})
		if _, err := eng.SliceAddrs(crit); err != nil {
			return nil, fmt.Errorf("%s batch: %w", s.Name(), err)
		}
		// Re-query the first few criteria individually: all cache hits,
		// exercising the engine's cached-query audit path.
		for _, a := range crit[:repeat] {
			if _, err := eng.SliceAddr(a); err != nil {
				return nil, fmt.Errorf("%s requery: %w", s.Name(), err)
			}
		}
	}
	// Observed queries on OPT feed the inferred-edge attribution.
	optS := rec.OPT()
	for _, a := range crit[:repeat] {
		if _, err := optS.ExplainAddr(a); err != nil {
			return nil, fmt.Errorf("OPT explain: %w", err)
		}
	}

	if err := validateLog(qlog); err != nil {
		return nil, err
	}
	snap := qst.Snapshot()
	return &QueriesBench{
		Name:         wl.Name,
		NCriteria:    len(crit),
		Queries:      int(qlog.Total()),
		CacheHitRate: snap.CacheHitRate,
		SlowQueries:  qlog.SlowQueries(),
		Stats:        snap,
	}, nil
}

// validateLog checks the flight recorder actually captured the workload
// and that every record is well-formed — the failure conditions `make
// bench-queries` guards against.
func validateLog(qlog *querylog.Log) error {
	if qlog.Total() == 0 {
		return fmt.Errorf("query log is empty")
	}
	var buf bytes.Buffer
	if err := qlog.WriteJSONL(&buf); err != nil {
		return err
	}
	if buf.Len() == 0 {
		return fmt.Errorf("query log JSONL export is empty")
	}
	var hits int
	for i, r := range qlog.Recent(0) {
		if r.ID == 0 {
			return fmt.Errorf("record %d: missing query ID", i)
		}
		if r.Backend != "FP" && r.Backend != "OPT" && r.Backend != "LP" {
			return fmt.Errorf("record %d: bad backend %q", i, r.Backend)
		}
		switch r.Kind {
		case querylog.KindSlice, querylog.KindBatch, querylog.KindExplain:
		default:
			return fmt.Errorf("record %d: bad kind %q", i, r.Kind)
		}
		if r.Latency < 0 || r.Latency > time.Hour {
			return fmt.Errorf("record %d: implausible latency %v", i, r.Latency)
		}
		if r.Err == "" && r.Stmts <= 0 {
			return fmt.Errorf("record %d: successful query with empty slice", i)
		}
		if r.CacheHit {
			hits++
		}
	}
	if hits == 0 {
		return fmt.Errorf("no cache-hit records despite repeat queries")
	}
	return nil
}
