package bench

import (
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/fp"
	"dynslice/internal/slicing/oracle"
	"dynslice/internal/trace"
)

// TestFuzzDifferential is the heavy differential fuzzer: random MiniC
// programs are compiled, executed, and sliced with FP, LP, and OPT (full
// configuration, plus the paper-strict stage-6 configuration and a
// shortcuts-off variant); all must agree on every criterion.
func TestFuzzDifferential(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := RandProgram(seed)
		w := Workload{Name: "fuzz", Src: src}
		res, err := Build(w, Options{WithFP: true, WithLP: true, WithOPT: true, SegBlocks: 32, NCriteria: 8})
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
		strict := optStrictVariant(t, w, res)
		for i, a := range res.Crit {
			c := slicing.AddrCriterion(a)
			want, _, err := res.FP.Slice(c)
			if err != nil {
				t.Fatalf("seed %d fp: %v\nprogram:\n%s", seed, err, src)
			}
			got, _, err := res.OPT.Slice(c)
			if err != nil {
				t.Fatalf("seed %d opt: %v\nprogram:\n%s", seed, err, src)
			}
			if !want.Equal(got) {
				t.Fatalf("seed %d criterion %d: OPT != FP\nprogram:\n%s", seed, a, src)
			}
			res.OPT.EnableShortcuts(false)
			got, _, _ = res.OPT.Slice(c)
			res.OPT.EnableShortcuts(true)
			if !want.Equal(got) {
				t.Fatalf("seed %d criterion %d: OPT(no shortcuts) != FP\nprogram:\n%s", seed, a, src)
			}
			got, _, err = strict.Slice(c)
			if err != nil {
				t.Fatalf("seed %d strict: %v\nprogram:\n%s", seed, err, src)
			}
			if !want.Equal(got) {
				t.Fatalf("seed %d criterion %d: OPT(paper-strict) != FP\nprogram:\n%s", seed, a, src)
			}
			if i < 3 { // LP is slow; spot-check
				got, _, err = res.LP.Slice(c)
				if err != nil {
					t.Fatalf("seed %d lp: %v\nprogram:\n%s", seed, err, src)
				}
				if !want.Equal(got) {
					t.Fatalf("seed %d criterion %d: LP != FP\nprogram:\n%s", seed, a, src)
				}
			}
		}
		res.Close()
	}
}

// optStrictVariant builds a stage-6 (no adaptive extension) OPT graph for
// the same run.
func optStrictVariant(t *testing.T, w Workload, res *Result) *slicingVariant {
	t.Helper()
	cfg := stage6()
	r2, err := Build(w, Options{WithOPT: true, OptConfig: &cfg, NCriteria: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r2.Close)
	return &slicingVariant{g: r2}
}

type slicingVariant struct{ g *Result }

func (v *slicingVariant) Slice(c slicing.Criterion) (*slicing.Slice, *slicing.Stats, error) {
	return v.g.OPT.Slice(c)
}

// TestRandProgramsDeterministic checks generator reproducibility.
func TestRandProgramsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		if RandProgram(seed) != RandProgram(seed) {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
	if RandProgram(1) == RandProgram(2) {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestFuzzOracle validates FP against the brute-force oracle on random
// programs (small seed count: the oracle is quadratic by design).
func TestFuzzOracle(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(500); seed < int64(500+seeds); seed++ {
		src := RandProgram(seed)
		p, err := compile.Source(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fpg := fp.NewGraph(p)
		ora := oracle.New(p)
		picker := trace.NewCritPicker()
		if _, err := interp.Run(p, interp.Options{Sink: trace.Multi{fpg, ora, picker}}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, a := range picker.Pick(6) {
			c := slicing.AddrCriterion(a)
			want, _, err := ora.Slice(c)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := fpg.Slice(c)
			if err != nil {
				t.Fatal(err)
			}
			if !want.Equal(got) {
				t.Fatalf("seed %d criterion %d: FP != oracle\nprogram:\n%s", seed, a, src)
			}
		}
	}
}
