package bench

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dynslice/internal/interp"
	"dynslice/internal/profile"
	"dynslice/internal/sequitur"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/opt"
	"dynslice/internal/trace"
)

// This file regenerates every table and figure of the paper's evaluation
// (§4). Each Run* function builds what it needs, prints rows in the
// paper's layout, and returns structured results so the benchmark suite
// can assert on shapes. Absolute numbers differ from the paper (different
// machine, interpreted substrate, scaled-down runs); the comparisons —
// who wins, by what order — are the reproduction target.

// Exp bundles a workload's built artifacts reused across experiments.
type Exp struct {
	R *Result
}

// mb converts the byte estimate to MB.
func mb(b int64) float64 { return float64(b) / (1 << 20) }

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// header prints a table header.
func header(w io.Writer, title string, cols ...string) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintln(w, strings.Repeat("-", len(title)))
	for _, c := range cols {
		fmt.Fprintf(w, "%s", c)
	}
	fmt.Fprintln(w)
}

// RunTable1 reproduces Table 1: cost of dynamic slicing — statements
// executed, unique statements executed (USE), average slice size (SS),
// USE/SS, the full graph size, and LP's average slicing time.
func RunTable1(w io.Writer, workloads []Workload) error {
	header(w, "Table 1: Cost of dynamic slicing",
		fmt.Sprintf("%-12s %12s %8s %10s %8s %14s %14s\n",
			"Benchmark", "Stmts Exec", "USE", "Av.SS", "USE/SS", "FullGraph(MB)", "LP avg(ms)"))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, WithLP: true})
		if err != nil {
			return err
		}
		_, ss, _, err := SliceAll(res.FP, res.Crit)
		if err != nil {
			return err
		}
		lpTime, _, _, err := SliceAll(res.LP, res.Crit)
		if err != nil {
			return err
		}
		ratio := 0.0
		if ss > 0 {
			ratio = float64(res.USE) / ss
		}
		fmt.Fprintf(w, "%-12s %12d %8d %10.1f %8.2f %14.2f %14.2f\n",
			wl.Name, res.RunInfo.Steps, res.USE, ss, ratio,
			mb(res.FP.SizeBytes()), ms(lpTime)/float64(len(res.Crit)))
		res.Close()
	}
	return nil
}

// RunTable2 reproduces Table 2: dyDG size before (FP) and after (OPT) the
// optimizations, with the reduction ratio.
func RunTable2(w io.Writer, workloads []Workload) error {
	header(w, "Table 2: dyDG size reduction",
		fmt.Sprintf("%-12s %14s %14s %10s %12s %12s\n",
			"Program", "Before(MB)", "After(MB)", "Ratio", "FP labels", "OPT labels"))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, WithOPT: true})
		if err != nil {
			return err
		}
		before, after := res.FP.SizeBytes(), res.OPT.SizeBytes()
		ratio := float64(before) / float64(after)
		fmt.Fprintf(w, "%-12s %14.2f %14.2f %10.2f %12d %12d\n",
			wl.Name, mb(before), mb(after), ratio, res.FP.LabelPairs(), res.OPT.LabelPairs())
		res.Close()
	}
	return nil
}

// stageNames labels the cumulative optimization stages of Fig. 15.
var stageNames = []string{"none", "OPT-1", "OPT-2", "OPT-3", "OPT-4", "OPT-5", "OPT-6", "DYN(+adaptive)"}

// RunFig15 reproduces Fig. 15: the cumulative effect of the optimization
// families on graph size (labels remaining, as a percentage of the full
// graph's labels). Stage 7 is this reproduction's adaptive-delta
// extension, reported separately from the paper's own six families.
func RunFig15(w io.Writer, workloads []Workload) error {
	header(w, "Figure 15: effect of optimizations on dyDG size (% labels remaining)",
		fmt.Sprintf("%-12s %9s %9s %9s %9s %9s %9s %9s %9s\n",
			"Program", stageNames[0], stageNames[1], stageNames[2], stageNames[3],
			stageNames[4], stageNames[5], stageNames[6], stageNames[7]))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, WithStages: true})
		if err != nil {
			return err
		}
		full := float64(res.FP.LabelPairs())
		fmt.Fprintf(w, "%-12s", wl.Name)
		for _, g := range res.Stages {
			fmt.Fprintf(w, " %8.1f%%", 100*float64(g.LabelPairs())/full)
		}
		fmt.Fprintln(w)
		res.Close()
	}
	return nil
}

// RunFig16 reproduces Fig. 16: the relative sizes of the control (dyCDG)
// and data (dyDDG) subgraphs, and the per-stage reduction of each.
func RunFig16(w io.Writer, workloads []Workload) error {
	header(w, "Figure 16: dyDDG vs dyCDG size reduction",
		fmt.Sprintf("%-12s %10s %10s | %-30s | %-30s\n",
			"Program", "DDG share", "CDG share", "dyDDG % by stage 0..7", "dyCDG % by stage 0..7"))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, WithStages: true})
		if err != nil {
			return err
		}
		fullD := float64(res.FP.DataPairs())
		fullC := float64(res.FP.CDPairs())
		total := fullD + fullC
		fmt.Fprintf(w, "%-12s %9.1f%% %9.1f%% | ", wl.Name, 100*fullD/total, 100*fullC/total)
		for _, g := range res.Stages {
			fmt.Fprintf(w, "%5.1f ", 100*float64(g.DataPairs())/fullD)
		}
		fmt.Fprint(w, "| ")
		for _, g := range res.Stages {
			fmt.Fprintf(w, "%5.1f ", 100*float64(g.CDPairs())/fullC)
		}
		fmt.Fprintln(w)
		res.Close()
	}
	return nil
}

// RunFig17 reproduces Fig. 17: average OPT slicing time for 25 slices
// computed at intervals during execution — the paper's linearity check.
// The OPT graph is built incrementally from the trace; at each checkpoint
// the most recently defined addresses are sliced.
func RunFig17(w io.Writer, workloads []Workload, checkpoints int) error {
	if checkpoints <= 0 {
		checkpoints = 4
	}
	header(w, "Figure 17: OPT slicing time during execution",
		fmt.Sprintf("%-12s %s\n", "Program", "(stmts executed: avg slice ms) per checkpoint"))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithOPT: false, WithFP: false, WithLP: false})
		if err != nil {
			return err
		}
		// Rebuild OPT incrementally by replaying the trace with pauses.
		prof, cuts, err := reprofile(res)
		if err != nil {
			return err
		}
		g := opt.NewGraph(res.P, opt.Full(), prof, cuts)
		f, err := os.Open(res.TracePath)
		if err != nil {
			return err
		}
		dec := trace.NewDecoder(res.P, f, 0)
		if err := dec.ReadHeader(); err != nil {
			f.Close()
			return err
		}
		total := res.RunInfo.Steps
		interval := total / int64(checkpoints)
		picker := trace.NewCritPicker()
		var stmts int64
		fmt.Fprintf(w, "%-12s", wl.Name)
		for cp := 1; cp <= checkpoints; cp++ {
			limit := interval * int64(cp)
			for stmts < limit {
				ev, err := dec.Next()
				if err != nil {
					return err
				}
				done := false
				switch ev.Kind {
				case trace.EvBlock:
					g.Block(ev.Block)
					picker.Block(ev.Block)
				case trace.EvStmt:
					g.Stmt(ev.Stmt, ev.Uses, ev.Defs)
					picker.Stmt(ev.Stmt, ev.Uses, ev.Defs)
					stmts++
				case trace.EvRegion:
					g.RegionDef(ev.Stmt, ev.RegStart, ev.RegLen)
					picker.RegionDef(ev.Stmt, ev.RegStart, ev.RegLen)
					stmts++
				case trace.EvEnd:
					g.End()
					done = true
				}
				if done {
					break
				}
			}
			// The builder may still be buffering the most recent blocks
			// (path matching defers node resolution to the next cut), so
			// keep only criteria it can already resolve.
			var crit []int64
			for _, a := range picker.Pick(40) {
				if _, ok := g.LastDefOf(a); ok {
					crit = append(crit, a)
					if len(crit) == 25 {
						break
					}
				}
			}
			if len(crit) == 0 {
				continue
			}
			t, _, _, err := SliceAll(g, crit)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  (%d: %.2fms)", stmts, ms(t)/float64(len(crit)))
		}
		fmt.Fprintln(w)
		f.Close()
		res.Close()
	}
	return nil
}

// RunTable3 reproduces Table 3: the benefit of shortcut edges — OPT
// slicing time with and without them, on the same graph.
func RunTable3(w io.Writer, workloads []Workload) error {
	header(w, "Table 3: benefit of providing shortcuts",
		fmt.Sprintf("%-12s %16s %16s %8s\n", "Program", "w/o shortcuts(ms)", "with(ms)", "ratio"))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithOPT: true})
		if err != nil {
			return err
		}
		res.OPT.EnableShortcuts(false)
		without, _, _, err := SliceAll(res.OPT, res.Crit)
		if err != nil {
			return err
		}
		res.OPT.EnableShortcuts(true)
		with, _, _, err := SliceAll(res.OPT, res.Crit)
		if err != nil {
			return err
		}
		ratio := float64(without) / float64(with)
		fmt.Fprintf(w, "%-12s %16.2f %16.2f %8.2f\n",
			wl.Name, ms(without)/25, ms(with)/25, ratio)
		res.Close()
	}
	return nil
}

// RunTable4 reproduces Table 4: OPT preprocessing time (instrumented run
// plus graph construction from the trace).
func RunTable4(w io.Writer, workloads []Workload) error {
	header(w, "Table 4: preprocessing time for OPT",
		fmt.Sprintf("%-12s %12s %12s %12s\n", "Program", "trace(ms)", "build(ms)", "total(ms)"))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithOPT: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %12.1f %12.1f %12.1f\n",
			wl.Name, ms(res.TraceTime), ms(res.OPTBuild), ms(res.TraceTime+res.OPTBuild))
		res.Close()
	}
	return nil
}

// RunFig18 reproduces Fig. 18: cumulative slicing time against the query
// number for OPT, LP, and FP.
func RunFig18(w io.Writer, workloads []Workload, queries int) error {
	if queries <= 0 {
		queries = 25
	}
	header(w, "Figure 18: cumulative slicing time by query (ms)",
		fmt.Sprintf("%-12s %-6s %s\n", "Program", "algo", "cumulative ms at queries 5,10,15,20,25"))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, WithLP: true, WithOPT: true, NCriteria: queries})
		if err != nil {
			return err
		}
		run := func(name string, s slicing.Slicer) error {
			var cum time.Duration
			fmt.Fprintf(w, "%-12s %-6s", wl.Name, name)
			for i, a := range res.Crit {
				t0 := time.Now()
				if _, _, err := s.Slice(slicing.AddrCriterion(a)); err != nil {
					return err
				}
				cum += time.Since(t0)
				if (i+1)%5 == 0 {
					fmt.Fprintf(w, " %10.2f", ms(cum))
				}
			}
			fmt.Fprintln(w)
			return nil
		}
		if err := run("OPT", res.OPT); err != nil {
			return err
		}
		if err := run("FP", res.FP); err != nil {
			return err
		}
		if err := run("LP", res.LP); err != nil {
			return err
		}
		res.Close()
	}
	return nil
}

// RunTable5 reproduces Table 5: preprocessing time, LP vs OPT. LP's
// preprocessing is trace collection (segment summaries are built inline);
// OPT additionally constructs the compacted graph.
func RunTable5(w io.Writer, workloads []Workload) error {
	header(w, "Table 5: preprocessing time, LP vs OPT",
		fmt.Sprintf("%-12s %12s %12s %8s\n", "Program", "OPT(ms)", "LP(ms)", "LP/OPT"))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithOPT: true, WithLP: true})
		if err != nil {
			return err
		}
		optPre := res.TraceTime + res.OPTBuild
		lpPre := res.TraceTime
		fmt.Fprintf(w, "%-12s %12.1f %12.1f %8.2f\n",
			wl.Name, ms(optPre), ms(lpPre), float64(lpPre)/float64(optPre))
		res.Close()
	}
	return nil
}

// RunTable6 reproduces Table 6: graph sizes, OPT's full reduced graph
// against the largest subgraph LP materializes over 25 queries.
func RunTable6(w io.Writer, workloads []Workload) error {
	header(w, "Table 6: dyDG graph sizes, LP vs OPT",
		fmt.Sprintf("%-12s %14s %22s\n", "Program", "OPT(MB)", "LP max subgraph(MB)"))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithOPT: true, WithLP: true})
		if err != nil {
			return err
		}
		if _, _, _, err := SliceAll(res.LP, res.Crit); err != nil {
			return err
		}
		lpBytes := res.LP.MaxSubgraphEdges * 24
		fmt.Fprintf(w, "%-12s %14.2f %22.2f\n", wl.Name, mb(res.OPT.SizeBytes()), mb(lpBytes))
		res.Close()
	}
	return nil
}

// RunTable7 reproduces Table 7: slicing times, FP vs OPT.
func RunTable7(w io.Writer, workloads []Workload) error {
	header(w, "Table 7: slicing times, FP vs OPT",
		fmt.Sprintf("%-12s %12s %12s\n", "Program", "FP(ms)", "OPT(ms)"))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, WithOPT: true})
		if err != nil {
			return err
		}
		fpT, _, _, err := SliceAll(res.FP, res.Crit)
		if err != nil {
			return err
		}
		optT, _, _, err := SliceAll(res.OPT, res.Crit)
		if err != nil {
			return err
		}
		n := float64(len(res.Crit))
		fmt.Fprintf(w, "%-12s %12.3f %12.3f\n", wl.Name, ms(fpT)/n, ms(optT)/n)
		res.Close()
	}
	return nil
}

// RunTable8 reproduces Table 8: preprocessing time, FP vs OPT (the paper
// found FP consistently slower due to label-array growth).
func RunTable8(w io.Writer, workloads []Workload) error {
	header(w, "Table 8: preprocessing time, FP vs OPT",
		fmt.Sprintf("%-12s %12s %12s %8s\n", "Program", "OPT(ms)", "FP(ms)", "FP/OPT"))
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, WithOPT: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %12.1f %12.1f %8.2f\n",
			wl.Name, ms(res.OPTBuild), ms(res.FPBuild), float64(res.FPBuild)/float64(res.OPTBuild))
		res.Close()
	}
	return nil
}

// RunSequitur reproduces the §4.1 comparison: compressing the full graph's
// labeling information with SEQUITUR versus the OPT representation. The
// labeling is serialized as per-edge timestamp-delta streams, the
// repetitive form grammar compression can exploit.
func RunSequitur(w io.Writer, workloads []Workload) error {
	header(w, "SEQUITUR vs OPT compression of dyDG labels (factor over FP)",
		fmt.Sprintf("%-12s %12s %12s %12s\n", "Program", "FP labels", "SEQUITUR x", "OPT x"))
	var seqSum, optSum float64
	n := 0
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, WithOPT: true})
		if err != nil {
			return err
		}
		stream := res.FP.DeltaStream()
		_, out, _ := sequitur.Compress(stream)
		fpPairs := float64(res.FP.LabelPairs())
		seqX := fpPairs / float64(out)
		optX := fpPairs / float64(res.OPT.LabelPairs())
		fmt.Fprintf(w, "%-12s %12d %12.2f %12.2f\n", wl.Name, int64(fpPairs), seqX, optX)
		seqSum += seqX
		optSum += optX
		n++
		res.Close()
	}
	fmt.Fprintf(w, "%-12s %12s %12.2f %12.2f   (paper: 9.18 vs 23.4)\n", "average", "", seqSum/float64(n), optSum/float64(n))
	return nil
}

// reprofile reruns the profiling pass for a built workload (used by the
// incremental Fig. 17 rebuild).
func reprofile(res *Result) ([]*profile.PathProfile, *profile.Cuts, error) {
	col := profile.NewCollector(res.P)
	if _, err := interp.Run(res.P, interp.Options{Input: res.W.Input, Sink: col}); err != nil {
		return nil, nil, err
	}
	return col.HotPaths(1, 0), col.Cuts(), nil
}

// StageName returns the display label of a Fig. 15 stage.
func StageName(stage int) string { return stageNames[stage] }
