package bench

import (
	"testing"

	"dynslice/internal/slicing"
)

// TestWorkloadsRunAndAgree is the heavyweight integration test: every
// workload compiles, runs, and produces identical slices from FP, LP, and
// OPT on its 25 criteria.
func TestWorkloadsRunAndAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("workload differential suite is slow; run without -short")
	}
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res, err := Build(w, Options{WithFP: true, WithLP: true, WithOPT: true, SegBlocks: 512})
			if err != nil {
				t.Fatal(err)
			}
			defer res.Close()
			if res.RunInfo.Steps < 10_000 {
				t.Errorf("workload too small: only %d statements executed", res.RunInfo.Steps)
			}
			if len(res.Crit) == 0 {
				t.Fatal("no criteria")
			}
			nLP := len(res.Crit)
			if nLP > 5 {
				nLP = 5 // LP is deliberately slow; spot-check a subset
			}
			for i, a := range res.Crit {
				c := slicing.AddrCriterion(a)
				want, _, err := res.FP.Slice(c)
				if err != nil {
					t.Fatalf("fp: %v", err)
				}
				got, _, err := res.OPT.Slice(c)
				if err != nil {
					t.Fatalf("opt: %v", err)
				}
				if !want.Equal(got) {
					t.Errorf("criterion %d: OPT slice (%d stmts) != FP slice (%d stmts)", a, got.Len(), want.Len())
				}
				if i < nLP {
					got, _, err = res.LP.Slice(c)
					if err != nil {
						t.Fatalf("lp: %v", err)
					}
					if !want.Equal(got) {
						t.Errorf("criterion %d: LP slice (%d stmts) != FP slice (%d stmts)", a, got.Len(), want.Len())
					}
				}
			}
			// The headline compression claim, in shape: OPT stores far
			// fewer labels than FP on loop-dominated workloads.
			fpPairs := res.FP.LabelPairs()
			optPairs := res.OPT.LabelPairs()
			if optPairs*2 > fpPairs {
				t.Errorf("weak compression: OPT %d labels vs FP %d (%.1f%%)",
					optPairs, fpPairs, 100*float64(optPairs)/float64(fpPairs))
			}
			t.Logf("%s: %d stmts executed, USE=%d, FP pairs=%d, OPT pairs=%d (%.1f%%), paths=%d",
				w.Name, res.RunInfo.Steps, res.USE, fpPairs, optPairs,
				100*float64(optPairs)/float64(fpPairs), res.OPT.PathNodes())
		})
	}
}
