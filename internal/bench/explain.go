package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"dynslice/internal/slicing"
	"dynslice/internal/slicing/explain"
)

// ExplainAlg aggregates one algorithm's observed-query profiles over a
// workload's full criterion set: how many dependence edges its traversals
// resolved explicitly (a stored dynamic label) versus inferred them from
// static structure (OPT-1/2/4/5 and the adaptive extension) versus
// collapsed them through shortcuts. The explicit/inferred split is the
// measurable counterpart of the paper's Table 4 accounting: every
// inferred resolution is a label the compacted graph never had to store.
type ExplainAlg struct {
	Profile     *explain.Profile `json:"profile"`
	ExplicitPct float64          `json:"explicit_pct"`
	InferredPct float64          `json:"inferred_pct"`
	SliceMs     float64          `json:"slice_ms"`
}

// ExplainBench is one workload's record in BENCH_explain.json.
type ExplainBench struct {
	Name      string     `json:"name"`
	NCriteria int        `json:"n_criteria"`
	FP        ExplainAlg `json:"fp"`
	OPT       ExplainAlg `json:"opt"`
	LP        ExplainAlg `json:"lp"`
}

// explainAll runs every criterion through s as an observed query,
// summing the per-query profiles.
func explainAll(s slicing.Explainer, crit []int64) (ExplainAlg, error) {
	agg := explain.NewRecorder().Profile() // zero profile with ByKind allocated
	var total time.Duration
	for _, a := range crit {
		rec := explain.NewRecorder()
		t0 := time.Now()
		sl, _, err := s.SliceObserved(slicing.AddrCriterion(a), rec)
		d := time.Since(t0)
		if err != nil {
			return ExplainAlg{}, err
		}
		total += d
		p := rec.Profile()
		p.SliceStmts = sl.Len()
		p.Elapsed = d
		agg.Add(p)
	}
	out := ExplainAlg{Profile: agg, SliceMs: ms(total)}
	if n := agg.Explicit + agg.Inferred; n > 0 {
		out.ExplicitPct = 100 * float64(agg.Explicit) / float64(n)
		out.InferredPct = 100 * float64(agg.Inferred) / float64(n)
	}
	return out, nil
}

// RunExplain profiles observed queries on FP, OPT, and LP over every
// workload and writes per-workload records to outPath (cmd/experiments
// -exp explain). It fails if any workload's OPT traversals report zero
// inferred edges — that would mean the compaction optimizations
// contributed nothing, i.e. the provenance instrumentation (or the
// optimizations themselves) regressed.
func RunExplain(w io.Writer, workloads []Workload, outPath string) error {
	header(w, "Observed queries: explicit vs inferred dependence resolutions",
		fmt.Sprintf("%-12s %6s %10s %10s %10s %8s %8s %10s\n",
			"Program", "crit", "opt-edges", "explicit", "inferred", "expl%", "infr%", "shortcut"))
	var out []ExplainBench
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, WithOPT: true, WithLP: true})
		if err != nil {
			return err
		}
		eb := ExplainBench{Name: wl.Name, NCriteria: len(res.Crit)}
		if eb.FP, err = explainAll(res.FP, res.Crit); err == nil {
			if eb.OPT, err = explainAll(res.OPT, res.Crit); err == nil {
				eb.LP, err = explainAll(res.LP, res.Crit)
			}
		}
		res.Close()
		if err != nil {
			return fmt.Errorf("explain %s: %w", wl.Name, err)
		}
		op := eb.OPT.Profile
		fmt.Fprintf(w, "%-12s %6d %10d %10d %10d %7.1f%% %7.1f%% %10d\n",
			wl.Name, eb.NCriteria, op.Edges, op.Explicit, op.Inferred,
			eb.OPT.ExplicitPct, eb.OPT.InferredPct, op.Shortcut)
		if op.Inferred == 0 {
			return fmt.Errorf("explain %s: OPT reported zero inferred edges over %d criteria (%d edges total) — inference instrumentation regressed",
				wl.Name, eb.NCriteria, op.Edges)
		}
		out = append(out, eb)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", outPath)
	}
	return nil
}
