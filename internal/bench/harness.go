package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/profile"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/fp"
	"dynslice/internal/slicing/lp"
	"dynslice/internal/slicing/opt"
	"dynslice/internal/telemetry"
	"dynslice/internal/trace"
)

// Options configures a workload build.
type Options struct {
	WithFP     bool
	WithLP     bool
	WithOPT    bool
	WithStages bool // also build opt.Stage(0..7) graphs (for Figs 15/16)
	OptConfig  *opt.Config
	NCriteria  int                 // slicing criteria to select (default 25, the paper's count)
	TraceDir   string              // directory for the LP trace file (default: temp)
	SegBlocks  int                 // trace segment granularity (default 4096)
	Telemetry  *telemetry.Registry // optional; phase spans + pipeline counters
	// Pipeline builds all requested graphs from ONE pipelined trace pass
	// (trace.ParallelReplayTimed) instead of one sequential replay per
	// graph: decode overlaps graph construction, and FP/OPT/stage builders
	// run concurrently on the shared decoded-batch feed. FPBuild/OPTBuild
	// then report per-sink busy time (cost net of pipeline idle).
	Pipeline bool
}

// Result bundles everything built for one workload, with the preprocessing
// timings the paper's tables report.
type Result struct {
	W       Workload
	P       *ir.Program
	FP      *fp.Graph
	OPT     *opt.Graph
	Stages  []*opt.Graph
	LP      *lp.Slicer
	Segs    []*trace.Segment // summary-segment index of the written trace
	Crit    []int64          // criterion addresses (last-defined first)
	RunInfo *interp.Result
	USE     int // unique statements executed

	ProfileTime time.Duration // profiling run (path profile collection)
	TraceTime   time.Duration // instrumented run writing the LP trace
	FPBuild     time.Duration // FP preprocessing (trace -> full graph)
	OPTBuild    time.Duration // OPT preprocessing (trace -> compacted graph)

	TracePath string
	cleanup   func()
}

// Close removes temporary artifacts.
func (r *Result) Close() {
	if r.cleanup != nil {
		r.cleanup()
	}
}

// Build compiles and runs workload w, constructing the requested slicers.
func Build(w Workload, o Options) (*Result, error) {
	if o.NCriteria == 0 {
		o.NCriteria = 25
	}
	if o.SegBlocks == 0 {
		o.SegBlocks = 4096
	}
	reg := o.Telemetry
	p, err := compile.SourceWith(w.Src, reg)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", w.Name, err)
	}
	res := &Result{W: w, P: p}
	span := reg.StartSpan("bench-build")
	defer span.End()

	// Profiling run.
	sp := span.Child("profile")
	col := profile.NewCollector(p)
	t0 := time.Now()
	if _, err := interp.Run(p, interp.Options{Input: w.Input, Sink: col, Telemetry: reg}); err != nil {
		sp.End()
		return nil, fmt.Errorf("bench %s profiling: %w", w.Name, err)
	}
	sp.End()
	res.ProfileTime = time.Since(t0)
	hot := col.HotPaths(1, 0)

	// Instrumented run: write the trace, pick criteria, count statements.
	dir := o.TraceDir
	var tmpdir string
	if dir == "" {
		tmpdir, err = os.MkdirTemp("", "dynslice")
		if err != nil {
			return nil, err
		}
		dir = tmpdir
	}
	res.TracePath = filepath.Join(dir, sanitize(w.Name)+".trace")
	tf, err := os.Create(res.TracePath)
	if err != nil {
		return nil, err
	}
	res.cleanup = func() {
		if tmpdir != "" {
			os.RemoveAll(tmpdir)
		}
	}
	tw := trace.NewWriter(p, tf, o.SegBlocks)
	tw.SetMetrics(trace.NewMetrics(reg))
	picker := trace.NewCritPicker()
	counter := trace.NewCounting(p)
	sinks := trace.Multi{tw, picker, counter}
	sp = span.Child("trace-write")
	t0 = time.Now()
	run, err := interp.Run(p, interp.Options{Input: w.Input, Sink: sinks, Telemetry: reg})
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("bench %s trace run: %w", w.Name, err)
	}
	res.TraceTime = time.Since(t0)
	if err := tf.Close(); err != nil {
		return nil, err
	}
	if tw.Err() != nil {
		return nil, tw.Err()
	}
	res.RunInfo = run
	res.USE = counter.USE()
	res.Segs = tw.Segments()
	res.Crit = picker.Pick(o.NCriteria)

	// Graph builds replay the trace from disk so preprocessing is measured
	// uniformly (trace -> graph), as in the paper.
	rmet := trace.NewMetrics(reg)
	replay := func(sink trace.Sink) (time.Duration, error) {
		f, err := os.Open(res.TracePath)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		start := time.Now()
		if err := trace.ReplayWith(p, f, sink, rmet); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	if o.Pipeline {
		if err := buildPipelined(res, o, hot, col.Cuts(), rmet, span); err != nil {
			return nil, fmt.Errorf("bench %s pipelined build: %w", w.Name, err)
		}
	} else {
		if o.WithFP {
			res.FP = fp.NewGraph(p)
			res.FP.SetTelemetry(reg)
			sp = span.Child("fp-build")
			res.FPBuild, err = replay(res.FP)
			sp.End()
			if err != nil {
				return nil, fmt.Errorf("bench %s fp build: %w", w.Name, err)
			}
		}
		if o.WithOPT {
			cfg := opt.Full()
			if o.OptConfig != nil {
				cfg = *o.OptConfig
			}
			res.OPT = opt.NewGraph(p, cfg, hot, col.Cuts())
			res.OPT.SetTelemetry(reg)
			sp = span.Child("opt-build")
			res.OPTBuild, err = replay(res.OPT)
			sp.End()
			if err != nil {
				return nil, fmt.Errorf("bench %s opt build: %w", w.Name, err)
			}
		}
		if o.WithStages {
			for stage := 0; stage <= 7; stage++ {
				g := opt.NewGraph(p, opt.Stage(stage), hot, col.Cuts())
				if _, err = replay(g); err != nil {
					return nil, fmt.Errorf("bench %s stage %d build: %w", w.Name, stage, err)
				}
				res.Stages = append(res.Stages, g)
			}
		}
	}
	if o.WithLP {
		res.LP = lp.New(p, res.TracePath, tw.Segments())
		res.LP.SetTelemetry(reg)
	}
	return res, nil
}

// buildPipelined constructs every requested graph from one pipelined
// trace pass: the decode stage runs once and fans pooled record batches
// out to the FP, OPT, and stage builders concurrently. FPBuild/OPTBuild
// are the per-sink busy times (apply cost net of pipeline idle time).
func buildPipelined(res *Result, o Options, hot []*profile.PathProfile, cuts *profile.Cuts, rmet *trace.Metrics, span *telemetry.Span) error {
	reg := o.Telemetry
	var sinks []trace.Sink
	fpIdx, optIdx := -1, -1
	if o.WithFP {
		res.FP = fp.NewGraph(res.P)
		res.FP.SetTelemetry(reg)
		res.FP.SetParallelEncode(0)
		fpIdx = len(sinks)
		sinks = append(sinks, res.FP)
	}
	if o.WithOPT {
		cfg := opt.Full()
		if o.OptConfig != nil {
			cfg = *o.OptConfig
		}
		res.OPT = opt.NewGraph(res.P, cfg, hot, cuts)
		res.OPT.SetTelemetry(reg)
		res.OPT.SetParallelEncode(0)
		optIdx = len(sinks)
		sinks = append(sinks, res.OPT)
	}
	if o.WithStages {
		for stage := 0; stage <= 7; stage++ {
			g := opt.NewGraph(res.P, opt.Stage(stage), hot, cuts)
			res.Stages = append(res.Stages, g)
			sinks = append(sinks, g)
		}
	}
	if len(sinks) == 0 {
		return nil
	}
	f, err := os.Open(res.TracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	sp := span.Child("pipelined-build")
	busy, err := trace.ParallelReplayTimed(res.P, f, trace.PipelineConfig{}, rmet, sinks...)
	sp.End()
	if err != nil {
		return err
	}
	if fpIdx >= 0 {
		res.FPBuild = busy[fpIdx]
	}
	if optIdx >= 0 {
		res.OPTBuild = busy[optIdx]
	}
	return nil
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '/' || c == ' ' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}

// SliceAll runs every criterion through a slicer, returning total wall
// time, the mean slice size in statements, and accumulated stats.
func SliceAll(s slicing.Slicer, crit []int64) (time.Duration, float64, *slicing.Stats, error) {
	var total time.Duration
	var sizeSum int64
	agg := &slicing.Stats{}
	for _, a := range crit {
		t0 := time.Now()
		sl, st, err := s.Slice(slicing.AddrCriterion(a))
		total += time.Since(t0)
		if err != nil {
			return 0, 0, nil, err
		}
		sizeSum += int64(sl.Len())
		agg.Instances += st.Instances
		agg.LabelProbes += st.LabelProbes
		agg.SegScans += st.SegScans
		agg.SegSkips += st.SegSkips
	}
	if len(crit) == 0 {
		return 0, 0, agg, nil
	}
	return total, float64(sizeSum) / float64(len(crit)), agg, nil
}

// SliceBatch answers every criterion through one batched SliceAll call
// (slicing.MultiSlicer), returning the same quantities as SliceAll: wall
// time, mean slice size, and the batch's aggregate stats.
func SliceBatch(s slicing.MultiSlicer, crit []int64) (time.Duration, float64, *slicing.Stats, error) {
	cs := make([]slicing.Criterion, len(crit))
	for i, a := range crit {
		cs[i] = slicing.AddrCriterion(a)
	}
	t0 := time.Now()
	outs, stats, err := s.SliceAll(cs)
	total := time.Since(t0)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(crit) == 0 {
		return 0, 0, stats, nil
	}
	var sizeSum int64
	for _, sl := range outs {
		sizeSum += int64(sl.Len())
	}
	return total, float64(sizeSum) / float64(len(crit)), stats, nil
}

// Reprofile reruns the profiling pass for a built workload (benchmark
// helper mirroring what Build does internally).
func Reprofile(tb testing.TB, res *Result) ([]*profile.PathProfile, *profile.Cuts) {
	col := profile.NewCollector(res.P)
	if _, err := interp.Run(res.P, interp.Options{Input: res.W.Input, Sink: col}); err != nil {
		tb.Fatal(err)
	}
	return col.HotPaths(1, 0), col.Cuts()
}

// NewOPTGraph constructs a fresh fully-configured OPT graph (benchmark
// helper).
func NewOPTGraph(p *ir.Program, prof []*profile.PathProfile, cuts *profile.Cuts) *opt.Graph {
	return opt.NewGraph(p, opt.Full(), prof, cuts)
}

// NewFPGraph constructs a fresh FP graph (benchmark helper).
func NewFPGraph(p *ir.Program) *fp.Graph { return fp.NewGraph(p) }

// stage6 returns the paper-strict OPT configuration (no adaptive
// extension), with shortcuts enabled.
func stage6() opt.Config {
	c := opt.Stage(6)
	c.Shortcuts = true
	return c
}
