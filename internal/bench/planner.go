package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"dynslice/internal/interp"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/plan"
	"dynslice/internal/slicing/reexec"
	"dynslice/internal/telemetry/stats"
)

// PlannerBench is one workload's record in BENCH_planner.json: the
// rare-query comparison the re-execution backend exists for (answer one
// cold criterion without building any graph, against the cheapest path
// that does build one), plus the planner's regret on an interactive
// criterion stream — how much latency its choices cost relative to an
// oracle that always picks the measured-fastest backend.
type PlannerBench struct {
	Name      string `json:"name"`
	NCriteria int    `json:"n_criteria"`

	// ReexecMs answers ONE cold criterion by resuming the interpreter
	// from checkpoints and tracing dependences for the suffix only (best
	// of reps, fresh slicer each rep so nothing is cached).
	ReexecMs float64 `json:"reexec_ms"`
	// CheapestBuildMs is the cheapest graph path to the same single
	// answer: min over FP and OPT of (trace-replay build + one query).
	CheapestBuildMs float64 `json:"cheapest_build_ms"`
	// ReexecVsBuildSpeedup is the headline: how much faster the rare
	// query is answered without materializing a dependence graph.
	ReexecVsBuildSpeedup float64 `json:"reexec_vs_build_speedup"`

	// PlannerRegret is the median over the criterion stream of
	// (chosen backend's measured latency / fastest backend's measured
	// latency); 1.0 means the planner always picked the winner.
	PlannerRegret float64 `json:"planner_regret"`
	// Chosen counts how many stream queries the planner routed to each
	// backend (diagnostic, not gated).
	Chosen map[string]int `json:"chosen"`

	IdenticalSlices bool `json:"identical_slices"`
}

const plannerReps = 3

// Planner gates (RunPlanner fails when the median across workloads
// breaks them): the rare query must beat the cheapest build path by at
// least minReexecSpeedup, and the planner's median regret must stay
// within maxPlannerRegret of the per-query optimum.
const (
	minReexecSpeedup = 2.0
	maxPlannerRegret = 1.2
)

// RunPlanner measures the re-execution backend and the cost-based
// planner on every workload and writes per-workload records to outPath
// (cmd/experiments -exp planner).
func RunPlanner(w io.Writer, workloads []Workload, outPath string) error {
	header(w, "Planner: cold re-execution vs graph build, and planning regret",
		fmt.Sprintf("%-12s %10s %10s %9s %8s  %s\n",
			"Program", "reexec(ms)", "build(ms)", "speedup", "regret", "chosen"))
	var out []PlannerBench
	var speedups, regrets []float64
	for _, wl := range workloads {
		res, err := Build(wl, Options{WithFP: true, WithOPT: true, WithLP: true})
		if err != nil {
			return err
		}
		pb, err := measurePlanner(res)
		res.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %10.3f %10.3f %8.1fx %8.2f  %v\n",
			wl.Name, pb.ReexecMs, pb.CheapestBuildMs, pb.ReexecVsBuildSpeedup,
			pb.PlannerRegret, pb.Chosen)
		if !pb.IdenticalSlices {
			return fmt.Errorf("planner %s: backends disagreed on a slice", wl.Name)
		}
		speedups = append(speedups, pb.ReexecVsBuildSpeedup)
		regrets = append(regrets, pb.PlannerRegret)
		out = append(out, pb)
	}
	if med := medianOf(speedups); med < minReexecSpeedup {
		return fmt.Errorf("planner: median reexec-vs-build speedup %.2fx below the %.1fx gate",
			med, minReexecSpeedup)
	}
	if med := medianOf(regrets); med > maxPlannerRegret {
		return fmt.Errorf("planner: median regret %.2f above the %.2f gate",
			med, maxPlannerRegret)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", outPath)
	}
	return nil
}

func measurePlanner(res *Result) (PlannerBench, error) {
	pb := PlannerBench{Name: res.W.Name, NCriteria: len(res.Crit), Chosen: map[string]int{}}
	if len(res.Crit) == 0 {
		return pb, fmt.Errorf("planner %s: no criteria", res.W.Name)
	}

	// Checkpoints for the re-execution backend: one extra plain run (the
	// profile run a production recording captures them on).
	ck, err := interp.Run(res.P, interp.Options{Input: res.W.Input, CheckpointEvery: 4096})
	if err != nil {
		return pb, err
	}
	mkRx := func() *reexec.Slicer {
		return reexec.New(res.P, res.Segs, reexec.Options{
			Input:       res.W.Input,
			TotalBlocks: res.RunInfo.BlockExecs,
			Checkpoints: ck.Checkpoints,
		})
	}
	rare := slicing.AddrCriterion(res.Crit[0])

	// Rare-query path: fresh re-execution slicer each rep, one answer.
	rxTime := time.Duration(1 << 62)
	var rxSlice *slicing.Slice
	for rep := 0; rep < plannerReps; rep++ {
		rx := mkRx()
		t0 := time.Now()
		sl, _, err := rx.Slice(rare)
		if err != nil {
			return pb, fmt.Errorf("planner %s reexec: %w", res.W.Name, err)
		}
		rxTime = min(rxTime, time.Since(t0))
		rxSlice = sl
	}

	// Cheapest build path to the same answer: replay the trace into a
	// fresh graph, then query it once.
	hot, cuts, err := reprofile(res)
	if err != nil {
		return pb, err
	}
	buildTime := time.Duration(1 << 62)
	var buildSlice *slicing.Slice
	for rep := 0; rep < plannerReps; rep++ {
		t0 := time.Now()
		g := NewFPGraph(res.P)
		if err := replayFile(res, g); err != nil {
			return pb, err
		}
		sl, _, err := g.Slice(rare)
		if err != nil {
			return pb, err
		}
		buildTime = min(buildTime, time.Since(t0))
		buildSlice = sl

		t0 = time.Now()
		og := NewOPTGraph(res.P, hot, cuts)
		if err := replayFile(res, og); err != nil {
			return pb, err
		}
		if _, _, err := og.Slice(rare); err != nil {
			return pb, err
		}
		buildTime = min(buildTime, time.Since(t0))
	}
	pb.ReexecMs = ms(rxTime)
	pb.CheapestBuildMs = ms(buildTime)
	if rxTime > 0 {
		pb.ReexecVsBuildSpeedup = float64(buildTime) / float64(rxTime)
	}
	pb.IdenticalSlices = rxSlice.Equal(buildSlice)

	// Planning regret over the interactive stream: every criterion is
	// measured on every live backend, the planner (with warm graphs and
	// live feedback) picks one, and regret is chosen-over-best. The
	// recorder sees exactly what the façade's planned engine would.
	feats := plan.Features{
		TraceBlocks: res.RunInfo.BlockExecs,
		TraceSteps:  res.RunInfo.Steps,
		Segments:    len(res.Segs),
		IRStmts:     len(res.P.Stmts),
	}
	av := plan.Availability{FP: true, OPT: true, LP: true, Reexec: true, FPWarm: true, OPTWarm: true}
	backends := map[string]slicing.Slicer{
		plan.FP:     res.FP,
		plan.OPT:    res.OPT,
		plan.LP:     res.LP,
		plan.Reexec: mkRx(),
	}
	order := []string{plan.FP, plan.OPT, plan.LP, plan.Reexec}
	rec := stats.New()
	var perQuery []float64
	for _, a := range res.Crit {
		c := slicing.AddrCriterion(a)
		times := map[string]time.Duration{}
		slices := map[string]*slicing.Slice{}
		best := time.Duration(1 << 62)
		for _, name := range order {
			t0 := time.Now()
			sl, _, err := backends[name].Slice(c)
			if err != nil {
				return pb, fmt.Errorf("planner %s %s: %w", res.W.Name, name, err)
			}
			times[name] = time.Since(t0)
			slices[name] = sl
			best = min(best, times[name])
		}
		for _, name := range order[1:] {
			if !slices[order[0]].Equal(slices[name]) {
				pb.IdenticalSlices = false
			}
		}
		d := plan.Decide(feats, plan.Shape{Kind: plan.KindSlice, Batch: 1}, av, rec.Snapshot())
		chosen := times[d.Backend]
		rec.ObserveQuery(d.Backend, chosen, 0, false, false)
		pb.Chosen[d.Backend]++
		if best > 0 {
			perQuery = append(perQuery, float64(chosen)/float64(best))
		} else {
			perQuery = append(perQuery, 1)
		}
	}
	pb.PlannerRegret = medianOf(perQuery)
	return pb, nil
}

// medianOf returns the median of vals (0 when empty; even length
// averages the middle pair).
func medianOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
