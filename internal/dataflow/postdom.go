// Package dataflow implements the static analyses the OPT representation's
// static component is built from (paper §3.4): postdominators and control
// dependence, reaching definitions, reaching uses, and the chop-based
// simultaneous/must reachability used to prove label sharing safe
// (OPT-3 and OPT-6).
package dataflow

import (
	"dynslice/internal/ir"
)

// PostDom holds the immediate-postdominator relation for one function.
type PostDom struct {
	Fn    *ir.Func
	ipdom map[*ir.Block]*ir.Block // immediate postdominator; Exit maps to itself
	depth map[*ir.Block]int       // depth in the postdominator tree
}

// PostDominators computes the postdominator tree of f using the iterative
// Cooper-Harvey-Kennedy algorithm on the reverse CFG rooted at f.Exit.
// Blocks that cannot reach the exit (e.g. bodies of provably infinite
// loops) are absent from the result; the IR produced by the lowerer always
// ends functions with a return, so in practice all blocks are covered for
// terminating programs.
func PostDominators(f *ir.Func) *PostDom {
	pd := &PostDom{Fn: f, ipdom: map[*ir.Block]*ir.Block{}, depth: map[*ir.Block]int{}}
	exit := f.Exit

	// Reverse post-order on the reverse CFG (i.e. order blocks so that a
	// block appears before its CFG predecessors where possible).
	var order []*ir.Block
	index := map[*ir.Block]int{}
	seen := map[*ir.Block]bool{}
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, p := range b.Preds {
			dfs(p)
		}
		order = append(order, b)
	}
	dfs(exit)
	// order is post-order of the reverse-CFG DFS; reverse it for RPO.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for i, b := range order {
		index[b] = i
	}

	pd.ipdom[exit] = exit
	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for index[a] > index[b] {
				a = pd.ipdom[a]
			}
			for index[b] > index[a] {
				b = pd.ipdom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == exit {
				continue
			}
			var newIdom *ir.Block
			for _, s := range b.Succs {
				if pd.ipdom[s] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom != nil && pd.ipdom[b] != newIdom {
				pd.ipdom[b] = newIdom
				changed = true
			}
		}
	}
	// Depths for LCA-style walks.
	var depthOf func(b *ir.Block) int
	depthOf = func(b *ir.Block) int {
		if b == exit {
			return 0
		}
		if d, ok := pd.depth[b]; ok {
			return d
		}
		d := depthOf(pd.ipdom[b]) + 1
		pd.depth[b] = d
		return d
	}
	for _, b := range order {
		if pd.ipdom[b] != nil {
			depthOf(b)
		}
	}
	return pd
}

// IPostDom returns the immediate postdominator of b (nil if unknown).
func (pd *PostDom) IPostDom(b *ir.Block) *ir.Block {
	p := pd.ipdom[b]
	if p == b {
		return nil
	}
	return p
}

// PostDominates reports whether a postdominates b (reflexively).
func (pd *PostDom) PostDominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next, ok := pd.ipdom[b]
		if !ok || next == b {
			return false
		}
		b = next
	}
}

// ControlDeps computes intraprocedural control dependence at block
// granularity (Ferrante, Ottenstein, Warren) and stores the ancestor sets
// in Block.CDAncestors. A block b is control dependent on branch block h
// iff h has a successor s such that b postdominates s, and b does not
// postdominate h. Self-dependence (loop headers) is allowed.
func ControlDeps(f *ir.Func, pd *PostDom) {
	for _, b := range f.Blocks {
		b.CDAncestors = nil
	}
	anc := map[*ir.Block]map[*ir.Block]bool{}
	for _, h := range f.Blocks {
		if len(h.Succs) < 2 {
			continue
		}
		for _, s := range h.Succs {
			// Walk the postdominator tree from s up to (exclusive)
			// ipdom(h); every block on the way is control dependent on h.
			stop := pd.ipdom[h]
			for runner := s; runner != nil && runner != stop; runner = pd.ipdom[runner] {
				if anc[runner] == nil {
					anc[runner] = map[*ir.Block]bool{}
				}
				anc[runner][h] = true
				if pd.ipdom[runner] == runner {
					break
				}
			}
		}
	}
	for _, b := range f.Blocks {
		for h := range anc[b] {
			b.CDAncestors = append(b.CDAncestors, h)
		}
		// Deterministic order.
		sortBlocks(b.CDAncestors)
	}
}

// CDSuccs returns the successors s of branch block h for which b
// postdominates s — the branch outcomes of h that force b to execute.
func CDSuccs(pd *PostDom, h, b *ir.Block) []*ir.Block {
	var out []*ir.Block
	for _, s := range h.Succs {
		if pd.PostDominates(b, s) {
			out = append(out, s)
		}
	}
	return out
}

func sortBlocks(bs []*ir.Block) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j].ID < bs[j-1].ID; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}
