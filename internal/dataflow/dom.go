package dataflow

import (
	"dynslice/internal/ir"
)

// Dom holds the (forward) dominator relation for one function.
type Dom struct {
	Fn    *ir.Func
	idom  map[*ir.Block]*ir.Block
	index map[*ir.Block]int // reverse post-order index
}

// Dominators computes the dominator tree of f (Cooper-Harvey-Kennedy).
func Dominators(f *ir.Func) *Dom {
	d := &Dom{Fn: f, idom: map[*ir.Block]*ir.Block{}, index: map[*ir.Block]int{}}
	entry := f.Entry()

	var order []*ir.Block
	seen := map[*ir.Block]bool{}
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		order = append(order, b)
	}
	dfs(entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for i, b := range order {
		d.index[b] = i
	}

	d.idom[entry] = entry
	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for d.index[a] > d.index[b] {
				a = d.idom[a]
			}
			for d.index[b] > d.index[a] {
				b = d.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if d.idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

// Dominates reports whether a dominates b (reflexively).
func (d *Dom) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next, ok := d.idom[b]
		if !ok || next == b {
			return false
		}
		b = next
	}
}

// BackEdges returns the back edges of f's CFG: edges u->v where v
// dominates u (natural-loop back edges; structured lowering produces only
// reducible CFGs).
func BackEdges(f *ir.Func) map[[2]*ir.Block]bool {
	d := Dominators(f)
	out := map[[2]*ir.Block]bool{}
	for _, u := range f.Blocks {
		for _, v := range u.Succs {
			if d.Dominates(v, u) {
				out[[2]*ir.Block{u, v}] = true
			}
		}
	}
	return out
}
