package dataflow

import (
	"dynslice/internal/ir"
)

// DefSite is one definition site: a statement that must- or may-defines an
// object.
type DefSite struct {
	Stmt *ir.Stmt
	Obj  ir.ObjID
	Must bool
}

// ReachingDefs holds the intraprocedural may-reaching-definitions solution
// for one function at object granularity. Call statements act as may-def
// sites for their callee's MOD set; array stores and pointer stores are
// may-defs (they never kill).
type ReachingDefs struct {
	Fn    *ir.Func
	Sites []DefSite
	// In[b] is the set of def-site indices reaching the entry of b.
	In map[*ir.Block]map[int]bool
	// siteOf maps (stmt, obj) to the def-site index.
	siteOf map[siteKey]int
	// byObj maps an object to its def-site indices.
	byObj map[ir.ObjID][]int
}

type siteKey struct {
	s ir.StmtID
	o ir.ObjID
}

// ComputeReachingDefs solves may-reaching definitions for f.
func ComputeReachingDefs(f *ir.Func) *ReachingDefs {
	rd := &ReachingDefs{
		Fn:     f,
		In:     map[*ir.Block]map[int]bool{},
		siteOf: map[siteKey]int{},
		byObj:  map[ir.ObjID][]int{},
	}
	addSite := func(s *ir.Stmt, o ir.ObjID, must bool) {
		k := siteKey{s.ID, o}
		if _, dup := rd.siteOf[k]; dup {
			return
		}
		rd.siteOf[k] = len(rd.Sites)
		rd.byObj[o] = append(rd.byObj[o], len(rd.Sites))
		rd.Sites = append(rd.Sites, DefSite{Stmt: s, Obj: o, Must: must})
	}
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			if s.MustDef != ir.NoObj {
				addSite(s, s.MustDef, true)
			}
			for _, o := range s.MayDefs {
				addSite(s, o, false)
			}
		}
	}

	// GEN/KILL per block.
	gen := map[*ir.Block]map[int]bool{}
	kill := map[*ir.Block]map[int]bool{}
	for _, b := range f.Blocks {
		g := map[int]bool{}
		k := map[int]bool{}
		for _, s := range b.Stmts {
			if s.MustDef != ir.NoObj {
				// Kills every other site of the object.
				for _, si := range rd.byObj[s.MustDef] {
					if rd.Sites[si].Stmt != s {
						k[si] = true
					}
					delete(g, si)
				}
				g[rd.siteOf[siteKey{s.ID, s.MustDef}]] = true
			}
			for _, o := range s.MayDefs {
				si := rd.siteOf[siteKey{s.ID, o}]
				g[si] = true
				delete(k, si)
			}
		}
		gen[b] = g
		kill[b] = k
	}

	for _, b := range f.Blocks {
		rd.In[b] = map[int]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			in := rd.In[b]
			for _, p := range b.Preds {
				// out(p) = gen(p) ∪ (in(p) − kill(p))
				for si := range gen[p] {
					if !in[si] {
						in[si] = true
						changed = true
					}
				}
				for si := range rd.In[p] {
					if kill[p][si] || gen[p][si] {
						continue
					}
					if !in[si] {
						in[si] = true
						changed = true
					}
				}
			}
		}
	}
	return rd
}

// DefsReaching returns the def sites of object o that may reach the entry
// of block b.
func (rd *ReachingDefs) DefsReaching(b *ir.Block, o ir.ObjID) []DefSite {
	var out []DefSite
	for _, si := range rd.byObj[o] {
		if rd.In[b][si] {
			out = append(out, rd.Sites[si])
		}
	}
	return out
}

// Chop returns the set of blocks lying on some CFG path from src to dst
// within one function: reachable-from-src intersected with reaching-dst.
// src and dst themselves are included when on such a path (e.g. via a
// cycle); the conventional chop endpoints are always included.
func Chop(f *ir.Func, src, dst *ir.Block) map[*ir.Block]bool {
	fwd := reach(src, func(b *ir.Block) []*ir.Block { return b.Succs })
	bwd := reach(dst, func(b *ir.Block) []*ir.Block { return b.Preds })
	out := map[*ir.Block]bool{src: true, dst: true}
	for b := range fwd {
		if bwd[b] {
			out[b] = true
		}
	}
	return out
}

func reach(start *ir.Block, next func(*ir.Block) []*ir.Block) map[*ir.Block]bool {
	seen := map[*ir.Block]bool{}
	stack := []*ir.Block{start}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range next(b) {
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return seen
}

// MayDefines reports whether statement s may write object o (including its
// must-def).
func MayDefines(s *ir.Stmt, o ir.ObjID) bool {
	if s.MustDef == o {
		return true
	}
	for _, m := range s.MayDefs {
		if m == o {
			return true
		}
	}
	return false
}

// BlockMayDefines reports whether any statement of b may write o.
func BlockMayDefines(b *ir.Block, o ir.ObjID) bool {
	for _, s := range b.Stmts {
		if MayDefines(s, o) {
			return true
		}
	}
	return false
}

// InteriorClean reports whether no block strictly inside the chop from src
// to dst (i.e. excluding src and dst themselves) may define any of the
// given objects. This is the conservative core of the paper's simultaneous
// reachability analysis (OPT-3) and must reachability analysis (OPT-6):
// when the chop interior is free of definitions of both objects, either
// both definitions flow from src to dst or neither does, so the dependence
// edges carry identical timestamp labels in every run.
func InteriorClean(f *ir.Func, src, dst *ir.Block, objs ...ir.ObjID) bool {
	return InteriorCleanExcept(f, src, dst, nil, objs...)
}

// InteriorCleanExcept is InteriorClean with an exception set: blocks in
// except are permitted to define the objects. Used by the array
// generalization of OPT-3, where the defining logical block lies inside a
// loop (and hence inside its own chop) but re-executes all paired stores
// together, preserving label equality.
func InteriorCleanExcept(f *ir.Func, src, dst *ir.Block, except map[*ir.Block]bool, objs ...ir.ObjID) bool {
	chop := Chop(f, src, dst)
	for b := range chop {
		if b == src || b == dst || except[b] {
			continue
		}
		for _, o := range objs {
			if BlockMayDefines(b, o) {
				return false
			}
		}
	}
	return true
}
