package dataflow

import (
	"dynslice/internal/ir"
)

// Reaching uses analysis (paper §3.4 analysis (ii)): for each program
// point, which earlier use sites of an object still see the value that
// would reach this point — i.e. no definition of the object intervenes on
// the path. A use u1 "reaching" a later use u2 of the same object is
// exactly the condition under which OPT-2b may replace u2's non-local
// def-use edge with a use-use edge to u1.
//
// The OPT graph builds its (block- and path-)local use-use edges with a
// straight-line scan, which coincides with this analysis restricted to a
// single node; the full dataflow version here answers the general
// cross-block question and is used by tests to validate the local scan.

// UseSite is one use of an object: a statement and the use-slot index.
type UseSite struct {
	Stmt *ir.Stmt
	Slot int
	Obj  ir.ObjID
}

// ReachingUses holds the may-reaching-uses solution for one function:
// a use site reaches a point if some path from the use reaches it with no
// intervening may-definition of the object.
type ReachingUses struct {
	Fn    *ir.Func
	Sites []UseSite
	// In[b] is the set of site indices reaching the entry of b.
	In    map[*ir.Block]map[int]bool
	byObj map[ir.ObjID][]int
}

// ComputeReachingUses solves the forward may-reaching-uses problem for
// scalar uses in f.
func ComputeReachingUses(f *ir.Func) *ReachingUses {
	ru := &ReachingUses{
		Fn:    f,
		In:    map[*ir.Block]map[int]bool{},
		byObj: map[ir.ObjID][]int{},
	}
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			for k, u := range s.Uses {
				if !u.Scalar() {
					continue
				}
				ru.byObj[u.Obj] = append(ru.byObj[u.Obj], len(ru.Sites))
				ru.Sites = append(ru.Sites, UseSite{Stmt: s, Slot: k, Obj: u.Obj})
			}
		}
	}

	// Per-block transfer: process statements in order; a may-def of an
	// object kills its live use sites; a use generates its own site.
	gen := map[*ir.Block]map[int]bool{}
	killObj := map[*ir.Block]map[ir.ObjID]bool{}
	siteIdx := map[UseSite]int{}
	for i, s := range ru.Sites {
		siteIdx[s] = i
	}
	for _, b := range f.Blocks {
		g := map[int]bool{}
		k := map[ir.ObjID]bool{}
		for _, s := range b.Stmts {
			for slot, u := range s.Uses {
				if !u.Scalar() {
					continue
				}
				g[siteIdx[UseSite{Stmt: s, Slot: slot, Obj: u.Obj}]] = true
			}
			// Defs kill the object's sites generated so far in this block
			// and all incoming ones.
			apply := func(o ir.ObjID) {
				k[o] = true
				for _, si := range ru.byObj[o] {
					delete(g, si)
				}
			}
			if s.MustDef != ir.NoObj {
				apply(s.MustDef)
			}
			for _, o := range s.MayDefs {
				// May-defs kill for the *may*-reaching variant used to
				// validate soundness of use-use edges (a may-def can
				// change the value, so the earlier use no longer
				// guarantees the same resolution).
				apply(o)
			}
		}
		gen[b] = g
		killObj[b] = k
	}

	for _, b := range f.Blocks {
		ru.In[b] = map[int]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			in := ru.In[b]
			for _, p := range b.Preds {
				for si := range gen[p] {
					if !in[si] {
						in[si] = true
						changed = true
					}
				}
				for si := range ru.In[p] {
					if killObj[p][ru.Sites[si].Obj] || gen[p][si] {
						continue
					}
					if !in[si] {
						in[si] = true
						changed = true
					}
				}
			}
		}
	}
	return ru
}

// UsesReaching returns the use sites of object o that reach the entry of
// block b undisturbed.
func (ru *ReachingUses) UsesReaching(b *ir.Block, o ir.ObjID) []UseSite {
	var out []UseSite
	for _, si := range ru.byObj[o] {
		if ru.In[b][si] {
			out = append(out, ru.Sites[si])
		}
	}
	return out
}
