package dataflow_test

import (
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/dataflow"
	"dynslice/internal/ir"
)

func prog(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// blockWithStmt finds the block containing the statement whose source line
// is the given line (first match).
func blockAtLine(p *ir.Program, fn *ir.Func, line int) *ir.Block {
	for _, b := range fn.Blocks {
		for _, s := range b.Stmts {
			if s.Pos.Line == line {
				return b
			}
		}
	}
	return nil
}

const diamond = `
func main() {
	var x = input();
	var y = 0;
	if (x > 0) {
		y = 1;
	} else {
		y = 2;
	}
	print(y);
	var i = 0;
	while (i < 3) {
		i = i + 1;
	}
	print(i);
}`

func TestPostDominators(t *testing.T) {
	p := prog(t, diamond)
	f := p.Main
	pd := dataflow.PostDominators(f)

	entry := f.Entry()
	condBlk := entry // the if condition terminates the entry block
	thenBlk := blockAtLine(p, f, 6)
	elseBlk := blockAtLine(p, f, 8)
	mergeBlk := blockAtLine(p, f, 10)
	if thenBlk == nil || elseBlk == nil || mergeBlk == nil {
		t.Fatal("could not locate diamond blocks")
	}
	if !pd.PostDominates(mergeBlk, condBlk) {
		t.Error("merge must postdominate the condition")
	}
	if pd.PostDominates(thenBlk, condBlk) {
		t.Error("then-branch must not postdominate the condition")
	}
	if !pd.PostDominates(f.Exit, entry) {
		t.Error("exit must postdominate the entry")
	}
	// Every block postdominates itself.
	for _, b := range f.Blocks {
		if !pd.PostDominates(b, b) {
			t.Errorf("%s should postdominate itself", b)
		}
	}
}

func TestControlDeps(t *testing.T) {
	p := prog(t, diamond)
	f := p.Main
	thenBlk := blockAtLine(p, f, 6)
	elseBlk := blockAtLine(p, f, 8)
	mergeBlk := blockAtLine(p, f, 10)
	bodyBlk := blockAtLine(p, f, 13)

	condBlk := f.Entry()
	hasAnc := func(b, h *ir.Block) bool {
		for _, a := range b.CDAncestors {
			if a == h {
				return true
			}
		}
		return false
	}
	if !hasAnc(thenBlk, condBlk) || !hasAnc(elseBlk, condBlk) {
		t.Error("both branches must be control dependent on the condition")
	}
	if hasAnc(mergeBlk, condBlk) {
		t.Error("the merge must not be control dependent on the condition")
	}
	// Loop body is control dependent on the loop header; the header is
	// control dependent on itself (it governs its own re-execution).
	header := bodyBlk.CDAncestors
	if len(header) == 0 {
		t.Fatal("loop body has no control ancestor")
	}
	loopHdr := header[0]
	if !hasAnc(loopHdr, loopHdr) {
		t.Error("loop header should be control dependent on itself")
	}
}

func TestDominatorsAndBackEdges(t *testing.T) {
	p := prog(t, diamond)
	f := p.Main
	d := dataflow.Dominators(f)
	if !d.Dominates(f.Entry(), f.Exit) {
		t.Error("entry must dominate exit")
	}
	back := dataflow.BackEdges(f)
	if len(back) != 1 {
		t.Fatalf("expected exactly 1 back edge, got %d", len(back))
	}
	for e := range back {
		if !d.Dominates(e[1], e[0]) {
			t.Error("back edge target must dominate its source")
		}
	}
}

func TestReachingDefs(t *testing.T) {
	p := prog(t, `
	var g = 0;
	func main() {
		g = 1;
		if (input() > 0) {
			g = 2;
		}
		print(g);
	}`)
	f := p.Main
	rd := dataflow.ComputeReachingDefs(f)
	var gid ir.ObjID = -1
	for _, o := range p.Globals {
		if o.Name == "g" {
			gid = o.ID
		}
	}
	printBlk := blockAtLine(p, f, 8)
	defs := rd.DefsReaching(printBlk, gid)
	// Both g = 1 and g = 2 reach the print; the initializer g = 0 is
	// killed by the unconditional g = 1 in the same block.
	lines := map[int]bool{}
	for _, d := range defs {
		lines[d.Stmt.Pos.Line] = true
	}
	if !lines[4] || !lines[6] {
		t.Errorf("defs reaching print at lines %v, want {4,6}", lines)
	}
	if lines[2] {
		t.Error("killed initializer should not reach the print")
	}
}

func TestChopAndInteriorClean(t *testing.T) {
	p := prog(t, `
	var x = 0;
	var y = 0;
	func main() {
		x = 1;          // def block (line 5)
		y = 2;
		if (input() > 0) {
			x = 9;      // interior killer of x (line 8)
		}
		print(x + y);   // use block (line 10)
	}`)
	f := p.Main
	src := blockAtLine(p, f, 5)
	dst := blockAtLine(p, f, 10)
	killer := blockAtLine(p, f, 8)
	chop := dataflow.Chop(f, src, dst)
	if !chop[killer] {
		t.Fatal("interior killer must be in the chop")
	}
	var xid, yid ir.ObjID = -1, -1
	for _, o := range p.Globals {
		switch o.Name {
		case "x":
			xid = o.ID
		case "y":
			yid = o.ID
		}
	}
	if dataflow.InteriorClean(f, src, dst, xid) {
		t.Error("x is killed in the chop interior; must not be clean")
	}
	if !dataflow.InteriorClean(f, src, dst, yid) {
		t.Error("y has no interior definitions; must be clean")
	}
	except := map[*ir.Block]bool{killer: true}
	if !dataflow.InteriorCleanExcept(f, src, dst, except, xid) {
		t.Error("excepting the killer block must make x clean")
	}
}

func TestReachingUses(t *testing.T) {
	p := prog(t, `
	var g = 0;
	func main() {
		var a = g + 1;       // line 4: use of g
		if (input() > 0) {
			g = 2;           // line 6: kills the use
		}
		print(a + g);        // line 8: uses g again
	}`)
	f := p.Main
	ru := dataflow.ComputeReachingUses(f)
	var gid ir.ObjID = -1
	for _, o := range p.Globals {
		if o.Name == "g" {
			gid = o.ID
		}
	}
	printBlk := blockAtLine(p, f, 8)
	reaching := ru.UsesReaching(printBlk, gid)
	// The line-4 use may reach the print along the not-taken branch, so
	// the may-reaching set contains it — which is exactly why OPT-2b
	// cannot use a FULL (unlabeled-only) use-use edge here and the local
	// variant degrades to labels when the kill fires.
	found := false
	for _, u := range reaching {
		if u.Stmt.Pos.Line == 4 {
			found = true
		}
	}
	if !found {
		t.Error("line-4 use should may-reach the print (not-taken branch)")
	}

	// After an unconditional kill, nothing reaches.
	p2 := prog(t, `
	var g = 0;
	func main() {
		var a = g + 1;   // line 4
		g = 2;           // unconditional kill
		if (input() > 0) {
			print(a + g); // line 7
		}
	}`)
	f2 := p2.Main
	ru2 := dataflow.ComputeReachingUses(f2)
	var gid2 ir.ObjID = -1
	for _, o := range p2.Globals {
		if o.Name == "g" {
			gid2 = o.ID
		}
	}
	printBlk2 := blockAtLine(p2, f2, 7)
	for _, u := range ru2.UsesReaching(printBlk2, gid2) {
		if u.Stmt.Pos.Line == 4 {
			t.Error("killed use must not reach past an unconditional definition")
		}
	}
}
