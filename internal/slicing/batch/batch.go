// Package batch is the shared multi-criterion traversal scheduler used by
// the FP and OPT batched slicers (slicing.MultiSlicer). It replaces the
// per-algorithm map[key]uint64 visited maps with a sharded flat visited
// table whose criterion masks are merged by atomic CAS, and runs the
// frontier on a bounded work-stealing worker pool:
//
//   - Visited table: open-addressing shards (RWMutex-guarded buckets over
//     slab-allocated entries that never move), one entry per traversal
//     point. The 64-bit criterion mask on each entry is CAS-merged, so
//     the hot path of a revisit is array indexing plus one atomic
//     or-merge — no map hashing, no allocation.
//   - Expansion memo: each entry publishes its dependence expansion (the
//     statements contributed and the downstream points reached) exactly
//     once via an atomic pointer; racing workers compute independently
//     but only the publishing winner's traversal stats are counted, so
//     aggregate stats stay per-unique-point regardless of schedule.
//   - Work stealing: each worker owns a deque, pushes and pops at its
//     tail (LIFO keeps the traversal depth-first and cache-warm), and
//     steals half a victim's queue from the head when empty. Termination
//     is a global count of enqueued-but-unfinished tasks.
//   - Results: workers accumulate per-statement criterion masks in dense
//     per-worker arrays, OR-merged after the pool drains — the output is
//     a deterministic function of the reachable set, independent of the
//     schedule or worker count.
package batch

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"dynslice/internal/ir"
	"dynslice/internal/slicing"
)

// Key identifies one traversal point. The packing is the caller's: FP uses
// (statement, timestamp), OPT packs (node, statement copy, timestamp, use
// slot). Equal keys must denote the same expansion.
type Key struct {
	K1, K2 uint64
}

// Expansion is the memoized resolution of one traversal point: the
// statements it contributes to every criterion that reaches it, and the
// downstream points it leads to. Published once per unique key and then
// read-only.
type Expansion struct {
	Stmts   []ir.StmtID
	Targets []Key
}

// Counters reports scheduler-level work for telemetry.
type Counters struct {
	Steals      int64 // steal operations that moved at least one task
	Merges      int64 // tasks coalesced by key before expansion (mask OR-merge)
	Expansions  int64 // unique traversal points expanded
	WorkersUsed int   // workers the run actually started
}

// Config configures one batched traversal.
type Config struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0). A batch
	// never uses more workers than it has seed tasks.
	Workers int
	// NumStmts sizes the dense per-statement result-mask arrays
	// (statement IDs index them).
	NumStmts int
	// Expand resolves one traversal point. It is called at most once per
	// unique key per winner (racing losers' results are discarded); stats
	// must count only this key's resolution work. scratch is the
	// caller's per-worker state from NewScratch (nil when unset).
	Expand func(k Key, stats *slicing.Stats, scratch any) *Expansion
	// NewScratch builds per-worker expansion state (e.g. label-block
	// cursor caches). Optional.
	NewScratch func() any
	// FinishScratch is called once per worker after the pool drains, on
	// the caller's goroutine, so per-worker scratch tallies (cursor hit
	// counts) can be folded into caller-side counters. Optional.
	FinishScratch func(any)
}

// Task is a seed for Run: a traversal point and the criterion bits that
// start there.
type Task struct {
	K    Key
	Mask uint64
	e    *entry
}

// Run executes one batched traversal from seeds and returns the dense
// per-statement criterion masks, the aggregate traversal stats, and the
// scheduler counters. The masks and stats are deterministic for a given
// graph and seed set; Counters are schedule-dependent (except Expansions).
func Run(cfg Config, seeds []Task) ([]uint64, slicing.Stats, Counters) {
	nw := cfg.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > len(seeds) {
		nw = len(seeds)
	}
	if nw < 1 {
		nw = 1
	}
	r := &runner{cfg: cfg, table: newTable(nw)}
	r.workers = make([]*worker, nw)
	for i := range r.workers {
		w := &worker{masks: make([]uint64, cfg.NumStmts)}
		if cfg.NewScratch != nil {
			w.scratch = cfg.NewScratch()
		}
		r.workers[i] = w
	}
	// Seeds are dealt round-robin so the pool starts balanced; stealing
	// rebalances from there.
	for i, s := range seeds {
		r.push(r.workers[i%nw], s.K, s.Mask)
	}
	if nw == 1 {
		r.loop(0)
	} else {
		var wg sync.WaitGroup
		for i := 0; i < nw; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r.loop(i)
			}(i)
		}
		wg.Wait()
	}
	if cfg.FinishScratch != nil {
		for _, w := range r.workers {
			cfg.FinishScratch(w.scratch)
		}
	}
	masks := r.workers[0].masks
	stats := r.workers[0].stats
	ctr := r.workers[0].ctr
	for _, w := range r.workers[1:] {
		for i, m := range w.masks {
			masks[i] |= m
		}
		stats.Instances += w.stats.Instances
		stats.LabelProbes += w.stats.LabelProbes
		stats.SegScans += w.stats.SegScans
		stats.SegSkips += w.stats.SegSkips
		ctr.Steals += w.ctr.Steals
		ctr.Merges += w.ctr.Merges
		ctr.Expansions += w.ctr.Expansions
	}
	ctr.WorkersUsed = nw
	return masks, stats, ctr
}

type worker struct {
	mu      sync.Mutex
	dq      []Task
	masks   []uint64
	stats   slicing.Stats
	ctr     Counters
	scratch any
}

type runner struct {
	cfg     Config
	table   *table
	workers []*worker
	pending atomic.Int64
}

// push claims mask's unseen bits for k in the visited table and, when any
// are new, enqueues a task carrying exactly those bits.
func (r *runner) push(w *worker, k Key, mask uint64) {
	nv, e := r.table.visit(k, mask)
	if nv == 0 {
		return
	}
	r.pending.Add(1)
	w.mu.Lock()
	w.dq = append(w.dq, Task{K: k, Mask: nv, e: e})
	w.mu.Unlock()
}

// pop takes from the worker's own tail, coalescing any directly adjacent
// tasks for the same key into one mask (the deque-level half of mask
// merging; the table-level half happens at push). Coalesced tasks retire
// immediately from the pending count.
func (r *runner) pop(w *worker) (Task, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.dq)
	if n == 0 {
		return Task{}, false
	}
	t := w.dq[n-1]
	w.dq = w.dq[:n-1]
	for len(w.dq) > 0 && w.dq[len(w.dq)-1].K == t.K {
		t.Mask |= w.dq[len(w.dq)-1].Mask
		w.dq = w.dq[:len(w.dq)-1]
		w.ctr.Merges++
		r.pending.Add(-1)
	}
	return t, true
}

// steal moves half of a victim's queue (from the head: the oldest, widest
// frontier entries) to the thief.
func (r *runner) steal(self int) (Task, bool) {
	me := r.workers[self]
	n := len(r.workers)
	for off := 1; off < n; off++ {
		v := r.workers[(self+off)%n]
		v.mu.Lock()
		if len(v.dq) == 0 {
			v.mu.Unlock()
			continue
		}
		take := (len(v.dq) + 1) / 2
		grabbed := make([]Task, take)
		copy(grabbed, v.dq[:take])
		v.dq = append(v.dq[:0], v.dq[take:]...)
		v.mu.Unlock()
		me.mu.Lock()
		me.dq = append(me.dq, grabbed[:take-1]...)
		me.mu.Unlock()
		me.ctr.Steals++
		return grabbed[take-1], true
	}
	return Task{}, false
}

func (r *runner) loop(self int) {
	w := r.workers[self]
	single := len(r.workers) == 1
	for {
		t, ok := r.pop(w)
		if !ok && !single {
			t, ok = r.steal(self)
		}
		if !ok {
			if r.pending.Load() == 0 || single {
				return
			}
			runtime.Gosched()
			continue
		}
		r.process(w, t)
	}
}

// process expands one task: resolve (or reuse) the key's expansion, OR the
// task's bits into the contributed statements' result masks, and propagate
// the bits downstream.
func (r *runner) process(w *worker, t Task) {
	exp := t.e.exp.Load()
	if exp == nil {
		var delta slicing.Stats
		computed := r.cfg.Expand(t.K, &delta, w.scratch)
		if t.e.exp.CompareAndSwap(nil, computed) {
			// Publishing winner: its resolution work is the one counted,
			// so stats are per-unique-key no matter how many workers
			// raced here.
			w.stats.Instances += delta.Instances
			w.stats.LabelProbes += delta.LabelProbes
			w.ctr.Expansions++
			exp = computed
		} else {
			exp = t.e.exp.Load()
		}
	}
	for _, id := range exp.Stmts {
		w.masks[id] |= t.Mask
	}
	for _, tk := range exp.Targets {
		r.push(w, tk, t.Mask)
	}
	r.pending.Add(-1)
}

// MaskSlices converts the dense per-statement criterion masks into one
// slicing.Slice per criterion bit.
func MaskSlices(masks []uint64, outs []*slicing.Slice) {
	for id, m := range masks {
		for ; m != 0; m &= m - 1 {
			outs[bits.TrailingZeros64(m)].Add(ir.StmtID(id))
		}
	}
}
