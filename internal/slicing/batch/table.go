package batch

import (
	"sync"
	"sync/atomic"
)

// The visited table: a power-of-two set of shards, each an open-addressing
// bucket array over slab-allocated entries. Entries never move once
// created (slabs are fixed-capacity chunks), so workers hold *entry across
// shard growth; only the bucket index array is rehashed, under the shard's
// write lock. The common revisit path is: read-lock, probe a few buckets,
// CAS the mask — no allocation, no map hashing.

type entry struct {
	k1, k2 uint64
	mask   atomic.Uint64
	exp    atomic.Pointer[Expansion]
}

const entryChunkShift = 9 // 512 entries per slab chunk

type shard struct {
	mu      sync.RWMutex
	buckets []int32 // entry index + 1; 0 = empty
	chunks  [][]entry
	count   int
}

type table struct {
	shards []shard
	smask  uint64
}

// newTable sizes the shard set to the worker count: enough shards that
// concurrent inserts rarely collide, bounded so a single-worker run stays
// tiny.
func newTable(workers int) *table {
	n := 8
	for n < workers*4 {
		n <<= 1
	}
	if n > 64 {
		n = 64
	}
	t := &table{shards: make([]shard, n), smask: uint64(n - 1)}
	return t
}

// hash mixes both key words (splitmix64 finalizer over their combination).
func hash(k Key) uint64 {
	h := k.K1*0x9e3779b97f4a7c15 + k.K2
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// visit merges mask into k's entry, creating it if needed, and returns the
// newly claimed bits (0 if every bit was already present) plus the stable
// entry.
func (t *table) visit(k Key, mask uint64) (uint64, *entry) {
	h := hash(k)
	sh := &t.shards[h&t.smask]
	sh.mu.RLock()
	e := sh.lookup(k, h)
	sh.mu.RUnlock()
	if e == nil {
		sh.mu.Lock()
		e = sh.insert(k, h)
		sh.mu.Unlock()
	}
	for {
		old := e.mask.Load()
		nv := mask &^ old
		if nv == 0 {
			return 0, e
		}
		if e.mask.CompareAndSwap(old, old|nv) {
			return nv, e
		}
	}
}

// lookup probes under the read lock. The returned entry outlives the lock:
// entries live in fixed chunks that are never reallocated.
func (sh *shard) lookup(k Key, h uint64) *entry {
	n := uint64(len(sh.buckets))
	if n == 0 {
		return nil
	}
	for i := h & (n - 1); ; i = (i + 1) & (n - 1) {
		b := sh.buckets[i]
		if b == 0 {
			return nil
		}
		e := sh.at(int(b - 1))
		if e.k1 == k.K1 && e.k2 == k.K2 {
			return e
		}
	}
}

func (sh *shard) at(idx int) *entry {
	return &sh.chunks[idx>>entryChunkShift][idx&(1<<entryChunkShift-1)]
}

// insert re-probes under the write lock (another worker may have won the
// race) and otherwise allocates the entry, growing the bucket array at 3/4
// load.
func (sh *shard) insert(k Key, h uint64) *entry {
	if sh.buckets == nil {
		sh.buckets = make([]int32, 64)
	}
	if e := sh.lookupLocked(k, h); e != nil {
		return e
	}
	if (sh.count+1)*4 > len(sh.buckets)*3 {
		sh.grow()
	}
	ci := sh.count >> entryChunkShift
	if ci == len(sh.chunks) {
		sh.chunks = append(sh.chunks, make([]entry, 1<<entryChunkShift))
	}
	idx := sh.count
	sh.count++
	e := sh.at(idx)
	e.k1, e.k2 = k.K1, k.K2
	n := uint64(len(sh.buckets))
	for i := h & (n - 1); ; i = (i + 1) & (n - 1) {
		if sh.buckets[i] == 0 {
			sh.buckets[i] = int32(idx + 1)
			break
		}
	}
	return e
}

func (sh *shard) lookupLocked(k Key, h uint64) *entry {
	n := uint64(len(sh.buckets))
	for i := h & (n - 1); ; i = (i + 1) & (n - 1) {
		b := sh.buckets[i]
		if b == 0 {
			return nil
		}
		e := sh.at(int(b - 1))
		if e.k1 == k.K1 && e.k2 == k.K2 {
			return e
		}
	}
}

// grow doubles the bucket array and rehashes the indices; entries stay put.
func (sh *shard) grow() {
	old := sh.buckets
	sh.buckets = make([]int32, len(old)*2)
	n := uint64(len(sh.buckets))
	for _, b := range old {
		if b == 0 {
			continue
		}
		e := sh.at(int(b - 1))
		h := hash(Key{e.k1, e.k2})
		for i := h & (n - 1); ; i = (i + 1) & (n - 1) {
			if sh.buckets[i] == 0 {
				sh.buckets[i] = b
				break
			}
		}
	}
}
