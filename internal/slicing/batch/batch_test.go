package batch

import (
	"sync"
	"testing"

	"dynslice/internal/ir"
	"dynslice/internal/slicing"
)

// synthetic DAG: key i contributes statement i%numStmts and leads to keys
// 2i+1 and 2i+2 below limit, plus a convergence edge to i/3 — the shared
// ancestors make mask merging and the expansion memo load-bearing.
const (
	synLimit = 5000
	synStmts = 257
)

func synExpand(k Key, stats *slicing.Stats, _ any) *Expansion {
	stats.Instances++
	stats.LabelProbes += 2
	i := k.K1
	e := &Expansion{Stmts: []ir.StmtID{ir.StmtID(i % synStmts)}}
	if c := 2*i + 1; c < synLimit {
		e.Targets = append(e.Targets, Key{K1: c})
	}
	if c := 2*i + 2; c < synLimit {
		e.Targets = append(e.Targets, Key{K1: c})
	}
	if i > 0 {
		e.Targets = append(e.Targets, Key{K1: i / 3})
	}
	return e
}

func synSeeds(n int) []Task {
	seeds := make([]Task, n)
	for i := range seeds {
		// Spread the seeds over the key space; distinct criterion bits.
		seeds[i] = Task{K: Key{K1: uint64(i * 37 % synLimit)}, Mask: 1 << uint(i%64)}
	}
	return seeds
}

// TestRunDeterministicAcrossWorkers: the result masks, traversal stats, and
// expansion count must be a pure function of the graph and seed set — the
// same under any worker count or schedule.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	for _, nseeds := range []int{1, 7, 63, 64, 65, 200} {
		seeds := synSeeds(nseeds)
		want, wantStats, wantCtr := Run(Config{Workers: 1, NumStmts: synStmts, Expand: synExpand}, seeds)
		if wantCtr.WorkersUsed != 1 {
			t.Fatalf("seeds=%d: workers used = %d want 1", nseeds, wantCtr.WorkersUsed)
		}
		for _, workers := range []int{2, 8} {
			got, gotStats, gotCtr := Run(Config{Workers: workers, NumStmts: synStmts, Expand: synExpand}, seeds)
			for id := range want {
				if got[id] != want[id] {
					t.Fatalf("seeds=%d workers=%d: stmt %d mask %x want %x",
						nseeds, workers, id, got[id], want[id])
				}
			}
			if gotStats != wantStats {
				t.Errorf("seeds=%d workers=%d: stats %+v want %+v", nseeds, workers, gotStats, wantStats)
			}
			if gotCtr.Expansions != wantCtr.Expansions {
				t.Errorf("seeds=%d workers=%d: expansions %d want %d",
					nseeds, workers, gotCtr.Expansions, wantCtr.Expansions)
			}
			if maxW := min(workers, nseeds); gotCtr.WorkersUsed != maxW {
				t.Errorf("seeds=%d workers=%d: workers used = %d want %d",
					nseeds, workers, gotCtr.WorkersUsed, maxW)
			}
		}
	}
}

// TestRunHammer is the work-stealing stress test: many repetitions at high
// worker counts over the shared-ancestor DAG. Under -race it is the proof
// that deque transfer, table growth, mask CAS, and the expansion memo are
// sound together.
func TestRunHammer(t *testing.T) {
	seeds := synSeeds(64)
	want, _, _ := Run(Config{Workers: 1, NumStmts: synStmts, Expand: synExpand}, seeds)
	reps := 8
	if testing.Short() {
		reps = 3
	}
	for rep := 0; rep < reps; rep++ {
		got, _, ctr := Run(Config{Workers: 8, NumStmts: synStmts, Expand: synExpand}, seeds)
		for id := range want {
			if got[id] != want[id] {
				t.Fatalf("rep %d: stmt %d mask %x want %x", rep, id, got[id], want[id])
			}
		}
		if ctr.Expansions <= 0 {
			t.Fatalf("rep %d: no expansions counted", rep)
		}
	}
}

// TestScratchLifecycle: NewScratch runs once per started worker and
// FinishScratch sees every scratch exactly once, after the pool drains.
func TestScratchLifecycle(t *testing.T) {
	type scratch struct{ expansions int }
	var mu sync.Mutex
	var finished []*scratch
	cfg := Config{
		Workers:  4,
		NumStmts: synStmts,
		Expand: func(k Key, stats *slicing.Stats, sc any) *Expansion {
			sc.(*scratch).expansions++
			return synExpand(k, stats, nil)
		},
		NewScratch: func() any { return &scratch{} },
		FinishScratch: func(sc any) {
			mu.Lock()
			finished = append(finished, sc.(*scratch))
			mu.Unlock()
		},
	}
	_, _, ctr := Run(cfg, synSeeds(16))
	if len(finished) != ctr.WorkersUsed {
		t.Fatalf("FinishScratch ran %d times, want %d", len(finished), ctr.WorkersUsed)
	}
	var total int
	for _, sc := range finished {
		total += sc.expansions
	}
	// Racing losers also call Expand, so the per-scratch total is >= the
	// published expansion count — never less.
	if int64(total) < ctr.Expansions {
		t.Fatalf("scratch saw %d expansions, published %d", total, ctr.Expansions)
	}
}

// TestVisitMaskSemantics: visit returns exactly the newly claimed bits and
// the entry is stable across calls and growth.
func TestVisitMaskSemantics(t *testing.T) {
	tb := newTable(4)
	k := Key{K1: 42, K2: 7}
	nv, e1 := tb.visit(k, 0b1011)
	if nv != 0b1011 {
		t.Fatalf("first visit claimed %b want 1011", nv)
	}
	nv, e2 := tb.visit(k, 0b1110)
	if nv != 0b0100 {
		t.Fatalf("second visit claimed %b want 0100", nv)
	}
	if e1 != e2 {
		t.Fatal("entry moved between visits")
	}
	if nv, _ := tb.visit(k, 0b1111); nv != 0 {
		t.Fatalf("third visit claimed %b want 0", nv)
	}
	// Force bucket growth in every shard; earlier entries must survive with
	// their masks intact and without duplication.
	entries := map[Key]*entry{k: e1}
	for i := uint64(0); i < 5000; i++ {
		kk := Key{K1: i, K2: i * 3}
		nv, e := tb.visit(kk, 1)
		if prev, dup := entries[kk]; dup && prev != e {
			t.Fatalf("key %v: duplicate entry after growth", kk)
		} else if !dup {
			if nv != 1 {
				t.Fatalf("key %v: fresh visit claimed %b", kk, nv)
			}
			entries[kk] = e
		}
	}
	if nv, e := tb.visit(k, 0b10000); nv != 0b10000 || e != e1 {
		t.Fatalf("post-growth visit: claimed %b entry moved=%v", nv, e != e1)
	}
}

// TestVisitConcurrent: racing workers claiming overlapping masks must
// partition the bits — every bit claimed exactly once per key.
func TestVisitConcurrent(t *testing.T) {
	tb := newTable(8)
	const keys = 2000
	claimed := make([][]uint64, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		claimed[w] = make([]uint64, keys)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				nv, _ := tb.visit(Key{K1: uint64(i)}, 0xFF)
				claimed[w][i] = nv
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < keys; i++ {
		var union, overlap uint64
		for w := 0; w < 8; w++ {
			if union&claimed[w][i] != 0 {
				overlap |= union & claimed[w][i]
			}
			union |= claimed[w][i]
		}
		if union != 0xFF || overlap != 0 {
			t.Fatalf("key %d: union=%x overlap=%x", i, union, overlap)
		}
	}
}

// TestMaskSlices: bit j of a statement's mask lands in slice j, and only
// there.
func TestMaskSlices(t *testing.T) {
	masks := []uint64{0b101, 0, 1 << 63}
	outs := make([]*slicing.Slice, 64)
	for i := range outs {
		outs[i] = slicing.NewSlice()
	}
	MaskSlices(masks, outs)
	check := func(bit int, want ...ir.StmtID) {
		t.Helper()
		got := outs[bit].Stmts()
		if len(got) != len(want) {
			t.Fatalf("slice %d: %v want %v", bit, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("slice %d: %v want %v", bit, got, want)
			}
		}
	}
	check(0, 0)
	check(2, 0)
	check(63, 2)
	check(1)
}
