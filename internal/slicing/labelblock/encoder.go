package labelblock

import (
	"runtime"
	"sync"
)

// Encoder shards label-block sealing across builder workers: the trace
// resolver (inherently sequential — every dependence resolution depends
// on the last-definition state the records before it established) keeps
// appending pairs, but each time a list's tail fills, the sealed run — one
// build epoch of that list — is handed to an encode worker instead of
// being delta-varint compressed inline. The builder reserves the block's
// slot immediately (header now: FirstTu/LastTu/N, payload later), so the
// list's sealed range stays searchable for straddle checks and later
// epochs graft after it deterministically, in submit order. Drain waits
// for the workers and patches every reserved slot with its encoded
// payload; the per-list block sequences that result are byte-identical to
// inline sealing.
//
// One Encoder belongs to one graph build (its lists must not be read
// until Drain). Workers own private Arenas, so encoding allocates without
// synchronization.
type Encoder struct {
	jobs    chan *encJob
	wg      sync.WaitGroup
	mu      sync.Mutex
	done    []*encJob
	workers int
	blocks  int64
	drained bool
}

type encJob struct {
	l     *List
	idx   int // reserved slot in l.blocks
	pairs []Pair
	aux   []int32
	blk   Block
}

// NewEncoder starts an encode pool; workers <= 0 means GOMAXPROCS.
func NewEncoder(workers int) *Encoder {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Encoder{jobs: make(chan *encJob, 4*workers), workers: workers}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.run()
	}
	return e
}

// Workers reports the pool width (telemetry: build.epoch.workers).
func (e *Encoder) Workers() int { return e.workers }

// Blocks reports how many blocks were encoded off the builder's critical
// path (valid after Drain).
func (e *Encoder) Blocks() int64 { return e.blocks }

func (e *Encoder) run() {
	defer e.wg.Done()
	ar := NewArena()
	var local []*encJob
	for j := range e.jobs {
		j.blk = EncodeBlock(ar, j.pairs, j.aux)
		local = append(local, j)
	}
	e.mu.Lock()
	e.done = append(e.done, local...)
	e.mu.Unlock()
}

func (e *Encoder) submit(l *List, idx int, pairs []Pair, aux []int32) {
	e.blocks++
	e.jobs <- &encJob{l: l, idx: idx, pairs: pairs, aux: aux}
}

// Drain finishes the pool and patches every reserved block slot with its
// encoded payload. Must be called before the lists are compacted or read;
// the encoder accepts no further work afterwards. Safe to call twice.
func (e *Encoder) Drain() {
	if e == nil || e.drained {
		return
	}
	e.drained = true
	close(e.jobs)
	e.wg.Wait()
	for _, j := range e.done {
		j.l.blocks[j.idx].Data = j.blk.Data
	}
	e.done = nil
}

// AppendEnc is Append with epoch-parallel sealing: a filled tail that can
// seal cleanly is submitted to enc's workers and replaced by a reserved
// block whose payload Drain patches in. A nil enc is exactly Append.
func (l *List) AppendEnc(ar *Arena, enc *Encoder, p Pair, aux int32) {
	if enc == nil {
		l.Append(ar, p, aux)
		return
	}
	if len(l.tail) > 0 && p.Tu < l.tail[len(l.tail)-1].Tu {
		l.flags |= flagDirty
	}
	l.tail = append(l.tail, p)
	if l.hasAux() {
		l.aux = append(l.aux, aux)
	}
	l.n++
	if !l.plain() && len(l.tail) >= BlockSize {
		l.sealAsync(ar, enc)
	}
}

// sealAsync is compressTail with the EncodeBlock calls shipped to the
// encoder. The straddle rule is identical: a tail reaching back into the
// sealed range stays resident for Repack at finalization.
func (l *List) sealAsync(ar *Arena, enc *Encoder) {
	dedupe := l.flags&flagDedupe != 0
	l.sortTail(dedupe)
	if len(l.tail) == 0 {
		return
	}
	if len(l.blocks) > 0 && l.tail[0].Tu <= l.blocks[len(l.blocks)-1].LastTu {
		l.flags |= flagStraddle
		return
	}
	for off := 0; off < len(l.tail); off += BlockSize {
		end := min(off+BlockSize, len(l.tail))
		run := l.tail[off:end]
		var a []int32
		if l.hasAux() {
			a = l.aux[off:end]
		}
		enc.submit(l, len(l.blocks), run, a)
		l.blocks = append(l.blocks, Block{
			FirstTu: run[0].Tu,
			LastTu:  run[len(run)-1].Tu,
			N:       int32(len(run)),
			HasAux:  l.hasAux(),
		})
	}
	// The tail's backing arrays now belong to the submitted jobs; refill
	// fresh (the arena free list cannot recycle across goroutines).
	l.tail = make([]Pair, 0, BlockSize)
	if l.hasAux() {
		l.aux = make([]int32, 0, BlockSize)
	} else {
		l.aux = nil
	}
}
