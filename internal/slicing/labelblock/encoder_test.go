package labelblock

import (
	"math/rand"
	"testing"
)

// appendStream feeds the same pair stream through AppendEnc (async block
// sealing) and Append (inline), returning both lists finalized.
func appendStream(t *testing.T, pairs []Pair, aux []int32, withAux bool, workers int) (enc, inline List) {
	t.Helper()
	e := NewEncoder(workers)
	enc = NewList(false, withAux)
	inline = NewList(false, withAux)
	for i, p := range pairs {
		var a int32
		if withAux {
			a = aux[i]
		}
		enc.AppendEnc(nil, e, p, a)
		inline.Append(nil, p, a)
	}
	e.Drain()
	enc.Seal(false)
	inline.Seal(false)
	return enc, inline
}

func requireIdentical(t *testing.T, enc, inline *List, withAux bool) {
	t.Helper()
	eb, ib := enc.Blocks(), inline.Blocks()
	if len(eb) != len(ib) {
		t.Fatalf("block count %d want %d", len(eb), len(ib))
	}
	for i := range eb {
		if eb[i].FirstTu != ib[i].FirstTu || eb[i].LastTu != ib[i].LastTu ||
			eb[i].N != ib[i].N || eb[i].HasAux != ib[i].HasAux {
			t.Fatalf("block %d header: %+v want %+v", i, eb[i], ib[i])
		}
		if string(eb[i].Data) != string(ib[i].Data) {
			t.Fatalf("block %d payload differs (async sealing must be byte-identical)", i)
		}
	}
	want := inline.Pairs(nil)
	got := enc.Pairs(nil)
	if len(got) != len(want) {
		t.Fatalf("pairs %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: %v want %v", i, got[i], want[i])
		}
	}
	_ = withAux
}

// TestEncoderEquivalence: async epoch sealing must produce blocks
// byte-identical to inline sealing, for sorted streams, straddling
// streams, and aux payloads, at several worker counts.
func TestEncoderEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mkSorted := func(n int) ([]Pair, []int32) {
		ps := make([]Pair, n)
		ax := make([]int32, n)
		tu := int64(0)
		for i := range ps {
			tu += int64(1 + rng.Intn(4))
			ps[i] = Pair{Td: tu - int64(rng.Intn(50)), Tu: tu}
			ax[i] = int32(rng.Intn(100) - 50)
		}
		return ps, ax
	}
	for _, workers := range []int{1, 3} {
		for _, n := range []int{5, BlockSize, BlockSize*4 + 33} {
			ps, ax := mkSorted(n)
			for _, withAux := range []bool{false, true} {
				enc, inline := appendStream(t, ps, ax, withAux, workers)
				requireIdentical(t, &enc, &inline, withAux)
			}
		}
	}
	// Straddling stream: a sealed high range then stragglers below it —
	// the straddle guard must keep those resident in both modes.
	var ps []Pair
	for i := 0; i < BlockSize; i++ {
		ps = append(ps, Pair{Td: int64(i), Tu: 5000 + int64(i)})
	}
	for i := 0; i < BlockSize+10; i++ {
		ps = append(ps, Pair{Td: int64(i), Tu: int64(i + 1)})
	}
	enc, inline := appendStream(t, ps, nil, false, 2)
	requireIdentical(t, &enc, &inline, false)
	if td, _, _, ok := enc.Find(5); !ok || td != 4 {
		t.Fatalf("straddle Find(5) = %d,%v want 4,true", td, ok)
	}
}

// TestEncoderDrainSafety: Drain must be nil-safe and idempotent, and the
// list must be fully searchable afterwards.
func TestEncoderDrainSafety(t *testing.T) {
	var nilEnc *Encoder
	nilEnc.Drain() // must not panic

	e := NewEncoder(2)
	l := NewList(false, false)
	n := BlockSize*3 + 9
	for i := 0; i < n; i++ {
		l.AppendEnc(nil, e, Pair{Td: int64(i), Tu: int64(i * 2)}, 0)
	}
	e.Drain()
	e.Drain() // idempotent
	if e.Blocks() != 3 {
		t.Fatalf("encoder sealed %d blocks want 3", e.Blocks())
	}
	if e.Workers() != 2 {
		t.Fatalf("workers = %d want 2", e.Workers())
	}
	for i := 0; i < n; i++ {
		if td, _, _, ok := l.Find(int64(i * 2)); !ok || td != int64(i) {
			t.Fatalf("Find(%d) = %d,%v want %d", i*2, td, ok, i)
		}
	}
}

// TestCursorCacheFind: the cached find must agree with List.Find on every
// probe (present and absent), and repeated probes into one block must be
// answered from the cached decode (Hits advances).
func TestCursorCacheFind(t *testing.T) {
	l := NewList(false, false)
	n := BlockSize*4 + 21
	for i := 0; i < n; i++ {
		l.Append(nil, Pair{Td: int64(i), Tu: int64(i*3 + 1)}, 0)
	}
	l.Seal(false)
	cc := NewCursorCache()
	// nil cache falls back to the plain find.
	if td, _, _, ok := (*CursorCache)(nil).Find(&l, 4); !ok || td != 1 {
		t.Fatalf("nil cache Find(4) = %d,%v want 1,true", td, ok)
	}
	for probe := int64(0); probe < int64(n*3+10); probe++ {
		wantTd, _, _, wantOk := l.Find(probe)
		gotTd, _, _, gotOk := cc.Find(&l, probe)
		if gotOk != wantOk || (gotOk && gotTd != wantTd) {
			t.Fatalf("Find(%d) = %d,%v want %d,%v", probe, gotTd, gotOk, wantTd, wantOk)
		}
	}
	if cc.Hits == 0 {
		t.Fatal("sequential probes never hit the cached block")
	}
	// A second list through the same cache must not cross-contaminate.
	l2 := NewList(false, false)
	for i := 0; i < BlockSize*2; i++ {
		l2.Append(nil, Pair{Td: int64(i * 7), Tu: int64(i*5 + 2)}, 0)
	}
	l2.Seal(false)
	for probe := int64(0); probe < int64(BlockSize*10); probe++ {
		for _, li := range []*List{&l, &l2} {
			wantTd, _, _, wantOk := li.Find(probe)
			gotTd, _, _, gotOk := cc.Find(li, probe)
			if gotOk != wantOk || (gotOk && gotTd != wantTd) {
				t.Fatalf("list %p Find(%d) = %d,%v want %d,%v", li, probe, gotTd, gotOk, wantTd, wantOk)
			}
		}
	}
}
