package labelblock

// Arena batches the small allocations graph build would otherwise scatter
// across the heap: block payloads are bump-allocated from 64 KiB byte
// chunks, and the fixed-capacity tail arrays that lists fill and seal are
// recycled through a free list instead of being re-made per block. All
// entry points are nil-safe — a nil *Arena falls back to plain make/append
// so tests and the -compact=false path need no allocator plumbing.
//
// An Arena is single-goroutine, matching graph build: each trace replay
// sink owns one. After Finalize the graph is read-only, so queries never
// touch it.
type Arena struct {
	chunk      []byte   // current bump-allocation chunk
	tailFree   [][]Pair // recycled tail backing arrays
	scratchBuf []byte   // reusable encode buffer

	allocBytes int64 // total bytes handed out (accounting)
	tailAllocs int64 // fresh tail arrays created (free-list misses)
}

const arenaChunkBytes = 64 << 10

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// bytes copies src into arena-owned storage and returns the copy.
func (a *Arena) bytes(src []byte) []byte {
	if a == nil {
		out := make([]byte, len(src))
		copy(out, src)
		return out
	}
	a.allocBytes += int64(len(src))
	if len(src) > arenaChunkBytes/4 {
		// Oversized payloads get their own allocation rather than
		// hollowing out a chunk.
		out := make([]byte, len(src))
		copy(out, src)
		return out
	}
	if len(a.chunk)+len(src) > cap(a.chunk) {
		a.chunk = make([]byte, 0, arenaChunkBytes)
	}
	off := len(a.chunk)
	a.chunk = append(a.chunk, src...)
	return a.chunk[off:len(a.chunk):len(a.chunk)]
}

// scratch returns a reusable encode buffer (empty, with capacity).
func (a *Arena) scratch() []byte {
	if a == nil || a.scratchBuf == nil {
		return make([]byte, 0, BlockSize*6)
	}
	b := a.scratchBuf
	a.scratchBuf = nil
	return b[:0]
}

// putScratch returns the encode buffer for reuse.
func (a *Arena) putScratch(b []byte) {
	if a != nil {
		a.scratchBuf = b
	}
}

// newTail hands out a tail backing array with capacity BlockSize,
// recycling sealed tails when possible.
func (a *Arena) newTail() []Pair {
	if a == nil {
		return make([]Pair, 0, 8)
	}
	if n := len(a.tailFree); n > 0 {
		t := a.tailFree[n-1]
		a.tailFree = a.tailFree[:n-1]
		return t[:0]
	}
	a.tailAllocs++
	a.allocBytes += BlockSize * 16
	return make([]Pair, 0, BlockSize)
}

// freeTail recycles a sealed tail's backing array.
func (a *Arena) freeTail(t []Pair) {
	if a == nil || cap(t) < BlockSize || len(a.tailFree) >= 64 {
		return
	}
	a.tailFree = append(a.tailFree, t[:0])
}

// AllocBytes reports total bytes the arena has handed out.
func (a *Arena) AllocBytes() int64 {
	if a == nil {
		return 0
	}
	return a.allocBytes
}

// TailAllocs reports how many fresh tail arrays were created (free-list
// misses); recycling keeps this near the peak number of open tails.
func (a *Arena) TailAllocs() int64 {
	if a == nil {
		return 0
	}
	return a.tailAllocs
}
