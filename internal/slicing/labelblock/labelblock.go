// Package labelblock is the compact storage layer for dependence labels:
// append-ordered lists of (Td, Tu) timestamp pairs, optionally carrying a
// per-pair int32 auxiliary column (FP stores the producing statement there).
//
// The paper's whole argument is label-space cost effectiveness, so the
// in-memory representation matters as much as the label count. A plain Go
// `[]Pair` spends 16 bytes per pair plus slice-growth slack; this package
// stores sealed runs of pairs as delta-varint blocks of up to BlockSize
// pairs — Tu is stored as a delta from its predecessor, Td as a zig-zag
// delta from its own Tu, and the aux column as a zig-zag delta from its
// predecessor — which costs 2-4 bytes per pair on the regular dependence
// streams loops produce. Appends land in a small uncompressed tail (its
// backing array is recycled through an Arena free list), and lookups
// binary-search the per-block first/last Tu before scanning inside one
// block, so Find stays O(log blocks + BlockSize).
//
// The same codec serializes OPT's §4.2 hybrid disk epochs (see
// WriteBlocks/ReadBlocks), so flushed epoch files shrink by the same
// factor as the resident graph.
package labelblock

import (
	"bufio"
	"cmp"
	"encoding/binary"
	"errors"
	"io"
	"slices"
	"sort"
)

// Pair is one dependence label: the timestamps of the defining (or
// controlling) execution and the using execution.
type Pair struct {
	Td, Tu int64
}

// BlockSize is the number of pairs a sealed block holds (the last block of
// a run may be shorter). 128 keeps the in-block linear scan cheap while
// amortizing the per-block header.
const BlockSize = 128

// Block is an immutable run of pairs sorted by Tu, delta-varint encoded.
type Block struct {
	FirstTu int64
	LastTu  int64
	N       int32
	HasAux  bool
	Data    []byte
}

func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }
func unzig(u uint64) int64  { return int64(u>>1) ^ -int64(u&1) }

// appendUvarint appends v to dst as a uvarint.
func appendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// EncodeBlock compresses pairs (sorted by Tu, non-empty, len <= BlockSize
// callers keep that invariant but longer runs still round-trip) into a
// Block. aux may be nil; otherwise len(aux) == len(pairs). The payload is
// copied into ar (heap when ar is nil), so the input slices may be reused.
func EncodeBlock(ar *Arena, pairs []Pair, aux []int32) Block {
	b := Block{
		FirstTu: pairs[0].Tu,
		LastTu:  pairs[len(pairs)-1].Tu,
		N:       int32(len(pairs)),
		HasAux:  aux != nil,
	}
	scratch := ar.scratch()
	prevTu := b.FirstTu
	prevAux := int64(0)
	for i, p := range pairs {
		scratch = appendUvarint(scratch, uint64(p.Tu-prevTu))
		scratch = appendUvarint(scratch, zigzag(p.Tu-p.Td))
		prevTu = p.Tu
		if aux != nil {
			a := int64(aux[i])
			scratch = appendUvarint(scratch, zigzag(a-prevAux))
			prevAux = a
		}
	}
	b.Data = ar.bytes(scratch)
	ar.putScratch(scratch)
	return b
}

// Find locates the pair with the exact consumer timestamp tu by decoding
// the block until the running Tu reaches tu. probes counts decoded
// entries — the unit of search work in this layout. Note this differs
// from the flat layout, which counts binary-search comparisons, so probe
// totals are not comparable across -compact modes (documented in
// docs/PERFORMANCE.md).
func (b *Block) Find(tu int64) (td int64, aux int32, probes int64, found bool) {
	if tu < b.FirstTu || tu > b.LastTu {
		return 0, 0, 0, false
	}
	data := b.Data
	curTu := b.FirstTu
	prevAux := int64(0)
	for i := int32(0); i < b.N; i++ {
		du, n := binary.Uvarint(data)
		data = data[n:]
		curTu += int64(du)
		dd, n := binary.Uvarint(data)
		data = data[n:]
		probes++
		var a int64
		if b.HasAux {
			da, n := binary.Uvarint(data)
			data = data[n:]
			a = prevAux + unzig(da)
			prevAux = a
		}
		if curTu == tu {
			return curTu - unzig(dd), int32(a), probes, true
		}
		if curTu > tu {
			break
		}
	}
	return 0, 0, probes, false
}

// Decode appends the block's pairs (and aux values, when present) to the
// given slices; either destination may start nil.
func (b *Block) Decode(dst []Pair, auxDst []int32) ([]Pair, []int32) {
	data := b.Data
	curTu := b.FirstTu
	prevAux := int64(0)
	for i := int32(0); i < b.N; i++ {
		du, n := binary.Uvarint(data)
		data = data[n:]
		curTu += int64(du)
		dd, n := binary.Uvarint(data)
		data = data[n:]
		dst = append(dst, Pair{Tu: curTu, Td: curTu - unzig(dd)})
		if b.HasAux {
			da, n := binary.Uvarint(data)
			data = data[n:]
			prevAux += unzig(da)
			auxDst = append(auxDst, int32(prevAux))
		}
	}
	return dst, auxDst
}

// MemBytes reports the resident size of the block: payload plus the
// struct header.
func (b *Block) MemBytes() int64 { return int64(len(b.Data)) + blockHeaderBytes }

const blockHeaderBytes = 48 // two int64s, int32+bool padded, slice header

// FindBlocks searches a Tu-sorted, non-overlapping block sequence (the
// layout List maintains and epoch files store) for tu.
func FindBlocks(blocks []Block, tu int64) (td int64, aux int32, probes int64, found bool) {
	i := sort.Search(len(blocks), func(i int) bool { return blocks[i].LastTu >= tu })
	if i >= len(blocks) || blocks[i].FirstTu > tu {
		if len(blocks) > 0 {
			probes++ // the boundary comparison that rejected the range
		}
		return 0, 0, probes, false
	}
	td, aux, p, ok := blocks[i].Find(tu)
	return td, aux, probes + p, ok
}

// List is a compressed append-ordered pair list: sealed blocks followed by
// an uncompressed tail. A List value is 80 bytes regardless of length; the
// zero value is an empty compact list without aux column.
type List struct {
	blocks []Block
	tail   []Pair
	aux    []int32
	n      int32 // resident pairs (blocks + tail)
	flags  uint8
}

// List flags.
const (
	flagPlain    uint8 = 1 << iota // compaction disabled: everything stays in tail
	flagAux                        // carries the int32 aux column
	flagDirty                      // tail is unsorted (out-of-order append)
	flagStraddle                   // sorted tail begins at or before the blocks' range
	flagDedupe                     // drop exact duplicate pairs when sealing (shared lists)
)

// NewList returns a list. plain disables compaction (the -compact=false
// escape hatch: pairs stay in a flat []Pair exactly as the previous
// representation stored them); hasAux enables the int32 column.
func NewList(plain, hasAux bool) List {
	var f uint8
	if plain {
		f |= flagPlain
	}
	if hasAux {
		f |= flagAux
	}
	return List{flags: f}
}

func (l *List) plain() bool  { return l.flags&flagPlain != 0 }
func (l *List) hasAux() bool { return l.flags&flagAux != 0 }

// SetDedupe marks the list as shared: sealing drops exact duplicate pairs
// (cluster partners append the same pair when a straggler defeats the
// caller's append-time dedupe).
func (l *List) SetDedupe() { l.flags |= flagDedupe }

// Dirty reports whether the tail holds out-of-order appends.
func (l *List) Dirty() bool { return l.flags&flagDirty != 0 }

// Len returns the number of resident pairs.
func (l *List) Len() int { return int(l.n) }

// Blocks returns the sealed blocks (read-only; epoch serialization).
func (l *List) Blocks() []Block { return l.blocks }

// Append records a pair (and its aux value, ignored unless the list has an
// aux column). Appends are O(1); when the tail fills, it is sealed into a
// block unless out-of-order arrivals force it to stay resident (see Seal).
// Short lists grow their tail naturally — most lists in a compacted graph
// hold a handful of pairs, and handing each a BlockSize buffer would
// dominate resident bytes — while a list that seals a block has proven hot
// and refills from the arena's recycled fixed-capacity buffers.
func (l *List) Append(ar *Arena, p Pair, aux int32) {
	if len(l.tail) > 0 && p.Tu < l.tail[len(l.tail)-1].Tu {
		l.flags |= flagDirty
	}
	l.tail = append(l.tail, p)
	if l.hasAux() {
		l.aux = append(l.aux, aux)
	}
	l.n++
	if !l.plain() && len(l.tail) >= BlockSize {
		l.compressTail(ar, l.flags&flagDedupe != 0)
		if l.tail == nil {
			l.tail = ar.newTail()
		}
	}
}

// compressTail seals the tail into a block when it is sorted and ordered
// after every existing block. dedupe drops exact duplicate pairs first
// (shared cluster lists).
func (l *List) compressTail(ar *Arena, dedupe bool) {
	if len(l.tail) == 0 || l.plain() {
		return
	}
	l.sortTail(dedupe)
	if len(l.blocks) > 0 && l.tail[0].Tu <= l.blocks[len(l.blocks)-1].LastTu {
		// A straggler (recursive superblock suspension) reaches back into
		// the sealed range: keep the tail resident so Find can consult
		// both. Repack restores full compression.
		l.flags |= flagStraddle
		return
	}
	var aux []int32
	if l.hasAux() {
		aux = l.aux
	}
	for off := 0; off < len(l.tail); off += BlockSize {
		end := min(off+BlockSize, len(l.tail))
		var a []int32
		if aux != nil {
			a = aux[off:end]
		}
		l.blocks = append(l.blocks, EncodeBlock(ar, l.tail[off:end], a))
	}
	ar.freeTail(l.tail)
	l.tail = nil
	l.aux = l.aux[:0]
}

// sortTail sorts the tail by Tu (stable on ties so shared-list duplicates
// stay adjacent) and optionally dedupes exact duplicate pairs.
func (l *List) sortTail(dedupe bool) {
	if l.flags&flagDirty != 0 {
		order := func(a, b Pair) int {
			if c := cmp.Compare(a.Tu, b.Tu); c != 0 {
				return c
			}
			return cmp.Compare(a.Td, b.Td)
		}
		if l.hasAux() {
			// Keep the aux column aligned through the permutation.
			idx := make([]int, len(l.tail))
			for i := range idx {
				idx[i] = i
			}
			slices.SortStableFunc(idx, func(a, b int) int { return order(l.tail[a], l.tail[b]) })
			tail := make([]Pair, len(l.tail))
			aux := make([]int32, len(l.aux))
			for i, j := range idx {
				tail[i] = l.tail[j]
				aux[i] = l.aux[j]
			}
			copy(l.tail, tail)
			copy(l.aux, aux)
		} else {
			slices.SortStableFunc(l.tail, order)
		}
		l.flags &^= flagDirty
	}
	if dedupe {
		w := 0
		for i, p := range l.tail {
			if i > 0 && p == l.tail[w-1] {
				continue
			}
			l.tail[w] = p
			if l.hasAux() {
				l.aux[w] = l.aux[i]
			}
			w++
		}
		l.n -= int32(len(l.tail) - w)
		l.tail = l.tail[:w]
		if l.hasAux() {
			l.aux = l.aux[:w]
		}
	}
}

// Seal prepares the list for lookups: the tail is sorted (and, when dedupe
// is set, stripped of exact duplicate pairs). It does not force
// compression; use Repack for that.
func (l *List) Seal(dedupe bool) {
	if l.flags&flagDirty != 0 || dedupe {
		l.sortTail(dedupe)
	}
}

// Repack rewrites the list into maximally compressed, globally sorted
// form: every resident pair is decoded, merged, optionally deduped, and
// re-encoded into full blocks plus a short tail. Graph finalization calls
// this for lists that a straggler left straddling or uncompressed.
func (l *List) Repack(ar *Arena, dedupe bool) {
	if l.plain() {
		l.Seal(dedupe)
		return
	}
	if len(l.blocks) == 0 && len(l.tail) < BlockSize {
		l.Seal(dedupe)
		return
	}
	pairs := make([]Pair, 0, l.n)
	var aux []int32
	if l.hasAux() {
		aux = make([]int32, 0, l.n)
	}
	for i := range l.blocks {
		pairs, aux = l.blocks[i].Decode(pairs, aux)
	}
	pairs = append(pairs, l.tail...)
	if l.hasAux() {
		aux = append(aux, l.aux...)
	}
	ar.freeTail(l.tail)
	l.blocks, l.tail, l.aux = nil, pairs, aux
	l.n = int32(len(pairs))
	l.flags |= flagDirty // force the sort: block order vs tail is unknown
	l.flags &^= flagStraddle
	l.compressTail(ar, dedupe)
}

// minCompactTail is the smallest tail worth sealing into a short block at
// finalization: below it the block header outweighs the savings.
const minCompactTail = 8

// Compact finalizes the list for read-only querying at maximum
// compression: dirty or straddling lists are repacked into globally
// sorted blocks, and a clean tail of at least minCompactTail pairs is
// sealed. dedupe applies the shared-list duplicate drop.
func (l *List) Compact(ar *Arena, dedupe bool) {
	if l.plain() {
		l.Seal(dedupe && l.Dirty())
		return
	}
	if l.Dirty() || l.flags&flagStraddle != 0 {
		l.Repack(ar, dedupe)
	} else if len(l.tail) >= minCompactTail {
		l.compressTail(ar, dedupe)
	}
	l.shrinkTail(ar)
}

// shrinkTail rights-sizes a finalized tail: a hot list refills from
// recycled BlockSize-capacity buffers, so whatever short tail survives
// finalization would otherwise pin a mostly empty 2 KiB array.
func (l *List) shrinkTail(ar *Arena) {
	if l.tail == nil || cap(l.tail) == len(l.tail) {
		return
	}
	t := make([]Pair, len(l.tail))
	copy(t, l.tail)
	ar.freeTail(l.tail)
	l.tail = t
	if l.hasAux() && cap(l.aux) > len(l.aux) {
		a := make([]int32, len(l.aux))
		copy(a, l.aux)
		l.aux = a
	}
	if len(l.tail) == 0 {
		l.tail = nil
	}
}

// Find locates the pair with consumer timestamp tu. The tail must be
// sorted (callers Seal after out-of-order appends); blocks and tail are
// both consulted so straddling stragglers are found.
func (l *List) Find(tu int64) (td int64, aux int32, probes int64, found bool) {
	td, aux, probes, found = FindBlocks(l.blocks, tu)
	if found {
		return td, aux, probes, true
	}
	td, aux, p, found := l.findTail(tu)
	return td, aux, probes + p, found
}

// findTail binary-searches the (sorted) uncompressed tail only.
func (l *List) findTail(tu int64) (td int64, aux int32, probes int64, found bool) {
	lo, hi := 0, len(l.tail)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		probes++
		if l.tail[mid].Tu < tu {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(l.tail) && l.tail[lo].Tu == tu {
		if l.hasAux() {
			aux = l.aux[lo]
		}
		return l.tail[lo].Td, aux, probes, true
	}
	return 0, 0, probes, false
}

// Pairs appends every resident pair (blocks then tail, each run sorted) to
// dst.
func (l *List) Pairs(dst []Pair) []Pair {
	for i := range l.blocks {
		dst, _ = l.blocks[i].Decode(dst, nil)
	}
	return append(dst, l.tail...)
}

// PairsAux appends every resident pair and its aux value.
func (l *List) PairsAux(dst []Pair, auxDst []int32) ([]Pair, []int32) {
	for i := range l.blocks {
		dst, auxDst = l.blocks[i].Decode(dst, auxDst)
	}
	dst = append(dst, l.tail...)
	auxDst = append(auxDst, l.aux...)
	return dst, auxDst
}

// MemBytes reports the resident bytes of the list's label storage:
// encoded block payloads plus headers, plus the tail's backing capacity.
func (l *List) MemBytes() int64 {
	var sz int64
	for i := range l.blocks {
		sz += l.blocks[i].MemBytes()
	}
	sz += int64(cap(l.tail)) * 16
	sz += int64(cap(l.aux)) * 4
	return sz
}

// Split removes and returns every resident pair with Tu >= cut, encoded as
// blocks (OPT's hybrid epoch flush: the current epoch's labels go to disk,
// stragglers from suspended executions stay resident). The list keeps only
// pairs with Tu < cut. Returns nil when nothing is in range.
func (l *List) Split(ar *Arena, cut int64) []Block {
	dedupe := l.flags&flagDedupe != 0
	l.Seal(dedupe)
	// flagStraddle is only raised when a full tail fails to seal, so also
	// check the tail's actual overlap with the sealed range: a straggler
	// sitting in a short tail would otherwise be encoded after the moved
	// sealed blocks, leaving the returned sequence unsorted/overlapping —
	// unsearchable by FindBlocks once written to an epoch file.
	if l.flags&flagStraddle != 0 ||
		(len(l.blocks) > 0 && len(l.tail) > 0 && l.tail[0].Tu <= l.blocks[len(l.blocks)-1].LastTu) {
		l.Repack(ar, dedupe)
	}
	var out []Block
	// Whole blocks at or past the cut move out; one block may straddle.
	i := len(l.blocks)
	for i > 0 && l.blocks[i-1].FirstTu >= cut {
		i--
	}
	moved := l.blocks[i:]
	l.blocks = l.blocks[:i]
	if len(l.blocks) > 0 && l.blocks[len(l.blocks)-1].LastTu >= cut {
		// Straddling block: decode and re-split around the cut.
		b := l.blocks[len(l.blocks)-1]
		l.blocks = l.blocks[:len(l.blocks)-1]
		pairs, aux := b.Decode(nil, l.auxScratch())
		k := sort.Search(len(pairs), func(i int) bool { return pairs[i].Tu >= cut })
		if k > 0 {
			var a []int32
			if l.hasAux() {
				a = aux[:k]
			}
			l.blocks = append(l.blocks, EncodeBlock(ar, pairs[:k], a))
		}
		var a []int32
		if l.hasAux() {
			a = aux[k:]
		}
		out = append(out, EncodeBlock(ar, pairs[k:], a))
	}
	out = append(out, moved...)
	// Tail pairs at or past the cut are encoded straight to blocks.
	k := sort.Search(len(l.tail), func(i int) bool { return l.tail[i].Tu >= cut })
	if k < len(l.tail) {
		for off := k; off < len(l.tail); off += BlockSize {
			end := min(off+BlockSize, len(l.tail))
			var a []int32
			if l.hasAux() {
				a = l.aux[off:end]
			}
			out = append(out, EncodeBlock(ar, l.tail[off:end], a))
		}
		l.tail = l.tail[:k]
		if l.hasAux() {
			l.aux = l.aux[:k]
		}
	}
	var kept int32
	for i := range l.blocks {
		kept += l.blocks[i].N
	}
	l.n = kept + int32(len(l.tail))
	return out
}

func (l *List) auxScratch() []int32 {
	if l.hasAux() {
		return make([]int32, 0, BlockSize)
	}
	return nil
}

// WriteBlocks serializes blocks with the epoch-file framing: a 4-byte
// magic plus version byte, then uvarint count, then per block uvarint N,
// FirstTu, LastTu, payload length, payload. The header lets ReadBlocks
// reject stale or misaligned frames with a classified error instead of
// misparsing varints.
func WriteBlocks(bw *bufio.Writer, blocks []Block) error {
	if _, err := bw.Write(frameMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(frameVersion); err != nil {
		return err
	}
	put := func(v uint64) error {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(blocks))); err != nil {
		return err
	}
	for i := range blocks {
		b := &blocks[i]
		if err := put(uint64(b.N)); err != nil {
			return err
		}
		if err := put(uint64(b.FirstTu)); err != nil {
			return err
		}
		if err := put(uint64(b.LastTu)); err != nil {
			return err
		}
		if err := put(uint64(len(b.Data))); err != nil {
			return err
		}
		if _, err := bw.Write(b.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadBlocks reads a WriteBlocks frame, validating the magic and version
// first. hasAux must match what was encoded (the framing does not repeat
// it per block). Decode failures are classified *CorruptError values.
func ReadBlocks(br *bufio.Reader, hasAux bool) ([]Block, error) {
	var hdr [len(frameMagic) + 1]byte
	if _, err := readFull(br, hdr[:]); err != nil {
		return nil, corrupt(ClassTruncated, "frame header: %v", err)
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return nil, corrupt(ClassBadMagic, "frame starts %q, want %q", hdr[:4], frameMagic[:])
	}
	if hdr[4] != frameVersion {
		return nil, corrupt(ClassBadVersion, "frame version %d, want %d", hdr[4], frameVersion)
	}
	count, err := readUvarint(br, "block count")
	if err != nil {
		return nil, err
	}
	if count > maxFramedBlocks {
		return nil, corrupt(ClassBadBlock, "implausible block count %d", count)
	}
	blocks := make([]Block, 0, count)
	for i := uint64(0); i < count; i++ {
		var b Block
		b.HasAux = hasAux
		n, err := readUvarint(br, "block pair count")
		if err != nil {
			return nil, err
		}
		if n == 0 || n > maxBlockPairs {
			return nil, corrupt(ClassBadBlock, "implausible pair count %d", n)
		}
		b.N = int32(n)
		ft, err := readUvarint(br, "block first Tu")
		if err != nil {
			return nil, err
		}
		b.FirstTu = int64(ft)
		lt, err := readUvarint(br, "block last Tu")
		if err != nil {
			return nil, err
		}
		b.LastTu = int64(lt)
		if b.FirstTu > b.LastTu {
			return nil, corrupt(ClassBadBlock, "block range [%d, %d] inverted", b.FirstTu, b.LastTu)
		}
		sz, err := readUvarint(br, "block payload length")
		if err != nil {
			return nil, err
		}
		if sz > maxBlockPayload(n) {
			return nil, corrupt(ClassBadBlock, "payload of %d bytes for %d pairs", sz, n)
		}
		b.Data = make([]byte, sz)
		if _, err := readFull(br, b.Data); err != nil {
			return nil, corrupt(ClassTruncated, "block payload: %v", err)
		}
		blocks = append(blocks, b)
	}
	return blocks, nil
}

// readUvarint reads one uvarint off br, classifying failures.
func readUvarint(br *bufio.Reader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, corrupt(ClassTruncated, "stream ends inside %s", what)
		}
		return 0, corrupt(ClassBadBlock, "%s: %v", what, err)
	}
	return v, nil
}

func readFull(br *bufio.Reader, dst []byte) (int, error) {
	total := 0
	for total < len(dst) {
		n, err := br.Read(dst[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
