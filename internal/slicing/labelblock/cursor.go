package labelblock

import "sort"

// Cursor caches the most recently decoded block of one List so that
// clustered probes — the common shape in batched slicing, where one
// traversal resolves many timestamps against the same hot edge list —
// decode each block's varint stream once and binary-search the decoded
// pairs afterwards, instead of linearly re-decoding the block per probe.
// A Cursor is single-goroutine state (batched slicing keeps one cache per
// worker); the underlying List must be sealed (sorted) and is never
// mutated.
type Cursor struct {
	bi    int // decoded block index; -1 = none
	pairs []Pair
	aux   []int32
}

// find resolves tu against l through the cursor. Probe accounting counts
// real work: a full block decode costs N probes (same unit Block.Find
// charges per decoded entry), a search within the cached block costs its
// binary-search comparisons. hit reports whether the cached block answered
// without a decode — the block-granular merge event.
func (c *Cursor) find(l *List, tu int64) (td int64, aux int32, probes int64, found bool, hit bool) {
	blocks := l.blocks
	if c.bi >= 0 && c.bi < len(blocks) &&
		tu >= blocks[c.bi].FirstTu && tu <= blocks[c.bi].LastTu {
		td, aux, probes, found = c.search(tu)
		hit = true
	} else if i := sort.Search(len(blocks), func(i int) bool { return blocks[i].LastTu >= tu }); i < len(blocks) && blocks[i].FirstTu <= tu {
		c.pairs, c.aux = blocks[i].Decode(c.pairs[:0], c.aux[:0])
		c.bi = i
		var p int64
		td, aux, p, found = c.search(tu)
		probes = int64(blocks[i].N) + p
	} else if len(blocks) > 0 {
		probes++ // the boundary comparison that rejected the sealed range
	}
	if found {
		return td, aux, probes, true, hit
	}
	// Mirror List.Find: a miss in the sealed range still consults the
	// tail (a straddling tail can hold the pair).
	td, aux, p, ok := l.findTail(tu)
	return td, aux, probes + p, ok, hit
}

// search binary-searches the decoded block.
func (c *Cursor) search(tu int64) (td int64, aux int32, probes int64, found bool) {
	lo, hi := 0, len(c.pairs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		probes++
		if c.pairs[mid].Tu < tu {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.pairs) && c.pairs[lo].Tu == tu {
		var a int32
		if len(c.aux) == len(c.pairs) {
			a = c.aux[lo]
		}
		return c.pairs[lo].Td, a, probes, true
	}
	return 0, 0, probes, false
}

// CursorCache maps lists to their cursors for one worker, with a one-slot
// fast path for consecutive probes against the same list. Lists without
// sealed blocks bypass the cache (their tail binary search is already
// minimal).
type CursorCache struct {
	m     map[*List]*Cursor
	lastL *List
	lastC *Cursor
	// Hits counts probes answered inside an already-decoded block — the
	// block-granular merge events surfaced as slice.batch.block_merges.
	Hits int64
}

// NewCursorCache returns an empty per-worker cache.
func NewCursorCache() *CursorCache {
	return &CursorCache{m: map[*List]*Cursor{}}
}

// Find is List.Find through the worker's cursor for l.
func (cc *CursorCache) Find(l *List, tu int64) (td int64, aux int32, probes int64, found bool) {
	if cc == nil || len(l.blocks) == 0 {
		return l.Find(tu)
	}
	c := cc.lastC
	if cc.lastL != l {
		var ok bool
		c, ok = cc.m[l]
		if !ok {
			c = &Cursor{bi: -1}
			cc.m[l] = c
		}
		cc.lastL, cc.lastC = l, c
	}
	td, aux, probes, found, hit := c.find(l, tu)
	if hit {
		cc.Hits++
	}
	return td, aux, probes, found
}
