package labelblock

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"
)

func collect(l *List) []Pair { return l.Pairs(nil) }

func linearFind(pairs []Pair, tu int64) (int64, bool) {
	for _, p := range pairs {
		if p.Tu == tu {
			return p.Td, true
		}
	}
	return 0, false
}

func TestBlockRoundTrip(t *testing.T) {
	pairs := make([]Pair, 0, BlockSize)
	aux := make([]int32, 0, BlockSize)
	tu := int64(100)
	for i := 0; i < BlockSize; i++ {
		tu += int64(1 + i%7)
		pairs = append(pairs, Pair{Td: tu - int64(i*3), Tu: tu})
		aux = append(aux, int32(i*11-40))
	}
	b := EncodeBlock(nil, pairs, aux)
	if b.N != BlockSize || b.FirstTu != pairs[0].Tu || b.LastTu != pairs[len(pairs)-1].Tu {
		t.Fatalf("header mismatch: %+v", b)
	}
	got, gotAux := b.Decode(nil, nil)
	if len(got) != len(pairs) {
		t.Fatalf("decode len %d want %d", len(got), len(pairs))
	}
	for i := range pairs {
		if got[i] != pairs[i] || gotAux[i] != aux[i] {
			t.Fatalf("entry %d: got %v/%d want %v/%d", i, got[i], gotAux[i], pairs[i], aux[i])
		}
	}
	for i, p := range pairs {
		td, a, _, ok := b.Find(p.Tu)
		if !ok || td != p.Td || a != aux[i] {
			t.Fatalf("Find(%d) = %d,%d,%v want %d,%d", p.Tu, td, a, ok, p.Td, aux[i])
		}
	}
	if _, _, _, ok := b.Find(pairs[0].Tu - 1); ok {
		t.Fatal("found missing tu below range")
	}
	if _, _, _, ok := b.Find(pairs[0].Tu + 1); ok {
		t.Fatal("found missing tu inside range")
	}
}

func TestBlockNegativeTd(t *testing.T) {
	// Tombstones use Td = -1; zig-zag must round-trip them.
	pairs := []Pair{{Td: -1, Tu: 5}, {Td: 3, Tu: 9}, {Td: -1, Tu: 12}}
	b := EncodeBlock(nil, pairs, nil)
	got, _ := b.Decode(nil, nil)
	for i := range pairs {
		if got[i] != pairs[i] {
			t.Fatalf("entry %d: got %v want %v", i, got[i], pairs[i])
		}
	}
}

func TestListAppendFindAcrossBlocks(t *testing.T) {
	l := NewList(false, false)
	n := BlockSize*3 + 17
	pairs := make([]Pair, 0, n)
	for i := 0; i < n; i++ {
		p := Pair{Td: int64(i * 2), Tu: int64(i*4 + 1)}
		l.Append(nil, p, 0)
		pairs = append(pairs, p)
	}
	if len(l.Blocks()) != 3 {
		t.Fatalf("blocks = %d want 3", len(l.Blocks()))
	}
	if l.Len() != n {
		t.Fatalf("Len = %d want %d", l.Len(), n)
	}
	for _, p := range pairs {
		td, _, _, ok := l.Find(p.Tu)
		if !ok || td != p.Td {
			t.Fatalf("Find(%d) = %d,%v want %d", p.Tu, td, ok, p.Td)
		}
	}
	if _, _, _, ok := l.Find(2); ok {
		t.Fatal("found absent tu")
	}
	got := collect(&l)
	for i := range pairs {
		if got[i] != pairs[i] {
			t.Fatalf("Pairs()[%d] = %v want %v", i, got[i], pairs[i])
		}
	}
}

func TestListStraddleAndRepack(t *testing.T) {
	l := NewList(false, false)
	// Fill one block [1000, ...], then append stragglers below FirstTu.
	for i := 0; i < BlockSize; i++ {
		l.Append(nil, Pair{Td: int64(i), Tu: 1000 + int64(i)}, 0)
	}
	// Out-of-order stragglers (suspended superblock resuming).
	for i := 0; i < BlockSize; i++ {
		l.Append(nil, Pair{Td: int64(i), Tu: int64(i + 1)}, 0)
	}
	l.Seal(false)
	if td, _, _, ok := l.Find(5); !ok || td != 4 {
		t.Fatalf("straddle Find(5) = %d,%v want 4,true", td, ok)
	}
	if td, _, _, ok := l.Find(1005); !ok || td != 5 {
		t.Fatalf("straddle Find(1005) = %d,%v want 5,true", td, ok)
	}
	l.Repack(nil, false)
	if td, _, _, ok := l.Find(5); !ok || td != 4 {
		t.Fatalf("post-repack Find(5) = %d,%v", td, ok)
	}
	if td, _, _, ok := l.Find(1005); !ok || td != 5 {
		t.Fatalf("post-repack Find(1005) = %d,%v", td, ok)
	}
	got := collect(&l)
	if len(got) != 2*BlockSize {
		t.Fatalf("len %d want %d", len(got), 2*BlockSize)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Tu <= got[i-1].Tu {
			t.Fatalf("not sorted after repack at %d: %v, %v", i, got[i-1], got[i])
		}
	}
}

func TestListDedupe(t *testing.T) {
	l := NewList(false, false)
	l.Append(nil, Pair{Td: 1, Tu: 10}, 0)
	l.Append(nil, Pair{Td: 1, Tu: 10}, 0)
	l.Append(nil, Pair{Td: 2, Tu: 5}, 0) // out of order
	l.Append(nil, Pair{Td: 2, Tu: 5}, 0)
	l.Seal(true)
	if l.Len() != 2 {
		t.Fatalf("Len after dedupe = %d want 2", l.Len())
	}
	if td, _, _, ok := l.Find(5); !ok || td != 2 {
		t.Fatalf("Find(5) = %d,%v", td, ok)
	}
	if td, _, _, ok := l.Find(10); !ok || td != 1 {
		t.Fatalf("Find(10) = %d,%v", td, ok)
	}
}

func TestListPlainEscapeHatch(t *testing.T) {
	l := NewList(true, false)
	n := BlockSize * 4
	for i := 0; i < n; i++ {
		l.Append(nil, Pair{Td: int64(i), Tu: int64(i * 2)}, 0)
	}
	if len(l.Blocks()) != 0 {
		t.Fatalf("plain list compressed: %d blocks", len(l.Blocks()))
	}
	if l.Len() != n {
		t.Fatalf("Len = %d want %d", l.Len(), n)
	}
	if td, _, _, ok := l.Find(10); !ok || td != 5 {
		t.Fatalf("Find(10) = %d,%v", td, ok)
	}
}

func TestListSplit(t *testing.T) {
	l := NewList(false, false)
	n := BlockSize*2 + 40
	for i := 0; i < n; i++ {
		l.Append(nil, Pair{Td: int64(i), Tu: int64(i + 1)}, 0)
	}
	cut := int64(BlockSize + 10) // mid first... actually mid second block
	out := l.Split(nil, cut)
	// Everything with Tu >= cut moved out.
	var moved []Pair
	for i := range out {
		moved, _ = out[i].Decode(moved, nil)
	}
	kept := collect(&l)
	if len(kept)+len(moved) != n {
		t.Fatalf("split lost pairs: %d + %d != %d", len(kept), len(moved), n)
	}
	if l.Len() != len(kept) {
		t.Fatalf("Len %d != kept %d", l.Len(), len(kept))
	}
	for _, p := range kept {
		if p.Tu >= cut {
			t.Fatalf("kept pair %v past cut %d", p, cut)
		}
	}
	for _, p := range moved {
		if p.Tu < cut {
			t.Fatalf("moved pair %v before cut %d", p, cut)
		}
	}
	if td, _, _, ok := FindBlocks(out, cut); !ok || td != cut-1 {
		t.Fatalf("FindBlocks(cut) = %d,%v", td, ok)
	}
	if td, _, _, ok := l.Find(5); !ok || td != 4 {
		t.Fatalf("resident Find(5) = %d,%v", td, ok)
	}
}

func TestListSplitShortTailStraddler(t *testing.T) {
	// A straggler landing in a *short* tail after a block has sealed never
	// sets flagStraddle (that only happens when a full tail fails to
	// seal). Split must detect the overlap anyway, or the tail-derived
	// blocks are appended after the moved sealed blocks and the flushed
	// sequence is unsorted and overlapping — FindBlocks then misses the
	// straggler's pair permanently.
	l := NewList(false, false)
	for i := 0; i < BlockSize; i++ {
		l.Append(nil, Pair{Td: int64(i), Tu: 1100 + int64(i)}, 0)
	}
	// Short tail: one straggler below the sealed range, one past it.
	l.Append(nil, Pair{Td: 42, Tu: 1050}, 0)
	l.Append(nil, Pair{Td: 7, Tu: 1300}, 0)

	out := l.Split(nil, 1000) // everything is past the cut and moves out
	if l.Len() != 0 {
		t.Fatalf("resident Len = %d want 0", l.Len())
	}
	for i := 1; i < len(out); i++ {
		if out[i].FirstTu <= out[i-1].LastTu {
			t.Fatalf("blocks overlap at %d: [%d..%d] then [%d..%d]",
				i, out[i-1].FirstTu, out[i-1].LastTu, out[i].FirstTu, out[i].LastTu)
		}
	}
	for _, c := range []struct{ tu, td int64 }{{1050, 42}, {1100, 0}, {1227, 127}, {1300, 7}} {
		td, _, _, ok := FindBlocks(out, c.tu)
		if !ok || td != c.td {
			t.Fatalf("FindBlocks(%d) = %d,%v want %d,true", c.tu, td, ok, c.td)
		}
	}
}

func TestWriteReadBlocks(t *testing.T) {
	l := NewList(false, true)
	n := BlockSize + 30
	for i := 0; i < n; i++ {
		l.Append(nil, Pair{Td: int64(i * 3), Tu: int64(i*3 + 2)}, int32(i%5))
	}
	blocks := l.Split(nil, 0)
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := WriteBlocks(bw, blocks); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	got, err := ReadBlocks(bufio.NewReader(&buf), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("blocks %d want %d", len(got), len(blocks))
	}
	var wantPairs, gotPairs []Pair
	var wantAux, gotAux []int32
	for i := range blocks {
		wantPairs, wantAux = blocks[i].Decode(wantPairs, wantAux)
		gotPairs, gotAux = got[i].Decode(gotPairs, gotAux)
	}
	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("pairs %d want %d", len(gotPairs), len(wantPairs))
	}
	for i := range wantPairs {
		if gotPairs[i] != wantPairs[i] || gotAux[i] != wantAux[i] {
			t.Fatalf("entry %d: %v/%d want %v/%d", i, gotPairs[i], gotAux[i], wantPairs[i], wantAux[i])
		}
	}
}

func TestArenaRecycling(t *testing.T) {
	ar := NewArena()
	l := NewList(false, false)
	for i := 0; i < BlockSize*10; i++ {
		l.Append(ar, Pair{Td: int64(i), Tu: int64(i)}, 0)
	}
	if ar.AllocBytes() <= 0 {
		t.Fatal("arena recorded no allocations")
	}
	// Recycled tails mean far fewer than 10 tail arrays were allocated.
	if got := ar.TailAllocs(); got > 2 {
		t.Fatalf("tail allocs = %d, free list not recycling", got)
	}
	for i := 0; i < BlockSize*10; i++ {
		if td, _, _, ok := l.Find(int64(i)); !ok || td != int64(i) {
			t.Fatalf("Find(%d) = %d,%v", i, td, ok)
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	// A loop-like dependence stream (small regular deltas) must compress
	// far below 16 bytes/pair.
	l := NewList(false, false)
	n := BlockSize * 8
	for i := 0; i < n; i++ {
		tu := int64(i*7 + 3)
		l.Append(nil, Pair{Td: tu - 5, Tu: tu}, 0)
	}
	plain := int64(n * 16)
	if got := l.MemBytes(); got*2 > plain {
		t.Fatalf("MemBytes = %d, want < half of plain %d", got, plain)
	}
}

func TestListRandomizedFind(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		l := NewList(false, false)
		var ref []Pair
		tu := int64(0)
		n := rng.Intn(BlockSize * 4)
		for i := 0; i < n; i++ {
			if rng.Intn(10) == 0 {
				tu -= int64(rng.Intn(20)) // occasional out-of-order
				if tu < 0 {
					tu = 0
				}
			} else {
				tu += int64(1 + rng.Intn(5))
			}
			p := Pair{Td: tu - int64(rng.Intn(100)), Tu: tu}
			l.Append(nil, p, 0)
			ref = append(ref, p)
		}
		l.Seal(false)
		for q := int64(0); q < 40; q++ {
			probe := int64(rng.Intn(int(tu + 10)))
			wantTd, wantOk := linearFind(ref, probe)
			gotTd, _, _, gotOk := l.Find(probe)
			if gotOk != wantOk || (gotOk && !hasPair(ref, Pair{Td: gotTd, Tu: probe})) {
				t.Fatalf("trial %d Find(%d) = %d,%v want %d,%v", trial, probe, gotTd, gotOk, wantTd, wantOk)
			}
		}
	}
}

func hasPair(ref []Pair, p Pair) bool {
	for _, q := range ref {
		if q == p {
			return true
		}
	}
	return false
}
