package labelblock

import (
	"encoding/binary"
	"fmt"
)

// Classified decode errors. Every failure to parse serialized label data
// — epoch files and graph-snapshot sections alike — is reported as a
// *CorruptError whose Class is one of a small closed set, mirroring the
// trace reader's `trace.read.err.*` classification, so callers can count
// and react per failure mode instead of pattern-matching message text.

// Corruption classes.
const (
	ClassBadMagic   = "bad_magic"   // frame does not start with the expected magic
	ClassBadVersion = "bad_version" // frame magic matched but the version is unknown
	ClassTruncated  = "truncated"   // data ends mid-frame
	ClassBadBlock   = "bad_block"   // a block header or payload is implausible
)

// CorruptError reports unparseable serialized label data, classified by
// failure mode.
type CorruptError struct {
	Class  string
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("labelblock: %s: %s", e.Class, e.Detail)
}

func corrupt(class, format string, args ...any) error {
	return &CorruptError{Class: class, Detail: fmt.Sprintf(format, args...)}
}

// frameMagic and frameVersion head every WriteBlocks frame, so a stale or
// misaligned epoch file (or a snapshot section decoded at the wrong
// offset) fails with a classified error instead of misparsing varints.
var frameMagic = [4]byte{'D', 'Y', 'L', 'B'}

const frameVersion byte = 1

// Sanity bounds for decoded frames: a block never holds more pairs than a
// few sealed runs (EncodeBlock callers keep runs at BlockSize, but longer
// runs round-trip), and payloads are bounded by the worst-case varint
// width per pair.
const (
	maxBlockPairs   = 1 << 24
	maxFramedBlocks = 1 << 28
)

// maxBlockPayload bounds an encoded block's byte size: three maximal
// varints per pair (Tu delta, Td delta, aux delta).
func maxBlockPayload(n uint64) uint64 { return n * 3 * binary.MaxVarintLen64 }

// AppendBlocks appends the block-sequence framing to dst: uvarint count,
// then per block uvarint N, FirstTu, LastTu, payload length, payload.
// The enclosing container (WriteBlocks frame or snapshot section) carries
// the magic/version/checksum; this is the raw payload codec.
func AppendBlocks(dst []byte, blocks []Block) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(blocks)))
	for i := range blocks {
		b := &blocks[i]
		dst = binary.AppendUvarint(dst, uint64(b.N))
		dst = binary.AppendUvarint(dst, uint64(b.FirstTu))
		dst = binary.AppendUvarint(dst, uint64(b.LastTu))
		dst = binary.AppendUvarint(dst, uint64(len(b.Data)))
		dst = append(dst, b.Data...)
	}
	return dst
}

// DecodeBlocks parses an AppendBlocks run from data, returning the blocks
// and the unconsumed remainder. Block payloads alias data (zero-copy):
// the caller must keep data reachable for the blocks' lifetime. Errors
// are classified *CorruptError values.
func DecodeBlocks(data []byte, hasAux bool) (blocks []Block, rest []byte, err error) {
	count, data, err := decUvarint(data, "block count")
	if err != nil {
		return nil, nil, err
	}
	if count > maxFramedBlocks {
		return nil, nil, corrupt(ClassBadBlock, "implausible block count %d", count)
	}
	blocks = make([]Block, 0, count)
	for i := uint64(0); i < count; i++ {
		var b Block
		b.HasAux = hasAux
		var n, ft, lt, sz uint64
		if n, data, err = decUvarint(data, "block pair count"); err != nil {
			return nil, nil, err
		}
		if n == 0 || n > maxBlockPairs {
			return nil, nil, corrupt(ClassBadBlock, "implausible pair count %d", n)
		}
		if ft, data, err = decUvarint(data, "block first Tu"); err != nil {
			return nil, nil, err
		}
		if lt, data, err = decUvarint(data, "block last Tu"); err != nil {
			return nil, nil, err
		}
		if int64(ft) > int64(lt) {
			return nil, nil, corrupt(ClassBadBlock, "block range [%d, %d] inverted", int64(ft), int64(lt))
		}
		if sz, data, err = decUvarint(data, "block payload length"); err != nil {
			return nil, nil, err
		}
		if sz > maxBlockPayload(n) {
			return nil, nil, corrupt(ClassBadBlock, "payload of %d bytes for %d pairs", sz, n)
		}
		if uint64(len(data)) < sz {
			return nil, nil, corrupt(ClassTruncated, "block payload: want %d bytes, have %d", sz, len(data))
		}
		b.N = int32(n)
		b.FirstTu = int64(ft)
		b.LastTu = int64(lt)
		b.Data = data[:sz:sz]
		data = data[sz:]
		blocks = append(blocks, b)
	}
	return blocks, data, nil
}

// Corrupt constructs a classified corruption error. Exported for the
// graph snapshot codecs (fp, opt, snapshot), which share the class set
// so every snapshot decode failure classifies uniformly.
func Corrupt(class, format string, args ...any) error {
	return corrupt(class, format, args...)
}

// DecodeUvarint reads one uvarint off data, classifying failures
// (exported for the graph snapshot codecs).
func DecodeUvarint(data []byte, what string) (uint64, []byte, error) {
	return decUvarint(data, what)
}

// decUvarint reads one uvarint off data, classifying failures.
func decUvarint(data []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		if n == 0 {
			return 0, nil, corrupt(ClassTruncated, "data ends inside %s", what)
		}
		return 0, nil, corrupt(ClassBadBlock, "varint overflow in %s", what)
	}
	return v, data[n:], nil
}

// persistedFlags are the List flags that survive serialization; the
// remaining bits are builder-transient.
const persistedFlags = flagPlain | flagAux | flagDirty | flagStraddle | flagDedupe

// AppendList serializes a list — flags, sealed blocks, uncompressed tail
// (with its aux column, when present) — for a graph snapshot section.
// The list itself is not mutated, so frozen graphs serialize concurrently
// with queries.
func AppendList(dst []byte, l *List) []byte {
	dst = append(dst, l.flags&persistedFlags)
	dst = AppendBlocks(dst, l.blocks)
	dst = binary.AppendUvarint(dst, uint64(len(l.tail)))
	prevTu := int64(0)
	for _, p := range l.tail {
		dst = binary.AppendUvarint(dst, zigzag(p.Tu-prevTu))
		dst = binary.AppendUvarint(dst, zigzag(p.Tu-p.Td))
		prevTu = p.Tu
	}
	prevAux := int64(0)
	for _, a := range l.aux {
		dst = binary.AppendUvarint(dst, zigzag(int64(a)-prevAux))
		prevAux = int64(a)
	}
	return dst
}

// DecodeList parses an AppendList record, returning the reconstructed
// list and the unconsumed remainder. Sealed block payloads alias data
// (the single-read snapshot load: blocks land directly in queryable form,
// no per-label decode); the tail is small and copied out. Errors are
// classified *CorruptError values.
func DecodeList(data []byte) (List, []byte, error) {
	var l List
	if len(data) == 0 {
		return l, nil, corrupt(ClassTruncated, "data ends before list flags")
	}
	flags := data[0]
	if flags&^persistedFlags != 0 {
		return l, nil, corrupt(ClassBadBlock, "unknown list flags %#x", flags)
	}
	l.flags = flags
	data = data[1:]
	blocks, data, err := DecodeBlocks(data, l.hasAux())
	if err != nil {
		return l, nil, err
	}
	nTail, data, err := decUvarint(data, "tail length")
	if err != nil {
		return l, nil, err
	}
	if nTail > maxFramedBlocks {
		return l, nil, corrupt(ClassBadBlock, "implausible tail length %d", nTail)
	}
	var n int32
	for i := range blocks {
		n += blocks[i].N
	}
	if nTail > 0 {
		l.tail = make([]Pair, nTail)
		prevTu := int64(0)
		for i := range l.tail {
			var du, dd uint64
			if du, data, err = decUvarint(data, "tail Tu delta"); err != nil {
				return l, nil, err
			}
			if dd, data, err = decUvarint(data, "tail Td delta"); err != nil {
				return l, nil, err
			}
			tu := prevTu + unzig(du)
			l.tail[i] = Pair{Tu: tu, Td: tu - unzig(dd)}
			prevTu = tu
		}
		if l.hasAux() {
			l.aux = make([]int32, nTail)
			prevAux := int64(0)
			for i := range l.aux {
				var da uint64
				if da, data, err = decUvarint(data, "tail aux delta"); err != nil {
					return l, nil, err
				}
				prevAux += unzig(da)
				l.aux[i] = int32(prevAux)
			}
		}
	}
	l.blocks = blocks
	l.n = n + int32(nTail)
	return l, data, nil
}
