// Package plan is the cost-based query planner: given a query's shape
// (single, batch, or explain), the set of available backends, and the
// live workload statistics, it chooses which backend answers. The
// planner only ever changes cost, never answers — every backend
// computes the same slice (the differential matrix proves it), so the
// decision is purely a latency bet.
//
// Costs start from a static model seeded with recording features
// (trace length, segment count, IR size) and are refined online: once a
// backend has enough observed queries, its EWMA latency progressively
// replaces the static estimate. Decisions are deterministic — the same
// features, shape, availability, and statistics always produce the same
// Decision.
package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"dynslice/internal/telemetry/stats"
)

// Backend names, matching the names the façade reports to the query
// log and stats recorder.
const (
	FP      = "FP"
	OPT     = "OPT"
	LP      = "LP"
	Reexec  = "reexec"
	Forward = "forward"
)

// Query shape kinds.
const (
	KindSlice   = "slice"
	KindBatch   = "batch"
	KindExplain = "explain"
)

// Features are static facts about the recording, seeded once after the
// profile run.
type Features struct {
	TraceBlocks int64 // block executions in the recorded run
	TraceSteps  int64 // interpreter steps in the recorded run
	Segments    int   // summary segments in the index
	IRStmts     int   // statements in the lowered program
}

// Shape describes one query: its kind and, for batches, how many
// criteria arrive together.
type Shape struct {
	Kind  string
	Batch int
}

// Availability says which backends can answer right now, and whether
// the graph backends are already built ("warm") or would have to pay
// construction first.
type Availability struct {
	FP, OPT, LP, Reexec, Forward bool
	FPWarm, OPTWarm              bool
}

// Decision is the planner's answer: the backend to try first, the
// remaining candidates cheapest-first (the fallback ladder), the cost
// estimates behind the choice, and a human-readable reason.
type Decision struct {
	Backend  string
	Reason   string
	Fallback []string
	CostMs   map[string]float64
}

// Ladder returns the full attempt order — the chosen backend followed
// by the fallback candidates cheapest-first (nil when no backend can
// answer). This is exactly the sequence the engine's dispatch walks and
// a qtrace span tree renders, one attempt span per rung.
func (d Decision) Ladder() []string {
	if d.Backend == "" {
		return nil
	}
	return append([]string{d.Backend}, d.Fallback...)
}

// Planner carries the seeded features. Decisions themselves are pure
// (see Decide); the mutex only guards the seed.
type Planner struct {
	mu sync.Mutex
	f  Features
}

// New returns an unseeded planner (zero features: the static model
// degenerates to its per-query constants, still deterministic).
func New() *Planner { return &Planner{} }

// Seed installs the recording's static features.
func (p *Planner) Seed(f Features) {
	p.mu.Lock()
	p.f = f
	p.mu.Unlock()
}

// Features returns the seeded features.
func (p *Planner) Features() Features {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.f
}

// Decide plans one query with the planner's seeded features.
func (p *Planner) Decide(shape Shape, av Availability, snap *stats.Snapshot) Decision {
	return Decide(p.Features(), shape, av, snap)
}

// Static cost constants (nanoseconds per unit). These seed the model
// before any queries have been observed; they encode the backends'
// asymptotics, not absolute truth — online feedback overrides them as
// evidence accumulates.
const (
	buildNsPerBlock  = 400.0 // graph construction per trace block (decode + label + insert)
	lpScanNsPerBlock = 90.0  // LP segment decode per block scanned
	rxExecNsPerBlock = 80.0  // reexec interpreter resume per block regenerated
	lpScanFraction   = 0.50  // share of the trace a demand scan touches after skipping
	rxScanFraction   = 0.45  // reexec skips the same segments and never touches disk
	queryNsPerStmt   = 50.0  // per-criterion graph/traversal work, proportional to IR size
	optQueryFactor   = 0.80  // OPT's compacted graph answers a bit faster than FP
	optBuildFactor   = 1.10  // ...but costs a bit more to build (label inference)
	forwardLookupMs  = 0.01  // forward slicing is a precomputed set lookup
	chunkCriteria    = 64.0  // LP/reexec resolve up to 64 criteria per scan
)

// observeAfter is the evidence threshold: below this many successful
// queries a backend's statistics carry no weight.
const observeAfter = 3

// fullTrustAt is where observed EWMA fully replaces the static model.
const fullTrustAt = 20

// staticCostMs estimates one query-shape's latency on a backend from
// the recording features alone.
func staticCostMs(f Features, shape Shape, backend string, av Availability) float64 {
	n := float64(shape.Batch)
	if n < 1 {
		n = 1
	}
	queryMs := queryNsPerStmt * float64(f.IRStmts) / 1e6
	buildMs := buildNsPerBlock * float64(f.TraceBlocks) / 1e6
	chunks := float64(int((n + chunkCriteria - 1) / chunkCriteria))
	switch backend {
	case FP:
		c := n * queryMs
		if !av.FPWarm {
			c += buildMs
		}
		return c
	case OPT:
		c := n * queryMs * optQueryFactor
		if !av.OPTWarm {
			c += buildMs * optBuildFactor
		}
		return c
	case LP:
		scan := lpScanNsPerBlock * lpScanFraction * float64(f.TraceBlocks) / 1e6
		return chunks*scan + n*queryMs
	case Reexec:
		scan := rxExecNsPerBlock * rxScanFraction * float64(f.TraceBlocks) / 1e6
		return chunks*scan + n*queryMs
	case Forward:
		return n * forwardLookupMs
	}
	return 0
}

// calibration estimates how much slower reality is than the static
// model: for every backend with enough evidence, the ratio of its
// observed per-shape cost to its static estimate, combined as a
// geometric mean and clamped to >= 1. Unobserved backends' static
// estimates are scaled by it, putting them on the machine's measured
// scale. Without this, one observed backend's honest EWMA loses to
// every untried backend's optimistic seed and the planner thrashes
// through the whole ladder (the regret gate in the planner bench
// catches exactly that). The clamp keeps evidence from ever making
// untried backends look FASTER than their seeds — a fast machine is no
// reason to speculate.
func calibration(f Features, shape Shape, av Availability, snap *stats.Snapshot) float64 {
	if snap == nil {
		return 1
	}
	n := float64(shape.Batch)
	if n < 1 {
		n = 1
	}
	logSum, seen := 0.0, 0
	for _, b := range []string{FP, OPT, LP, Reexec, Forward} {
		bs, ok := snap.Backends[b]
		if !ok || bs.Queries-bs.Errors < observeAfter || bs.EWMAMs <= 0 {
			continue
		}
		static := staticCostMs(f, shape, b, av)
		if static <= 0 {
			continue
		}
		logSum += math.Log(bs.EWMAMs * n / static)
		seen++
	}
	if seen == 0 {
		return 1
	}
	c := math.Exp(logSum / float64(seen))
	if c < 1 {
		c = 1
	}
	return c
}

// costMs blends the calibrated static estimate with the backend's
// observed EWMA latency. Trust ramps linearly with query count; a
// backend that has only ever errored is effectively disqualified.
func costMs(f Features, shape Shape, backend string, av Availability, snap *stats.Snapshot, calib float64) float64 {
	static := staticCostMs(f, shape, backend, av) * calib
	if snap == nil {
		return static
	}
	bs, ok := snap.Backends[backend]
	if !ok {
		return static
	}
	if bs.Queries > 0 && bs.Errors >= bs.Queries {
		return static * 1e6 // every attempt failed: last resort only
	}
	good := bs.Queries - bs.Errors
	if good < observeAfter {
		return static
	}
	n := float64(shape.Batch)
	if n < 1 {
		n = 1
	}
	w := float64(good) / fullTrustAt
	if w > 1 {
		w = 1
	}
	return (1-w)*static + w*bs.EWMAMs*n
}

// candidates lists the backends able to answer shape, in canonical
// order (the deterministic tiebreak).
func candidates(shape Shape, av Availability) []string {
	var out []string
	add := func(name string, ok bool) {
		if ok {
			out = append(out, name)
		}
	}
	add(FP, av.FP)
	add(OPT, av.OPT)
	add(LP, av.LP)
	add(Reexec, av.Reexec)
	// Forward slicing cannot attribute edges, so explain queries never
	// plan onto it.
	add(Forward, av.Forward && shape.Kind != KindExplain)
	return out
}

// Decide is the pure planning function: deterministic in its inputs,
// no hidden state. It never errors — with nothing available it returns
// an empty Decision and the caller reports unavailability.
func Decide(f Features, shape Shape, av Availability, snap *stats.Snapshot) Decision {
	cands := candidates(shape, av)
	if len(cands) == 0 {
		return Decision{Reason: "no backend available"}
	}
	calib := calibration(f, shape, av, snap)
	costs := make(map[string]float64, len(cands))
	for _, b := range cands {
		costs[b] = costMs(f, shape, b, av, snap, calib)
	}
	order := append([]string(nil), cands...)
	sort.SliceStable(order, func(i, j int) bool {
		if costs[order[i]] != costs[order[j]] {
			return costs[order[i]] < costs[order[j]]
		}
		return false // stable: canonical order breaks ties
	})
	best := order[0]
	reason := fmt.Sprintf("%s est %.3fms", best, costs[best])
	if len(order) > 1 {
		reason += fmt.Sprintf(" (next %s %.3fms)", order[1], costs[order[1]])
	}
	if snap != nil {
		if bs, ok := snap.Backends[best]; ok && bs.Queries-bs.Errors >= observeAfter {
			reason += fmt.Sprintf(", ewma %.3fms over %d queries", bs.EWMAMs, bs.Queries)
		} else {
			reason += ", static seed"
		}
	} else {
		reason += ", static seed"
	}
	return Decision{
		Backend:  best,
		Reason:   reason,
		Fallback: order[1:],
		CostMs:   costs,
	}
}

// dumpShapes are the canonical shapes Dump tabulates.
var dumpShapes = []Shape{
	{Kind: KindSlice, Batch: 1},
	{Kind: KindBatch, Batch: 16},
	{Kind: KindBatch, Batch: 256},
	{Kind: KindExplain, Batch: 1},
}

// Dump renders the full plan table for the given state — every
// canonical shape's costs and choice — for inspection and golden tests.
func Dump(f Features, av Availability, snap *stats.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "features: blocks=%d steps=%d segments=%d stmts=%d\n",
		f.TraceBlocks, f.TraceSteps, f.Segments, f.IRStmts)
	fmt.Fprintf(&b, "%-12s %-10s %12s %12s %12s %12s %12s\n",
		"shape", "choice", FP, OPT, LP, Reexec, Forward)
	for _, sh := range dumpShapes {
		d := Decide(f, sh, av, snap)
		cell := func(name string) string {
			c, ok := d.CostMs[name]
			if !ok {
				return "-"
			}
			return fmt.Sprintf("%.3f", c)
		}
		fmt.Fprintf(&b, "%-12s %-10s %12s %12s %12s %12s %12s\n",
			fmt.Sprintf("%s/%d", sh.Kind, sh.Batch), d.Backend,
			cell(FP), cell(OPT), cell(LP), cell(Reexec), cell(Forward))
	}
	return b.String()
}
