package plan

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dynslice/internal/telemetry/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// bigTrace is a recording whose graph construction is expensive enough
// that demand-driven backends matter.
var bigTrace = Features{TraceBlocks: 2_000_000, TraceSteps: 9_000_000, Segments: 500, IRStmts: 400}

func snap(backends map[string]stats.BackendStats) *stats.Snapshot {
	return &stats.Snapshot{Backends: backends}
}

// TestDecideFixtures pins the planner's behavior on the workload
// archetypes the cost model is built around.
func TestDecideFixtures(t *testing.T) {
	coldAv := Availability{FP: true, OPT: true, LP: true, Reexec: true}
	warmAv := Availability{FP: true, OPT: true, LP: true, Reexec: true, FPWarm: true, OPTWarm: true}
	cases := []struct {
		name  string
		f     Features
		shape Shape
		av    Availability
		snap  *stats.Snapshot
		want  string
	}{
		// Cold start, one rare query: building any graph costs ~800ms of
		// decode; re-execution answers from checkpoints without touching
		// disk and undercuts LP's decode loop.
		{"cold-single", bigTrace, Shape{KindSlice, 1}, coldAv, nil, Reexec},
		// Same query once the graphs exist: the compacted graph answers
		// fastest and construction is sunk cost.
		{"warm-single", bigTrace, Shape{KindSlice, 1}, warmAv, nil, OPT},
		// Statistics dominate the static seed: LP has proven itself fast
		// over many queries, reexec hasn't been tried.
		{"lp-dominant", bigTrace, Shape{KindSlice, 1}, coldAv,
			snap(map[string]stats.BackendStats{
				LP: {Queries: 40, EWMAMs: 0.2},
			}), LP},
		// Rare-query archetype with a little history: reexec observed
		// cheap, graphs still cold — keep re-executing.
		{"reexec-rare", bigTrace, Shape{KindSlice, 1}, coldAv,
			snap(map[string]stats.BackendStats{
				Reexec: {Queries: 5, EWMAMs: 8},
				LP:     {Queries: 5, EWMAMs: 60},
			}), Reexec},
		// A huge cold batch amortizes graph construction across thousands
		// of criteria, while scan backends pay per 64-criterion chunk.
		{"cold-huge-batch", bigTrace, Shape{KindBatch, 2000}, coldAv, nil, FP},
		// Forward slicing, when precomputed, wins plain slices outright...
		{"forward-single", bigTrace, Shape{KindSlice, 1},
			Availability{LP: true, Reexec: true, Forward: true}, nil, Forward},
		// ...but can never answer an explain query.
		{"forward-no-explain", bigTrace, Shape{KindExplain, 1},
			Availability{LP: true, Reexec: true, Forward: true}, nil, Reexec},
		// A backend that only ever errors is disqualified until last.
		{"all-errors-disqualify", bigTrace, Shape{KindSlice, 1}, coldAv,
			snap(map[string]stats.BackendStats{
				Reexec: {Queries: 4, Errors: 4},
			}), LP},
		// Nothing available: empty decision, caller reports it.
		{"nothing", bigTrace, Shape{KindSlice, 1}, Availability{}, nil, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := Decide(c.f, c.shape, c.av, c.snap)
			if d.Backend != c.want {
				t.Fatalf("chose %q (%s), want %q\ncosts: %v", d.Backend, d.Reason, c.want, d.CostMs)
			}
			if c.want != "" && len(d.Fallback)+1 != len(d.CostMs) {
				t.Fatalf("fallback ladder has %d rungs for %d candidates", len(d.Fallback), len(d.CostMs))
			}
			for _, fb := range d.Fallback {
				if fb == d.Backend {
					t.Fatalf("chosen backend %q repeated in fallback %v", d.Backend, d.Fallback)
				}
			}
		})
	}
}

// TestDecideNeverPicksUnavailable sweeps random availability masks and
// checks the choice and every fallback rung are available backends.
func TestDecideNeverPicksUnavailable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kinds := []string{KindSlice, KindBatch, KindExplain}
	for i := 0; i < 500; i++ {
		av := Availability{
			FP: rng.Intn(2) == 0, OPT: rng.Intn(2) == 0, LP: rng.Intn(2) == 0,
			Reexec: rng.Intn(2) == 0, Forward: rng.Intn(2) == 0,
			FPWarm: rng.Intn(2) == 0, OPTWarm: rng.Intn(2) == 0,
		}
		shape := Shape{Kind: kinds[rng.Intn(3)], Batch: 1 + rng.Intn(300)}
		d := Decide(bigTrace, shape, av, nil)
		ok := map[string]bool{FP: av.FP, OPT: av.OPT, LP: av.LP, Reexec: av.Reexec,
			Forward: av.Forward && shape.Kind != KindExplain}
		for _, b := range append([]string{d.Backend}, d.Fallback...) {
			if b == "" {
				continue
			}
			if !ok[b] {
				t.Fatalf("iteration %d: planned unavailable backend %q (av %+v shape %+v)", i, b, av, shape)
			}
		}
	}
}

// TestDecideDeterministic: identical inputs must yield identical
// decisions, bit for bit, across many trials (map iteration order must
// not leak into the result).
func TestDecideDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	kinds := []string{KindSlice, KindBatch, KindExplain}
	backends := []string{FP, OPT, LP, Reexec, Forward}
	for i := 0; i < 200; i++ {
		f := Features{
			TraceBlocks: rng.Int63n(1 << 24), TraceSteps: rng.Int63n(1 << 26),
			Segments: rng.Intn(1000), IRStmts: rng.Intn(5000),
		}
		shape := Shape{Kind: kinds[rng.Intn(3)], Batch: 1 + rng.Intn(500)}
		av := Availability{FP: true, OPT: true, LP: rng.Intn(2) == 0,
			Reexec: rng.Intn(2) == 0, Forward: rng.Intn(2) == 0,
			FPWarm: rng.Intn(2) == 0, OPTWarm: rng.Intn(2) == 0}
		bs := map[string]stats.BackendStats{}
		for _, b := range backends {
			if rng.Intn(2) == 0 {
				q := rng.Int63n(50)
				bs[b] = stats.BackendStats{Queries: q, Errors: rng.Int63n(q + 1),
					EWMAMs: rng.Float64() * 100}
			}
		}
		first := Decide(f, shape, av, snap(bs))
		for trial := 0; trial < 5; trial++ {
			// Rebuild the map each trial so iteration order varies.
			bs2 := map[string]stats.BackendStats{}
			for k, v := range bs {
				bs2[k] = v
			}
			again := Decide(f, shape, av, snap(bs2))
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("iteration %d trial %d: decisions diverge\n%+v\n%+v", i, trial, first, again)
			}
		}
	}
}

// TestPlannerSeed: Decide through a Planner uses the seeded features.
func TestPlannerSeed(t *testing.T) {
	p := New()
	p.Seed(bigTrace)
	if p.Features() != bigTrace {
		t.Fatalf("features = %+v", p.Features())
	}
	d := p.Decide(Shape{KindSlice, 1}, Availability{FP: true, Reexec: true}, nil)
	if d.Backend != Reexec {
		t.Fatalf("seeded planner chose %q: %s", d.Backend, d.Reason)
	}
}

// TestDumpGolden pins the full plan table; regenerate with -update.
func TestDumpGolden(t *testing.T) {
	got := Dump(bigTrace,
		Availability{FP: true, OPT: true, LP: true, Reexec: true, Forward: true},
		snap(map[string]stats.BackendStats{
			LP:     {Queries: 25, Errors: 1, EWMAMs: 4.25},
			Reexec: {Queries: 10, EWMAMs: 12.5},
		}))
	golden := filepath.Join("testdata", "dump.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("plan dump drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
