package lp_test

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/lp"
	"dynslice/internal/trace"
)

const batchSrc = `
var total = 0;
var arr[80];

func addup(k) {
	var j = 0;
	var acc = 0;
	while (j < k) {
		acc = acc + arr[j];
		j = j + 1;
	}
	return acc;
}

func main() {
	var i = 0;
	while (i < 80) {
		arr[i] = i * 3;
		if (i % 4 == 0) {
			total = total + addup(i);
		}
		i = i + 1;
	}
	print(total);
}
`

// defCollector records every defined address during the trace run.
type defCollector struct{ addrs map[int64]bool }

func (c *defCollector) Block(*ir.Block) {}
func (c *defCollector) Stmt(s *ir.Stmt, _, defs []int64) {
	for _, a := range defs {
		c.addrs[a] = true
	}
}
func (c *defCollector) RegionDef(s *ir.Stmt, start, length int64) {
	for a := start; a < start+length; a++ {
		c.addrs[a] = true
	}
}
func (c *defCollector) End() {}

// buildBatchLP writes the trace for batchSrc and returns the LP slicer
// plus every defined address, sorted.
func buildBatchLP(t *testing.T, segBlocks int) (*lp.Slicer, []int64) {
	t.Helper()
	p, err := compile.Source(batchSrc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(p, f, segBlocks)
	defs := &defCollector{addrs: map[int64]bool{}}
	if _, err := interp.Run(p, interp.Options{Sink: trace.Multi{w, defs}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	addrs := make([]int64, 0, len(defs.addrs))
	for a := range defs.addrs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return lp.New(p, path, w.Segments()), addrs
}

// TestSliceAllMatchesSequential: one batched backward scan must reproduce
// the sequential slice for every defined address (crossing the
// 64-criterion chunk boundary), at several segment granularities so both
// the skip and scan paths are exercised.
func TestSliceAllMatchesSequential(t *testing.T) {
	for _, segBlocks := range []int{3, 64, 4096} {
		s, addrs := buildBatchLP(t, segBlocks)
		if len(addrs) <= 64 {
			t.Fatalf("want >64 criteria, have %d", len(addrs))
		}
		cs := make([]slicing.Criterion, len(addrs))
		for i, a := range addrs {
			cs[i] = slicing.AddrCriterion(a)
		}
		batched, _, err := s.SliceAll(cs)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range addrs {
			seq, _, err := s.Slice(slicing.AddrCriterion(a))
			if err != nil {
				t.Fatal(err)
			}
			if !seq.Equal(batched[i]) {
				t.Fatalf("segBlocks=%d addr %d: batched (%d stmts) != sequential (%d stmts)",
					segBlocks, a, batched[i].Len(), seq.Len())
			}
		}
	}
}

// TestSliceAllCriteriaCounts sweeps batch sizes straddling the 64-bit
// chunk boundaries (1, 63, 64, 65, and 200 with duplicated addresses);
// every chunked scan must reproduce the sequential answer.
func TestSliceAllCriteriaCounts(t *testing.T) {
	s, addrs := buildBatchLP(t, 16)
	seq := map[int64]*slicing.Slice{}
	for _, a := range addrs {
		sl, _, err := s.Slice(slicing.AddrCriterion(a))
		if err != nil {
			t.Fatal(err)
		}
		seq[a] = sl
	}
	for _, n := range []int{1, 63, 64, 65, 200} {
		picked := make([]int64, n)
		cs := make([]slicing.Criterion, n)
		for i := 0; i < n; i++ {
			picked[i] = addrs[i%len(addrs)] // >len(addrs) duplicates criteria
			cs[i] = slicing.AddrCriterion(picked[i])
		}
		outs, _, err := s.SliceAll(cs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, a := range picked {
			if !outs[i].Equal(seq[a]) {
				t.Fatalf("n=%d: addr %d diverged from sequential", n, a)
			}
		}
	}
}

// TestSliceAllBatchedScanSharing: the whole point of batching LP queries
// is amortizing trace scans; N criteria in one batch must decode far
// fewer segments than N sequential queries.
func TestSliceAllBatchedScanSharing(t *testing.T) {
	s, addrs := buildBatchLP(t, 8)
	cs := make([]slicing.Criterion, len(addrs))
	for i, a := range addrs {
		cs[i] = slicing.AddrCriterion(a)
	}
	_, batchStats, err := s.SliceAll(cs)
	if err != nil {
		t.Fatal(err)
	}
	var seqScans int64
	for _, c := range cs {
		_, st, err := s.Slice(c)
		if err != nil {
			t.Fatal(err)
		}
		seqScans += st.SegScans
	}
	if batchStats.SegScans*2 >= seqScans {
		t.Errorf("batched scan shares nothing: batch=%d segments vs sequential total=%d",
			batchStats.SegScans, seqScans)
	}
}

// TestSliceAllErrors: error cases must match the sequential API.
func TestSliceAllErrors(t *testing.T) {
	s, addrs := buildBatchLP(t, 64)
	if _, _, err := s.SliceAll([]slicing.Criterion{slicing.AddrCriterion(1 << 40)}); err == nil {
		t.Error("undefined address: want error")
	}
	// A batch mixing valid and invalid criteria fails as a whole.
	if _, _, err := s.SliceAll([]slicing.Criterion{
		slicing.AddrCriterion(addrs[0]), slicing.AddrCriterion(1 << 40),
	}); err == nil {
		t.Error("mixed batch with undefined address: want error")
	}
	outs, _, err := s.SliceAll(nil)
	if err != nil || len(outs) != 0 {
		t.Errorf("empty batch: outs=%d err=%v", len(outs), err)
	}
}

// TestConcurrentSlice runs sequential and batched LP queries from many
// goroutines over one slicer; under -race this validates the layout-cache
// and MaxSubgraphEdges guards.
func TestConcurrentSlice(t *testing.T) {
	s, addrs := buildBatchLP(t, 16)
	cs := make([]slicing.Criterion, len(addrs))
	want := make([]*slicing.Slice, len(addrs))
	for i, a := range addrs {
		cs[i] = slicing.AddrCriterion(a)
		sl, _, err := s.Slice(cs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sl
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				for i := range cs {
					sl, _, err := s.Slice(cs[i])
					if err != nil || !sl.Equal(want[i]) {
						t.Errorf("worker %d: addr %d diverged (err=%v)", w, cs[i].Addr, err)
						return
					}
				}
			} else {
				outs, _, err := s.SliceAll(cs)
				if err != nil {
					t.Error(err)
					return
				}
				for i := range outs {
					if !outs[i].Equal(want[i]) {
						t.Errorf("worker %d: batched addr %d diverged", w, cs[i].Addr)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
