package lp_test

import (
	"os"
	"path/filepath"
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/lp"
	"dynslice/internal/trace"
)

// buildLP runs src and returns an LP slicer plus the address of a global.
func buildLP(t *testing.T, src string, segBlocks int, input ...int64) (*lp.Slicer, *ir.Program) {
	t.Helper()
	p, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(p, f, segBlocks)
	if _, err := interp.Run(p, interp.Options{Input: input, Sink: w}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	return lp.New(p, path, w.Segments()), p
}

func globalAddr(p *ir.Program, name string) int64 {
	for _, o := range p.Globals {
		if o.Name == name {
			return interp.GlobalBase + o.Off
		}
	}
	return -1
}

// TestSegmentSkipping checks that the segment summaries actually prune
// work: slicing on a value finalized early in the run must skip the long
// unrelated tail.
func TestSegmentSkipping(t *testing.T) {
	src := `
	var early = 0;
	var late = 0;
	func main() {
		early = input() + 1;          // defined once, at the very start
		var i = 0;
		while (i < 5000) {            // long unrelated tail
			late = late + i;
			i = i + 1;
		}
		print(early);
		print(late);
	}`
	s, p := buildLP(t, src, 64, 41)
	sl, stats, err := s.Slice(slicing.AddrCriterion(globalAddr(p, "early")))
	if err != nil {
		t.Fatal(err)
	}
	if sl.Len() == 0 {
		t.Fatal("empty slice")
	}
	if stats.SegSkips == 0 {
		t.Error("expected segment skipping on an early-defined criterion")
	}
	if stats.SegScans > stats.SegSkips {
		t.Errorf("scanned %d segments but skipped only %d; summaries ineffective",
			stats.SegScans, stats.SegSkips)
	}
	// The loop must not be in the slice of early.
	for _, id := range sl.Stmts() {
		if p.Stmt(id).Pos.Line >= 7 && p.Stmt(id).Pos.Line <= 10 {
			t.Errorf("unrelated loop line %d in slice of early", p.Stmt(id).Pos.Line)
		}
	}
}

// TestNeverDefinedAddress checks error reporting.
func TestNeverDefinedAddress(t *testing.T) {
	s, _ := buildLP(t, `func main() { print(1); }`, 16)
	if _, _, err := s.Slice(slicing.AddrCriterion(1 << 40)); err == nil {
		t.Fatal("expected an error for a never-defined address")
	}
}

// TestRecursionControlDepth checks the frame-aware control matching: under
// recursion, the controlling branch of a statement must come from the
// correct frame, which exercises the backward depth counters.
func TestRecursionControlDepth(t *testing.T) {
	src := `
	var g = 0;
	func rec(n) {
		if (n > 0) {
			rec(n - 1);
			g = g + n;     // control dependent on THIS frame's n > 0
		}
		return 0;
	}
	func main() {
		rec(6);
		print(g);
	}`
	s, p := buildLP(t, src, 8)
	sl, _, err := s.Slice(slicing.AddrCriterion(globalAddr(p, "g")))
	if err != nil {
		t.Fatal(err)
	}
	// The slice must include the recursive condition and call.
	lines := map[int]bool{}
	for _, id := range sl.Stmts() {
		lines[p.Stmt(id).Pos.Line] = true
	}
	for _, want := range []int{4, 5, 6, 11} {
		if !lines[want] {
			t.Errorf("line %d missing from slice; got %v", want, lines)
		}
	}
}

// TestMaxSubgraphTracking checks the Table 6 accounting.
func TestMaxSubgraphTracking(t *testing.T) {
	s, p := buildLP(t, `
	var total = 0;
	func main() {
		var i = 0;
		while (i < 200) {
			total = total + i;
			i = i + 1;
		}
		print(total);
	}`, 32)
	if s.MaxSubgraphEdges != 0 {
		t.Fatal("subgraph accounting must start at zero")
	}
	if _, _, err := s.Slice(slicing.AddrCriterion(globalAddr(p, "total"))); err != nil {
		t.Fatal(err)
	}
	if s.MaxSubgraphEdges == 0 {
		t.Fatal("subgraph accounting did not record any resolved edges")
	}
}
