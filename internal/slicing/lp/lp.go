// Package lp implements the demand-driven "limited preprocessing" slicing
// algorithm the paper compares against (their ICSE'03 LP algorithm): the
// execution trace lives on disk, augmented with per-segment summaries
// (blocks executed, addresses defined); each slicing query performs one
// backward traversal of the trace, skipping segments the summaries prove
// irrelevant, and materializes only the dependence subgraph the query
// needs.
//
// The backward scan services all outstanding needs in a single pass:
// resolving an instance's dependences only ever creates needs at earlier
// trace positions, so needs are monotone with respect to the scan
// direction. Control-dependence needs carry a call-depth counter so that
// ancestors are matched in the correct frame even under recursion; a
// pending control need disables segment skipping (its counter must observe
// every call and return).
package lp

import (
	"fmt"
	"os"

	"dynslice/internal/ir"
	"dynslice/internal/slicing"
	"dynslice/internal/telemetry"
	"dynslice/internal/trace"
)

// Slicer answers slicing queries from an on-disk trace.
type Slicer struct {
	p    *ir.Program
	path string
	segs []*trace.Segment

	// offsets caches, per block, the cumulative record layout used to
	// iterate a block execution's flat address array.
	offsets map[*ir.Block]blockLayout

	// MaxSubgraphEdges tracks the largest demand-built subgraph (in
	// resolved dependence edges) over all queries, for the paper's Table 6.
	MaxSubgraphEdges int64

	// Telemetry (nil counters are inert); see SetTelemetry.
	met       *trace.Metrics
	cQueries  *telemetry.Counter
	cSegScans *telemetry.Counter
	cSegSkips *telemetry.Counter
	cEdges    *telemetry.Counter
}

type blockLayout struct {
	useOff []int // per stmt: offset of its use addrs in the flat array
	defOff []int // per stmt: offset of its def addrs
	total  int
}

// New returns an LP slicer over a trace file written by trace.Writer.
func New(p *ir.Program, tracePath string, segs []*trace.Segment) *Slicer {
	return &Slicer{p: p, path: tracePath, segs: segs, offsets: map[*ir.Block]blockLayout{}}
}

// SetTelemetry mints the LP counters on reg and attaches trace-read
// metrics to segment decoders. Query counters are folded in once per
// query from the per-query stats, so the scan itself carries no
// instrumentation.
func (s *Slicer) SetTelemetry(reg *telemetry.Registry) {
	s.met = trace.NewMetrics(reg)
	s.cQueries = reg.Counter("lp.queries")
	s.cSegScans = reg.Counter("lp.seg_scans")
	s.cSegSkips = reg.Counter("lp.seg_skips")
	s.cEdges = reg.Counter("lp.subgraph_edges")
}

func (s *Slicer) layout(b *ir.Block) blockLayout {
	if l, ok := s.offsets[b]; ok {
		return l
	}
	l := blockLayout{useOff: make([]int, len(b.Stmts)), defOff: make([]int, len(b.Stmts))}
	off := 0
	for i, st := range b.Stmts {
		l.useOff[i] = off
		if st.Op == ir.OpDeclArr {
			off += 2 // start, length
			l.defOff[i] = l.useOff[i]
			continue
		}
		off += len(st.Uses)
		l.defOff[i] = off
		off += st.NumDefs
	}
	l.total = off
	s.offsets[b] = l
	return l
}

// pos is a trace position: block ordinal plus statement index.
type pos struct {
	ord int64
	idx int
}

func (a pos) before(b pos) bool {
	if a.ord != b.ord {
		return a.ord < b.ord
	}
	return a.idx < b.idx
}

type defNeed struct {
	use pos // the definition must precede this position
}

type cdNeed struct {
	fn        *ir.Func
	ancestors map[ir.BlockID]bool
	entryLike bool  // no intraprocedural ancestors: resolve at the frame-creating call
	startOrd  int64 // only consider block executions strictly before this
	depth     int
	done      bool
}

type instKey struct {
	stmt ir.StmtID
	ord  int64
}

type query struct {
	s        *Slicer
	slice    *slicing.Slice
	stats    *slicing.Stats
	needDefs map[int64][]defNeed
	needCDs  []*cdNeed
	cdSeen   map[instKey]bool // block-instance keys with a cd need already created
	visited  map[instKey]bool
	edges    int64

	// Criterion plumbing.
	wantAddr    int64 // address whose last definition starts the slice (mode A)
	wantAddrHit bool
	locStmt     ir.StmtID // instance to locate (mode B)
	locOrd      int64
	locPending  bool
}

// Slice implements slicing.Slicer.
func (s *Slicer) Slice(c slicing.Criterion) (*slicing.Slice, *slicing.Stats, error) {
	q := &query{
		s:        s,
		slice:    slicing.NewSlice(),
		stats:    &slicing.Stats{},
		needDefs: map[int64][]defNeed{},
		cdSeen:   map[instKey]bool{},
		visited:  map[instKey]bool{},
	}
	if c.Stmt >= 0 {
		q.locStmt, q.locOrd, q.locPending = c.Stmt, c.TS, true
	} else {
		q.wantAddr = c.Addr
		q.needDefs[c.Addr] = append(q.needDefs[c.Addr], defNeed{use: pos{ord: 1 << 62, idx: 0}})
	}
	if err := q.scan(); err != nil {
		return nil, nil, err
	}
	if c.Stmt < 0 && !q.wantAddrHit {
		return nil, nil, fmt.Errorf("lp: address %d was never defined", c.Addr)
	}
	if q.edges > s.MaxSubgraphEdges {
		s.MaxSubgraphEdges = q.edges
	}
	s.cQueries.Inc()
	s.cSegScans.Add(q.stats.SegScans)
	s.cSegSkips.Add(q.stats.SegSkips)
	s.cEdges.Add(q.edges)
	return q.slice, q.stats, nil
}

// blockExec is one buffered block execution.
type blockExec struct {
	b     *ir.Block
	ord   int64
	addrs []int64 // flat per-stmt use+def addresses (layout per blockLayout)
}

func (q *query) scan() error {
	f, err := os.Open(q.s.path)
	if err != nil {
		return fmt.Errorf("lp: %w", err)
	}
	defer f.Close()

	for si := len(q.s.segs) - 1; si >= 0; si-- {
		seg := q.s.segs[si]
		if q.idle() {
			return nil
		}
		if q.canSkip(seg) {
			q.stats.SegSkips++
			continue
		}
		q.stats.SegScans++
		execs, err := q.decodeSegment(f, seg)
		if err != nil {
			return err
		}
		for i := len(execs) - 1; i >= 0; i-- {
			q.processBlockExec(&execs[i])
		}
		q.compactCDs()
	}
	return nil
}

// idle reports whether no needs remain.
func (q *query) idle() bool {
	return len(q.needDefs) == 0 && len(q.needCDs) == 0 && !q.locPending
}

// canSkip decides from the segment summary whether scanning it can be
// avoided. Pending control needs always force a scan (their depth counters
// must see every call and return in order).
func (q *query) canSkip(seg *trace.Segment) bool {
	if len(q.needCDs) > 0 {
		return false
	}
	if q.locPending && q.locOrd >= seg.StartOrd && q.locOrd < seg.EndOrd {
		return false
	}
	for a := range q.needDefs {
		if seg.MayDefine(a) {
			return false
		}
	}
	return true
}

func (q *query) decodeSegment(f *os.File, seg *trace.Segment) ([]blockExec, error) {
	if _, err := f.Seek(seg.Off, 0); err != nil {
		return nil, fmt.Errorf("lp: seek: %w", err)
	}
	d := trace.NewDecoder(q.s.p, f, seg.StartOrd)
	d.SetMetrics(q.s.met)
	n := seg.EndOrd - seg.StartOrd
	execs := make([]blockExec, 0, n)
	var cur *blockExec
	for int64(len(execs)) < n {
		ev, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case trace.EvBlock:
			execs = append(execs, blockExec{b: ev.Block, ord: ev.Ord})
			cur = &execs[len(execs)-1]
			cur.addrs = make([]int64, 0, q.s.layout(ev.Block).total)
		case trace.EvStmt:
			cur.addrs = append(cur.addrs, ev.Uses...)
			cur.addrs = append(cur.addrs, ev.Defs...)
		case trace.EvRegion:
			cur.addrs = append(cur.addrs, ev.RegStart, ev.RegLen)
		case trace.EvEnd:
			return execs, nil
		}
		// Stop once the final block of the segment is fully decoded: the
		// decoder would otherwise run into the next segment. We detect
		// completion by count of block records; trailing statement records
		// of the last block still need decoding, so only break on the next
		// block boundary — handled by the loop condition plus one extra
		// round below.
	}
	// The loop exits after appending the segment's last block record; its
	// statement records still follow. Decode until the next block record
	// or end.
	lay := q.s.layout(cur.b)
	for len(cur.addrs) < lay.total {
		ev, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case trace.EvStmt:
			cur.addrs = append(cur.addrs, ev.Uses...)
			cur.addrs = append(cur.addrs, ev.Defs...)
		case trace.EvRegion:
			cur.addrs = append(cur.addrs, ev.RegStart, ev.RegLen)
		case trace.EvEnd:
			return execs, nil
		case trace.EvBlock:
			if m := q.s.met; m != nil {
				m.ErrDesync.Inc()
			}
			return nil, fmt.Errorf("lp: segment decoding desynchronized")
		}
	}
	return execs, nil
}

func (q *query) processBlockExec(be *blockExec) {
	lay := q.s.layout(be.b)

	// Locate a criterion instance.
	if q.locPending && be.ord == q.locOrd {
		st := q.s.p.Stmt(q.locStmt)
		if st.Block == be.b {
			q.locPending = false
			q.admit(st, be, lay)
		}
	}

	// Control-dependence needs from later instances observe this block
	// execution first: a matched ancestor's terminator may itself use
	// values defined earlier in this very block execution, so its data
	// needs must exist before the statement scan below.
	q.updateCDs(be, lay)

	// Statements in reverse order: defs may satisfy pending needs.
	for idx := len(be.b.Stmts) - 1; idx >= 0; idx-- {
		st := be.b.Stmts[idx]
		here := pos{ord: be.ord, idx: idx}
		if st.Op == ir.OpDeclArr {
			start, length := be.addrs[lay.useOff[idx]], be.addrs[lay.useOff[idx]+1]
			q.resolveRegion(st, be, lay, here, start, length)
			continue
		}
		for di := 0; di < st.NumDefs; di++ {
			a := be.addrs[lay.defOff[idx]+di]
			q.resolveDefs(st, be, lay, here, a)
		}
	}
}

// resolveDefs satisfies pending needs on address a with the definition at
// position here.
func (q *query) resolveDefs(st *ir.Stmt, be *blockExec, lay blockLayout, here pos, a int64) {
	needs := q.needDefs[a]
	if len(needs) == 0 {
		return
	}
	kept := needs[:0]
	hit := false
	for _, n := range needs {
		if here.before(n.use) {
			hit = true
			q.edges++
		} else {
			kept = append(kept, n)
		}
	}
	if len(kept) == 0 {
		delete(q.needDefs, a)
	} else {
		q.needDefs[a] = kept
	}
	if hit {
		if a == q.wantAddr {
			q.wantAddrHit = true
		}
		q.admit(st, be, lay)
	}
}

func (q *query) resolveRegion(st *ir.Stmt, be *blockExec, lay blockLayout, here pos, start, length int64) {
	hit := false
	for a := range q.needDefs {
		if a < start || a >= start+length {
			continue
		}
		needs := q.needDefs[a]
		kept := needs[:0]
		for _, n := range needs {
			if here.before(n.use) {
				hit = true
				q.edges++
			} else {
				kept = append(kept, n)
			}
		}
		if len(kept) == 0 {
			delete(q.needDefs, a)
		} else {
			q.needDefs[a] = kept
		}
		if a == q.wantAddr && hit {
			q.wantAddrHit = true
		}
	}
	if hit {
		q.admit(st, be, lay)
	}
}

// admit adds a statement instance to the slice and queues its needs.
func (q *query) admit(st *ir.Stmt, be *blockExec, lay blockLayout) {
	k := instKey{stmt: st.ID, ord: be.ord}
	if q.visited[k] {
		return
	}
	q.visited[k] = true
	q.stats.Instances++
	q.slice.Add(st.ID)

	// Data needs: one per use slot, at this instance's position.
	if st.Op != ir.OpDeclArr {
		for ui := 0; ui < len(st.Uses); ui++ {
			a := be.addrs[lay.useOff[st.Idx]+ui]
			q.needDefs[a] = append(q.needDefs[a], defNeed{use: pos{ord: be.ord, idx: st.Idx}})
		}
	}

	// Control need for the enclosing block instance (once per instance).
	bk := instKey{stmt: ir.StmtID(st.Block.ID), ord: be.ord}
	if q.cdSeen[bk] {
		return
	}
	q.cdSeen[bk] = true
	ancs := st.Block.CDAncestors
	if len(ancs) == 0 {
		// Only function entries carry the interprocedural (call-site)
		// control dependence; other ancestor-free blocks execute
		// unconditionally within their frame (see the FP builder).
		if st.Block.Fn == q.s.p.Main || st.Block != st.Block.Fn.Entry() {
			return
		}
	}
	n := &cdNeed{fn: st.Block.Fn, ancestors: map[ir.BlockID]bool{}, startOrd: be.ord}
	for _, ab := range ancs {
		n.ancestors[ab.ID] = true
	}
	n.entryLike = len(ancs) == 0
	q.needCDs = append(q.needCDs, n)
}

// updateCDs advances every pending control need over this block execution.
func (q *query) updateCDs(be *blockExec, lay blockLayout) {
	for _, n := range q.needCDs {
		if n.done || be.ord >= n.startOrd {
			continue
		}
		term := be.b.Terminator()
		if term != nil && term.Op == ir.OpReturn {
			n.depth++
			continue
		}
		if term != nil && term.Op == ir.OpCall {
			if n.depth == 0 {
				// Frame-creating call: resolves entry-like needs; intra-
				// procedural needs cannot match beyond this boundary.
				if n.entryLike {
					q.edges++
					q.admit(term, be, lay)
				}
				n.done = true
				continue
			}
			n.depth--
			// A same-frame call block is never a branch ancestor; fall
			// through only for depth accounting.
			continue
		}
		if n.depth == 0 && n.ancestors[be.b.ID] {
			q.edges++
			q.admit(be.b.Terminator(), be, lay)
			n.done = true
		}
	}
}

func (q *query) compactCDs() {
	kept := q.needCDs[:0]
	for _, n := range q.needCDs {
		if !n.done {
			kept = append(kept, n)
		}
	}
	q.needCDs = kept
}
