// Package lp implements the demand-driven "limited preprocessing" slicing
// algorithm the paper compares against (their ICSE'03 LP algorithm): the
// execution trace lives on disk, augmented with per-segment summaries
// (blocks executed, addresses defined); each slicing query performs one
// backward traversal of the trace, skipping segments the summaries prove
// irrelevant, and materializes only the dependence subgraph the query
// needs.
//
// The backward scan services all outstanding needs in a single pass:
// resolving an instance's dependences only ever creates needs at earlier
// trace positions, so needs are monotone with respect to the scan
// direction. Control-dependence needs carry a call-depth counter so that
// ancestors are matched in the correct frame even under recursion; a
// pending control need disables segment skipping (its counter must observe
// every call and return).
//
// Queries are batched natively: every need and every admitted instance
// carries a bitmask of the criteria it serves, so SliceAll answers up to
// 64 criteria per backward pass over the trace — the dominant cost —
// instead of one pass per criterion. Slice is the single-criterion
// special case of the same traversal.
package lp

import (
	"fmt"
	"math/bits"
	"sync"

	"dynslice/internal/ir"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/explain"
	"dynslice/internal/telemetry"
	"dynslice/internal/trace"
)

// Slicer answers slicing queries from an on-disk trace (or any other
// segment Source). Queries may run concurrently: each opens its own
// cursor, and the shared caches below are lock-guarded.
type Slicer struct {
	p    *ir.Program
	path string
	segs []*trace.Segment
	src  Source

	// offsets caches, per block, the cumulative record layout used to
	// iterate a block execution's flat address array (layoutMu-guarded).
	offsets  map[*ir.Block]blockLayout
	layoutMu sync.RWMutex

	// MaxSubgraphEdges tracks the largest demand-built subgraph (in
	// resolved dependence edges) over all queries, for the paper's Table 6.
	// Guarded by statMu; read it only after queries complete.
	MaxSubgraphEdges int64
	statMu           sync.Mutex

	// Telemetry (nil counters are inert); see SetTelemetry.
	met       *trace.Metrics
	cQueries  *telemetry.Counter
	cSegScans *telemetry.Counter
	cSegSkips *telemetry.Counter
	cSegBytes *telemetry.Counter
	cEdges    *telemetry.Counter
}

type blockLayout struct {
	useOff []int // per stmt: offset of its use addrs in the flat array
	defOff []int // per stmt: offset of its def addrs
	total  int
}

// New returns an LP slicer over a trace file written by trace.Writer.
func New(p *ir.Program, tracePath string, segs []*trace.Segment) *Slicer {
	s := &Slicer{p: p, path: tracePath, segs: segs, offsets: map[*ir.Block]blockLayout{}}
	s.src = &fileSource{s: s}
	return s
}

// NewFromSource returns a slicer whose backward traversal materializes
// segments through src instead of the trace file — the reexec backend's
// entry point into the shared traversal.
func NewFromSource(p *ir.Program, segs []*trace.Segment, src Source) *Slicer {
	return &Slicer{p: p, segs: segs, src: src, offsets: map[*ir.Block]blockLayout{}}
}

// SetTelemetry mints the LP counters on reg and attaches trace-read
// metrics to segment decoders. Query counters are folded in once per
// query from the per-query stats, so the scan itself carries no
// instrumentation.
func (s *Slicer) SetTelemetry(reg *telemetry.Registry) {
	s.SetTelemetryNamed(reg, "lp")
}

// SetTelemetryNamed is SetTelemetry under a different counter
// namespace, so wrappers of the shared traversal (reexec) report their
// effort under their own name.
func (s *Slicer) SetTelemetryNamed(reg *telemetry.Registry, ns string) {
	s.met = trace.NewMetrics(reg)
	s.cQueries = reg.Counter(ns + ".queries")
	s.cSegScans = reg.Counter(ns + ".seg_scans")
	s.cSegSkips = reg.Counter(ns + ".seg_skips")
	s.cSegBytes = reg.Counter(ns + ".seg_bytes")
	s.cEdges = reg.Counter(ns + ".subgraph_edges")
}

func (s *Slicer) layout(b *ir.Block) blockLayout {
	s.layoutMu.RLock()
	l, ok := s.offsets[b]
	s.layoutMu.RUnlock()
	if ok {
		return l
	}
	l = blockLayout{useOff: make([]int, len(b.Stmts)), defOff: make([]int, len(b.Stmts))}
	off := 0
	for i, st := range b.Stmts {
		l.useOff[i] = off
		if st.Op == ir.OpDeclArr {
			off += 2 // start, length
			l.defOff[i] = l.useOff[i]
			continue
		}
		off += len(st.Uses)
		l.defOff[i] = off
		off += st.NumDefs
	}
	l.total = off
	s.layoutMu.Lock()
	s.offsets[b] = l
	s.layoutMu.Unlock()
	return l
}

// pos is a trace position: block ordinal plus statement index.
type pos struct {
	ord int64
	idx int
}

func (a pos) before(b pos) bool {
	if a.ord != b.ord {
		return a.ord < b.ord
	}
	return a.idx < b.idx
}

// seedOrd is the sentinel ordinal of criterion seed needs ("the last
// definition anywhere in the trace"), past every real position.
const seedOrd = int64(1) << 62

type defNeed struct {
	use  pos    // the definition must precede this position
	mask uint64 // criteria awaiting this definition
	stmt ir.StmtID
	slot int32 // consumer statement + use slot, for witness recording
}

type cdNeed struct {
	fn        *ir.Func
	ancestors map[ir.BlockID]bool
	entryLike bool  // no intraprocedural ancestors: resolve at the frame-creating call
	startOrd  int64 // only consider block executions strictly before this
	depth     int
	mask      uint64
	done      bool
	fromStmt  ir.StmtID // instance the control need was created for
	fromOrd   int64
}

// locCrit is a pending statement-instance criterion (mode B).
type locCrit struct {
	stmt ir.StmtID
	ord  int64
	mask uint64
	done bool
}

type query struct {
	s        *Slicer
	outs     []*slicing.Slice // one per criterion bit
	stats    *slicing.Stats
	needDefs map[int64][]defNeed
	needCDs  []*cdNeed
	edges    int64

	// Visited words, flat instead of map[{id, ord}]uint64: admit only ever
	// keys with the ordinal of the block execution being processed, so one
	// mask word per statement (per block for control needs) suffices,
	// invalidated lazily when the stamp trails the current ordinal.
	visStamp []int64 // by StmtID: ordinal visMask is valid for (-1 = never)
	visMask  []uint64
	cdStamp  []int64 // by BlockID: ordinal cdMask is valid for
	cdMask   []uint64
	obs      *explain.Recorder // single-criterion observed queries only

	// Criterion plumbing.
	seedAddrs map[int64]uint64 // address -> criteria bits seeded on it (mode A)
	hitMask   uint64           // bits whose seed address was defined somewhere
	locs      []locCrit

	// Free list of BlockExec address buffers: a segment's buffers are
	// recycled into the next segment's decode (same idea as the pooled
	// record batches in trace.ParallelReplay), so a backward scan reaches
	// steady state after one segment instead of allocating one slice per
	// block execution for the whole trace.
	bufFree [][]int64
}

// getBuf returns an empty address buffer with capacity >= n, reusing a
// recycled one when possible.
func (q *query) getBuf(n int) []int64 {
	for len(q.bufFree) > 0 {
		b := q.bufFree[len(q.bufFree)-1]
		q.bufFree = q.bufFree[:len(q.bufFree)-1]
		if cap(b) >= n {
			return b[:0]
		}
	}
	return make([]int64, 0, n)
}

// recycleBufs returns a processed segment's address buffers to the free
// list (bounded so one giant segment cannot pin memory).
func (q *query) recycleBufs(execs []BlockExec) {
	for i := range execs {
		if execs[i].Addrs == nil || len(q.bufFree) >= 4096 {
			break
		}
		q.bufFree = append(q.bufFree, execs[i].Addrs)
		execs[i].Addrs = nil
	}
}

var _ slicing.Explainer = (*Slicer)(nil)

// Slice implements slicing.Slicer as the single-criterion case of the
// batched traversal.
func (s *Slicer) Slice(c slicing.Criterion) (*slicing.Slice, *slicing.Stats, error) {
	outs, stats, err := s.sliceAll([]slicing.Criterion{c}, nil)
	if err != nil {
		return nil, nil, err
	}
	return outs[0], stats, nil
}

// SliceObserved implements slicing.Explainer: a single-criterion query
// whose backward scan records every resolved dependence into rec. LP
// materializes dependences on demand from the trace, so all hops carry
// explain.KindExplicit; the traversal-effort counters (segment scans and
// skips) land in the returned stats as usual.
func (s *Slicer) SliceObserved(c slicing.Criterion, rec *explain.Recorder) (*slicing.Slice, *slicing.Stats, error) {
	outs, stats, err := s.sliceAll([]slicing.Criterion{c}, rec)
	if err != nil {
		return nil, nil, err
	}
	return outs[0], stats, nil
}

// SliceAll implements slicing.MultiSlicer: one backward trace scan per
// 64-criterion chunk, with per-criterion bitmasks on every need. Each
// returned slice is identical to what Slice would produce; stats
// aggregate the batch (a segment scanned once for 25 criteria counts
// once).
func (s *Slicer) SliceAll(cs []slicing.Criterion) ([]*slicing.Slice, *slicing.Stats, error) {
	return s.sliceAll(cs, nil)
}

// sliceAll is the shared batched traversal; obs is only ever non-nil for
// single-criterion observed queries.
func (s *Slicer) sliceAll(cs []slicing.Criterion, obs *explain.Recorder) ([]*slicing.Slice, *slicing.Stats, error) {
	outs := make([]*slicing.Slice, len(cs))
	stats := &slicing.Stats{}
	var edges int64
	for base := 0; base < len(cs); base += 64 {
		chunk := min(64, len(cs)-base)
		q := &query{
			s:         s,
			outs:      make([]*slicing.Slice, chunk),
			stats:     stats,
			needDefs:  map[int64][]defNeed{},
			visStamp:  newStamps(len(s.p.Stmts)),
			visMask:   make([]uint64, len(s.p.Stmts)),
			cdStamp:   newStamps(len(s.p.Blocks)),
			cdMask:    make([]uint64, len(s.p.Blocks)),
			seedAddrs: map[int64]uint64{},
			obs:       obs,
		}
		for j := 0; j < chunk; j++ {
			c := cs[base+j]
			q.outs[j] = slicing.NewSlice()
			bit := uint64(1) << j
			if c.Stmt >= 0 {
				q.locs = append(q.locs, locCrit{stmt: c.Stmt, ord: c.TS, mask: bit})
				q.hitMask |= bit // mode B has no never-defined failure case
			} else {
				q.seedAddrs[c.Addr] |= bit
				q.needDefs[c.Addr] = append(q.needDefs[c.Addr], defNeed{use: pos{ord: seedOrd}, mask: bit})
			}
		}
		if err := q.scan(); err != nil {
			return nil, nil, err
		}
		for j := 0; j < chunk; j++ {
			if q.hitMask&(uint64(1)<<j) == 0 {
				return nil, nil, fmt.Errorf("lp: address %d was never defined", cs[base+j].Addr)
			}
			outs[base+j] = q.outs[j]
		}
		edges += q.edges
	}
	s.statMu.Lock()
	if edges > s.MaxSubgraphEdges {
		s.MaxSubgraphEdges = edges
	}
	s.statMu.Unlock()
	s.cQueries.Add(int64(len(cs)))
	s.cSegScans.Add(stats.SegScans)
	s.cSegSkips.Add(stats.SegSkips)
	s.cSegBytes.Add(stats.SegBytes)
	s.cEdges.Add(edges)
	return outs, stats, nil
}

func (q *query) scan() error {
	cur, err := q.s.src.Open()
	if err != nil {
		return err
	}
	defer cur.Close()

	for si := len(q.s.segs) - 1; si >= 0; si-- {
		seg := q.s.segs[si]
		if q.idle() {
			return nil
		}
		if q.canSkip(seg) {
			q.stats.SegSkips++
			continue
		}
		q.stats.SegScans++
		q.stats.SegBytes += segBytes(q.s.segs, si)
		execs, err := cur.Segment(seg, q.getBuf)
		if err != nil {
			return err
		}
		for i := len(execs) - 1; i >= 0; i-- {
			q.processBlockExec(&execs[i])
		}
		q.recycleBufs(execs)
		q.compactCDs()
	}
	return nil
}

// segBytes estimates the on-disk size of segment si from the next
// segment's start offset. Segments are written back to back, so the
// delta is exact for all but the final segment, whose end offset the
// index does not record (reported as 0).
func segBytes(segs []*trace.Segment, si int) int64 {
	if si+1 < len(segs) {
		return segs[si+1].Off - segs[si].Off
	}
	return 0
}

// idle reports whether no needs remain.
func (q *query) idle() bool {
	if len(q.needDefs) != 0 || len(q.needCDs) != 0 {
		return false
	}
	for i := range q.locs {
		if !q.locs[i].done {
			return false
		}
	}
	return true
}

// canSkip decides from the segment summary whether scanning it can be
// avoided. Pending control needs always force a scan (their depth counters
// must see every call and return in order).
func (q *query) canSkip(seg *trace.Segment) bool {
	if len(q.needCDs) > 0 {
		return false
	}
	for i := range q.locs {
		lc := &q.locs[i]
		if !lc.done && lc.ord >= seg.StartOrd && lc.ord < seg.EndOrd {
			return false
		}
	}
	for a := range q.needDefs {
		if seg.MayDefine(a) {
			return false
		}
	}
	return true
}

func (q *query) processBlockExec(be *BlockExec) {
	lay := q.s.layout(be.B)

	// Locate criterion instances.
	for i := range q.locs {
		lc := &q.locs[i]
		if lc.done || be.Ord != lc.ord {
			continue
		}
		st := q.s.p.Stmt(lc.stmt)
		if st.Block == be.B {
			lc.done = true
			q.obs.Criterion(st.ID, be.Ord)
			q.admit(st, be, lay, lc.mask)
		}
	}

	// Control-dependence needs from later instances observe this block
	// execution first: a matched ancestor's terminator may itself use
	// values defined earlier in this very block execution, so its data
	// needs must exist before the statement scan below.
	q.updateCDs(be, lay)

	// Statements in reverse order: defs may satisfy pending needs.
	for idx := len(be.B.Stmts) - 1; idx >= 0; idx-- {
		st := be.B.Stmts[idx]
		here := pos{ord: be.Ord, idx: idx}
		if st.Op == ir.OpDeclArr {
			start, length := be.Addrs[lay.useOff[idx]], be.Addrs[lay.useOff[idx]+1]
			q.resolveRegion(st, be, lay, here, start, length)
			continue
		}
		for di := 0; di < st.NumDefs; di++ {
			a := be.Addrs[lay.defOff[idx]+di]
			q.resolveDefs(st, be, lay, here, a)
		}
	}
}

// resolveDefs satisfies pending needs on address a with the definition at
// position here.
func (q *query) resolveDefs(st *ir.Stmt, be *BlockExec, lay blockLayout, here pos, a int64) {
	needs := q.needDefs[a]
	if len(needs) == 0 {
		return
	}
	kept := needs[:0]
	var hit uint64
	for _, n := range needs {
		if here.before(n.use) {
			hit |= n.mask
			q.edges++
			if n.use.ord == seedOrd {
				q.hitMask |= n.mask
				q.obs.Criterion(st.ID, be.Ord)
			} else {
				q.obs.Edge(n.stmt, n.use.ord, false, n.slot, st.ID, be.Ord, explain.KindExplicit, false)
			}
		} else {
			kept = append(kept, n)
		}
	}
	if len(kept) == 0 {
		delete(q.needDefs, a)
	} else {
		q.needDefs[a] = kept
	}
	if hit != 0 {
		q.admit(st, be, lay, hit)
	}
}

func (q *query) resolveRegion(st *ir.Stmt, be *BlockExec, lay blockLayout, here pos, start, length int64) {
	var hit uint64
	for a := range q.needDefs {
		if a < start || a >= start+length {
			continue
		}
		needs := q.needDefs[a]
		kept := needs[:0]
		for _, n := range needs {
			if here.before(n.use) {
				hit |= n.mask
				q.edges++
				if n.use.ord == seedOrd {
					q.hitMask |= n.mask
					q.obs.Criterion(st.ID, be.Ord)
				} else {
					q.obs.Edge(n.stmt, n.use.ord, false, n.slot, st.ID, be.Ord, explain.KindExplicit, false)
				}
			} else {
				kept = append(kept, n)
			}
		}
		if len(kept) == 0 {
			delete(q.needDefs, a)
		} else {
			q.needDefs[a] = kept
		}
	}
	if hit != 0 {
		q.admit(st, be, lay, hit)
	}
}

// newStamps returns n ordinal stamps, all "never".
func newStamps(n int) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// admit adds a statement instance to the slices in mask and queues its
// needs for the criteria bits that reach it for the first time.
func (q *query) admit(st *ir.Stmt, be *BlockExec, lay blockLayout, mask uint64) {
	if q.visStamp[st.ID] != be.Ord {
		q.visStamp[st.ID] = be.Ord
		q.visMask[st.ID] = 0
	}
	nv := mask &^ q.visMask[st.ID]
	if nv == 0 {
		return
	}
	if q.visMask[st.ID] == 0 {
		q.stats.Instances++
		q.obs.Visit(st.ID, be.Ord)
	}
	q.visMask[st.ID] |= nv
	for m := nv; m != 0; m &= m - 1 {
		q.outs[bits.TrailingZeros64(m)].Add(st.ID)
	}

	// Data needs: one per use slot, at this instance's position.
	if st.Op != ir.OpDeclArr {
		for ui := 0; ui < len(st.Uses); ui++ {
			a := be.Addrs[lay.useOff[st.Idx]+ui]
			q.needDefs[a] = append(q.needDefs[a], defNeed{
				use: pos{ord: be.Ord, idx: st.Idx}, mask: nv, stmt: st.ID, slot: int32(ui),
			})
		}
	}

	// Control need for the enclosing block instance (once per instance and
	// criterion bit).
	if q.cdStamp[st.Block.ID] != be.Ord {
		q.cdStamp[st.Block.ID] = be.Ord
		q.cdMask[st.Block.ID] = 0
	}
	cnv := nv &^ q.cdMask[st.Block.ID]
	if cnv == 0 {
		return
	}
	q.cdMask[st.Block.ID] |= cnv
	ancs := st.Block.CDAncestors
	if len(ancs) == 0 {
		// Only function entries carry the interprocedural (call-site)
		// control dependence; other ancestor-free blocks execute
		// unconditionally within their frame (see the FP builder).
		if st.Block.Fn == q.s.p.Main || st.Block != st.Block.Fn.Entry() {
			return
		}
	}
	n := &cdNeed{fn: st.Block.Fn, ancestors: map[ir.BlockID]bool{}, startOrd: be.Ord, mask: cnv,
		fromStmt: st.ID, fromOrd: be.Ord}
	for _, ab := range ancs {
		n.ancestors[ab.ID] = true
	}
	n.entryLike = len(ancs) == 0
	q.needCDs = append(q.needCDs, n)
}

// updateCDs advances every pending control need over this block execution.
func (q *query) updateCDs(be *BlockExec, lay blockLayout) {
	for _, n := range q.needCDs {
		if n.done || be.Ord >= n.startOrd {
			continue
		}
		term := be.B.Terminator()
		if term != nil && term.Op == ir.OpReturn {
			n.depth++
			continue
		}
		if term != nil && term.Op == ir.OpCall {
			if n.depth == 0 {
				// Frame-creating call: resolves entry-like needs; intra-
				// procedural needs cannot match beyond this boundary.
				if n.entryLike {
					q.edges++
					q.obs.Edge(n.fromStmt, n.fromOrd, false, -1, term.ID, be.Ord, explain.KindExplicit, true)
					q.admit(term, be, lay, n.mask)
				}
				n.done = true
				continue
			}
			n.depth--
			// A same-frame call block is never a branch ancestor; fall
			// through only for depth accounting.
			continue
		}
		if n.depth == 0 && n.ancestors[be.B.ID] {
			q.edges++
			term := be.B.Terminator()
			q.obs.Edge(n.fromStmt, n.fromOrd, false, -1, term.ID, be.Ord, explain.KindExplicit, true)
			q.admit(term, be, lay, n.mask)
			n.done = true
		}
	}
}

func (q *query) compactCDs() {
	kept := q.needCDs[:0]
	for _, n := range q.needCDs {
		if !n.done {
			kept = append(kept, n)
		}
	}
	q.needCDs = kept
}
