package lp

import (
	"fmt"
	"os"

	"dynslice/internal/ir"
	"dynslice/internal/trace"
)

// BlockExec is one materialized block execution: the block, its
// execution ordinal, and the flat per-statement use+def address array
// laid out per blockLayout (uses then defs for each statement, in
// statement order; DeclArr contributes its region start and length).
type BlockExec struct {
	B     *ir.Block
	Ord   int64
	Addrs []int64
}

// Source supplies trace segments' block executions to the backward
// traversal. The default source decodes the on-disk trace file; the
// reexec backend supplies one that regenerates segments by re-executing
// the interpreter from checkpoints.
type Source interface {
	// Open starts one query's backward scan. Each query opens its own
	// cursor, so concurrent queries never share mutable state.
	Open() (Cursor, error)
}

// Cursor serves one backward scan's segment requests. The traversal
// requests segments in strictly descending order and each at most once;
// ownership of the returned slice and of each entry's Addrs buffer
// passes to the caller (which recycles the buffers into alloc).
type Cursor interface {
	// Segment materializes seg's block executions in execution order.
	// alloc returns an empty address buffer with at least the given
	// capacity; using it lets the traversal recycle buffers across
	// segments.
	Segment(seg *trace.Segment, alloc func(int) []int64) ([]BlockExec, error)
	Close() error
}

// BufSize returns the address-buffer capacity a BlockExec for b needs —
// the flat layout's total slot count. External Sources size the buffers
// they request through alloc with it so the traversal's indexing (which
// uses the same layout) lines up exactly.
func (s *Slicer) BufSize(b *ir.Block) int { return s.layout(b).total }

// fileSource is the default Source: seek + decode of the trace file
// written during the recording.
type fileSource struct {
	s *Slicer
}

func (fs *fileSource) Open() (Cursor, error) {
	f, err := os.Open(fs.s.path)
	if err != nil {
		return nil, fmt.Errorf("lp: %w", err)
	}
	return &fileCursor{s: fs.s, f: f}, nil
}

type fileCursor struct {
	s *Slicer
	f *os.File
}

func (c *fileCursor) Close() error { return c.f.Close() }

func (c *fileCursor) Segment(seg *trace.Segment, alloc func(int) []int64) ([]BlockExec, error) {
	if _, err := c.f.Seek(seg.Off, 0); err != nil {
		return nil, fmt.Errorf("lp: seek: %w", err)
	}
	d := trace.NewDecoder(c.s.p, c.f, seg.StartOrd)
	d.SetMetrics(c.s.met)
	n := seg.EndOrd - seg.StartOrd
	execs := make([]BlockExec, 0, n)
	var cur *BlockExec
	for int64(len(execs)) < n {
		ev, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case trace.EvBlock:
			execs = append(execs, BlockExec{B: ev.Block, Ord: ev.Ord})
			cur = &execs[len(execs)-1]
			cur.Addrs = alloc(c.s.layout(ev.Block).total)
		case trace.EvStmt:
			cur.Addrs = append(cur.Addrs, ev.Uses...)
			cur.Addrs = append(cur.Addrs, ev.Defs...)
		case trace.EvRegion:
			cur.Addrs = append(cur.Addrs, ev.RegStart, ev.RegLen)
		case trace.EvEnd:
			return execs, nil
		}
	}
	// The loop exits after appending the segment's last block record; its
	// statement records still follow. Decode until the next block record
	// or end.
	lay := c.s.layout(cur.B)
	for len(cur.Addrs) < lay.total {
		ev, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case trace.EvStmt:
			cur.Addrs = append(cur.Addrs, ev.Uses...)
			cur.Addrs = append(cur.Addrs, ev.Defs...)
		case trace.EvRegion:
			cur.Addrs = append(cur.Addrs, ev.RegStart, ev.RegLen)
		case trace.EvEnd:
			return execs, nil
		case trace.EvBlock:
			if m := c.s.met; m != nil {
				m.ErrDesync.Inc()
			}
			return nil, fmt.Errorf("lp: segment decoding desynchronized")
		}
	}
	return execs, nil
}
