package slicing_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/fuzzgen"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/profile"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/forward"
	"dynslice/internal/slicing/fp"
	"dynslice/internal/slicing/lp"
	"dynslice/internal/slicing/opt"
	"dynslice/internal/slicing/oracle"
	"dynslice/internal/trace"
)

// addrSampler collects every address defined during a run so tests can
// pick slicing criteria.
type addrSampler struct {
	defined map[int64]bool
}

func newAddrSampler() *addrSampler { return &addrSampler{defined: map[int64]bool{}} }

func (a *addrSampler) Block(*ir.Block) {}
func (a *addrSampler) Stmt(_ *ir.Stmt, _, defs []int64) {
	for _, d := range defs {
		a.defined[d] = true
	}
}
func (a *addrSampler) RegionDef(_ *ir.Stmt, start, length int64) {
	for x := start; x < start+length; x++ {
		a.defined[x] = true
	}
}
func (a *addrSampler) End() {}

// sample returns up to n defined addresses, deterministically spread.
func (a *addrSampler) sample(n int) []int64 {
	all := make([]int64, 0, len(a.defined))
	for x := range a.defined {
		all = append(all, x)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) <= n {
		return all
	}
	out := make([]int64, 0, n)
	step := len(all) / n
	for i := 0; i < n; i++ {
		out = append(out, all[i*step])
	}
	return out
}

// harness compiles and runs a program, building every slicer variant.
type harness struct {
	p        *ir.Program
	fpg      *fp.Graph
	lps      *lp.Slicer
	optFull  *opt.Graph
	optStage []*opt.Graph // stages 0..7, without shortcuts
	addrs    []int64
}

func buildHarness(t *testing.T, src string, input []int64, nCriteria int) *harness {
	t.Helper()
	p, err := compile.Source(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	// Profiling run (paper: the profile and measured runs coincide).
	col := profile.NewCollector(p)
	if _, err := interp.Run(p, interp.Options{Input: input, Sink: col}); err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	hot := col.HotPaths(1, 0)

	h := &harness{p: p}
	h.fpg = fp.NewGraph(p)
	h.optFull = opt.NewGraph(p, opt.Full(), hot, col.Cuts())
	for stage := 0; stage <= 7; stage++ {
		h.optStage = append(h.optStage, opt.NewGraph(p, opt.Stage(stage), hot, col.Cuts()))
	}
	sampler := newAddrSampler()

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.bin")
	tf, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	tw := trace.NewWriter(p, tf, 64) // small segments to exercise skipping
	sinks := trace.Multi{h.fpg, h.optFull, sampler, tw}
	for _, g := range h.optStage {
		sinks = append(sinks, g)
	}
	if _, err := interp.Run(p, interp.Options{Input: input, Sink: sinks}); err != nil {
		t.Fatalf("measured run: %v", err)
	}
	if tw.Err() != nil {
		t.Fatalf("trace write: %v", tw.Err())
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	h.lps = lp.New(p, tracePath, tw.Segments())
	h.addrs = sampler.sample(nCriteria)
	return h
}

// checkAll verifies that every algorithm and configuration produces the
// same slice for every sampled criterion.
func (h *harness) checkAll(t *testing.T) {
	t.Helper()
	if len(h.addrs) == 0 {
		t.Fatal("no defined addresses to slice on")
	}
	for _, a := range h.addrs {
		c := slicing.AddrCriterion(a)
		want, _, err := h.fpg.Slice(c)
		if err != nil {
			t.Fatalf("fp slice addr %d: %v", a, err)
		}
		got, _, err := h.lps.Slice(c)
		if err != nil {
			t.Fatalf("lp slice addr %d: %v", a, err)
		}
		if !want.Equal(got) {
			t.Errorf("addr %d: lp slice differs from fp\nfp: %v\nlp: %v", a, describe(h.p, want), describe(h.p, got))
		}
		got, _, err = h.optFull.Slice(c)
		if err != nil {
			t.Fatalf("opt slice addr %d: %v", a, err)
		}
		if !want.Equal(got) {
			t.Errorf("addr %d: opt(full) slice differs from fp\nfp:  %v\nopt: %v", a, describe(h.p, want), describe(h.p, got))
		}
		for stage, g := range h.optStage {
			got, _, err = g.Slice(c)
			if err != nil {
				t.Fatalf("opt stage %d slice addr %d: %v", stage, a, err)
			}
			if !want.Equal(got) {
				t.Errorf("addr %d: opt(stage %d) slice differs from fp\nfp:  %v\nopt: %v",
					a, stage, describe(h.p, want), describe(h.p, got))
			}
		}
	}
}

func describe(p *ir.Program, s *slicing.Slice) string {
	ids := s.Stmts()
	out := ""
	for _, id := range ids {
		st := p.Stmt(id)
		out += fmt.Sprintf("s%d@%s(%s) ", id, st.Pos, st.Op)
	}
	return out
}

var differentialPrograms = map[string]struct {
	src   string
	input []int64
}{
	"loops_and_branches": {src: `
		func main() {
			var sum = 0;
			var prod = 1;
			var i = 0;
			while (i < 20) {
				if (i % 3 == 0) {
					sum = sum + i;
				} else {
					prod = prod * 2;
				}
				if (i % 7 == 0) {
					sum = sum + prod;
				}
				i = i + 1;
			}
			print(sum);
			print(prod);
		}
	`},
	"functions_recursion": {src: `
		var depth = 0;
		func fib(n) {
			depth = depth + 1;
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		func helper(a, b) {
			var t = a * b;
			return t + fib(a % 5);
		}
		func main() {
			var acc = 0;
			var i = 1;
			while (i < 8) {
				acc = acc + helper(i, i + 1);
				i = i + 1;
			}
			print(acc);
			print(depth);
		}
	`},
	"pointers_aliasing": {src: `
		var g1 = 0;
		var g2 = 0;
		func pick(which) {
			if (which % 2 == 0) { return &g1; }
			return &g2;
		}
		func main() {
			var x = 10;
			var y = 20;
			var p = &x;
			var i = 0;
			while (i < 12) {
				// OPT-1b territory: *p may or may not kill x.
				x = i;
				*p = *p + 1;
				y = x + y;
				if (i % 4 == 0) { p = &y; }
				if (i % 4 == 2) { p = &x; }
				var q = pick(i);
				*q = *q + i;
				i = i + 1;
			}
			print(x); print(y); print(g1); print(g2);
		}
	`},
	"arrays_and_regions": {src: `
		func main() {
			var a[16];
			var i = 0;
			while (i < 16) {
				a[i] = i * 3;
				i = i + 1;
			}
			var sum = 0;
			i = 0;
			while (i < 16) {
				if (a[i] % 2 == 0) { sum = sum + a[i]; }
				i = i + 1;
			}
			// Redeclare arrays inside a loop body.
			var j = 0;
			while (j < 3) {
				var b[4];
				b[j] = sum + j;
				sum = sum + b[j];
				j = j + 1;
			}
			print(sum);
		}
	`},
	"input_driven": {src: `
		func main() {
			var n = input();
			var best = 0 - 1000;
			var i = 0;
			while (i < n) {
				var v = input();
				if (v > best) { best = v; }
				i = i + 1;
			}
			print(best);
		}
	`, input: []int64{6, 3, -2, 9, 4, 9, 1}},
	"use_use_chains": {src: `
		var g = 5;
		func main() {
			var acc = 0;
			var i = 0;
			while (i < 15) {
				// Two uses of g in one block with no local def: OPT-2b.
				acc = acc + g * g + g;
				if (i % 5 == 4) { g = g + 1; }
				i = i + 1;
			}
			print(acc);
		}
	`},
	"shared_labels": {src: `
		var x = 0;
		var y = 0;
		func main() {
			var i = 0;
			var s = 0;
			while (i < 18) {
				if (i % 2 == 0) {
					x = i;
					y = i * 2;
				}
				// Both uses get their defs from the same block: OPT-3.
				s = s + x + y;
				i = i + 1;
			}
			print(s);
		}
	`},
	"break_continue_for": {src: `
		func main() {
			var total = 0;
			for (var i = 0; i < 30; i = i + 1) {
				if (i % 4 == 1) { continue; }
				if (i > 21) { break; }
				for (var j = 0; j < i % 5; j = j + 1) {
					total = total + j;
				}
			}
			print(total);
		}
	`},
	"nested_calls_globals": {src: `
		var buf[8];
		var top = 0;
		func push(v) {
			buf[top] = v;
			top = top + 1;
			return top;
		}
		func pop() {
			top = top - 1;
			return buf[top];
		}
		func main() {
			push(3); push(1); push(4); push(1); push(5);
			var s = 0;
			while (top > 0) {
				s = s * 10 + pop();
			}
			print(s);
		}
	`},
}

func TestDifferentialSlices(t *testing.T) {
	for name, tc := range differentialPrograms {
		t.Run(name, func(t *testing.T) {
			h := buildHarness(t, tc.src, tc.input, 12)
			h.checkAll(t)
		})
	}
}

// TestFullMatrixAgainstOracle runs every differential program through the
// fuzzing harness's comparison helper: the complete configuration matrix —
// FP and OPT each as {compact,plain} x {sequential,pipelined}, OPT
// additionally x {resident,hybrid}, plus LP and the forward slicer — all
// compared against the brute-force oracle on every sampled criterion. The
// harness-based tests above pin the per-stage structure; this one pins
// the full cross product, including the storage and build-mode axes the
// local harness does not multiply out.
func TestFullMatrixAgainstOracle(t *testing.T) {
	for name, tc := range differentialPrograms {
		t.Run(name, func(t *testing.T) {
			res, err := fuzzgen.Check(tc.src, tc.input, fuzzgen.Options{Criteria: 12})
			if err != nil {
				t.Fatal(err)
			}
			if res.Variants < len(fuzzgen.FullMatrix()) {
				t.Fatalf("only %d variants compared, want %d", res.Variants, len(fuzzgen.FullMatrix()))
			}
			for _, d := range res.Divergences {
				t.Errorf("%s", d)
			}
		})
	}
}

// TestCompactMatchesPlain checks the -compact escape hatch: the FP and
// OPT graphs built with flat label storage (PlainLabels) must answer every
// criterion identically to the default delta-varint block layout, and the
// compact layout must never be larger.
func TestCompactMatchesPlain(t *testing.T) {
	for name, tc := range differentialPrograms {
		t.Run(name, func(t *testing.T) {
			p, err := compile.Source(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			col := profile.NewCollector(p)
			if _, err := interp.Run(p, interp.Options{Input: tc.input, Sink: col}); err != nil {
				t.Fatal(err)
			}
			hot := col.HotPaths(1, 0)

			fpCompact := fp.NewGraph(p)
			fpPlain := fp.NewGraph(p)
			fpPlain.SetPlainLabels(true)
			plainCfg := opt.Full()
			plainCfg.PlainLabels = true
			optCompact := opt.NewGraph(p, opt.Full(), hot, col.Cuts())
			optPlain := opt.NewGraph(p, plainCfg, hot, col.Cuts())
			sampler := newAddrSampler()
			sinks := trace.Multi{fpCompact, fpPlain, optCompact, optPlain, sampler}
			if _, err := interp.Run(p, interp.Options{Input: tc.input, Sink: sinks}); err != nil {
				t.Fatal(err)
			}

			for _, a := range sampler.sample(12) {
				c := slicing.AddrCriterion(a)
				for _, pair := range []struct {
					name           string
					plain, compact slicing.Slicer
				}{{"fp", fpPlain, fpCompact}, {"opt", optPlain, optCompact}} {
					want, _, err := pair.plain.Slice(c)
					if err != nil {
						t.Fatalf("%s plain addr %d: %v", pair.name, a, err)
					}
					got, _, err := pair.compact.Slice(c)
					if err != nil {
						t.Fatalf("%s compact addr %d: %v", pair.name, a, err)
					}
					if !want.Equal(got) {
						t.Errorf("addr %d: %s compact slice differs from plain\nplain:   %v\ncompact: %v",
							a, pair.name, describe(p, want), describe(p, got))
					}
				}
			}
			if c, pl := fpCompact.LabelBytes(), fpPlain.LabelBytes(); c > pl {
				t.Errorf("fp compact labels %dB exceed plain %dB", c, pl)
			}
			if c, pl := optCompact.LabelBytes(), optPlain.LabelBytes(); c > pl {
				t.Errorf("opt compact labels %dB exceed plain %dB", c, pl)
			}
		})
	}
}

// TestStageZeroMatchesFP checks the structural invariant that the OPT
// representation with every optimization disabled stores exactly as many
// labels as the full graph.
func TestStageZeroMatchesFP(t *testing.T) {
	for name, tc := range differentialPrograms {
		t.Run(name, func(t *testing.T) {
			h := buildHarness(t, tc.src, tc.input, 1)
			if got, want := h.optStage[0].LabelPairs(), h.fpg.LabelPairs(); got != want {
				t.Errorf("stage-0 label pairs = %d, fp = %d", got, want)
			}
		})
	}
}

// TestOptimizationReducesLabels checks the paper's core claim in miniature:
// each optimization stage never increases the stored label count, and the
// full configuration is strictly smaller than the unoptimized graph on
// every program with loops.
func TestOptimizationReducesLabels(t *testing.T) {
	for name, tc := range differentialPrograms {
		t.Run(name, func(t *testing.T) {
			h := buildHarness(t, tc.src, tc.input, 1)
			prev := h.optStage[0].LabelPairs()
			for stage := 1; stage <= 7; stage++ {
				cur := h.optStage[stage].LabelPairs()
				if cur > prev {
					t.Errorf("stage %d increased labels: %d -> %d", stage, prev, cur)
				}
				prev = cur
			}
			if full, base := h.optFull.LabelPairs(), h.optStage[0].LabelPairs(); full >= base {
				t.Errorf("full OPT did not reduce labels: %d vs %d", full, base)
			}
		})
	}
}

// TestOracleAgreement validates FP itself (the oracle of the other
// differential tests) against a brute-force reference slicer that shares
// no code with any graph implementation.
func TestOracleAgreement(t *testing.T) {
	for name, tc := range differentialPrograms {
		t.Run(name, func(t *testing.T) {
			p, err := compile.Source(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			fpg := fp.NewGraph(p)
			ora := oracle.New(p)
			sampler := newAddrSampler()
			if _, err := interp.Run(p, interp.Options{Input: tc.input, Sink: trace.Multi{fpg, ora, sampler}}); err != nil {
				t.Fatal(err)
			}
			for _, a := range sampler.sample(10) {
				c := slicing.AddrCriterion(a)
				want, _, err := ora.Slice(c)
				if err != nil {
					t.Fatalf("oracle addr %d: %v", a, err)
				}
				got, _, err := fpg.Slice(c)
				if err != nil {
					t.Fatalf("fp addr %d: %v", a, err)
				}
				if !want.Equal(got) {
					t.Errorf("addr %d: FP disagrees with the brute-force oracle\noracle: %v\nfp:     %v",
						a, describe(p, want), describe(p, got))
				}
			}
		})
	}
}

// TestForwardAgreement validates the forward-computation slicer against
// FP: for every criterion the eagerly computed slice must equal the
// backward-computed one.
func TestForwardAgreement(t *testing.T) {
	for name, tc := range differentialPrograms {
		t.Run(name, func(t *testing.T) {
			p, err := compile.Source(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			fpg := fp.NewGraph(p)
			fwd := forward.New(p)
			sampler := newAddrSampler()
			if _, err := interp.Run(p, interp.Options{Input: tc.input, Sink: trace.Multi{fpg, fwd, sampler}}); err != nil {
				t.Fatal(err)
			}
			for _, a := range sampler.sample(10) {
				c := slicing.AddrCriterion(a)
				want, _, err := fpg.Slice(c)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := fwd.Slice(c)
				if err != nil {
					t.Fatal(err)
				}
				if !want.Equal(got) {
					t.Errorf("addr %d: forward slice differs from backward\nfwd: %v\nfp:  %v",
						a, describe(p, got), describe(p, want))
				}
			}
			if fwd.DistinctSets() == 0 {
				t.Error("forward slicer materialized no sets")
			}
		})
	}
}
