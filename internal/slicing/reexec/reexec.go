// Package reexec answers slicing queries by re-executing the program
// instead of reading the trace back from disk. It reuses the LP
// backend's demand-driven backward traversal unchanged; only the
// segment materialization differs: where LP seeks into the trace file
// and decodes, reexec resumes the deterministic interpreter from the
// nearest preceding checkpoint and regenerates the segment's events in
// memory. Slices are therefore bit-identical to LP's (and to the full
// graphs'), but no dependence graph and no trace bytes are touched —
// the sweet spot is a recording queried rarely, where graph
// construction never amortizes.
//
// The backend trusts only the segment summary index and the recording's
// inputs. Every window it regenerates is cross-checked against the
// summaries (block counts and per-segment block sets); any disagreement
// is reported as a classified *Error so callers can fall back to a
// graph backend instead of returning a wrong slice.
package reexec

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/explain"
	"dynslice/internal/slicing/lp"
	"dynslice/internal/telemetry"
	"dynslice/internal/trace"
)

// Error classes. Callers dispatch fallback on these, not on message
// text.
const (
	// ClassSummaryGap: the summary index has a gap, overlap, or empty
	// segment — some ordinal range (possibly the criterion's) has no
	// summary to resume toward.
	ClassSummaryGap = "summary_gap"
	// ClassSummaryTruncated: the summaries stop short of (or overrun)
	// the recorded block count; the tail of the trace is unindexed.
	ClassSummaryTruncated = "summary_truncated"
	// ClassDesync: re-execution disagreed with the summaries — wrong
	// block count in a window, or a block the summary never saw. The
	// recording's inputs and its summaries describe different runs.
	ClassDesync = "desync"
	// ClassExecFault: the interpreter itself failed during resume
	// (step limit, internal fault).
	ClassExecFault = "exec_fault"
)

// Error is a classified re-execution failure.
type Error struct {
	Class string
	Err   error
}

func (e *Error) Error() string { return "reexec: " + e.Class + ": " + e.Err.Error() }
func (e *Error) Unwrap() error { return e.Err }

// Classify returns the error's class, or "" when err did not originate
// here.
func Classify(err error) string {
	var re *Error
	if errors.As(err, &re) {
		return re.Class
	}
	return ""
}

// DefaultMaxWindowBlocks bounds how many block executions one resume
// materializes in memory at once. A window larger than this collects
// only the requested segment (the prefix is executed but not buffered).
const DefaultMaxWindowBlocks = 1 << 18

// Options configures a re-execution slicer. Everything here comes from
// the original recording: the same input and step budget reproduce the
// same run, and TotalBlocks is the recorded block-execution count the
// summaries must tile.
type Options struct {
	Input       []int64
	MaxSteps    int64
	TotalBlocks int64
	// Checkpoints are interpreter snapshots from the recording run,
	// ordered by ordinal. Empty is legal (resume always starts from
	// scratch) — correct, just slower for criteria late in the trace.
	Checkpoints []*interp.Checkpoint
	// MaxWindowBlocks overrides DefaultMaxWindowBlocks when > 0.
	MaxWindowBlocks int64
}

// Slicer is the re-execution backend. It satisfies the same query
// surface as LP (Slice, SliceAll, SliceObserved).
type Slicer struct {
	core *lp.Slicer
}

// New returns a re-execution slicer for program p whose recording
// produced the given segment summaries.
func New(p *ir.Program, segs []*trace.Segment, o Options) *Slicer {
	if o.MaxWindowBlocks <= 0 {
		o.MaxWindowBlocks = DefaultMaxWindowBlocks
	}
	src := &execSource{p: p, segs: segs, o: o}
	s := &Slicer{core: lp.NewFromSource(p, segs, src)}
	src.core = s.core
	return s
}

// SetTelemetry mints this backend's counters (reexec.queries etc.) on
// reg; the shared traversal reports its effort under them.
func (s *Slicer) SetTelemetry(reg *telemetry.Registry) {
	s.core.SetTelemetryNamed(reg, "reexec")
}

// Slice computes the backward slice for one criterion.
func (s *Slicer) Slice(c slicing.Criterion) (*slicing.Slice, *slicing.Stats, error) {
	return s.core.Slice(c)
}

// SliceAll batches criteria through shared re-executions: each window
// is regenerated once per 64-criterion chunk, not once per criterion.
func (s *Slicer) SliceAll(cs []slicing.Criterion) ([]*slicing.Slice, *slicing.Stats, error) {
	return s.core.SliceAll(cs)
}

// SliceObserved runs one query under an explain recorder.
func (s *Slicer) SliceObserved(c slicing.Criterion, rec *explain.Recorder) (*slicing.Slice, *slicing.Stats, error) {
	return s.core.SliceObserved(c, rec)
}

// execSource materializes segments by resuming the interpreter.
type execSource struct {
	p    *ir.Program
	segs []*trace.Segment
	o    Options
	core *lp.Slicer
}

func (es *execSource) Open() (lp.Cursor, error) {
	// A scan trusts the summary index for both skipping and resume
	// targeting, so it must be a contiguous tiling of the whole run.
	if err := trace.ValidateSegments(es.segs, es.o.TotalBlocks); err != nil {
		return nil, &Error{Class: classifySummary(err), Err: err}
	}
	return &cursor{src: es}, nil
}

func classifySummary(err error) string {
	msg := err.Error()
	if strings.Contains(msg, "truncated") || strings.Contains(msg, "overruns") {
		return ClassSummaryTruncated
	}
	return ClassSummaryGap
}

// cursor serves one query's backward scan. It caches a single
// contiguous window of regenerated block executions: the traversal
// requests segments in descending order, so one resume from a
// checkpoint serves every segment between that checkpoint and the
// request that triggered it.
type cursor struct {
	src *execSource
	win []lp.BlockExec
	lo  int64 // ordinal of win[0]
	hi  int64 // one past the last ordinal in win
}

func (c *cursor) Close() error { return nil }

func (c *cursor) Segment(seg *trace.Segment, alloc func(int) []int64) ([]lp.BlockExec, error) {
	if seg.StartOrd < c.lo || seg.EndOrd > c.hi || c.win == nil {
		if err := c.fill(seg, alloc); err != nil {
			return nil, err
		}
	}
	serve := c.win[seg.StartOrd-c.lo : seg.EndOrd-c.lo]
	for i := range serve {
		if !seg.HasBlock(serve[i].B.ID) {
			return nil, &Error{Class: ClassDesync, Err: fmt.Errorf(
				"re-executed block %d at ordinal %d is not in segment [%d,%d)'s block set",
				serve[i].B.ID, serve[i].Ord, seg.StartOrd, seg.EndOrd)}
		}
	}
	return serve, nil
}

// fill regenerates the window ending at seg.EndOrd. It resumes from
// the nearest checkpoint at or before seg.StartOrd and buffers from the
// first segment boundary the resume can cover, so later (descending)
// requests down to that boundary are served without re-executing.
func (c *cursor) fill(seg *trace.Segment, alloc func(int) []int64) error {
	cp := c.checkpointFor(seg.StartOrd)
	from := int64(0)
	if cp != nil {
		from = cp.Ord
	}
	lo := from
	if idx := trace.SegmentAt(c.src.segs, from); idx >= 0 {
		// Align the buffer start up to a segment boundary: a partially
		// covered segment could never be served whole.
		if s := c.src.segs[idx]; s.StartOrd < from {
			lo = s.EndOrd
		} else {
			lo = s.StartOrd
		}
	}
	if seg.EndOrd-lo > c.src.o.MaxWindowBlocks {
		lo = seg.StartOrd
	}
	col := &collector{core: c.src.core, lo: lo, alloc: alloc}
	col.execs = make([]lp.BlockExec, 0, seg.EndOrd-lo)
	res, err := interp.Resume(c.src.p, cp, interp.ResumeOptions{
		Input:    c.src.o.Input,
		MaxSteps: c.src.o.MaxSteps,
		Sink:     col,
		StartOrd: lo,
		StopOrd:  seg.EndOrd,
	})
	if err != nil {
		return &Error{Class: ClassExecFault, Err: err}
	}
	if got := int64(len(col.execs)); got != seg.EndOrd-lo {
		return &Error{Class: ClassDesync, Err: fmt.Errorf(
			"re-execution produced %d block executions in window [%d,%d), summaries promise %d (run stopped=%v)",
			got, lo, seg.EndOrd, seg.EndOrd-lo, res.Stopped)}
	}
	c.win, c.lo, c.hi = col.execs, lo, seg.EndOrd
	return nil
}

// checkpointFor returns the latest checkpoint at or before ord, or nil.
func (c *cursor) checkpointFor(ord int64) *interp.Checkpoint {
	cks := c.src.o.Checkpoints
	i := sort.Search(len(cks), func(i int) bool { return cks[i].Ord > ord })
	if i == 0 {
		return nil
	}
	return cks[i-1]
}

// collector is the trace.Sink that turns the interpreter's event stream
// back into the flat BlockExec form the traversal consumes. It indexes
// into execs rather than holding a pointer: append may reallocate.
type collector struct {
	core  *lp.Slicer
	lo    int64
	alloc func(int) []int64
	execs []lp.BlockExec
}

func (c *collector) Block(b *ir.Block) {
	e := lp.BlockExec{B: b, Ord: c.lo + int64(len(c.execs))}
	e.Addrs = c.alloc(c.core.BufSize(b))
	c.execs = append(c.execs, e)
}

func (c *collector) Stmt(_ *ir.Stmt, uses, defs []int64) {
	e := &c.execs[len(c.execs)-1]
	e.Addrs = append(e.Addrs, uses...)
	e.Addrs = append(e.Addrs, defs...)
}

func (c *collector) RegionDef(_ *ir.Stmt, start, length int64) {
	e := &c.execs[len(c.execs)-1]
	e.Addrs = append(e.Addrs, start, length)
}

func (c *collector) End() {}
