package reexec_test

import (
	"os"
	"path/filepath"
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/explain"
	"dynslice/internal/slicing/lp"
	"dynslice/internal/slicing/reexec"
	"dynslice/internal/trace"
)

// rexSrc has early and late definitions, recursion, arrays, and input,
// so windows, checkpoints, and segment skipping all get exercised.
const rexSrc = `
var early = 0;
var late = 0;
var acc = 0;
var arr[8];

func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}

func main() {
	early = input() + 1;
	var i = 0;
	while (i < 200) {
		arr[i % 8] = fib(i % 7);
		acc = acc + arr[i % 8];
		late = late + i;
		i = i + 1;
	}
	print(early);
	print(acc);
	print(late);
}`

type recording struct {
	p     *ir.Program
	segs  []*trace.Segment
	path  string
	input []int64
	res   *interp.Result
}

// record runs src instrumented, writing a trace (for the LP reference)
// and capturing checkpoints (for reexec).
func record(t *testing.T, src string, segBlocks int, ckEvery int64, input ...int64) *recording {
	t.Helper()
	p, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(p, f, segBlocks)
	res, err := interp.Run(p, interp.Options{Input: input, Sink: w, CheckpointEvery: ckEvery})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	return &recording{p: p, segs: w.Segments(), path: path, input: input, res: res}
}

func (r *recording) reexecOpts() reexec.Options {
	return reexec.Options{
		Input:       r.input,
		TotalBlocks: r.res.BlockExecs,
		Checkpoints: r.res.Checkpoints,
	}
}

func globalAddr(p *ir.Program, name string) int64 {
	for _, o := range p.Globals {
		if o.Name == name {
			return interp.GlobalBase + o.Off
		}
	}
	return -1
}

func globalAddrs(p *ir.Program) []int64 {
	var out []int64
	for _, o := range p.Globals {
		for i := int64(0); i < o.Size; i++ {
			out = append(out, interp.GlobalBase+o.Off+i)
		}
	}
	return out
}

func sameSlice(t *testing.T, name string, got, want *slicing.Slice) {
	t.Helper()
	g, w := got.Stmts(), want.Stmts()
	if len(g) != len(w) {
		t.Fatalf("%s: slice has %d stmts, want %d", name, len(g), len(w))
	}
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("%s: stmt %d = %d, want %d", name, i, g[i], w[i])
		}
	}
}

// TestMatchesLP: for every global address, the re-execution slice must
// be identical to the LP slice over the recorded trace.
func TestMatchesLP(t *testing.T) {
	rec := record(t, rexSrc, 16, 32, 41)
	ref := lp.New(rec.p, rec.path, rec.segs)
	rx := reexec.New(rec.p, rec.segs, rec.reexecOpts())
	for _, a := range globalAddrs(rec.p) {
		c := slicing.AddrCriterion(a)
		want, _, werr := ref.Slice(c)
		got, _, gerr := rx.Slice(c)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("addr %d: lp err=%v, reexec err=%v", a, werr, gerr)
		}
		if werr != nil {
			continue
		}
		sameSlice(t, "addr", got, want)
	}
}

// TestMatchesLPNoCheckpoints: with no checkpoints every window resumes
// from scratch; slices must still match.
func TestMatchesLPNoCheckpoints(t *testing.T) {
	rec := record(t, rexSrc, 16, 0, 41)
	ref := lp.New(rec.p, rec.path, rec.segs)
	rx := reexec.New(rec.p, rec.segs, rec.reexecOpts())
	a := globalAddr(rec.p, "late")
	want, _, err := ref.Slice(slicing.AddrCriterion(a))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := rx.Slice(slicing.AddrCriterion(a))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "late", got, want)
}

// TestBatchMatchesLP: batched resolution shares windows across the
// chunk; results must match LP's batch.
func TestBatchMatchesLP(t *testing.T) {
	rec := record(t, rexSrc, 16, 32, 41)
	ref := lp.New(rec.p, rec.path, rec.segs)
	rx := reexec.New(rec.p, rec.segs, rec.reexecOpts())
	var cs []slicing.Criterion
	for _, a := range globalAddrs(rec.p) {
		cs = append(cs, slicing.AddrCriterion(a))
	}
	want, _, err := ref.SliceAll(cs)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := rx.SliceAll(cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d slices, want %d", len(got), len(want))
	}
	for i := range want {
		sameSlice(t, "batch", got[i], want[i])
	}
}

// TestTinyWindow forces MaxWindowBlocks below the segment span so every
// request degenerates to a single-segment window; correctness must not
// depend on window reuse.
func TestTinyWindow(t *testing.T) {
	rec := record(t, rexSrc, 16, 32, 41)
	o := rec.reexecOpts()
	o.MaxWindowBlocks = 1
	rx := reexec.New(rec.p, rec.segs, o)
	ref := lp.New(rec.p, rec.path, rec.segs)
	a := globalAddr(rec.p, "acc")
	want, _, err := ref.Slice(slicing.AddrCriterion(a))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := rx.Slice(slicing.AddrCriterion(a))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "tiny-window", got, want)
}

// TestSegmentSkippingStillPrunes: an early-finalized criterion must not
// re-execute the whole unrelated tail.
func TestSegmentSkippingStillPrunes(t *testing.T) {
	rec := record(t, rexSrc, 16, 32, 41)
	rx := reexec.New(rec.p, rec.segs, rec.reexecOpts())
	_, stats, err := rx.Slice(slicing.AddrCriterion(globalAddr(rec.p, "early")))
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegSkips == 0 {
		t.Error("expected segment skipping on an early-defined criterion")
	}
}

// TestNeverDefinedAddress: error text must match LP's classification
// surface (the planner's fallback ladder treats it as a bad criterion,
// not a backend fault).
func TestNeverDefinedAddress(t *testing.T) {
	rec := record(t, rexSrc, 16, 32, 41)
	rx := reexec.New(rec.p, rec.segs, rec.reexecOpts())
	_, _, err := rx.Slice(slicing.AddrCriterion(1 << 40))
	if err == nil {
		t.Fatal("expected an error for a never-defined address")
	}
	if reexec.Classify(err) != "" {
		t.Fatalf("bad-criterion error misclassified as %q: %v", reexec.Classify(err), err)
	}
}

// --- corruption matrix -------------------------------------------------

// TestCriterionBeforeFirstSummary: drop the head segment so the range
// containing early definitions has no summary. Every query must fail
// with a classified summary_gap error — never panic, never a wrong
// slice.
func TestCriterionBeforeFirstSummary(t *testing.T) {
	rec := record(t, rexSrc, 16, 32, 41)
	rx := reexec.New(rec.p, rec.segs[1:], rec.reexecOpts())
	_, _, err := rx.Slice(slicing.AddrCriterion(globalAddr(rec.p, "early")))
	if err == nil {
		t.Fatal("expected an error with a missing head summary")
	}
	if got := reexec.Classify(err); got != reexec.ClassSummaryGap {
		t.Fatalf("classified %q, want %q: %v", got, reexec.ClassSummaryGap, err)
	}
}

// TestTruncatedSummarySection: drop the tail segments so the summaries
// stop short of the recorded block count.
func TestTruncatedSummarySection(t *testing.T) {
	rec := record(t, rexSrc, 16, 32, 41)
	if len(rec.segs) < 3 {
		t.Fatalf("trace too short: %d segments", len(rec.segs))
	}
	rx := reexec.New(rec.p, rec.segs[:len(rec.segs)-2], rec.reexecOpts())
	_, _, err := rx.Slice(slicing.AddrCriterion(globalAddr(rec.p, "late")))
	if err == nil {
		t.Fatal("expected an error with truncated summaries")
	}
	if got := reexec.Classify(err); got != reexec.ClassSummaryTruncated {
		t.Fatalf("classified %q, want %q: %v", got, reexec.ClassSummaryTruncated, err)
	}
}

// TestFinalPartialSegment: a criterion defined in the last, partial
// segment (trace length not a multiple of segBlocks) resolves normally.
func TestFinalPartialSegment(t *testing.T) {
	rec := record(t, rexSrc, 16, 32, 41)
	last := rec.segs[len(rec.segs)-1]
	if last.EndOrd-last.StartOrd == 16 {
		t.Skip("trace length is a multiple of segBlocks; partial-tail case not hit")
	}
	ref := lp.New(rec.p, rec.path, rec.segs)
	rx := reexec.New(rec.p, rec.segs, rec.reexecOpts())
	// late is written on every loop iteration, so its final definition is
	// near the end of the trace — inside the partial tail's resolution.
	a := globalAddr(rec.p, "late")
	want, _, err := ref.Slice(slicing.AddrCriterion(a))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := rx.Slice(slicing.AddrCriterion(a))
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "partial-tail", got, want)
}

// TestDesyncWrongInput: summaries from one run, input from another. The
// regenerated blocks disagree with the summaries' block sets or counts;
// the backend must report desync rather than slice the wrong execution.
func TestDesyncWrongInput(t *testing.T) {
	src := `
	var g = 0;
	func main() {
		if (input() > 0) {
			var i = 0;
			while (i < 100) { g = g + i; i = i + 1; }
		}
		print(g);
	}`
	rec := record(t, src, 8, 16, 1) // input 1: loop taken, long trace
	o := rec.reexecOpts()
	o.Input = []int64{0} // re-execution takes the short path
	rx := reexec.New(rec.p, rec.segs, o)
	_, _, err := rx.Slice(slicing.AddrCriterion(globalAddr(rec.p, "g")))
	if err == nil {
		t.Fatal("expected a desync error when re-executing with different input")
	}
	if got := reexec.Classify(err); got != reexec.ClassDesync {
		t.Fatalf("classified %q, want %q: %v", got, reexec.ClassDesync, err)
	}
}

// TestExecFault: an impossible step budget makes the resume itself
// fail; the error must be classified exec_fault.
func TestExecFault(t *testing.T) {
	rec := record(t, rexSrc, 16, 0, 41)
	o := rec.reexecOpts()
	o.MaxSteps = 1
	rx := reexec.New(rec.p, rec.segs, o)
	_, _, err := rx.Slice(slicing.AddrCriterion(globalAddr(rec.p, "late")))
	if err == nil {
		t.Fatal("expected an error with MaxSteps=1")
	}
	if got := reexec.Classify(err); got != reexec.ClassExecFault {
		t.Fatalf("classified %q, want %q: %v", got, reexec.ClassExecFault, err)
	}
}

// TestObservedMatchesLP: explain queries run through the same traversal
// and must agree on the witness graph's criterion set.
func TestObservedMatchesLP(t *testing.T) {
	rec := record(t, rexSrc, 16, 32, 41)
	ref := lp.New(rec.p, rec.path, rec.segs)
	rx := reexec.New(rec.p, rec.segs, rec.reexecOpts())
	a := globalAddr(rec.p, "acc")
	wrec, grec := explain.NewRecorder(), explain.NewRecorder()
	want, _, err := ref.SliceObserved(slicing.AddrCriterion(a), wrec)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := rx.SliceObserved(slicing.AddrCriterion(a), grec)
	if err != nil {
		t.Fatal(err)
	}
	sameSlice(t, "observed", got, want)
}
