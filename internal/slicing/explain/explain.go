// Package explain provides query-scoped introspection for the slicing
// traversals: a Recorder that a single query threads through its
// dependence resolution, capturing which edges were traversed (explicit
// label hits vs statically inferred edges, attributed per optimization
// family), how much work the traversal did, and — for every statement
// that enters the slice — the predecessor edge used to first reach it.
// From that predecessor relation the Recorder reconstructs a
// dependence-path witness: the concrete chain
//
//	criterion ← dep ← … ← stmt
//
// with each hop tagged by its resolution kind and the timestamps it was
// resolved at, answering "why is X in the slice?" with evidence that can
// be checked against the execution trace (internal/fuzzgen does exactly
// that in witness-validation mode).
//
// The package follows the internal/telemetry discipline: every Recorder
// method is safe on a nil receiver and returns immediately, so the
// traversal hooks in fp, lp, and opt cost one branch-predictable nil
// check when no observer is attached.
//
// Timestamps in hops are the owning algorithm's own domain: block
// ordinals for FP and LP, node ordinals for OPT. Within one recording
// they are internally consistent; they are not comparable across
// algorithms.
package explain

import (
	"time"

	"dynslice/internal/ir"
)

// Kind classifies how one dependence hop was resolved.
type Kind uint8

// Hop resolution kinds. Explicit kinds found a stored dynamic label;
// inferred kinds fired a statically introduced unlabeled edge (the
// paper's OPT-1…OPT-6 plus the adaptive-delta extension); KindShortcut
// is a precomputed static-closure membership (paper §3.4 shortcuts).
const (
	// KindExplicit: a dynamic timestamp label on a private edge list.
	KindExplicit Kind = iota
	// KindExplicitOPT3: a label found on a shared data-cluster list
	// (OPT-3/OPT-6 label sharing, data side).
	KindExplicitOPT3
	// KindExplicitOPT6: a label found on a shared control-cluster list.
	KindExplicitOPT6
	// KindInferredOPT1: static (full or partial) def-use edge, td = tu.
	KindInferredOPT1
	// KindInferredOPT2: static use-use redirect to an earlier use of the
	// same value (the target statement does not enter the slice).
	KindInferredOPT2
	// KindInferredOPT4: control dependence inferred from a fixed
	// timestamp distance, ta = tb - delta.
	KindInferredOPT4
	// KindInferredOPT5: control dependence on an earlier occurrence in
	// the same node execution (control equivalence), ta = tb.
	KindInferredOPT5
	// KindInferredAdaptive: an adaptive default edge (constant producer
	// or constant delta observed across the whole run).
	KindInferredAdaptive
	// KindShortcut: membership in the precomputed static closure of the
	// consuming statement copy (chains of inferred edges collapsed).
	KindShortcut

	kindCount
)

var kindNames = [kindCount]string{
	KindExplicit:         "explicit",
	KindExplicitOPT3:     "explicit/OPT-3",
	KindExplicitOPT6:     "explicit/OPT-6",
	KindInferredOPT1:     "inferred/OPT-1",
	KindInferredOPT2:     "inferred/OPT-2",
	KindInferredOPT4:     "inferred/OPT-4",
	KindInferredOPT5:     "inferred/OPT-5",
	KindInferredAdaptive: "inferred/adaptive",
	KindShortcut:         "shortcut",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Explicit reports whether the hop consumed a stored dynamic label.
func (k Kind) Explicit() bool { return k <= KindExplicitOPT6 }

// Inferred reports whether the hop fired a statically introduced edge.
func (k Kind) Inferred() bool { return k >= KindInferredOPT1 && k <= KindInferredAdaptive }

// Inst identifies one statement execution instance in the owning
// algorithm's timestamp domain.
type Inst struct {
	Stmt ir.StmtID
	TS   int64
}

// UsePoint identifies one use slot of a statement instance — the target
// of an OPT-2 use-use redirect, which is resolved without adding its
// statement to the slice.
type UsePoint struct {
	Stmt ir.StmtID
	Slot int32
	TS   int64
}

// edge is the recorded predecessor of a traversal point: the consumer
// that first reached it and how.
type edge struct {
	from    Inst
	slot    int32 // use slot on the consumer side (-1 for control hops)
	fromUse bool  // the consumer is itself a use-point redirect target
	kind    Kind
	cd      bool
}

// Recorder captures one query's traversal. It is single-goroutine (one
// query owns it); concurrent queries each use their own. The nil
// Recorder ignores every call.
type Recorder struct {
	crit    Inst
	hasCrit bool

	visited int64
	hybrid  int64
	cdSame  int64
	byKind  [kindCount]int64

	instPred map[Inst]edge
	usePred  map[UsePoint]edge
	first    map[ir.StmtID]Inst
}

// NewRecorder returns an empty recorder for one query.
func NewRecorder() *Recorder {
	return &Recorder{
		instPred: map[Inst]edge{},
		usePred:  map[UsePoint]edge{},
		first:    map[ir.StmtID]Inst{},
	}
}

// Criterion records the query's root instance (the criterion itself; it
// has no predecessor edge).
func (r *Recorder) Criterion(stmt ir.StmtID, ts int64) {
	if r == nil {
		return
	}
	r.crit = Inst{Stmt: stmt, TS: ts}
	r.hasCrit = true
	if _, ok := r.first[stmt]; !ok {
		r.first[stmt] = r.crit
	}
}

// Root returns the recorded criterion instance.
func (r *Recorder) Root() (Inst, bool) {
	if r == nil {
		return Inst{}, false
	}
	return r.crit, r.hasCrit
}

// Visit records that the traversal expanded one statement instance.
func (r *Recorder) Visit(stmt ir.StmtID, ts int64) {
	if r == nil {
		return
	}
	r.visited++
}

// HybridLoad records one on-demand epoch-file load (OPT hybrid mode).
func (r *Recorder) HybridLoad() {
	if r == nil {
		return
	}
	r.hybrid++
}

// CDSameDeferral records one control-equivalence deferral (a CDSame
// chain step whose eventual resolution is attributed to the final hop).
func (r *Recorder) CDSameDeferral() {
	if r == nil {
		return
	}
	r.cdSame++
}

// Edge records one resolved dependence whose target is a statement
// instance. Every traversal of the edge is counted in the per-kind
// attribution; only the first edge to reach each target is kept as its
// witness predecessor.
func (r *Recorder) Edge(fromStmt ir.StmtID, fromTS int64, fromUse bool, fromSlot int32,
	toStmt ir.StmtID, toTS int64, kind Kind, cd bool) {
	if r == nil {
		return
	}
	r.byKind[kind]++
	to := Inst{Stmt: toStmt, TS: toTS}
	if _, ok := r.instPred[to]; ok {
		return
	}
	r.instPred[to] = edge{from: Inst{Stmt: fromStmt, TS: fromTS}, slot: fromSlot, fromUse: fromUse, kind: kind, cd: cd}
	if _, ok := r.first[toStmt]; !ok {
		r.first[toStmt] = to
	}
}

// EdgeUse records one resolved use-use redirect: the target is a
// use-point, not a slice member.
func (r *Recorder) EdgeUse(fromStmt ir.StmtID, fromTS int64, fromUse bool, fromSlot int32,
	toStmt ir.StmtID, toSlot int32, toTS int64, kind Kind) {
	if r == nil {
		return
	}
	r.byKind[kind]++
	to := UsePoint{Stmt: toStmt, Slot: toSlot, TS: toTS}
	if _, ok := r.usePred[to]; ok {
		return
	}
	r.usePred[to] = edge{from: Inst{Stmt: fromStmt, TS: fromTS}, slot: fromSlot, fromUse: fromUse, kind: kind}
}

// Hop is one link of a witness chain, read consumer → producer: the
// From side needed a value (or a controlling branch) that the To side
// supplied, resolved the way Kind describes.
type Hop struct {
	FromStmt ir.StmtID
	FromTS   int64
	FromUse  bool  // the consumer is a use-point redirect target
	FromSlot int32 // consumer use slot (-1 for control hops)
	ToStmt   ir.StmtID
	ToTS     int64
	ToUse    bool // the producer side is a use-point (OPT-2 redirect)
	ToSlot   int32
	CD       bool
	Kind     Kind
}

// Witness is the dependence-path evidence for one slice member: the hop
// chain from the criterion down to the target statement. Hops[0]'s From
// side is the criterion instance; the last hop's To side is (an instance
// of) Target. Complete reports that the backward walk reached the
// criterion; an incomplete chain indicates recorder misuse (a member
// with no recorded predecessor).
type Witness struct {
	Target   ir.StmtID
	Hops     []Hop
	Complete bool
}

// Witness reconstructs the dependence-path witness for a statement the
// query placed in the slice. The second result is false when the
// statement was never reached. The criterion statement itself yields an
// empty, complete chain.
func (r *Recorder) Witness(stmt ir.StmtID) (*Witness, bool) {
	if r == nil {
		return nil, false
	}
	start, ok := r.first[stmt]
	if !ok {
		return nil, false
	}
	w := &Witness{Target: stmt}
	curInst := start
	var curUP UsePoint
	curIsUse := false
	// The predecessor relation is acyclic (predecessors are always
	// recorded before their targets are expanded), but cap the walk at
	// the recorded edge count as insurance against recorder misuse.
	maxHops := len(r.instPred) + len(r.usePred) + 1
	for len(w.Hops) <= maxHops {
		if !curIsUse && r.hasCrit && curInst == r.crit {
			w.Complete = true
			break
		}
		var e edge
		var ok bool
		if curIsUse {
			e, ok = r.usePred[curUP]
		} else {
			e, ok = r.instPred[curInst]
		}
		if !ok {
			break
		}
		h := Hop{
			FromStmt: e.from.Stmt, FromTS: e.from.TS, FromUse: e.fromUse, FromSlot: e.slot,
			CD: e.cd, Kind: e.kind, ToSlot: -1,
		}
		if curIsUse {
			h.ToStmt, h.ToTS, h.ToUse, h.ToSlot = curUP.Stmt, curUP.TS, true, curUP.Slot
		} else {
			h.ToStmt, h.ToTS = curInst.Stmt, curInst.TS
		}
		w.Hops = append(w.Hops, h)
		if e.fromUse {
			curIsUse = true
			curUP = UsePoint{Stmt: e.from.Stmt, Slot: e.slot, TS: e.from.TS}
		} else {
			curIsUse = false
			curInst = e.from
		}
	}
	// Reverse: criterion-side first.
	for i, j := 0, len(w.Hops)-1; i < j; i, j = i+1, j-1 {
		w.Hops[i], w.Hops[j] = w.Hops[j], w.Hops[i]
	}
	return w, true
}

// Profile summarizes one observed query's traversal effort and edge
// attribution. LabelProbes, SegScans, SegSkips, SliceStmts, and Elapsed
// are filled by the caller from the query's slicing.Stats; everything
// else comes from the Recorder.
type Profile struct {
	NodesVisited    int64            `json:"nodes_visited"`
	LabelProbes     int64            `json:"label_probes"`
	SegScans        int64            `json:"seg_scans,omitempty"`
	SegSkips        int64            `json:"seg_skips,omitempty"`
	HybridLoads     int64            `json:"hybrid_loads,omitempty"`
	CDSameDeferrals int64            `json:"cd_same_deferrals,omitempty"`
	Edges           int64            `json:"edges"`
	Explicit        int64            `json:"explicit"`
	Inferred        int64            `json:"inferred"`
	Shortcut        int64            `json:"shortcut"`
	ByKind          map[string]int64 `json:"by_kind"`
	SliceStmts      int              `json:"slice_stmts"`
	Elapsed         time.Duration    `json:"elapsed_ns"`
}

// Profile snapshots the recorder's counters. Safe on nil (returns an
// empty profile).
func (r *Recorder) Profile() *Profile {
	p := &Profile{ByKind: map[string]int64{}}
	if r == nil {
		return p
	}
	p.NodesVisited = r.visited
	p.HybridLoads = r.hybrid
	p.CDSameDeferrals = r.cdSame
	for k := Kind(0); k < kindCount; k++ {
		n := r.byKind[k]
		if n == 0 {
			continue
		}
		p.ByKind[k.String()] = n
		p.Edges += n
		switch {
		case k.Explicit():
			p.Explicit += n
		case k == KindShortcut:
			p.Shortcut += n
		default:
			p.Inferred += n
		}
	}
	return p
}

// Add folds another profile into p (aggregation across criteria).
func (p *Profile) Add(o *Profile) {
	p.NodesVisited += o.NodesVisited
	p.LabelProbes += o.LabelProbes
	p.SegScans += o.SegScans
	p.SegSkips += o.SegSkips
	p.HybridLoads += o.HybridLoads
	p.CDSameDeferrals += o.CDSameDeferrals
	p.Edges += o.Edges
	p.Explicit += o.Explicit
	p.Inferred += o.Inferred
	p.Shortcut += o.Shortcut
	p.SliceStmts += o.SliceStmts
	p.Elapsed += o.Elapsed
	for k, v := range o.ByKind {
		p.ByKind[k] += v
	}
}
