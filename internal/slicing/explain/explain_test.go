package explain

import (
	"testing"

	"dynslice/internal/ir"
)

func TestNilRecorderIgnoresEverything(t *testing.T) {
	var r *Recorder
	r.Criterion(1, 10)
	r.Visit(2, 11)
	r.HybridLoad()
	r.CDSameDeferral()
	r.Edge(1, 10, false, 0, 2, 9, KindExplicit, false)
	r.EdgeUse(1, 10, false, 0, 3, 1, 9, KindInferredOPT2)
	if _, ok := r.Root(); ok {
		t.Error("nil recorder reported a root")
	}
	if _, ok := r.Witness(2); ok {
		t.Error("nil recorder reconstructed a witness")
	}
	p := r.Profile()
	if p.Edges != 0 || p.NodesVisited != 0 || len(p.ByKind) != 0 {
		t.Errorf("nil recorder profile not empty: %+v", p)
	}
}

func TestKindClassification(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		explicit := k == KindExplicit || k == KindExplicitOPT3 || k == KindExplicitOPT6
		inferred := k >= KindInferredOPT1 && k <= KindInferredAdaptive
		if k.Explicit() != explicit {
			t.Errorf("%s: Explicit() = %v, want %v", k, k.Explicit(), explicit)
		}
		if k.Inferred() != inferred {
			t.Errorf("%s: Inferred() = %v, want %v", k, k.Inferred(), inferred)
		}
	}
	if KindShortcut.Explicit() || KindShortcut.Inferred() {
		t.Error("shortcut classified as explicit or inferred")
	}
}

func TestWitnessSimpleChain(t *testing.T) {
	r := NewRecorder()
	r.Criterion(10, 100)
	// 10@100 --data--> 7@90 --ctrl--> 3@80
	r.Edge(10, 100, false, 0, 7, 90, KindExplicit, false)
	r.Edge(7, 90, false, -1, 3, 80, KindInferredOPT4, true)

	w, ok := r.Witness(3)
	if !ok || !w.Complete {
		t.Fatalf("witness for s3: ok=%v w=%+v", ok, w)
	}
	if len(w.Hops) != 2 {
		t.Fatalf("hops = %d, want 2", len(w.Hops))
	}
	// Criterion-side first.
	if w.Hops[0].FromStmt != 10 || w.Hops[0].ToStmt != 7 || w.Hops[0].CD {
		t.Errorf("hop 0 = %+v", w.Hops[0])
	}
	if w.Hops[1].FromStmt != 7 || w.Hops[1].ToStmt != 3 || !w.Hops[1].CD || w.Hops[1].Kind != KindInferredOPT4 {
		t.Errorf("hop 1 = %+v", w.Hops[1])
	}

	// The criterion statement yields an empty complete chain.
	w, ok = r.Witness(10)
	if !ok || !w.Complete || len(w.Hops) != 0 {
		t.Errorf("criterion witness = %+v ok=%v", w, ok)
	}

	// A statement never reached yields no witness.
	if _, ok := r.Witness(99); ok {
		t.Error("witness for unreached statement")
	}
}

func TestWitnessThroughUsePoint(t *testing.T) {
	r := NewRecorder()
	r.Criterion(10, 100)
	// The criterion's use redirects (OPT-2) to an earlier use point at
	// s7 slot 1, which then resolves the actual definition at s3.
	r.EdgeUse(10, 100, false, 0, 7, 1, 100, KindInferredOPT2)
	r.Edge(7, 100, true, 1, 3, 80, KindExplicit, false)

	w, ok := r.Witness(3)
	if !ok || !w.Complete {
		t.Fatalf("witness for s3: ok=%v w=%+v", ok, w)
	}
	if len(w.Hops) != 2 {
		t.Fatalf("hops = %d, want 2: %+v", len(w.Hops), w.Hops)
	}
	if !w.Hops[0].ToUse || w.Hops[0].ToStmt != 7 || w.Hops[0].ToSlot != 1 || w.Hops[0].Kind != KindInferredOPT2 {
		t.Errorf("hop 0 = %+v, want use-point target s7 slot 1", w.Hops[0])
	}
	if !w.Hops[1].FromUse || w.Hops[1].FromStmt != 7 || w.Hops[1].ToStmt != 3 {
		t.Errorf("hop 1 = %+v, want from use point s7 to s3", w.Hops[1])
	}
	// s7 is a redirect target, not a slice member: no instance witness.
	if _, ok := r.Witness(7); ok {
		t.Error("use-point-only statement produced a witness")
	}
}

func TestEdgeFirstWinsButCountsAll(t *testing.T) {
	r := NewRecorder()
	r.Criterion(10, 100)
	r.Edge(10, 100, false, 0, 3, 80, KindExplicit, false)
	// A later, different path to the same instance: counted, not kept.
	r.Edge(10, 100, false, 1, 3, 80, KindInferredOPT1, false)

	p := r.Profile()
	if p.Edges != 2 || p.Explicit != 1 || p.Inferred != 1 {
		t.Errorf("profile = %+v, want 2 edges split explicit/inferred", p)
	}
	w, _ := r.Witness(3)
	if len(w.Hops) != 1 || w.Hops[0].Kind != KindExplicit {
		t.Errorf("witness kept %+v, want the first (explicit) edge", w.Hops)
	}
}

func TestWitnessIncompleteChainIsBounded(t *testing.T) {
	r := NewRecorder()
	r.Criterion(10, 100)
	// An edge whose consumer was never itself given a predecessor and is
	// not the criterion: the walk must stop and report incomplete.
	r.Edge(8, 50, false, 0, 3, 40, KindExplicit, false)
	w, ok := r.Witness(3)
	if !ok {
		t.Fatal("no witness")
	}
	if w.Complete {
		t.Error("dangling chain reported complete")
	}
	if len(w.Hops) != 1 {
		t.Errorf("hops = %d, want 1", len(w.Hops))
	}
}

func TestProfileAggregation(t *testing.T) {
	r := NewRecorder()
	r.Criterion(1, 10)
	r.Visit(1, 10)
	r.Visit(2, 9)
	r.HybridLoad()
	r.CDSameDeferral()
	r.Edge(1, 10, false, 0, 2, 9, KindExplicitOPT3, false)
	r.Edge(2, 9, false, -1, 3, 8, KindShortcut, false)
	p := r.Profile()
	if p.NodesVisited != 2 || p.HybridLoads != 1 || p.CDSameDeferrals != 1 {
		t.Errorf("profile counters = %+v", p)
	}
	if p.Explicit != 1 || p.Shortcut != 1 || p.Edges != 2 {
		t.Errorf("attribution = %+v", p)
	}
	if p.ByKind["explicit/OPT-3"] != 1 || p.ByKind["shortcut"] != 1 {
		t.Errorf("by-kind = %v", p.ByKind)
	}

	sum := NewRecorder().Profile()
	sum.Add(p)
	sum.Add(p)
	if sum.Edges != 4 || sum.NodesVisited != 4 || sum.ByKind["shortcut"] != 2 {
		t.Errorf("aggregated = %+v", sum)
	}
}

func TestFirstWinsAcrossInstances(t *testing.T) {
	r := NewRecorder()
	r.Criterion(10, 100)
	r.Edge(10, 100, false, 0, 3, 80, KindExplicit, false)
	// The same statement reached again at another timestamp: the witness
	// anchors at the first-reached instance.
	r.Edge(10, 100, false, 1, 3, 60, KindExplicit, false)
	w, ok := r.Witness(ir.StmtID(3))
	if !ok || w.Hops[len(w.Hops)-1].ToTS != 80 {
		t.Errorf("witness anchored at %+v, want ts 80", w.Hops)
	}
}
