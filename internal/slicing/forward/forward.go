// Package forward implements a forward-computation dynamic slicer, the
// algorithm class the paper contrasts with in §5 (Agrawal-Horgan's
// Algorithm IV, Beszedes et al., Korel-Yalamanchili): instead of building
// a dependence graph and traversing it backwards on demand, the slice of
// *every* value is computed eagerly while the program executes — the
// slice of a definition is the union of the slices of its operands and of
// its controlling instance, plus the statement itself.
//
// Slice queries then cost a table lookup, but, as the paper argues,
// "exhaustive precomputation of all dynamic slices at all program points
// produces large amounts of information": every live address pins a full
// slice set. This implementation interns sets and memoizes unions (the
// standard mitigation, cf. the paper's later ROBDD work), which keeps the
// cost proportional to the number of *distinct* slices, and doubles as an
// independent correctness oracle: a forward-computed slice must equal the
// backward-computed one for every criterion.
package forward

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dynslice/internal/ir"
	"dynslice/internal/slicing"
)

// setID names an interned statement set.
type setID int32

const noSet setID = -1

// store interns sorted statement-ID sets and memoizes unions.
type store struct {
	sets      [][]ir.StmtID
	intern    map[string]setID
	unionMemo map[[2]setID]setID
	addMemo   map[int64]setID // (set<<32 | stmt) -> set
}

func newStore() *store {
	return &store{
		intern:    map[string]setID{},
		unionMemo: map[[2]setID]setID{},
		addMemo:   map[int64]setID{},
	}
}

func (st *store) key(s []ir.StmtID) string {
	buf := make([]byte, 0, len(s)*3)
	var tmp [binary.MaxVarintLen64]byte
	for _, id := range s {
		n := binary.PutUvarint(tmp[:], uint64(id))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

func (st *store) put(s []ir.StmtID) setID {
	k := st.key(s)
	if id, ok := st.intern[k]; ok {
		return id
	}
	id := setID(len(st.sets))
	st.sets = append(st.sets, s)
	st.intern[k] = id
	return id
}

// add returns set ∪ {stmt}.
func (st *store) add(a setID, stmt ir.StmtID) setID {
	if a == noSet {
		return st.put([]ir.StmtID{stmt})
	}
	mk := int64(a)<<32 | int64(stmt)
	if id, ok := st.addMemo[mk]; ok {
		return id
	}
	src := st.sets[a]
	i := sort.Search(len(src), func(i int) bool { return src[i] >= stmt })
	var out []ir.StmtID
	if i < len(src) && src[i] == stmt {
		out = src
	} else {
		out = make([]ir.StmtID, 0, len(src)+1)
		out = append(out, src[:i]...)
		out = append(out, stmt)
		out = append(out, src[i:]...)
	}
	id := st.put(out)
	st.addMemo[mk] = id
	return id
}

// union returns a ∪ b.
func (st *store) union(a, b setID) setID {
	if a == b || b == noSet {
		return a
	}
	if a == noSet {
		return b
	}
	if a > b {
		a, b = b, a
	}
	mk := [2]setID{a, b}
	if id, ok := st.unionMemo[mk]; ok {
		return id
	}
	sa, sb := st.sets[a], st.sets[b]
	out := make([]ir.StmtID, 0, len(sa)+len(sb))
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] < sb[j]:
			out = append(out, sa[i])
			i++
		case sa[i] > sb[j]:
			out = append(out, sb[j])
			j++
		default:
			out = append(out, sa[i])
			i++
			j++
		}
	}
	out = append(out, sa[i:]...)
	out = append(out, sb[j:]...)
	id := st.put(out)
	st.unionMemo[mk] = id
	return id
}

type fframe struct {
	fn        *ir.Func
	lastTerm  map[ir.BlockID]setID // block -> slice set of its last terminator execution
	termSeq   map[ir.BlockID]int64 // block -> sequence number of that execution
	callSlice setID                // slice set of the creating call instance
}

// Slicer computes all slices forward during execution. It implements
// trace.Sink.
type Slicer struct {
	p      *ir.Program
	st     *store
	mem    map[int64]setID // address -> slice set of its last definition
	frames []*fframe
	seq    int64
}

// New returns an empty forward slicer.
func New(p *ir.Program) *Slicer {
	return &Slicer{p: p, st: newStore(), mem: map[int64]setID{}}
}

// Block implements trace.Sink.
func (f *Slicer) Block(b *ir.Block) {
	if len(f.frames) == 0 {
		f.frames = append(f.frames, &fframe{
			fn: b.Fn, lastTerm: map[ir.BlockID]setID{},
			termSeq: map[ir.BlockID]int64{}, callSlice: noSet,
		})
	}
}

// control resolves the slice set of the controlling instance for a
// statement of block b (same rule as the backward algorithms: most recent
// same-frame ancestor terminator, or the creating call for entries).
func (f *Slicer) control(b *ir.Block) setID {
	fr := f.frames[len(f.frames)-1]
	best := noSet
	var bestSeq int64 = -1
	for _, h := range b.CDAncestors {
		if sq, ok := fr.termSeq[h.ID]; ok && sq > bestSeq {
			bestSeq = sq
			best = fr.lastTerm[h.ID]
		}
	}
	if bestSeq >= 0 {
		return best
	}
	if len(b.CDAncestors) == 0 && b.Fn != f.p.Main && b == b.Fn.Entry() {
		return fr.callSlice
	}
	return noSet
}

// Stmt implements trace.Sink.
func (f *Slicer) Stmt(s *ir.Stmt, uses, defs []int64) {
	fr := f.frames[len(f.frames)-1]
	cur := f.control(s.Block)
	for _, a := range uses {
		if id, ok := f.mem[a]; ok {
			cur = f.st.union(cur, id)
		}
	}
	cur = f.st.add(cur, s.ID)
	for _, a := range defs {
		f.mem[a] = cur
	}
	switch s.Op {
	case ir.OpCall:
		f.frames = append(f.frames, &fframe{
			fn:        s.Callee,
			lastTerm:  map[ir.BlockID]setID{},
			termSeq:   map[ir.BlockID]int64{},
			callSlice: cur,
		})
	case ir.OpCond, ir.OpReturn:
		fr.lastTerm[s.Block.ID] = cur
		f.seq++
		fr.termSeq[s.Block.ID] = f.seq
		if s.Op == ir.OpReturn && len(f.frames) > 0 {
			f.frames = f.frames[:len(f.frames)-1]
		}
	}
}

// RegionDef implements trace.Sink.
func (f *Slicer) RegionDef(s *ir.Stmt, start, length int64) {
	cur := f.st.add(f.control(s.Block), s.ID)
	for a := start; a < start+length; a++ {
		f.mem[a] = cur
	}
}

// End implements trace.Sink.
func (f *Slicer) End() {}

// DistinctSets reports how many distinct slice sets were materialized —
// the forward approach's space driver.
func (f *Slicer) DistinctSets() int { return len(f.st.sets) }

// Slice implements slicing.Slicer: a table lookup.
func (f *Slicer) Slice(c slicing.Criterion) (*slicing.Slice, *slicing.Stats, error) {
	if c.Stmt >= 0 {
		return nil, nil, fmt.Errorf("forward: instance criteria unsupported")
	}
	id, ok := f.mem[c.Addr]
	if !ok {
		return nil, nil, fmt.Errorf("forward: address %d was never defined", c.Addr)
	}
	out := slicing.NewSlice()
	for _, s := range f.st.sets[id] {
		out.Add(s)
	}
	return out, &slicing.Stats{Instances: int64(out.Len())}, nil
}
