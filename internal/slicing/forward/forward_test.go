package forward

import (
	"testing"

	"dynslice/internal/ir"
)

func TestStoreInternAndUnion(t *testing.T) {
	st := newStore()
	a := st.put([]ir.StmtID{1, 3, 5})
	b := st.put([]ir.StmtID{2, 3, 4})
	if st.put([]ir.StmtID{1, 3, 5}) != a {
		t.Fatal("interning failed: identical content got a new id")
	}
	u := st.union(a, b)
	want := []ir.StmtID{1, 2, 3, 4, 5}
	got := st.sets[u]
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v", got, want)
		}
	}
	if st.union(a, b) != u {
		t.Fatal("union memoization failed")
	}
	if st.union(b, a) != u {
		t.Fatal("union must be symmetric via the memo key ordering")
	}
	if st.union(a, noSet) != a || st.union(noSet, b) != b {
		t.Fatal("union with the empty set must be identity")
	}
}

func TestStoreAdd(t *testing.T) {
	st := newStore()
	a := st.put([]ir.StmtID{2, 4})
	withThree := st.add(a, 3)
	got := st.sets[withThree]
	if len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("add = %v, want [2 3 4]", got)
	}
	if st.add(a, 4) != a {
		t.Fatal("adding a present element must be identity")
	}
	if st.add(noSet, 7) == noSet {
		t.Fatal("adding to the empty set must create a singleton")
	}
}
