// Package fp implements the baseline "full preprocessing" dynamic slicing
// algorithm (paper §2): the complete dynamic dependence graph is built in
// memory, with every exercised dependence instance recorded as an explicit
// timestamp pair. Timestamps are basic-block execution ordinals.
//
// Dynamic control dependences are tracked per call frame (the dynamic
// ancestor of a block execution is the most recent same-frame execution of
// one of its static control-dependence ancestors), and function entries
// are treated as control dependent on their call site, so slices follow
// both data and control across calls.
package fp

import (
	"fmt"
	"sort"

	"dynslice/internal/ir"
	"dynslice/internal/slicing"
	"dynslice/internal/telemetry"
)

type instRef struct {
	stmt ir.StmtID
	ts   int64
}

// DataEdge is one exercised data dependence instance of a use slot.
type DataEdge struct {
	Td, Tu int64
	Def    ir.StmtID
}

// CDEdge is one exercised control dependence instance of a block.
type CDEdge struct {
	Ta, Tb int64
	Anc    ir.StmtID // the controlling branch or call statement
}

// Graph is the full dynamic dependence graph and its builder state. It
// implements trace.Sink; feed it a trace (or run the interpreter with it
// as the sink), then call Slice.
type Graph struct {
	p *ir.Program

	// Builder state.
	ts      int64 // next block ordinal
	curTs   int64 // ordinal of the block being executed
	lastDef map[int64]instRef
	frames  []*frameCtx

	// Graph proper.
	useEdges  [][][]DataEdge // [stmtID][slot] -> edges ordered by Tu
	cdEdges   [][]CDEdge     // [blockID] -> edges ordered by Tb
	dataPairs int64
	cdPairs   int64

	tel *telemetry.Registry // optional; flushed once at End
}

type frameCtx struct {
	fn          *ir.Func
	lastExec    map[ir.BlockID]int64
	callSite    instRef
	hasCallSite bool
}

// NewGraph returns an empty graph/builder for p.
func NewGraph(p *ir.Program) *Graph {
	return &Graph{
		p:        p,
		lastDef:  map[int64]instRef{},
		useEdges: make([][][]DataEdge, len(p.Stmts)),
		cdEdges:  make([][]CDEdge, len(p.Blocks)),
	}
}

// Block implements trace.Sink.
func (g *Graph) Block(b *ir.Block) {
	g.curTs = g.ts
	g.ts++
	if len(g.frames) == 0 {
		g.frames = append(g.frames, &frameCtx{fn: b.Fn, lastExec: map[ir.BlockID]int64{}})
	}
	fr := g.frames[len(g.frames)-1]

	// Dynamic control dependence: most recent same-frame execution of a
	// static ancestor; function entries fall back to the call site.
	bestTs := int64(-1)
	var bestAnc *ir.Block
	for _, anc := range b.CDAncestors {
		if t, ok := fr.lastExec[anc.ID]; ok && t > bestTs {
			bestTs = t
			bestAnc = anc
		}
	}
	if bestAnc != nil {
		term := bestAnc.Terminator()
		g.cdEdges[b.ID] = append(g.cdEdges[b.ID], CDEdge{Ta: bestTs, Tb: g.curTs, Anc: term.ID})
		g.cdPairs++
	} else if fr.hasCallSite && b == b.Fn.Entry() {
		// Interprocedural control dependence: the function entry depends on
		// its call site. Only the entry carries this edge; other blocks
		// without intraprocedural ancestors execute unconditionally within
		// the frame, and the call statement still enters slices through
		// parameter data dependences.
		g.cdEdges[b.ID] = append(g.cdEdges[b.ID], CDEdge{Ta: fr.callSite.ts, Tb: g.curTs, Anc: fr.callSite.stmt})
		g.cdPairs++
	}
	fr.lastExec[b.ID] = g.curTs
}

// Stmt implements trace.Sink.
func (g *Graph) Stmt(s *ir.Stmt, uses, defs []int64) {
	if g.useEdges[s.ID] == nil && len(s.Uses) > 0 {
		g.useEdges[s.ID] = make([][]DataEdge, len(s.Uses))
	}
	for i, a := range uses {
		if d, ok := g.lastDef[a]; ok {
			g.useEdges[s.ID][i] = append(g.useEdges[s.ID][i], DataEdge{Td: d.ts, Tu: g.curTs, Def: d.stmt})
			g.dataPairs++
		}
	}
	for _, a := range defs {
		g.lastDef[a] = instRef{stmt: s.ID, ts: g.curTs}
	}
	switch s.Op {
	case ir.OpCall:
		g.frames = append(g.frames, &frameCtx{
			fn:          s.Callee,
			lastExec:    map[ir.BlockID]int64{},
			callSite:    instRef{stmt: s.ID, ts: g.curTs},
			hasCallSite: true,
		})
	case ir.OpReturn:
		if len(g.frames) > 0 {
			g.frames = g.frames[:len(g.frames)-1]
		}
	}
}

// RegionDef implements trace.Sink.
func (g *Graph) RegionDef(s *ir.Stmt, start, length int64) {
	for a := start; a < start+length; a++ {
		g.lastDef[a] = instRef{stmt: s.ID, ts: g.curTs}
	}
}

// SetTelemetry attaches a registry; the builder keeps plain counters and
// flushes them when the trace ends.
func (g *Graph) SetTelemetry(reg *telemetry.Registry) { g.tel = reg }

// End implements trace.Sink.
func (g *Graph) End() {
	if reg := g.tel; reg != nil {
		reg.Counter("fp.labels.data").Add(g.dataPairs)
		reg.Counter("fp.labels.cd").Add(g.cdPairs)
		reg.Counter("fp.block_execs").Add(g.ts)
		reg.Gauge("fp.graph.size_bytes").Set(g.SizeBytes())
	}
}

// LastDefOf returns the statement instance that last defined addr.
func (g *Graph) LastDefOf(addr int64) (ir.StmtID, int64, bool) {
	d, ok := g.lastDef[addr]
	return d.stmt, d.ts, ok
}

// DataPairs returns the number of data dependence labels.
func (g *Graph) DataPairs() int64 { return g.dataPairs }

// CDPairs returns the number of control dependence labels.
func (g *Graph) CDPairs() int64 { return g.cdPairs }

// LabelPairs returns the total number of explicit timestamp-pair labels.
func (g *Graph) LabelPairs() int64 { return g.dataPairs + g.cdPairs }

// SizeBytes estimates the in-memory size of the graph the way the paper
// reports graph sizes: 16 bytes per timestamp pair plus edge and node
// overheads.
func (g *Graph) SizeBytes() int64 {
	var sz int64
	sz += g.LabelPairs() * 24 // pair + source statement per instance
	sz += int64(len(g.p.Blocks)) * 32
	for _, slots := range g.useEdges {
		sz += int64(len(slots)) * 24
	}
	return sz
}

type instKey struct {
	stmt ir.StmtID
	ts   int64
}

// Slice implements slicing.Slicer.
func (g *Graph) Slice(c slicing.Criterion) (*slicing.Slice, *slicing.Stats, error) {
	stats := &slicing.Stats{}
	var start instRef
	if c.Stmt >= 0 {
		start = instRef{stmt: c.Stmt, ts: c.TS}
	} else {
		d, ok := g.lastDef[c.Addr]
		if !ok {
			return nil, nil, fmt.Errorf("fp: address %d was never defined", c.Addr)
		}
		start = d
	}
	out := slicing.NewSlice()
	visited := map[instKey]bool{}
	work := []instRef{start}
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		k := instKey{in.stmt, in.ts}
		if visited[k] {
			continue
		}
		visited[k] = true
		stats.Instances++
		out.Add(in.stmt)
		s := g.p.Stmt(in.stmt)

		// Data dependences, one per use slot.
		for i := range s.Uses {
			slots := g.useEdges[in.stmt]
			if slots == nil {
				continue
			}
			edges := slots[i]
			j, probes := searchTu(edges, in.ts)
			stats.LabelProbes += probes
			if j >= 0 {
				work = append(work, instRef{stmt: edges[j].Def, ts: edges[j].Td})
			}
		}
		// Control dependence of the enclosing block instance.
		cds := g.cdEdges[s.Block.ID]
		j, probes := searchTb(cds, in.ts)
		stats.LabelProbes += probes
		if j >= 0 {
			work = append(work, instRef{stmt: cds[j].Anc, ts: cds[j].Ta})
		}
	}
	return out, stats, nil
}

// searchTu locates the edge with Tu == ts by binary search (edges are
// appended in increasing Tu order). Returns -1 when absent.
func searchTu(edges []DataEdge, ts int64) (int, int64) {
	lo, hi := 0, len(edges)
	var probes int64
	for lo < hi {
		mid := (lo + hi) / 2
		probes++
		if edges[mid].Tu < ts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(edges) && edges[lo].Tu == ts {
		return lo, probes
	}
	return -1, probes
}

func searchTb(edges []CDEdge, ts int64) (int, int64) {
	lo, hi := 0, len(edges)
	var probes int64
	for lo < hi {
		mid := (lo + hi) / 2
		probes++
		if edges[mid].Tb < ts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(edges) && edges[lo].Tb == ts {
		return lo, probes
	}
	return -1, probes
}

// sortCheck verifies the edge ordering invariant (used by tests).
func (g *Graph) sortCheck() bool {
	for _, slots := range g.useEdges {
		for _, edges := range slots {
			if !sort.SliceIsSorted(edges, func(i, j int) bool { return edges[i].Tu < edges[j].Tu }) {
				return false
			}
		}
	}
	return true
}

// DeltaStream serializes the graph's labeling information as the paper's
// SEQUITUR comparison requires: for every edge list, the sequence of
// tu - td deltas (highly repetitive for regular dependence patterns),
// with a separator symbol between lists. Grammar compression of this
// stream is the baseline the paper reports a 9.18x average factor for.
func (g *Graph) DeltaStream() []int64 {
	const sep = int64(1) << 40
	var out []int64
	for _, slots := range g.useEdges {
		for _, edges := range slots {
			if len(edges) == 0 {
				continue
			}
			for _, e := range edges {
				out = append(out, e.Tu-e.Td)
			}
			out = append(out, sep)
		}
	}
	for _, edges := range g.cdEdges {
		if len(edges) == 0 {
			continue
		}
		for _, e := range edges {
			out = append(out, e.Tb-e.Ta)
		}
		out = append(out, sep)
	}
	return out
}
