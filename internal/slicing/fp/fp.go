// Package fp implements the baseline "full preprocessing" dynamic slicing
// algorithm (paper §2): the complete dynamic dependence graph is built in
// memory, with every exercised dependence instance recorded as an explicit
// timestamp pair. Timestamps are basic-block execution ordinals.
//
// Dynamic control dependences are tracked per call frame (the dynamic
// ancestor of a block execution is the most recent same-frame execution of
// one of its static control-dependence ancestors), and function entries
// are treated as control dependent on their call site, so slices follow
// both data and control across calls.
//
// Dependence storage is columnar: each use slot (and each block's control
// edges) owns one labelblock.List whose aux column carries the producing
// statement, instead of a []struct of 24-byte edges. Block ordinals only
// grow, so every list is append-sorted and seals into delta-varint blocks
// as it fills.
package fp

import (
	"fmt"
	"slices"
	"sync/atomic"
	"unsafe"

	"dynslice/internal/ir"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/explain"
	"dynslice/internal/slicing/labelblock"
	"dynslice/internal/telemetry"
)

type instRef struct {
	stmt ir.StmtID
	ts   int64
}

// DataEdge is one exercised data dependence instance of a use slot
// (decoded view; storage is columnar).
type DataEdge struct {
	Td, Tu int64
	Def    ir.StmtID
}

// CDEdge is one exercised control dependence instance of a block
// (decoded view; storage is columnar).
type CDEdge struct {
	Ta, Tb int64
	Anc    ir.StmtID // the controlling branch or call statement
}

// Graph is the full dynamic dependence graph and its builder state. It
// implements trace.Sink; feed it a trace (or run the interpreter with it
// as the sink), then call Slice.
type Graph struct {
	p *ir.Program

	// Builder state.
	ts      int64 // next block ordinal
	curTs   int64 // ordinal of the block being executed
	lastDef map[int64]instRef
	frames  []*frameCtx

	// Snapshot-loaded graphs carry the last-definition table as sorted
	// parallel arrays instead of the builder's map (lastDef == nil):
	// bulk array fills load an order of magnitude faster than map
	// inserts, and criterion resolution only needs one binary search per
	// query. defOf dispatches between the two forms.
	defAddrs []int64
	defRefs  []instRef

	// Graph proper: per use slot / per block, a compressed (Td, Tu) list
	// whose aux column is the producing statement ID.
	useEdges  [][]labelblock.List // [stmtID][slot] -> pairs ordered by Tu
	cdEdges   []labelblock.List   // [blockID] -> pairs ordered by Tb
	dataPairs int64
	cdPairs   int64

	mem   *labelblock.Arena
	plain bool // -compact=false escape hatch: flat []Pair tails, no blocks
	enc   *labelblock.Encoder

	workers atomic.Int32 // batched-query pool bound; 0 = GOMAXPROCS

	tel *telemetry.Registry // optional; flushed once at End
}

type frameCtx struct {
	fn          *ir.Func
	lastExec    map[ir.BlockID]int64
	callSite    instRef
	hasCallSite bool
}

// NewGraph returns an empty graph/builder for p.
func NewGraph(p *ir.Program) *Graph {
	g := &Graph{
		p:        p,
		lastDef:  map[int64]instRef{},
		useEdges: make([][]labelblock.List, len(p.Stmts)),
		cdEdges:  make([]labelblock.List, len(p.Blocks)),
		mem:      labelblock.NewArena(),
	}
	for i := range g.cdEdges {
		g.cdEdges[i] = labelblock.NewList(false, true)
	}
	return g
}

// SetPlainLabels disables block compaction (the -compact=false escape
// hatch): labels stay in flat uncompressed slices laid out exactly as the
// previous representation stored them. Must be called before feeding the
// trace.
func (g *Graph) SetPlainLabels(on bool) {
	g.plain = on
	for i := range g.cdEdges {
		g.cdEdges[i] = labelblock.NewList(on, true)
	}
}

// SetParallelEncode enables epoch-parallel construction: filled label
// epochs are sealed by n encode workers (n <= 0: GOMAXPROCS) off the
// resolver's critical path. Must be called before feeding the trace;
// incompatible with SetPlainLabels (plain lists never seal).
func (g *Graph) SetParallelEncode(n int) {
	g.enc = labelblock.NewEncoder(n)
}

// Block implements trace.Sink.
func (g *Graph) Block(b *ir.Block) {
	g.curTs = g.ts
	g.ts++
	if len(g.frames) == 0 {
		g.frames = append(g.frames, &frameCtx{fn: b.Fn, lastExec: map[ir.BlockID]int64{}})
	}
	fr := g.frames[len(g.frames)-1]

	// Dynamic control dependence: most recent same-frame execution of a
	// static ancestor; function entries fall back to the call site.
	bestTs := int64(-1)
	var bestAnc *ir.Block
	for _, anc := range b.CDAncestors {
		if t, ok := fr.lastExec[anc.ID]; ok && t > bestTs {
			bestTs = t
			bestAnc = anc
		}
	}
	if bestAnc != nil {
		term := bestAnc.Terminator()
		g.cdEdges[b.ID].AppendEnc(g.mem, g.enc, labelblock.Pair{Td: bestTs, Tu: g.curTs}, int32(term.ID))
		g.cdPairs++
	} else if fr.hasCallSite && b == b.Fn.Entry() {
		// Interprocedural control dependence: the function entry depends on
		// its call site. Only the entry carries this edge; other blocks
		// without intraprocedural ancestors execute unconditionally within
		// the frame, and the call statement still enters slices through
		// parameter data dependences.
		g.cdEdges[b.ID].AppendEnc(g.mem, g.enc, labelblock.Pair{Td: fr.callSite.ts, Tu: g.curTs}, int32(fr.callSite.stmt))
		g.cdPairs++
	}
	fr.lastExec[b.ID] = g.curTs
}

// Stmt implements trace.Sink.
func (g *Graph) Stmt(s *ir.Stmt, uses, defs []int64) {
	if g.useEdges[s.ID] == nil && len(s.Uses) > 0 {
		slots := make([]labelblock.List, len(s.Uses))
		for i := range slots {
			slots[i] = labelblock.NewList(g.plain, true)
		}
		g.useEdges[s.ID] = slots
	}
	for i, a := range uses {
		if d, ok := g.lastDef[a]; ok {
			g.useEdges[s.ID][i].AppendEnc(g.mem, g.enc, labelblock.Pair{Td: d.ts, Tu: g.curTs}, int32(d.stmt))
			g.dataPairs++
		}
	}
	for _, a := range defs {
		g.lastDef[a] = instRef{stmt: s.ID, ts: g.curTs}
	}
	switch s.Op {
	case ir.OpCall:
		g.frames = append(g.frames, &frameCtx{
			fn:          s.Callee,
			lastExec:    map[ir.BlockID]int64{},
			callSite:    instRef{stmt: s.ID, ts: g.curTs},
			hasCallSite: true,
		})
	case ir.OpReturn:
		if len(g.frames) > 0 {
			g.frames = g.frames[:len(g.frames)-1]
		}
	}
}

// RegionDef implements trace.Sink.
func (g *Graph) RegionDef(s *ir.Stmt, start, length int64) {
	for a := start; a < start+length; a++ {
		g.lastDef[a] = instRef{stmt: s.ID, ts: g.curTs}
	}
}

// SetTelemetry attaches a registry; the builder keeps plain counters and
// flushes them when the trace ends.
func (g *Graph) SetTelemetry(reg *telemetry.Registry) { g.tel = reg }

// End implements trace.Sink. Every list is compacted (short clean tails
// sealed) so the frozen graph sits at maximum compression and lookups
// never mutate it — required for concurrent SliceAll.
func (g *Graph) End() {
	g.enc.Drain()
	for _, slots := range g.useEdges {
		for i := range slots {
			slots[i].Compact(g.mem, false)
		}
	}
	for i := range g.cdEdges {
		g.cdEdges[i].Compact(g.mem, false)
	}
	if reg := g.tel; reg != nil {
		if g.enc != nil {
			reg.Gauge("build.epoch.workers").Set(int64(g.enc.Workers()))
			reg.Counter("build.epoch.blocks").Add(g.enc.Blocks())
		}
		reg.Counter("fp.labels.data").Add(g.dataPairs)
		reg.Counter("fp.labels.cd").Add(g.cdPairs)
		reg.Counter("fp.block_execs").Add(g.ts)
		reg.Gauge("fp.graph.size_bytes").Set(g.SizeBytes())
		reg.Gauge("fp.graph.bytes.labels").Set(g.LabelBytes())
		reg.Gauge("fp.graph.bytes.edges").Set(g.EdgeBytes())
		reg.Gauge("fp.graph.bytes.resident").Set(g.ResidentBytes())
	}
}

// LastDefOf returns the statement instance that last defined addr.
func (g *Graph) LastDefOf(addr int64) (ir.StmtID, int64, bool) {
	d, ok := g.defOf(addr)
	return d.stmt, d.ts, ok
}

// defOf resolves the last definition of addr in either table form: the
// builder's map, or a loaded graph's sorted arrays.
func (g *Graph) defOf(addr int64) (instRef, bool) {
	if g.lastDef != nil {
		d, ok := g.lastDef[addr]
		return d, ok
	}
	if i, ok := slices.BinarySearch(g.defAddrs, addr); ok {
		return g.defRefs[i], true
	}
	return instRef{}, false
}

// DataPairs returns the number of data dependence labels.
func (g *Graph) DataPairs() int64 { return g.dataPairs }

// CDPairs returns the number of control dependence labels.
func (g *Graph) CDPairs() int64 { return g.cdPairs }

// LabelPairs returns the total number of explicit timestamp-pair labels.
func (g *Graph) LabelPairs() int64 { return g.dataPairs + g.cdPairs }

// SizeBytes estimates the in-memory size of the graph the way the paper
// reports graph sizes: 16 bytes per timestamp pair plus edge and node
// overheads. (This is the Table 2 accounting model; ResidentBytes reports
// what the compact representation actually occupies.)
func (g *Graph) SizeBytes() int64 {
	var sz int64
	sz += g.LabelPairs() * 24 // pair + source statement per instance
	sz += int64(len(g.p.Blocks)) * 32
	for _, slots := range g.useEdges {
		sz += int64(len(slots)) * 24
	}
	return sz
}

// LabelBytes reports the actual resident bytes of label storage: encoded
// block payloads, headers, and uncompressed tails across every list.
func (g *Graph) LabelBytes() int64 {
	var sz int64
	for _, slots := range g.useEdges {
		for i := range slots {
			sz += slots[i].MemBytes()
		}
	}
	for i := range g.cdEdges {
		sz += g.cdEdges[i].MemBytes()
	}
	return sz
}

// EdgeBytes reports the columnar slot-table overhead: one List header per
// use slot and per block, plus the per-statement spine.
func (g *Graph) EdgeBytes() int64 {
	listSz := int64(unsafe.Sizeof(labelblock.List{}))
	var sz int64
	sz += int64(len(g.useEdges)) * int64(unsafe.Sizeof([]labelblock.List{}))
	for _, slots := range g.useEdges {
		sz += int64(cap(slots)) * listSz
	}
	sz += int64(cap(g.cdEdges)) * listSz
	return sz
}

// ResidentBytes is the actual footprint of the frozen graph: labels plus
// the slot tables.
func (g *Graph) ResidentBytes() int64 { return g.LabelBytes() + g.EdgeBytes() }

var _ slicing.Explainer = (*Graph)(nil)

type instKey struct {
	stmt ir.StmtID
	ts   int64
}

// Slice implements slicing.Slicer.
func (g *Graph) Slice(c slicing.Criterion) (*slicing.Slice, *slicing.Stats, error) {
	return g.SliceObserved(c, nil)
}

// SliceObserved implements slicing.Explainer: the same traversal as
// Slice, recording each traversed dependence into rec when non-nil.
// Every FP dependence is an explicit stored label, so all hops carry
// explain.KindExplicit — FP is the accounting baseline the OPT
// attribution is compared against.
func (g *Graph) SliceObserved(c slicing.Criterion, rec *explain.Recorder) (*slicing.Slice, *slicing.Stats, error) {
	stats := &slicing.Stats{}
	var start instRef
	if c.Stmt >= 0 {
		start = instRef{stmt: c.Stmt, ts: c.TS}
	} else {
		d, ok := g.defOf(c.Addr)
		if !ok {
			return nil, nil, fmt.Errorf("fp: address %d was never defined", c.Addr)
		}
		start = d
	}
	if rec != nil {
		rec.Criterion(start.stmt, start.ts)
	}
	out := slicing.NewSlice()
	visited := map[instKey]bool{}
	work := []instRef{start}
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		k := instKey{in.stmt, in.ts}
		if visited[k] {
			continue
		}
		visited[k] = true
		stats.Instances++
		if rec != nil {
			rec.Visit(in.stmt, in.ts)
		}
		out.Add(in.stmt)
		s := g.p.Stmt(in.stmt)

		// Data dependences, one per use slot.
		for i := range s.Uses {
			slots := g.useEdges[in.stmt]
			if slots == nil {
				continue
			}
			td, def, probes, found := slots[i].Find(in.ts)
			stats.LabelProbes += probes
			if found {
				if rec != nil {
					rec.Edge(in.stmt, in.ts, false, int32(i), ir.StmtID(def), td, explain.KindExplicit, false)
				}
				work = append(work, instRef{stmt: ir.StmtID(def), ts: td})
			}
		}
		// Control dependence of the enclosing block instance.
		ta, anc, probes, found := g.cdEdges[s.Block.ID].Find(in.ts)
		stats.LabelProbes += probes
		if found {
			if rec != nil {
				rec.Edge(in.stmt, in.ts, false, -1, ir.StmtID(anc), ta, explain.KindExplicit, true)
			}
			work = append(work, instRef{stmt: ir.StmtID(anc), ts: ta})
		}
	}
	return out, stats, nil
}

// sortCheck verifies the edge ordering invariant on the decoded lists
// (used by tests).
func (g *Graph) sortCheck() bool {
	sorted := func(l *labelblock.List) bool {
		pairs := l.Pairs(nil)
		for i := 1; i < len(pairs); i++ {
			if pairs[i].Tu < pairs[i-1].Tu {
				return false
			}
		}
		return true
	}
	for _, slots := range g.useEdges {
		for i := range slots {
			if !sorted(&slots[i]) {
				return false
			}
		}
	}
	for i := range g.cdEdges {
		if !sorted(&g.cdEdges[i]) {
			return false
		}
	}
	return true
}

// DeltaStream serializes the graph's labeling information as the paper's
// SEQUITUR comparison requires: for every edge list, the sequence of
// tu - td deltas (highly repetitive for regular dependence patterns),
// with a separator symbol between lists. Grammar compression of this
// stream is the baseline the paper reports a 9.18x average factor for.
func (g *Graph) DeltaStream() []int64 {
	const sep = int64(1) << 40
	var out []int64
	var pairs []labelblock.Pair
	emit := func(l *labelblock.List) {
		if l.Len() == 0 {
			return
		}
		pairs = l.Pairs(pairs[:0])
		for _, e := range pairs {
			out = append(out, e.Tu-e.Td)
		}
		out = append(out, sep)
	}
	for _, slots := range g.useEdges {
		for i := range slots {
			emit(&slots[i])
		}
	}
	for i := range g.cdEdges {
		emit(&g.cdEdges[i])
	}
	return out
}
