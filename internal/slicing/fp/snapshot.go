// Graph snapshot codec: the frozen FP graph's queryable state — block
// ordinal counter, last-definition table, and the columnar label lists —
// serialized for the single-read on-disk graph image
// (internal/slicing/snapshot). Builder-only state (frames, encoder,
// arena free lists) is not persisted; a loaded graph is frozen and
// answers queries exactly like the graph it was saved from.
package fp

import (
	"encoding/binary"
	"sort"

	"dynslice/internal/ir"
	"dynslice/internal/slicing/labelblock"
)

func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }
func unzig(u uint64) int64  { return int64(u>>1) ^ -int64(u&1) }

// AppendSnapshot serializes the frozen graph (call after End). The
// encoding is deterministic: map-backed state is emitted in sorted order,
// so identical graphs produce identical bytes (the golden-snapshot format
// guard relies on this).
func (g *Graph) AppendSnapshot(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(g.ts))
	dst = binary.AppendUvarint(dst, uint64(g.dataPairs))
	dst = binary.AppendUvarint(dst, uint64(g.cdPairs))
	if g.plain {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}

	// Last-definition table, sorted by address for deterministic bytes.
	// A loaded graph already holds it as sorted arrays (lastDef == nil).
	addrs, refs := g.defAddrs, g.defRefs
	if g.lastDef != nil {
		addrs = make([]int64, 0, len(g.lastDef))
		for a := range g.lastDef {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		refs = make([]instRef, len(addrs))
		for i, a := range addrs {
			refs[i] = g.lastDef[a]
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(addrs)))
	prev := int64(0)
	for i, a := range addrs {
		dst = binary.AppendUvarint(dst, zigzag(a-prev))
		dst = binary.AppendUvarint(dst, uint64(refs[i].stmt))
		dst = binary.AppendUvarint(dst, uint64(refs[i].ts))
		prev = a
	}

	// Columnar label lists: per statement its use-slot lists (0 slots =
	// statement never executed), then per block its control list.
	dst = binary.AppendUvarint(dst, uint64(len(g.useEdges)))
	for _, slots := range g.useEdges {
		dst = binary.AppendUvarint(dst, uint64(len(slots)))
		for i := range slots {
			dst = labelblock.AppendList(dst, &slots[i])
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(g.cdEdges)))
	for i := range g.cdEdges {
		dst = labelblock.AppendList(dst, &g.cdEdges[i])
	}
	return dst
}

// LoadSnapshot reconstructs a frozen graph from AppendSnapshot bytes.
// Sealed block payloads alias data — the caller keeps the snapshot buffer
// reachable for the graph's lifetime — so loading does no per-label
// decode. Errors are classified *labelblock.CorruptError values.
func LoadSnapshot(p *ir.Program, data []byte) (*Graph, error) {
	g := &Graph{
		p:   p,
		mem: labelblock.NewArena(),
	}
	var ts, dp, cp uint64
	var err error
	if ts, data, err = snapUvarint(data, "timestamp counter"); err != nil {
		return nil, err
	}
	if dp, data, err = snapUvarint(data, "data pair count"); err != nil {
		return nil, err
	}
	if cp, data, err = snapUvarint(data, "cd pair count"); err != nil {
		return nil, err
	}
	g.ts = int64(ts)
	g.dataPairs = int64(dp)
	g.cdPairs = int64(cp)
	if len(data) == 0 {
		return nil, labelblock.Corrupt(labelblock.ClassTruncated, "fp: data ends before plain flag")
	}
	g.plain = data[0] != 0
	data = data[1:]

	nDefs, data, err := snapUvarint(data, "lastDef count")
	if err != nil {
		return nil, err
	}
	if nDefs > uint64(len(data)) {
		// Every entry costs at least one byte; reject before allocating.
		return nil, labelblock.Corrupt(labelblock.ClassTruncated, "fp: lastDef count %d exceeds remaining data", nDefs)
	}
	// Bulk-fill the sorted-array form (defOf binary-searches it); the
	// builder's map would cost a hashed insert per address here.
	g.defAddrs = make([]int64, nDefs)
	g.defRefs = make([]instRef, nDefs)
	prev := int64(0)
	for i := uint64(0); i < nDefs; i++ {
		var da, st, dts uint64
		if da, data, err = snapUvarint(data, "lastDef addr"); err != nil {
			return nil, err
		}
		if st, data, err = snapUvarint(data, "lastDef stmt"); err != nil {
			return nil, err
		}
		if dts, data, err = snapUvarint(data, "lastDef ts"); err != nil {
			return nil, err
		}
		addr := prev + unzig(da)
		if i > 0 && addr <= prev {
			return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "fp: lastDef addresses not strictly ascending")
		}
		prev = addr
		if st >= uint64(len(p.Stmts)) {
			return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "fp: lastDef stmt %d out of range", st)
		}
		g.defAddrs[i] = addr
		g.defRefs[i] = instRef{stmt: ir.StmtID(st), ts: int64(dts)}
	}

	nStmts, data, err := snapUvarint(data, "useEdges length")
	if err != nil {
		return nil, err
	}
	if nStmts != uint64(len(p.Stmts)) {
		return nil, labelblock.Corrupt(labelblock.ClassBadBlock,
			"fp: snapshot has %d statements, program has %d", nStmts, len(p.Stmts))
	}
	g.useEdges = make([][]labelblock.List, nStmts)
	for si := range g.useEdges {
		var nSlots uint64
		if nSlots, data, err = snapUvarint(data, "use slot count"); err != nil {
			return nil, err
		}
		if nSlots == 0 {
			continue
		}
		if nSlots != uint64(len(p.Stmts[si].Uses)) {
			return nil, labelblock.Corrupt(labelblock.ClassBadBlock,
				"fp: statement %d has %d use slots, snapshot has %d", si, len(p.Stmts[si].Uses), nSlots)
		}
		slots := make([]labelblock.List, nSlots)
		for i := range slots {
			if slots[i], data, err = labelblock.DecodeList(data); err != nil {
				return nil, err
			}
		}
		g.useEdges[si] = slots
	}
	nBlocks, data, err := snapUvarint(data, "cdEdges length")
	if err != nil {
		return nil, err
	}
	if nBlocks != uint64(len(p.Blocks)) {
		return nil, labelblock.Corrupt(labelblock.ClassBadBlock,
			"fp: snapshot has %d blocks, program has %d", nBlocks, len(p.Blocks))
	}
	g.cdEdges = make([]labelblock.List, nBlocks)
	for i := range g.cdEdges {
		if g.cdEdges[i], data, err = labelblock.DecodeList(data); err != nil {
			return nil, err
		}
	}
	if len(data) != 0 {
		return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "fp: %d trailing bytes after snapshot", len(data))
	}
	return g, nil
}

// snapUvarint decodes one uvarint with an inline fast path: the error
// context string is only materialized on failure — building "fp: "+what
// eagerly costs a concat + alloc per field and dominated load time.
func snapUvarint(data []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n > 0 {
		return v, data[n:], nil
	}
	if n == 0 {
		return 0, nil, labelblock.Corrupt(labelblock.ClassTruncated, "fp: data ends inside %s", what)
	}
	return 0, nil, labelblock.Corrupt(labelblock.ClassBadBlock, "fp: varint overflow in %s", what)
}
