package fp

import (
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/slicing"
)

func build(t *testing.T, src string, input ...int64) (*Graph, *ir.Program) {
	t.Helper()
	p, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph(p)
	if _, err := interp.Run(p, interp.Options{Input: input, Sink: g}); err != nil {
		t.Fatal(err)
	}
	return g, p
}

func addrOf(p *ir.Program, name string) int64 {
	for _, o := range p.Globals {
		if o.Name == name {
			return interp.GlobalBase + o.Off
		}
	}
	return -1
}

func TestEdgeOrderingInvariant(t *testing.T) {
	g, _ := build(t, `
	var s = 0;
	func f(n) { if (n > 1) { return n + f(n - 1); } return 1; }
	func main() {
		s = f(12);
		var i = 0;
		while (i < 50) { s = s + i; i = i + 1; }
		print(s);
	}`)
	if !g.sortCheck() {
		t.Fatal("per-slot edge lists are not Tu-sorted")
	}
}

func TestLabelCountsMatchExercisedDependences(t *testing.T) {
	// Straight-line program: every use with a producer contributes exactly
	// one data pair; control pairs are zero in main's unconditional code.
	g, _ := build(t, `
	func main() {
		var a = 1;       // no uses
		var b = a + 2;   // 1 use
		var c = a + b;   // 2 uses
		print(c);        // 1 use
	}`)
	if g.DataPairs() != 4 {
		t.Errorf("data pairs = %d, want 4", g.DataPairs())
	}
	if g.CDPairs() != 0 {
		t.Errorf("cd pairs = %d, want 0 for straight-line main", g.CDPairs())
	}
}

func TestSliceStopsAtInputs(t *testing.T) {
	g, p := build(t, `
	var r = 0;
	func main() {
		var v = input();
		r = v * 2;
		print(r);
	}`, 21)
	sl, _, err := g.Slice(slicing.AddrCriterion(addrOf(p, "r")))
	if err != nil {
		t.Fatal(err)
	}
	// Slice: r = v*2 and v = input() (plus nothing else).
	lines := map[int]bool{}
	for _, id := range sl.Stmts() {
		lines[p.Stmt(id).Pos.Line] = true
	}
	if !lines[4] || !lines[5] {
		t.Fatalf("slice lines = %v, want {4,5}", lines)
	}
	if lines[6] {
		t.Fatal("the print must not be in the slice of r's last definition")
	}
}

func TestControlChainThroughLoops(t *testing.T) {
	g, p := build(t, `
	var hit = 0;
	func main() {
		var i = 0;
		while (i < 10) {
			if (i == 7) { hit = 1; }
			i = i + 1;
		}
		print(hit);
	}`)
	sl, _, err := g.Slice(slicing.AddrCriterion(addrOf(p, "hit")))
	if err != nil {
		t.Fatal(err)
	}
	lines := map[int]bool{}
	for _, id := range sl.Stmts() {
		lines[p.Stmt(id).Pos.Line] = true
	}
	// hit=1 is control dependent on the if, which depends on i, which the
	// loop maintains: all of lines 4-7 participate.
	for _, want := range []int{4, 5, 6, 7} {
		if !lines[want] {
			t.Errorf("line %d missing from slice: %v", want, lines)
		}
	}
}

func TestInstanceCriterion(t *testing.T) {
	g, p := build(t, `
	var x = 0;
	func main() {
		x = 1;
		x = x + 1;
		print(x);
	}`)
	// Find the instance of the SECOND assignment via the final last-def.
	stmt, ts, ok := g.LastDefOf(addrOf(p, "x"))
	if !ok {
		t.Fatal("x never defined")
	}
	sl, _, err := g.Slice(slicing.Criterion{Stmt: stmt, TS: ts, Addr: -1})
	if err != nil {
		t.Fatal(err)
	}
	if sl.Len() != 2 {
		t.Fatalf("slice has %d statements, want 2 (both assignments)", sl.Len())
	}
}
