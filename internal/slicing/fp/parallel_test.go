package fp

import (
	"sort"
	"sync"
	"testing"

	"dynslice/internal/slicing"
)

const batchSrc = `
var total = 0;
var arr[80];

func addup(k) {
	var j = 0;
	var acc = 0;
	while (j < k) {
		acc = acc + arr[j];
		j = j + 1;
	}
	return acc;
}

func main() {
	var i = 0;
	while (i < 80) {
		arr[i] = i * 3;
		if (i % 4 == 0) {
			total = total + addup(i);
		}
		i = i + 1;
	}
	print(total);
}
`

func definedAddrs(g *Graph) []int64 {
	addrs := make([]int64, 0, len(g.lastDef))
	for a := range g.lastDef {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// TestSliceAllMatchesSequential: the batched FP traversal must reproduce
// the sequential slice for every defined address, crossing the
// 64-criterion chunk boundary.
func TestSliceAllMatchesSequential(t *testing.T) {
	g, _ := build(t, batchSrc)
	addrs := definedAddrs(g)
	if len(addrs) <= 64 {
		t.Fatalf("want >64 criteria, have %d", len(addrs))
	}
	cs := make([]slicing.Criterion, len(addrs))
	for i, a := range addrs {
		cs[i] = slicing.AddrCriterion(a)
	}
	batched, _, err := g.SliceAll(cs)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		seq, _, err := g.Slice(slicing.AddrCriterion(a))
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(batched[i]) {
			t.Fatalf("addr %d: batched (%d stmts) != sequential (%d stmts)",
				a, batched[i].Len(), seq.Len())
		}
	}
	if _, _, err := g.SliceAll([]slicing.Criterion{slicing.AddrCriterion(1 << 40)}); err == nil {
		t.Error("undefined address: want error")
	}
}

// TestSliceAllWorkerSweep crosses scheduler pool sizes with criteria
// counts straddling the 64-bit chunk boundaries (1, 63, 64, 65, and 200
// with duplicated addresses): every combination must reproduce the
// sequential answer slice for slice.
func TestSliceAllWorkerSweep(t *testing.T) {
	g, _ := build(t, batchSrc)
	addrs := definedAddrs(g)
	seq := map[int64]*slicing.Slice{}
	for _, a := range addrs {
		sl, _, err := g.Slice(slicing.AddrCriterion(a))
		if err != nil {
			t.Fatal(err)
		}
		seq[a] = sl
	}
	for _, workers := range []int{1, 2, 8} {
		g.SetWorkers(workers)
		for _, n := range []int{1, 63, 64, 65, 200} {
			picked := make([]int64, n)
			cs := make([]slicing.Criterion, n)
			for i := 0; i < n; i++ {
				picked[i] = addrs[i%len(addrs)] // >len(addrs) duplicates criteria
				cs[i] = slicing.AddrCriterion(picked[i])
			}
			outs, _, err := g.SliceAll(cs)
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, a := range picked {
				if !outs[i].Equal(seq[a]) {
					t.Fatalf("workers=%d n=%d: addr %d diverged from sequential", workers, n, a)
				}
			}
		}
	}
	g.SetWorkers(0)
}

// TestConcurrentSlice checks the FP graph is safe for parallel post-build
// queries (meaningful under -race).
func TestConcurrentSlice(t *testing.T) {
	g, _ := build(t, batchSrc)
	addrs := definedAddrs(g)
	cs := make([]slicing.Criterion, len(addrs))
	want := make([]*slicing.Slice, len(addrs))
	for i, a := range addrs {
		cs[i] = slicing.AddrCriterion(a)
		sl, _, err := g.Slice(cs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sl
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				for i, c := range cs {
					sl, _, err := g.Slice(c)
					if err != nil || !sl.Equal(want[i]) {
						t.Errorf("worker %d: addr %d diverged (err=%v)", w, c.Addr, err)
						return
					}
				}
			} else {
				outs, _, err := g.SliceAll(cs)
				if err != nil {
					t.Error(err)
					return
				}
				for i := range outs {
					if !outs[i].Equal(want[i]) {
						t.Errorf("worker %d: batched addr %d diverged", w, cs[i].Addr)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
