package fp

import (
	"fmt"

	"dynslice/internal/ir"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/batch"
	"dynslice/internal/slicing/labelblock"
)

// SetWorkers bounds the worker pool batched queries (SliceAll) run on;
// n <= 0 means GOMAXPROCS. Atomic, so concurrent engine callers may
// retune it between (but not during) their own queries.
func (g *Graph) SetWorkers(n int) { g.workers.Store(int32(n)) }

// fpKey packs a statement instance into a scheduler key.
func fpKey(stmt ir.StmtID, ts int64) batch.Key {
	return batch.Key{K1: uint64(uint32(stmt)), K2: uint64(ts)}
}

// SliceAll implements slicing.MultiSlicer: N criteria are answered in one
// work-stealing traversal per 64-criterion chunk. Each statement instance
// carries a bitmask of the criteria whose slices reach it, merged through
// the shared flat visited table (internal/slicing/batch), so a subgraph
// shared by several slices is walked — and its per-slot label searches
// performed — once instead of once per criterion. Per-worker label-block
// cursors answer clustered probes from one decoded block (the
// block-granular merge). Every returned slice is identical to what Slice
// would produce; the aggregate stats count each unique instance and label
// probe once.
func (g *Graph) SliceAll(cs []slicing.Criterion) ([]*slicing.Slice, *slicing.Stats, error) {
	stats := &slicing.Stats{}
	outs := make([]*slicing.Slice, len(cs))
	seeds := make([]instRef, len(cs))
	for i, c := range cs {
		if c.Stmt >= 0 {
			seeds[i] = instRef{stmt: c.Stmt, ts: c.TS}
		} else {
			d, ok := g.defOf(c.Addr)
			if !ok {
				return nil, nil, fmt.Errorf("fp: address %d was never defined", c.Addr)
			}
			seeds[i] = d
		}
		outs[i] = slicing.NewSlice()
	}
	var blockHits int64
	cfg := batch.Config{
		Workers:    int(g.workers.Load()),
		NumStmts:   len(g.p.Stmts),
		Expand:     g.expandInstance,
		NewScratch: func() any { return labelblock.NewCursorCache() },
		FinishScratch: func(sc any) {
			if cc, ok := sc.(*labelblock.CursorCache); ok {
				blockHits += cc.Hits
			}
		},
	}
	var ctr batch.Counters
	for base := 0; base < len(cs); base += 64 {
		chunk := min(64, len(cs)-base)
		tasks := make([]batch.Task, chunk)
		for j := 0; j < chunk; j++ {
			s := seeds[base+j]
			tasks[j] = batch.Task{K: fpKey(s.stmt, s.ts), Mask: uint64(1) << j}
		}
		masks, st, c := batch.Run(cfg, tasks)
		batch.MaskSlices(masks, outs[base:base+chunk])
		stats.Instances += st.Instances
		stats.LabelProbes += st.LabelProbes
		ctr.Steals += c.Steals
		ctr.Merges += c.Merges
	}
	if reg := g.tel; reg != nil {
		reg.Counter("slice.batch.steals").Add(ctr.Steals)
		reg.Counter("slice.batch.block_merges").Add(ctr.Merges + blockHits)
	}
	return outs, stats, nil
}

// expandInstance resolves one statement instance's dependences — the same
// per-slot and control-edge Finds the sequential SliceObserved performs,
// answered through the worker's block cursors.
func (g *Graph) expandInstance(k batch.Key, stats *slicing.Stats, scratch any) *batch.Expansion {
	cc, _ := scratch.(*labelblock.CursorCache)
	stmt := ir.StmtID(int32(uint32(k.K1)))
	ts := int64(k.K2)
	stats.Instances++
	exp := &batch.Expansion{Stmts: []ir.StmtID{stmt}}
	s := g.p.Stmt(stmt)
	slots := g.useEdges[stmt]
	for i := range s.Uses {
		if slots == nil {
			continue
		}
		td, def, probes, found := cc.Find(&slots[i], ts)
		stats.LabelProbes += probes
		if found {
			exp.Targets = append(exp.Targets, fpKey(ir.StmtID(def), td))
		}
	}
	ta, anc, probes, found := cc.Find(&g.cdEdges[s.Block.ID], ts)
	stats.LabelProbes += probes
	if found {
		exp.Targets = append(exp.Targets, fpKey(ir.StmtID(anc), ta))
	}
	return exp
}
