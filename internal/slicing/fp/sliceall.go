package fp

import (
	"fmt"
	"math/bits"

	"dynslice/internal/ir"
	"dynslice/internal/slicing"
)

// SliceAll implements slicing.MultiSlicer: N criteria are answered in one
// traversal per 64-criterion chunk. Each statement instance carries a
// bitmask of the criteria whose slices reach it, so a subgraph shared by
// several slices is walked — and its per-slot binary searches performed —
// once instead of once per criterion. Every returned slice is identical
// to what Slice would produce; the aggregate stats count each unique
// instance and label probe once.
func (g *Graph) SliceAll(cs []slicing.Criterion) ([]*slicing.Slice, *slicing.Stats, error) {
	stats := &slicing.Stats{}
	outs := make([]*slicing.Slice, len(cs))
	seeds := make([]instRef, len(cs))
	for i, c := range cs {
		if c.Stmt >= 0 {
			seeds[i] = instRef{stmt: c.Stmt, ts: c.TS}
		} else {
			d, ok := g.lastDef[c.Addr]
			if !ok {
				return nil, nil, fmt.Errorf("fp: address %d was never defined", c.Addr)
			}
			seeds[i] = d
		}
		outs[i] = slicing.NewSlice()
	}
	type btask struct {
		in   instRef
		mask uint64
	}
	for base := 0; base < len(cs); base += 64 {
		chunk := min(64, len(cs)-base)
		couts := outs[base : base+chunk]
		visited := map[instKey]uint64{}
		memo := map[instKey][]instRef{}
		var work []btask
		push := func(in instRef, mask uint64) {
			k := instKey{in.stmt, in.ts}
			nv := mask &^ visited[k]
			if nv == 0 {
				return
			}
			visited[k] |= nv
			work = append(work, btask{in: in, mask: nv})
		}
		for j := 0; j < chunk; j++ {
			push(seeds[base+j], uint64(1)<<j)
		}
		for len(work) > 0 {
			t := work[len(work)-1]
			work = work[:len(work)-1]
			k := instKey{t.in.stmt, t.in.ts}
			targets, ok := memo[k]
			if !ok {
				stats.Instances++
				s := g.p.Stmt(t.in.stmt)
				for i := range s.Uses {
					slots := g.useEdges[t.in.stmt]
					if slots == nil {
						continue
					}
					td, def, probes, found := slots[i].Find(t.in.ts)
					stats.LabelProbes += probes
					if found {
						targets = append(targets, instRef{stmt: ir.StmtID(def), ts: td})
					}
				}
				ta, anc, probes, found := g.cdEdges[s.Block.ID].Find(t.in.ts)
				stats.LabelProbes += probes
				if found {
					targets = append(targets, instRef{stmt: ir.StmtID(anc), ts: ta})
				}
				memo[k] = targets
			}
			for m := t.mask; m != 0; m &= m - 1 {
				couts[bits.TrailingZeros64(m)].Add(t.in.stmt)
			}
			for _, tg := range targets {
				push(tg, t.mask)
			}
		}
	}
	return outs, stats, nil
}
