// Package oracle is a brute-force reference dynamic slicer used only by
// tests. It shares no code or representation with the FP, LP, or OPT
// implementations: the whole trace is kept as a flat event log, and a
// slice is computed by a direct backward walk over that log, recomputing
// every dependence from first principles. It is deliberately simple and
// memory-hungry — its only job is to be obviously correct, so that a
// conceptual bug shared by the optimized implementations cannot hide
// behind differential agreement.
package oracle

import (
	"fmt"

	"dynslice/internal/ir"
	"dynslice/internal/slicing"
)

// event is one statement execution in the log.
type event struct {
	stmt *ir.Stmt
	ord  int64 // block-execution ordinal (FP timestamp)
	uses []int64
	defs []int64
	// control: index into the log of the controlling statement execution
	// (the branch whose most recent same-frame execution governs this
	// one, or the call that created the frame for function entries), or
	// -1.
	control int
}

// Slicer is the reference implementation. It implements trace.Sink; feed
// it the whole trace, then query.
type Slicer struct {
	p   *ir.Program
	log []event
	ord int64

	// Builder state for control resolution.
	frames  []*oframe
	lastDef map[int64]int // addr -> log index of the defining event

	deps *Deps // lazily built statement-level pairs (see Deps)
}

type oframe struct {
	fn       *ir.Func
	lastTerm map[ir.BlockID]int // block -> log index of its terminator execution
	callIdx  int                // log index of the creating call, or -1
}

// New returns an empty oracle for p.
func New(p *ir.Program) *Slicer {
	return &Slicer{p: p, lastDef: map[int64]int{}}
}

// Block implements trace.Sink.
func (o *Slicer) Block(b *ir.Block) {
	if len(o.frames) == 0 {
		o.frames = append(o.frames, &oframe{fn: b.Fn, lastTerm: map[ir.BlockID]int{}, callIdx: -1})
	}
	o.ord++
}

// Stmt implements trace.Sink.
func (o *Slicer) Stmt(s *ir.Stmt, uses, defs []int64) {
	fr := o.frames[len(o.frames)-1]
	ev := event{
		stmt:    s,
		ord:     o.ord - 1,
		uses:    append([]int64(nil), uses...),
		defs:    append([]int64(nil), defs...),
		control: o.resolveControl(s.Block, fr),
	}
	idx := len(o.log)
	o.log = append(o.log, ev)
	for _, a := range defs {
		o.lastDef[a] = idx
	}
	switch s.Op {
	case ir.OpCall:
		o.frames = append(o.frames, &oframe{
			fn:       s.Callee,
			lastTerm: map[ir.BlockID]int{},
			callIdx:  idx,
		})
	case ir.OpCond, ir.OpReturn:
		fr.lastTerm[s.Block.ID] = idx
		if s.Op == ir.OpReturn && len(o.frames) > 0 {
			o.frames = o.frames[:len(o.frames)-1]
		}
	}
}

// RegionDef implements trace.Sink.
func (o *Slicer) RegionDef(s *ir.Stmt, start, length int64) {
	fr := o.frames[len(o.frames)-1]
	ev := event{
		stmt:    s,
		ord:     o.ord - 1,
		defs:    nil,
		control: o.resolveControl(s.Block, fr),
	}
	for a := start; a < start+length; a++ {
		ev.defs = append(ev.defs, a)
	}
	idx := len(o.log)
	o.log = append(o.log, ev)
	for _, a := range ev.defs {
		o.lastDef[a] = idx
	}
}

// End implements trace.Sink.
func (o *Slicer) End() {}

// resolveControl finds the controlling execution for a statement of block
// b in frame fr: the most recent same-frame terminator execution among
// b's static control ancestors, or the frame-creating call for function
// entries (matching the rule shared by FP, LP, and OPT).
func (o *Slicer) resolveControl(b *ir.Block, fr *oframe) int {
	best := -1
	for _, h := range b.CDAncestors {
		if idx, ok := fr.lastTerm[h.ID]; ok && idx > best {
			best = idx
		}
	}
	if best >= 0 {
		return best
	}
	if len(b.CDAncestors) == 0 && b.Fn != o.p.Main && b == b.Fn.Entry() {
		return fr.callIdx
	}
	return -1
}

// Deps is the statement-level dependence relation recomputed from the
// event log: which (dependent, dependency) statement pairs were actually
// exercised during the run. Witness validation checks every hop of an
// optimized slicer's dependence-path witness against these pairs, so an
// inferred or shortcut edge that does not correspond to a real dynamic
// dependence is caught even when the slice sets still agree.
type Deps struct {
	data    map[[2]ir.StmtID]bool
	control map[[2]ir.StmtID]bool
	useUse  map[[2]ir.StmtID]bool

	adj   map[ir.StmtID][]ir.StmtID        // union graph, dependent -> dependency
	reach map[ir.StmtID]map[ir.StmtID]bool // memoized BFS closures
}

// Deps replays the log once and returns the exercised dependence pairs.
// The result is memoized on the slicer; call after the trace is complete.
func (o *Slicer) Deps() *Deps {
	if o.deps != nil {
		return o.deps
	}
	d := &Deps{
		data:    map[[2]ir.StmtID]bool{},
		control: map[[2]ir.StmtID]bool{},
		useUse:  map[[2]ir.StmtID]bool{},
		adj:     map[ir.StmtID][]ir.StmtID{},
		reach:   map[ir.StmtID]map[ir.StmtID]bool{},
	}
	lastDef := map[int64]ir.StmtID{} // addr -> statement of its live definition
	users := map[int64][]ir.StmtID{} // addr -> statements that used the live value
	for i := range o.log {
		ev := &o.log[i]
		id := ev.stmt.ID
		// Uses before defs, so x = x + 1 depends on the previous definition.
		for _, a := range ev.uses {
			if def, ok := lastDef[a]; ok {
				d.add(d.data, id, def)
			}
			for _, u := range users[a] {
				d.add(d.useUse, id, u)
			}
			users[a] = append(users[a], id)
		}
		if ev.control >= 0 {
			d.add(d.control, id, o.log[ev.control].stmt.ID)
		}
		for _, a := range ev.defs {
			lastDef[a] = id
			users[a] = users[a][:0]
		}
	}
	o.deps = d
	return d
}

func (d *Deps) add(m map[[2]ir.StmtID]bool, from, to ir.StmtID) {
	k := [2]ir.StmtID{from, to}
	if m[k] {
		return
	}
	m[k] = true
	d.adj[from] = append(d.adj[from], to)
}

// Data reports whether from took a value last defined by to at some point
// in the run.
func (d *Deps) Data(from, to ir.StmtID) bool { return d.data[[2]ir.StmtID{from, to}] }

// Control reports whether an execution of from was governed by an
// execution of to.
func (d *Deps) Control(from, to ir.StmtID) bool { return d.control[[2]ir.StmtID{from, to}] }

// UseUse reports whether from used a value that to had already used while
// the same definition (or the same never-defined cell) was live — the
// relation OPT-2 use-to-use redirection edges traverse.
func (d *Deps) UseUse(from, to ir.StmtID) bool { return d.useUse[[2]ir.StmtID{from, to}] }

// Reachable reports whether to is transitively reachable from from over
// the union of the three relations — the justification for shortcut
// (chain-collapsing) hops, which compress a multi-edge dependence chain
// into one step.
func (d *Deps) Reachable(from, to ir.StmtID) bool {
	if from == to {
		return true
	}
	set, ok := d.reach[from]
	if !ok {
		set = map[ir.StmtID]bool{from: true}
		work := []ir.StmtID{from}
		for len(work) > 0 {
			n := work[len(work)-1]
			work = work[:len(work)-1]
			for _, m := range d.adj[n] {
				if !set[m] {
					set[m] = true
					work = append(work, m)
				}
			}
		}
		d.reach[from] = set
	}
	return set[to]
}

// Slice implements slicing.Slicer: brute-force backward walk.
func (o *Slicer) Slice(c slicing.Criterion) (*slicing.Slice, *slicing.Stats, error) {
	if c.Stmt >= 0 {
		return nil, nil, fmt.Errorf("oracle: instance criteria unsupported")
	}
	start, ok := o.lastDef[c.Addr]
	if !ok {
		return nil, nil, fmt.Errorf("oracle: address %d was never defined", c.Addr)
	}
	out := slicing.NewSlice()
	stats := &slicing.Stats{}
	visited := make([]bool, len(o.log))
	work := []int{start}
	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		if idx < 0 || visited[idx] {
			continue
		}
		visited[idx] = true
		stats.Instances++
		ev := &o.log[idx]
		out.Add(ev.stmt.ID)
		// Data: for each used address, scan backward for the previous
		// definition (the brute-force part).
		for _, a := range ev.uses {
			for j := idx - 1; j >= 0; j-- {
				hit := false
				for _, d := range o.log[j].defs {
					if d == a {
						hit = true
						break
					}
				}
				if hit {
					work = append(work, j)
					break
				}
			}
		}
		work = append(work, ev.control)
	}
	return out, stats, nil
}
