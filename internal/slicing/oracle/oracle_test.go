package oracle_test

import (
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/oracle"
)

// The oracle's substantive validation lives in the differential suites
// (internal/slicing, internal/bench); this covers its error paths.
func TestOracleErrors(t *testing.T) {
	p, err := compile.Source(`func main() { print(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	o := oracle.New(p)
	if _, err := interp.Run(p, interp.Options{Sink: o}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.Slice(slicing.AddrCriterion(1 << 40)); err == nil {
		t.Fatal("expected error for a never-defined address")
	}
	if _, _, err := o.Slice(slicing.Criterion{Stmt: 0, TS: 0}); err == nil {
		t.Fatal("expected error for instance criteria")
	}
}
