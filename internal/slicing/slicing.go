// Package slicing defines the types shared by the three dynamic slicing
// algorithms: FP (full dependence graph, §2 of the paper), LP (demand-driven
// from a disk trace), and OPT (the paper's contribution: compacted graph).
package slicing

import (
	"sort"

	"dynslice/internal/ir"
	"dynslice/internal/slicing/explain"
)

// Criterion selects what to slice on. Exactly one form is used:
//
//   - Addr != 0: slice from the last definition of that memory address
//     (the paper's "slices correspond to distinct memory references").
//   - Stmt >= 0 with TS >= 0: slice from a specific statement execution
//     instance, using the algorithm's own timestamp domain.
type Criterion struct {
	Addr int64
	Stmt ir.StmtID
	TS   int64
}

// AddrCriterion slices on the last definition of address a.
func AddrCriterion(a int64) Criterion { return Criterion{Addr: a, Stmt: -1, TS: -1} }

// Slice is the result of a slicing query: the set of static statements the
// criterion (transitively) depends on.
type Slice struct {
	stmts map[ir.StmtID]bool
}

// NewSlice returns an empty slice result.
func NewSlice() *Slice { return &Slice{stmts: map[ir.StmtID]bool{}} }

// Add inserts a statement.
func (s *Slice) Add(id ir.StmtID) { s.stmts[id] = true }

// Has reports membership.
func (s *Slice) Has(id ir.StmtID) bool { return s.stmts[id] }

// Len returns the number of statements in the slice.
func (s *Slice) Len() int { return len(s.stmts) }

// Stmts returns the statements in ascending ID order.
func (s *Slice) Stmts() []ir.StmtID {
	out := make([]ir.StmtID, 0, len(s.stmts))
	for id := range s.stmts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two slices contain the same statements.
func (s *Slice) Equal(o *Slice) bool {
	if s.Len() != o.Len() {
		return false
	}
	for id := range s.stmts {
		if !o.stmts[id] {
			return false
		}
	}
	return true
}

// Lines returns the distinct source lines of the slice's statements, sorted.
func (s *Slice) Lines(p *ir.Program) []int {
	set := map[int]bool{}
	for id := range s.stmts {
		set[p.Stmt(id).Pos.Line] = true
	}
	out := make([]int, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Stats reports traversal effort for one slicing query, for the paper's
// time comparisons.
type Stats struct {
	Instances   int64 // dependence-graph instances visited
	LabelProbes int64 // timestamp labels examined while locating edges
	SegScans    int64 // (LP only) trace segments decoded
	SegSkips    int64 // (LP only) trace segments skipped via summaries
	SegBytes    int64 // (LP only) trace bytes decoded by the scanned segments
}

// Slicer is implemented by all three algorithms.
type Slicer interface {
	// Slice computes the dynamic slice for the criterion.
	Slice(c Criterion) (*Slice, *Stats, error)
}

// MultiSlicer is implemented by algorithms that can answer many criteria
// in one shared traversal. SliceAll returns one slice per criterion, in
// order, each identical to what Slice would produce; the stats aggregate
// the whole batch, counting work shared between criteria once.
type MultiSlicer interface {
	Slicer
	SliceAll(cs []Criterion) ([]*Slice, *Stats, error)
}

// Explainer is implemented by slicers that can record per-query
// provenance: SliceObserved computes exactly the slice Slice would,
// additionally threading every resolved dependence hop, traversal
// counter, and predecessor edge through rec (which must not be shared
// between concurrent queries). A nil rec makes it equivalent to Slice.
type Explainer interface {
	Slicer
	SliceObserved(c Criterion, rec *explain.Recorder) (*Slice, *Stats, error)
}
