package snapshot_test

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"testing"

	slicer "dynslice"
	"dynslice/internal/slicing/labelblock"
	"dynslice/internal/slicing/snapshot"
)

var update = flag.Bool("update", false, "rewrite testdata/tiny.dysnap from the current format")

// tinySrc is the checked-in golden snapshot's program: small enough that
// the .dysnap file stays a few kilobytes, rich enough (loop, call, array,
// control dependence) that every section has content.
const tinySrc = `
var out = 0;
var a[4];

func bump(v) {
	a[v % 4] = a[v % 4] + v;
	return v + 1;
}

func main() {
	var i = 0;
	while (i < 6) {
		if (i % 2 == 0) {
			out = out + bump(i);
		}
		i = i + 1;
	}
	print(out);
}`

// buildSnapshot records tinySrc with the snapshot cache enabled and
// returns the single .dysnap file it produced.
func buildSnapshot(t *testing.T) (path string, raw []byte) {
	t.Helper()
	dir := t.TempDir()
	p, err := slicer.Compile(tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.Record(slicer.RunOptions{
		Input:    []int64{7, 3, 5},
		Snapshot: slicer.SnapshotOptions{Dir: dir, Write: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.Close()
	files, err := filepath.Glob(filepath.Join(dir, "*.dysnap"))
	if err != nil || len(files) != 1 {
		t.Fatalf("snapshot files = %v (err %v), want exactly one", files, err)
	}
	raw, err = os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	return files[0], raw
}

// readBack loads a snapshot file through the real Read path with the
// given key (recovered from the intact file's meta section — the façade
// derives it from hashes; the format test only needs Read to accept its
// own output).
func readBack(t *testing.T, path string, key snapshot.Key) (*snapshot.Image, error) {
	t.Helper()
	p, err := slicer.Compile(tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	return snapshot.Read(path, p.IR(), key)
}

// keyOf parses the documented container layout to pull the key out of
// the meta section.
func keyOf(t *testing.T, raw []byte) snapshot.Key {
	t.Helper()
	meta := section(t, raw, 1)
	var key snapshot.Key
	copy(key.Program[:], meta[0:32])
	copy(key.Input[:], meta[32:64])
	copy(key.Config[:], meta[64:96])
	return key
}

// section returns the payload byte range of a section id via the
// directory (offset, length within raw).
func section(t *testing.T, raw []byte, id uint32) []byte {
	t.Helper()
	n := binary.LittleEndian.Uint32(raw[5:9])
	for i := 0; i < int(n); i++ {
		e := raw[9+i*24:]
		if binary.LittleEndian.Uint32(e[0:4]) == id {
			off := binary.LittleEndian.Uint64(e[4:12])
			ln := binary.LittleEndian.Uint64(e[12:20])
			return raw[off : off+ln]
		}
	}
	t.Fatalf("section %d not found", id)
	return nil
}

// TestDeterministicBytes: identical runs serialize to identical bytes —
// the property the golden file (and content addressing) depends on.
func TestDeterministicBytes(t *testing.T) {
	_, a := buildSnapshot(t)
	_, b := buildSnapshot(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical recordings produced different snapshot bytes")
	}
}

// TestGoldenSnapshot guards the on-disk format: the checked-in
// testdata/tiny.dysnap must stay byte-identical to what the current code
// writes (run with -update after an intentional format change — which
// must also bump snapshot.Version), and must still load and answer.
func TestGoldenSnapshot(t *testing.T) {
	golden := filepath.Join("testdata", "tiny.dysnap")
	_, raw := buildSnapshot(t)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/slicing/snapshot -update` to create it)", err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("snapshot bytes drifted from %s (%d vs %d bytes); if the format change is intentional, bump snapshot.Version and re-run with -update",
			golden, len(raw), len(want))
	}
	img, err := readBack(t, golden, keyOf(t, want))
	if err != nil {
		t.Fatalf("golden snapshot does not load: %v", err)
	}
	if img.FP == nil || img.OPT == nil || len(img.Output) == 0 {
		t.Fatal("golden snapshot loaded incomplete")
	}
}

// TestSectionCorruption flips one byte inside each section's payload and
// expects a classified checksum failure; structural damage to the header
// and directory classifies too. Nothing may panic or load silently.
func TestSectionCorruption(t *testing.T) {
	path, raw := buildSnapshot(t)
	key := keyOf(t, raw) // the key comes from intact bytes, mutations notwithstanding
	load := func(t *testing.T, mutated []byte) error {
		t.Helper()
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := readBack(t, path, key)
		return err
	}
	clone := func() []byte { return append([]byte(nil), raw...) }

	for id := uint32(1); id <= 4; id++ {
		t.Run(map[uint32]string{1: "meta", 2: "segs", 3: "fp", 4: "opt"}[id], func(t *testing.T) {
			mutated := clone()
			sec := section(t, mutated, id)
			if len(sec) == 0 {
				t.Skip("empty section")
			}
			sec[len(sec)/2] ^= 0x20
			err := load(t, mutated)
			if err == nil {
				t.Fatal("corrupt section loaded cleanly")
			}
			if got := snapshot.Classify(err); got != snapshot.ClassBadChecksum {
				t.Fatalf("Classify = %q (%v), want %q", got, err, snapshot.ClassBadChecksum)
			}
		})
	}
	t.Run("magic", func(t *testing.T) {
		mutated := clone()
		mutated[0] ^= 0xff
		if got := snapshot.Classify(load(t, mutated)); got != labelblock.ClassBadMagic {
			t.Fatalf("Classify = %q, want %q", got, labelblock.ClassBadMagic)
		}
	})
	t.Run("version", func(t *testing.T) {
		mutated := clone()
		mutated[4]++
		if got := snapshot.Classify(load(t, mutated)); got != labelblock.ClassBadVersion {
			t.Fatalf("Classify = %q, want %q", got, labelblock.ClassBadVersion)
		}
	})
	t.Run("directory", func(t *testing.T) {
		mutated := clone()
		// Push a section's offset past EOF.
		binary.LittleEndian.PutUint64(mutated[9+4:], uint64(len(mutated))*2)
		if got := snapshot.Classify(load(t, mutated)); got != labelblock.ClassTruncated {
			t.Fatalf("Classify = %q, want %q", got, labelblock.ClassTruncated)
		}
	})
	t.Run("truncate-every-prefix", func(t *testing.T) {
		// Every prefix must fail classified, never panic. Step through a
		// spread of cut points including all short ones.
		for cut := 0; cut < len(raw); cut += 1 + cut/16 {
			err := load(t, clone()[:cut])
			if err == nil {
				t.Fatalf("prefix of %d bytes loaded cleanly", cut)
			}
			if snapshot.Classify(err) == "" {
				t.Fatalf("prefix of %d bytes: unclassified error %v", cut, err)
			}
		}
	})
	t.Run("key-mismatch", func(t *testing.T) {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		p, err := slicer.Compile(tinySrc)
		if err != nil {
			t.Fatal(err)
		}
		wrong := key
		wrong.Input[0] ^= 0xff
		_, err = snapshot.Read(path, p.IR(), wrong)
		if got := snapshot.Classify(err); got != snapshot.ClassKeyMismatch {
			t.Fatalf("Classify = %q (%v), want %q", got, err, snapshot.ClassKeyMismatch)
		}
	})
}

// TestCacheKeySensitivity: each component digest reacts to its input.
func TestCacheKeySensitivity(t *testing.T) {
	p1, err := slicer.Compile(tinySrc)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := slicer.Compile(tinySrc + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if snapshot.HashProgram(p1.IR()) == snapshot.HashProgram(p2.IR()) {
		t.Fatal("program digest ignores source changes")
	}
	if snapshot.HashProgram(p1.IR()) != snapshot.HashProgram(p1.IR()) {
		t.Fatal("program digest is unstable")
	}
	if snapshot.HashInput([]int64{1}, 0) == snapshot.HashInput([]int64{2}, 0) {
		t.Fatal("input digest ignores values")
	}
	if snapshot.HashInput([]int64{1}, 0) == snapshot.HashInput([]int64{1}, 100) {
		t.Fatal("input digest ignores the step budget")
	}
	if snapshot.HashConfig("a") == snapshot.HashConfig("b") {
		t.Fatal("config digest ignores the fingerprint")
	}
}
