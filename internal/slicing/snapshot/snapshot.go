// Package snapshot implements the persistent dyDG image: a relocatable,
// checksummed, versioned on-disk file holding a recording's FP and OPT
// graphs — columnar edge arrays, sealed label blocks, the static tables
// their loaders rebuild from, and the trace's segment summaries — laid
// out for a single sequential read.
//
// Loading is one os.ReadFile plus section decoding: sealed label blocks
// land directly in labelblock form with payloads aliasing the file
// buffer (no replay, no per-label decode), so load time is decoupled
// from trace length. On top of the format sits a content-addressed cache
// (Cache) keyed by program hash, input hash, format version, and the
// graph-shaping configuration fingerprint, which is what turns graph
// construction into an offline step: a process that finds its key in
// the cache serves queries without ever running the program.
//
// File layout (all integers little-endian; see docs/PERFORMANCE.md
// "Snapshot format" for the full diagram):
//
//	magic "DYSG" | version byte | uint32 section count
//	per section: uint32 id | uint64 offset | uint64 length | uint32 CRC-32
//	section payloads (meta, segments, FP image, OPT image)
//
// Offsets are absolute file offsets; each section is independently
// checksummed (IEEE CRC-32), so a bit flip anywhere fails classified
// (never a misparse, never a silent wrong slice) and the caller falls
// back to a fresh build.
package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"

	"dynslice/internal/ir"
	"dynslice/internal/slicing/fp"
	"dynslice/internal/slicing/labelblock"
	"dynslice/internal/slicing/opt"
	"dynslice/internal/telemetry"
	"dynslice/internal/trace"
)

// Magic heads every snapshot file.
var Magic = [4]byte{'D', 'Y', 'S', 'G'}

// Version is the snapshot format version; it participates in the cache
// key, so a format bump makes every old cache entry a clean miss rather
// than a decode error.
const Version byte = 1

// Section ids.
const (
	secMeta uint32 = 1 + iota
	secSegs
	secFP
	secOPT
)

// Error classes beyond the labelblock set.
const (
	ClassBadChecksum = "bad_checksum" // a section's CRC does not match
	ClassBadSection  = "bad_section"  // the section table is malformed or incomplete
	ClassKeyMismatch = "key_mismatch" // the file's key is not the requested key
)

// Classify maps a snapshot read error to its telemetry class: one of the
// labelblock corruption classes, a snapshot-level class, or "io" for
// filesystem trouble. Returns "" for nil.
func Classify(err error) string {
	if err == nil {
		return ""
	}
	var ce *labelblock.CorruptError
	if errors.As(err, &ce) {
		return ce.Class
	}
	return "io"
}

// Image is the deserialized content of a snapshot: everything a
// Recording needs to answer FP and OPT queries without re-running the
// program. LP is the exception — it reads the trace file itself, which a
// snapshot deliberately does not carry.
type Image struct {
	Output   []int64
	Steps    int64
	Return   int64
	Criteria []int64
	Segs     []*trace.Segment
	FP       *fp.Graph
	OPT      *opt.Graph

	// buf pins the file buffer the graphs' sealed blocks alias.
	buf []byte
}

const dirEntrySize = 4 + 8 + 8 + 4 // id, offset, length, crc

// Write serializes img under key to path, atomically (temp file +
// rename, via the shared telemetry helper). The FP and OPT graphs must
// be finalized/frozen. Returns the file size in bytes.
func Write(path string, key Key, img *Image) (int64, error) {
	meta := appendMeta(nil, key, img)
	segs := trace.AppendSegments(nil, img.Segs)
	fpSec := img.FP.AppendSnapshot(nil)
	optSec, err := img.OPT.AppendSnapshot(nil)
	if err != nil {
		return 0, err
	}
	type section struct {
		id      uint32
		payload []byte
	}
	sections := []section{
		{secMeta, meta}, {secSegs, segs}, {secFP, fpSec}, {secOPT, optSec},
	}
	header := len(Magic) + 1 + 4 + len(sections)*dirEntrySize
	var total int64
	err = telemetry.WriteFileAtomic(path, func(w io.Writer) error {
		hdr := make([]byte, 0, header)
		hdr = append(hdr, Magic[:]...)
		hdr = append(hdr, Version)
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(sections)))
		off := uint64(header)
		for _, s := range sections {
			hdr = binary.LittleEndian.AppendUint32(hdr, s.id)
			hdr = binary.LittleEndian.AppendUint64(hdr, off)
			hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(s.payload)))
			hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(s.payload))
			off += uint64(len(s.payload))
		}
		total = int64(off)
		if _, err := w.Write(hdr); err != nil {
			return err
		}
		for _, s := range sections {
			if _, err := w.Write(s.payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// Read loads a snapshot in one sequential read and reconstructs its
// graphs against p. The file's key must equal the requested key (the
// content-addressed cache makes that a tautology; explicit -snapshot
// file paths are where it earns its keep). Every failure is classified
// (Classify) and never a panic: corrupt files are for the caller to fall
// back from, not to crash on.
func Read(path string, p *ir.Program, key Key) (*Image, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	header := len(Magic) + 1 + 4
	if len(buf) < header {
		return nil, labelblock.Corrupt(labelblock.ClassTruncated, "snapshot: %d-byte file", len(buf))
	}
	if [4]byte(buf[:4]) != Magic {
		return nil, labelblock.Corrupt(labelblock.ClassBadMagic, "snapshot: file starts %q, want %q", buf[:4], Magic[:])
	}
	if buf[4] != Version {
		return nil, labelblock.Corrupt(labelblock.ClassBadVersion, "snapshot: format version %d, want %d", buf[4], Version)
	}
	nSec := binary.LittleEndian.Uint32(buf[5:9])
	if nSec > 64 {
		return nil, labelblock.Corrupt(ClassBadSection, "snapshot: %d sections", nSec)
	}
	if len(buf) < header+int(nSec)*dirEntrySize {
		return nil, labelblock.Corrupt(labelblock.ClassTruncated, "snapshot: file ends inside section table")
	}
	payload := map[uint32][]byte{}
	for i := 0; i < int(nSec); i++ {
		e := buf[header+i*dirEntrySize:]
		id := binary.LittleEndian.Uint32(e[0:4])
		off := binary.LittleEndian.Uint64(e[4:12])
		length := binary.LittleEndian.Uint64(e[12:20])
		sum := binary.LittleEndian.Uint32(e[20:24])
		if off > uint64(len(buf)) || length > uint64(len(buf))-off {
			return nil, labelblock.Corrupt(labelblock.ClassTruncated,
				"snapshot: section %d spans [%d, %d) of a %d-byte file", id, off, off+length, len(buf))
		}
		data := buf[off : off+length : off+length]
		if crc32.ChecksumIEEE(data) != sum {
			return nil, labelblock.Corrupt(ClassBadChecksum, "snapshot: section %d checksum mismatch", id)
		}
		if _, dup := payload[id]; dup {
			return nil, labelblock.Corrupt(ClassBadSection, "snapshot: duplicate section %d", id)
		}
		payload[id] = data
	}
	for _, id := range []uint32{secMeta, secSegs, secFP, secOPT} {
		if _, ok := payload[id]; !ok {
			return nil, labelblock.Corrupt(ClassBadSection, "snapshot: section %d missing", id)
		}
	}

	img := &Image{buf: buf}
	if err := img.decodeMeta(payload[secMeta], key); err != nil {
		return nil, err
	}
	segs, rest, err := trace.DecodeSegments(payload[secSegs])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, labelblock.Corrupt(ClassBadSection, "snapshot: %d trailing bytes in segment section", len(rest))
	}
	img.Segs = segs
	if img.FP, err = fp.LoadSnapshot(p, payload[secFP]); err != nil {
		return nil, err
	}
	if img.OPT, err = opt.LoadSnapshot(p, payload[secOPT]); err != nil {
		return nil, err
	}
	return img, nil
}

// appendMeta serializes the key and run metadata.
func appendMeta(dst []byte, key Key, img *Image) []byte {
	dst = append(dst, key.Program[:]...)
	dst = append(dst, key.Input[:]...)
	dst = append(dst, key.Config[:]...)
	dst = binary.AppendUvarint(dst, uint64(img.Steps))
	dst = binary.AppendUvarint(dst, zigzag(img.Return))
	dst = binary.AppendUvarint(dst, uint64(len(img.Output)))
	for _, v := range img.Output {
		dst = binary.AppendUvarint(dst, zigzag(v))
	}
	dst = binary.AppendUvarint(dst, uint64(len(img.Criteria)))
	for _, v := range img.Criteria {
		dst = binary.AppendUvarint(dst, zigzag(v))
	}
	return dst
}

func (img *Image) decodeMeta(data []byte, key Key) error {
	if len(data) < 96 {
		return labelblock.Corrupt(labelblock.ClassTruncated, "snapshot: %d-byte meta section", len(data))
	}
	var have Key
	copy(have.Program[:], data[0:32])
	copy(have.Input[:], data[32:64])
	copy(have.Config[:], data[64:96])
	if have != key {
		return labelblock.Corrupt(ClassKeyMismatch, "snapshot: file was written for a different (program, input, config)")
	}
	data = data[96:]
	steps, data, err := labelblock.DecodeUvarint(data, "snapshot: steps")
	if err != nil {
		return err
	}
	ret, data, err := labelblock.DecodeUvarint(data, "snapshot: return value")
	if err != nil {
		return err
	}
	img.Steps, img.Return = int64(steps), unzig(ret)
	if img.Output, data, err = decodeInt64s(data, "output"); err != nil {
		return err
	}
	if img.Criteria, data, err = decodeInt64s(data, "criteria"); err != nil {
		return err
	}
	if len(data) != 0 {
		return labelblock.Corrupt(ClassBadSection, "snapshot: %d trailing bytes in meta section", len(data))
	}
	return nil
}

func decodeInt64s(data []byte, what string) ([]int64, []byte, error) {
	n, data, err := labelblock.DecodeUvarint(data, "snapshot: "+what+" length")
	if err != nil {
		return nil, nil, err
	}
	if n > 1<<30 {
		return nil, nil, labelblock.Corrupt(labelblock.ClassBadBlock, "snapshot: implausible %s length %d", what, n)
	}
	if n == 0 {
		return nil, data, nil
	}
	out := make([]int64, n)
	for i := range out {
		var v uint64
		if v, data, err = labelblock.DecodeUvarint(data, "snapshot: "+what); err != nil {
			return nil, nil, err
		}
		out[i] = unzig(v)
	}
	return out, data, nil
}

func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }
func unzig(u uint64) int64  { return int64(u>>1) ^ -int64(u&1) }
