package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"dynslice/internal/ir"
)

// Key is the content address of a snapshot: three SHA-256 digests that
// together decide whether a cached graph image answers for a run.
//
//   - Program: the IR — any edit to the program under analysis misses.
//   - Input: the input vector and step budget — a different execution
//     builds a different dyDG.
//   - Config: the graph-shaping knobs (OPT stage selection, shortcuts,
//     adaptive deltas, plain vs. compact labels, tracked criteria) plus
//     the format version — anything that changes either the bytes on
//     disk or the graph they decode into.
//
// Two runs share a snapshot iff all three digests match; everything else
// (telemetry, query logging, worker counts) is deliberately outside the
// key because it does not shape the graph.
type Key struct {
	Program [32]byte
	Input   [32]byte
	Config  [32]byte
}

// String renders the combined content address: the hex SHA-256 of the
// three component digests, which names the cache file.
func (k Key) String() string {
	h := sha256.New()
	h.Write(k.Program[:])
	h.Write(k.Input[:])
	h.Write(k.Config[:])
	return hex.EncodeToString(h.Sum(nil))
}

// HashProgram digests a program's IR: the original source text (lowering
// is deterministic, so it subsumes expression structure) plus a
// structural summary of everything the graph builders read — block
// membership and successors, control-dependence ancestors, per-statement
// use slots and def summaries — so programmatically built or mutated IR
// hashes correctly even with an empty Source.
func HashProgram(p *ir.Program) [32]byte {
	h := sha256.New()
	buf := make([]byte, 0, 64)
	u := func(vs ...int64) {
		buf = buf[:0]
		for _, v := range vs {
			buf = binary.AppendVarint(buf, v)
		}
		h.Write(buf)
	}
	fmt.Fprintf(h, "src:%d:%s", len(p.Source), p.Source)
	u(int64(len(p.Funcs)), int64(len(p.Blocks)), int64(len(p.Stmts)), int64(len(p.Objects)), p.GlobalSize)
	for _, o := range p.Objects {
		fmt.Fprintf(h, "o%s", o.Name)
		u(o.Size, o.Off, b2i(o.IsArray), b2i(o.AddrTaken), b2i(o.IsRet))
	}
	for _, f := range p.Funcs {
		fmt.Fprintf(h, "F%s", f.Name)
		u(int64(len(f.Params)), int64(len(f.Blocks)), f.FrameSize)
		for _, pr := range f.Params {
			u(int64(pr.ID))
		}
	}
	for _, b := range p.Blocks {
		u(int64(f2i(b.Fn)), int64(len(b.Stmts)), int64(len(b.Succs)), int64(len(b.CDAncestors)))
		for _, s := range b.Stmts {
			u(int64(s.ID))
		}
		for _, s := range b.Succs {
			u(int64(s.ID))
		}
		for _, a := range b.CDAncestors {
			u(int64(a.ID))
		}
	}
	for _, s := range p.Stmts {
		u(int64(s.Op), int64(s.Block.ID), int64(s.Lhs), int64(s.LhsObj), int64(s.Obj),
			int64(s.MustDef), int64(s.NumDefs), int64(len(s.Uses)), int64(len(s.MayDefs)))
		for _, use := range s.Uses {
			u(int64(use.Obj), b2i(use.IsPtr), b2i(use.IsIdx), int64(len(use.MayPts)))
			for _, t := range use.MayPts {
				u(int64(t))
			}
		}
		for _, d := range s.MayDefs {
			u(int64(d))
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func f2i(f *ir.Func) int {
	if f == nil {
		return -1
	}
	return f.ID
}

// HashInput digests the execution identity: input vector and step budget.
func HashInput(input []int64, maxSteps int64) [32]byte {
	h := sha256.New()
	buf := make([]byte, 0, 64)
	buf = binary.AppendVarint(buf, maxSteps)
	buf = binary.AppendVarint(buf, int64(len(input)))
	for _, v := range input {
		buf = binary.AppendVarint(buf, v)
	}
	h.Write(buf)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// HashConfig digests the graph-shaping configuration fingerprint plus the
// snapshot format version. fingerprint should be a stable rendering of
// every knob that changes the built graph (see slicer.Run's caller).
func HashConfig(fingerprint string) [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|%s", Version, fingerprint)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Cache is a content-addressed snapshot store: a directory of
// <key>.dysnap files. The zero value is unusable; construct with
// NewCache.
type Cache struct {
	dir string
}

// DefaultDir returns the per-user snapshot cache directory
// (os.UserCacheDir()/dynslice/snapshots).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(base, "dynslice", "snapshots"), nil
}

// NewCache opens (creating if needed) a snapshot cache rooted at dir;
// empty dir means DefaultDir.
func NewCache(dir string) (*Cache, error) {
	if dir == "" {
		var err error
		if dir, err = DefaultDir(); err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Path returns the file path a key's snapshot lives at (whether or not
// it exists yet).
func (c *Cache) Path(key Key) string {
	return filepath.Join(c.dir, key.String()+".dysnap")
}

// Has reports whether a snapshot exists for key.
func (c *Cache) Has(key Key) bool {
	_, err := os.Stat(c.Path(key))
	return err == nil
}
