package opt

import (
	"testing"
	"testing/quick"
)

func TestLabelsFindSorted(t *testing.T) {
	l := &Labels{}
	for i := int64(0); i < 100; i += 2 {
		l.Append(nil, Pair{Td: i * 10, Tu: i})
	}
	for i := int64(0); i < 100; i += 2 {
		td, _, ok := l.Find(i)
		if !ok || td != i*10 {
			t.Fatalf("Find(%d) = %d,%v", i, td, ok)
		}
	}
	if _, _, ok := l.Find(1); ok {
		t.Fatal("Find(1) should miss")
	}
}

// TestLabelsOutOfOrder exercises the lazy re-sort triggered by recursive
// superblock suspension.
func TestLabelsOutOfOrder(t *testing.T) {
	l := &Labels{}
	l.Append(nil, Pair{Td: 1, Tu: 10})
	l.Append(nil, Pair{Td: 2, Tu: 30})
	l.Append(nil, Pair{Td: 3, Tu: 20}) // out of order
	for _, c := range []struct{ tu, td int64 }{{10, 1}, {20, 3}, {30, 2}} {
		td, _, ok := l.Find(c.tu)
		if !ok || td != c.td {
			t.Fatalf("Find(%d) = %d,%v want %d", c.tu, td, ok, c.td)
		}
	}
}

func TestLabelsSharedDedupe(t *testing.T) {
	l := &Labels{shared: true}
	l.Append(nil, Pair{Td: 5, Tu: 7})
	l.Append(nil, Pair{Td: 5, Tu: 7}) // cluster partner appends the same pair
	l.Append(nil, Pair{Td: 6, Tu: 9})
	if l.Len() != 2 {
		t.Fatalf("shared list has %d pairs, want 2", l.Len())
	}
	// Out-of-order duplicates get deduped during the lazy sort.
	l.Append(nil, Pair{Td: 1, Tu: 3})
	l.Append(nil, Pair{Td: 5, Tu: 7})
	l.ensureSorted()
	if l.Len() != 3 {
		t.Fatalf("after sort-dedupe: %d pairs, want 3", l.Len())
	}
}

// TestLabelsFindProperty: Find locates exactly the appended pairs, for any
// permutation of distinct Tu values.
func TestLabelsFindProperty(t *testing.T) {
	f := func(tus []int64) bool {
		seen := map[int64]int64{}
		l := &Labels{}
		for i, tu := range tus {
			if tu < 0 {
				tu = -tu
			}
			if _, dup := seen[tu]; dup {
				continue
			}
			seen[tu] = int64(i)
			l.Append(nil, Pair{Td: int64(i), Tu: tu})
		}
		for tu, td := range seen {
			got, _, ok := l.Find(tu)
			if !ok || got != td {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultEdgeAdoptsDelta: a steady fixed-delta stream with a couple of
// outliers must be adopted after warmup and cover later observations.
func TestDefaultEdgeAdoptsDelta(t *testing.T) {
	var d DefaultEdge
	tgt := InstLoc{Node: 3, Stmt: 7}
	other := InstLoc{Node: 4, Stmt: 1}
	ts := int64(100)
	// Two outliers then a steady delta of 5.
	if d.observe(other, 1, ts) {
		t.Fatal("warmup observations must not be covered")
	}
	ts++
	d.observe(other, 2, ts)
	for i := 0; i < warmObservations; i++ {
		ts++
		d.observe(tgt, ts-5, ts)
	}
	if d.Mode != DefDelta || d.Val != 5 || d.Tgt != tgt {
		t.Fatalf("adopted %v val=%d tgt=%v, want delta 5 to %v", d.Mode, d.Val, d.Tgt, tgt)
	}
	ts++
	if !d.observe(tgt, ts-5, ts) {
		t.Fatal("post-adoption matching observation must be covered")
	}
	ts++
	if d.observe(tgt, ts-6, ts) {
		t.Fatal("mismatching observation must not be covered")
	}
	loc, td, ok := d.Resolve(ts + 1)
	if !ok || loc != tgt || td != ts+1-5 {
		t.Fatalf("Resolve = %v,%d,%v", loc, td, ok)
	}
}

// TestDefaultEdgeAdoptsConst: a constant-source stream (loop-invariant
// use) adopts DefConst.
func TestDefaultEdgeAdoptsConst(t *testing.T) {
	var d DefaultEdge
	tgt := InstLoc{Node: 1, Stmt: 0}
	ts := int64(50)
	for i := 0; i <= warmObservations; i++ {
		ts++
		d.observe(tgt, 42, ts)
	}
	if d.Mode != DefConst || d.Val != 42 {
		t.Fatalf("adopted %v val=%d, want const 42", d.Mode, d.Val)
	}
	loc, td, ok := d.Resolve(ts + 100)
	if !ok || loc != tgt || td != 42 {
		t.Fatalf("Resolve = %v,%d,%v", loc, td, ok)
	}
}

// TestDefaultEdgeNoDominantDies: alternating incompatible patterns leave
// the edge dead.
func TestDefaultEdgeNoDominantDies(t *testing.T) {
	var d DefaultEdge
	ts := int64(0)
	for i := 0; i < warmObservations+4; i++ {
		ts++
		// Rotate over 6 targets and unrelated tds: no candidate can reach
		// the adoption threshold.
		tgt := InstLoc{Node: NodeID(i % 6), Stmt: int32(i % 5)}
		d.observe(tgt, int64(i*i%97), ts)
	}
	if d.Mode != DefDead {
		t.Fatalf("mode = %v, want DefDead", d.Mode)
	}
	if _, _, ok := d.Resolve(ts); ok {
		t.Fatal("dead edge must not resolve")
	}
}

func TestDefaultEdgeKill(t *testing.T) {
	var d DefaultEdge
	d.observe(InstLoc{Node: 1}, 1, 2)
	d.kill()
	if d.Mode != DefDead || d.warm != nil {
		t.Fatal("kill must clear state")
	}
}

// TestStageMonotone checks that each cumulative stage enables a superset
// of the previous one's switches.
func TestStageMonotone(t *testing.T) {
	on := func(c Config) int {
		n := 0
		for _, b := range []bool{c.LocalDefUse, c.UseUse, c.PathSpec, c.ShareData,
			c.InferCD, c.SpecCD, c.ShareCDData, c.AdaptiveDeltas} {
			if b {
				n++
			}
		}
		return n
	}
	prev := -1
	for s := 0; s <= 7; s++ {
		cur := on(Stage(s))
		if cur <= prev {
			t.Fatalf("stage %d enables %d switches, stage %d enabled %d", s, cur, s-1, prev)
		}
		prev = cur
	}
	full := Full()
	if !full.Shortcuts || !full.AdaptiveDeltas {
		t.Fatal("Full must enable shortcuts and adaptive deltas")
	}
}
