// Graph snapshot codec: the compacted graph serialized for the
// single-read on-disk graph image (internal/slicing/snapshot).
//
// Only the dynamic component is persisted — the timestamp counter, the
// last-definition table, the label registry (sealed block lists land in
// queryable form on load, no per-label decode), the dynamic edge vectors,
// and the adopted adaptive default rules. The static component (nodes,
// static edges, clusters, shortcuts) is a deterministic function of the
// IR, the configuration, and the specialized path set, so the loader
// reruns NewGraph and only validates that the rebuilt structure matches
// the snapshot's shape. Dynamic edges reference labels by registry id —
// never by recomputed cluster numbering, which Go map iteration makes
// unstable across processes.
//
// Hybrid (§4.2 disk-epoch) graphs are not snapshottable: their labels
// live partly in epoch files keyed to a directory that outlives no
// process. Warm adaptive rules collapse to DefDead — at query time
// neither resolves, so loaded graphs answer exactly like their source.
package opt

import (
	"encoding/binary"
	"sort"

	"dynslice/internal/ir"
	"dynslice/internal/profile"
	"dynslice/internal/slicing/labelblock"
)

func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }
func unzig(u uint64) int64  { return int64(u>>1) ^ -int64(u&1) }

// Config bit layout for the snapshot encoding (and the cache-key
// fingerprint; see Config.Fingerprint).
const (
	cfgLocalDefUse = 1 << iota
	cfgUseUse
	cfgPathSpec
	cfgShareData
	cfgInferCD
	cfgSpecCD
	cfgShareCDData
	cfgShortcuts
	cfgAdaptiveDeltas
	cfgPlainLabels
)

func (c Config) bits() uint64 {
	var b uint64
	set := func(on bool, bit uint64) {
		if on {
			b |= bit
		}
	}
	set(c.LocalDefUse, cfgLocalDefUse)
	set(c.UseUse, cfgUseUse)
	set(c.PathSpec, cfgPathSpec)
	set(c.ShareData, cfgShareData)
	set(c.InferCD, cfgInferCD)
	set(c.SpecCD, cfgSpecCD)
	set(c.ShareCDData, cfgShareCDData)
	set(c.Shortcuts, cfgShortcuts)
	set(c.AdaptiveDeltas, cfgAdaptiveDeltas)
	set(c.PlainLabels, cfgPlainLabels)
	return b
}

func configFromBits(b uint64) Config {
	return Config{
		LocalDefUse:    b&cfgLocalDefUse != 0,
		UseUse:         b&cfgUseUse != 0,
		PathSpec:       b&cfgPathSpec != 0,
		ShareData:      b&cfgShareData != 0,
		InferCD:        b&cfgInferCD != 0,
		SpecCD:         b&cfgSpecCD != 0,
		ShareCDData:    b&cfgShareCDData != 0,
		Shortcuts:      b&cfgShortcuts != 0,
		AdaptiveDeltas: b&cfgAdaptiveDeltas != 0,
		PlainLabels:    b&cfgPlainLabels != 0,
	}
}

// AppendSnapshot serializes the frozen graph (call after Finalize). The
// encoding is deterministic — map-backed state is emitted sorted — so
// identical graphs produce identical bytes. Hybrid graphs refuse: their
// labels live partly in disk epoch files.
func (g *Graph) AppendSnapshot(dst []byte) ([]byte, error) {
	if g.hybrid != nil {
		return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: hybrid graphs are not snapshottable")
	}
	dst = binary.AppendUvarint(dst, g.cfg.bits())
	dst = binary.AppendUvarint(dst, uint64(g.cfg.MinPathFreq))
	dst = binary.AppendUvarint(dst, uint64(g.cfg.MaxPathsPerFunc))

	// Specialized path set, as block-ID sequences in node order: NewGraph
	// assigns path node IDs in iteration order over this list, so the
	// rebuilt node numbering matches the serialized dynamic edges.
	paths := g.pathSeqs()
	dst = binary.AppendUvarint(dst, uint64(len(paths)))
	for _, seq := range paths {
		dst = binary.AppendUvarint(dst, uint64(len(seq)))
		for _, b := range seq {
			dst = binary.AppendUvarint(dst, uint64(b.ID))
		}
	}

	dst = binary.AppendUvarint(dst, uint64(g.ts))

	// Last-definition table, sorted by address. A loaded graph already
	// holds it as sorted arrays (lastDef == nil).
	addrs, refs := g.defAddrs, g.defRefs
	if g.lastDef != nil {
		addrs = make([]int64, 0, len(g.lastDef))
		for a := range g.lastDef {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		refs = make([]DefRef, len(addrs))
		for i, a := range addrs {
			refs[i] = g.lastDef[a]
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(addrs)))
	prev := int64(0)
	for i, a := range addrs {
		dst = binary.AppendUvarint(dst, zigzag(a-prev))
		dst = appendLoc(dst, refs[i].Loc)
		dst = binary.AppendUvarint(dst, uint64(refs[i].Ts))
		dst = appendBool(dst, refs[i].Live)
		prev = a
	}

	// Label registry, in id order.
	dst = binary.AppendUvarint(dst, uint64(len(g.allLabels)))
	for _, l := range g.allLabels {
		var fl byte
		if l.shared {
			fl |= 1
		}
		if l.isCD {
			fl |= 2
		}
		dst = append(dst, fl)
		dst = labelblock.AppendList(dst, &l.list)
	}

	// Dynamic edges and adopted default rules, per node.
	dst = binary.AppendUvarint(dst, uint64(len(g.nodes)))
	for _, n := range g.nodes {
		dst = binary.AppendUvarint(dst, uint64(len(n.UseSets)))
		for k := range n.UseSets {
			us := &n.UseSets[k]
			dst = binary.AppendUvarint(dst, uint64(len(us.Dyn)))
			for i := range us.Dyn {
				dst = appendLoc(dst, us.Dyn[i].Tgt)
				dst = binary.AppendUvarint(dst, uint64(us.Dyn[i].L.id))
			}
			dst = appendDefault(dst, &us.Default)
		}
		dst = binary.AppendUvarint(dst, uint64(len(n.Occs)))
		for i := range n.Occs {
			cd := &n.Occs[i].CD
			dst = binary.AppendUvarint(dst, uint64(len(cd.Dyn)))
			for j := range cd.Dyn {
				dst = appendLoc(dst, cd.Dyn[j].Tgt)
				dst = binary.AppendUvarint(dst, uint64(cd.Dyn[j].L.id))
			}
			dst = appendDefault(dst, &cd.Default)
		}
	}

	dst = binary.AppendUvarint(dst, uint64(g.adaptiveData))
	dst = binary.AppendUvarint(dst, uint64(g.adaptiveCD))
	for _, v := range g.elim.fields() {
		dst = binary.AppendUvarint(dst, uint64(*v))
	}
	return dst, nil
}

// pathSeqs returns the specialized path block sequences in node-ID order.
func (g *Graph) pathSeqs() [][]*ir.Block {
	type pathNode struct {
		id  NodeID
		seq []*ir.Block
	}
	ps := make([]pathNode, 0, len(g.pathByKey))
	for _, id := range g.pathByKey {
		n := g.nodes[id]
		seq := make([]*ir.Block, len(n.Occs))
		for i := range n.Occs {
			seq[i] = n.Occs[i].B
		}
		ps = append(ps, pathNode{id: id, seq: seq})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].id < ps[j].id })
	out := make([][]*ir.Block, len(ps))
	for i := range ps {
		out[i] = ps[i].seq
	}
	return out
}

func appendLoc(dst []byte, loc InstLoc) []byte {
	dst = binary.AppendUvarint(dst, uint64(loc.Node))
	return binary.AppendUvarint(dst, uint64(loc.Stmt))
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// appendDefault serializes an adaptive default rule. A still-warming rule
// has adopted nothing a loaded graph could use, so it collapses to
// DefDead — Resolve declines either way, keeping loaded-graph slices
// identical to the source graph's.
func appendDefault(dst []byte, d *DefaultEdge) []byte {
	mode := d.Mode
	if mode == DefWarm {
		mode = DefDead
	}
	dst = append(dst, byte(mode))
	dst = appendLoc(dst, d.Tgt)
	return binary.AppendUvarint(dst, zigzag(d.Val))
}

// LoadSnapshot reconstructs a frozen graph from AppendSnapshot bytes:
// the static component is rebuilt with NewGraph from the IR plus the
// serialized path set, then the dynamic component is attached, with the
// rebuilt structure validated against the snapshot's shape at every
// level. Sealed block payloads alias data; the caller keeps the snapshot
// buffer reachable for the graph's lifetime. Errors are classified
// *labelblock.CorruptError values.
func LoadSnapshot(p *ir.Program, data []byte) (*Graph, error) {
	bits, data, err := snapUvarint(data, "config bits")
	if err != nil {
		return nil, err
	}
	if bits >= cfgPlainLabels<<1 {
		return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: unknown config bits %#x", bits)
	}
	cfg := configFromBits(bits)
	mpf, data, err := snapUvarint(data, "config MinPathFreq")
	if err != nil {
		return nil, err
	}
	mppf, data, err := snapUvarint(data, "config MaxPathsPerFunc")
	if err != nil {
		return nil, err
	}
	cfg.MinPathFreq = int64(mpf)
	cfg.MaxPathsPerFunc = int(mppf)

	nPaths, data, err := snapUvarint(data, "path count")
	if err != nil {
		return nil, err
	}
	if nPaths > uint64(len(p.Blocks))*1024 {
		return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: implausible path count %d", nPaths)
	}
	paths := make([]*profile.PathProfile, 0, nPaths)
	for i := uint64(0); i < nPaths; i++ {
		var nSeq uint64
		if nSeq, data, err = snapUvarint(data, "path length"); err != nil {
			return nil, err
		}
		if nSeq < 2 || nSeq > uint64(len(p.Blocks))*64 {
			return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: implausible path length %d", nSeq)
		}
		seq := make([]*ir.Block, nSeq)
		for j := range seq {
			var bid uint64
			if bid, data, err = snapUvarint(data, "path block id"); err != nil {
				return nil, err
			}
			if bid >= uint64(len(p.Blocks)) {
				return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: path block id %d out of range", bid)
			}
			seq[j] = p.Blocks[bid]
		}
		paths = append(paths, &profile.PathProfile{Fn: seq[0].Fn, Seq: seq, Key: profile.SeqKey(seq)})
	}

	g := NewGraph(p, cfg, paths, nil)
	if len(g.allLabels) != 0 {
		return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: fresh static graph has labels")
	}
	if cfg.PathSpec && len(g.pathByKey) != len(paths) {
		// A duplicate or non-path sequence collapsed: the node numbering
		// would not match the serialized dynamic edges.
		return nil, labelblock.Corrupt(labelblock.ClassBadBlock,
			"opt: %d serialized paths rebuilt %d path nodes", len(paths), len(g.pathByKey))
	}

	ts, data, err := snapUvarint(data, "timestamp counter")
	if err != nil {
		return nil, err
	}
	g.ts = int64(ts)

	nDefs, data, err := snapUvarint(data, "lastDef count")
	if err != nil {
		return nil, err
	}
	if nDefs > uint64(len(data)) {
		// Every entry costs at least one byte; reject before allocating.
		return nil, labelblock.Corrupt(labelblock.ClassTruncated, "opt: lastDef count %d exceeds remaining data", nDefs)
	}
	// Bulk-fill the sorted-array form (defOf binary-searches it) and drop
	// the static graph's empty map: hashed inserts per address are the
	// single largest cost of loading a large image.
	g.lastDef = nil
	g.defAddrs = make([]int64, nDefs)
	g.defRefs = make([]DefRef, nDefs)
	prev := int64(0)
	for i := uint64(0); i < nDefs; i++ {
		var da, dts uint64
		var loc InstLoc
		if da, data, err = snapUvarint(data, "lastDef addr"); err != nil {
			return nil, err
		}
		if loc, data, err = g.decodeLoc(data, "lastDef"); err != nil {
			return nil, err
		}
		if dts, data, err = snapUvarint(data, "lastDef ts"); err != nil {
			return nil, err
		}
		if len(data) == 0 {
			return nil, labelblock.Corrupt(labelblock.ClassTruncated, "opt: data ends inside lastDef live flag")
		}
		live := data[0] != 0
		data = data[1:]
		addr := prev + unzig(da)
		if i > 0 && addr <= prev {
			return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: lastDef addresses not strictly ascending")
		}
		prev = addr
		g.defAddrs[i] = addr
		g.defRefs[i] = DefRef{Loc: loc, Ts: int64(dts), Live: live}
	}

	nLabels, data, err := snapUvarint(data, "label count")
	if err != nil {
		return nil, err
	}
	if nLabels > 1<<28 {
		return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: implausible label count %d", nLabels)
	}
	for i := uint64(0); i < nLabels; i++ {
		if len(data) == 0 {
			return nil, labelblock.Corrupt(labelblock.ClassTruncated, "opt: data ends inside label flags")
		}
		fl := data[0]
		data = data[1:]
		if fl&^3 != 0 {
			return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: unknown label flags %#x", fl)
		}
		l := g.newLabels(fl&1 != 0, fl&2 != 0)
		if l.list, data, err = labelblock.DecodeList(data); err != nil {
			return nil, err
		}
	}

	nNodes, data, err := snapUvarint(data, "node count")
	if err != nil {
		return nil, err
	}
	if nNodes != uint64(len(g.nodes)) {
		return nil, labelblock.Corrupt(labelblock.ClassBadBlock,
			"opt: snapshot has %d nodes, rebuilt graph has %d", nNodes, len(g.nodes))
	}
	for _, n := range g.nodes {
		var nUS uint64
		if nUS, data, err = snapUvarint(data, "use set count"); err != nil {
			return nil, err
		}
		if nUS != uint64(len(n.UseSets)) {
			return nil, labelblock.Corrupt(labelblock.ClassBadBlock,
				"opt: node %d has %d use sets, snapshot has %d", n.ID, len(n.UseSets), nUS)
		}
		for k := range n.UseSets {
			us := &n.UseSets[k]
			var nDyn uint64
			if nDyn, data, err = snapUvarint(data, "dyn edge count"); err != nil {
				return nil, err
			}
			if nDyn > 0 {
				us.Dyn = make([]DynEdge, nDyn)
				for i := range us.Dyn {
					if us.Dyn[i].Tgt, data, err = g.decodeLoc(data, "dyn edge"); err != nil {
						return nil, err
					}
					if us.Dyn[i].L, data, err = g.decodeLabelRef(data); err != nil {
						return nil, err
					}
				}
			}
			if data, err = g.decodeDefault(data, &us.Default); err != nil {
				return nil, err
			}
		}
		var nOccs uint64
		if nOccs, data, err = snapUvarint(data, "occurrence count"); err != nil {
			return nil, err
		}
		if nOccs != uint64(len(n.Occs)) {
			return nil, labelblock.Corrupt(labelblock.ClassBadBlock,
				"opt: node %d has %d occurrences, snapshot has %d", n.ID, len(n.Occs), nOccs)
		}
		for i := range n.Occs {
			cd := &n.Occs[i].CD
			var nDyn uint64
			if nDyn, data, err = snapUvarint(data, "cd dyn edge count"); err != nil {
				return nil, err
			}
			if nDyn > 0 {
				cd.Dyn = make([]CDDynEdge, nDyn)
				for j := range cd.Dyn {
					if cd.Dyn[j].Tgt, data, err = g.decodeLoc(data, "cd dyn edge"); err != nil {
						return nil, err
					}
					if cd.Dyn[j].L, data, err = g.decodeLabelRef(data); err != nil {
						return nil, err
					}
				}
			}
			if data, err = g.decodeDefault(data, &cd.Default); err != nil {
				return nil, err
			}
		}
	}

	ad, data, err := snapUvarint(data, "adaptive data count")
	if err != nil {
		return nil, err
	}
	ac, data, err := snapUvarint(data, "adaptive cd count")
	if err != nil {
		return nil, err
	}
	g.adaptiveData, g.adaptiveCD = int64(ad), int64(ac)
	for _, v := range g.elim.fields() {
		var e uint64
		if e, data, err = snapUvarint(data, "elim counter"); err != nil {
			return nil, err
		}
		*v = int64(e)
	}
	if len(data) != 0 {
		return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: %d trailing bytes after snapshot", len(data))
	}
	return g, nil
}

// decodeLoc reads and range-checks an InstLoc.
func (g *Graph) decodeLoc(data []byte, what string) (InstLoc, []byte, error) {
	node, data, err := snapUvarint(data, what)
	if err != nil {
		return InstLoc{}, nil, err
	}
	st, data, err := snapUvarint(data, what)
	if err != nil {
		return InstLoc{}, nil, err
	}
	if node >= uint64(len(g.nodes)) {
		return InstLoc{}, nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: %s node %d out of range", what, node)
	}
	if st >= uint64(len(g.nodes[node].Stmts)) {
		return InstLoc{}, nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: %s stmt %d out of range", what, st)
	}
	return InstLoc{Node: NodeID(node), Stmt: int32(st)}, data, nil
}

// decodeLabelRef reads a label registry id and resolves it.
func (g *Graph) decodeLabelRef(data []byte) (*Labels, []byte, error) {
	id, data, err := snapUvarint(data, "label id")
	if err != nil {
		return nil, nil, err
	}
	if id >= uint64(len(g.allLabels)) {
		return nil, nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: label id %d out of range", id)
	}
	return g.allLabels[id], data, nil
}

// decodeDefault reads an adaptive default rule.
func (g *Graph) decodeDefault(data []byte, d *DefaultEdge) ([]byte, error) {
	if len(data) == 0 {
		return nil, labelblock.Corrupt(labelblock.ClassTruncated, "opt: data ends inside default mode")
	}
	mode := DefaultMode(data[0])
	data = data[1:]
	if mode == DefWarm || mode > DefDead {
		return nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: invalid default mode %d", mode)
	}
	loc, data, err := g.decodeLoc(data, "default")
	if err != nil {
		return nil, err
	}
	val, data, err := snapUvarint(data, "default value")
	if err != nil {
		return nil, err
	}
	d.Mode, d.Tgt, d.Val, d.warm = mode, loc, unzig(val), nil
	return data, nil
}

// fields lists every Elim counter, in serialization order.
func (e *Elim) fields() []*int64 {
	return []*int64{
		&e.UseSlots, &e.OPT1DU, &e.OPT2UU, &e.AdaptiveData, &e.NoProducer, &e.DataLabels,
		&e.CDExecs, &e.OPT4Delta, &e.OPT5Local, &e.OPT5Same, &e.AdaptiveCD, &e.NoAncestor, &e.CDLabels,
		&e.OPT3Dedup, &e.OPT6Dedup,
	}
}

// snapUvarint decodes one uvarint with an inline fast path: the error
// context string is only materialized on failure — building "opt: "+what
// eagerly costs a concat + alloc per field and dominated load time.
func snapUvarint(data []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n > 0 {
		return v, data[n:], nil
	}
	if n == 0 {
		return 0, nil, labelblock.Corrupt(labelblock.ClassTruncated, "opt: data ends inside %s", what)
	}
	return 0, nil, labelblock.Corrupt(labelblock.ClassBadBlock, "opt: varint overflow in %s", what)
}
