package opt

import (
	"fmt"
	"sort"
)

// Diagnose attributes stored label pairs to categories, for understanding
// where compression is lost. Shared lists are counted once, attributed to
// the first owning edge encountered.
func (g *Graph) Diagnose(topK int) (map[string]int64, []string) {
	cat := map[string]int64{}
	seen := map[*Labels]bool{}
	type owner struct {
		desc  string
		pairs int64
	}
	var owners []owner
	for _, n := range g.nodes {
		for si := range n.Stmts {
			sc := &n.Stmts[si]
			for k := range sc.S.Uses {
				us := n.useSet(int32(si), int32(k))
				var total int64
				for i := range us.Dyn {
					l := us.Dyn[i].L
					if seen[l] {
						continue
					}
					seen[l] = true
					total += int64(l.Len())
				}
				if total == 0 {
					continue
				}
				slot := sc.S.Uses[k]
				key := "data:scalar"
				switch {
				case slot.IsPtr:
					key = "data:ptr"
				case slot.IsIdx:
					key = "data:idx"
				case slot.Obj != NoObjSentinel && g.p.Obj(slot.Obj).IsRet:
					key = "data:ret"
				}
				if us.Static != SNone {
					key += "+static"
				}
				cat[key] += total
				owners = append(owners, owner{
					desc: fmt.Sprintf("%s s%d@%s slot%d %s node%d pairs=%d",
						key, sc.S.ID, sc.S.Pos, k, sc.S.Op, n.ID, total),
					pairs: total,
				})
			}
		}
		for oi := range n.Occs {
			var total int64
			for i := range n.Occs[oi].CD.Dyn {
				l := n.Occs[oi].CD.Dyn[i].L
				if seen[l] {
					continue
				}
				seen[l] = true
				total += int64(l.Len())
			}
			if total == 0 {
				continue
			}
			key := "cd"
			if n.Occs[oi].CD.Static != CDNone {
				key += "+static"
			}
			cat[key] += total
			owners = append(owners, owner{
				desc: fmt.Sprintf("%s block %s node%d occ%d pairs=%d",
					key, n.Occs[oi].B, n.ID, oi, total),
				pairs: total,
			})
		}
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i].pairs > owners[j].pairs })
	if topK > len(owners) {
		topK = len(owners)
	}
	var top []string
	for _, o := range owners[:topK] {
		top = append(top, o.desc)
	}
	return cat, top
}

// NoObjSentinel mirrors ir.NoObj for the diagnostic above.
const NoObjSentinel = -1

// Clusters returns the number of label-sharing clusters formed (OPT-3,
// array OPT-3, and OPT-6).
func (g *Graph) Clusters() int { return len(g.clusterIsCD) }

// SharedLists returns the number of materialized shared label lists.
func (g *Graph) SharedLists() int { return len(g.clusterLabels) }

// EnableShortcuts toggles shortcut-edge traversal on an already built
// graph (Table 3 measures slicing with and without shortcuts on the same
// graph). Closures are computed lazily, so enabling is cheap.
func (g *Graph) EnableShortcuts(on bool) { g.cfg.Shortcuts = on }

// Config returns the graph's configuration.
func (g *Graph) Config() Config { return g.cfg }
