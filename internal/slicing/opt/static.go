package opt

import (
	"fmt"

	"dynslice/internal/dataflow"
	"dynslice/internal/ir"
	"dynslice/internal/profile"
	"dynslice/internal/slicing/labelblock"
)

// NewGraph constructs the static component of the compacted graph: one
// standalone node per basic block, one node per specialized path, the
// statically inferable (unlabeled) def-use/use-use/control edges, and the
// label-sharing clusters. Feed the returned graph a trace (it implements
// trace.Sink) and then slice.
//
// paths lists the profiled Ball-Larus paths to specialize (ignored unless
// cfg.PathSpec); cuts must be the same cut predicate used while profiling.
func NewGraph(p *ir.Program, cfg Config, paths []*profile.PathProfile, cuts *profile.Cuts) *Graph {
	g := &Graph{
		p:             p,
		cfg:           cfg,
		blockLoc:      make([]occLoc, len(p.Blocks)),
		pathByKey:     map[string]NodeID{},
		clusterLabels: map[clusterNodeKey]*Labels{},
		clusterIsCD:   map[int32]bool{},
		lastDef:       map[int64]DefRef{},
		copies:        map[ir.StmtID][]InstLoc{},
		occCopies:     map[ir.BlockID][]occLoc{},
		shortcuts:     map[InstLoc]*closure{},
		cuts:          cuts,
		mem:           labelblock.NewArena(),
	}
	if g.cuts == nil {
		g.cuts = profile.NewCuts(p)
	}

	// Standalone nodes, one per logical block: a call-free block by
	// itself, or a call block with its continuation chain (superblock) —
	// the paper's block model, where calls sit mid-block and the whole
	// block shares one timestamp.
	for _, b := range p.Blocks {
		if b.IsContinuation() {
			continue // part of its head's superblock node
		}
		chain := ir.LogicalChain(b)
		id := g.addNode(false, chain)
		for oi, cb := range chain {
			g.blockLoc[cb.ID] = occLoc{node: id, occ: int32(oi)}
		}
	}
	// Path nodes.
	if cfg.PathSpec {
		for _, pp := range paths {
			key := profile.SeqKey(pp.Seq)
			if _, dup := g.pathByKey[key]; dup {
				continue
			}
			g.pathByKey[key] = g.addNode(true, pp.Seq)
		}
	}

	// Static edges within every node.
	for _, n := range g.nodes {
		g.buildStaticData(n)
		g.buildStaticCD(n)
	}
	g.markResolveTracks()

	if cfg.ShareData || cfg.ShareCDData {
		g.buildClusters()
	}
	return g
}

type occLoc struct {
	node NodeID
	occ  int32
}

func (g *Graph) addNode(isPath bool, blocks []*ir.Block) NodeID {
	id := NodeID(len(g.nodes))
	n := &Node{ID: id, IsPath: isPath}
	for oi, b := range blocks {
		n.Occs = append(n.Occs, Occ{B: b, StmtOff: int32(len(n.Stmts))})
		g.occCopies[b.ID] = append(g.occCopies[b.ID], occLoc{node: id, occ: int32(oi)})
		for _, s := range b.Stmts {
			sc := StmtCopy{S: s, OccIdx: int32(oi), UseOff: int32(len(n.UseSets))}
			for range s.Uses {
				n.UseSets = append(n.UseSets, UseEdgeSet{ClusterID: -1})
			}
			g.copies[s.ID] = append(g.copies[s.ID], InstLoc{Node: id, Stmt: int32(len(n.Stmts))})
			n.Stmts = append(n.Stmts, sc)
		}
	}
	for oi := range n.Occs {
		n.Occs[oi].CD.ClusterID = -1
	}
	g.nodes = append(g.nodes, n)
	return id
}

// buildStaticData installs local def-use (OPT-1a/1b, and OPT-2c inside
// path nodes) and use-use (OPT-2b) edges over the node's straight-line
// statement sequence. Only named-scalar use slots are eligible: array and
// pointer slots read varying addresses, for which static inference is
// unsound.
func (g *Graph) buildStaticData(n *Node) {
	for i := range n.Stmts {
		sc := &n.Stmts[i]
		for k := range sc.S.Uses {
			us := sc.S.Uses[k]
			if !us.Scalar() {
				continue
			}
			slotSet := n.useSet(int32(i), int32(k))
			x := us.Obj
			// Nearest preceding must-def (must-aliases get priority over
			// may-aliases, as in the paper's OPT-1b policy).
			interference := false
			foundDU := false
			for j := i - 1; j >= 0; j-- {
				sj := n.Stmts[j].S
				if sj.MustDef == x {
					sameOcc := n.Stmts[j].OccIdx == sc.OccIdx
					// Cross-occurrence edges are OPT-2c in path nodes but
					// plain OPT-1 in superblock nodes (the paper's blocks
					// contain calls; the call's may-defs make them partial).
					allowed := g.cfg.LocalDefUse
					if !sameOcc && n.IsPath {
						allowed = g.cfg.PathSpec
					}
					if allowed {
						kind := SDU
						if interference {
							kind = SDUPartial
						}
						slotSet.Static = kind
						slotSet.StTgtStmt = int32(j)
						g.staticDU++
						foundDU = true
					}
					break
				}
				if dataflow.MayDefines(sj, x) {
					interference = true
				}
			}
			if foundDU || slotSet.Static != SNone {
				continue
			}
			// No preceding local must-def: try a use-use edge to the
			// nearest preceding use of the same scalar. May-defs between
			// the uses make the edge partial (dynamic fallback labels).
			for j := i - 1; j >= 0; j-- {
				sjc := &n.Stmts[j]
				if sjc.S.MustDef == x {
					break // unreachable given the scan above, kept for clarity
				}
				hit := false
				for k2 := range sjc.S.Uses {
					if u2 := sjc.S.Uses[k2]; u2.Scalar() && u2.Obj == x {
						sameOcc := sjc.OccIdx == sc.OccIdx
						allowed := g.cfg.UseUse
						if !sameOcc && n.IsPath {
							allowed = g.cfg.UseUse && g.cfg.PathSpec
						}
						if allowed {
							slotSet.Static = SUU
							slotSet.StTgtStmt = int32(j)
							slotSet.StTgtSlot = int32(k2)
							g.staticUU++
							hit = true
						}
						break
					}
				}
				if hit {
					break
				}
			}
		}
	}
}

// buildStaticCD installs static control edges: path-internal ancestors at
// delta 0 (OPT-5) and unique external ancestors at delta 1 (OPT-4),
// including unique call sites for function entries. Every static control
// edge is a bet verified at build time; mis-predictions get labels.
func (g *Graph) buildStaticCD(n *Node) {
	for oi := range n.Occs {
		occ := &n.Occs[oi]
		b := occ.B
		ancs := b.CDAncestors

		if g.cfg.SpecCD && !n.IsPath && oi > 0 {
			// Continuation occurrence of a superblock: control equivalent
			// to the head (same ancestors, and nothing of this frame runs
			// in between), so its control dependence is the head's
			// resolution at the same timestamp (OPT-5a's control
			// equivalence rule). Entry chains are the exception: the head
			// resolves to the interprocedural call-site attachment, which
			// belongs to the entry block alone — its continuations have no
			// controlling instance, so inferring the head's resolution
			// would drag the call site into their slices.
			if n.Occs[0].B != b.Fn.Entry() {
				occ.CD.Static = CDSame
				occ.CD.StTgtOcc = 0
				g.staticCD++
				continue
			}
		}
		if g.cfg.SpecCD && n.IsPath {
			// Latest earlier occurrence that is a static ancestor.
			for j := oi - 1; j >= 0; j-- {
				if blockIn(ancs, n.Occs[j].B) {
					occ.CD.Static = CDLocal
					occ.CD.StTgtOcc = int32(j)
					g.staticCD++
					break
				}
			}
			if occ.CD.Static != CDNone {
				continue
			}
		}
		if !g.cfg.InferCD || oi != 0 {
			continue
		}
		switch {
		case len(ancs) == 1:
			h := ancs[0]
			if !blockIn(h.Succs, b) {
				continue
			}
			term := h.Terminator()
			if term == nil {
				continue
			}
			occ.CD.Static = CDDelta
			occ.CD.StTgt = g.standaloneLoc(term)
			occ.CD.Delta = 1
			g.staticCD++
		case len(ancs) == 0 && b.Fn != g.p.Main && b == b.Fn.Entry():
			// Unique call site: the entry executes exactly one node after
			// the call block.
			var site *ir.Stmt
			count := 0
			for _, s := range g.p.Stmts {
				if s.Op == ir.OpCall && s.Callee == b.Fn {
					site = s
					count++
				}
			}
			if count != 1 {
				continue
			}
			occ.CD.Static = CDDelta
			occ.CD.StTgt = g.standaloneLoc(site)
			occ.CD.Delta = 1
			g.staticCD++
		}
	}
}

// standaloneLoc returns the copy of s in its block's standalone
// (logical-block) node.
func (g *Graph) standaloneLoc(s *ir.Stmt) InstLoc {
	loc := g.blockLoc[s.Block.ID]
	n := g.nodes[loc.node]
	return InstLoc{Node: loc.node, Stmt: n.Occs[loc.occ].StmtOff + int32(s.Idx)}
}

func blockIn(bs []*ir.Block, b *ir.Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// markResolveTracks flags every use slot that is the target of a use-use
// edge, so the builder records its resolution during each node execution.
func (g *Graph) markResolveTracks() {
	for _, n := range g.nodes {
		for k := range n.UseSets {
			us := &n.UseSets[k]
			if us.Static != SUU {
				continue
			}
			n.setTracked(us.StTgtStmt, us.StTgtSlot)
		}
	}
}

// buildClusters assigns OPT-3 and OPT-6 label-sharing clusters.
//
// OPT-3: for each (def block, use block) pair, all "clean" candidates —
// the use has no earlier local may-def, the def is the block's last
// (must-)def of the object, and no block strictly inside the chop may
// define the object — are guaranteed to be exercised simultaneously with
// identical labels, so their edges share one list.
//
// OPT-6: a block with a unique control ancestor shares its control labels
// with a clean data edge from that ancestor, when one exists.
func (g *Graph) buildClusters() {
	nextID := int32(0)
	for _, f := range g.p.Funcs {
		if g.cfg.ShareData {
			nextID = g.buildDataClusters(f, nextID)
		}
		if g.cfg.ShareCDData {
			nextID = g.buildCDClusters(f, nextID)
		}
	}
}

type dataCand struct {
	d    *ir.Stmt
	u    *ir.Stmt
	slot int
	x    ir.ObjID
}

func (g *Graph) buildDataClusters(f *ir.Func, nextID int32) int32 {
	rd := dataflow.ComputeReachingDefs(f)
	type pairKey struct{ bd, bu ir.BlockID }
	byPair := map[pairKey][]dataCand{}
	for _, bu := range f.Blocks {
		for i, s := range bu.Stmts {
			for k, us := range s.Uses {
				if !us.Scalar() {
					continue
				}
				x := us.Obj
				if anyMayDefBefore(bu, i, x) {
					continue
				}
				// A may-def of x at or after the use in this very block —
				// a call whose callee writes x, say — is harmless in
				// straight line, but when the block lies on a cycle it
				// flows around the back edge into the next iteration's
				// use, making the edge's producer vary even though the
				// chop interior below is spotless (the chop scan excludes
				// its endpoint blocks). Every other cyclic path back to
				// the use runs through chop-interior blocks, which the
				// InteriorClean check covers.
				if blockOnCycle(bu) && mayDefAtOrAfterIdx(bu.Stmts, i, x) {
					continue
				}
				for _, ds := range rd.DefsReaching(bu, x) {
					if !ds.Must || ds.Stmt.Block == bu {
						continue
					}
					if !isLastDefIn(ds.Stmt.Block, ds.Stmt, x) {
						continue
					}
					k2 := pairKey{ds.Stmt.Block.ID, bu.ID}
					byPair[k2] = append(byPair[k2], dataCand{d: ds.Stmt, u: s, slot: k, x: x})
				}
			}
		}
	}
	for pk, cands := range byPair {
		if len(cands) < 2 {
			continue
		}
		bd := g.p.Block(pk.bd)
		bu := g.p.Block(pk.bu)
		var clean []dataCand
		for _, c := range cands {
			if dataflow.InteriorClean(f, bd, bu, c.x) {
				clean = append(clean, c)
			}
		}
		if len(clean) < 2 {
			continue
		}
		id := nextID
		nextID++
		g.clusterIsCD[id] = false
		assigned := 0
		for _, c := range clean {
			if g.assignDataCluster(c.u, c.slot, id, c.d.ID) {
				assigned++
			}
		}
		if assigned < 2 {
			delete(g.clusterIsCD, id) // degenerate: nothing actually shares
		}
	}
	return g.buildArrayClusters(f, nextID)
}

// arrayCand is one candidate for the array generalization of OPT-3: a
// paired pattern in which block bd writes array A through its sole store
// with index scalar xd, and block bu reads A with index scalar xu. Two
// such candidates over different arrays (same bd, bu, xd, xu) are always
// exercised together on the same element, so their labels coincide: the
// last bd execution that wrote the read element wrote both arrays at that
// element (both stores are straight-line in bd with an unchanged index),
// and chop cleanliness rules out any intervening writer.
type arrayCand struct {
	d    *ir.Stmt
	u    *ir.Stmt
	slot int
	arr  ir.ObjID
}

// chainVN performs a chain-local value-numbering walk over the statements
// of one logical block: it returns, for every statement, the value number
// of its array-store index operand (or -1) and, for every (stmt, slot),
// the value number of its array-load index operand. Two equal numbers
// denote the same runtime value within one execution of the chain, which
// is what the array label-sharing argument needs (two stores or loads hit
// the same element).
func chainVN(p *ir.Program, stmts []*ir.Stmt) (defVN []int32, useVN map[[2]int32]int32) {
	defVN = make([]int32, len(stmts))
	useVN = map[[2]int32]int32{}
	var next int32 = 1
	fresh := func() int32 { next++; return next - 1 }
	vnOf := map[ir.ObjID]int32{} // scalar -> current value number
	vnExpr := map[string]int32{} // canonical op key -> value number
	scalarVN := func(o ir.ObjID) int32 {
		if v, ok := vnOf[o]; ok {
			return v
		}
		v := fresh()
		vnOf[o] = v
		return v
	}
	var exprVN func(e ir.Expr) int32
	exprVN = func(e ir.Expr) int32 {
		switch x := e.(type) {
		case *ir.EConst:
			k := fmt.Sprintf("c%d", x.Val)
			if v, ok := vnExpr[k]; ok {
				return v
			}
			v := fresh()
			vnExpr[k] = v
			return v
		case *ir.ELoad:
			return scalarVN(x.Obj)
		case *ir.EBinary:
			k := fmt.Sprintf("b%d_%d_%d", x.Op, exprVN(x.X), exprVN(x.Y))
			if v, ok := vnExpr[k]; ok {
				return v
			}
			v := fresh()
			vnExpr[k] = v
			return v
		case *ir.EUnary:
			k := fmt.Sprintf("u%d_%d", x.Op, exprVN(x.X))
			if v, ok := vnExpr[k]; ok {
				return v
			}
			v := fresh()
			vnExpr[k] = v
			return v
		}
		return fresh() // loads through memory, addresses, input: opaque
	}
	for j, s := range stmts {
		defVN[j] = -1
		// Record index value numbers for array loads of this statement.
		collect := func(e ir.Expr) {
			ir.WalkExpr(e, func(x ir.Expr) {
				if li, ok := x.(*ir.ELoadIdx); ok {
					useVN[[2]int32{int32(j), int32(li.Slot)}] = exprVN(li.Idx)
				}
			})
		}
		switch s.Op {
		case ir.OpAssign:
			collect(s.Rhs)
			if s.Lhs == ir.LIndex {
				collect(s.LhsIdx)
				defVN[j] = exprVN(s.LhsIdx)
			}
			if s.Lhs == ir.LDeref {
				collect(s.LhsAddr)
			}
		case ir.OpCond, ir.OpPrint, ir.OpReturn:
			collect(s.Rhs)
		case ir.OpCall:
			for _, a := range s.Args {
				collect(a)
			}
		}
		// Apply the statement's effects: a must-def rebinds its scalar to
		// the RHS value number; may-defs invalidate.
		if s.Op == ir.OpAssign && s.Lhs == ir.LVar {
			vnOf[s.LhsObj] = exprVN(s.Rhs)
		}
		for _, o := range s.MayDefs {
			if !p.Obj(o).IsArray {
				vnOf[o] = fresh()
			}
		}
	}
	return defVN, useVN
}

func (g *Graph) buildArrayClusters(f *ir.Func, nextID int32) int32 {
	type groupKey struct {
		bd, bu ir.BlockID // logical-block heads
		vnD    int32
		vnU    int32
	}
	type chainInfo struct {
		head, last *ir.Block
		stmts      []*ir.Stmt
		defVN      []int32
		useVN      map[[2]int32]int32
	}
	var chains []chainInfo
	chainBlocks := map[*ir.Block]map[*ir.Block]bool{}
	for _, b := range f.Blocks {
		if b.IsContinuation() {
			continue
		}
		ci := chainInfo{head: b}
		set := map[*ir.Block]bool{}
		for _, cb := range ir.LogicalChain(b) {
			ci.last = cb
			ci.stmts = append(ci.stmts, cb.Stmts...)
			set[cb] = true
		}
		ci.defVN, ci.useVN = chainVN(g.p, ci.stmts)
		chainBlocks[b] = set
		chains = append(chains, ci)
	}

	// Per chain: the sole array-store statement of each array (chain index
	// and statement), or nothing if the array is written more than once or
	// through an opaque effect.
	type store struct {
		s  *ir.Stmt
		at int
	}
	soleStore := make([]map[ir.ObjID]store, len(chains))
	for ci, ch := range chains {
		writes := map[ir.ObjID][]store{}
		for j, s := range ch.stmts {
			if s.Op == ir.OpAssign && s.Lhs == ir.LIndex {
				writes[s.LhsObj] = append(writes[s.LhsObj], store{s: s, at: j})
			} else {
				for _, o := range s.MayDefs {
					if g.p.Obj(o).IsArray {
						writes[o] = append(writes[o], store{})
					}
				}
			}
		}
		m := map[ir.ObjID]store{}
		for o, ss := range writes {
			if len(ss) == 1 && ss[0].s != nil {
				m[o] = ss[0]
			}
		}
		soleStore[ci] = m
	}
	mayDefBeforeIdx := func(stmts []*ir.Stmt, end int, o ir.ObjID) bool {
		for j := 0; j < end; j++ {
			if dataflow.MayDefines(stmts[j], o) {
				return true
			}
		}
		return false
	}

	groups := map[groupKey][]arrayCand{}
	for _, chu := range chains {
		for i, s := range chu.stmts {
			for k, us := range s.Uses {
				if !us.IsIdx {
					continue
				}
				arr := us.Obj
				vnU, ok := chu.useVN[[2]int32{int32(i), int32(k)}]
				if !ok {
					continue
				}
				// Non-local read: nothing earlier in the logical block may
				// define the array.
				if mayDefBeforeIdx(chu.stmts, i, arr) {
					continue
				}
				// When the reading chain lies on a CFG cycle, a write to
				// the array at or after the read (including a call whose
				// callee stores to it) reaches the next iteration's read,
				// so the read element's producer can be that write rather
				// than the paired store. Harmless in straight line,
				// disqualifying on a cycle.
				if blockOnCycle(chu.head) && mayDefAtOrAfterIdx(chu.stmts, i, arr) {
					continue
				}
				for ci, chd := range chains {
					if chd.head == chu.head {
						continue
					}
					st, ok := soleStore[ci][arr]
					if !ok {
						continue
					}
					// The store must survive to the end of its chain, and
					// no block strictly between the chains may define the
					// array (the chop starts at the chain's last block so
					// the chain's own store is not misread as a killer).
					killed := false
					for j := st.at + 1; j < len(chd.stmts); j++ {
						if dataflow.MayDefines(chd.stmts[j], arr) {
							killed = true
							break
						}
					}
					if killed || !dataflow.InteriorCleanExcept(f, chd.last, chu.head, chainBlocks[chd.head], arr) {
						continue
					}
					gk := groupKey{bd: chd.head.ID, bu: chu.head.ID, vnD: chd.defVN[st.at], vnU: vnU}
					groups[gk] = append(groups[gk], arrayCand{d: st.s, u: s, slot: k, arr: arr})
				}
			}
		}
	}
	for _, cands := range groups {
		if len(cands) < 2 {
			continue
		}
		// Distinct arrays only: two reads of the same array already share
		// one producing statement and gain nothing from a cluster.
		seenArr := map[ir.ObjID]bool{}
		var distinct []arrayCand
		for _, c := range cands {
			if !seenArr[c.arr] {
				seenArr[c.arr] = true
				distinct = append(distinct, c)
			}
		}
		if len(distinct) < 2 {
			continue
		}
		id := nextID
		nextID++
		g.clusterIsCD[id] = false
		assigned := 0
		for _, c := range distinct {
			if g.assignDataCluster(c.u, c.slot, id, c.d.ID) {
				assigned++
			}
		}
		if assigned < 2 {
			delete(g.clusterIsCD, id)
		}
	}
	return nextID
}

// assignDataCluster sets the cluster on every copy of the use slot,
// returning false if any copy already belongs to a cluster.
func (g *Graph) assignDataCluster(u *ir.Stmt, slot int, id int32, def ir.StmtID) bool {
	locs := g.copies[u.ID]
	for _, loc := range locs {
		if g.nodes[loc.Node].useSet(loc.Stmt, int32(slot)).ClusterID >= 0 {
			return false
		}
	}
	for _, loc := range locs {
		us := g.nodes[loc.Node].useSet(loc.Stmt, int32(slot))
		us.ClusterID = id
		us.ClusterDef = def
	}
	return true
}

func (g *Graph) buildCDClusters(f *ir.Func, nextID int32) int32 {
	for _, b := range f.Blocks {
		if len(b.CDAncestors) != 1 {
			continue
		}
		h := b.CDAncestors[0]
		if h.Fn != f {
			continue
		}
		found := false
		for i, s := range b.Stmts {
			if found {
				break
			}
			for k, us := range s.Uses {
				if !us.Scalar() {
					continue
				}
				x := us.Obj
				if anyMayDefBefore(b, i, x) {
					continue
				}
				d := lastMustDefIn(h, x)
				if d == nil {
					continue
				}
				// Same back-edge screen as the OPT-3 clusters: a may-def
				// of x at or after the use (a callee's MOD write, in
				// particular) reaches the next iteration's use when b sits
				// on a cycle, letting the data edge's producer differ from
				// the controlling h execution — its labels then cannot
				// stand in for the control labels.
				if blockOnCycle(b) && mayDefAtOrAfterIdx(b.Stmts, i, x) {
					continue
				}
				if !dataflow.InteriorClean(f, h, b, x) {
					continue
				}
				id := nextID
				if !g.assignDataCluster(s, k, id, d.ID) {
					continue
				}
				nextID++
				g.clusterIsCD[id] = true
				for _, ol := range g.occCopies[b.ID] {
					g.nodes[ol.node].Occs[ol.occ].CD.ClusterID = id
				}
				found = true
				break
			}
		}
	}
	return nextID
}

// mayDefAtOrAfterIdx reports whether stmts[i:] contains a statement that
// may define o.
func mayDefAtOrAfterIdx(stmts []*ir.Stmt, i int, o ir.ObjID) bool {
	for j := i; j < len(stmts); j++ {
		if dataflow.MayDefines(stmts[j], o) {
			return true
		}
	}
	return false
}

// blockOnCycle reports whether some CFG path leads from b back to b.
func blockOnCycle(b *ir.Block) bool {
	seen := map[*ir.Block]bool{}
	stack := append([]*ir.Block{}, b.Succs...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == b {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, x.Succs...)
	}
	return false
}

// anyMayDefBefore reports whether any statement of b before index i may
// define x.
func anyMayDefBefore(b *ir.Block, i int, x ir.ObjID) bool {
	for j := 0; j < i; j++ {
		if dataflow.MayDefines(b.Stmts[j], x) {
			return true
		}
	}
	return false
}

// isLastDefIn reports whether d is the last statement of b that may define
// x (so b's execution always leaves x holding d's value).
func isLastDefIn(b *ir.Block, d *ir.Stmt, x ir.ObjID) bool {
	for j := d.Idx + 1; j < len(b.Stmts); j++ {
		if dataflow.MayDefines(b.Stmts[j], x) {
			return false
		}
	}
	return true
}

// lastMustDefIn returns the last statement of b that must-defines x with
// no later may-def, or nil.
func lastMustDefIn(b *ir.Block, x ir.ObjID) *ir.Stmt {
	for j := len(b.Stmts) - 1; j >= 0; j-- {
		s := b.Stmts[j]
		if s.MustDef == x {
			return s
		}
		if dataflow.MayDefines(s, x) {
			return nil
		}
	}
	return nil
}
