package opt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dynslice/internal/slicing/explain"
	"dynslice/internal/slicing/labelblock"
)

// Hybrid mode implements the algorithm sketched in the paper's §4.2
// ("Combining idea behind LP with OPT"): the compacted graph is built in
// memory as usual, but whenever the accumulated explicit labels exceed a
// budget, the current *epoch* of labels is written to disk and dropped
// from memory. Because node timestamps are (per edge) monotone, a label's
// epoch is determined by its consumer timestamp, so slicing loads at most
// one epoch file at a time on demand — trading slicing-time I/O for a
// memory ceiling, which is what lets the representation scale to runs
// whose compacted labels still exceed RAM.
//
// Epoch files carry the same delta-varint block framing the in-memory
// lists use (labelblock.WriteBlocks), so flushing moves sealed blocks to
// disk mostly verbatim and on-disk epochs shrink by the same factor as
// the resident graph. Labels appended out of timestamp order by suspended
// superblock executions (recursion) would fall outside their epoch's
// range; the flush keeps such stragglers in memory, so every pair lives
// in exactly one place: the in-memory list or its epoch's file.

// epoch is one flushed label block.
type epoch struct {
	tsStart, tsEnd int64 // consumer-timestamp range [tsStart, tsEnd)
	path           string
	pairs          int64
}

// hybridState holds the disk-epoch machinery of a graph.
type hybridState struct {
	dir        string
	budget     int64 // max in-memory pairs before a flush
	sinceFlush int64
	tsStart    int64
	epochs     []epoch
	flushed    int64

	// One-epoch cache for slicing, shared by concurrent queries. Entries
	// stay block-encoded; lookups search them in place.
	mu          sync.Mutex
	cachedEpoch int
	cache       map[int32][]labelblock.Block
	loads       int64
}

// EnableHybrid turns on §4.2 disk-epoch mode: whenever more than budget
// labels are resident, they are flushed to a new epoch file under dir.
// Must be called before feeding the trace.
func (g *Graph) EnableHybrid(dir string, budget int64) error {
	if budget <= 0 {
		budget = 1 << 18
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Incompatible with epoch-parallel encoding: flushing splits lists
	// mid-build, which needs every sealed block's payload resident.
	if g.enc != nil {
		g.enc.Drain()
		g.enc = nil
	}
	g.hybrid = &hybridState{dir: dir, budget: budget, cachedEpoch: -1}
	return nil
}

// HybridEpochs reports how many epochs were flushed (0 when disabled).
func (g *Graph) HybridEpochs() int {
	if g.hybrid == nil {
		return 0
	}
	return len(g.hybrid.epochs)
}

// HybridLoads reports how many epoch files slicing loaded.
func (g *Graph) HybridLoads() int64 {
	if g.hybrid == nil {
		return 0
	}
	return g.hybrid.loads
}

// ResidentPairs returns the labels currently held in memory.
func (g *Graph) ResidentPairs() int64 {
	var n int64
	for _, l := range g.allLabels {
		n += int64(l.list.Len())
	}
	return n
}

// maybeFlush is called after each node execution in hybrid mode.
func (g *Graph) maybeFlush() {
	h := g.hybrid
	if h == nil {
		return
	}
	h.sinceFlush++
	// Counting resident pairs exactly on every node execution would be
	// quadratic; sample every 1024 executions.
	if h.sinceFlush%1024 != 0 {
		return
	}
	if g.ResidentPairs() < h.budget {
		return
	}
	if err := g.flushEpoch(); err != nil {
		// Disk trouble: disable hybrid mode rather than corrupt the graph;
		// labels simply stay in memory.
		g.hybrid = nil
	}
}

// flushEpoch writes every in-range resident pair to a new epoch file:
// per label, the list is split at the epoch start timestamp and the
// in-range blocks stream out through the shared block codec.
func (g *Graph) flushEpoch() error {
	h := g.hybrid
	start, end := h.tsStart, g.ts
	if end <= start {
		return nil
	}
	path := filepath.Join(h.dir, fmt.Sprintf("epoch%06d.labels", len(h.epochs)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var scratch [binary.MaxVarintLen64]byte
	var written int64
	for id, l := range g.allLabels {
		if l.list.Len() == 0 {
			continue
		}
		blocks := l.list.Split(g.mem, start)
		if len(blocks) == 0 {
			continue
		}
		n := binary.PutUvarint(scratch[:], uint64(id))
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		if err := labelblock.WriteBlocks(bw, blocks); err != nil {
			return err
		}
		var moved int64
		for i := range blocks {
			moved += int64(blocks[i].N)
		}
		l.flushed += moved
		written += moved
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	h.epochs = append(h.epochs, epoch{tsStart: start, tsEnd: end, path: path, pairs: written})
	h.flushed += written
	h.tsStart = end
	return nil
}

// findLabel searches l for tu: resident pairs first (through cc, the
// caller's per-worker cursor cache, when non-nil), then the epoch file
// whose range contains tu (loaded on demand, one-epoch cache). An
// observer is told about each actual epoch-file load charged to its
// query.
func (g *Graph) findLabel(l *Labels, id int32, tu int64, cc *labelblock.CursorCache, obs *explain.Recorder) (int64, int64, bool) {
	td, probes, ok := l.FindCached(cc, tu)
	if ok || g.hybrid == nil {
		return td, probes, ok
	}
	h := g.hybrid
	ei := sort.Search(len(h.epochs), func(i int) bool { return h.epochs[i].tsEnd > tu })
	if ei >= len(h.epochs) || h.epochs[ei].tsStart > tu {
		return 0, probes, false
	}
	// The one-slot cache is shared mutable state: serialize the load and
	// the probe so a concurrent load cannot swap the cache mid-search.
	h.mu.Lock()
	defer h.mu.Unlock()
	if obs != nil && h.cachedEpoch != ei {
		obs.HybridLoad()
	}
	if err := h.load(ei); err != nil {
		return 0, probes, false
	}
	td, _, p, ok := labelblock.FindBlocks(h.cache[id], tu)
	return td, probes + p, ok
}

// load reads an epoch file into the single-slot cache, keeping each
// label's blocks encoded.
func (h *hybridState) load(ei int) error {
	if h.cachedEpoch == ei {
		return nil
	}
	f, err := os.Open(h.epochs[ei].path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	cache := map[int32][]labelblock.Block{}
	for {
		id, err := binary.ReadUvarint(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		blocks, err := labelblock.ReadBlocks(br, false)
		if err != nil {
			return err
		}
		cache[int32(id)] = blocks
	}
	h.cache = cache
	h.cachedEpoch = ei
	h.loads++
	return nil
}
