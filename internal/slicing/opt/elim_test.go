package opt_test

import (
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/profile"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/opt"
	"dynslice/internal/telemetry"
)

const elimSrc = `
var total = 0;
var arr[16];

func addup(k) {
	var j = 0;
	var acc = 0;
	while (j < k) {
		acc = acc + arr[j];
		j = j + 1;
	}
	return acc;
}

func main() {
	var i = 0;
	while (i < 16) {
		arr[i] = i * 3;
		if (i % 4 == 0) {
			total = total + addup(i);
		}
		i = i + 1;
	}
	print(total);
}
`

func buildElimGraph(t *testing.T, reg *telemetry.Registry) *opt.Graph {
	t.Helper()
	p, err := compile.Source(elimSrc)
	if err != nil {
		t.Fatal(err)
	}
	col := profile.NewCollector(p)
	if _, err := interp.Run(p, interp.Options{Sink: col}); err != nil {
		t.Fatal(err)
	}
	g := opt.NewGraph(p, opt.Full(), col.HotPaths(1, 0), col.Cuts())
	if reg != nil {
		g.SetTelemetry(reg)
	}
	if _, err := interp.Run(p, interp.Options{Sink: g}); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestElimAccounting verifies the elimination tallies' core invariant:
// every processed use-slot and block-occurrence execution is accounted
// for by exactly one disposition, and the explicit-label tallies agree
// with the label pairs the graph actually stores.
func TestElimAccounting(t *testing.T) {
	g := buildElimGraph(t, nil)
	e := g.Elim()

	if e.UseSlots == 0 || e.CDExecs == 0 {
		t.Fatalf("no executions tallied: %+v", e)
	}
	if got := e.DataAccounted(); got != e.UseSlots {
		t.Fatalf("data dispositions sum to %d, want UseSlots=%d (%+v)", got, e.UseSlots, e)
	}
	if got := e.CDAccounted(); got != e.CDExecs {
		t.Fatalf("cd dispositions sum to %d, want CDExecs=%d (%+v)", got, e.CDExecs, e)
	}
	// The optimizations must actually fire on this workload.
	if e.OPT1DU == 0 {
		t.Error("no OPT-1 def-use eliminations on a loop-heavy program")
	}
	if e.OPT4Delta+e.OPT5Local+e.OPT5Same == 0 {
		t.Error("no OPT-4/OPT-5 control eliminations")
	}
	// With no producerless tombstones, the explicit-label tallies minus
	// shared-list dedupes equal the stored pairs.
	if e.NoProducer == 0 {
		if want := e.DataLabels - e.OPT3Dedup; g.DataPairs() != want {
			t.Errorf("stored data pairs = %d, want %d", g.DataPairs(), want)
		}
	}
	if e.NoAncestor == 0 {
		if want := e.CDLabels - e.OPT6Dedup; g.CDPairs() != want {
			t.Errorf("stored cd pairs = %d, want %d", g.CDPairs(), want)
		}
	}
}

// TestElimTelemetryFlush verifies that End publishes the tallies and
// graph-shape gauges to an attached registry, and that shortcut hits are
// counted during slicing.
func TestElimTelemetryFlush(t *testing.T) {
	reg := telemetry.New()
	g := buildElimGraph(t, reg)
	e := g.Elim()

	c := func(name string) int64 { return reg.Counter(name).Value() }
	if c("opt.build.use_slots") != e.UseSlots {
		t.Fatalf("opt.build.use_slots = %d, want %d", c("opt.build.use_slots"), e.UseSlots)
	}
	if c("opt.elim.opt1.du") != e.OPT1DU || c("opt.labels.data") != e.DataLabels {
		t.Fatal("elimination counters do not match the builder tallies")
	}
	if got := reg.Gauge("opt.graph.label_pairs").Value(); got != g.LabelPairs() {
		t.Fatalf("opt.graph.label_pairs = %d, want %d", got, g.LabelPairs())
	}

	// A slice over the shortcut-enabled graph must count closure hits, and
	// its reported instance count must match the per-query stats.
	_, stats, err := g.Slice(slicing.AddrCriterion(interp.GlobalBase))
	if err != nil {
		t.Fatal(err)
	}
	if hits := c("opt.slice.shortcut_hits"); hits != stats.Instances {
		t.Fatalf("shortcut hits = %d, want one per instance (%d)", hits, stats.Instances)
	}
}
