package opt

import (
	"slices"
	"sync"
	"sync/atomic"
	"unsafe"

	"dynslice/internal/ir"
	"dynslice/internal/profile"
	"dynslice/internal/slicing/labelblock"
	"dynslice/internal/telemetry"
)

// NodeID identifies a node of the compacted graph: either a standalone
// basic block or a specialized Ball-Larus path.
type NodeID int32

// Pair is one explicit dependence label: the timestamps of the defining
// (or controlling) node execution and the using node execution.
type Pair struct {
	Td, Tu int64
}

// Labels is an append-ordered list of pairs, possibly shared between edges
// of a simultaneity cluster (OPT-3 / OPT-6). Pairs arrive in Tu order
// except when a recursive call suspends and resumes a superblock-node
// execution, so lookups seal lazily on first use after an out-of-order
// append. A shared list dedupes repeated pairs. Storage is the delta-varint
// block encoding of labelblock (a plain flat []Pair under
// Config.PlainLabels, the -compact=false escape hatch).
type Labels struct {
	id      int32 // index in the graph's label registry (epoch file key)
	list    labelblock.List
	flushed int64 // pairs moved to disk epochs; Len includes them
	last    Pair  // most recent append, for shared-list dedupe (survives flushes)
	hasLast bool
	shared  bool
	isCD    bool // tagged control-side for the dyDDG/dyCDG size split
}

// Append records a pair, deduping an immediate repeat on shared lists.
// It reports whether the pair was stored (false = deduped). Pairs land in
// ar-backed storage; a nil arena falls back to the heap.
func (l *Labels) Append(ar *labelblock.Arena, p Pair) bool {
	return l.AppendEnc(ar, nil, p)
}

// AppendEnc is Append with epoch-parallel block sealing through enc (nil:
// inline sealing, exactly Append).
func (l *Labels) AppendEnc(ar *labelblock.Arena, enc *labelblock.Encoder, p Pair) bool {
	if l.shared && l.hasLast && l.last == p {
		return false
	}
	l.last, l.hasLast = p, true
	l.list.AppendEnc(ar, enc, labelblock.Pair(p), 0)
	return true
}

// ensureSorted seals the list after out-of-order appends (deduping shared
// lists, whose append-time dedupe out-of-order arrivals can defeat). A
// no-op on clean lists, so post-Finalize lookups never mutate.
func (l *Labels) ensureSorted() {
	if l.list.Dirty() {
		l.list.Seal(l.shared)
	}
}

// Find returns the Td paired with tu: binary search over sealed blocks,
// then a scan within one block. The second result counts label probes
// (for traversal-cost accounting); found reports success.
func (l *Labels) Find(tu int64) (td int64, probes int64, found bool) {
	return l.FindCached(nil, tu)
}

// FindCached is Find through a per-worker block cursor cache (nil: plain
// Find). Batched traversals resolve clustered timestamps against the same
// hot lists; the cursor answers those from one decoded block.
func (l *Labels) FindCached(cc *labelblock.CursorCache, tu int64) (td int64, probes int64, found bool) {
	l.ensureSorted()
	td, _, probes, found = cc.Find(&l.list, tu)
	return td, probes, found
}

// Len returns the number of stored pairs, resident plus flushed — derived
// from the two stores rather than adjusted in place, so epoch flushing and
// sort-time dedupe cannot drift it.
func (l *Labels) Len() int { return int(l.flushed) + l.list.Len() }

// MemBytes reports the resident bytes of the list's label storage plus
// the Labels bookkeeping itself.
func (l *Labels) MemBytes() int64 { return l.list.MemBytes() + int64(unsafe.Sizeof(*l)) }

// InstLoc addresses one statement copy: a node and the copy's index within
// the node.
type InstLoc struct {
	Node NodeID
	Stmt int32
}

// DynEdge is a dynamically introduced, labeled dependence edge from a use
// slot to the statement copy that produced the value.
type DynEdge struct {
	Tgt InstLoc
	L   *Labels
}

// StaticKind classifies the statically introduced edge of a use slot.
type StaticKind uint8

// Static edge kinds for use slots.
const (
	SNone      StaticKind = iota
	SDU                   // full local def-use (OPT-1a / OPT-2c): no labels ever needed
	SDUPartial            // local def-use with may-alias interference (OPT-1b)
	SUU                   // local use-use (OPT-2b); the target statement is not sliced in
)

// DefaultMode classifies an adaptive default edge (an extension
// generalizing the paper's OPT-4 fixed-distance inference to data
// dependences; see Config.AdaptiveDeltas).
type DefaultMode uint8

// Adaptive default edge modes.
const (
	DefNone  DefaultMode = iota
	DefWarm              // collecting candidate rules; every observation labeled
	DefDelta             // producer is always Val node executions earlier
	DefConst             // producer is always the single execution at Val
	DefDead              // no dominant rule (or a producerless execution); labels carry everything
)

// warmObservations is the number of labeled observations collected before
// a rule is adopted.
const warmObservations = 24

// candidate is one (target, rule) hypothesis tracked during warmup with a
// Misra-Gries heavy-hitter counter.
type candidate struct {
	tgt     InstLoc
	isConst bool
	val     int64
	count   int32
}

type warmStats struct {
	obs   int32
	cands [4]candidate
	used  [4]bool
}

// DefaultEdge is an adaptive, build-time-verified inference rule for a use
// slot or control edge: when no explicit label matches a timestamp, the
// producing instance is inferred from the rule. The builder adopts the
// dominant (target, fixed-delta | constant-source) hypothesis after a
// warmup of labeled observations and records an explicit label whenever a
// later observation disagrees, so inference is always sound — a wrongly
// adopted rule only costs labels, never correctness.
type DefaultEdge struct {
	Mode DefaultMode
	Tgt  InstLoc
	Val  int64 // delta (DefDelta) or constant timestamp (DefConst)
	warm *warmStats
}

// Resolve infers the producing timestamp for tu, if the rule applies.
func (d *DefaultEdge) Resolve(tu int64) (InstLoc, int64, bool) {
	switch d.Mode {
	case DefDelta:
		return d.Tgt, tu - d.Val, true
	case DefConst:
		return d.Tgt, d.Val, true
	}
	return InstLoc{}, 0, false
}

// observe feeds one exercised dependence (producer tgt at td, consumer at
// tu) to the rule machinery. It returns true when the adopted rule covers
// the observation (no label needed).
func (d *DefaultEdge) observe(tgt InstLoc, td, tu int64) bool {
	switch d.Mode {
	case DefNone:
		d.Mode = DefWarm
		d.warm = &warmStats{}
		fallthrough
	case DefWarm:
		d.vote(candidate{tgt: tgt, isConst: false, val: tu - td})
		d.vote(candidate{tgt: tgt, isConst: true, val: td})
		d.warm.obs++
		if d.warm.obs >= warmObservations {
			d.adopt()
		}
		return false
	case DefDelta:
		return tgt == d.Tgt && td == tu-d.Val
	case DefConst:
		return tgt == d.Tgt && td == d.Val
	}
	return false
}

func (d *DefaultEdge) vote(c candidate) {
	w := d.warm
	for i := range w.cands {
		if w.used[i] && w.cands[i].tgt == c.tgt && w.cands[i].isConst == c.isConst && w.cands[i].val == c.val {
			w.cands[i].count++
			return
		}
	}
	for i := range w.cands {
		if !w.used[i] {
			w.used[i] = true
			c.count = 1
			w.cands[i] = c
			return
		}
	}
	for i := range w.cands {
		w.cands[i].count--
		if w.cands[i].count <= 0 {
			w.used[i] = false
		}
	}
}

func (d *DefaultEdge) adopt() {
	w := d.warm
	best := -1
	for i := range w.cands {
		if w.used[i] && (best < 0 || w.cands[i].count > w.cands[best].count) {
			best = i
		}
	}
	d.warm = nil
	if best < 0 || w.cands[best].count < 4 {
		d.Mode = DefDead
		return
	}
	d.Tgt = w.cands[best].tgt
	d.Val = w.cands[best].val
	if w.cands[best].isConst {
		d.Mode = DefConst
	} else {
		d.Mode = DefDelta
	}
}

// kill permanently disables the rule (used when an execution has no
// producer, which no rule may paper over).
func (d *DefaultEdge) kill() {
	d.Mode = DefDead
	d.warm = nil
}

// UseEdgeSet is the backward edge set of one use slot of one statement
// copy (the paper's E_us).
type UseEdgeSet struct {
	Static     StaticKind
	StTgtStmt  int32     // target statement copy (same node)
	StTgtSlot  int32     // target use slot (SUU only)
	ClusterID  int32     // OPT-3/OPT-6 cluster for dynamic labels, or -1
	ClusterDef ir.StmtID // the defining statement the cluster applies to
	Default    DefaultEdge
	Dyn        []DynEdge
}

// CDKind classifies the static control edge of a block occurrence.
type CDKind uint8

// Static control edge kinds.
const (
	CDNone  CDKind = iota
	CDLocal        // ancestor is an earlier occurrence in the same node (OPT-5; delta 0)
	CDDelta        // unique external ancestor at fixed node distance (OPT-4)
	CDSame         // control equivalent to an earlier occurrence: defer to its
	// resolution at the same timestamp (OPT-5a, applied to the
	// continuation occurrences of superblock nodes)
)

// CDDynEdge is a dynamically introduced, labeled control dependence edge.
type CDDynEdge struct {
	Tgt InstLoc // the controlling branch/call statement copy
	L   *Labels
}

// CDEdgeSet is the backward control edge set of one block occurrence (the
// paper's E_cs, at block granularity).
type CDEdgeSet struct {
	Static    CDKind
	StTgtOcc  int32   // CDLocal: controlling occurrence within this node
	StTgt     InstLoc // CDDelta: terminator copy in the ancestor's standalone node
	Delta     int64   // CDDelta: timestamp distance
	ClusterID int32   // OPT-6 cluster for dynamic labels, or -1
	Default   DefaultEdge
	Dyn       []CDDynEdge
}

// Occ is one occurrence of a basic block within a node. A standalone node
// has exactly one occurrence; a path node has one per path position.
type Occ struct {
	B       *ir.Block
	StmtOff int32 // index of the block's first statement copy in Node.Stmts
	CD      CDEdgeSet
}

// StmtCopy is one copy of an IR statement within a node. Its backward data
// edge sets live columnar in Node.UseSets at [UseOff, UseOff+len(S.Uses)),
// so a copy is a fixed 16 bytes instead of carrying two slice headers.
type StmtCopy struct {
	S      *ir.Stmt
	OccIdx int32
	UseOff int32 // index of the copy's first use slot in Node.UseSets
}

// Node is a graph node: a standalone block or a specialized path. The use
// edge sets of all statement copies are stored structure-of-arrays in one
// UseSets column; resolution tracking (targets of use-use edges) is a
// bitset over the same index space.
type Node struct {
	ID      NodeID
	IsPath  bool
	Occs    []Occ
	Stmts   []StmtCopy
	UseSets []UseEdgeSet
	track   []uint64 // bitset over UseSets indices; nil = nothing tracked
}

// useSet returns the edge set of one use slot of one statement copy.
func (n *Node) useSet(si, slot int32) *UseEdgeSet {
	return &n.UseSets[n.Stmts[si].UseOff+slot]
}

// nUses returns the number of use slots of a statement copy.
func (n *Node) nUses(si int32) int { return len(n.Stmts[si].S.Uses) }

// tracked reports whether a use slot records its resolutions.
func (n *Node) tracked(si, slot int32) bool {
	if n.track == nil {
		return false
	}
	i := n.Stmts[si].UseOff + slot
	return n.track[i>>6]&(1<<(uint(i)&63)) != 0
}

// setTracked marks a use slot for resolution tracking.
func (n *Node) setTracked(si, slot int32) {
	if n.track == nil {
		n.track = make([]uint64, (len(n.UseSets)+63)/64)
	}
	i := n.Stmts[si].UseOff + slot
	n.track[i>>6] |= 1 << (uint(i) & 63)
}

// DefRef identifies the statement instance that last defined an address.
type DefRef struct {
	Loc  InstLoc
	Ts   int64
	Live bool
}

// Graph is the compacted dynamic dependence graph (static component plus
// accumulated dynamic component) and the slicer over it.
type Graph struct {
	p   *ir.Program
	cfg Config

	nodes     []*Node
	blockLoc  []occLoc          // standalone (node, occ) of each physical block
	pathByKey map[string]NodeID // specialized path lookup by block-sequence key

	// Static-edge statistics.
	staticDU, staticUU, staticCD int64
	adaptiveData, adaptiveCD     int64 // installed adaptive default edges

	// Shared-label registries. Shared lists are keyed per (cluster,
	// producing node): when the defining block executes inside a
	// specialized path node rather than its standalone node, the cluster's
	// edges target that copy, and lookups must resolve to the same copy.
	clusterLabels map[clusterNodeKey]*Labels
	clusterIsCD   map[int32]bool // cluster id -> control-side tag (OPT-6)
	allLabels     []*Labels

	// Copy indices built during node construction.
	copies    map[ir.StmtID][]InstLoc
	occCopies map[ir.BlockID][]occLoc

	// Dynamic state (builder); see build.go.
	ts      int64
	lastDef map[int64]DefRef
	// Snapshot-loaded graphs carry the last-definition table as sorted
	// parallel arrays instead of the builder's map (lastDef == nil):
	// bulk array fills load an order of magnitude faster than map
	// inserts, and criterion resolution only needs one binary search per
	// query. defOf dispatches between the two forms.
	defAddrs    []int64
	defRefs     []DefRef
	cuts        *profile.Cuts
	frames      []*frameCtx
	buf         []bufEntry
	arena       []int64
	pendingCont *contBuf

	// Shortcut closures, computed lazily after building. The memo is the
	// one graph structure concurrent queries write; shortcutMu guards it.
	shortcuts  map[InstLoc]*closure
	shortcutMu sync.Mutex

	// §4.2 hybrid disk-epoch mode (nil when disabled); see hybrid.go.
	hybrid *hybridState

	// Epoch-parallel block sealing (nil: inline); see SetParallelEncode.
	enc *labelblock.Encoder

	// Batched-query pool bound (0 = GOMAXPROCS); see SetWorkers.
	workers atomic.Int32

	// Builder scratch.
	framePool  []*frameCtx
	keyScratch []byte

	// Label storage: block payloads and recycled tails come from mem;
	// Labels structs themselves are slab-allocated in chunks so a build
	// does hundreds of allocations instead of millions.
	mem       *labelblock.Arena
	labelSlab []Labels

	// Telemetry (see telemetry.go). elim is always maintained (plain
	// increments on paths already taken); tel/cShortcut are nil unless a
	// registry is attached.
	elim       Elim
	tel        *telemetry.Registry
	cShortcut  *telemetry.Counter
	telFlushed bool
}

func (g *Graph) node(id NodeID) *Node { return g.nodes[id] }

const labelSlabSize = 256

func (g *Graph) newLabels(shared, isCD bool) *Labels {
	if len(g.labelSlab) == cap(g.labelSlab) {
		// Full (or first use): start a fresh slab. Taken pointers into the
		// old slab stay valid because the slice is never grown in place.
		g.labelSlab = make([]Labels, 0, labelSlabSize)
	}
	g.labelSlab = append(g.labelSlab, Labels{
		id:     int32(len(g.allLabels)),
		list:   labelblock.NewList(g.cfg.PlainLabels, false),
		shared: shared,
		isCD:   isCD,
	})
	l := &g.labelSlab[len(g.labelSlab)-1]
	if shared {
		l.list.SetDedupe()
	}
	g.allLabels = append(g.allLabels, l)
	return l
}

// clusterNodeKey keys shared label lists by cluster and producing node.
type clusterNodeKey struct {
	id   int32
	node NodeID
}

// clusterList returns the shared label list for a cluster and producing
// node, creating it on first use (tagged control-side for OPT-6 clusters).
func (g *Graph) clusterList(id int32, node NodeID) *Labels {
	k := clusterNodeKey{id: id, node: node}
	if l, ok := g.clusterLabels[k]; ok {
		return l
	}
	l := g.newLabels(true, g.clusterIsCD[id])
	g.clusterLabels[k] = l
	return l
}

// LabelPairs returns the number of explicitly stored timestamp pairs
// (shared lists counted once) — the quantity the paper reduces to ~6%.
func (g *Graph) LabelPairs() int64 {
	var n int64
	for _, l := range g.allLabels {
		n += int64(l.Len())
	}
	return n
}

// DataPairs returns stored pairs on data edges (shared OPT-6 lists count
// as control, matching the paper's attribution of savings to OPT-6).
func (g *Graph) DataPairs() int64 {
	var n int64
	for _, l := range g.allLabels {
		if !l.isCD {
			n += int64(l.Len())
		}
	}
	return n
}

// CDPairs returns stored pairs on control edges.
func (g *Graph) CDPairs() int64 { return g.LabelPairs() - g.DataPairs() }

// StaticEdges returns the number of statically introduced edges.
func (g *Graph) StaticEdges() int64 { return g.staticDU + g.staticUU + g.staticCD }

// AdaptiveEdges returns the number of live adaptive default edges.
func (g *Graph) AdaptiveEdges() int64 { return g.adaptiveData + g.adaptiveCD }

// Nodes returns the node count (blocks plus specialized paths).
func (g *Graph) Nodes() int { return len(g.nodes) }

// PathNodes returns the number of specialized path nodes.
func (g *Graph) PathNodes() int { return len(g.pathByKey) }

// SizeBytes estimates graph memory the way the paper reports sizes:
// 16 bytes per stored pair, plus per-edge and per-node overheads
// (including the static code growth caused by path specialization).
func (g *Graph) SizeBytes() int64 {
	var sz int64
	sz += g.LabelPairs() * 16
	var dynEdges int64
	var stmtCopies int64
	for _, n := range g.nodes {
		sz += 32
		stmtCopies += int64(len(n.Stmts))
		for k := range n.UseSets {
			dynEdges += int64(len(n.UseSets[k].Dyn))
		}
		for i := range n.Occs {
			dynEdges += int64(len(n.Occs[i].CD.Dyn))
		}
	}
	sz += dynEdges * 24
	sz += (g.StaticEdges() + g.AdaptiveEdges()) * 8
	sz += stmtCopies * 16
	return sz
}

// SetParallelEncode enables epoch-parallel construction: filled label
// epochs are sealed by n encode workers (n <= 0: GOMAXPROCS) off the
// resolver's critical path. Must be called before feeding the trace.
// Mutually exclusive with EnableHybrid — disk-epoch flushing splits lists
// mid-build, which requires every sealed block's payload to be resident;
// with hybrid enabled the call is a no-op.
func (g *Graph) SetParallelEncode(n int) {
	if g.hybrid != nil {
		return
	}
	g.enc = labelblock.NewEncoder(n)
}

// Finalize freezes the graph for concurrent queries: the epoch encoder
// (if any) is drained so every sealed block is materialized, then every
// label list is compacted — out-of-order or straddling lists are repacked
// into globally sorted blocks (deduped when shared), clean tails worth
// sealing are sealed — so Find never mutates shared state afterwards. End
// calls it automatically; calling it again is a cheap no-op.
func (g *Graph) Finalize() {
	g.enc.Drain()
	for _, l := range g.allLabels {
		l.list.Compact(g.mem, l.shared)
	}
}

// LabelBytes reports the actual resident bytes of label storage — encoded
// block payloads and uncompressed tails. Unlike SizeBytes (the paper's
// 16-bytes-per-pair model, kept for the Table 2 ratios), this measures
// the Go heap the pairs really hold. The fixed Labels registry entries
// exist identically under either layout and count as edge-table overhead
// (EdgeBytes), matching FP's split.
func (g *Graph) LabelBytes() int64 {
	var sz int64
	for _, l := range g.allLabels {
		sz += l.list.MemBytes()
	}
	return sz
}

// EdgeBytes reports the resident bytes of the graph's edge and node
// tables: statement-copy rows, columnar use edge sets, occurrence rows,
// and dynamic edge vectors.
func (g *Graph) EdgeBytes() int64 {
	var sz int64
	for _, n := range g.nodes {
		sz += int64(unsafe.Sizeof(*n))
		sz += int64(cap(n.Stmts)) * int64(unsafe.Sizeof(StmtCopy{}))
		sz += int64(cap(n.UseSets)) * int64(unsafe.Sizeof(UseEdgeSet{}))
		sz += int64(cap(n.Occs)) * int64(unsafe.Sizeof(Occ{}))
		sz += int64(cap(n.track)) * 8
		for k := range n.UseSets {
			sz += int64(cap(n.UseSets[k].Dyn)) * int64(unsafe.Sizeof(DynEdge{}))
		}
		for i := range n.Occs {
			sz += int64(cap(n.Occs[i].CD.Dyn)) * int64(unsafe.Sizeof(CDDynEdge{}))
		}
	}
	// The label registry: one bookkeeping struct plus one registry pointer
	// per list, layout-independent.
	sz += int64(len(g.allLabels)) * (int64(unsafe.Sizeof(Labels{})) + 8)
	return sz
}

// ResidentBytes reports the total resident bytes of the dependence
// representation: labels plus edge/node tables.
func (g *Graph) ResidentBytes() int64 { return g.LabelBytes() + g.EdgeBytes() }

// LastDefOf returns the instance that last defined addr.
func (g *Graph) LastDefOf(addr int64) (DefRef, bool) {
	return g.defOf(addr)
}

// defOf resolves the last definition of addr in either table form: the
// builder's map, or a loaded graph's sorted arrays.
func (g *Graph) defOf(addr int64) (DefRef, bool) {
	if g.lastDef != nil {
		d, ok := g.lastDef[addr]
		return d, ok
	}
	if i, ok := slices.BinarySearch(g.defAddrs, addr); ok {
		return g.defRefs[i], true
	}
	return DefRef{}, false
}

// StmtAt returns the IR statement of a copy location.
func (g *Graph) StmtAt(loc InstLoc) *ir.Stmt { return g.nodes[loc.Node].Stmts[loc.Stmt].S }
