package opt

import (
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/profile"
)

// buildStatic compiles src and constructs the static component (no trace
// fed), optionally with the executed-path profile.
func buildStatic(t *testing.T, src string, cfg Config, withPaths bool) (*Graph, *ir.Program) {
	t.Helper()
	p, err := compile.Source(src)
	if err != nil {
		t.Fatal(err)
	}
	var hot []*profile.PathProfile
	col := profile.NewCollector(p)
	if withPaths {
		if _, err := interp.Run(p, interp.Options{Sink: col}); err != nil {
			t.Fatal(err)
		}
		hot = col.HotPaths(1, 0)
	}
	return NewGraph(p, cfg, hot, col.Cuts()), p
}

// slotOf locates the standalone-copy use edge set for the statement at the
// given source line whose slot reads the named scalar.
func slotOf(t *testing.T, g *Graph, p *ir.Program, line int, varName string) *UseEdgeSet {
	t.Helper()
	for _, s := range p.Stmts {
		if s.Pos.Line != line {
			continue
		}
		for k, us := range s.Uses {
			if us.Obj != ir.NoObj && p.Obj(us.Obj).Name == varName && us.Scalar() {
				loc := g.standaloneLoc(s)
				return g.nodes[loc.Node].useSet(loc.Stmt, int32(k))
			}
		}
	}
	t.Fatalf("no scalar use of %q at line %d", varName, line)
	return nil
}

func TestStaticLocalDefUse(t *testing.T) {
	src := `
func main() {
	var x = input();
	var y = x + 1;   // line 4: use of x has a local def at line 3
	print(y);        // line 5: use of y has a local def at line 4
}`
	g, p := buildStatic(t, src, Config{LocalDefUse: true}, false)
	if us := slotOf(t, g, p, 4, "x"); us.Static != SDU {
		t.Errorf("use of x at line 4: static kind %v, want SDU (OPT-1a)", us.Static)
	}
	if us := slotOf(t, g, p, 5, "y"); us.Static != SDU {
		t.Errorf("use of y at line 5: static kind %v, want SDU", us.Static)
	}
	// With OPT-1 disabled, no static data edges exist.
	g2, p2 := buildStatic(t, src, Config{}, false)
	if us := slotOf(t, g2, p2, 4, "x"); us.Static != SNone {
		t.Errorf("with OPT-1 off: static kind %v, want SNone", us.Static)
	}
}

func TestStaticPartialDefUseUnderAliasing(t *testing.T) {
	src := `
var x = 0;
var other = 0;
func main() {
	var p = &x;
	if (input() > 0) { p = &other; }
	x = 5;           // line 7: must-def of x
	*p = 9;          // line 8: may-def of x (and other)
	print(x + 1);    // line 9: use of x -> partial edge to line 7 (OPT-1b)
}`
	g, p := buildStatic(t, src, Config{LocalDefUse: true}, false)
	us := slotOf(t, g, p, 9, "x")
	if us.Static != SDUPartial {
		t.Fatalf("use of x after may-alias store: static kind %v, want SDUPartial", us.Static)
	}
	tgt := g.nodes[g.blockLoc[p.Stmt(0).Block.ID].node] // not used; target checked below
	_ = tgt
}

func TestStaticUseUse(t *testing.T) {
	// Note: global initializers execute at main's entry, so the uses must
	// live in a different block for their defs to be non-local.
	src := `
var g = 3;
func main() {
	if (input() > 0) {
		var a = g + 1;   // line 5: first (non-local) use of g
		var b = g * 2;   // line 6: second use -> use-use edge (OPT-2b)
		print(a + b);
	}
}`
	g, p := buildStatic(t, src, Config{LocalDefUse: true, UseUse: true}, false)
	us := slotOf(t, g, p, 6, "g")
	if us.Static != SUU {
		t.Fatalf("second use of g: static kind %v, want SUU", us.Static)
	}
	first := slotOf(t, g, p, 5, "g")
	if first.Static != SNone {
		t.Errorf("first use of g: static kind %v, want SNone (non-local)", first.Static)
	}
	// The target slot must be marked for resolution tracking.
	loc := g.standaloneLoc(stmtAtLine(p, 5))
	n := g.nodes[loc.Node]
	marked := false
	for k := 0; k < n.nUses(loc.Stmt); k++ {
		marked = marked || n.tracked(loc.Stmt, int32(k))
	}
	if !marked {
		t.Error("use-use target slot not marked for resolution tracking")
	}
}

func stmtAtLine(p *ir.Program, line int) *ir.Stmt {
	for _, s := range p.Stmts {
		if s.Pos.Line == line {
			return s
		}
	}
	return nil
}

func TestStaticCDSameOnContinuations(t *testing.T) {
	src := `
func f(v) { return v + 1; }
func main() {
	if (input() > 0) {
		var a = f(1);    // call splits the branch block; its continuation
		print(a + f(2)); // occurrences are control equivalent to the head
	}
}`
	g, p := buildStatic(t, src, Config{SpecCD: true}, false)
	found := 0
	for _, b := range p.Main.Blocks {
		if !b.IsContinuation() {
			continue
		}
		loc := g.blockLoc[b.ID]
		occ := &g.nodes[loc.node].Occs[loc.occ]
		if occ.CD.Static != CDSame || occ.CD.StTgtOcc != 0 {
			t.Errorf("continuation %s: cd kind %v tgt %d, want CDSame->0", b, occ.CD.Static, occ.CD.StTgtOcc)
		}
		found++
	}
	if found == 0 {
		t.Fatal("no continuation occurrences found")
	}
}

func TestStaticCDSameSkipsEntryChains(t *testing.T) {
	// A call in the function's entry block splits it into an entry chain.
	// The head's control dependence is the interprocedural call-site
	// attachment, which belongs to the entry block alone: a CDSame edge on
	// the continuation would drag the call site into every slice through
	// the continuation (the return-value hand-off), where the reference
	// slicers put none.
	src := `
func g(v) { return v + 1; }
func f(v) { return g(v); }
func main() {
	print(f(input()));
}`
	gr, p := buildStatic(t, src, Config{SpecCD: true}, false)
	checked := 0
	for _, fn := range p.Funcs {
		for _, b := range fn.Blocks {
			if !b.IsContinuation() {
				continue
			}
			loc := gr.blockLoc[b.ID]
			occ := &gr.nodes[loc.node].Occs[loc.occ]
			if gr.nodes[loc.node].Occs[0].B == fn.Entry() {
				if occ.CD.Static != CDNone {
					t.Errorf("entry-chain continuation %s: cd kind %v, want CDNone", b, occ.CD.Static)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no entry-chain continuation occurrences found")
	}
}

func TestStaticCDDeltaUniqueAncestor(t *testing.T) {
	src := `
func main() {
	var x = input();
	if (x > 0) {
		x = x + 1;     // the then-block's unique ancestor is the condition
	}
	print(x);
}`
	g, p := buildStatic(t, src, Config{InferCD: true}, false)
	then := stmtAtLine(p, 5).Block
	loc := g.blockLoc[then.ID]
	occ := &g.nodes[loc.node].Occs[loc.occ]
	if occ.CD.Static != CDDelta || occ.CD.Delta != 1 {
		t.Fatalf("then-block cd: kind %v delta %d, want CDDelta delta 1 (OPT-4)", occ.CD.Static, occ.CD.Delta)
	}
}

func TestStaticCDDeltaUniqueCallSite(t *testing.T) {
	src := `
func once(v) { return v * 2; }
func main() {
	print(once(input()));
}`
	g, p := buildStatic(t, src, Config{InferCD: true}, false)
	entry := p.Func("once").Entry()
	loc := g.blockLoc[entry.ID]
	occ := &g.nodes[loc.node].Occs[loc.occ]
	if occ.CD.Static != CDDelta || occ.CD.Delta != 1 {
		t.Fatalf("unique-call-site entry cd: kind %v delta %d, want CDDelta delta 1", occ.CD.Static, occ.CD.Delta)
	}
}

func TestStaticPathNodesFromProfile(t *testing.T) {
	src := `
func main() {
	var s = 0;
	var i = 0;
	while (i < 30) {
		if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
		i = i + 1;
	}
	print(s);
}`
	g, _ := buildStatic(t, src, Full(), true)
	if g.PathNodes() < 2 {
		t.Fatalf("expected both branch paths specialized, got %d path nodes", g.PathNodes())
	}
	// Path-internal control: blocks after the branch inside a path must
	// have CDLocal edges.
	foundLocal := false
	for _, n := range g.nodes {
		if !n.IsPath {
			continue
		}
		for oi := range n.Occs {
			if n.Occs[oi].CD.Static == CDLocal {
				foundLocal = true
			}
		}
	}
	if !foundLocal {
		t.Error("no CDLocal edges inside path nodes (OPT-5)")
	}
}

func TestStaticClustersFormed(t *testing.T) {
	src := `
var x = 0;
var y = 0;
func main() {
	var s = 0;
	var i = 0;
	while (i < 20) {
		if (i % 2 == 0) {
			x = i;        // both defined together...
			y = i * 2;
		}
		s = s + x + y;    // ...and used together: OPT-3 cluster
		i = i + 1;
	}
	print(s);
}`
	g, _ := buildStatic(t, src, Config{ShareData: true}, false)
	if len(g.clusterIsCD) == 0 {
		t.Fatal("no OPT-3 cluster formed for the paired defs/uses")
	}
}

func TestDataClustersSkipBackEdgeCalleeWrites(t *testing.T) {
	// Both x and y reach the loop body's uses from main's entry defs, so
	// the pair looks like an OPT-3 cluster — but the call after the uses
	// writes x (via its MOD set), and around the loop's back edge that
	// write becomes the next iteration's producer of x while y still
	// flows from the entry. The labels of the two edges therefore differ
	// and no cluster may form. The chop-interior scan alone cannot see
	// this: the call sits in the use block itself, which the chop
	// excludes as an endpoint.
	src := `
var x = 0;
var y = 0;
func touch(a, b) {
	x = x + 1;
}
func main() {
	var i = 0;
	while (i < 4) {
		touch(x, y);
		i = i + 1;
	}
	print(x);
}`
	g, _ := buildStatic(t, src, Config{ShareData: true}, false)
	for id, isCD := range g.clusterIsCD {
		if !isCD {
			t.Errorf("data cluster %d formed across a back edge with a callee write of a member object", id)
		}
	}
}

func TestStageZeroHasNoStaticEdges(t *testing.T) {
	g, _ := buildStatic(t, `
func main() {
	var x = 1;
	var y = x + 2;
	if (y > 0) { print(y); }
}`, Stage(0), false)
	if g.StaticEdges() != 0 {
		t.Fatalf("stage 0 has %d static edges, want 0", g.StaticEdges())
	}
}
