package opt

import "dynslice/internal/telemetry"

// Elim tallies, per optimization, how each processed execution was
// disposed of while building the dynamic component: covered by a
// statically introduced edge (OPT-1/2/4/5), covered by an adopted
// adaptive rule, producerless, or explicitly labeled. The counters are
// plain ints bumped on paths the builder already takes, so they cost
// nothing measurable and are always on; they surface through telemetry
// only when a registry is attached.
type Elim struct {
	// Data side: exactly one of the following is taken per use-slot
	// execution, so UseSlots equals their sum.
	UseSlots     int64 // use-slot executions processed
	OPT1DU       int64 // static def-use edge covered it (OPT-1; OPT-2c inside path nodes)
	OPT2UU       int64 // static use-use edge covered it (OPT-2b)
	AdaptiveData int64 // an adopted adaptive default rule covered it
	NoProducer   int64 // producerless use (tombstoned or rule vetoed)
	DataLabels   int64 // explicit data label recorded

	// Control side: exactly one of the following is taken per
	// block-occurrence execution, so CDExecs equals their sum.
	CDExecs    int64
	OPT4Delta  int64 // fixed-distance external ancestor inferred (OPT-4)
	OPT5Local  int64 // same-node earlier occurrence inferred (OPT-5)
	OPT5Same   int64 // control-equivalent occurrence deferral (OPT-5a)
	AdaptiveCD int64 // an adopted adaptive default rule covered it
	NoAncestor int64 // no controlling instance (tombstoned or rule vetoed)
	CDLabels   int64 // explicit control label recorded

	// Labels avoided because a cluster-shared list already held the pair.
	OPT3Dedup int64 // data-side shared lists (OPT-3)
	OPT6Dedup int64 // control-side shared lists (OPT-6)
}

// DataAccounted sums the mutually exclusive data-side dispositions; it
// must equal UseSlots.
func (e *Elim) DataAccounted() int64 {
	return e.OPT1DU + e.OPT2UU + e.AdaptiveData + e.NoProducer + e.DataLabels
}

// CDAccounted sums the mutually exclusive control-side dispositions; it
// must equal CDExecs.
func (e *Elim) CDAccounted() int64 {
	return e.OPT4Delta + e.OPT5Local + e.OPT5Same + e.AdaptiveCD + e.NoAncestor + e.CDLabels
}

// Elim returns the builder's elimination tallies.
func (g *Graph) Elim() Elim { return g.elim }

// SetTelemetry attaches a registry. Elimination tallies and graph-shape
// gauges are flushed when the trace ends; the shortcut-hit counter is
// live (it fires during slicing, after End).
func (g *Graph) SetTelemetry(reg *telemetry.Registry) {
	g.tel = reg
	g.cShortcut = reg.Counter("opt.slice.shortcut_hits")
}

// flushTelemetry publishes the build-time tallies, once.
func (g *Graph) flushTelemetry() {
	reg := g.tel
	if reg == nil || g.telFlushed {
		return
	}
	g.telFlushed = true
	if g.enc != nil {
		reg.Gauge("build.epoch.workers").Set(int64(g.enc.Workers()))
		reg.Counter("build.epoch.blocks").Add(g.enc.Blocks())
	}
	e := &g.elim
	reg.Counter("opt.build.use_slots").Add(e.UseSlots)
	reg.Counter("opt.elim.opt1.du").Add(e.OPT1DU)
	reg.Counter("opt.elim.opt2.uu").Add(e.OPT2UU)
	reg.Counter("opt.elim.opt3.dedup").Add(e.OPT3Dedup)
	reg.Counter("opt.elim.adaptive.data").Add(e.AdaptiveData)
	reg.Counter("opt.build.no_producer").Add(e.NoProducer)
	reg.Counter("opt.labels.data").Add(e.DataLabels)
	reg.Counter("opt.build.cd_execs").Add(e.CDExecs)
	reg.Counter("opt.elim.opt4.delta").Add(e.OPT4Delta)
	reg.Counter("opt.elim.opt5.local").Add(e.OPT5Local)
	reg.Counter("opt.elim.opt5.same").Add(e.OPT5Same)
	reg.Counter("opt.elim.opt6.dedup").Add(e.OPT6Dedup)
	reg.Counter("opt.elim.adaptive.cd").Add(e.AdaptiveCD)
	reg.Counter("opt.build.no_ancestor").Add(e.NoAncestor)
	reg.Counter("opt.labels.cd").Add(e.CDLabels)

	reg.Gauge("opt.graph.nodes").Set(int64(g.Nodes()))
	reg.Gauge("opt.graph.path_nodes").Set(int64(g.PathNodes()))
	reg.Gauge("opt.graph.label_pairs").Set(g.LabelPairs())
	reg.Gauge("opt.graph.static_edges").Set(g.StaticEdges())
	reg.Gauge("opt.graph.adaptive_edges").Set(g.AdaptiveEdges())
	reg.Gauge("opt.graph.size_bytes").Set(g.SizeBytes())

	// Actual resident bytes of the compact representation (SizeBytes above
	// is the paper's 16-bytes-per-pair model, kept for Table 2 ratios).
	reg.Gauge("opt.graph.bytes.labels").Set(g.LabelBytes())
	reg.Gauge("opt.graph.bytes.edges").Set(g.EdgeBytes())
	reg.Gauge("opt.graph.bytes.resident").Set(g.ResidentBytes())
}
