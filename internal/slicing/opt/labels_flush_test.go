package opt

import (
	"testing"

	"dynslice/internal/slicing/labelblock"
)

// TestLabelsLenAfterFlush is the regression test for the shared-list
// accounting bug: Len used to be maintained by in-place `count -=`
// adjustments during sort-dedupe, which went wrong once hybrid flushing
// had moved pairs out of the resident list. Len is now derived
// (flushed + resident), so an out-of-order append followed by a flush and
// a dedupe must still report every surviving pair exactly once.
func TestLabelsLenAfterFlush(t *testing.T) {
	ar := labelblock.NewArena()
	l := &Labels{shared: true}
	l.list.SetDedupe()

	// Fill past one block so the flush has sealed blocks to move.
	for i := int64(0); i < 200; i++ {
		l.Append(ar, Pair{Td: i, Tu: 1000 + i*2})
	}
	// Straggler from a suspended superblock execution: out of order, plus
	// an exact duplicate a cluster partner would append.
	l.Append(ar, Pair{Td: 3, Tu: 1006})
	l.Append(ar, Pair{Td: 3, Tu: 1006})
	// Non-immediate duplicate of pair i=150 (Td 150, Tu 1300): append-time
	// dedupe only catches immediate repeats, so this sits in the dirty
	// tail until the flush, which must drop it rather than write it to the
	// epoch file and count it into flushed.
	l.Append(ar, Pair{Td: 150, Tu: 1300})
	if l.Len() != 202 { // 200 + straggler + tail dup; immediate dup deduped on append
		t.Fatalf("pre-flush Len = %d, want 202", l.Len())
	}

	// Simulate a hybrid epoch flush at Tu >= 1200 (exactly what
	// flushEpoch does per label). Split applies the shared-list dedupe
	// policy: both lingering duplicates — the straggler copy of (3, 1006)
	// and the tail copy of (150, 1300) — are dropped here.
	blocks := l.list.Split(ar, 1200)
	var moved int64
	for i := range blocks {
		moved += int64(blocks[i].N)
	}
	if moved != 100 { // pairs with Tu in [1200, 1398], duplicate excluded
		t.Fatalf("flush moved %d pairs, want 100", moved)
	}
	l.flushed += moved
	if l.Len() != 200 {
		t.Fatalf("post-flush Len = %d, want 200 (flushed %d)", l.Len(), moved)
	}

	// Out-of-order append + dedupe after the flush: the non-immediate
	// duplicate must be dropped without double-counting flushed pairs.
	l.Append(ar, Pair{Td: 7, Tu: 1014})
	l.Append(ar, Pair{Td: 50, Tu: 1100})
	l.Append(ar, Pair{Td: 7, Tu: 1014}) // non-immediate: survives until ensureSorted
	l.ensureSorted()
	if l.Len() != 202 {
		t.Fatalf("post-flush dedupe Len = %d, want 202", l.Len())
	}

	// Resident pairs below the cut stay findable.
	for _, c := range []struct{ tu, td int64 }{{1006, 3}, {1014, 7}, {1100, 50}, {1198, 99}} {
		td, _, ok := l.Find(c.tu)
		if !ok || td != c.td {
			t.Fatalf("Find(%d) = %d,%v want %d", c.tu, td, ok, c.td)
		}
	}
	// Flushed pairs are gone from the resident list but present in the
	// moved blocks (the epoch file's content).
	if _, _, ok := l.Find(1398); ok {
		t.Fatal("Find(1398) hit the resident list after its epoch was flushed")
	}
	if td, _, _, ok := labelblock.FindBlocks(blocks, 1398); !ok || td != 199 {
		t.Fatalf("flushed blocks Find(1398) = %d,%v want 199", td, ok)
	}
	if td, _, _, ok := labelblock.FindBlocks(blocks, 1300); !ok || td != 150 {
		t.Fatalf("flushed blocks Find(1300) = %d,%v want 150", td, ok)
	}
}

// FuzzLabelsFindRoundTrip appends a fuzzer-chosen mix of in- and
// out-of-order pairs and checks Find against a linear scan of everything
// appended.
func FuzzLabelsFindRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 250, 6})
	f.Add([]byte{200, 1, 200, 2, 0, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		l := &Labels{}
		want := map[int64]int64{}
		tu := int64(0)
		for len(data) >= 2 {
			// Byte 0 is a signed Tu step (out-of-order when negative),
			// byte 1 seeds the Td distance.
			step := int64(int8(data[0]))
			td := tu - int64(data[1])%97
			data = data[2:]
			tu += step
			if _, dup := want[tu]; dup {
				continue
			}
			want[tu] = td
			l.Append(nil, Pair{Td: td, Tu: tu})
		}
		for u, d := range want {
			got, _, ok := l.Find(u)
			if !ok || got != d {
				t.Fatalf("Find(%d) = %d,%v want %d,true over %d pairs", u, got, ok, d, len(want))
			}
		}
		// A Tu never appended must miss.
		probe := tu + 1
		for {
			if _, present := want[probe]; !present {
				break
			}
			probe++
		}
		if _, _, ok := l.Find(probe); ok {
			t.Fatalf("Find(%d) hit; value was never appended", probe)
		}
	})
}
