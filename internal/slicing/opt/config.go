// Package opt implements the paper's contribution: dynamic slicing over a
// compacted dynamic dependence graph in which most dependence instances
// are inferred from statically introduced unlabeled edges rather than
// stored as explicit timestamp pairs.
//
// The optimization families map to the paper as follows:
//
//	OPT-1a/1b  Config.LocalDefUse  block-local def-use edges become static;
//	                               may-alias interference degrades them to
//	                               partial edges with dynamic fallback labels
//	OPT-2b     Config.UseUse       non-local def-use replaced by local
//	                               use-use edges (targets a use, whose
//	                               statement is not added to the slice)
//	OPT-2c     Config.PathSpec     Ball-Larus path specialization: path
//	                               nodes make cross-block dependences local
//	OPT-3      Config.ShareData    label sharing across non-local data
//	                               dependence edges proven simultaneous
//	OPT-4      Config.InferCD      fixed-distance unique control ancestor:
//	                               static control edge with a delta
//	OPT-5      Config.SpecCD       control dependences internal to a
//	                               specialized path become static (delta 0)
//	OPT-6      Config.ShareCDData  control edges share labels with a
//	                               simultaneous data edge
//	§3.4       Config.Shortcuts    shortcut edges precompute the transitive
//	                               closure of all-static subgraphs
//
// OPT-2a (node specialization under aliasing) is not applied, mirroring
// the paper ("We do not apply OPT-2a because we do not have an effective
// static heuristic for applying OPT-2a").
//
// Every static edge is verified at graph-construction time: whenever the
// dependence actually exercised differs from what the static edge would
// infer, an explicit label is recorded. Static-analysis imprecision can
// therefore only cost compression, never slice correctness.
package opt

// Config selects which optimizations the graph applies. The zero value
// disables everything, yielding a fully labeled graph whose label count
// equals the FP graph's (a property the tests check).
type Config struct {
	LocalDefUse bool // OPT-1a / OPT-1b
	UseUse      bool // OPT-2b
	PathSpec    bool // OPT-2c
	ShareData   bool // OPT-3
	InferCD     bool // OPT-4
	SpecCD      bool // OPT-5
	ShareCDData bool // OPT-6
	Shortcuts   bool // shortcut edges (§3.4 "Using Shortcuts to Speed Up Traversal")

	// AdaptiveDeltas enables adaptive default edges: build-time-verified
	// fixed-delta / constant-source inference for dependences the purely
	// static component leaves labeled (loop-carried scalars at steady
	// distances, loop-invariant uses, return-value hand-offs). This
	// generalizes OPT-4's fixed-distance inference and stands in for the
	// paper's replication-based OPT-2a/OPT-5a/OPT-5b specializations,
	// which this reproduction does not replicate structurally. Every
	// inference is verified during construction; disagreeing executions
	// fall back to explicit labels.
	AdaptiveDeltas bool

	// PlainLabels disables the delta-varint block compression of label
	// lists and stores flat []Pair slices instead — the -compact=false
	// escape hatch, kept as the uncompacted baseline for the memory
	// experiment. The zero value (false) means compact storage, so every
	// existing Config keeps the new layout by default.
	PlainLabels bool

	// MinPathFreq is the minimum profile frequency for a Ball-Larus path
	// to be specialized (the paper specializes every path with non-zero
	// frequency, i.e. 1).
	MinPathFreq int64
	// MaxPathsPerFunc caps specialization per function (0 = unlimited).
	MaxPathsPerFunc int
}

// Full returns the configuration with every optimization enabled, the
// configuration evaluated as "OPT" in the paper.
func Full() Config {
	return Config{
		LocalDefUse:    true,
		UseUse:         true,
		PathSpec:       true,
		ShareData:      true,
		InferCD:        true,
		SpecCD:         true,
		ShareCDData:    true,
		Shortcuts:      true,
		AdaptiveDeltas: true,
		MinPathFreq:    1,
	}
}

// Stage returns the cumulative configuration after applying optimization
// families 1..n in the paper's Fig. 15 order (Stage(0) disables all,
// Stage(6) is the paper's full optimization set, and Stage(7) adds this
// reproduction's adaptive-delta extension; shortcuts do not affect graph
// size).
func Stage(n int) Config {
	c := Config{MinPathFreq: 1}
	if n >= 1 {
		c.LocalDefUse = true
	}
	if n >= 2 {
		c.UseUse = true
		c.PathSpec = true
	}
	if n >= 3 {
		c.ShareData = true
	}
	if n >= 4 {
		c.InferCD = true
	}
	if n >= 5 {
		c.SpecCD = true
	}
	if n >= 6 {
		c.ShareCDData = true
	}
	if n >= 7 {
		c.AdaptiveDeltas = true // extension stage, reported separately
	}
	return c
}
