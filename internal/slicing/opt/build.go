package opt

import (
	"dynslice/internal/ir"
	"dynslice/internal/profile"
)

// This file is the dynamic component of the compacted graph (paper §3.4):
// an online algorithm that buffers the basic-block trace between path
// cuts, maps each cut-to-cut sequence either to a specialized path node
// (one timestamp for the whole sequence) or to the standalone node of each
// logical block, and introduces labeled dynamic edges only for dependences
// the static component does not cover. Every statically introduced edge is
// verified against the actually exercised dependence; mismatches fall back
// to explicit labels, so static imprecision cannot corrupt slices.
//
// Superblock nodes (call blocks with their continuation chains) execute
// discontinuously: the callee's node executions interleave between the
// head and its continuations. The builder suspends the node execution in
// the owning frame (pendState) at each call and resumes it — same
// timestamp, same execution context — when the continuation's records
// arrive. Timestamps therefore number logical-block executions, exactly as
// the paper numbers (call-containing) basic-block executions.

// bufEntry is one buffered block execution awaiting node resolution.
type bufEntry struct {
	b     *ir.Block
	stmts []stmtRec
}

// stmtRec indexes a statement execution's addresses in the builder arena.
type stmtRec struct {
	useOff, useLen int32
	defOff, defLen int32
	region         bool
	regStart       int64
	regLen         int64
}

// trackVal records how a tracked use slot (a use-use edge target) resolved
// during the current node execution.
type trackVal struct {
	d  DefRef
	ok bool
}

// execCtx is the per-node-execution context. It survives suspension at
// calls within superblock nodes.
type execCtx struct {
	track   map[int32]trackVal
	anc0    InstLoc // first resolved control ancestor of this execution
	ta0     int64
	anc0Set bool
}

func newExecCtx() *execCtx { return &execCtx{track: map[int32]trackVal{}} }

// pendState is a suspended superblock-node execution, owned by a frame.
type pendState struct {
	node    NodeID
	ts      int64
	nextOcc int32
	ctx     *execCtx
}

// contBuf is a continuation block whose records are being collected.
type contBuf struct {
	fr    *frameCtx
	p     *pendState
	entry bufEntry
}

// nodeInst is a per-frame record of a block's most recent execution.
type nodeInst struct {
	node NodeID
	occ  int32
	ts   int64
	live bool
}

type frameCtx struct {
	fn          *ir.Func
	lastExec    map[ir.BlockID]nodeInst
	callSite    InstLoc
	callTs      int64
	hasCallSite bool
	pending     *pendState
}

// newFrame takes a frame context from the free list (maps are recycled to
// avoid per-call allocation).
func (g *Graph) newFrame() *frameCtx {
	if n := len(g.framePool); n > 0 {
		fr := g.framePool[n-1]
		g.framePool = g.framePool[:n-1]
		for k := range fr.lastExec {
			delete(fr.lastExec, k)
		}
		*fr = frameCtx{lastExec: fr.lastExec}
		return fr
	}
	return &frameCtx{lastExec: map[ir.BlockID]nodeInst{}}
}

func (g *Graph) freeFrame(fr *frameCtx) {
	if len(g.framePool) < 64 {
		g.framePool = append(g.framePool, fr)
	}
}

// Block implements trace.Sink.
func (g *Graph) Block(b *ir.Block) {
	if g.pendingCont != nil {
		g.finishCont()
	}
	if len(g.buf) > 0 && g.cuts.Between(g.buf[len(g.buf)-1].b, b) {
		g.flush()
	}
	fr := g.topFrame(b)
	if fr.pending != nil {
		p := fr.pending
		n := g.nodes[p.node]
		if int(p.nextOcc) < len(n.Occs) && n.Occs[p.nextOcc].B == b {
			fr.pending = nil
			g.pendingCont = &contBuf{fr: fr, p: p, entry: bufEntry{b: b}}
			return
		}
		fr.pending = nil // defensive: unexpected control transfer
	}
	g.buf = append(g.buf, bufEntry{b: b})
}

// Stmt implements trace.Sink.
func (g *Graph) Stmt(s *ir.Stmt, uses, defs []int64) {
	uo := int32(len(g.arena))
	g.arena = append(g.arena, uses...)
	do := int32(len(g.arena))
	g.arena = append(g.arena, defs...)
	rec := stmtRec{
		useOff: uo, useLen: int32(len(uses)),
		defOff: do, defLen: int32(len(defs)),
	}
	if g.pendingCont != nil {
		g.pendingCont.entry.stmts = append(g.pendingCont.entry.stmts, rec)
		return
	}
	e := &g.buf[len(g.buf)-1]
	e.stmts = append(e.stmts, rec)
}

// RegionDef implements trace.Sink.
func (g *Graph) RegionDef(s *ir.Stmt, start, length int64) {
	rec := stmtRec{region: true, regStart: start, regLen: length}
	if g.pendingCont != nil {
		g.pendingCont.entry.stmts = append(g.pendingCont.entry.stmts, rec)
		return
	}
	e := &g.buf[len(g.buf)-1]
	e.stmts = append(e.stmts, rec)
}

// End implements trace.Sink.
func (g *Graph) End() {
	if g.pendingCont != nil {
		g.finishCont()
	}
	if len(g.buf) > 0 {
		g.flush()
	}
	g.Finalize()
	g.flushTelemetry()
}

// topFrame returns the current frame, lazily creating the root frame.
func (g *Graph) topFrame(b *ir.Block) *frameCtx {
	if len(g.frames) == 0 {
		fr := g.newFrame()
		fr.fn = b.Fn
		g.frames = append(g.frames, fr)
	}
	return g.frames[len(g.frames)-1]
}

// finishCont resumes a suspended superblock-node execution with the
// collected continuation records.
func (g *Graph) finishCont() {
	pc := g.pendingCont
	g.pendingCont = nil
	g.processNode(pc.p.node, pc.p.nextOcc, []bufEntry{pc.entry}, pc.p.ts, pc.p.ctx)
	g.arena = g.arena[:0]
}

// flush resolves the buffered cut-to-cut block sequence to graph nodes and
// processes the buffered records.
func (g *Graph) flush() {
	if len(g.buf) > 1 {
		if nid, ok := g.lookupPath(); ok {
			g.processNode(nid, 0, g.buf, -1, nil)
			g.reset()
			return
		}
	}
	for i := range g.buf {
		loc := g.blockLoc[g.buf[i].b.ID]
		g.processNode(loc.node, loc.occ, g.buf[i:i+1], -1, nil)
	}
	g.reset()
}

func (g *Graph) reset() {
	for i := range g.buf {
		g.buf[i].stmts = g.buf[i].stmts[:0]
	}
	g.buf = g.buf[:0]
	g.arena = g.arena[:0]
}

func seqKeyOf(buf []bufEntry) string {
	blocks := make([]*ir.Block, len(buf))
	for i := range buf {
		blocks[i] = buf[i].b
	}
	return profile.SeqKey(blocks)
}

// lookupPath resolves the buffered sequence against the specialized-path
// table using an incrementally maintained key (no per-flush allocation on
// the miss path, which is the common one).
func (g *Graph) lookupPath() (NodeID, bool) {
	g.keyScratch = g.keyScratch[:0]
	var tmp [10]byte
	for i := range g.buf {
		v := uint64(g.buf[i].b.ID)
		n := 0
		for v >= 0x80 {
			tmp[n] = byte(v) | 0x80
			v >>= 7
			n++
		}
		tmp[n] = byte(v)
		n++
		g.keyScratch = append(g.keyScratch, tmp[:n]...)
	}
	nid, ok := g.pathByKey[string(g.keyScratch)]
	return nid, ok
}

// processNode executes entries as occurrences startOcc.. of node nid. A
// negative ts allocates a fresh timestamp (new node execution); otherwise
// the execution resumes with the given timestamp and context.
func (g *Graph) processNode(nid NodeID, startOcc int32, entries []bufEntry, ts int64, ctx *execCtx) {
	n := g.nodes[nid]
	if ts < 0 {
		ts = g.ts
		g.ts++
	}
	if ctx == nil {
		ctx = newExecCtx()
	}
	owner := g.topFrame(entries[0].b)

	for oi := range entries {
		b := entries[oi].b
		occIdx := startOcc + int32(oi)
		fr := g.frames[len(g.frames)-1]
		occ := &n.Occs[occIdx]
		g.processCD(n, occ, b, ts, fr, ctx)
		fr.lastExec[b.ID] = nodeInst{node: nid, occ: occIdx, ts: ts, live: true}

		si := occ.StmtOff
		for ri := range entries[oi].stmts {
			rec := &entries[oi].stmts[ri]
			sc := &n.Stmts[si]
			if rec.region {
				ref := DefRef{Loc: InstLoc{Node: nid, Stmt: si}, Ts: ts, Live: true}
				for a := rec.regStart; a < rec.regStart+rec.regLen; a++ {
					g.lastDef[a] = ref
				}
				si++
				continue
			}
			for k := int32(0); k < rec.useLen; k++ {
				g.processUse(nid, n, si, k, g.arena[rec.useOff+k], ts, ctx)
			}
			ref := DefRef{Loc: InstLoc{Node: nid, Stmt: si}, Ts: ts, Live: true}
			for k := int32(0); k < rec.defLen; k++ {
				g.lastDef[g.arena[rec.defOff+k]] = ref
			}
			switch sc.S.Op {
			case ir.OpCall:
				// Suspend this node execution in the owning frame and
				// enter the callee.
				if int(occIdx)+1 < len(n.Occs) {
					owner.pending = &pendState{node: nid, ts: ts, nextOcc: occIdx + 1, ctx: ctx}
				}
				fr2 := g.newFrame()
				fr2.fn = sc.S.Callee
				fr2.callSite = InstLoc{Node: nid, Stmt: si}
				fr2.callTs = ts
				fr2.hasCallSite = true
				g.frames = append(g.frames, fr2)
			case ir.OpReturn:
				if len(g.frames) > 0 {
					g.freeFrame(g.frames[len(g.frames)-1])
					g.frames = g.frames[:len(g.frames)-1]
				}
			}
			si++
		}
	}
	g.maybeFlush()
}

// processUse handles one use-slot execution: verify static coverage, else
// record an explicit label.
func (g *Graph) processUse(nid NodeID, n *Node, si, slot int32, addr int64, ts int64, ctx *execCtx) {
	g.elim.UseSlots++
	d, ok := g.lastDef[addr]
	if n.tracked(si, slot) {
		ctx.track[si<<8|slot] = trackVal{d: d, ok: ok}
	}
	us := n.useSet(si, slot)
	if !ok {
		// A use with no producer: an adaptive default would wrongly infer
		// one for this timestamp. Tombstone (Td < 0) the timestamp if a
		// rule is adopted, and prevent adoption otherwise.
		g.elim.NoProducer++
		switch us.Default.Mode {
		case DefDelta, DefConst:
			g.appendDataLabel(us, us.Default.Tgt, Pair{Td: -1, Tu: ts})
		default:
			us.Default.kill()
		}
		return
	}
	switch us.Static {
	case SDU, SDUPartial:
		if d.Loc.Node == nid && d.Loc.Stmt == us.StTgtStmt && d.Ts == ts {
			g.elim.OPT1DU++
			return // inferable: td == tu within this node execution
		}
	case SUU:
		if tv, has := ctx.track[us.StTgtStmt<<8|us.StTgtSlot]; has && tv.ok && tv.d.Loc == d.Loc && tv.d.Ts == d.Ts {
			g.elim.OPT2UU++
			return // same producing instance as the earlier use
		}
	case SNone:
		if g.cfg.AdaptiveDeltas {
			wasWarm := us.Default.Mode == DefWarm || us.Default.Mode == DefNone
			if us.Default.observe(d.Loc, d.Ts, ts) {
				g.elim.AdaptiveData++
				return
			}
			if wasWarm && (us.Default.Mode == DefDelta || us.Default.Mode == DefConst) {
				g.adaptiveData++
			}
		}
	}
	// Explicit label on a dynamic edge to the producing statement copy.
	g.elim.DataLabels++
	g.appendDataLabel(us, d.Loc, Pair{Td: d.Ts, Tu: ts})
}

// appendDataLabel records a label on the slot's dynamic edge to tgt,
// creating the edge (with a cluster-shared list when applicable) on first
// use.
func (g *Graph) appendDataLabel(us *UseEdgeSet, tgt InstLoc, p Pair) {
	var edge *DynEdge
	for i := range us.Dyn {
		if us.Dyn[i].Tgt == tgt {
			edge = &us.Dyn[i]
			break
		}
	}
	if edge == nil {
		var l *Labels
		if us.ClusterID >= 0 && g.StmtAt(tgt).ID == us.ClusterDef {
			l = g.clusterList(us.ClusterID, tgt.Node)
		} else {
			l = g.newLabels(false, false)
		}
		us.Dyn = append(us.Dyn, DynEdge{Tgt: tgt, L: l})
		edge = &us.Dyn[len(us.Dyn)-1]
	}
	if !edge.L.AppendEnc(g.mem, g.enc, p) {
		g.elim.OPT3Dedup++
	}
}

// processCD handles one block-occurrence execution: determine the dynamic
// control ancestor (most recent same-frame static ancestor, or the call
// site for entry-level blocks), verify static coverage, else label.
func (g *Graph) processCD(n *Node, occ *Occ, b *ir.Block, ts int64, fr *frameCtx, ctx *execCtx) {
	g.elim.CDExecs++
	var anc nodeInst
	for _, h := range b.CDAncestors {
		e, ok := fr.lastExec[h.ID]
		if !ok {
			continue
		}
		// Most recent execution; equal timestamps mean the same node
		// execution, where the later occurrence is the more recent one.
		if !anc.live || e.ts > anc.ts || (e.ts == anc.ts && e.occ > anc.occ) {
			anc = e
		}
	}
	var tgt InstLoc
	var ta int64
	switch {
	case anc.live:
		ancNode := g.nodes[anc.node]
		ancOcc := ancNode.Occs[anc.occ]
		termIdx := ancOcc.StmtOff + int32(len(ancOcc.B.Stmts)) - 1
		tgt = InstLoc{Node: anc.node, Stmt: termIdx}
		ta = anc.ts
	case fr.hasCallSite && b == b.Fn.Entry():
		// Interprocedural control dependence attaches to the function
		// entry only (see the FP builder for rationale).
		tgt = fr.callSite
		ta = fr.callTs
	default:
		// No controlling instance: tombstone or veto the adaptive default
		// exactly as processUse does for producerless uses.
		g.elim.NoAncestor++
		switch occ.CD.Default.Mode {
		case DefDelta, DefConst:
			g.appendCDLabel(&occ.CD, occ.CD.Default.Tgt, Pair{Td: -1, Tu: ts})
		default:
			occ.CD.Default.kill()
		}
		return
	}
	if !ctx.anc0Set {
		ctx.anc0, ctx.ta0, ctx.anc0Set = tgt, ta, true
	}

	switch occ.CD.Static {
	case CDLocal:
		if anc.live && anc.node == n.ID && anc.ts == ts && anc.occ == occ.CD.StTgtOcc {
			g.elim.OPT5Local++
			return
		}
	case CDDelta:
		if tgt == occ.CD.StTgt && ta == ts-occ.CD.Delta {
			g.elim.OPT4Delta++
			return
		}
	case CDSame:
		if ctx.anc0Set && tgt == ctx.anc0 && ta == ctx.ta0 {
			g.elim.OPT5Same++
			return
		}
	case CDNone:
		if g.cfg.AdaptiveDeltas {
			wasWarm := occ.CD.Default.Mode == DefWarm || occ.CD.Default.Mode == DefNone
			if occ.CD.Default.observe(tgt, ta, ts) {
				g.elim.AdaptiveCD++
				return
			}
			if wasWarm && (occ.CD.Default.Mode == DefDelta || occ.CD.Default.Mode == DefConst) {
				g.adaptiveCD++
			}
		}
	}
	g.elim.CDLabels++
	g.appendCDLabel(&occ.CD, tgt, Pair{Td: ta, Tu: ts})
}

// appendCDLabel records a label on the occurrence's dynamic control edge
// to tgt, creating the edge on first use.
func (g *Graph) appendCDLabel(cd *CDEdgeSet, tgt InstLoc, p Pair) {
	var edge *CDDynEdge
	for i := range cd.Dyn {
		if cd.Dyn[i].Tgt == tgt {
			edge = &cd.Dyn[i]
			break
		}
	}
	if edge == nil {
		var l *Labels
		if cd.ClusterID >= 0 {
			l = g.clusterList(cd.ClusterID, tgt.Node)
		} else {
			l = g.newLabels(false, true)
		}
		cd.Dyn = append(cd.Dyn, CDDynEdge{Tgt: tgt, L: l})
		edge = &cd.Dyn[len(cd.Dyn)-1]
	}
	if !edge.L.AppendEnc(g.mem, g.enc, p) {
		g.elim.OPT6Dedup++
	}
}
