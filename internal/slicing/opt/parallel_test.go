package opt_test

import (
	"sort"
	"sync"
	"testing"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/profile"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/opt"
	"dynslice/internal/trace"
)

// defCollector records every defined address, giving the tests a full
// criterion universe.
type defCollector struct{ addrs map[int64]bool }

func (c *defCollector) Block(*ir.Block) {}
func (c *defCollector) Stmt(s *ir.Stmt, _, defs []int64) {
	for _, a := range defs {
		c.addrs[a] = true
	}
}
func (c *defCollector) RegionDef(s *ir.Stmt, start, length int64) {
	for a := start; a < start+length; a++ {
		c.addrs[a] = true
	}
}
func (c *defCollector) End() {}

// parSrc is elimSrc scaled up so the defined-address universe exceeds one
// 64-criterion bitset chunk.
const parSrc = `
var total = 0;
var arr[80];

func addup(k) {
	var j = 0;
	var acc = 0;
	while (j < k) {
		acc = acc + arr[j];
		j = j + 1;
	}
	return acc;
}

func main() {
	var i = 0;
	while (i < 80) {
		arr[i] = i * 3;
		if (i % 4 == 0) {
			total = total + addup(i);
		}
		i = i + 1;
	}
	print(total);
}
`

// buildFull compiles parSrc and builds an OPT graph under cfg, returning
// the sorted list of every defined address. hybridBudget > 0 enables §4.2
// disk-epoch mode with that resident-pair budget.
func buildFull(t *testing.T, cfg opt.Config, hybridBudget int64) (*opt.Graph, []int64) {
	t.Helper()
	p, err := compile.Source(parSrc)
	if err != nil {
		t.Fatal(err)
	}
	col := profile.NewCollector(p)
	if _, err := interp.Run(p, interp.Options{Sink: col}); err != nil {
		t.Fatal(err)
	}
	g := opt.NewGraph(p, cfg, col.HotPaths(1, 0), col.Cuts())
	if hybridBudget > 0 {
		if err := g.EnableHybrid(t.TempDir(), hybridBudget); err != nil {
			t.Fatal(err)
		}
	}
	defs := &defCollector{addrs: map[int64]bool{}}
	if _, err := interp.Run(p, interp.Options{Sink: trace.Multi{g, defs}}); err != nil {
		t.Fatal(err)
	}
	addrs := make([]int64, 0, len(defs.addrs))
	for a := range defs.addrs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return g, addrs
}

func criteria(addrs []int64) []slicing.Criterion {
	cs := make([]slicing.Criterion, len(addrs))
	for i, a := range addrs {
		cs[i] = slicing.AddrCriterion(a)
	}
	return cs
}

// TestSliceAllMatchesSequential: the batched traversal must produce, for
// every defined address, exactly the slice the sequential traversal
// produces — with and without shortcut closures, and across the
// 64-criterion chunk boundary.
func TestSliceAllMatchesSequential(t *testing.T) {
	cfgs := map[string]opt.Config{
		"full":         opt.Full(),
		"no-shortcuts": func() opt.Config { c := opt.Full(); c.Shortcuts = false; return c }(),
		"stage3":       opt.Stage(3),
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			g, addrs := buildFull(t, cfg, 0)
			if len(addrs) <= 64 {
				t.Fatalf("want >64 criteria to cross a chunk boundary, have %d", len(addrs))
			}
			batched, _, err := g.SliceAll(criteria(addrs))
			if err != nil {
				t.Fatal(err)
			}
			for i, a := range addrs {
				seq, _, err := g.Slice(slicing.AddrCriterion(a))
				if err != nil {
					t.Fatal(err)
				}
				if !seq.Equal(batched[i]) {
					t.Fatalf("addr %d: batched slice (%d stmts) != sequential (%d stmts)",
						a, batched[i].Len(), seq.Len())
				}
			}
		})
	}
}

// TestSliceAllWorkerSweep crosses scheduler pool sizes with criteria
// counts straddling the 64-bit chunk boundaries (1, 63, 64, 65, and 200
// with duplicated addresses): every combination must reproduce the
// sequential answer, shortcut closures included.
func TestSliceAllWorkerSweep(t *testing.T) {
	g, addrs := buildFull(t, opt.Full(), 0)
	seq := map[int64]*slicing.Slice{}
	for _, a := range addrs {
		sl, _, err := g.Slice(slicing.AddrCriterion(a))
		if err != nil {
			t.Fatal(err)
		}
		seq[a] = sl
	}
	for _, workers := range []int{1, 2, 8} {
		g.SetWorkers(workers)
		for _, n := range []int{1, 63, 64, 65, 200} {
			picked := make([]int64, n)
			cs := make([]slicing.Criterion, n)
			for i := 0; i < n; i++ {
				picked[i] = addrs[i%len(addrs)] // >len(addrs) duplicates criteria
				cs[i] = slicing.AddrCriterion(picked[i])
			}
			outs, _, err := g.SliceAll(cs)
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, a := range picked {
				if !outs[i].Equal(seq[a]) {
					t.Fatalf("workers=%d n=%d: addr %d diverged from sequential", workers, n, a)
				}
			}
		}
	}
	g.SetWorkers(0)
}

// TestSliceAllHybrid repeats the determinism check on a graph whose labels
// were flushed to disk epochs, so batched resolution exercises the
// epoch-cache path too.
func TestSliceAllHybrid(t *testing.T) {
	g, addrs := buildFull(t, opt.Full(), 1)
	if g.HybridEpochs() == 0 {
		t.Skip("budget did not force an epoch flush")
	}
	batched, _, err := g.SliceAll(criteria(addrs))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		seq, _, err := g.Slice(slicing.AddrCriterion(a))
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(batched[i]) {
			t.Fatalf("hybrid addr %d: batched != sequential", a)
		}
	}
	if g.HybridLoads() == 0 {
		t.Error("slicing never loaded an epoch file")
	}
}

// TestSliceAllErrors: error cases must match the sequential API.
func TestSliceAllErrors(t *testing.T) {
	g, addrs := buildFull(t, opt.Full(), 0)
	if _, _, err := g.SliceAll([]slicing.Criterion{slicing.AddrCriterion(1 << 40)}); err == nil {
		t.Error("undefined address: want error")
	}
	if _, _, err := g.SliceAll([]slicing.Criterion{{Addr: addrs[0], Stmt: 1, TS: 0}}); err == nil {
		t.Error("statement-instance criterion: want error")
	}
	outs, _, err := g.SliceAll(nil)
	if err != nil || len(outs) != 0 {
		t.Errorf("empty batch: outs=%d err=%v", len(outs), err)
	}
}

// TestConcurrentSlice hammers one finalized graph from many goroutines —
// sequential queries, batched queries, and hybrid epoch loads all at once
// — and checks every result against a precomputed baseline. Run under
// -race this is the post-build freeze proof (satellite: Labels frozen,
// shortcut memo and epoch cache guarded).
func TestConcurrentSlice(t *testing.T) {
	for _, hybrid := range []int64{0, 1} {
		name := "resident"
		if hybrid > 0 {
			name = "hybrid"
		}
		t.Run(name, func(t *testing.T) {
			g, addrs := buildFull(t, opt.Full(), hybrid)
			want := make([]*slicing.Slice, len(addrs))
			for i, a := range addrs {
				sl, _, err := g.Slice(slicing.AddrCriterion(a))
				if err != nil {
					t.Fatal(err)
				}
				want[i] = sl
			}
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for rep := 0; rep < 3; rep++ {
						if w%2 == 0 {
							for i, a := range addrs {
								sl, _, err := g.Slice(slicing.AddrCriterion(a))
								if err != nil {
									errs <- err
									return
								}
								if !sl.Equal(want[i]) {
									t.Errorf("worker %d: addr %d diverged", w, a)
									return
								}
							}
						} else {
							outs, _, err := g.SliceAll(criteria(addrs))
							if err != nil {
								errs <- err
								return
							}
							for i := range outs {
								if !outs[i].Equal(want[i]) {
									t.Errorf("worker %d: batched addr %d diverged", w, addrs[i])
									return
								}
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}
