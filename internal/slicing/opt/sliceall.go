package opt

import (
	"fmt"
	"math/bits"
	"sync"

	"dynslice/internal/ir"
	"dynslice/internal/slicing"
)

// Batched multi-criterion slicing: N criteria are answered in one shared
// traversal. Each traversal point — a statement instance or a pending
// use-slot redirect — carries a bitmask of the criteria whose slices it
// belongs to, so a subgraph shared by several slices (the common case:
// the paper's 25 criteria are all end-of-run definitions that converge on
// the program's core) is walked once instead of once per criterion, and
// its dependence resolution (label probes, default-edge inference) is
// memoized once per unique (location, timestamp) rather than recomputed
// for every criterion that reaches it.

// bkey identifies one traversal point: a statement instance (slot == -1)
// or a use-slot redirect introduced by a use-use edge.
type bkey struct {
	loc  InstLoc
	ts   int64
	slot int32
}

// bdeps is the memoized expansion of a traversal point: the statements it
// contributes (instances only) and the downstream points it reaches.
type bdeps struct {
	stmts   []ir.StmtID
	targets []bkey
}

type btask struct {
	k    bkey
	mask uint64
}

type batchState struct {
	g       *Graph
	stats   *slicing.Stats
	visited map[bkey]uint64 // criteria bits already propagated through key
	memo    map[bkey]*bdeps // dependence resolution, once per unique key
	work    []btask
}

// batchPool recycles the batched-traversal maps and worklist (satellite of
// the sliceState pool in slice.go).
var batchPool = sync.Pool{New: func() any {
	return &batchState{visited: map[bkey]uint64{}, memo: map[bkey]*bdeps{}}
}}

func getBatchState(g *Graph, stats *slicing.Stats) *batchState {
	st := batchPool.Get().(*batchState)
	st.g = g
	st.stats = stats
	return st
}

func (st *batchState) release() {
	clear(st.visited)
	clear(st.memo)
	st.work = st.work[:0]
	st.g, st.stats = nil, nil
	batchPool.Put(st)
}

// SliceAll implements slicing.MultiSlicer: it answers every criterion with
// the slice Slice would produce, in one traversal per 64-criterion chunk.
// The aggregate stats count each unique instance and label probe once,
// not once per criterion that reaches it — that sharing is the point.
func (g *Graph) SliceAll(cs []slicing.Criterion) ([]*slicing.Slice, *slicing.Stats, error) {
	outs := make([]*slicing.Slice, len(cs))
	stats := &slicing.Stats{}
	type seed struct {
		loc InstLoc
		ts  int64
	}
	seeds := make([]seed, len(cs))
	for i, c := range cs {
		if c.Stmt >= 0 {
			return nil, nil, fmt.Errorf("opt: statement-instance criteria require SliceAt (OPT timestamps are node ordinals)")
		}
		d, ok := g.lastDef[c.Addr]
		if !ok {
			return nil, nil, fmt.Errorf("opt: address %d was never defined", c.Addr)
		}
		seeds[i] = seed{loc: d.Loc, ts: d.Ts}
		outs[i] = slicing.NewSlice()
	}
	for base := 0; base < len(cs); base += 64 {
		chunk := min(64, len(cs)-base)
		st := getBatchState(g, stats)
		for j := 0; j < chunk; j++ {
			st.push(bkey{loc: seeds[base+j].loc, ts: seeds[base+j].ts, slot: -1}, uint64(1)<<j)
		}
		st.run(outs[base : base+chunk])
		st.release()
	}
	return outs, stats, nil
}

// push enqueues the criteria bits of mask not yet propagated through k.
func (st *batchState) push(k bkey, mask uint64) {
	if k.slot < 0 && (k.ts < 0 || k.ts >= st.g.ts) {
		// Same guard as the sequential pushInstance: no fabricated
		// instances outside the executed timestamp range.
		return
	}
	nv := mask &^ st.visited[k]
	if nv == 0 {
		return
	}
	st.visited[k] |= nv
	st.work = append(st.work, btask{k: k, mask: nv})
}

func (st *batchState) run(outs []*slicing.Slice) {
	for len(st.work) > 0 {
		t := st.work[len(st.work)-1]
		st.work = st.work[:len(st.work)-1]
		d, ok := st.memo[t.k]
		if !ok {
			d = st.compute(t.k)
			st.memo[t.k] = d
		}
		for _, id := range d.stmts {
			for m := t.mask; m != 0; m &= m - 1 {
				outs[bits.TrailingZeros64(m)].Add(id)
			}
		}
		for _, tk := range d.targets {
			st.push(tk, t.mask)
		}
	}
}

// compute expands a traversal point through the exact resolvers the
// sequential path uses (resolveUseDep/resolveCDDep in slice.go).
func (st *batchState) compute(k bkey) *bdeps {
	g := st.g
	d := &bdeps{}
	if k.slot >= 0 {
		d.add(g.resolveUseDep(k.loc, k.slot, k.ts, st.stats, nil))
		return d
	}
	st.stats.Instances++
	if g.cfg.Shortcuts {
		g.cShortcut.Inc()
		cl := g.closureFor(k.loc)
		d.stmts = cl.stmts // shared read-only with the closure memo
		for _, u := range cl.uFront {
			d.add(g.resolveUseDep(InstLoc{Node: k.loc.Node, Stmt: u.stmt}, u.slot, k.ts, st.stats, nil))
		}
		for _, cf := range cl.cFront {
			d.add(g.resolveCDDep(k.loc.Node, cf.occ, k.ts, st.stats, nil))
		}
		return d
	}
	n := g.nodes[k.loc.Node]
	sc := &n.Stmts[k.loc.Stmt]
	d.stmts = append(d.stmts, sc.S.ID)
	for slot := range sc.S.Uses {
		d.add(g.resolveUseDep(k.loc, int32(slot), k.ts, st.stats, nil))
	}
	d.add(g.resolveCDDep(k.loc.Node, sc.OccIdx, k.ts, st.stats, nil))
	return d
}

func (d *bdeps) add(dp dep) {
	switch dp.kind {
	case depInst:
		d.targets = append(d.targets, bkey{loc: dp.loc, ts: dp.ts, slot: -1})
	case depUse:
		d.targets = append(d.targets, bkey{loc: dp.loc, ts: dp.ts, slot: dp.slot})
	}
}
