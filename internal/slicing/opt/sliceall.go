package opt

import (
	"fmt"

	"dynslice/internal/slicing"
	"dynslice/internal/slicing/batch"
	"dynslice/internal/slicing/labelblock"
)

// Batched multi-criterion slicing: N criteria are answered in one shared
// traversal per 64-criterion chunk, run on the work-stealing scheduler in
// internal/slicing/batch. Each traversal point — a statement instance or
// a pending use-slot redirect — carries a bitmask of the criteria whose
// slices it belongs to, merged through the scheduler's sharded flat
// visited table, so a subgraph shared by several slices (the common case:
// the paper's 25 criteria are all end-of-run definitions that converge on
// the program's core) is walked once instead of once per criterion, and
// its dependence resolution (label probes, default-edge inference) is
// memoized once per unique (location, timestamp) rather than recomputed
// for every criterion that reaches it. Expansion goes through the exact
// resolvers the sequential path uses (resolveUseDep/resolveCDDep in
// slice.go), answered through per-worker label-block cursors.

// SetWorkers bounds the worker pool batched queries (SliceAll) run on;
// n <= 0 means GOMAXPROCS. Atomic, so concurrent engine callers may
// retune it between (but not during) their own queries.
func (g *Graph) SetWorkers(n int) { g.workers.Store(int32(n)) }

// optKey packs a traversal point — a statement instance (slot == -1) or a
// use-slot redirect introduced by a use-use edge — into a scheduler key.
// Timestamps are node ordinals, non-negative for every key that reaches
// the scheduler (expandPoint filters the out-of-range inferences the
// sequential pushInstance guard drops), so the shifted packing is
// collision-free.
func optKey(loc InstLoc, ts int64, slot int32) batch.Key {
	return batch.Key{
		K1: uint64(uint32(loc.Node))<<32 | uint64(uint32(loc.Stmt)),
		K2: uint64(ts)<<16 | uint64(uint16(slot+2)),
	}
}

func unpackKey(k batch.Key) (loc InstLoc, ts int64, slot int32) {
	loc = InstLoc{Node: NodeID(int32(k.K1 >> 32)), Stmt: int32(uint32(k.K1))}
	ts = int64(k.K2 >> 16)
	slot = int32(uint16(k.K2)) - 2
	return loc, ts, slot
}

// SliceAll implements slicing.MultiSlicer: it answers every criterion with
// the slice Slice would produce. The aggregate stats count each unique
// instance and label probe once, not once per criterion that reaches it —
// that sharing is the point.
func (g *Graph) SliceAll(cs []slicing.Criterion) ([]*slicing.Slice, *slicing.Stats, error) {
	outs := make([]*slicing.Slice, len(cs))
	stats := &slicing.Stats{}
	seeds := make([]DefRef, len(cs))
	for i, c := range cs {
		if c.Stmt >= 0 {
			return nil, nil, fmt.Errorf("opt: statement-instance criteria require SliceAt (OPT timestamps are node ordinals)")
		}
		d, ok := g.defOf(c.Addr)
		if !ok {
			return nil, nil, fmt.Errorf("opt: address %d was never defined", c.Addr)
		}
		seeds[i] = d
		outs[i] = slicing.NewSlice()
	}
	var blockHits int64
	cfg := batch.Config{
		Workers:    int(g.workers.Load()),
		NumStmts:   len(g.p.Stmts),
		Expand:     g.expandPoint,
		NewScratch: func() any { return labelblock.NewCursorCache() },
		FinishScratch: func(sc any) {
			if cc, ok := sc.(*labelblock.CursorCache); ok {
				blockHits += cc.Hits
			}
		},
	}
	var ctr batch.Counters
	for base := 0; base < len(cs); base += 64 {
		chunk := min(64, len(cs)-base)
		tasks := make([]batch.Task, chunk)
		for j := 0; j < chunk; j++ {
			s := seeds[base+j]
			tasks[j] = batch.Task{K: optKey(s.Loc, s.Ts, -1), Mask: uint64(1) << j}
		}
		masks, st, c := batch.Run(cfg, tasks)
		batch.MaskSlices(masks, outs[base:base+chunk])
		stats.Instances += st.Instances
		stats.LabelProbes += st.LabelProbes
		ctr.Steals += c.Steals
		ctr.Merges += c.Merges
	}
	if reg := g.tel; reg != nil {
		reg.Counter("slice.batch.steals").Add(ctr.Steals)
		reg.Counter("slice.batch.block_merges").Add(ctr.Merges + blockHits)
	}
	return outs, stats, nil
}

// expandPoint resolves one traversal point through the shared resolvers.
func (g *Graph) expandPoint(k batch.Key, stats *slicing.Stats, scratch any) *batch.Expansion {
	cc, _ := scratch.(*labelblock.CursorCache)
	loc, ts, slot := unpackKey(k)
	exp := &batch.Expansion{}
	if slot >= 0 {
		g.addDep(exp, g.resolveUseDep(loc, slot, ts, stats, cc, nil))
		return exp
	}
	stats.Instances++
	if g.cfg.Shortcuts {
		g.cShortcut.Inc()
		cl := g.closureFor(loc)
		exp.Stmts = cl.stmts // shared read-only with the closure memo
		for _, u := range cl.uFront {
			g.addDep(exp, g.resolveUseDep(InstLoc{Node: loc.Node, Stmt: u.stmt}, u.slot, ts, stats, cc, nil))
		}
		for _, cf := range cl.cFront {
			g.addDep(exp, g.resolveCDDep(loc.Node, cf.occ, ts, stats, cc, nil))
		}
		return exp
	}
	n := g.nodes[loc.Node]
	sc := &n.Stmts[loc.Stmt]
	exp.Stmts = append(exp.Stmts, sc.S.ID)
	for s := range sc.S.Uses {
		g.addDep(exp, g.resolveUseDep(loc, int32(s), ts, stats, cc, nil))
	}
	g.addDep(exp, g.resolveCDDep(loc.Node, sc.OccIdx, ts, stats, cc, nil))
	return exp
}

// addDep appends a resolved dependence as a downstream traversal point.
func (g *Graph) addDep(e *batch.Expansion, dp dep) {
	switch dp.kind {
	case depInst:
		if dp.ts < 0 || dp.ts >= g.ts {
			// Same guard as the sequential pushInstance: no fabricated
			// instances outside the executed timestamp range.
			return
		}
		e.Targets = append(e.Targets, optKey(dp.loc, dp.ts, -1))
	case depUse:
		e.Targets = append(e.Targets, optKey(dp.loc, dp.ts, dp.slot))
	}
}
