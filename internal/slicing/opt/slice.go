package opt

import (
	"fmt"
	"sync"

	"dynslice/internal/slicing"
	"dynslice/internal/slicing/explain"
	"dynslice/internal/slicing/labelblock"
)

// Slicing traversal (paper §3.4 "Dynamic Slicing" and Fig. 13): for each
// dependence of an instance, search the dynamic labels first; if the
// relevant timestamp is absent, the statically introduced edge applies and
// the producing timestamp is inferred (td = tu for data edges and local
// control edges, tc = tb - delta for distance-inferred control edges).
// Use-use edges redirect resolution to the earlier use without adding its
// statement to the slice.
//
// The label-vs-static decision logic lives in resolveUseDep/resolveCDDep,
// shared verbatim by the sequential traversal below and the batched
// multi-criterion traversal in sliceall.go, so the two paths cannot
// diverge.

var _ slicing.Explainer = (*Graph)(nil)

type instKey struct {
	loc InstLoc
	ts  int64
}

type sliceState struct {
	g       *Graph
	out     *slicing.Slice
	stats   *slicing.Stats
	obs     *explain.Recorder // nil for unobserved queries (the common case)
	visited map[instKey]bool
	seenUse map[useKey]bool
	work    []task
}

type useKey struct {
	loc  InstLoc
	slot int32
	ts   int64
}

type task struct {
	loc   InstLoc
	ts    int64
	slot  int32
	isUse bool // resolve a single use slot without adding the statement
}

// statePool recycles traversal state (visited/seen maps and the worklist)
// across queries; the maps dominate per-query allocation on warm graphs.
var statePool = sync.Pool{New: func() any {
	return &sliceState{visited: map[instKey]bool{}, seenUse: map[useKey]bool{}}
}}

func getSliceState(g *Graph) *sliceState {
	st := statePool.Get().(*sliceState)
	st.g = g
	st.out = slicing.NewSlice()
	st.stats = &slicing.Stats{}
	return st
}

// releaseSliceState returns st to the pool. The slice and stats escape to
// the caller; only the traversal bookkeeping is recycled.
func (st *sliceState) release() {
	clear(st.visited)
	clear(st.seenUse)
	st.work = st.work[:0]
	st.g, st.out, st.stats, st.obs = nil, nil, nil, nil
	statePool.Put(st)
}

// dep is the resolved dependence of one use slot or control edge: nothing
// (depNone), a producing statement instance to slice in (depInst), or a
// redirect to an earlier use of the same value (depUse).
type dep struct {
	kind depKind
	loc  InstLoc
	ts   int64
	slot int32        // depUse only
	why  explain.Kind // how the dependence was resolved (observed queries)
}

type depKind uint8

const (
	depNone depKind = iota
	depInst
	depUse
)

// Slice implements slicing.Slicer. Address criteria resolve against the
// graph's final last-definition table; statement-instance criteria are
// supported through SliceAt (OPT timestamps are node ordinals, which are
// not meaningful to callers holding FP ordinals).
func (g *Graph) Slice(c slicing.Criterion) (*slicing.Slice, *slicing.Stats, error) {
	return g.SliceObserved(c, nil)
}

// SliceObserved implements slicing.Explainer: the same traversal as
// Slice, recording each resolved dependence hop into rec when non-nil.
func (g *Graph) SliceObserved(c slicing.Criterion, rec *explain.Recorder) (*slicing.Slice, *slicing.Stats, error) {
	if c.Stmt >= 0 {
		return nil, nil, fmt.Errorf("opt: statement-instance criteria require SliceAt (OPT timestamps are node ordinals)")
	}
	d, ok := g.defOf(c.Addr)
	if !ok {
		return nil, nil, fmt.Errorf("opt: address %d was never defined", c.Addr)
	}
	return g.SliceAtObserved(d.Loc, d.Ts, rec)
}

// SliceAt computes the dynamic slice of the statement-copy instance at loc
// with node timestamp ts.
func (g *Graph) SliceAt(loc InstLoc, ts int64) (*slicing.Slice, *slicing.Stats, error) {
	return g.SliceAtObserved(loc, ts, nil)
}

// SliceAtObserved is SliceAt with an optional provenance recorder.
func (g *Graph) SliceAtObserved(loc InstLoc, ts int64, rec *explain.Recorder) (*slicing.Slice, *slicing.Stats, error) {
	st := getSliceState(g)
	st.obs = rec
	if rec != nil {
		rec.Criterion(g.StmtAt(loc).ID, ts)
	}
	st.pushInstance(loc, ts)
	for len(st.work) > 0 {
		t := st.work[len(st.work)-1]
		st.work = st.work[:len(st.work)-1]
		if t.isUse {
			st.resolveUse(t.loc, t.slot, t.ts, true)
		} else {
			st.processInstance(t.loc, t.ts)
		}
	}
	out, stats := st.out, st.stats
	st.release()
	return out, stats, nil
}

func (st *sliceState) pushInstance(loc InstLoc, ts int64) {
	if ts < 0 || ts >= st.g.ts {
		// Out of the executed timestamp range: an inference rule fired for
		// a timestamp it has no evidence about (possible only after graph
		// corruption); drop rather than fabricate instances.
		return
	}
	k := instKey{loc, ts}
	if st.visited[k] {
		return
	}
	st.visited[k] = true
	st.work = append(st.work, task{loc: loc, ts: ts})
}

func (st *sliceState) pushUse(loc InstLoc, slot int32, ts int64) {
	k := useKey{loc, slot, ts}
	if st.seenUse[k] {
		return
	}
	st.seenUse[k] = true
	st.work = append(st.work, task{loc: loc, ts: ts, slot: slot, isUse: true})
}

func (st *sliceState) processInstance(loc InstLoc, ts int64) {
	st.stats.Instances++
	g := st.g
	if g.cfg.Shortcuts {
		g.cShortcut.Inc()
		cl := g.closureFor(loc)
		if st.obs != nil {
			st.observeClosure(loc, ts, cl)
		}
		for _, id := range cl.stmts {
			st.out.Add(id)
		}
		for _, u := range cl.uFront {
			st.resolveUse(InstLoc{Node: loc.Node, Stmt: u.stmt}, u.slot, ts, !u.member)
		}
		for _, cf := range cl.cFront {
			st.resolveCD(loc.Node, cf.occ, ts, cf.via)
		}
		return
	}
	n := g.nodes[loc.Node]
	sc := &n.Stmts[loc.Stmt]
	st.out.Add(sc.S.ID)
	if st.obs != nil {
		st.obs.Visit(sc.S.ID, ts)
	}
	for k := range sc.S.Uses {
		st.resolveUse(loc, int32(k), ts, false)
	}
	st.resolveCD(loc.Node, sc.OccIdx, ts, loc.Stmt)
}

// observeClosure records shortcut membership: every closure statement
// beyond the root is witnessed as one shortcut hop from the root
// instance (all closure members share the root's timestamp — the
// closure is the all-static, same-timestamp subgraph).
func (st *sliceState) observeClosure(loc InstLoc, ts int64, cl *closure) {
	n := st.g.nodes[loc.Node]
	root := n.Stmts[loc.Stmt].S.ID
	st.obs.Visit(root, ts)
	for _, id := range cl.stmts {
		if id == root {
			continue
		}
		st.obs.Edge(root, ts, false, -1, id, ts, explain.KindShortcut, false)
	}
	// Frontier uses reached through SUU redirect chains belong to skipped
	// statements: anchor them as use points so the dependence resolved
	// there chains back to the root rather than dead-ending.
	for _, u := range cl.uFront {
		if u.member {
			continue
		}
		st.obs.EdgeUse(root, ts, false, -1, n.Stmts[u.stmt].S.ID, u.slot, ts, explain.KindShortcut)
	}
}

// resolveUse resolves one use slot; fromUse marks resolution on behalf of
// a use-point redirect target (an OPT-2 chain) rather than an instance's
// own use.
func (st *sliceState) resolveUse(loc InstLoc, slot int32, ts int64, fromUse bool) {
	d := st.g.resolveUseDep(loc, slot, ts, st.stats, nil, st.obs)
	if st.obs != nil && d.kind != depNone {
		from := st.g.nodes[loc.Node].Stmts[loc.Stmt].S.ID
		switch d.kind {
		case depInst:
			st.obs.Edge(from, ts, fromUse, slot, st.g.StmtAt(d.loc).ID, d.ts, d.why, false)
		case depUse:
			st.obs.EdgeUse(from, ts, fromUse, slot, st.g.StmtAt(d.loc).ID, d.slot, d.ts, d.why)
		}
	}
	switch d.kind {
	case depInst:
		st.pushInstance(d.loc, d.ts)
	case depUse:
		st.pushUse(d.loc, d.slot, d.ts)
	}
}

// resolveCD resolves the control dependence of one occurrence; fromSi is
// the statement copy the edge is traversed on behalf of (for witnesses).
func (st *sliceState) resolveCD(node NodeID, occIdx int32, ts int64, fromSi int32) {
	d := st.g.resolveCDDep(node, occIdx, ts, st.stats, nil, st.obs)
	if d.kind != depInst {
		return
	}
	if st.obs != nil {
		from := st.g.nodes[node].Stmts[fromSi].S.ID
		st.obs.Edge(from, ts, false, -1, st.g.StmtAt(d.loc).ID, d.ts, d.why, true)
	}
	st.pushInstance(d.loc, d.ts)
}

// resolveUseDep locates the dependence of one use slot at time ts.
// Dynamic labels take precedence; the static edge is the fallback (paper
// Fig. 13, cases (a) and (c)). Read-only on the graph after Finalize.
// The dep's why field classifies the resolution for observed queries.
func (g *Graph) resolveUseDep(loc InstLoc, slot int32, ts int64, stats *slicing.Stats, cc *labelblock.CursorCache, obs *explain.Recorder) dep {
	us := g.nodes[loc.Node].useSet(loc.Stmt, slot)
	for i := range us.Dyn {
		td, probes, found := g.findLabel(us.Dyn[i].L, us.Dyn[i].L.id, ts, cc, obs)
		stats.LabelProbes += probes
		if found {
			if td < 0 {
				return dep{} // tombstone: this execution had no producer
			}
			why := explain.KindExplicit
			if us.Dyn[i].L.shared {
				why = explain.KindExplicitOPT3
			}
			return dep{kind: depInst, loc: us.Dyn[i].Tgt, ts: td, why: why}
		}
	}
	switch us.Static {
	case SDU, SDUPartial:
		return dep{kind: depInst, loc: InstLoc{Node: loc.Node, Stmt: us.StTgtStmt}, ts: ts, why: explain.KindInferredOPT1}
	case SUU:
		// Redirect to the earlier use at the same timestamp; its statement
		// is not added to the slice.
		return dep{kind: depUse, loc: InstLoc{Node: loc.Node, Stmt: us.StTgtStmt}, slot: us.StTgtSlot, ts: ts, why: explain.KindInferredOPT2}
	case SNone:
		if tgt, td, ok := us.Default.Resolve(ts); ok {
			return dep{kind: depInst, loc: tgt, ts: td, why: explain.KindInferredAdaptive}
		}
	}
	return dep{}
}

// resolveCDDep locates the controlling instance of a block occurrence at
// time ts. CDSame chains (control-equivalent occurrences of superblock
// nodes) are followed iteratively; an observer counts each deferral and
// the eventual resolution is attributed to the final hop.
func (g *Graph) resolveCDDep(node NodeID, occIdx int32, ts int64, stats *slicing.Stats, cc *labelblock.CursorCache, obs *explain.Recorder) dep {
	for {
		occ := &g.nodes[node].Occs[occIdx]
		for i := range occ.CD.Dyn {
			ta, probes, found := g.findLabel(occ.CD.Dyn[i].L, occ.CD.Dyn[i].L.id, ts, cc, obs)
			stats.LabelProbes += probes
			if found {
				if ta < 0 {
					return dep{} // tombstone: no controlling instance
				}
				why := explain.KindExplicit
				if occ.CD.Dyn[i].L.shared {
					why = explain.KindExplicitOPT6
				}
				return dep{kind: depInst, loc: occ.CD.Dyn[i].Tgt, ts: ta, why: why}
			}
		}
		switch occ.CD.Static {
		case CDLocal:
			tgtOcc := g.nodes[node].Occs[occ.CD.StTgtOcc]
			termIdx := tgtOcc.StmtOff + int32(len(tgtOcc.B.Stmts)) - 1
			return dep{kind: depInst, loc: InstLoc{Node: node, Stmt: termIdx}, ts: ts, why: explain.KindInferredOPT5}
		case CDDelta:
			return dep{kind: depInst, loc: occ.CD.StTgt, ts: ts - occ.CD.Delta, why: explain.KindInferredOPT4}
		case CDSame:
			// Control equivalent to an earlier occurrence of the same node
			// execution: resolve that occurrence's edge at the same time.
			obs.CDSameDeferral()
			occIdx = occ.CD.StTgtOcc
			continue
		case CDNone:
			if tgt, ta, ok := occ.CD.Default.Resolve(ts); ok {
				return dep{kind: depInst, loc: tgt, ts: ta, why: explain.KindInferredAdaptive}
			}
		}
		return dep{}
	}
}
