package opt

import "dynslice/internal/ir"

// Shortcut edges (paper §3.4 "Using Shortcuts to Speed Up Traversal"):
// when several static edges would be traversed in sequence, their
// contribution to a slice is the same in every execution, so it can be
// precomputed. A closure generalizes the paper's single shortcut edge: it
// is the transitive closure of the all-static, same-timestamp subgraph
// reachable from one statement copy — the set of statements skipped plus
// the frontier of points where dynamic labels (or timestamp arithmetic)
// must still be consulted.
//
// Closures are computed lazily after the build completes, so an edge
// counts as "all static" only if it also accumulated no fallback labels.

type useRef struct {
	stmt, slot int32
}

// useEntry is one use-frontier entry. member distinguishes uses owned by
// a closure statement from uses reached through a use-to-use (SUU)
// redirect chain, whose statement is skipped over rather than sliced in —
// witnesses must anchor the latter at a use point, not an instance.
type useEntry struct {
	useRef
	member bool
}

// cdRef is one control-dependence frontier entry: the occurrence whose
// edge must be consulted dynamically, plus the statement copy whose
// traversal reached it (the consumer side of the eventual witness hop).
type cdRef struct {
	occ int32
	via int32
}

type closure struct {
	stmts  []ir.StmtID
	uFront []useEntry
	cFront []cdRef
}

// closureFor returns (computing and memoizing on first use) the static
// closure of the statement copy at loc. The memo is shared by concurrent
// queries; the lock covers the computation so a closure is built once.
func (g *Graph) closureFor(loc InstLoc) *closure {
	g.shortcutMu.Lock()
	defer g.shortcutMu.Unlock()
	if c, ok := g.shortcuts[loc]; ok {
		return c
	}
	n := g.nodes[loc.Node]
	c := &closure{}
	seenStmt := map[int32]bool{}
	seenUse := map[useRef]bool{}
	seenOcc := map[int32]bool{}

	var visitStmt func(si int32)
	var visitUse func(si, slot int32)
	var visitOcc func(occIdx, via int32)

	visitUse = func(si, slot int32) {
		r := useRef{si, slot}
		if seenUse[r] {
			return
		}
		seenUse[r] = true
		us := n.useSet(si, slot)
		if len(us.Dyn) > 0 || us.Default.Mode != DefNone {
			c.uFront = append(c.uFront, useEntry{useRef: r})
			return
		}
		switch us.Static {
		case SDU, SDUPartial:
			visitStmt(us.StTgtStmt)
		case SUU:
			visitUse(us.StTgtStmt, us.StTgtSlot)
		}
	}
	visitOcc = func(occIdx, via int32) {
		if seenOcc[occIdx] {
			return
		}
		seenOcc[occIdx] = true
		cd := &n.Occs[occIdx].CD
		if len(cd.Dyn) == 0 && cd.Default.Mode == DefNone {
			switch cd.Static {
			case CDLocal:
				tgtOcc := n.Occs[cd.StTgtOcc]
				visitStmt(tgtOcc.StmtOff + int32(len(tgtOcc.B.Stmts)) - 1)
				return
			case CDSame:
				// The deferral keeps the statement that initiated the chain.
				visitOcc(cd.StTgtOcc, via)
				return
			case CDNone:
				return
			}
		}
		c.cFront = append(c.cFront, cdRef{occ: occIdx, via: via})
	}
	visitStmt = func(si int32) {
		if seenStmt[si] {
			return
		}
		seenStmt[si] = true
		sc := &n.Stmts[si]
		c.stmts = append(c.stmts, sc.S.ID)
		for k := range sc.S.Uses {
			visitUse(si, int32(k))
		}
		visitOcc(sc.OccIdx, si)
	}

	visitStmt(loc.Stmt)
	// Membership is settled only now: a frontier use recorded early may
	// belong to a statement another path later pulled into the closure.
	for i := range c.uFront {
		c.uFront[i].member = seenStmt[c.uFront[i].stmt]
	}
	g.shortcuts[loc] = c
	return c
}
