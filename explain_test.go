package slicer_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	slicer "dynslice"
	"dynslice/internal/telemetry"
)

// explainSrc mixes loops, calls, control dependence, and an array so the
// OPT traversal exercises both explicit labels and inferred edges.
const explainSrc = `
var total = 0;
var arr[16];

func double(v) {
	return v + v;
}

func main() {
	var i = 0;
	while (i < 16) {
		arr[i] = double(i);
		i = i + 1;
	}
	i = 0;
	while (i < 16) {
		if (arr[i] % 4 == 0) {
			total = total + arr[i];
		}
		i = i + 1;
	}
	print(total);
}`

// TestExplainMatchesSlice: an observed query must return exactly the
// slice the unobserved query returns, on every algorithm, and every
// slice member must have a complete dependence-path witness.
func TestExplainMatchesSlice(t *testing.T) {
	rec := record(t, explainSrc)
	for _, s := range []*slicer.Slicer{rec.OPT(), rec.FP(), rec.LP()} {
		want, err := s.SliceVar("total")
		if err != nil {
			t.Fatal(err)
		}
		ex, err := s.ExplainVar("total")
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(ex.Slice.Lines) != len(want.Lines) {
			t.Fatalf("%s: explained slice has %v, SliceVar %v", s.Name(), ex.Slice.Lines, want.Lines)
		}
		for i, ln := range want.Lines {
			if ex.Slice.Lines[i] != ln {
				t.Fatalf("%s: line %d differs: %d vs %d", s.Name(), i, ex.Slice.Lines[i], ln)
			}
		}
		if ex.Profile.Edges == 0 || ex.Profile.NodesVisited == 0 {
			t.Errorf("%s: empty profile: %+v", s.Name(), ex.Profile)
		}
		for _, line := range ex.Slice.Lines {
			w, ok := ex.WitnessAtLine(line)
			if !ok || !w.Complete {
				t.Errorf("%s: no complete witness for sliced line %d", s.Name(), line)
				continue
			}
			out := ex.FormatWitness(w)
			if !strings.Contains(out, "witness for") {
				t.Errorf("%s: unformatted witness: %q", s.Name(), out)
			}
		}
	}
}

// TestExplainAttribution: the OPT traversal on this program must resolve
// some dependences explicitly AND infer others — the observable core of
// the paper's claim that most labels can be eliminated. FP must be fully
// explicit.
func TestExplainAttribution(t *testing.T) {
	rec := record(t, explainSrc)

	opt, err := rec.OPT().ExplainVar("total")
	if err != nil {
		t.Fatal(err)
	}
	if opt.Profile.Inferred == 0 {
		t.Errorf("OPT inferred no edges: %+v", opt.Profile.ByKind)
	}
	if opt.Profile.Explicit+opt.Profile.Inferred+opt.Profile.Shortcut != opt.Profile.Edges {
		t.Errorf("attribution does not partition edges: %+v", opt.Profile)
	}

	fp, err := rec.FP().ExplainVar("total")
	if err != nil {
		t.Fatal(err)
	}
	if fp.Profile.Inferred != 0 || fp.Profile.Shortcut != 0 {
		t.Errorf("FP should be fully explicit: %+v", fp.Profile.ByKind)
	}
	if fp.Profile.Explicit == 0 {
		t.Error("FP recorded no edges")
	}
}

// TestExplainWitnessAtLine: the line-addressed lookup used by
// cmd/slicer -explain must find a witness for a sliced line and reject
// an unsliced one.
func TestExplainWitnessAtLine(t *testing.T) {
	rec := record(t, explainSrc)
	ex, err := rec.OPT().ExplainVar("total")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.WitnessAtLine(12); !ok { // arr[i] = double(i);
		t.Errorf("no witness for line 12; slice lines = %v", ex.Slice.Lines)
	}
	if _, ok := ex.WitnessAtLine(4); ok { // blank line: no statement
		t.Error("witness for a line with no statement")
	}
}

// TestExplainUnsupported: an explainable algorithm is required.
func TestExplainErrors(t *testing.T) {
	rec := record(t, explainSrc)
	if _, err := rec.OPT().ExplainVar("nosuch"); err == nil {
		t.Error("unknown variable accepted")
	}
	ex, err := rec.OPT().ExplainVar("total")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.Witness(9999); ok {
		t.Error("witness for a non-member statement id")
	}
}

// TestRecordTimeline: a Record with an attached timeline must capture
// both the span tree and per-batch pipeline worker activity, and the
// export must be valid Chrome trace-event JSON.
func TestRecordTimeline(t *testing.T) {
	p, err := slicer.Compile(explainSrc)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	tl := telemetry.NewTimeline()
	reg.AttachTimeline(tl)
	rec, err := p.Record(slicer.RunOptions{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if _, err := rec.OPT().SliceVar("total"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []telemetry.TimelineEvent `json:"traceEvents"`
		Unit        string                    `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("timeline export is not valid JSON: %v", err)
	}
	cats := map[string]int{}
	names := map[string]bool{}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event ph = %q, want X", ev.Ph)
		}
		cats[ev.Cat]++
		names[ev.Name] = true
	}
	if cats["span"] == 0 {
		t.Error("no span events in the timeline")
	}
	// The default Record path is pipelined: both Async builder workers
	// must have contributed per-batch activity on their own rows.
	if cats["pipeline"] == 0 {
		t.Error("no pipeline worker events in the timeline")
	}
	for _, want := range []string{"fp-build", "opt-build"} {
		if !names[want] {
			t.Errorf("missing pipeline row %q (have %v)", want, names)
		}
	}
}

// TestExplainConcurrentWithQueries: observed queries share the frozen
// graphs with plain queries; hammering both concurrently must be
// race-free (run under -race) and produce consistent answers.
func TestExplainConcurrentWithQueries(t *testing.T) {
	rec := record(t, explainSrc)
	for _, s := range []*slicer.Slicer{rec.OPT(), rec.FP(), rec.LP()} {
		want, err := s.SliceVar("total")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(observed bool) {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					var lines []int
					if observed {
						ex, err := s.ExplainVar("total")
						if err != nil {
							errs <- err
							return
						}
						lines = ex.Slice.Lines
					} else {
						sl, err := s.SliceVar("total")
						if err != nil {
							errs <- err
							return
						}
						lines = sl.Lines
					}
					if len(lines) != len(want.Lines) {
						errs <- errMismatch
						return
					}
				}
			}(w%2 == 0)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent query returned a different slice" }

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
